// Aggregates: the Appendix E extensions — SUM workloads, a private MEDIAN
// via CDF inversion, GROUP BY as ICQ+WCQ — plus the §9 extensions: the cost
// advisor and the answer-reuse inferencer.
package main

import (
	"fmt"
	"log"

	"repro/internal/accuracy"
	"repro/internal/aggregate"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/noise"
	"repro/internal/query"
	"repro/internal/workload"
)

func main() {
	table := datagen.NYTaxi(40000, 5)
	eng, err := engine.New(table, engine.Config{
		Budget: 2.0,
		Mode:   engine.Optimistic,
		Rng:    noise.NewRand(21),
		Reuse:  true, // enable the inferencer
	})
	if err != nil {
		log.Fatal(err)
	}
	req := accuracy.Requirement{Alpha: 0.02 * float64(table.Size()), Beta: 0.001}

	// Advice first: what would a fare histogram cost?
	bins, err := workload.Histogram1D("fare amount", 0, 50, 5)
	if err != nil {
		log.Fatal(err)
	}
	wq, err := query.NewWCQ(bins, req)
	if err != nil {
		log.Fatal(err)
	}
	best, affordable, err := eng.Advise(wq)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("advice: %s would cost up to ε=%.4g (affordable: %v)\n",
		best.Mechanism.Name(), best.Cost.Upper, affordable)

	// MEDIAN fare via a private CDF (one WCQ; inversion is free).
	med, err := aggregate.Median(eng, "fare amount", 0, 50, 1, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("median fare ≈ $%.0f (ε=%.4g)\n", med.Value, med.Epsilon)

	// SUM of tips per payment type. The noise comes from the engine's own
	// random source, so the owner's seed policy covers aggregates too.
	preds := workload.CategoryPredicates("payment type", []string{"card", "cash"})
	sums, err := aggregate.Sum(eng, table, "tip amount", preds, accuracy.Requirement{
		Alpha: 0.1 * float64(table.Size()), Beta: 0.001,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tip totals: card ≈ $%.0f, cash ≈ $%.0f (ε=%.4g)\n",
		sums.Sums[0], sums.Sums[1], sums.Epsilon)

	// GROUP BY payment type HAVING COUNT(*) > 2% of trips.
	gb, err := aggregate.GroupBy(eng, "payment type",
		[]string{"card", "cash", "no-charge", "dispute"},
		0.02*float64(table.Size()), req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("popular payment types (two-step GROUP BY):")
	for i, g := range gb.Groups {
		fmt.Printf("  %-10s %9.0f\n", g, gb.Counts[i])
	}

	// The inferencer: re-asking the fare histogram is free.
	before := eng.Spent()
	if _, err := eng.Ask(wq); err != nil {
		log.Fatal(err)
	}
	first := eng.Spent()
	again, err := eng.Ask(wq)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("histogram: first ask ε=%.4g; repeat via %q ε=%.4g\n",
		first-before, again.Mechanism, again.Epsilon)
	fmt.Printf("total privacy loss: %.4g of %.4g\n", eng.Spent(), eng.Budget())
}
