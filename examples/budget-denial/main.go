// Budget denial: demonstrates the privacy analyzer's guarantees — queries
// are answered while the worst-case loss fits the owner's budget, denied
// afterwards, and data-dependent mechanisms (the multi-poking mechanism)
// are charged their actual loss so the analyst can stretch the budget.
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/accuracy"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/noise"
	"repro/internal/query"
	"repro/internal/workload"
)

func main() {
	table := datagen.Adult(datagen.AdultSize, 1)
	eng, err := engine.New(table, engine.Config{
		Budget: 0.05, // a deliberately tight budget
		Mode:   engine.Optimistic,
		Rng:    noise.NewRand(9),
	})
	if err != nil {
		log.Fatal(err)
	}

	bins, err := workload.Histogram1D("capital gain", 0, 5000, 100)
	if err != nil {
		log.Fatal(err)
	}
	req := accuracy.Requirement{Alpha: 0.02 * float64(table.Size()), Beta: 0.0005}

	// An iceberg query whose counts sit far from the threshold: the
	// multi-poking mechanism answers it with a fraction of its worst-case
	// budget, leaving room for more queries.
	icq, err := query.NewICQ(bins, 0.5*float64(table.Size()), req)
	if err != nil {
		log.Fatal(err)
	}
	for i := 1; ; i++ {
		ans, err := eng.Ask(icq)
		if errors.Is(err, engine.ErrDenied) {
			fmt.Printf("query %d: DENIED (spent %.4f of %.4f)\n", i, eng.Spent(), eng.Budget())
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %d: %s charged ε=%.4f (reserved up to %.4f) — running total %.4f\n",
			i, ans.Mechanism, ans.Epsilon, ans.EpsilonUpper, eng.Spent())
		if i > 50 {
			break
		}
	}

	// The transcript proves the invariant: actual losses sum to Spent() ≤ B.
	var sum float64
	for _, e := range eng.Transcript() {
		sum += e.Epsilon
	}
	fmt.Printf("transcript total ε=%.4f, budget B=%.2f — invariant holds: %v\n",
		sum, eng.Budget(), sum <= eng.Budget())
}
