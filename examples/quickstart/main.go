// Quickstart: build a small sensitive table, stand up an APEx engine with a
// privacy budget, and ask one of each query type with an accuracy bound.
package main

import (
	"fmt"
	"log"

	"repro/internal/accuracy"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/noise"
	"repro/internal/query"
	"repro/internal/workload"
)

func main() {
	// 1. The public schema: attribute names and domains are not sensitive.
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "age", Kind: dataset.Continuous, Min: 0, Max: 100},
		dataset.Attribute{Name: "state", Kind: dataset.Categorical, Values: []string{"AL", "AK", "NY", "WY"}},
	)

	// 2. The sensitive instance (normally loaded by the data owner).
	table := dataset.NewTable(schema)
	states := []string{"AL", "AK", "NY", "NY", "WY"}
	for i := 0; i < 5000; i++ {
		table.MustAppend(dataset.Tuple{
			dataset.Num(float64(20 + (i*7)%60)),
			dataset.Str(states[i%len(states)]),
		})
	}

	// 3. The engine: the owner grants a total privacy budget B.
	eng, err := engine.New(table, engine.Config{
		Budget: 2.0,
		Mode:   engine.Optimistic,
		Rng:    noise.NewRand(42),
	})
	if err != nil {
		log.Fatal(err)
	}

	req := accuracy.Requirement{Alpha: 100, Beta: 0.05} // ±100 rows, 95% confidence

	// 4a. Workload counting query: an age histogram.
	bins, err := workload.Histogram1D("age", 0, 100, 20)
	if err != nil {
		log.Fatal(err)
	}
	wcq, err := query.NewWCQ(bins, req)
	if err != nil {
		log.Fatal(err)
	}
	ans, err := eng.Ask(wcq)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("WCQ via %s (ε=%.4f):\n", ans.Mechanism, ans.Epsilon)
	for i, p := range ans.Predicates {
		fmt.Printf("  %-16s %8.1f\n", p, ans.Counts[i])
	}

	// 4b. Iceberg query: which states have more than 900 people?
	statePreds := workload.CategoryPredicates("state", []string{"AL", "AK", "NY", "WY"})
	icq, err := query.NewICQ(statePreds, 900, req)
	if err != nil {
		log.Fatal(err)
	}
	ans, err = eng.Ask(icq)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ICQ via %s (ε=%.4f): states over 900 = %v\n",
		ans.Mechanism, ans.Epsilon, ans.SelectedPredicates())

	// 4c. Top-k query: the two most common states.
	tcq, err := query.NewTCQ(statePreds, 2, req)
	if err != nil {
		log.Fatal(err)
	}
	ans, err = eng.Ask(tcq)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TCQ via %s (ε=%.4f): top-2 states = %v\n",
		ans.Mechanism, ans.Epsilon, ans.SelectedPredicates())

	// 5. The analyst's total view of the data is bounded by the spent budget.
	fmt.Printf("privacy spent: %.4f of %.1f\n", eng.Spent(), eng.Budget())
}
