// Example server-client runs an in-process apex-server over two durable
// datasets and drives it with the Go client: four concurrent analyst
// sessions explore the same dataset under independent budgets — their
// distinct workloads coalesced by the per-dataset scheduler into batched
// columnar passes — then each audits its own transcript, and the example
// scrapes /metrics once to print the per-mechanism latency summary plus
// the per-dataset storage report. The two datasets straddle the registry's
// mmap threshold, so the run doubles as a smoke for the storage policy:
// the small one must serve from the heap, the large one from its mmap'd
// column-store segment.
package main

import (
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/dataset"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/store"
)

func main() {
	// The data owner's side: a durable registry (temp data dir) with an
	// mmap threshold sitting between the two datasets' column sizes.
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "age", Kind: dataset.Continuous, Min: 0, Max: 100},
	)
	dataDir, err := os.MkdirTemp("", "apex-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dataDir)
	st, err := store.Open(dataDir)
	if err != nil {
		log.Fatal(err)
	}
	reg := server.NewRegistry()
	reg.AttachStore(st)
	reg.SetStorage(server.StoragePolicy{MmapThreshold: 64 << 10}) // 64 KiB: "people" stays heap, "archive" maps

	rng := rand.New(rand.NewSource(42))
	makeCSV := func(rows int) string {
		var csv strings.Builder
		csv.WriteString("age\n")
		for i := 0; i < rows; i++ {
			fmt.Fprintf(&csv, "%d\n", rng.Intn(100))
		}
		return csv.String()
	}
	// ~1k rows ≈ 8 KiB of columns (heap); ~50k rows ≈ 450 KiB (mmap).
	if _, err := reg.AddCSV("people", schema, []byte(makeCSV(1000))); err != nil {
		log.Fatal(err)
	}
	if _, err := reg.AddCSV("archive", schema, []byte(makeCSV(50_000))); err != nil {
		log.Fatal(err)
	}
	srv := server.New(reg, server.Config{MaxBudget: 2, AllowSeeds: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Four analysts, each with an isolated budget and its own slice of
	// the domain — distinct workloads over one dataset, batched by the
	// scheduler into shared columnar passes.
	var wg sync.WaitGroup
	for analyst := 1; analyst <= 4; analyst++ {
		wg.Add(1)
		go func(analyst int) {
			defer wg.Done()
			c := client.New(ts.URL)
			// Opt into bounded backoff: a 429 under load retries instead
			// of surfacing (off by default).
			c.Retry = &client.RetryPolicy{MaxRetries: 5}
			sess, err := c.CreateSession(server.CreateSessionRequest{
				Dataset: "people", Budget: 1.0, Seed: int64(analyst),
			})
			if err != nil {
				log.Fatal(err)
			}
			lo := (analyst - 1) * 25
			q := fmt.Sprintf(
				"BIN D ON COUNT(*) WHERE W = { age BETWEEN %d AND %d, age BETWEEN %d AND %d } ERROR 20 CONFIDENCE 0.95;",
				lo, lo+12, lo+12, lo+25)
			for {
				ans, err := c.Query(sess.ID, q)
				if err != nil {
					log.Fatal(err)
				}
				if ans.Denied {
					fmt.Printf("analyst %d: denied (%s)\n", analyst, ans.Reason)
					break
				}
				fmt.Printf("analyst %d: counts %.0f via %s, eps=%.3f, remaining %.3f\n",
					analyst, ans.Counts, ans.Mechanism, ans.Epsilon, ans.Remaining)
			}
			tr, err := c.Transcript(sess.ID)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("analyst %d: transcript of %d entries, spent %.3f of %g, valid=%v\n",
				analyst, len(tr.Entries), tr.Spent, tr.Budget, tr.Valid)
		}(analyst)
	}
	wg.Wait()

	// One query against the mmap-backed dataset so its scan faults real
	// column pages in before the storage report reads the gauges.
	c := client.New(ts.URL)
	sess, err := c.CreateSession(server.CreateSessionRequest{Dataset: "archive", Budget: 1.0, Seed: 99})
	if err != nil {
		log.Fatal(err)
	}
	archiveQuery := "BIN D ON COUNT(*) WHERE W = { age BETWEEN 0 AND 50, age BETWEEN 50 AND 100 } ERROR 200 CONFIDENCE 0.95;"

	// EXPLAIN before asking: the dry run predicts mechanism, worst-case
	// cost, admission and the exact column scan — while spending zero ε
	// (the session's budget and transcript are untouched).
	ex, err := c.Explain(sess.ID, archiveQuery)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexplain (zero-cost dry run on %q): mechanism=%s eps<=%.3f denied=%v storage=%s scan=%d cols/%d bytes spent=%.3f\n",
		ex.Dataset, ex.Mechanism, ex.EpsilonUpper, ex.Denied, ex.Storage,
		len(ex.PlannedColumns), ex.PredictedScanBytes, ex.Spent)

	if _, err := c.Query(sess.ID, archiveQuery); err != nil {
		log.Fatal(err)
	}

	// Cost attribution: the heaviest workloads by attributed CPU, from the
	// analytics plane's space-saving sketch.
	top, err := c.Top("workload", 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop workloads by attributed CPU (from /v1/debug/top):")
	for _, e := range top.Entries {
		fmt.Printf("  %-18s %-8s %2d req, cpu %6.2fms, scanned %6.0f KiB, eps %.3f\n",
			e.Key, e.Dataset, e.Cost.Requests,
			float64(e.Cost.CPUNanos)/1e6, float64(e.Cost.ScanBytes)/1024, e.Cost.Epsilon)
	}

	// One /metrics scrape: summarize the per-mechanism latency histograms
	// the scheduler recorded for the whole run, then the storage report —
	// which dataset lives where, and how much of each is resident.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nper-mechanism latency (from /metrics):")
	for _, l := range mechanismLatencySummary(string(body)) {
		fmt.Println("  " + l)
	}
	fmt.Println("\ndataset storage (from /metrics):")
	for _, l := range storageSummary(string(body)) {
		fmt.Println("  " + l)
	}

	// Health & continuous verification: drive one scrub cycle by hand (the
	// background loop is off in this example), then fetch the liveness,
	// readiness and per-dataset budget-burn reports an operator would poll.
	rep := srv.Scrubber().RunCycle()
	fmt.Printf("\nscrub cycle: %d checks, %d bytes verified, %d violations\n",
		rep.Checks, rep.BytesRead, len(rep.Violations))
	hz, err := c.Healthz()
	if err != nil {
		log.Fatal(err)
	}
	rz, err := c.Readyz()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("health: %s (uptime %.1fs, %d datasets, %d sessions); ready: %s\n",
		hz.Status, hz.UptimeSeconds, hz.Datasets, hz.Sessions, rz.Status)
	for _, chk := range rz.Checks {
		fmt.Printf("  check %-12s %-9s %s\n", chk.Name, chk.Status, chk.Detail)
	}
	fmt.Println("\nbudget burn (from /v1/datasets/{name}/budget):")
	for _, ds := range []string{"people", "archive"} {
		b, err := c.Budget(ds)
		if err != nil {
			log.Fatal(err)
		}
		line := fmt.Sprintf("%-8s %d session(s), spent %.3f of %.3f (%.3f remaining), burn %.4f eps/s",
			b.Dataset, b.Sessions, b.Spent, b.Budget, b.Remaining, b.BurnRatePerSecond)
		if b.ExhaustedInSeconds != nil {
			line += fmt.Sprintf(", exhausted in ~%.0fs", *b.ExhaustedInSeconds)
		}
		fmt.Println("  " + line)
	}
}

// storageSummary reduces the apex_dataset_* gauges to one line per
// dataset: "name: mode, data N KiB, resident M KiB". The mode comes from
// apex_dataset_storage_mode{dataset=...,mode=...} 1.
func storageSummary(metrics string) []string {
	modes := map[string]string{}
	data := map[string]float64{}
	resident := map[string]float64{}
	labelValue := func(labels, key string) string {
		parts := strings.SplitN(labels, key+`="`, 2)
		if len(parts) < 2 {
			return ""
		}
		return strings.SplitN(parts[1], `"`, 2)[0]
	}
	for _, line := range strings.Split(metrics, "\n") {
		name, rest, ok := strings.Cut(line, "{")
		if !ok {
			continue
		}
		labels, val, ok := strings.Cut(rest, "} ")
		if !ok {
			continue
		}
		ds := labelValue(labels, "dataset")
		if ds == "" {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			continue
		}
		switch name {
		case "apex_dataset_storage_mode":
			if v == 1 {
				modes[ds] = labelValue(labels, "mode")
			}
		case "apex_dataset_data_bytes":
			data[ds] = v
		case "apex_dataset_resident_bytes":
			resident[ds] = v
		}
	}
	var names []string
	for ds := range modes {
		names = append(names, ds)
	}
	sort.Strings(names)
	out := make([]string, 0, len(names))
	for _, ds := range names {
		out = append(out, fmt.Sprintf("%-8s %-4s  data %6.0f KiB, resident %6.0f KiB",
			ds, modes[ds], data[ds]/1024, resident[ds]/1024))
	}
	return out
}

// mechanismLatencySummary reduces the apex_mechanism_latency_seconds
// histogram series to "mechanism: N answers, mean X µs" lines.
func mechanismLatencySummary(metrics string) []string {
	sums := map[string]float64{}
	counts := map[string]float64{}
	for _, line := range strings.Split(metrics, "\n") {
		name, rest, ok := strings.Cut(line, "{")
		if !ok {
			continue
		}
		labels, val, ok := strings.Cut(rest, "} ")
		if !ok || !strings.Contains(labels, `mechanism="`) {
			continue
		}
		mech := strings.SplitN(strings.SplitN(labels, `mechanism="`, 2)[1], `"`, 2)[0]
		v, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			continue
		}
		switch name {
		case "apex_mechanism_latency_seconds_sum":
			sums[mech] = v
		case "apex_mechanism_latency_seconds_count":
			counts[mech] = v
		}
	}
	var mechs []string
	for m := range counts {
		mechs = append(mechs, m)
	}
	sort.Strings(mechs)
	out := make([]string, 0, len(mechs))
	for _, m := range mechs {
		mean := 0.0
		if counts[m] > 0 {
			mean = sums[m] / counts[m]
		}
		out = append(out, fmt.Sprintf("%-6s %3.0f answers, mean %6.0f µs", m, counts[m], mean*1e6))
	}
	return out
}
