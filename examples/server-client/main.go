// Example server-client runs an in-process apex-server over a synthetic
// table and drives it with the Go client: two concurrent analyst sessions
// explore the same dataset under independent budgets, then each audits its
// own transcript.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"

	"repro/internal/dataset"
	"repro/internal/server"
	"repro/internal/server/client"
)

func main() {
	// The data owner's side: one registered dataset, a per-session cap.
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "age", Kind: dataset.Continuous, Min: 0, Max: 100},
	)
	rng := rand.New(rand.NewSource(42))
	var csv strings.Builder
	csv.WriteString("age\n")
	for i := 0; i < 1000; i++ {
		fmt.Fprintf(&csv, "%d\n", rng.Intn(100))
	}
	table, err := dataset.ReadCSV(strings.NewReader(csv.String()), schema)
	if err != nil {
		log.Fatal(err)
	}
	reg := server.NewRegistry()
	if err := reg.Add("people", table); err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(server.New(reg, server.Config{MaxBudget: 2, AllowSeeds: true}).Handler())
	defer ts.Close()

	// Two analysts, each with an isolated budget.
	var wg sync.WaitGroup
	for analyst := 1; analyst <= 2; analyst++ {
		wg.Add(1)
		go func(analyst int) {
			defer wg.Done()
			c := client.New(ts.URL)
			sess, err := c.CreateSession(server.CreateSessionRequest{
				Dataset: "people", Budget: 1.0, Seed: int64(analyst),
			})
			if err != nil {
				log.Fatal(err)
			}
			for {
				ans, err := c.Query(sess.ID,
					"BIN D ON COUNT(*) WHERE W = { age BETWEEN 0 AND 50, age BETWEEN 50 AND 100 } ERROR 20 CONFIDENCE 0.95;")
				if err != nil {
					log.Fatal(err)
				}
				if ans.Denied {
					fmt.Printf("analyst %d: denied (%s)\n", analyst, ans.Reason)
					break
				}
				fmt.Printf("analyst %d: counts %.0f via %s, eps=%.3f, remaining %.3f\n",
					analyst, ans.Counts, ans.Mechanism, ans.Epsilon, ans.Remaining)
			}
			tr, err := c.Transcript(sess.ID)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("analyst %d: transcript of %d entries, spent %.3f of %g, valid=%v\n",
				analyst, len(tr.Entries), tr.Spent, tr.Budget, tr.Valid)
		}(analyst)
	}
	wg.Wait()
}
