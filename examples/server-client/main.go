// Example server-client runs an in-process apex-server over a synthetic
// table and drives it with the Go client: four concurrent analyst
// sessions explore the same dataset under independent budgets — their
// distinct workloads coalesced by the per-dataset scheduler into batched
// columnar passes — then each audits its own transcript, and the example
// scrapes /metrics once to print the per-mechanism latency summary the
// scheduler recorded.
package main

import (
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/dataset"
	"repro/internal/server"
	"repro/internal/server/client"
)

func main() {
	// The data owner's side: one registered dataset, a per-session cap.
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "age", Kind: dataset.Continuous, Min: 0, Max: 100},
	)
	rng := rand.New(rand.NewSource(42))
	var csv strings.Builder
	csv.WriteString("age\n")
	for i := 0; i < 1000; i++ {
		fmt.Fprintf(&csv, "%d\n", rng.Intn(100))
	}
	table, err := dataset.ReadCSV(strings.NewReader(csv.String()), schema)
	if err != nil {
		log.Fatal(err)
	}
	reg := server.NewRegistry()
	if err := reg.Add("people", table); err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(server.New(reg, server.Config{MaxBudget: 2, AllowSeeds: true}).Handler())
	defer ts.Close()

	// Four analysts, each with an isolated budget and its own slice of
	// the domain — distinct workloads over one dataset, batched by the
	// scheduler into shared columnar passes.
	var wg sync.WaitGroup
	for analyst := 1; analyst <= 4; analyst++ {
		wg.Add(1)
		go func(analyst int) {
			defer wg.Done()
			c := client.New(ts.URL)
			// Opt into bounded backoff: a 429 under load retries instead
			// of surfacing (off by default).
			c.Retry = &client.RetryPolicy{MaxRetries: 5}
			sess, err := c.CreateSession(server.CreateSessionRequest{
				Dataset: "people", Budget: 1.0, Seed: int64(analyst),
			})
			if err != nil {
				log.Fatal(err)
			}
			lo := (analyst - 1) * 25
			q := fmt.Sprintf(
				"BIN D ON COUNT(*) WHERE W = { age BETWEEN %d AND %d, age BETWEEN %d AND %d } ERROR 20 CONFIDENCE 0.95;",
				lo, lo+12, lo+12, lo+25)
			for {
				ans, err := c.Query(sess.ID, q)
				if err != nil {
					log.Fatal(err)
				}
				if ans.Denied {
					fmt.Printf("analyst %d: denied (%s)\n", analyst, ans.Reason)
					break
				}
				fmt.Printf("analyst %d: counts %.0f via %s, eps=%.3f, remaining %.3f\n",
					analyst, ans.Counts, ans.Mechanism, ans.Epsilon, ans.Remaining)
			}
			tr, err := c.Transcript(sess.ID)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("analyst %d: transcript of %d entries, spent %.3f of %g, valid=%v\n",
				analyst, len(tr.Entries), tr.Spent, tr.Budget, tr.Valid)
		}(analyst)
	}
	wg.Wait()

	// One /metrics scrape: summarize the per-mechanism latency histograms
	// the scheduler recorded for the whole run.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nper-mechanism latency (from /metrics):")
	for _, l := range mechanismLatencySummary(string(body)) {
		fmt.Println("  " + l)
	}
}

// mechanismLatencySummary reduces the apex_mechanism_latency_seconds
// histogram series to "mechanism: N answers, mean X µs" lines.
func mechanismLatencySummary(metrics string) []string {
	sums := map[string]float64{}
	counts := map[string]float64{}
	for _, line := range strings.Split(metrics, "\n") {
		name, rest, ok := strings.Cut(line, "{")
		if !ok {
			continue
		}
		labels, val, ok := strings.Cut(rest, "} ")
		if !ok || !strings.Contains(labels, `mechanism="`) {
			continue
		}
		mech := strings.SplitN(strings.SplitN(labels, `mechanism="`, 2)[1], `"`, 2)[0]
		v, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			continue
		}
		switch name {
		case "apex_mechanism_latency_seconds_sum":
			sums[mech] = v
		case "apex_mechanism_latency_seconds_count":
			counts[mech] = v
		}
	}
	var mechs []string
	for m := range counts {
		mechs = append(mechs, m)
	}
	sort.Strings(mechs)
	out := make([]string, 0, len(mechs))
	for _, m := range mechs {
		mean := 0.0
		if counts[m] > 0 {
			mean = sums[m] / counts[m]
		}
		out = append(out, fmt.Sprintf("%-6s %3.0f answers, mean %6.0f µs", m, counts[m], mean*1e6))
	}
	return out
}
