// Taxi exploration: the workflow of the paper's §7 on the NYTaxi-style
// dataset — a cumulative fare histogram (where the strategy mechanism
// shines), an iceberg query over fare bins, and a top-k over pickup zones —
// while the engine reports the running privacy loss after every answer.
package main

import (
	"fmt"
	"log"

	"repro/internal/accuracy"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/noise"
	"repro/internal/query"
	"repro/internal/workload"
)

func main() {
	table := datagen.NYTaxi(50000, 7)
	eng, err := engine.New(table, engine.Config{
		Budget: 0.5, // taxi-scale queries are cheap: a modest budget suffices
		Mode:   engine.Optimistic,
		Rng:    noise.NewRand(7),
	})
	if err != nil {
		log.Fatal(err)
	}
	alpha := 0.02 * float64(table.Size())
	req := accuracy.Requirement{Alpha: alpha, Beta: 0.0005}

	// Cumulative fares: "how many trips cost at most $x?" — a prefix
	// workload with sensitivity L that APEx answers with SM-h2, not LM.
	prefixes, err := workload.Prefix1D("fare amount", 0, 50, 1)
	if err != nil {
		log.Fatal(err)
	}
	q1, err := query.NewWCQ(prefixes, req)
	if err != nil {
		log.Fatal(err)
	}
	ans, err := eng.Ask(q1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cumulative fare histogram via %s, ε=%.3g (spent %.3g)\n",
		ans.Mechanism, ans.Epsilon, eng.Spent())
	for _, i := range []int{4, 9, 19, 49} {
		fmt.Printf("  %-22s %9.0f\n", ans.Predicates[i], ans.Counts[i])
	}

	// Iceberg: which $1 fare bins hold over 2% of all trips?
	bins, err := workload.Histogram1D("fare amount", 0, 50, 1)
	if err != nil {
		log.Fatal(err)
	}
	q2, err := query.NewICQ(bins, 0.02*float64(table.Size()), req)
	if err != nil {
		log.Fatal(err)
	}
	ans, err = eng.Ask(q2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("popular fare bins via %s, ε=%.3g (spent %.3g):\n",
		ans.Mechanism, ans.Epsilon, eng.Spent())
	for _, p := range ans.SelectedPredicates() {
		fmt.Printf("  %s\n", p)
	}

	// Top-k: the five busiest pickup zones among the first twenty.
	zones := make([]float64, 20)
	for i := range zones {
		zones[i] = float64(i + 1)
	}
	q3, err := query.NewTCQ(workload.PointPredicates("PUID", zones), 5, req)
	if err != nil {
		log.Fatal(err)
	}
	ans, err = eng.Ask(q3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("busiest zones via %s, ε=%.3g (spent %.3g): %v\n",
		ans.Mechanism, ans.Epsilon, eng.Spent(), ans.SelectedPredicates())

	fmt.Printf("total privacy loss: %.4g of %.4g\n", eng.Spent(), eng.Budget())
}
