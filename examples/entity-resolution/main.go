// Entity resolution: the paper's §8 case study end to end — generate a
// labeled citations pair dataset, run the BS2 blocking strategy and the MS1
// matching strategy against APEx, and report the cleaning quality achieved
// under the privacy budget.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/er"
	"repro/internal/noise"
)

func main() {
	// 1. A labeled training set of citation pairs (the sensitive data).
	pairs := er.GenerateCitations(er.CitationsConfig{Pairs: 1200, Seed: 3})
	features := er.FeatureTable(pairs)
	fmt.Printf("citations: %d labeled pairs, %d similarity features\n",
		features.Size(), features.Schema().Arity()-1)

	// 2. Blocking with BS2 (ICQ/TCQ-based exploration).
	engBlock, err := engine.New(features, engine.Config{
		Budget: 3.0,
		Mode:   engine.Optimistic,
		Rng:    noise.NewRand(11),
	})
	if err != nil {
		log.Fatal(err)
	}
	cleanerRng := rand.New(rand.NewSource(5))
	blockTask := &er.Task{
		Table:   features,
		Engine:  engBlock,
		Cleaner: er.SampleCleaner(cleanerRng),
		Alpha:   0.05 * float64(features.Size()),
		Beta:    0.0005,
	}
	block, err := er.RunBS2(blockTask)
	if err != nil {
		log.Fatal(err)
	}
	recall, cost := er.BlockingQuality(features, block)
	fmt.Printf("\nblocking (BS2): %d predicates, recall=%.3f, cost=%.3f, privacy=%.3f\n",
		len(block), recall, cost, engBlock.Spent())
	for _, p := range block {
		fmt.Printf("  OR  %s\n", p)
	}

	// 3. Matching with MS1 (WCQ-based exploration) on a fresh budget.
	engMatch, err := engine.New(features, engine.Config{
		Budget: 3.0,
		Mode:   engine.Optimistic,
		Rng:    noise.NewRand(13),
	})
	if err != nil {
		log.Fatal(err)
	}
	matchTask := &er.Task{
		Table:   features,
		Engine:  engMatch,
		Cleaner: er.SampleCleaner(cleanerRng),
		Alpha:   0.05 * float64(features.Size()),
		Beta:    0.0005,
	}
	match, err := er.RunMS1(matchTask)
	if err != nil {
		log.Fatal(err)
	}
	prec, rec, f1 := er.MatchingQuality(features, match)
	fmt.Printf("\nmatching (MS1): %d predicates, precision=%.3f recall=%.3f F1=%.3f, privacy=%.3f\n",
		len(match), prec, rec, f1, engMatch.Spent())
	for _, p := range match {
		fmt.Printf("  AND %s\n", p)
	}

	// 4. Transcript: every query the analyst asked, with its actual cost.
	fmt.Println("\nblocking transcript:")
	for i, e := range engBlock.Transcript() {
		status := fmt.Sprintf("ε=%.4f", e.Epsilon)
		if e.Denied {
			status = "DENIED"
		}
		fmt.Printf("  q%-3d %-4s %s\n", i+1, e.Query.Kind, status)
	}
}
