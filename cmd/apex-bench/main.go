// Command apex-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	apex-bench -exp figure2            # one experiment
//	apex-bench -exp all -scale quick   # everything, smoke-test scale
//
// Scales: quick (seconds), default (laptop, minutes), paper (full sizes).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment: figure2|figure3|table2|figure4a|figure4b|figure4c|figure5|figure6|figure7|all")
		scale = flag.String("scale", "default", "configuration scale: quick|default|paper")
		runs  = flag.Int("runs", 0, "override repetition count")
		seed  = flag.Int64("seed", 0, "override random seed")
	)
	flag.Parse()

	var cfg experiments.Config
	switch *scale {
	case "quick":
		cfg = experiments.Quick()
	case "default":
		cfg = experiments.Default()
	case "paper":
		cfg = experiments.Paper()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *runs > 0 {
		cfg.Runs = *runs
		cfg.ERRuns = *runs
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	drivers := map[string]func(experiments.Config) error{
		"figure2":  experiments.Figure2,
		"figure3":  experiments.Figure3,
		"table2":   experiments.Table2,
		"figure4a": experiments.Figure4a,
		"figure4b": experiments.Figure4b,
		"figure4c": experiments.Figure4c,
		"figure5":  experiments.Figure5,
		"figure6":  experiments.Figure6,
		"figure7":  experiments.Figure7,
	}
	order := []string{"figure2", "figure3", "table2", "figure4a", "figure4b", "figure4c", "figure5", "figure6", "figure7"}

	run := func(name string) {
		start := time.Now()
		if err := drivers[name](cfg); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, name := range order {
			run(name)
			fmt.Println()
		}
		return
	}
	if _, ok := drivers[*exp]; !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	run(*exp)
}
