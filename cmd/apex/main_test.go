package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadSchema(t *testing.T) {
	path := writeTemp(t, "s.schema", `
# comment line
age     continuous  0 100
state   categorical AL,AK,WY
`)
	s, err := loadSchema(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Arity() != 2 {
		t.Fatalf("arity %d", s.Arity())
	}
	a, ok := s.AttrByName("age")
	if !ok || a.Kind != dataset.Continuous || a.Min != 0 || a.Max != 100 {
		t.Fatalf("age = %+v", a)
	}
	st, ok := s.AttrByName("state")
	if !ok || st.Kind != dataset.Categorical || len(st.Values) != 3 {
		t.Fatalf("state = %+v", st)
	}
}

func TestLoadSchemaErrors(t *testing.T) {
	cases := map[string]string{
		"short line":        "age\n",
		"bad kind":          "age weird 0 1\n",
		"continuous fields": "age continuous 0\n",
		"bad float":         "age continuous x 1\n",
		"categorical":       "state categorical\n",
	}
	for name, content := range cases {
		path := writeTemp(t, "bad.schema", content)
		if _, err := loadSchema(path); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	if _, err := loadSchema("/nonexistent/file"); err == nil {
		t.Error("missing file must error")
	}
}
