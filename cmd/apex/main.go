// Command apex is an interactive APEx session over a CSV table: the data
// owner points it at a file, declares the public schema and a privacy
// budget, and an analyst types exploration queries, one per line.
//
//	apex -data people.csv -schema people.schema -budget 1.0
//
// The schema file has one attribute per line:
//
//	age        continuous  0 100
//	state      categorical AL,AK,...,WY
//
// Queries use the paper's syntax, e.g.:
//
//	BIN D ON COUNT(*) WHERE W = { age BETWEEN 0 AND 50, age BETWEEN 50 AND 100 } ERROR 100 CONFIDENCE 0.95;
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/noise"
	"repro/internal/query"
)

func main() {
	var (
		dataPath   = flag.String("data", "", "CSV file with the sensitive table (required)")
		schemaPath = flag.String("schema", "", "public schema file (required)")
		budget     = flag.Float64("budget", 1.0, "owner privacy budget B")
		mode       = flag.String("mode", "optimistic", "translator mode: optimistic|pessimistic")
		seed       = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if *dataPath == "" || *schemaPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	schema, err := loadSchema(*schemaPath)
	if err != nil {
		fatal(err)
	}
	f, err := os.Open(*dataPath)
	if err != nil {
		fatal(err)
	}
	table, err := dataset.ReadCSV(f, schema)
	f.Close()
	if err != nil {
		fatal(err)
	}

	m, err := engine.ParseMode(*mode)
	if err != nil {
		fatal(err)
	}
	eng, err := engine.New(table, engine.Config{
		Budget: *budget,
		Mode:   m,
		Rng:    noise.NewRand(*seed),
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("APEx: %d rows, budget B=%g, %s mode. One query per line; blank line to quit.\n",
		table.Size(), *budget, m)
	sc := query.NewLineScanner(os.Stdin)
	for {
		fmt.Printf("[spent %.4g / %.4g] apex> ", eng.Spent(), eng.Budget())
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			break
		}
		if strings.HasPrefix(line, ".") {
			runCommand(eng, line)
			continue
		}
		q, err := query.ParseLine(line)
		if err != nil {
			fmt.Println("parse error:", err)
			continue
		}
		if q == nil { // comment line
			continue
		}
		ans, err := eng.Ask(q)
		if errors.Is(err, engine.ErrDenied) {
			fmt.Println("Query Denied (insufficient privacy budget)")
			continue
		}
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		printAnswer(q, ans)
	}
	fmt.Printf("session over: total privacy loss %.4g of %.4g\n", eng.Spent(), eng.Budget())
}

// runCommand executes a REPL dot-command: .budget, .transcript, .advise <query>.
func runCommand(eng *engine.Engine, line string) {
	cmd, rest, _ := strings.Cut(line, " ")
	switch cmd {
	case ".budget":
		fmt.Printf("budget B=%g, spent %.4g, remaining %.4g\n",
			eng.Budget(), eng.Spent(), eng.Remaining())
	case ".transcript":
		for i, e := range eng.Transcript() {
			switch {
			case e.Denied:
				fmt.Printf("  %3d DENIED\n", i+1)
			case e.Query != nil:
				fmt.Printf("  %3d %-4s eps=%.4g via %s\n", i+1, e.Query.Kind, e.Epsilon, e.Answer.Mechanism)
			default:
				fmt.Printf("  %3d %-12s eps=%.4g\n", i+1, e.Label, e.Epsilon)
			}
		}
	case ".advise":
		q, err := query.Parse(strings.TrimSpace(rest))
		if err != nil {
			fmt.Println("parse error:", err)
			return
		}
		best, affordable, err := eng.Advise(q)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		if best == nil {
			fmt.Println("no applicable mechanism")
			return
		}
		fmt.Printf("cheapest: %s, eps in [%.4g, %.4g], affordable: %v\n",
			best.Mechanism.Name(), best.Cost.Lower, best.Cost.Upper, affordable)
	case ".help":
		fmt.Println("commands: .budget | .transcript | .advise <query> | .help")
	default:
		fmt.Printf("unknown command %q (try .help)\n", cmd)
	}
}

func printAnswer(q *query.Query, ans *engine.Answer) {
	fmt.Printf("mechanism=%s eps=%.4g\n", ans.Mechanism, ans.Epsilon)
	switch q.Kind {
	case query.WCQ:
		for i, p := range ans.Predicates {
			fmt.Printf("  %-40s %.1f\n", p, ans.Counts[i])
		}
	default:
		sel := ans.SelectedPredicates()
		if len(sel) == 0 {
			fmt.Println("  (no bins selected)")
		}
		for _, p := range sel {
			fmt.Printf("  %s\n", p)
		}
	}
}

// loadSchema reads a schema file in the shared text format (see
// dataset.ReadSchemaText).
func loadSchema(path string) (*dataset.Schema, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.ReadSchemaText(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "apex:", err)
	os.Exit(1)
}
