// Command apex-server hosts APEx as a multi-tenant HTTP/JSON service: the
// data owner registers named datasets (CSV + schema pairs), analysts open
// sessions against them with a privacy budget, post exploration queries in
// the paper's text syntax, and audit the full per-session transcript.
//
//	apex-server -listen :8080 \
//	  -data-dir /var/lib/apex \
//	  -dataset people=people.csv,people.schema \
//	  -dataset taxi=taxi.csv,taxi.schema \
//	  -max-budget 2.0
//
// With -data-dir set the server is durable: registered datasets persist
// to a catalog, every session commit is fsynced into a per-session
// write-ahead log before the answer is released, and on startup the
// catalog and session logs are replayed — sessions resume with their
// exact remaining budgets and byte-identical transcripts, re-validated
// against the Definition 6.1 invariant. SIGTERM/SIGINT drains in-flight
// queries, flushes the logs and exits; kill -9 loses nothing that was
// ever acknowledged.
//
// Queries run through a per-dataset execution scheduler: pending distinct
// workloads are coalesced into one batched columnar pass, sessions are
// dispatched round-robin, and a full queue answers 429 + Retry-After
// (tune with -queue-depth, -sched-workers, -max-batch, -retry-after).
// Prometheus-format observability — per-mechanism latency, queue depth,
// batch sizes, budget-spend histograms — is served at /metrics.
//
// A quickstart with curl:
//
//	curl -s localhost:8080/v1/datasets
//	curl -s -X POST localhost:8080/v1/sessions \
//	  -d '{"dataset":"people","budget":1.0,"mode":"optimistic","seed":7}'
//	curl -s -X POST localhost:8080/v1/sessions/<id>/query \
//	  -d '{"query":"BIN D ON COUNT(*) WHERE W = { age BETWEEN 0 AND 50 } ERROR 100 CONFIDENCE 0.95;"}'
//	curl -s localhost:8080/v1/sessions/<id>/transcript
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/analytics"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/server"
	"repro/internal/store"
)

// datasetFlags collects repeated -dataset name=csv,schema values.
type datasetFlags []string

func (d *datasetFlags) String() string { return strings.Join(*d, " ") }

func (d *datasetFlags) Set(v string) error {
	*d = append(*d, v)
	return nil
}

func main() {
	var datasets datasetFlags
	var (
		listen       = flag.String("listen", ":8080", "address to serve on")
		dataDir      = flag.String("data-dir", "", "durable data directory (empty = in-memory only: datasets and transcripts vanish with the process)")
		maxBudget    = flag.Float64("max-budget", 0, "per-session budget cap (0 = uncapped)")
		maxSessions  = flag.Int("max-sessions", 0, "live session limit (0 = unlimited)")
		allowSeeds   = flag.Bool("allow-seeds", false, "let analysts fix their session RNG seed (voids privacy against an analyst who knows the seed; for trusted/reproducible use only)")
		drainWait    = flag.Duration("drain-timeout", 30*time.Second, "max time to drain in-flight requests on shutdown")
		queueDepth   = flag.Int("queue-depth", 0, "pending-query bound per dataset before 429 backpressure (0 = scheduler default)")
		schedWorkers = flag.Int("sched-workers", 0, "batch executors per dataset (0 = scheduler default)")
		maxBatch     = flag.Int("max-batch", 0, "max queries coalesced into one batched columnar pass (0 = scheduler default)")
		retryAfter   = flag.Duration("retry-after", 0, "Retry-After hint attached to 429 rejections (0 = scheduler default)")
		debugAddr    = flag.String("debug-addr", "", "address for the private debug listener (net/http/pprof + runtime metrics); empty = disabled, keep it off the public network")
		slowQuery    = flag.Duration("slow-query", 0, "log a structured JSON line (with trace ID and per-phase breakdown) for every request at least this slow; 0 = disabled")
		traceCap     = flag.Int("trace-capacity", 0, "recent request traces retained for GET /v1/debug/traces (0 = default)")
		disableTrace = flag.Bool("disable-tracing", false, "turn off request tracing (span recording, /v1/debug/traces, slow-query log); X-Request-ID assignment stays on")
		mmapThresh   = flag.Int64("mmap-threshold", server.DefaultMmapThreshold,
			"raw column bytes at/above which a durable dataset is served from its mmap'd column-store segment instead of the heap (0 = always mmap, negative = never)")
		coldStart = flag.Bool("cold-start", false,
			"recover datasets strictly from column-store segments: never re-parse source CSV (entries without a valid segment are skipped)")
		scrubInterval = flag.Duration("scrub-interval", 0,
			"pause between background integrity-scrub cycles (segment/WAL/sidecar checksums, live transcript re-validation); 0 = scrubbing off")
		scrubRate = flag.Int64("scrub-rate", 64,
			"scrub read-rate limit in MiB/s so verification never competes with query service for disk bandwidth (0 = unpaced)")
		adaptiveSched = flag.Bool("adaptive-sched", false,
			"let the scheduler tune GatherDelay/MaxBatch per dataset from live queue-wait histograms (decisions are logged and exported as gauges)")
		disableAnalytics = flag.Bool("disable-analytics", false,
			"turn off the workload analytics plane (cost attribution, /v1/debug/top, /v1/debug/timeseries, flight recorder)")
		analyticsTopK = flag.Int("analytics-topk", 0,
			"capacity of the per-session/per-workload cost heavy-hitter sketches (0 = default 64)")
		tsWindow = flag.Int("timeseries-window", 0,
			"samples retained in the in-process time-series ring served at /v1/debug/timeseries (0 = default 600)")
		tsInterval = flag.Duration("timeseries-interval", 0,
			"self-snapshot pace of the time-series sampler, also the flight-recorder check pace (0 = default 1s)")
		recP99 = flag.Duration("recorder-p99", 0,
			"capture an incident bundle when p99 total request latency reaches this (0 = latency trigger off; adjustable at runtime via PUT /v1/debug/config)")
		recQueueDepth = flag.Int("recorder-queue-depth", 0,
			"capture an incident bundle when any dataset queue reaches this depth (0 = depth trigger off; adjustable at runtime via PUT /v1/debug/config)")
		recProfile = flag.Duration("recorder-profile", 0,
			"CPU-profile length inside each incident bundle (0 = default 2s)")
		recCooldown = flag.Duration("recorder-cooldown", 0,
			"minimum spacing between incident captures (0 = default 5m)")
		recMaxBundles = flag.Int("recorder-max-bundles", 0,
			"incident bundles kept on disk before the oldest are pruned (0 = default 8)")
	)
	flag.Var(&datasets, "dataset", "dataset to host as name=data.csv,schema.file (repeatable)")
	flag.Parse()

	reg := server.NewRegistry()
	reg.SetStorage(server.StoragePolicy{MmapThreshold: *mmapThresh, ColdStart: *coldStart})

	// Recovery phase 1: the catalog. Datasets persisted by a previous
	// life come back first so recovered sessions find their tables.
	// Entries with a valid column-store segment reopen via mmap-or-heap
	// per the storage policy without touching the source CSV; the logged
	// source and elapsed time make a CSV re-parse regression visible.
	var st *store.Store
	if *dataDir != "" {
		var err error
		if st, err = store.Open(*dataDir); err != nil {
			log.Fatalf("apex-server: %v", err)
		}
		reg.AttachStore(st)
		recovered, skipped, err := reg.RecoverDatasets()
		if err != nil {
			log.Fatalf("apex-server: recover catalog: %v", err)
		}
		for _, s := range skipped {
			log.Printf("apex-server: catalog entry not recovered: %s", s)
		}
		for _, rec := range recovered {
			log.Printf("apex-server: dataset %q recovered from %s: %d rows, storage=%s, took %s",
				rec.Name, rec.Source, rec.Rows, rec.Mode, rec.Elapsed.Round(time.Microsecond))
		}
	}

	for _, spec := range datasets {
		name, files, ok := strings.Cut(spec, "=")
		if !ok {
			log.Fatalf("apex-server: -dataset %q: want name=data.csv,schema.file", spec)
		}
		csvPath, schemaPath, ok := strings.Cut(files, ",")
		if !ok {
			log.Fatalf("apex-server: -dataset %q: want name=data.csv,schema.file", spec)
		}
		if _, exists := reg.Get(name); exists {
			// Recovered from the catalog; the durable copy wins so live
			// sessions never see their table change across a restart.
			log.Printf("apex-server: dataset %q already recovered from %s; ignoring -dataset files", name, *dataDir)
			continue
		}
		if err := reg.LoadFiles(name, csvPath, schemaPath); err != nil {
			log.Fatalf("apex-server: %v", err)
		}
		t, _ := reg.Get(name)
		log.Printf("apex-server: dataset %q loaded: %d rows, %d attributes",
			name, t.Size(), t.Schema().Arity())
	}
	if len(reg.Names()) == 0 {
		log.Printf("apex-server: starting with no datasets; register them via POST /v1/datasets")
	}

	srv := server.New(reg, server.Config{
		MaxBudget:   *maxBudget,
		MaxSessions: *maxSessions,
		AllowSeeds:  *allowSeeds,
		Store:       st,
		Sched: sched.Config{
			QueueDepth:  *queueDepth,
			Workers:     *schedWorkers,
			MaxBatch:    *maxBatch,
			RetryAfter:  *retryAfter,
			Adaptive:    *adaptiveSched,
			AdaptiveLog: os.Stderr,
		},
		Trace: server.TraceConfig{
			Disable:   *disableTrace,
			Capacity:  *traceCap,
			SlowQuery: *slowQuery,
		},
		Scrub: server.ScrubConfig{
			Interval:        *scrubInterval,
			ReadBytesPerSec: *scrubRate << 20,
		},
		Analytics: server.AnalyticsConfig{
			Disable:            *disableAnalytics,
			TopK:               *analyticsTopK,
			TimeseriesWindow:   *tsWindow,
			TimeseriesInterval: *tsInterval,
			Recorder: analytics.RecorderConfig{
				Dir:                 incidentDir(*dataDir),
				MaxBundles:          *recMaxBundles,
				CPUProfileDuration:  *recProfile,
				Cooldown:            *recCooldown,
				P99Threshold:        *recP99,
				QueueDepthThreshold: *recQueueDepth,
			},
		},
	})
	if dir := incidentDir(*dataDir); dir != "" && !*disableAnalytics {
		log.Printf("apex-server: flight recorder armed: bundles under %s (p99 trigger: %s, queue-depth trigger: %d)",
			dir, *recP99, *recQueueDepth)
	} else if (*recP99 > 0 || *recQueueDepth > 0) && incidentDir(*dataDir) == "" {
		log.Printf("apex-server: flight recorder triggers set but no -data-dir; recorder disabled (bundles need a durable directory)")
	}
	if *scrubInterval > 0 {
		log.Printf("apex-server: background scrubber on: cycle every %s, reads paced at %d MiB/s", *scrubInterval, *scrubRate)
	}

	// The debug listener is opt-in and separate from the public one, so
	// profiling endpoints (pprof can dump heap contents) never share a
	// port with analyst traffic. Enabling it also registers the Go runtime
	// gauges (goroutines, heap, GC pauses) into the metrics registry.
	if *debugAddr != "" {
		obs.RegisterRuntimeMetrics(srv.Metrics())
		dbg := &http.Server{Addr: *debugAddr, Handler: obs.DebugHandler(srv.Metrics())}
		go func() {
			log.Printf("apex-server: debug listener (pprof + metrics) on %s", *debugAddr)
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("apex-server: debug listener: %v", err)
			}
		}()
	}

	// Recovery phase 2: session logs. Torn tails are repaired to the
	// last valid frame; transcripts that fail Definition 6.1 validation
	// are quarantined, never served.
	if st != nil {
		restored, skipped, err := srv.RecoverSessions(st)
		if err != nil {
			log.Fatalf("apex-server: recover sessions: %v", err)
		}
		for _, s := range skipped {
			log.Printf("apex-server: session not restored: %s", s)
		}
		if restored > 0 {
			log.Printf("apex-server: %d session(s) restored with remaining budgets intact", restored)
		}
	}

	httpSrv := &http.Server{Addr: *listen, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("apex-server: listening on %s (datasets: %s, durability: %s)",
		*listen, datasetList(reg), durabilityDesc(*dataDir))

	// Graceful shutdown: stop accepting, drain in-flight asks — each
	// handler blocks until its queued query executes and commits to its
	// WAL, so an exhausted drain means the scheduler queues are empty —
	// then close the scheduler (rejecting, never dropping, anything a
	// timed-out drain left queued-but-unstarted) and flush every session
	// log.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case err := <-errCh:
		log.Fatalf("apex-server: %v", err)
	case <-ctx.Done():
		stop()
		log.Printf("apex-server: signal received; draining in-flight requests (up to %s)", *drainWait)
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := srv.Scheduler().Drain(drainCtx); err != nil {
			log.Printf("apex-server: scheduler drain: %v (queued work will be rejected, not dropped)", err)
		}
		if err := httpSrv.Shutdown(drainCtx); err != nil {
			log.Printf("apex-server: drain: %v", err)
		}
		if err := srv.Shutdown(); err != nil {
			log.Printf("apex-server: flush session logs: %v", err)
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("apex-server: %v", err)
		}
		log.Printf("apex-server: shutdown complete")
		os.Exit(0)
	}
}

func datasetList(reg *server.Registry) string {
	names := reg.Names()
	if len(names) == 0 {
		return "none"
	}
	return strings.Join(names, ", ")
}

// incidentDir places flight-recorder bundles under the durable data
// directory; without one the recorder stays off.
func incidentDir(dataDir string) string {
	if dataDir == "" {
		return ""
	}
	return filepath.Join(dataDir, "incidents")
}

func durabilityDesc(dataDir string) string {
	if dataDir == "" {
		return "none (in-memory)"
	}
	return dataDir
}
