// Command apex-server hosts APEx as a multi-tenant HTTP/JSON service: the
// data owner registers named datasets (CSV + schema pairs), analysts open
// sessions against them with a privacy budget, post exploration queries in
// the paper's text syntax, and audit the full per-session transcript.
//
//	apex-server -listen :8080 \
//	  -dataset people=people.csv,people.schema \
//	  -dataset taxi=taxi.csv,taxi.schema \
//	  -max-budget 2.0
//
// A quickstart with curl:
//
//	curl -s localhost:8080/v1/datasets
//	curl -s -X POST localhost:8080/v1/sessions \
//	  -d '{"dataset":"people","budget":1.0,"mode":"optimistic","seed":7}'
//	curl -s -X POST localhost:8080/v1/sessions/<id>/query \
//	  -d '{"query":"BIN D ON COUNT(*) WHERE W = { age BETWEEN 0 AND 50 } ERROR 100 CONFIDENCE 0.95;"}'
//	curl -s localhost:8080/v1/sessions/<id>/transcript
package main

import (
	"flag"
	"log"
	"net/http"
	"strings"

	"repro/internal/server"
)

// datasetFlags collects repeated -dataset name=csv,schema values.
type datasetFlags []string

func (d *datasetFlags) String() string { return strings.Join(*d, " ") }

func (d *datasetFlags) Set(v string) error {
	*d = append(*d, v)
	return nil
}

func main() {
	var datasets datasetFlags
	var (
		listen      = flag.String("listen", ":8080", "address to serve on")
		maxBudget   = flag.Float64("max-budget", 0, "per-session budget cap (0 = uncapped)")
		maxSessions = flag.Int("max-sessions", 0, "live session limit (0 = unlimited)")
		allowSeeds  = flag.Bool("allow-seeds", false, "let analysts fix their session RNG seed (voids privacy against an analyst who knows the seed; for trusted/reproducible use only)")
	)
	flag.Var(&datasets, "dataset", "dataset to host as name=data.csv,schema.file (repeatable)")
	flag.Parse()

	reg := server.NewRegistry()
	for _, spec := range datasets {
		name, files, ok := strings.Cut(spec, "=")
		if !ok {
			log.Fatalf("apex-server: -dataset %q: want name=data.csv,schema.file", spec)
		}
		csvPath, schemaPath, ok := strings.Cut(files, ",")
		if !ok {
			log.Fatalf("apex-server: -dataset %q: want name=data.csv,schema.file", spec)
		}
		if err := reg.LoadFiles(name, csvPath, schemaPath); err != nil {
			log.Fatalf("apex-server: %v", err)
		}
		t, _ := reg.Get(name)
		log.Printf("apex-server: dataset %q loaded: %d rows, %d attributes",
			name, t.Size(), t.Schema().Arity())
	}
	if len(reg.Names()) == 0 {
		log.Printf("apex-server: starting with no datasets; register them via POST /v1/datasets")
	}

	srv := server.New(reg, server.Config{
		MaxBudget:   *maxBudget,
		MaxSessions: *maxSessions,
		AllowSeeds:  *allowSeeds,
	})
	log.Printf("apex-server: listening on %s (datasets: %s)", *listen, datasetList(reg))
	log.Fatal(http.ListenAndServe(*listen, srv.Handler()))
}

func datasetList(reg *server.Registry) string {
	names := reg.Names()
	if len(names) == 0 {
		return "none"
	}
	return strings.Join(names, ", ")
}
