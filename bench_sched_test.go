// Scheduler throughput benchmark: N concurrent analysts issuing DISTINCT
// workloads over one shared dataset, driven either directly through
// engine.Ask (the pre-scheduler serialized path: every request pays its
// own full columnar scan) or through the per-dataset scheduler (pending
// workloads coalesced into one deduplicated, parallel columnar pass per
// batch). The "traced", "scrubbed" and "analytics" modes layer the
// observability, verification and workload-attribution planes on top of
// "sched" to price each one. Run with
//
//	go test -run '^$' -bench SchedulerThroughput -benchmem
//
// and see BENCH_sched.json for recorded numbers. Workloads are distinct
// per request — shared capital-gain bins plus a per-request unique range
// — so nothing is served from the evaluation memo for free; what the
// batched path exploits is the overlap *between concurrently pending*
// workloads, exactly the server's concurrent-analyst regime. The
// 1-analyst case measures scheduler overhead (batches of one).
//
// The engines run the Laplace mechanism: the strategy mechanism's
// Monte-Carlo translation (10000 samples per distinct workload, paper
// §5.2) costs ~9ms per fresh workload on this hardware, is identical on
// both paths, and would drown the data-plane difference this benchmark
// isolates.
package repro

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/accuracy"
	"repro/internal/analytics"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/mechanism"
	"repro/internal/metrics"
	"repro/internal/noise"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/sched"
	"repro/internal/scrub"
	"repro/internal/workload"
)

func schedBenchRows(b *testing.B) int {
	if testing.Short() {
		return 20_000
	}
	return 100_000
}

// schedBenchQuery builds the n-th distinct workload: ten shared
// capital-gain bins plus one unique range, as WCQ.
func schedBenchQuery(b *testing.B, n int64) *query.Query {
	bins, err := workload.Histogram1D("capital gain", 0, 5000, 500)
	if err != nil {
		b.Fatal(err)
	}
	lo := float64(n%4000) + 0.25
	preds := append(bins, dataset.Range{Attr: "capital gain", Lo: lo, Hi: lo + 250})
	q, err := query.NewWCQ(preds, accuracy.Requirement{Alpha: 500, Beta: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	return q
}

func BenchmarkSchedulerThroughput(b *testing.B) {
	for _, analysts := range []int{1, 8, 64} {
		for _, mode := range []string{"direct", "sched", "traced", "scrubbed", "analytics"} {
			b.Run(fmt.Sprintf("analysts=%d/%s", analysts, mode), func(b *testing.B) {
				d := columnarBenchTable(schedBenchRows(b))
				cache := workload.NewTransformCache(workload.Options{})
				engines := make([]*engine.Engine, analysts)
				for i := range engines {
					e, err := engine.New(d, engine.Config{
						Budget:     1e12,
						Mode:       engine.Optimistic,
						Rng:        noise.NewRand(int64(i + 1)),
						Transforms: cache,
						Mechanisms: []mechanism.Mechanism{mechanism.LM{}},
					})
					if err != nil {
						b.Fatal(err)
					}
					engines[i] = e
				}
				var s *sched.Scheduler
				if mode != "direct" {
					s = sched.New(sched.Config{MaxBatch: 64, QueueDepth: 4096})
					defer s.Close()
				}
				// "traced" is "sched" with the full observability path on:
				// a root trace per request, every pipeline phase recorded
				// into the ring and the phase histograms — the delta
				// against "sched" is the tracing overhead.
				var tracer *obs.Tracer
				if mode == "traced" {
					tracer = obs.New(obs.Config{})
				}
				// "analytics" is "traced" with the workload analytics plane
				// attached: every finished trace is tagged for attribution
				// and folded into the per-dataset aggregates and the
				// session/workload SpaceSaving sketches on the request
				// goroutine — the delta against "traced" is the attribution
				// overhead.
				var collector *analytics.Collector
				if mode == "analytics" {
					collector = analytics.NewCollector(analytics.Config{})
					tracer = obs.New(obs.Config{OnFinish: collector.Observe})
				}
				// "scrubbed" is "sched" with the continuous verification
				// plane live: a background scrubber re-validating every
				// engine's transcript (Definition 6.1) and cross-checking
				// its spent counter once per 100ms, concurrent with the
				// query load — the delta against "sched" is the
				// verification overhead.
				if mode == "scrubbed" {
					sc := scrub.New(scrub.Config{
						Interval: 100 * time.Millisecond,
						Metrics:  metrics.NewRegistry(),
						Sessions: func() []scrub.SessionAccounting {
							out := make([]scrub.SessionAccounting, len(engines))
							for i, e := range engines {
								out[i] = scrub.SessionAccounting{
									ID: fmt.Sprintf("s%d", i), Dataset: "adult", Engine: e,
								}
							}
							return out
						},
					})
					sc.Start()
					defer sc.Stop()
				}
				var next atomic.Int64
				b.ResetTimer()
				var wg sync.WaitGroup
				for a := 0; a < analysts; a++ {
					wg.Add(1)
					go func(a int) {
						defer wg.Done()
						for {
							n := next.Add(1)
							if n > int64(b.N) {
								return
							}
							q := schedBenchQuery(b, n)
							var err error
							switch {
							case tracer != nil:
								rid := fmt.Sprintf("bench-%d", n)
								ctx, tr := tracer.Start(obs.WithRequestID(context.Background(), rid), rid, "bench query")
								if collector != nil {
									// The workload tag comes from engine.Prepare.
									tr.Tag("dataset", "adult")
									tr.Tag("session", fmt.Sprintf("s%d", a))
								}
								_, err = s.Ask(ctx, "adult", fmt.Sprintf("s%d", a), engines[a], q)
								tr.Finish()
							case s != nil:
								_, err = s.Ask(context.Background(), "adult", fmt.Sprintf("s%d", a), engines[a], q)
							default:
								_, err = engines[a].Ask(q)
							}
							if err != nil {
								b.Error(err)
								return
							}
						}
					}(a)
				}
				wg.Wait()
			})
		}
	}
}
