// Column-store benchmarks: ingest throughput of the streaming segment
// builder, the verify-and-mmap open cost, and Histogram scan throughput
// over heap-resident vs mmap-backed tables — plus a resident-set probe
// showing a mapped dataset serving scans with RSS growth bounded by the
// columns the workload touches, not the table size. Run with
//
//	go test -run '^$' -bench Colstore -benchmem
//	APEX_COLSTORE_ROWS=10000000 go test -run ColstoreRSS -v
//
// and see BENCH_colstore.json for recorded numbers. Sizes above 100k are
// skipped under -short so the CI smoke stays quick.
package repro

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/colstore"
	"repro/internal/dataset"
	"repro/internal/workload"
)

// colstoreBenchSchema is wider than the scan workload on purpose: the
// workload touches age and state only, so the income/score/group columns
// are pages an mmap-backed table never faults in.
func colstoreBenchSchema() *dataset.Schema {
	states := make([]string, 50)
	for i := range states {
		states[i] = fmt.Sprintf("S%02d", i)
	}
	groups := make([]string, 20)
	for i := range groups {
		groups[i] = fmt.Sprintf("G%02d", i)
	}
	return dataset.MustSchema(
		dataset.Attribute{Name: "age", Kind: dataset.Continuous, Min: 0, Max: 100},
		dataset.Attribute{Name: "state", Kind: dataset.Categorical, Values: states},
		dataset.Attribute{Name: "income", Kind: dataset.Continuous, Min: 0, Max: 1e6},
		dataset.Attribute{Name: "group", Kind: dataset.Categorical, Values: groups},
		dataset.Attribute{Name: "score", Kind: dataset.Continuous, Min: 0, Max: 1},
	)
}

// colstoreBenchRow fills row deterministically from an LCG state.
func colstoreBenchRow(row dataset.Tuple, schema *dataset.Schema, x *uint64) {
	next := func() uint64 { *x = *x*6364136223846793005 + 1442695040888963407; return *x >> 33 }
	row[0] = dataset.Num(float64(next() % 100))
	row[1] = dataset.Str(schema.Attr(1).Values[next()%50])
	row[2] = dataset.Num(float64(next() % 1_000_000))
	row[3] = dataset.Str(schema.Attr(3).Values[next()%20])
	row[4] = dataset.Num(float64(next()%1000) / 1000)
}

var (
	colstoreBenchDirOnce sync.Once
	colstoreBenchDir     string
	colstoreBenchSegs    sync.Map // rows -> segment path
)

// colstoreBenchSegment builds (once per size) a segment in a shared temp
// dir that lives for the test process.
func colstoreBenchSegment(tb testing.TB, rows int) string {
	colstoreBenchDirOnce.Do(func() {
		dir, err := os.MkdirTemp("", "colstore-bench-")
		if err != nil {
			tb.Fatal(err)
		}
		colstoreBenchDir = dir
	})
	if p, ok := colstoreBenchSegs.Load(rows); ok {
		return p.(string)
	}
	path := filepath.Join(colstoreBenchDir, fmt.Sprintf("bench-%d.seg", rows))
	schema := colstoreBenchSchema()
	b, err := colstore.NewBuilder(path, schema)
	if err != nil {
		tb.Fatal(err)
	}
	row := make(dataset.Tuple, schema.Arity())
	x := uint64(rows)
	for i := 0; i < rows; i++ {
		colstoreBenchRow(row, schema, &x)
		if err := b.Append(row); err != nil {
			tb.Fatal(err)
		}
	}
	if _, err := b.Finish(); err != nil {
		tb.Fatal(err)
	}
	colstoreBenchSegs.Store(rows, path)
	return path
}

func colstoreBenchSizes(short bool) []int {
	if short {
		return []int{100_000}
	}
	return []int{1_000_000, 10_000_000}
}

func colstoreSizeName(rows int) string {
	switch {
	case rows >= 1_000_000:
		return fmt.Sprintf("%dM", rows/1_000_000)
	default:
		return fmt.Sprintf("%dk", rows/1000)
	}
}

// colstoreBenchTransform builds the scan workload: 20 age bins + 50 state
// equalities (two components, touching one continuous and one categorical
// column).
func colstoreBenchTransform(tb testing.TB, d *dataset.Table) *workload.Transformed {
	bins, err := workload.Histogram1D("age", 0, 100, 5)
	if err != nil {
		tb.Fatal(err)
	}
	preds := append(bins, workload.CategoryPredicates("state", colstoreBenchSchema().Attr(1).Values)...)
	tr, err := workload.Transform(d.Schema(), preds, workload.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	return tr
}

// BenchmarkColstoreBuild measures streaming ingest (Builder.Append +
// Finish) in rows/s and bytes/s of raw column payload.
func BenchmarkColstoreBuild(b *testing.B) {
	for _, rows := range colstoreBenchSizes(testing.Short()) {
		b.Run(colstoreSizeName(rows), func(b *testing.B) {
			schema := colstoreBenchSchema()
			dir := b.TempDir()
			row := make(dataset.Tuple, schema.Arity())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				path := filepath.Join(dir, fmt.Sprintf("b%d.seg", i))
				bd, err := colstore.NewBuilder(path, schema)
				if err != nil {
					b.Fatal(err)
				}
				x := uint64(rows)
				for j := 0; j < rows; j++ {
					colstoreBenchRow(row, schema, &x)
					if err := bd.Append(row); err != nil {
						b.Fatal(err)
					}
				}
				res, err := bd.Finish()
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(res.DataBytes)
				os.Remove(path)
			}
			b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// BenchmarkColstoreOpen measures the full verify-checksums-and-mmap open.
func BenchmarkColstoreOpen(b *testing.B) {
	for _, rows := range colstoreBenchSizes(testing.Short()) {
		b.Run(colstoreSizeName(rows), func(b *testing.B) {
			path := colstoreBenchSegment(b, rows)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				seg, err := colstore.Open(path)
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(seg.DataBytes())
				seg.Close()
			}
		})
	}
}

// BenchmarkColstoreHistogram compares the same Histogram workload over
// the heap-resident copy and the mmap-backed table (steady state: pages
// warm), plus a cold-map variant that drops the resident pages before
// every scan (MADV_DONTNEED — faults back in from the page cache).
func BenchmarkColstoreHistogram(b *testing.B) {
	for _, rows := range colstoreBenchSizes(testing.Short()) {
		path := colstoreBenchSegment(b, rows)
		seg, err := colstore.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		defer seg.Close()
		heap, err := colstore.Load(path)
		if err != nil {
			b.Fatal(err)
		}
		run := func(d *dataset.Table, cold bool) func(*testing.B) {
			return func(b *testing.B) {
				tr := colstoreBenchTransform(b, d)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if cold {
						b.StopTimer()
						seg.Release()
						b.StartTimer()
					}
					if _, err := tr.Histogram(d); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
			}
		}
		name := colstoreSizeName(rows)
		b.Run("heap/"+name, run(heap, false))
		b.Run("mmap/"+name, run(seg.Table(), false))
		b.Run("mmap-cold/"+name, run(seg.Table(), true))
	}
}

// TestColstoreRSSBound is the beyond-RAM acceptance probe: it serves a
// wide mapped dataset (default 1M rows; set APEX_COLSTORE_ROWS=10000000
// for the recorded 10M run), scans only the 2-of-5-column workload, and
// asserts the process RSS growth stays well below the raw column payload
// — the untouched columns never become resident.
func TestColstoreRSSBound(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows := 1_000_000
	if v := os.Getenv("APEX_COLSTORE_ROWS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatal(err)
		}
		rows = n
	}
	path := colstoreBenchSegment(t, rows)
	debug.FreeOSMemory()
	baseRSS := readRSS(t)

	seg, err := colstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	tr := colstoreBenchTransform(t, seg.Table())
	for i := 0; i < 3; i++ {
		if _, err := tr.Histogram(seg.Table()); err != nil {
			t.Fatal(err)
		}
	}
	debug.FreeOSMemory()
	afterRSS := readRSS(t)
	resident, err := seg.ResidentBytes()
	if err != nil {
		t.Fatal(err)
	}

	raw := seg.DataBytes()
	grown := afterRSS - baseRSS
	t.Logf("rows=%d raw=%d MiB mapped=%d MiB resident(mincore)=%d MiB rss base=%d MiB after=%d MiB grown=%d MiB",
		rows, raw>>20, seg.MappedBytes()>>20, resident>>20, baseRSS>>20, afterRSS>>20, grown>>20)
	// The workload touches age (8 B/row) + state (4 B/row) + their
	// bitmap, ≈ 12.2 B/row of the ≈ 33 B/row payload. Allow generous
	// slack for the Go heap and mincore rounding: growth must stay under
	// 60% of raw — failing means untouched columns became resident.
	if grown > raw*6/10 {
		t.Fatalf("RSS grew %d MiB, more than 60%% of the %d MiB raw payload", grown>>20, raw>>20)
	}
}

// readRSS returns the process resident set in bytes (VmRSS).
func readRSS(t *testing.T) int64 {
	t.Helper()
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		t.Skipf("no /proc: %v", err)
	}
	for _, line := range strings.Split(string(b), "\n") {
		if strings.HasPrefix(line, "VmRSS:") {
			fields := strings.Fields(line)
			if len(fields) >= 2 {
				kb, err := strconv.ParseInt(fields[1], 10, 64)
				if err != nil {
					t.Fatal(err)
				}
				return kb << 10
			}
		}
	}
	t.Fatal("VmRSS not found")
	return 0
}
