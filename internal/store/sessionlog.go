package store

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

// SessionMeta is the header frame of every session log: everything the
// server needs to rebuild the session shell around the replayed
// transcript. The RNG seed is deliberately NOT persisted — a recovered
// session draws a fresh random source, because re-running the original
// seed would replay noise the analyst has already observed.
type SessionMeta struct {
	ID      string    `json:"id"`
	Dataset string    `json:"dataset"`
	Budget  float64   `json:"budget"`
	Mode    string    `json:"mode"`
	Reuse   bool      `json:"reuse,omitempty"`
	Created time.Time `json:"created"`
}

// SessionLog is one session's durable transcript: a WAL whose first
// frame is the SessionMeta and whose subsequent frames are encoded
// engine entries, appended by the engine's commit hook as each
// interaction commits.
type SessionLog struct {
	wal  *WAL
	meta SessionMeta
}

// Meta returns the log's header.
func (l *SessionLog) Meta() SessionMeta { return l.meta }

// AppendEntry frames one committed transcript entry into the log and
// returns once it is durable. The wait for the WAL's group-commit fsync
// is recorded as a "wal_flush" span on the request's trace — under high
// concurrency an entry mostly rides a neighbor's fsync, and this span is
// where that shows up (or doesn't).
func (l *SessionLog) AppendEntry(ctx context.Context, e engine.Entry) error {
	b, err := engine.EncodeEntry(e)
	if err != nil {
		return err
	}
	start := time.Now()
	err = l.wal.Append(b)
	if sp := obs.RecordSpan(ctx, "wal_flush", start, time.Now()); sp != nil {
		sp.Set("bytes", len(b))
	}
	return err
}

// Close flushes and closes the log, leaving the file in place to be
// recovered on the next start (the graceful-shutdown path).
func (l *SessionLog) Close() error { return l.wal.Close() }

// Finish closes the log and marks it finished (the analyst closed the
// session): the file is renamed aside so recovery no longer restores the
// session, but the transcript is retained for audit.
func (l *SessionLog) Finish() error { return l.retire(".closed") }

// Quarantine closes the log and marks it invalid so recovery refuses to
// serve it; the bytes are retained for forensics.
func (l *SessionLog) Quarantine() error { return l.retire(".invalid") }

// Discard closes the log and deletes its file. It is for the narrow
// window where session construction fails after the log was created but
// before the session was ever visible — nothing served, nothing to audit.
func (l *SessionLog) Discard() error {
	closeErr := l.wal.Close()
	if err := os.Remove(l.wal.Path()); err != nil {
		return fmt.Errorf("store: discard session log: %w", err)
	}
	if err := syncDir(filepath.Dir(l.wal.Path())); err != nil {
		return err
	}
	return closeErr
}

func (l *SessionLog) retire(suffix string) error {
	closeErr := l.wal.Close()
	if err := os.Rename(l.wal.Path(), l.wal.Path()+suffix); err != nil {
		return fmt.Errorf("store: retire session log: %w", err)
	}
	if err := syncDir(filepath.Dir(l.wal.Path())); err != nil {
		return err
	}
	return closeErr
}

// CreateSessionLog starts a new session log: the meta header frame is
// written and fsynced before the log is returned, so a session that was
// ever visible to an analyst is recoverable by id even if it crashes
// before its first query.
func (s *Store) CreateSessionLog(meta SessionMeta) (*SessionLog, error) {
	if meta.ID == "" || meta.ID != filepath.Base(meta.ID) || strings.HasPrefix(meta.ID, ".") {
		return nil, fmt.Errorf("store: invalid session id %q", meta.ID)
	}
	path := s.sessionPath(meta.ID)
	if _, err := os.Stat(path); err == nil {
		return nil, fmt.Errorf("store: session log %q already exists", meta.ID)
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("store: %w", err)
	}
	wal, frames, _, err := OpenWAL(path, WALOptions{})
	if err != nil {
		return nil, err
	}
	if len(frames) != 0 {
		wal.Close()
		return nil, fmt.Errorf("store: session log %q already has frames", meta.ID)
	}
	header, err := json.Marshal(meta)
	if err != nil {
		wal.Close()
		return nil, fmt.Errorf("store: session meta: %w", err)
	}
	if err := wal.Append(header); err != nil {
		wal.Close()
		return nil, err
	}
	// The file's own frames are durable, but the file itself is not until
	// its directory entry is — without this fsync a power loss could drop
	// the whole log, and with it a session's charged budget.
	if err := syncDir(s.sessionsDir()); err != nil {
		wal.Close()
		return nil, fmt.Errorf("store: session log: %w", err)
	}
	return &SessionLog{wal: wal, meta: meta}, nil
}

// RecoveredSession is one session log replayed at startup: its header,
// the decoded transcript entries that survived tail repair, how many
// corrupt trailing bytes were dropped, and the log itself — open and
// positioned for further appends.
type RecoveredSession struct {
	Meta           SessionMeta
	Entries        []engine.Entry
	Log            *SessionLog
	TruncatedBytes int64
}

// RecoverSessions replays every live session log under the store, in id
// order. Logs whose tail is torn or corrupt are repaired (truncated to
// the last valid frame) and still recovered; logs that are structurally
// beyond repair — unreadable header, an intact-CRC frame that no longer
// decodes — are quarantined (renamed *.wal.invalid) and reported in
// skipped rather than served.
func (s *Store) RecoverSessions() (recovered []RecoveredSession, skipped []string, err error) {
	entries, err := os.ReadDir(s.sessionsDir())
	if err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	var ids []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".wal") {
			continue // *.wal.closed, *.wal.invalid, strays
		}
		ids = append(ids, strings.TrimSuffix(name, ".wal"))
	}
	sort.Strings(ids)

	for _, id := range ids {
		rec, qerr := s.recoverSession(id)
		if qerr != nil {
			skipped = append(skipped, fmt.Sprintf("%s: %v", id, qerr))
			continue
		}
		recovered = append(recovered, *rec)
	}
	return recovered, skipped, nil
}

// recoverSession replays one log; on structural failure the log is
// quarantined and the error describes why.
func (s *Store) recoverSession(id string) (*RecoveredSession, error) {
	wal, frames, truncated, err := OpenWAL(s.sessionPath(id), WALOptions{})
	if err != nil {
		// Could not even open/repair: leave the file for the operator.
		return nil, err
	}
	quarantine := func(cause error) error {
		l := &SessionLog{wal: wal}
		if qerr := l.Quarantine(); qerr != nil {
			return fmt.Errorf("%v (quarantine failed: %v)", cause, qerr)
		}
		return cause
	}
	if len(frames) == 0 {
		return nil, quarantine(fmt.Errorf("empty log (no meta header survived)"))
	}
	var meta SessionMeta
	if err := json.Unmarshal(frames[0], &meta); err != nil {
		return nil, quarantine(fmt.Errorf("meta header: %v", err))
	}
	if meta.ID != id {
		return nil, quarantine(fmt.Errorf("meta id %q does not match file name %q", meta.ID, id))
	}
	ents := make([]engine.Entry, 0, len(frames)-1)
	for i, frame := range frames[1:] {
		e, err := engine.DecodeEntry(frame)
		if err != nil {
			return nil, quarantine(fmt.Errorf("entry %d: %v", i, err))
		}
		ents = append(ents, e)
	}
	return &RecoveredSession{
		Meta:           meta,
		Entries:        ents,
		Log:            &SessionLog{wal: wal, meta: meta},
		TruncatedBytes: truncated,
	}, nil
}
