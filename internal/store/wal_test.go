package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openWAL(t *testing.T, path string) (*WAL, [][]byte, int64) {
	t.Helper()
	w, frames, truncated, err := OpenWAL(path, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return w, frames, truncated
}

func TestWALAppendAndRecover(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.wal")
	w, frames, truncated := openWAL(t, path)
	if len(frames) != 0 || truncated != 0 {
		t.Fatalf("fresh WAL: frames=%d truncated=%d", len(frames), truncated)
	}
	var want [][]byte
	for i := 0; i < 20; i++ {
		p := []byte(fmt.Sprintf("payload-%d-%s", i, bytes.Repeat([]byte{byte(i)}, i*7)))
		want = append(want, p)
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	// Zero-length payloads are legal frames.
	want = append(want, []byte{})
	if err := w.Append(nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}

	w2, got, truncated := openWAL(t, path)
	defer w2.Close()
	if truncated != 0 {
		t.Fatalf("clean log reported %d truncated bytes", truncated)
	}
	if len(got) != len(want) {
		t.Fatalf("recovered %d frames, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("frame %d changed: %q vs %q", i, got[i], want[i])
		}
	}
	// The reopened log keeps appending after the recovered frames.
	if err := w2.Append([]byte("after-reopen")); err != nil {
		t.Fatal(err)
	}
}

// corruptTailCases mutate a valid log file to simulate crash damage.
var corruptTailCases = []struct {
	name string
	mut  func(data []byte) []byte
}{
	{"torn header", func(d []byte) []byte { return append(d, 0x17, 0x00) }},
	{"torn payload", func(d []byte) []byte {
		frame := make([]byte, frameHeaderSize+2)
		binary.LittleEndian.PutUint32(frame, 100) // claims 100 bytes, has 2
		binary.LittleEndian.PutUint32(frame[4:], 0)
		return append(d, frame...)
	}},
	{"bad crc in last frame", func(d []byte) []byte {
		d[len(d)-1] ^= 0xff
		return d
	}},
	{"absurd length", func(d []byte) []byte {
		frame := make([]byte, frameHeaderSize)
		binary.LittleEndian.PutUint32(frame, 1<<30)
		return append(d, frame...)
	}},
	{"trailing garbage", func(d []byte) []byte {
		return append(d, bytes.Repeat([]byte{0xde, 0xad}, 37)...)
	}},
}

func TestWALCorruptTailRecovery(t *testing.T) {
	for _, tc := range corruptTailCases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "c.wal")
			w, _, _ := openWAL(t, path)
			var want [][]byte
			for i := 0; i < 5; i++ {
				p := []byte(fmt.Sprintf("frame-%d", i))
				want = append(want, p)
				if err := w.Append(p); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}

			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mut(data), 0o644); err != nil {
				t.Fatal(err)
			}

			w2, got, truncated := openWAL(t, path)
			if truncated == 0 {
				t.Fatal("corruption not detected")
			}
			// "bad crc in last frame" damages frame 4 itself; everything
			// else damages bytes after it.
			wantFrames := want
			if tc.name == "bad crc in last frame" {
				wantFrames = want[:4]
			}
			if len(got) != len(wantFrames) {
				t.Fatalf("recovered %d frames, want %d", len(got), len(wantFrames))
			}
			for i := range wantFrames {
				if !bytes.Equal(got[i], wantFrames[i]) {
					t.Fatalf("frame %d corrupted: %q", i, got[i])
				}
			}
			// The file was truncated back to its last valid frame, so new
			// appends and a further reopen see a clean log.
			if err := w2.Append([]byte("post-repair")); err != nil {
				t.Fatal(err)
			}
			if err := w2.Close(); err != nil {
				t.Fatal(err)
			}
			w3, got3, truncated3 := openWAL(t, path)
			defer w3.Close()
			if truncated3 != 0 {
				t.Fatalf("repaired log still reports %d corrupt bytes", truncated3)
			}
			if len(got3) != len(wantFrames)+1 || !bytes.Equal(got3[len(got3)-1], []byte("post-repair")) {
				t.Fatalf("post-repair append lost: %d frames", len(got3))
			}
		})
	}
}

func TestWALRejectsNonWALFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not.wal")
	if err := os.WriteFile(path, []byte("definitely not a wal"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := OpenWAL(path, WALOptions{}); err == nil {
		t.Fatal("opened a non-WAL file")
	}
}

func TestWALRejectsOversizedFrame(t *testing.T) {
	path := filepath.Join(t.TempDir(), "big.wal")
	w, _, _ := openWAL(t, path)
	defer w.Close()
	if err := w.Append(make([]byte, maxFrameBytes+1)); err == nil {
		t.Fatal("oversized frame accepted")
	}
	// The rejection must not poison the log.
	if err := w.Append([]byte("fine")); err != nil {
		t.Fatalf("append after oversized rejection: %v", err)
	}
}

func TestWALGroupCommitConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.wal")
	w, _, _ := openWAL(t, path)
	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := w.Append([]byte(fmt.Sprintf("w%d-%d", g, i))); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, frames, truncated := openWAL(t, path)
	if truncated != 0 || len(frames) != writers*perWriter {
		t.Fatalf("recovered %d frames (truncated %d), want %d", len(frames), truncated, writers*perWriter)
	}
	// Every frame must be intact and unique.
	seen := make(map[string]bool, len(frames))
	for _, f := range frames {
		if seen[string(f)] {
			t.Fatalf("duplicate frame %q", f)
		}
		seen[string(f)] = true
	}
}

func TestWALAppendAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.wal")
	w, _, _ := openWAL(t, path)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("late")); err == nil {
		t.Fatal("append after close succeeded")
	}
}

// sanity-check the frame constants against the writer.
func TestWALFrameLayout(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.wal")
	w, _, _ := openWAL(t, path)
	payload := []byte("hello")
	if err := w.Append(payload); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data[:8]) != walMagic {
		t.Fatalf("magic = %q", data[:8])
	}
	if n := binary.LittleEndian.Uint32(data[8:]); n != uint32(len(payload)) {
		t.Fatalf("length field = %d", n)
	}
	if sum := binary.LittleEndian.Uint32(data[12:]); sum != crc32.Checksum(payload, crcTable) {
		t.Fatalf("crc field = %x", sum)
	}
	if !bytes.Equal(data[16:], payload) {
		t.Fatalf("payload = %q", data[16:])
	}
}
