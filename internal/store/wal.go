package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// walMagic opens every log file so recovery can tell a WAL from stray
// files; the trailing digit versions the frame format.
const walMagic = "APEXWAL1"

// maxFrameBytes bounds one frame payload (16 MiB). Appends above it are
// rejected, and a read length above it is treated as a corrupt tail —
// without the bound a few flipped bits in a length field could make
// recovery attempt a multi-gigabyte allocation.
const maxFrameBytes = 16 << 20

// frameHeaderSize is the per-frame prefix: uint32 payload length plus
// uint32 CRC-32C of the payload, both little-endian.
const frameHeaderSize = 8

// crcTable is the Castagnoli polynomial, the standard for storage CRCs.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrWALClosed is returned by appends after Close.
var ErrWALClosed = errors.New("store: WAL is closed")

// WAL is an append-only, CRC-framed log with group-commit durability:
// Append returns only after the frame is fsynced, but concurrent appends
// share fsyncs — whichever appender reaches the sync path first flushes
// everything written so far and the rest observe their frame already
// durable. Under load this batches many commits per disk flush without
// ever acknowledging an unflushed write.
type WAL struct {
	path string
	opts WALOptions

	mu       sync.Mutex // serializes writes and guards all fields below
	f        *os.File
	size     int64
	writeSeq int64 // frames written to the OS
	synced   int64 // frames known durable
	err      error // sticky failure; the WAL refuses further work
	closed   bool

	syncMu sync.Mutex // serializes fsyncs; the group-commit queue
}

// WALOptions tunes one log.
type WALOptions struct {
	// NoSync skips fsync on append (Close still syncs). Only for tests
	// and benchmarks: a crash can lose acknowledged frames.
	NoSync bool
}

// OpenWAL opens or creates the log at path and recovers its contents: it
// returns every intact frame payload in order and truncates any corrupt
// or torn tail (short frame, bad CRC, absurd length) so the log ends at
// its last valid frame before new appends go in. truncated reports how
// many trailing bytes were dropped.
func OpenWAL(path string, opts WALOptions) (w *WAL, frames [][]byte, truncated int64, err error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("store: open WAL: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, 0, fmt.Errorf("store: stat WAL: %w", err)
	}
	w = &WAL{path: path, opts: opts, f: f}

	if st.Size() == 0 {
		if _, err := f.Write([]byte(walMagic)); err != nil {
			f.Close()
			return nil, nil, 0, fmt.Errorf("store: init WAL: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, 0, fmt.Errorf("store: init WAL: %w", err)
		}
		w.size = int64(len(walMagic))
		return w, nil, 0, nil
	}

	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, 0, fmt.Errorf("store: read WAL: %w", err)
	}
	if len(data) < len(walMagic) || string(data[:len(walMagic)]) != walMagic {
		f.Close()
		return nil, nil, 0, fmt.Errorf("store: %s is not a WAL (bad magic)", path)
	}

	valid := int64(len(walMagic))
	off := len(walMagic)
	for {
		if off+frameHeaderSize > len(data) {
			break // torn header
		}
		n := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n > maxFrameBytes {
			break // corrupt length
		}
		end := off + frameHeaderSize + int(n)
		if end > len(data) {
			break // torn payload
		}
		payload := data[off+frameHeaderSize : end]
		if crc32.Checksum(payload, crcTable) != sum {
			break // corrupt payload
		}
		frames = append(frames, append([]byte(nil), payload...))
		off = end
		valid = int64(end)
	}
	truncated = st.Size() - valid
	if truncated > 0 {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, nil, 0, fmt.Errorf("store: truncate corrupt WAL tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, 0, fmt.Errorf("store: truncate corrupt WAL tail: %w", err)
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, 0, fmt.Errorf("store: seek WAL end: %w", err)
	}
	w.size = valid
	w.writeSeq = int64(len(frames))
	w.synced = int64(len(frames))
	return w, frames, truncated, nil
}

// ReadWALFrames verifies the log at path without opening it for writes
// and without repairing anything — the background scrubber's WAL check.
// It returns every intact frame payload in order, plus tornTail: the
// number of trailing bytes that form an incomplete frame (a write that
// was in flight when we read, or was cut off by a crash).
//
// The distinction matters: on a live log a torn tail is the expected
// shape of a concurrent append (writes land as a byte prefix, so the
// reader sees magic + whole frames + possibly a partial last frame) and
// must be tolerated, while on a closed log it means the final commit
// never became durable. A CRC mismatch on a fully-present frame, a bad
// magic, or an absurd length field is corruption either way and comes
// back as err.
func ReadWALFrames(path string) (frames [][]byte, tornTail int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("store: read WAL: %w", err)
	}
	if len(data) < len(walMagic) {
		// A just-created log may not have its magic on disk yet; a prefix
		// of the magic is torn, anything else is not a WAL.
		if string(data) == walMagic[:len(data)] {
			return nil, int64(len(data)), nil
		}
		return nil, 0, fmt.Errorf("store: %s is not a WAL (bad magic)", path)
	}
	if string(data[:len(walMagic)]) != walMagic {
		return nil, 0, fmt.Errorf("store: %s is not a WAL (bad magic)", path)
	}
	off := len(walMagic)
	for {
		if off+frameHeaderSize > len(data) {
			return frames, int64(len(data) - off), nil // torn header
		}
		n := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n > maxFrameBytes {
			return frames, 0, fmt.Errorf("store: %s: frame %d declares %d bytes (limit %d) — corrupt length at offset %d",
				path, len(frames), n, maxFrameBytes, off)
		}
		end := off + frameHeaderSize + int(n)
		if end > len(data) {
			return frames, int64(len(data) - off), nil // torn payload
		}
		payload := data[off+frameHeaderSize : end]
		if got := crc32.Checksum(payload, crcTable); got != sum {
			return frames, 0, fmt.Errorf("store: %s: frame %d checksum mismatch at offset %d (got %08x, want %08x)",
				path, len(frames), off, got, sum)
		}
		frames = append(frames, append([]byte(nil), payload...))
		off = end
	}
}

// Append writes one frame and blocks until it is durable (group commit).
// After any write or sync failure the WAL turns sticky-failed: the frame
// boundary on disk is unknown, so all further appends return the error
// and recovery on next open repairs the tail.
func (w *WAL) Append(payload []byte) error {
	if len(payload) > maxFrameBytes {
		return fmt.Errorf("store: frame of %d bytes exceeds limit %d", len(payload), maxFrameBytes)
	}
	buf := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(payload, crcTable))
	copy(buf[frameHeaderSize:], payload)

	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrWALClosed
	}
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	if _, err := w.f.Write(buf); err != nil {
		w.err = fmt.Errorf("store: WAL write: %w", err)
		err = w.err
		w.mu.Unlock()
		return err
	}
	w.size += int64(len(buf))
	w.writeSeq++
	seq := w.writeSeq
	w.mu.Unlock()

	if w.opts.NoSync {
		return nil
	}
	return w.syncTo(seq)
}

// syncTo blocks until frame seq is durable. The first caller through
// syncMu fsyncs everything written so far; callers queued behind it find
// their frame already covered and return without touching the disk.
func (w *WAL) syncTo(seq int64) error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()

	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	if w.synced >= seq {
		w.mu.Unlock()
		return nil
	}
	covers := w.writeSeq
	f := w.f
	w.mu.Unlock()

	err := f.Sync()

	w.mu.Lock()
	defer w.mu.Unlock()
	if err != nil {
		if w.err == nil {
			w.err = fmt.Errorf("store: WAL fsync: %w", err)
		}
		return w.err
	}
	if covers > w.synced {
		w.synced = covers
	}
	return nil
}

// Sync flushes all written frames to disk.
func (w *WAL) Sync() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrWALClosed
	}
	seq := w.writeSeq
	w.mu.Unlock()
	return w.syncTo(seq)
}

// Size returns the current file size in bytes.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Path returns the log's file path.
func (w *WAL) Path() string { return w.path }

// Close flushes and closes the log. Closing is idempotent.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.mu.Unlock()
	syncErr := w.Sync()

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	closeErr := w.f.Close()
	if syncErr != nil && !errors.Is(syncErr, ErrWALClosed) {
		return syncErr
	}
	return closeErr
}
