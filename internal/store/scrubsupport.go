package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// This file holds the store's surface for the background verification
// plane (internal/scrub) and the readiness probe: read-only enumeration
// of session logs, the exported single-dataset catalog lookup, the
// quarantine path for a retired log that fails re-verification, and a
// durability probe for the readyz "is the WAL device responsive" check.

// Path returns the log's on-disk WAL path (the scrubber verifies the
// file through ReadWALFrames, never through the live handle).
func (l *SessionLog) Path() string { return l.wal.Path() }

// Session log states as enumerated by SessionLogFiles.
const (
	SessionLogLive    = "live"    // <id>.wal — recoverable, may be appended to right now
	SessionLogClosed  = "closed"  // <id>.wal.closed — finished by the analyst, kept for audit
	SessionLogInvalid = "invalid" // <id>.wal.invalid — quarantined, never served
)

// SessionLogFile is one on-disk session log as seen by the scrubber.
type SessionLogFile struct {
	Path  string
	ID    string
	State string // SessionLogLive, SessionLogClosed or SessionLogInvalid
}

// SessionLogFiles enumerates every session log under the store, sorted
// by path — live, closed and already-quarantined alike — without opening
// any of them.
func (s *Store) SessionLogFiles() ([]SessionLogFile, error) {
	entries, err := os.ReadDir(s.sessionsDir())
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []SessionLogFile
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		var state, id string
		switch {
		case strings.HasSuffix(name, ".wal"):
			state, id = SessionLogLive, strings.TrimSuffix(name, ".wal")
		case strings.HasSuffix(name, ".wal.closed"):
			state, id = SessionLogClosed, strings.TrimSuffix(name, ".wal.closed")
		case strings.HasSuffix(name, ".wal.invalid"):
			state, id = SessionLogInvalid, strings.TrimSuffix(name, ".wal.invalid")
		default:
			continue // probe files, strays
		}
		out = append(out, SessionLogFile{Path: filepath.Join(s.sessionsDir(), name), ID: id, State: state})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// QuarantineLogFile renames a retired session log that failed
// re-verification aside (path → path.invalid) so it is never replayed,
// keeping the bytes for forensics. It is only for logs no live session
// holds open — quarantining a live log is the recovery path's job
// (SessionLog.Quarantine), which closes the handle first.
func (s *Store) QuarantineLogFile(path string) (string, error) {
	quarantined := path + ".invalid"
	if err := os.Rename(path, quarantined); err != nil {
		return "", fmt.Errorf("store: quarantine session log: %w", err)
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		return "", err
	}
	return quarantined, nil
}

// LoadDataset reads one persisted catalog entry by name — the exported
// lookup the segment-heal path uses to get a fresh record (with current
// CSV/segment paths) without re-listing the whole catalog.
func (s *Store) LoadDataset(name string) (*DatasetRecord, error) {
	if name == "" || name != filepath.Base(name) || name[0] == '.' {
		return nil, fmt.Errorf("store: invalid dataset name %q", name)
	}
	rec, err := s.loadDataset(name)
	if err != nil {
		return nil, fmt.Errorf("store: dataset %q: %w", name, err)
	}
	return rec, nil
}

// ProbeSync measures whether the store's backing device still accepts
// durable writes: it writes and fsyncs a tiny probe file in the sessions
// directory (the same filesystem the WAL flusher depends on) and returns
// the observed latency. The readiness endpoint uses it to flag a stalled
// or read-only data volume before an analyst's commit does.
func (s *Store) ProbeSync() (time.Duration, error) {
	start := time.Now()
	path := filepath.Join(s.sessionsDir(), ".syncprobe")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, fmt.Errorf("store: sync probe: %w", err)
	}
	if _, err := f.Write([]byte("probe")); err != nil {
		f.Close()
		return 0, fmt.Errorf("store: sync probe: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, fmt.Errorf("store: sync probe: %w", err)
	}
	if err := f.Close(); err != nil {
		return 0, fmt.Errorf("store: sync probe: %w", err)
	}
	os.Remove(path)
	return time.Since(start), nil
}
