package store_test

import (
	"bytes"
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/accuracy"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/query"
	"repro/internal/store"
)

func testSchema(t *testing.T) *dataset.Schema {
	t.Helper()
	s, err := dataset.NewSchema(
		dataset.Attribute{Name: "age", Kind: dataset.Continuous, Min: 0, Max: 100},
		dataset.Attribute{Name: "state", Kind: dataset.Categorical, Values: []string{"CA", "NY", "TX"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

const testCSV = "age,state\n12,CA\n70,NY\n44,TX\n44,CA\n"

func TestCatalogSaveLoad(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	schema := testSchema(t)
	if err := st.SaveDataset("people", schema, []byte(testCSV)); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveDataset("zoo", schema, []byte(testCSV)); err != nil {
		t.Fatal(err)
	}
	// Duplicate persists are refused.
	if err := st.SaveDataset("people", schema, []byte("age,state\n")); err == nil {
		t.Fatal("duplicate SaveDataset succeeded")
	}
	// Path escapes are refused.
	for _, bad := range []string{"", "..", "a/b", ".hidden"} {
		if err := st.SaveDataset(bad, schema, nil); err == nil {
			t.Fatalf("SaveDataset(%q) succeeded", bad)
		}
	}

	// Reopen on the same dir, as recovery does.
	st2, err := store.Open(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	recs, skipped, err := st2.LoadDatasets()
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Fatalf("skipped: %v", skipped)
	}
	if len(recs) != 2 || recs[0].Name != "people" || recs[1].Name != "zoo" {
		t.Fatalf("recovered %+v", recs)
	}
	csvBytes, err := recs[0].ReadCSVBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csvBytes, []byte(testCSV)) {
		t.Fatalf("CSV changed: %q", csvBytes)
	}
	if recs[0].SegmentPath != "" {
		t.Fatalf("SaveDataset wrote no segment, but record points at %q", recs[0].SegmentPath)
	}
	tb, err := dataset.ReadCSV(bytes.NewReader(csvBytes), recs[0].Schema)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Size() != 4 {
		t.Fatalf("recovered table has %d rows", tb.Size())
	}
}

func TestCatalogSweepsCrashedTempDirs(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a save that crashed before rename.
	tmp := filepath.Join(st.Dir(), "catalog", ".tmp-ghost-123")
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		t.Fatal(err)
	}
	recs, skipped, err := st.LoadDatasets()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || len(skipped) != 0 {
		t.Fatalf("ghost dataset recovered: %+v / %v", recs, skipped)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("crashed temp dir not swept")
	}
}

func TestCatalogSkipsDamagedEntryAndServesRest(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveDataset("good", testSchema(t), []byte(testCSV)); err != nil {
		t.Fatal(err)
	}
	// A stray directory with no schema.json (operator mkdir, half-deleted
	// dataset) must not take the healthy datasets down with it.
	if err := os.MkdirAll(filepath.Join(st.Dir(), "catalog", "stray"), 0o755); err != nil {
		t.Fatal(err)
	}
	recs, skipped, err := st.LoadDatasets()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Name != "good" {
		t.Fatalf("recovered %+v", recs)
	}
	if len(skipped) != 1 || !strings.Contains(skipped[0], "stray") {
		t.Fatalf("skipped = %v", skipped)
	}
	// The damaged entry stays on disk for the operator.
	if _, err := os.Stat(filepath.Join(st.Dir(), "catalog", "stray")); err != nil {
		t.Fatal(err)
	}
}

func sessionMeta(id string) store.SessionMeta {
	return store.SessionMeta{
		ID:      id,
		Dataset: "people",
		Budget:  2.5,
		Mode:    "optimistic",
		Reuse:   true,
		Created: time.Date(2026, 7, 29, 10, 0, 0, 0, time.UTC),
	}
}

func askOnce(t *testing.T, eng *engine.Engine) {
	t.Helper()
	q, err := query.NewWCQ(
		[]dataset.Predicate{
			dataset.Range{Attr: "age", Lo: 0, Hi: 50},
			dataset.Range{Attr: "age", Lo: 50, Hi: 100},
		},
		accuracy.Requirement{Alpha: 50, Beta: 0.05},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Ask(q); err != nil {
		t.Fatal(err)
	}
}

func TestSessionLogRoundTrip(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	meta := sessionMeta("s1")
	slog, err := st.CreateSessionLog(meta)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate ids are refused while the log exists.
	if _, err := st.CreateSessionLog(meta); err == nil {
		t.Fatal("duplicate session log created")
	}

	// Drive a real engine whose commit hook writes the log, exactly as
	// the server wires it.
	tb, err := dataset.ReadCSV(strings.NewReader(testCSV), testSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(tb, engine.Config{
		Budget: meta.Budget,
		Mode:   engine.Optimistic,
		Rng:    rand.New(rand.NewSource(5)),
		Reuse:  meta.Reuse,
		OnCommit: func(ctx context.Context, n int, e engine.Entry) error {
			return slog.AppendEntry(ctx, e)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	askOnce(t, eng)
	askOnce(t, eng) // second ask hits the reuse cache; also committed
	if err := slog.Close(); err != nil {
		t.Fatal(err)
	}

	recovered, skipped, err := st.RecoverSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Fatalf("skipped: %v", skipped)
	}
	if len(recovered) != 1 {
		t.Fatalf("recovered %d sessions", len(recovered))
	}
	rec := recovered[0]
	if rec.Meta != meta {
		t.Fatalf("meta changed: %+v vs %+v", rec.Meta, meta)
	}
	if rec.TruncatedBytes != 0 {
		t.Fatalf("clean log reports %d truncated bytes", rec.TruncatedBytes)
	}
	if len(rec.Entries) != 2 {
		t.Fatalf("recovered %d entries", len(rec.Entries))
	}
	re, err := engine.Replay(tb, engine.Config{
		Budget: meta.Budget, Mode: engine.Optimistic,
		Rng: rand.New(rand.NewSource(99)), Reuse: true,
	}, rec.Entries)
	if err != nil {
		t.Fatal(err)
	}
	if re.Spent() != eng.Spent() {
		t.Fatalf("replayed spend %v != live %v", re.Spent(), eng.Spent())
	}
	if err := rec.Log.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionLogTornTailRecoversToLastValidFrame(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	meta := sessionMeta("torn")
	slog, err := st.CreateSessionLog(meta)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := dataset.ReadCSV(strings.NewReader(testCSV), testSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(tb, engine.Config{
		Budget: meta.Budget,
		Rng:    rand.New(rand.NewSource(5)),
		OnCommit: func(ctx context.Context, n int, e engine.Entry) error {
			return slog.AppendEntry(ctx, e)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	askOnce(t, eng)
	askOnce(t, eng)
	if err := slog.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash mid-write: half a frame of garbage lands on the tail.
	path := filepath.Join(st.Dir(), "sessions", "torn.wal")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recovered, skipped, err := st.RecoverSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 || len(recovered) != 1 {
		t.Fatalf("recovered=%d skipped=%v", len(recovered), skipped)
	}
	rec := recovered[0]
	if rec.TruncatedBytes == 0 {
		t.Fatal("torn tail not reported")
	}
	if len(rec.Entries) != 2 {
		t.Fatalf("recovered %d entries past repair, want 2", len(rec.Entries))
	}
	// The recovered transcript still satisfies Definition 6.1.
	if _, err := engine.ValidateTranscript(rec.Entries, meta.Budget); err != nil {
		t.Fatalf("recovered transcript invalid: %v", err)
	}
	rec.Log.Close()
}

func TestRecoverQuarantinesStructurallyBrokenLogs(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// A log whose only frame is valid CRC-wise but is not a meta header.
	w, _, _, err := store.OpenWAL(filepath.Join(st.Dir(), "sessions", "bad.wal"), store.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("not json")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// And a healthy one beside it.
	slog, err := st.CreateSessionLog(sessionMeta("ok"))
	if err != nil {
		t.Fatal(err)
	}
	if err := slog.Close(); err != nil {
		t.Fatal(err)
	}

	recovered, skipped, err := st.RecoverSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 || recovered[0].Meta.ID != "ok" {
		t.Fatalf("recovered %+v", recovered)
	}
	if len(skipped) != 1 || !strings.Contains(skipped[0], "bad") {
		t.Fatalf("skipped = %v", skipped)
	}
	recovered[0].Log.Close()
	// The broken log is quarantined, not deleted and not re-scanned.
	if _, err := os.Stat(filepath.Join(st.Dir(), "sessions", "bad.wal.invalid")); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	_, skipped2, err := st.RecoverSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped2) != 0 {
		t.Fatalf("quarantined log re-scanned: %v", skipped2)
	}
}

func TestFinishedSessionsAreNotRecovered(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	slog, err := st.CreateSessionLog(sessionMeta("done"))
	if err != nil {
		t.Fatal(err)
	}
	if err := slog.Finish(); err != nil {
		t.Fatal(err)
	}
	recovered, skipped, err := st.RecoverSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 0 || len(skipped) != 0 {
		t.Fatalf("finished session recovered: %d/%v", len(recovered), skipped)
	}
	// The audit trail survives on disk.
	if _, err := os.Stat(filepath.Join(st.Dir(), "sessions", "done.wal.closed")); err != nil {
		t.Fatalf("closed session audit file missing: %v", err)
	}
	// The id is free for a new session once the old log is retired.
	slog2, err := st.CreateSessionLog(sessionMeta("done"))
	if err != nil {
		t.Fatalf("id not reusable after Finish: %v", err)
	}
	slog2.Close()
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := store.Open(""); err == nil {
		t.Fatal("Open(\"\") succeeded")
	}
}

func TestAppendEntryRejectsUnserializableQuery(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	slog, err := st.CreateSessionLog(sessionMeta("f"))
	if err != nil {
		t.Fatal(err)
	}
	defer slog.Close()
	q, err := query.NewWCQ(
		[]dataset.Predicate{dataset.Func{Name: "f", Fn: func(*dataset.Schema, dataset.Tuple) bool { return true }}},
		accuracy.Requirement{Alpha: 10, Beta: 0.1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := slog.AppendEntry(context.Background(), engine.Entry{Query: q}); err == nil {
		t.Fatal("unserializable entry accepted")
	}
}
