// Package store is the durable persistence subsystem under the APEx
// server: a dataset catalog that survives registration across restarts,
// and one append-only, CRC-framed, group-commit-fsynced write-ahead log
// per analyst session holding the transcript the Definition 6.1 audit
// depends on.
//
// On-disk layout under the data directory:
//
//	<dir>/catalog/<name>/schema.json   public schema (dataset JSON form)
//	<dir>/catalog/<name>/data.csv      sensitive rows, exactly as ingested
//	<dir>/catalog/<name>/table.seg     column-store segment (mmap-served;
//	                                   absent in catalogs predating it)
//	<dir>/sessions/<id>.wal            live session log (meta + entries)
//	<dir>/sessions/<id>.wal.closed     session closed by the analyst
//	<dir>/sessions/<id>.wal.invalid    quarantined: failed re-validation
//
// Durability policy: a transcript entry is fsynced (group commit — many
// concurrent commits share one flush) before the engine releases the
// answer, so the on-disk spend can only ever be equal to or greater than
// what any analyst has observed; a crash never under-accounts privacy
// loss. Dataset registration writes into a temp directory, fsyncs, and
// renames into the catalog, so a half-written dataset is never visible.
//
// Recovery policy: session logs are replayed frame by frame; a torn or
// corrupt tail (crash mid-write) is truncated back to the last valid
// frame and the session resumes from there. A log whose frames are
// intact but whose transcript no longer passes ValidateTranscript is
// quarantined rather than served.
package store

import (
	"fmt"
	"os"
	"path/filepath"
)

// Store manages one data directory.
type Store struct {
	dir string
}

// Open prepares dir (creating it and its subdirectories as needed) and
// returns the store over it.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty data directory")
	}
	for _, d := range []string{dir, filepath.Join(dir, "catalog"), filepath.Join(dir, "sessions")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	return &Store{dir: dir}, nil
}

// Dir returns the data directory root.
func (s *Store) Dir() string { return s.dir }

func (s *Store) catalogDir() string  { return filepath.Join(s.dir, "catalog") }
func (s *Store) sessionsDir() string { return filepath.Join(s.dir, "sessions") }

// sessionPath returns the live WAL path for a session id.
func (s *Store) sessionPath(id string) string {
	return filepath.Join(s.sessionsDir(), id+".wal")
}

// syncDir fsyncs a directory so renames and creates within it are
// durable.
func syncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
