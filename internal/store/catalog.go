package store

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/dataset"
)

// Catalog entry files. A dataset directory holds the public schema, the
// source CSV exactly as ingested, and (for catalogs written since the
// column store landed) the serialized segment the server can mmap instead
// of re-parsing the CSV. Old catalogs without a segment still load — the
// registry re-parses the CSV and heals the entry by writing the segment.
const (
	SchemaFile  = "schema.json"
	CSVFile     = "data.csv"
	SegmentFile = "table.seg"
	// TranslateSidecarFile is the Monte-Carlo translation sidecar: the
	// dataset's persisted translation plans (internal/translate), written
	// atomically beside schema.json and reloaded on recovery so a restart
	// never re-samples a previously translated workload.
	TranslateSidecarFile = "translate.tc"
	// QuarantineSuffix is appended to a segment that failed checksum
	// validation; the file is kept for the operator, never reopened.
	QuarantineSuffix = ".quarantined"
)

// DatasetRecord is one durable catalog entry. SegmentPath and CSVPath
// point at the on-disk artifacts ("" when absent): recovery opens the
// segment when there is one and only falls back to re-parsing the CSV
// when there isn't (or the segment is corrupt), so a restart never pays
// the full-CSV parse for a healthy modern catalog entry and never pulls
// the rows into memory just to list the catalog.
type DatasetRecord struct {
	Name        string
	Schema      *dataset.Schema
	CSVPath     string
	SegmentPath string
}

// ReadCSVBytes loads the record's source CSV (the fallback/re-ingest
// path; recovery from a valid segment never calls it).
func (r *DatasetRecord) ReadCSVBytes() ([]byte, error) {
	if r.CSVPath == "" {
		return nil, fmt.Errorf("store: dataset %q has no source CSV on disk", r.Name)
	}
	return os.ReadFile(r.CSVPath)
}

// DatasetTx stages one dataset registration in a temp directory inside
// the catalog: the caller writes schema, CSV and segment into Dir(), then
// Commit renames the directory into place atomically and fsyncs the
// catalog. A crash mid-build leaves only an invisible temp directory,
// swept by the next LoadDatasets.
type DatasetTx struct {
	store *Store
	name  string
	tmp   string
	final string
	done  bool
}

// CreateDataset begins a staged registration. Registering a name that is
// already persisted is an error; the catalog never swaps a table out from
// under live sessions.
func (s *Store) CreateDataset(name string) (*DatasetTx, error) {
	if name == "" || name != filepath.Base(name) || name[0] == '.' {
		return nil, fmt.Errorf("store: invalid dataset name %q", name)
	}
	final := filepath.Join(s.catalogDir(), name)
	if _, err := os.Stat(final); err == nil {
		return nil, fmt.Errorf("store: dataset %q already persisted", name)
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("store: %w", err)
	}
	tmp, err := os.MkdirTemp(s.catalogDir(), ".tmp-"+name+"-")
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &DatasetTx{store: s, name: name, tmp: tmp, final: final}, nil
}

// Dir returns the staging directory; SegmentPath names the segment file
// the column-store builder should write inside it.
func (tx *DatasetTx) Dir() string         { return tx.tmp }
func (tx *DatasetTx) SegmentPath() string { return filepath.Join(tx.tmp, SegmentFile) }

// WriteSchema persists the public schema into the staging directory.
func (tx *DatasetTx) WriteSchema(schema *dataset.Schema) error {
	schemaJSON, err := json.Marshal(schema)
	if err != nil {
		return fmt.Errorf("store: dataset %q schema: %w", tx.name, err)
	}
	if err := writeFileSync(filepath.Join(tx.tmp, SchemaFile), schemaJSON); err != nil {
		return fmt.Errorf("store: dataset %q: %w", tx.name, err)
	}
	return nil
}

// StoreCSV streams the source rows into the staging directory and fsyncs
// them, without ever holding the whole file in memory.
func (tx *DatasetTx) StoreCSV(r io.Reader) error {
	f, err := os.OpenFile(filepath.Join(tx.tmp, CSVFile), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: dataset %q: %w", tx.name, err)
	}
	if _, err := io.Copy(f, r); err != nil {
		f.Close()
		return fmt.Errorf("store: dataset %q: %w", tx.name, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: dataset %q: %w", tx.name, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: dataset %q: %w", tx.name, err)
	}
	return nil
}

// Commit renames the staged directory into the catalog. After a nil
// return the dataset is durable; the tx is spent either way.
func (tx *DatasetTx) Commit() (*DatasetRecord, error) {
	if tx.done {
		return nil, fmt.Errorf("store: dataset %q transaction already finished", tx.name)
	}
	tx.done = true
	if err := os.Rename(tx.tmp, tx.final); err != nil {
		os.RemoveAll(tx.tmp)
		return nil, fmt.Errorf("store: dataset %q: %w", tx.name, err)
	}
	if err := syncDir(tx.store.catalogDir()); err != nil {
		return nil, fmt.Errorf("store: dataset %q: %w", tx.name, err)
	}
	return tx.store.loadDataset(tx.name)
}

// Abort discards the staging directory. Safe after Commit (no-op).
func (tx *DatasetTx) Abort() {
	if !tx.done {
		tx.done = true
		os.RemoveAll(tx.tmp)
	}
}

// SaveDataset durably persists one dataset from in-memory schema + CSV
// bytes (no segment; the registry's ingest path writes segments through
// CreateDataset directly). Kept as the simple whole-payload convenience.
func (s *Store) SaveDataset(name string, schema *dataset.Schema, csv []byte) error {
	tx, err := s.CreateDataset(name)
	if err != nil {
		return err
	}
	if err := tx.WriteSchema(schema); err != nil {
		tx.Abort()
		return err
	}
	if err := writeFileSync(filepath.Join(tx.tmp, CSVFile), csv); err != nil {
		tx.Abort()
		return fmt.Errorf("store: dataset %q: %w", name, err)
	}
	_, err = tx.Commit()
	return err
}

// QuarantineSegment renames a corrupt segment aside (table.seg →
// table.seg.quarantined) so the entry falls back to its CSV and the bad
// file stays inspectable. It never deletes data.
func (s *Store) QuarantineSegment(rec *DatasetRecord) (string, error) {
	if rec.SegmentPath == "" {
		return "", fmt.Errorf("store: dataset %q has no segment to quarantine", rec.Name)
	}
	quarantined := rec.SegmentPath + QuarantineSuffix
	// A leftover quarantine from an earlier life is replaced: the newest
	// corrupt artifact is the one worth inspecting.
	if err := os.Rename(rec.SegmentPath, quarantined); err != nil {
		return "", fmt.Errorf("store: dataset %q: %w", rec.Name, err)
	}
	if err := syncDir(filepath.Dir(quarantined)); err != nil {
		return "", fmt.Errorf("store: dataset %q: %w", rec.Name, err)
	}
	rec.SegmentPath = ""
	return quarantined, nil
}

// AdoptSegment atomically installs a freshly rebuilt segment (written at
// tmpPath inside the dataset directory) as the entry's table.seg — the
// healing path after a CSV fallback, and the upgrade path for catalogs
// that predate the column store.
func (s *Store) AdoptSegment(rec *DatasetRecord, tmpPath string) error {
	final := filepath.Join(s.catalogDir(), rec.Name, SegmentFile)
	if err := os.Rename(tmpPath, final); err != nil {
		return fmt.Errorf("store: dataset %q: %w", rec.Name, err)
	}
	if err := syncDir(filepath.Dir(final)); err != nil {
		return fmt.Errorf("store: dataset %q: %w", rec.Name, err)
	}
	rec.SegmentPath = final
	return nil
}

// DatasetDir returns the catalog directory of a persisted dataset (for
// staging a rebuilt segment on the same filesystem).
func (s *Store) DatasetDir(name string) string {
	return filepath.Join(s.catalogDir(), name)
}

// LoadDatasets reads every persisted dataset, sorted by name. Temp
// directories abandoned by a crashed save are swept. An unreadable
// catalog entry (stray directory, missing or mangled file) is reported
// in skipped rather than failing the whole load — one damaged dataset
// must not keep the server from serving the healthy ones; the entry is
// left on disk for the operator.
func (s *Store) LoadDatasets() (recs []DatasetRecord, skipped []string, err error) {
	entries, err := os.ReadDir(s.catalogDir())
	if err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		if name[0] == '.' {
			// Leftover temp dir from a save that crashed before rename.
			os.RemoveAll(filepath.Join(s.catalogDir(), name))
			continue
		}
		rec, lerr := s.loadDataset(name)
		if lerr != nil {
			skipped = append(skipped, fmt.Sprintf("%s: %v", name, lerr))
			continue
		}
		recs = append(recs, *rec)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Name < recs[j].Name })
	return recs, skipped, nil
}

func (s *Store) loadDataset(name string) (*DatasetRecord, error) {
	dir := filepath.Join(s.catalogDir(), name)
	schemaJSON, err := os.ReadFile(filepath.Join(dir, SchemaFile))
	if err != nil {
		return nil, err
	}
	schema := new(dataset.Schema)
	if err := json.Unmarshal(schemaJSON, schema); err != nil {
		return nil, err
	}
	rec := &DatasetRecord{Name: name, Schema: schema}
	if p := filepath.Join(dir, CSVFile); fileExists(p) {
		rec.CSVPath = p
	}
	if p := filepath.Join(dir, SegmentFile); fileExists(p) {
		rec.SegmentPath = p
	}
	if rec.CSVPath == "" && rec.SegmentPath == "" {
		return nil, fmt.Errorf("neither %s nor %s present", CSVFile, SegmentFile)
	}
	return rec, nil
}

func fileExists(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.Mode().IsRegular()
}

// writeFileSync writes data and fsyncs before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
