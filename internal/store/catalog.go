package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/dataset"
)

// DatasetRecord is one durable catalog entry: the public schema plus the
// sensitive rows exactly as they were ingested. Keeping the source CSV
// (rather than a re-rendering of the columnar table) guarantees that
// recovery re-parses byte-identical input and reproduces the table the
// sessions were answering over.
type DatasetRecord struct {
	Name   string
	Schema *dataset.Schema
	CSV    []byte
}

// SaveDataset durably persists one dataset. The write is atomic: files
// land in a temp directory, are fsynced, and the directory is renamed
// into the catalog — a crash mid-save leaves at most an invisible temp
// directory (swept on open of the next save). Saving a name that already
// exists is an error; the catalog, like the registry, never swaps a
// table out from under live sessions.
func (s *Store) SaveDataset(name string, schema *dataset.Schema, csv []byte) error {
	if name == "" || name != filepath.Base(name) || name[0] == '.' {
		return fmt.Errorf("store: invalid dataset name %q", name)
	}
	final := filepath.Join(s.catalogDir(), name)
	if _, err := os.Stat(final); err == nil {
		return fmt.Errorf("store: dataset %q already persisted", name)
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("store: %w", err)
	}

	schemaJSON, err := json.Marshal(schema)
	if err != nil {
		return fmt.Errorf("store: dataset %q schema: %w", name, err)
	}
	tmp, err := os.MkdirTemp(s.catalogDir(), ".tmp-"+name+"-")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.RemoveAll(tmp) // no-op after a successful rename

	if err := writeFileSync(filepath.Join(tmp, "schema.json"), schemaJSON); err != nil {
		return fmt.Errorf("store: dataset %q: %w", name, err)
	}
	if err := writeFileSync(filepath.Join(tmp, "data.csv"), csv); err != nil {
		return fmt.Errorf("store: dataset %q: %w", name, err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("store: dataset %q: %w", name, err)
	}
	if err := syncDir(s.catalogDir()); err != nil {
		return fmt.Errorf("store: dataset %q: %w", name, err)
	}
	return nil
}

// LoadDatasets reads every persisted dataset, sorted by name. Temp
// directories abandoned by a crashed save are swept. An unreadable
// catalog entry (stray directory, missing or mangled file) is reported
// in skipped rather than failing the whole load — one damaged dataset
// must not keep the server from serving the healthy ones; the entry is
// left on disk for the operator.
func (s *Store) LoadDatasets() (recs []DatasetRecord, skipped []string, err error) {
	entries, err := os.ReadDir(s.catalogDir())
	if err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		if name[0] == '.' {
			// Leftover temp dir from a save that crashed before rename.
			os.RemoveAll(filepath.Join(s.catalogDir(), name))
			continue
		}
		rec, lerr := s.loadDataset(name)
		if lerr != nil {
			skipped = append(skipped, fmt.Sprintf("%s: %v", name, lerr))
			continue
		}
		recs = append(recs, *rec)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Name < recs[j].Name })
	return recs, skipped, nil
}

func (s *Store) loadDataset(name string) (*DatasetRecord, error) {
	dir := filepath.Join(s.catalogDir(), name)
	schemaJSON, err := os.ReadFile(filepath.Join(dir, "schema.json"))
	if err != nil {
		return nil, err
	}
	schema := new(dataset.Schema)
	if err := json.Unmarshal(schemaJSON, schema); err != nil {
		return nil, err
	}
	csv, err := os.ReadFile(filepath.Join(dir, "data.csv"))
	if err != nil {
		return nil, err
	}
	return &DatasetRecord{Name: name, Schema: schema, CSV: csv}, nil
}

// writeFileSync writes data and fsyncs before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
