package analytics

import "sort"

// topK is a SpaceSaving heavy-hitters sketch (Metwally et al.) over a
// weighted stream: it tracks at most k keys and guarantees that any key
// whose true total weight exceeds (stream total)/k is present, with a
// per-entry overestimation bound. Weights here are CPU seconds — the
// resource the shard router and capacity planner care about — while each
// monitored entry also accumulates the full cost vector observed since it
// was (re)adopted into the sketch.
type topK struct {
	k     int
	items map[string]*tkItem
	// list holds the same entries as items: the min-eviction scan runs
	// over this slice (a linear pass over at most k pointers) instead of
	// iterating the map, which keeps the saturated-sketch hot path — every
	// distinct new key evicts — cheap enough for the request goroutine.
	list []*tkItem
}

type tkItem struct {
	key    string
	weight float64 // SpaceSaving counter: true weight + overestimate
	errs   float64 // overestimation bound (weight inherited on adoption)
	cost   CostVector
	// last-seen context for display: the owning dataset and a bounded
	// query text sample (workload dimension only).
	dataset string
	query   string
}

func newTopK(k int) *topK {
	if k <= 0 {
		k = 64
	}
	return &topK{k: k, items: make(map[string]*tkItem, k)}
}

// observe folds one request's weight and cost under key.
func (t *topK) observe(key string, weight float64, rc *RequestCost) {
	if key == "" {
		return
	}
	it, ok := t.items[key]
	if !ok {
		if len(t.items) < t.k {
			it = &tkItem{key: key}
			t.items[key] = it
			t.list = append(t.list, it)
		} else {
			// Evict the minimum-weight entry and adopt its counter: the
			// classic SpaceSaving replacement, which preserves the
			// guarantee that a true heavy hitter cannot be displaced. The
			// evicted slot is recycled in place under its new identity.
			min := t.list[0]
			for _, cand := range t.list[1:] {
				if cand.weight < min.weight {
					min = cand
				}
			}
			delete(t.items, min.key)
			*min = tkItem{key: key, weight: min.weight, errs: min.weight}
			t.items[key] = min
			it = min
		}
	}
	it.weight += weight
	it.cost.Add(rc.Vector)
	it.dataset = rc.Dataset
	if rc.Query != "" {
		it.query = rc.Query
	}
}

// TopEntry is one ranked heavy hitter as served by GET /v1/debug/top.
type TopEntry struct {
	// Key is the entry's identity in its dimension: a dataset name, a
	// session ID, or a workload ID (WorkloadID hash of the canonical key).
	Key string `json:"key"`
	// Dataset is the owning dataset (session/workload dimensions).
	Dataset string `json:"dataset,omitempty"`
	// Query is a bounded sample of the last query text seen for the key
	// (workload dimension), so the hash is human-readable.
	Query string `json:"query,omitempty"`
	// WeightCPUSeconds is the SpaceSaving ranking weight: attributed CPU
	// seconds, possibly overestimated by at most MaxErrorCPUSeconds.
	WeightCPUSeconds float64 `json:"weight_cpu_seconds"`
	// MaxErrorCPUSeconds bounds the overestimation inherited when the key
	// displaced another sketch entry (0 for exactly-tracked keys).
	MaxErrorCPUSeconds float64 `json:"max_error_cpu_seconds,omitempty"`
	// Cost is the cost vector accumulated while the key was monitored.
	Cost CostVector `json:"cost"`
}

// top returns up to n entries, heaviest first.
func (t *topK) top(n int) []TopEntry {
	out := make([]TopEntry, 0, len(t.items))
	for _, it := range t.items {
		out = append(out, TopEntry{
			Key:                it.key,
			Dataset:            it.dataset,
			Query:              it.query,
			WeightCPUSeconds:   it.weight,
			MaxErrorCPUSeconds: it.errs,
			Cost:               it.cost,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].WeightCPUSeconds != out[j].WeightCPUSeconds {
			return out[i].WeightCPUSeconds > out[j].WeightCPUSeconds
		}
		return out[i].Key < out[j].Key
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
