package analytics

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
)

// requestTrace builds a synthetic finished-trace view shaped like the
// server's real span tree: queue -> scan, then prepare (with nested
// translate), execute, commit (with nested wal_flush).
func requestTrace(id string) obs.TraceView {
	return obs.TraceView{
		ID:   id,
		Name: "POST /v1/sessions/s1/query",
		Tags: map[string]string{
			"dataset": "people", "session": "s1",
			"workload": "wdeadbeef", "query": "BIN D ...", "status": "200",
		},
		Spans: []obs.SpanView{
			{Name: "queue", DurationUS: 1500, Spans: []obs.SpanView{
				{Name: "scan", DurationUS: 400, Attrs: map[string]any{
					"batch_size": 3, "scan_bytes": 3000, "scan_share_bytes": 1000,
				}},
			}},
			{Name: "prepare", DurationUS: 2000, Attrs: map[string]any{
				"transform_cache_hit": true, "reuse_hit": false, "denied": false,
			}, Spans: []obs.SpanView{
				{Name: "translate", DurationUS: 1800, Attrs: map[string]any{
					"translate_cache_hit": true, "mechanism": "LM",
				}},
			}},
			{Name: "execute", DurationUS: 700},
			{Name: "commit", DurationUS: 300, Attrs: map[string]any{"epsilon": 0.25}},
		},
	}
}

func TestExtractCost(t *testing.T) {
	rc, ok := ExtractCost(requestTrace("t1"))
	if !ok {
		t.Fatal("tagged trace not attributed")
	}
	v := rc.Vector
	if rc.Dataset != "people" || rc.Session != "s1" || rc.Workload != "wdeadbeef" {
		t.Fatalf("dimensions = %+v", rc)
	}
	if want := int64((2000 + 700 + 300) * 1000); v.CPUNanos != want {
		t.Fatalf("CPUNanos = %d, want %d (top-level prepare+execute+commit only)", v.CPUNanos, want)
	}
	if want := int64(1500 * 1000); v.QueueNanos != want {
		t.Fatalf("QueueNanos = %d, want %d", v.QueueNanos, want)
	}
	if want := int64(1800 * 1000); v.TranslateNanos != want {
		t.Fatalf("TranslateNanos = %d, want %d", v.TranslateNanos, want)
	}
	if v.ScanBytes != 1000 {
		t.Fatalf("ScanBytes = %d, want the per-request share 1000, not the batch total", v.ScanBytes)
	}
	if v.Epsilon != 0.25 || v.TransformHits != 1 || v.TranslateHits != 1 ||
		v.ReuseHits != 0 || v.Denied != 0 || v.Errors != 0 || v.Requests != 1 {
		t.Fatalf("vector = %+v", v)
	}

	// The same trace after a JSON round trip (attrs decode as float64)
	// must extract identically — bundles and replayed rings stay usable.
	b, err := json.Marshal(requestTrace("t1"))
	if err != nil {
		t.Fatal(err)
	}
	var round obs.TraceView
	if err := json.Unmarshal(b, &round); err != nil {
		t.Fatal(err)
	}
	rc2, ok := ExtractCost(round)
	if !ok || rc2.Vector != v {
		t.Fatalf("JSON round trip changed the vector: %+v vs %+v", rc2.Vector, v)
	}

	// Control-plane traces (no dataset tag) are not attributed.
	if _, ok := ExtractCost(obs.TraceView{ID: "t2", Tags: map[string]string{"status": "200"}}); ok {
		t.Fatal("untagged trace attributed")
	}

	// Error statuses count as errors.
	errv := requestTrace("t3")
	errv.Tags["status"] = "429"
	if rc, _ := ExtractCost(errv); rc.Vector.Errors != 1 {
		t.Fatalf("429 trace: Errors = %d", rc.Vector.Errors)
	}
}

// TestExtractCostLegacyScanAttr: traces recorded before per-request share
// attribution carry only the batch-total scan_bytes; those are counted
// only when the batch had a single member (where total == share).
func TestExtractCostLegacyScanAttr(t *testing.T) {
	v := requestTrace("t1")
	delete(v.Spans[0].Spans[0].Attrs, "scan_share_bytes")
	if rc, _ := ExtractCost(v); rc.Vector.ScanBytes != 0 {
		t.Fatalf("multi-member legacy batch attributed %d bytes", rc.Vector.ScanBytes)
	}
	v.Spans[0].Spans[0].Attrs["batch_size"] = 1
	if rc, _ := ExtractCost(v); rc.Vector.ScanBytes != 3000 {
		t.Fatalf("single-member legacy batch: ScanBytes = %d, want 3000", rc.Vector.ScanBytes)
	}
}

// TestSpaceSavingGuarantee: any key whose true weight exceeds total/k must
// survive in the sketch, and every entry's (weight - maxError) lower bound
// never exceeds its true weight.
func TestSpaceSavingGuarantee(t *testing.T) {
	const k = 8
	sk := newTopK(k)
	truth := map[string]float64{}
	rc := &RequestCost{Dataset: "people"}
	emit := func(key string, w float64) {
		truth[key] += w
		sk.observe(key, w, rc)
	}
	// 64 light keys churning through the sketch, one dominant heavy hitter
	// and one moderate one interleaved.
	for round := 0; round < 50; round++ {
		emit("heavy", 1.0)
		if round%2 == 0 {
			emit("warm", 0.5)
		}
		for i := 0; i < 64; i++ {
			emit(fmt.Sprintf("light-%d", i), 0.01)
		}
	}
	var total float64
	for _, w := range truth {
		total += w
	}
	entries := sk.top(0)
	byKey := map[string]TopEntry{}
	for _, e := range entries {
		byKey[e.Key] = e
	}
	for key, w := range truth {
		if w > total/k {
			if _, ok := byKey[key]; !ok {
				t.Fatalf("heavy hitter %q (true %.2f > total/k %.2f) missing from sketch", key, w, total/k)
			}
		}
	}
	for _, e := range entries {
		if e.WeightCPUSeconds < truth[e.Key]-1e-9 {
			t.Fatalf("%q: counter %.4f underestimates true %.4f", e.Key, e.WeightCPUSeconds, truth[e.Key])
		}
		if e.WeightCPUSeconds-e.MaxErrorCPUSeconds > truth[e.Key]+1e-9 {
			t.Fatalf("%q: lower bound %.4f exceeds true %.4f", e.Key,
				e.WeightCPUSeconds-e.MaxErrorCPUSeconds, truth[e.Key])
		}
	}
	if entries[0].Key != "heavy" {
		t.Fatalf("heaviest entry = %q, want heavy", entries[0].Key)
	}
	if len(entries) > k {
		t.Fatalf("sketch holds %d entries, capacity %d", len(entries), k)
	}
}

func TestCollectorAggregatesAndTop(t *testing.T) {
	c := NewCollector(Config{TopK: 4})
	for i := 0; i < 3; i++ {
		c.Observe(requestTrace(fmt.Sprintf("t%d", i)))
	}
	total := c.Total()
	if total.Requests != 3 || total.ScanBytes != 3000 || total.Epsilon != 0.75 {
		t.Fatalf("total = %+v", total)
	}
	if ds := c.Dataset("people"); ds != total {
		t.Fatalf("single-dataset aggregate %+v != total %+v", ds, total)
	}
	for _, dim := range []string{"dataset", "session", "workload"} {
		entries, err := c.Top(dim, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 1 || entries[0].Cost.Requests != 3 {
			t.Fatalf("Top(%s) = %+v", dim, entries)
		}
	}
	if _, err := c.Top("nope", 10); err == nil {
		t.Fatal("unknown dimension accepted")
	}
	// Nil collector: every call is a quiet no-op.
	var nilC *Collector
	nilC.Observe(requestTrace("t"))
	if v := nilC.Total(); v.Requests != 0 {
		t.Fatal("nil collector accumulated")
	}
}

func TestTimeseriesRing(t *testing.T) {
	ts := NewTimeseries(4, time.Second)
	var n float64
	ts.AddSource(func(put func(string, float64)) { n++; put("n", n) })
	var ticks int
	ts.OnTick(func(time.Time) { ticks++ })
	base := time.Unix(1000, 0)
	for i := 0; i < 6; i++ {
		ts.Tick(base.Add(time.Duration(i) * time.Second))
	}
	if ticks != 6 {
		t.Fatalf("OnTick ran %d times", ticks)
	}
	// Window 4 after 6 ticks: samples 3..6, oldest first.
	all := ts.Snapshot(0)
	if len(all) != 4 {
		t.Fatalf("Snapshot(0) = %d samples", len(all))
	}
	for i, s := range all {
		if want := float64(i + 3); s.Values["n"] != want {
			t.Fatalf("sample %d: n = %v, want %v", i, s.Values["n"], want)
		}
	}
	if !all[0].At.Before(all[3].At) {
		t.Fatal("samples not oldest-first")
	}
	last := ts.Snapshot(2)
	if len(last) != 2 || last[1].Values["n"] != 6 {
		t.Fatalf("Snapshot(2) = %+v", last)
	}
	// Stop without Start must not hang.
	ts.Stop()
}

func TestFlightRecorderCaptureAndPrune(t *testing.T) {
	dir := t.TempDir()
	p99 := time.Duration(0)
	fr := NewFlightRecorder(RecorderConfig{
		Dir:                dir,
		MaxBundles:         2,
		CPUProfileDuration: 5 * time.Millisecond,
		Cooldown:           time.Millisecond,
		Log:                os.Stderr,
		P99Threshold:       50 * time.Millisecond,
		P99:                func() (time.Duration, bool) { return p99, true },
	})
	if fr == nil {
		t.Fatal("recorder with a dir must be live")
	}

	for i := 0; i < 3; i++ {
		if _, err := fr.Capture("p99_latency", map[string]any{"i": i}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond) // distinct bundle timestamps
	}
	bundles := fr.Bundles()
	if len(bundles) != 2 {
		t.Fatalf("prune kept %d bundles, want 2: %v", len(bundles), bundles)
	}
	// Each surviving bundle holds the goroutine dump and meta record.
	for _, b := range bundles {
		if _, err := os.Stat(filepath.Join(dir, b, "goroutines.txt")); err != nil {
			t.Fatalf("bundle %s: %v", b, err)
		}
		metaB, err := os.ReadFile(filepath.Join(dir, b, "meta.json"))
		if err != nil {
			t.Fatalf("bundle %s: %v", b, err)
		}
		var meta map[string]any
		if err := json.Unmarshal(metaB, &meta); err != nil {
			t.Fatalf("bundle %s meta: %v", b, err)
		}
		if meta["reason"] != "p99_latency" {
			t.Fatalf("bundle %s meta = %+v", b, meta)
		}
	}

	// Threshold checks: below stays quiet, at/above triggers (async).
	before := len(fr.Bundles())
	p99 = 10 * time.Millisecond
	fr.Check(time.Now())
	p99 = 80 * time.Millisecond
	fr.Check(time.Now())
	deadline := time.Now().Add(5 * time.Second)
	for len(fr.Bundles()) <= before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := len(fr.Bundles()); got <= before {
		t.Fatalf("breaching p99 captured nothing (bundles %d)", got)
	}

	// Runtime threshold adjustment.
	fr.SetThresholds(123*time.Millisecond, 7)
	if gotP99, gotQD := fr.Thresholds(); gotP99 != 123*time.Millisecond || gotQD != 7 {
		t.Fatalf("Thresholds() = %v, %d", gotP99, gotQD)
	}

	// Nil recorder (no dir): every call is a no-op.
	var nilFR *FlightRecorder
	nilFR.Check(time.Now())
	nilFR.SetThresholds(time.Second, 1)
	if nilFR.Bundles() != nil || nilFR.Dir() != "" {
		t.Fatal("nil recorder not inert")
	}
	if NewFlightRecorder(RecorderConfig{}) != nil {
		t.Fatal("recorder without a dir must be nil")
	}
}

func TestWorkloadIDStable(t *testing.T) {
	a, b := WorkloadID("k1\x00k2"), WorkloadID("k1\x00k2")
	if a != b || a == "" || a[0] != 'w' {
		t.Fatalf("WorkloadID unstable or malformed: %q vs %q", a, b)
	}
	if WorkloadID("other") == a {
		t.Fatal("distinct keys collide trivially")
	}
}
