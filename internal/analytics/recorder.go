package analytics

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// RecorderConfig tunes a FlightRecorder.
type RecorderConfig struct {
	// Dir is the incident-bundle directory (created on first capture).
	// Required: an empty Dir makes NewFlightRecorder return nil, which is
	// a valid no-op recorder.
	Dir string
	// MaxBundles bounds the on-disk bundle count; the oldest bundles are
	// pruned past it. <= 0 means DefaultMaxBundles.
	MaxBundles int
	// CPUProfileDuration is how long the capture profiles the CPU;
	// <= 0 means DefaultProfileDuration.
	CPUProfileDuration time.Duration
	// Cooldown is the minimum spacing between captures, so a sustained
	// breach produces one bundle, not one per second. <= 0 means
	// DefaultCooldown.
	Cooldown time.Duration

	// P99Threshold triggers a capture when the p99 total request latency
	// meets it; 0 disables the latency trigger. Runtime-adjustable via
	// SetThresholds.
	P99Threshold time.Duration
	// QueueDepthThreshold triggers a capture when any dataset queue
	// reaches this depth; 0 disables the depth trigger. Runtime-
	// adjustable via SetThresholds.
	QueueDepthThreshold int

	// P99 supplies the current p99 total latency (ok=false when there is
	// no signal yet). Typically obs.Tracer.PhaseQuantile("total", 0.99).
	P99 func() (time.Duration, bool)
	// QueueDepth supplies the current maximum per-dataset queue depth.
	QueueDepth func() int
	// Traces supplies the recent trace ring for the bundle's traces.json.
	Traces func() any

	// Log receives one structured JSON line per capture; nil means
	// os.Stderr.
	Log io.Writer
	// Metrics, when set, receives apex_flight_recordings_total{trigger}.
	Metrics *metrics.Registry
}

// Defaults for RecorderConfig.
const (
	DefaultMaxBundles      = 8
	DefaultProfileDuration = 2 * time.Second
	DefaultCooldown        = 5 * time.Minute
)

// FlightRecorder captures anomaly incident bundles: when a trigger
// condition holds at check time (and the cooldown has passed), it writes
// a pprof CPU profile, a full goroutine dump, the recent trace ring and a
// meta record into one bundle directory under Dir, pruning the oldest
// bundles beyond MaxBundles. Checks ride the analytics sampler's 1 Hz
// pace; captures run on their own goroutine so the sampler never blocks
// behind the profile. A nil *FlightRecorder ignores every call.
type FlightRecorder struct {
	cfg RecorderConfig

	p99NS  atomic.Int64
	qdepth atomic.Int64

	mu        sync.Mutex // serializes captures and lastCapture
	lastAt    time.Time
	capturing bool

	logMu sync.Mutex
}

// NewFlightRecorder builds a recorder, or returns nil (a no-op recorder)
// when cfg.Dir is empty.
func NewFlightRecorder(cfg RecorderConfig) *FlightRecorder {
	if cfg.Dir == "" {
		return nil
	}
	if cfg.MaxBundles <= 0 {
		cfg.MaxBundles = DefaultMaxBundles
	}
	if cfg.CPUProfileDuration <= 0 {
		cfg.CPUProfileDuration = DefaultProfileDuration
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = DefaultCooldown
	}
	if cfg.Log == nil {
		cfg.Log = os.Stderr
	}
	fr := &FlightRecorder{cfg: cfg}
	fr.p99NS.Store(int64(cfg.P99Threshold))
	fr.qdepth.Store(int64(cfg.QueueDepthThreshold))
	if cfg.Metrics != nil {
		// Declare the family (with both trigger series) before the first
		// scrape so dashboards can alert on it from process start.
		cfg.Metrics.Counter("apex_flight_recordings_total",
			"Incident bundles captured by the flight recorder, by trigger.",
			metrics.L("trigger", "p99_latency"))
		cfg.Metrics.Counter("apex_flight_recordings_total",
			"Incident bundles captured by the flight recorder, by trigger.",
			metrics.L("trigger", "queue_depth"))
	}
	return fr
}

// SetThresholds adjusts the trigger thresholds at runtime (0 disables a
// trigger). Safe for concurrent use.
func (fr *FlightRecorder) SetThresholds(p99 time.Duration, queueDepth int) {
	if fr == nil {
		return
	}
	if p99 < 0 {
		p99 = 0
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	fr.p99NS.Store(int64(p99))
	fr.qdepth.Store(int64(queueDepth))
}

// Thresholds returns the current trigger thresholds.
func (fr *FlightRecorder) Thresholds() (p99 time.Duration, queueDepth int) {
	if fr == nil {
		return 0, 0
	}
	return time.Duration(fr.p99NS.Load()), int(fr.qdepth.Load())
}

// Dir returns the bundle directory ("" on a nil recorder).
func (fr *FlightRecorder) Dir() string {
	if fr == nil {
		return ""
	}
	return fr.cfg.Dir
}

// Check evaluates the trigger conditions at now and, when one holds
// outside the cooldown, starts an asynchronous capture. Designed to ride
// the analytics sampler's tick.
func (fr *FlightRecorder) Check(now time.Time) {
	if fr == nil {
		return
	}
	var reason string
	detail := map[string]any{}
	if th := time.Duration(fr.p99NS.Load()); th > 0 && fr.cfg.P99 != nil {
		if p99, ok := fr.cfg.P99(); ok && p99 >= th {
			reason = "p99_latency"
			detail["p99_ms"] = float64(p99.Microseconds()) / 1e3
			detail["p99_threshold_ms"] = float64(th.Microseconds()) / 1e3
		}
	}
	if reason == "" {
		if th := int(fr.qdepth.Load()); th > 0 && fr.cfg.QueueDepth != nil {
			if depth := fr.cfg.QueueDepth(); depth >= th {
				reason = "queue_depth"
				detail["queue_depth"] = depth
				detail["queue_depth_threshold"] = th
			}
		}
	}
	if reason == "" {
		return
	}

	fr.mu.Lock()
	if fr.capturing || (!fr.lastAt.IsZero() && now.Sub(fr.lastAt) < fr.cfg.Cooldown) {
		fr.mu.Unlock()
		return
	}
	fr.capturing = true
	fr.lastAt = now
	fr.mu.Unlock()

	go func() {
		defer func() {
			fr.mu.Lock()
			fr.capturing = false
			fr.mu.Unlock()
		}()
		if _, err := fr.Capture(reason, detail); err != nil {
			fr.logLine(map[string]any{
				"time": time.Now().UTC(), "level": "error",
				"msg": "flight recorder capture failed", "reason": reason, "error": err.Error(),
			})
		}
	}()
}

// Capture synchronously writes one incident bundle and prunes old ones,
// returning the bundle directory. It blocks for CPUProfileDuration while
// the profile collects. Exported for tests and for operator-initiated
// captures.
func (fr *FlightRecorder) Capture(reason string, detail map[string]any) (string, error) {
	if fr == nil {
		return "", fmt.Errorf("analytics: flight recorder disabled")
	}
	start := time.Now().UTC()
	name := fmt.Sprintf("incident-%s-%s", start.Format("20060102T150405.000Z0700"), reason)
	dir := filepath.Join(fr.cfg.Dir, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}

	// Goroutine dump first: it is instantaneous and most valuable if the
	// process is about to fall over.
	if f, err := os.Create(filepath.Join(dir, "goroutines.txt")); err == nil {
		_ = pprof.Lookup("goroutine").WriteTo(f, 2)
		_ = f.Close()
	}

	// Trace ring: the requests that led up to the anomaly.
	if fr.cfg.Traces != nil {
		if b, err := json.MarshalIndent(fr.cfg.Traces(), "", "  "); err == nil {
			_ = os.WriteFile(filepath.Join(dir, "traces.json"), b, 0o644)
		}
	}

	// CPU profile of the anomaly in progress. StartCPUProfile fails when
	// another profile is running (e.g. an operator's /debug/pprof pull);
	// the bundle is still useful without it, so record the error instead
	// of failing the capture.
	profileErr := ""
	if f, err := os.Create(filepath.Join(dir, "cpu.pprof")); err == nil {
		if err := pprof.StartCPUProfile(f); err != nil {
			profileErr = err.Error()
			_ = f.Close()
			_ = os.Remove(filepath.Join(dir, "cpu.pprof"))
		} else {
			time.Sleep(fr.cfg.CPUProfileDuration)
			pprof.StopCPUProfile()
			_ = f.Close()
		}
	}

	meta := map[string]any{
		"reason":              reason,
		"detail":              detail,
		"started":             start,
		"finished":            time.Now().UTC(),
		"profile_duration_ms": fr.cfg.CPUProfileDuration.Milliseconds(),
		"goroutines":          runtime.NumGoroutine(),
	}
	if profileErr != "" {
		meta["cpu_profile_error"] = profileErr
	}
	b, err := json.MarshalIndent(meta, "", "  ")
	if err == nil {
		err = os.WriteFile(filepath.Join(dir, "meta.json"), b, 0o644)
	}
	if err != nil {
		return dir, err
	}

	fr.prune()
	if fr.cfg.Metrics != nil {
		fr.cfg.Metrics.Counter("apex_flight_recordings_total",
			"Incident bundles captured by the flight recorder, by trigger.",
			metrics.L("trigger", reason)).Inc()
	}
	fr.logLine(map[string]any{
		"time": time.Now().UTC(), "level": "warn", "msg": "flight recorder captured incident",
		"reason": reason, "bundle": dir, "detail": detail,
	})
	return dir, nil
}

// Bundles lists the bundle directory names under Dir, oldest first (the
// incident-<timestamp>-<reason> naming sorts chronologically).
func (fr *FlightRecorder) Bundles() []string {
	if fr == nil {
		return nil
	}
	ents, err := os.ReadDir(fr.cfg.Dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range ents {
		if e.IsDir() && len(e.Name()) > len("incident-") && e.Name()[:len("incident-")] == "incident-" {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out
}

// prune removes the oldest bundles beyond MaxBundles.
func (fr *FlightRecorder) prune() {
	names := fr.Bundles()
	for len(names) > fr.cfg.MaxBundles {
		_ = os.RemoveAll(filepath.Join(fr.cfg.Dir, names[0]))
		names = names[1:]
	}
}

func (fr *FlightRecorder) logLine(fields map[string]any) {
	b, err := json.Marshal(fields)
	if err != nil {
		return
	}
	b = append(b, '\n')
	fr.logMu.Lock()
	_, _ = fr.cfg.Log.Write(b)
	fr.logMu.Unlock()
}
