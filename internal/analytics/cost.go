// Package analytics is the server's workload-analytics plane: it turns
// the per-request traces the obs package already records into an
// aggregate resource economy an operator (or the future shard router) can
// query.
//
// Four surfaces:
//
//   - per-request cost vectors (CPU time, scan bytes, queue wait,
//     translate time, cache-hit flags, settled ε) extracted from each
//     finished trace's span tree and folded into per-dataset aggregates
//     plus space-saving top-K heavy-hitter sketches over sessions and
//     canonical workloads (Collector, served at GET /v1/debug/top and as
//     apex_analytics_* metric families);
//   - an in-process time-series ring: a 1 Hz self-snapshot of key gauges
//     and histogram quantiles over a bounded window (Timeseries, served
//     at GET /v1/debug/timeseries), so operators get recent history
//     without an external Prometheus;
//   - an anomaly flight recorder: when p99 latency or queue depth crosses
//     a (runtime-adjustable) threshold, a pprof CPU profile + goroutine
//     dump + the recent trace ring are captured into a bounded on-disk
//     incident bundle (FlightRecorder);
//   - EXPLAIN support types shared with the engine's dry-run path.
//
// Like internal/obs and internal/metrics, the package is dependency-free
// and nil-tolerant: a nil *Collector, *Timeseries or *FlightRecorder
// accepts every method as a no-op, so call sites never check whether
// analytics is enabled.
package analytics

import (
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/workload"
)

// CostVector is the additive resource cost of one or more requests. All
// fields aggregate by plain summation, so per-dataset, per-session and
// per-workload rollups are folds of the same type.
type CostVector struct {
	// Requests counts the observed request traces.
	Requests int64 `json:"requests"`
	// CPUNanos is the summed wall time of the request's processing phases
	// (prepare + execute + commit, including nested translate and WAL
	// flush waits) — the time the server actively worked on the request,
	// as opposed to queue wait.
	CPUNanos int64 `json:"cpu_ns"`
	// QueueNanos is the summed scheduler queue wait.
	QueueNanos int64 `json:"queue_ns"`
	// TranslateNanos is the summed Monte-Carlo translation time inside
	// Prepare (a cache hit makes this nanoseconds, a miss ~10ms).
	TranslateNanos int64 `json:"translate_ns"`
	// ScanBytes is the request's attributed share of batched columnar
	// scan traffic. Shares are computed so that they sum exactly to the
	// BatchStats.ScanBytes accounting: a batch's total is split across
	// its members with the remainder spread one byte at a time, so a
	// batch of one is attributed its exact BatchStats figure.
	ScanBytes int64 `json:"scan_bytes"`
	// Epsilon is the summed settled (actual) privacy loss.
	Epsilon float64 `json:"epsilon"`
	// TransformHits / TranslateHits / ReuseHits count requests whose
	// prepare phase hit the workload-transform cache, the shared
	// translation plane, and the §9 answer-reuse cache respectively.
	TransformHits int64 `json:"transform_cache_hits"`
	TranslateHits int64 `json:"translate_cache_hits"`
	ReuseHits     int64 `json:"reuse_hits"`
	// Denied counts budget denials; Errors counts requests whose HTTP
	// status was >= 400.
	Denied int64 `json:"denied"`
	// Errors counts requests that finished with an HTTP error status.
	Errors int64 `json:"errors"`
}

// Add folds o into v.
func (v *CostVector) Add(o CostVector) {
	v.Requests += o.Requests
	v.CPUNanos += o.CPUNanos
	v.QueueNanos += o.QueueNanos
	v.TranslateNanos += o.TranslateNanos
	v.ScanBytes += o.ScanBytes
	v.Epsilon += o.Epsilon
	v.TransformHits += o.TransformHits
	v.TranslateHits += o.TranslateHits
	v.ReuseHits += o.ReuseHits
	v.Denied += o.Denied
	v.Errors += o.Errors
}

// RequestCost is one request's extracted cost vector plus the dimensions
// it aggregates under.
type RequestCost struct {
	TraceID  string
	Dataset  string
	Session  string
	Workload string // WorkloadID of the canonical workload key; "" when untagged
	Query    string // bounded query text from the trace tag
	Vector   CostVector
}

// WorkloadID folds a canonical workload key (workload.Key — NUL-joined
// rendered predicates, arbitrarily long) into a short stable identifier
// usable as a trace tag, sketch key and metric-safe string. It is
// workload.ID — the same hash the engine stamps on request traces.
func WorkloadID(key string) string {
	return workload.ID(key)
}

// ExtractCost walks one finished trace's span tree and assembles its cost
// vector. ok is false for traces without a "dataset" tag — control-plane
// and debug requests, which have no resource economy to attribute.
func ExtractCost(v obs.TraceView) (RequestCost, bool) {
	ds := v.Tags["dataset"]
	if ds == "" {
		return RequestCost{}, false
	}
	rc := RequestCost{
		TraceID:  v.ID,
		Dataset:  ds,
		Session:  v.Tags["session"],
		Workload: v.Tags["workload"],
		Query:    v.Tags["query"],
	}
	rc.Vector.Requests = 1
	if st, err := strconv.Atoi(v.Tags["status"]); err == nil && st >= 400 {
		rc.Vector.Errors = 1
	}
	for _, sp := range v.Spans {
		extractSpan(&rc.Vector, sp)
	}
	return rc, true
}

// extractSpan folds one span (and its children) into the vector.
func extractSpan(cv *CostVector, sp obs.SpanView) {
	d := time.Duration(sp.DurationUS) * time.Microsecond
	switch sp.Name {
	case "queue":
		cv.QueueNanos += int64(d)
	case "prepare", "execute", "commit":
		// Top-level processing phases; nested spans (translate under
		// prepare, wal_flush under commit) are already inside these
		// durations, so only the top level counts toward CPU time.
		cv.CPUNanos += int64(d)
	case "translate":
		cv.TranslateNanos += int64(d)
		if attrBool(sp.Attrs, "translate_cache_hit") {
			cv.TranslateHits++
		}
	case "scan":
		if b, ok := attrInt(sp.Attrs, "scan_share_bytes"); ok {
			cv.ScanBytes += b
		} else if b, ok := attrInt(sp.Attrs, "scan_bytes"); ok {
			// Traces recorded before share attribution existed: exact
			// only for single-request batches.
			if n, _ := attrInt(sp.Attrs, "batch_size"); n <= 1 {
				cv.ScanBytes += b
			}
		}
	}
	switch sp.Name {
	case "prepare":
		if attrBool(sp.Attrs, "transform_cache_hit") {
			cv.TransformHits++
		}
		if attrBool(sp.Attrs, "reuse_hit") {
			cv.ReuseHits++
		}
		if attrBool(sp.Attrs, "denied") {
			cv.Denied++
		}
	case "commit":
		if e, ok := attrFloat(sp.Attrs, "epsilon"); ok {
			cv.Epsilon += e
		}
	}
	for _, c := range sp.Spans {
		extractSpan(cv, c)
	}
}

// Attr values are Go basics in-process (bool, int, int64, float64) but
// float64/bool after a JSON round trip; the helpers accept both.

func attrBool(attrs map[string]any, key string) bool {
	b, _ := attrs[key].(bool)
	return b
}

func attrInt(attrs map[string]any, key string) (int64, bool) {
	switch x := attrs[key].(type) {
	case int:
		return int64(x), true
	case int64:
		return x, true
	case float64:
		return int64(x), true
	}
	return 0, false
}

func attrFloat(attrs map[string]any, key string) (float64, bool) {
	switch x := attrs[key].(type) {
	case float64:
		return x, true
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	}
	return 0, false
}
