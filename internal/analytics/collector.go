package analytics

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/metrics"
	"repro/internal/obs"
)

// Config tunes a Collector.
type Config struct {
	// TopK bounds the session and workload heavy-hitter sketches; <= 0
	// means DefaultTopK.
	TopK int
}

// DefaultTopK is the default sketch capacity per dimension.
const DefaultTopK = 64

// Collector folds finished request traces into the workload cost
// economy: exact per-dataset aggregates plus SpaceSaving top-K sketches
// over sessions and canonical workloads. Wire Observe as the tracer's
// OnFinish hook. A nil *Collector ignores every call.
type Collector struct {
	mu        sync.Mutex
	topk      int
	total     CostVector
	datasets  map[string]*CostVector
	sessions  *topK
	workloads *topK
}

// NewCollector builds a Collector.
func NewCollector(cfg Config) *Collector {
	k := cfg.TopK
	if k <= 0 {
		k = DefaultTopK
	}
	return &Collector{
		topk:      k,
		datasets:  make(map[string]*CostVector),
		sessions:  newTopK(k),
		workloads: newTopK(k),
	}
}

// Observe extracts one finished trace's cost vector and folds it into
// every aggregate. Traces without a dataset tag (control plane, debug
// endpoints) are ignored. The signature matches obs.Config.OnFinish.
func (c *Collector) Observe(v obs.TraceView) {
	if c == nil {
		return
	}
	rc, ok := ExtractCost(v)
	if !ok {
		return
	}
	cpuSec := float64(rc.Vector.CPUNanos) / 1e9
	c.mu.Lock()
	defer c.mu.Unlock()
	c.total.Add(rc.Vector)
	agg := c.datasets[rc.Dataset]
	if agg == nil {
		agg = &CostVector{}
		c.datasets[rc.Dataset] = agg
	}
	agg.Add(rc.Vector)
	if rc.Session != "" {
		c.sessions.observe(rc.Session, cpuSec, &rc)
	}
	if rc.Workload != "" {
		c.workloads.observe(rc.Workload, cpuSec, &rc)
	}
}

// Total returns the cost vector folded over every observed request.
func (c *Collector) Total() CostVector {
	if c == nil {
		return CostVector{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Dataset returns one dataset's aggregate cost vector.
func (c *Collector) Dataset(name string) CostVector {
	if c == nil {
		return CostVector{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if agg := c.datasets[name]; agg != nil {
		return *agg
	}
	return CostVector{}
}

// Top returns up to k heavy hitters for one dimension ("dataset",
// "session" or "workload"), heaviest attributed CPU first. The dataset
// dimension is exact (one aggregate per registered dataset); the session
// and workload dimensions come from the SpaceSaving sketches and carry
// per-entry overestimation bounds.
func (c *Collector) Top(dimension string, k int) ([]TopEntry, error) {
	if c == nil {
		return []TopEntry{}, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	switch dimension {
	case "dataset":
		out := make([]TopEntry, 0, len(c.datasets))
		for name, agg := range c.datasets {
			out = append(out, TopEntry{
				Key:              name,
				WeightCPUSeconds: float64(agg.CPUNanos) / 1e9,
				Cost:             *agg,
			})
		}
		sortEntries(out)
		if k > 0 && len(out) > k {
			out = out[:k]
		}
		return out, nil
	case "session":
		return c.sessions.top(k), nil
	case "workload":
		return c.workloads.top(k), nil
	default:
		return nil, fmt.Errorf("analytics: unknown dimension %q (want dataset, session or workload)", dimension)
	}
}

func sortEntries(out []TopEntry) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].WeightCPUSeconds != out[j].WeightCPUSeconds {
			return out[i].WeightCPUSeconds > out[j].WeightCPUSeconds
		}
		return out[i].Key < out[j].Key
	})
}

// Publish registers the apex_analytics_* metric families into reg,
// collected at scrape time (the OnScrape idiom: the truth lives in the
// collector's aggregates). datasets supplies the names that must always
// have series — typically the server's dataset registry — so the families
// exist with zero values from the first scrape, before any query ran.
func (c *Collector) Publish(reg *metrics.Registry, datasets func() []string) {
	if c == nil || reg == nil {
		return
	}
	reg.OnScrape(func() {
		names := map[string]bool{}
		if datasets != nil {
			for _, n := range datasets() {
				names[n] = true
			}
		}
		c.mu.Lock()
		for n := range c.datasets {
			names[n] = true
		}
		aggs := make(map[string]CostVector, len(names))
		for n := range names {
			if agg := c.datasets[n]; agg != nil {
				aggs[n] = *agg
			} else {
				aggs[n] = CostVector{}
			}
		}
		c.mu.Unlock()
		for n, agg := range aggs {
			l := metrics.L("dataset", n)
			setCounter(reg, "apex_analytics_requests_total",
				"Requests attributed to the dataset by the analytics plane.", float64(agg.Requests), l)
			setCounter(reg, "apex_analytics_cpu_seconds_total",
				"Attributed processing time (prepare+execute+commit) per dataset.", float64(agg.CPUNanos)/1e9, l)
			setCounter(reg, "apex_analytics_queue_seconds_total",
				"Attributed scheduler queue wait per dataset.", float64(agg.QueueNanos)/1e9, l)
			setCounter(reg, "apex_analytics_translate_seconds_total",
				"Attributed Monte-Carlo translation time per dataset.", float64(agg.TranslateNanos)/1e9, l)
			setCounter(reg, "apex_analytics_scan_bytes_total",
				"Per-request attributed shares of batched scan traffic (sums to apex_scan_bytes_total).", float64(agg.ScanBytes), l)
			setCounter(reg, "apex_analytics_epsilon_total",
				"Settled privacy loss attributed per dataset.", agg.Epsilon, l)
			setCounter(reg, "apex_analytics_denied_total",
				"Budget denials attributed per dataset.", float64(agg.Denied), l)
			setCounter(reg, "apex_analytics_cache_hits_total",
				"Requests whose prepare hit a cache, by cache plane.", float64(agg.TransformHits), l, metrics.L("cache", "transform"))
			setCounter(reg, "apex_analytics_cache_hits_total",
				"Requests whose prepare hit a cache, by cache plane.", float64(agg.TranslateHits), l, metrics.L("cache", "translate"))
			setCounter(reg, "apex_analytics_cache_hits_total",
				"Requests whose prepare hit a cache, by cache plane.", float64(agg.ReuseHits), l, metrics.L("cache", "reuse"))
		}
	})
}

// setCounter forces a counter series to an absolute value at scrape time.
// The underlying aggregates are monotone, so the rendered series stays a
// valid Prometheus counter.
func setCounter(reg *metrics.Registry, name, help string, v float64, labels ...metrics.Label) {
	ctr := reg.Counter(name, help, labels...)
	if delta := v - ctr.Value(); delta > 0 {
		ctr.Add(delta)
	}
}
