package analytics

import (
	"sync"
	"time"
)

// Sample is one self-snapshot: a timestamp plus a flat map of named
// gauge values (latency quantiles in milliseconds, queue depths,
// runtime stats, cumulative counters).
type Sample struct {
	At     time.Time          `json:"at"`
	Values map[string]float64 `json:"values"`
}

// Timeseries is the in-process history ring: a paced sampler snapshots
// registered sources into a bounded window, so GET /v1/debug/timeseries
// can show the last N minutes of key gauges without an external scraper.
// A nil *Timeseries ignores every call.
type Timeseries struct {
	interval time.Duration

	mu      sync.Mutex
	sources []func(put func(name string, v float64))
	onTick  []func(now time.Time)
	ring    []Sample
	next    int
	filled  bool

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// Default sampling shape: one sample per second over a ten-minute window.
const (
	DefaultWindow   = 600
	DefaultInterval = time.Second
)

// NewTimeseries builds a ring of window samples paced at interval.
// window <= 0 means DefaultWindow; interval <= 0 means DefaultInterval.
func NewTimeseries(window int, interval time.Duration) *Timeseries {
	if window <= 0 {
		window = DefaultWindow
	}
	if interval <= 0 {
		interval = DefaultInterval
	}
	return &Timeseries{
		interval: interval,
		ring:     make([]Sample, window),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// AddSource registers a sampler invoked on every tick; it reports values
// through put. Register sources before Start.
func (ts *Timeseries) AddSource(f func(put func(name string, v float64))) {
	if ts == nil {
		return
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.sources = append(ts.sources, f)
}

// OnTick registers a hook run after each sample lands — the flight
// recorder's threshold checks ride the sampler's pace through it.
func (ts *Timeseries) OnTick(f func(now time.Time)) {
	if ts == nil {
		return
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.onTick = append(ts.onTick, f)
}

// Start launches the sampling loop. Idempotent.
func (ts *Timeseries) Start() {
	if ts == nil {
		return
	}
	ts.startOnce.Do(func() {
		go func() {
			defer close(ts.done)
			t := time.NewTicker(ts.interval)
			defer t.Stop()
			for {
				select {
				case now := <-t.C:
					ts.Tick(now)
				case <-ts.stop:
					return
				}
			}
		}()
	})
}

// Stop halts the sampling loop and waits for it to exit. Idempotent;
// safe even if Start was never called.
func (ts *Timeseries) Stop() {
	if ts == nil {
		return
	}
	ts.stopOnce.Do(func() { close(ts.stop) })
	ts.startOnce.Do(func() { close(ts.done) }) // never started: unblock the wait
	<-ts.done
}

// Tick takes one sample at now. Exported so tests (and callers that pace
// themselves) can drive the ring deterministically.
func (ts *Timeseries) Tick(now time.Time) {
	if ts == nil {
		return
	}
	ts.mu.Lock()
	sources := ts.sources
	hooks := ts.onTick
	ts.mu.Unlock()

	s := Sample{At: now.UTC(), Values: make(map[string]float64, 16)}
	put := func(name string, v float64) { s.Values[name] = v }
	for _, f := range sources {
		f(put)
	}

	ts.mu.Lock()
	ts.ring[ts.next] = s
	ts.next++
	if ts.next == len(ts.ring) {
		ts.next = 0
		ts.filled = true
	}
	ts.mu.Unlock()

	for _, h := range hooks {
		h(now)
	}
}

// Snapshot returns up to n of the most recent samples, oldest first
// (plot-ready); n <= 0 returns the whole window.
func (ts *Timeseries) Snapshot(n int) []Sample {
	if ts == nil {
		return []Sample{}
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	have := ts.next
	if ts.filled {
		have = len(ts.ring)
	}
	if n <= 0 || n > have {
		n = have
	}
	out := make([]Sample, 0, n)
	for i := have - n; i < have; i++ {
		idx := i
		if ts.filled {
			idx = (ts.next + (len(ts.ring) - have) + i) % len(ts.ring)
		}
		out = append(out, ts.ring[idx])
	}
	return out
}

// Interval returns the sampler pace.
func (ts *Timeseries) Interval() time.Duration {
	if ts == nil {
		return 0
	}
	return ts.interval
}
