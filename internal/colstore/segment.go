package colstore

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/dataset"
)

// Segment is one opened, mmap'd column-store file. Its Table serves the
// full dataset.Table interface over the mapping: predicate kernels and
// workload scans read the mapped pages directly, so the process's
// resident set is only what the page cache keeps warm, not the dataset.
//
// A Segment must stay open for as long as its Table is referenced
// anywhere — Close unmaps the column slices out from under it. The server
// registry owns segments for the process lifetime, matching its
// "datasets are immutable and never dropped" contract.
type Segment struct {
	path      string
	f         *os.File
	data      []byte // the whole-file mapping (heap buffer on no-mmap platforms)
	mapped    bool
	table     *dataset.Table
	rows      int
	version   int
	dataBytes int64
	v1Bytes   int64
	advised   atomic.Bool

	// colSpans[pos] is the page-aligned byte envelope of column pos's
	// regions inside the mapping — the unit of column-granular madvise
	// and per-column residency accounting. advMu guards colAdvised, the
	// per-column WILLNEED dedup.
	colSpans   []colSpan
	advMu      sync.Mutex
	colAdvised []bool
}

// colSpan is one column's byte range within the mapping; start is
// page-aligned (columns begin on page boundaries by construction).
type colSpan struct{ start, end uint64 }

// Open verifies and maps the segment at path and rebuilds its table with
// zero-copy column views. Every checksum (header, directory, each column
// page, dictionaries, misfit table) is verified first via a sequential
// bounded-buffer read of the file — not through the mapping, so
// validation leaves the resident set alone. Corruption anywhere fails
// with ErrCorrupt.
func Open(path string) (*Segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("colstore: %w", err)
	}
	seg, err := open(f, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	return seg, nil
}

// segMeta is everything validation learns about a segment file before it
// is mapped: decoded header and directory, schema, and the ordered
// checksummed regions with their total payload size.
type segMeta struct {
	h         *header
	dir       directory
	schema    *dataset.Schema
	rows      int
	regions   []region
	dataBytes int64
	// v1Bytes is what the same columns would occupy in the full-width v1
	// layout (codes 4 B/row, values 8 B/row) — the denominator of the
	// compression-ratio gauge.
	v1Bytes  int64
	colSpans []colSpan
	size     int64
}

// validateFile runs the segment's full structural and checksum validation
// — header, directory bounds + CRC + JSON, schema agreement, per-column
// region structure, then one sequential bounded-buffer checksum pass over
// every region in file order. It never maps the file, so it is equally
// the open-time gate and the background scrubber's re-verification
// primitive (reads go through a 1 MiB buffer, not the hot mapping).
func validateFile(f *os.File) (*segMeta, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("colstore: %w", err)
	}
	size := st.Size()
	hb := make([]byte, headerSize)
	if _, err := io.ReadFull(f, hb); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	h, err := decodeHeader(hb)
	if err != nil {
		return nil, err
	}
	if h.fileSize != uint64(size) {
		return nil, fmt.Errorf("%w: header says %d bytes, file has %d", ErrCorrupt, h.fileSize, size)
	}
	if h.dirOff < headerSize || h.dirOff+h.dirLen > uint64(size) || h.dirLen > 1<<30 {
		return nil, fmt.Errorf("%w: directory out of bounds", ErrCorrupt)
	}

	dirJSON := make([]byte, h.dirLen)
	if _, err := f.ReadAt(dirJSON, int64(h.dirOff)); err != nil {
		return nil, fmt.Errorf("%w: directory: %v", ErrCorrupt, err)
	}
	if got := crc32.Checksum(dirJSON, castagnoli); got != h.dirCRC {
		return nil, fmt.Errorf("%w: directory checksum mismatch (got %08x, want %08x)", ErrCorrupt, got, h.dirCRC)
	}
	var dir directory
	if err := json.Unmarshal(dirJSON, &dir); err != nil {
		return nil, fmt.Errorf("%w: directory: %v", ErrCorrupt, err)
	}
	schema := new(dataset.Schema)
	if err := json.Unmarshal(dir.Schema, schema); err != nil {
		return nil, fmt.Errorf("%w: schema: %v", ErrCorrupt, err)
	}
	rows := dir.Rows
	if rows < 0 || uint64(rows) != h.rows {
		return nil, fmt.Errorf("%w: row count mismatch (directory %d, header %d)", ErrCorrupt, rows, h.rows)
	}
	if len(dir.Columns) != schema.Arity() || uint32(len(dir.Columns)) != h.cols {
		return nil, fmt.Errorf("%w: column count mismatch", ErrCorrupt)
	}

	// Structural validation of every region, then one sequential checksum
	// pass in file order.
	words := (rows + 63) >> 6
	var regions []region
	var dataBytes int64
	checkRegion := func(r *region, what string, wantLen int64, align uint64) error {
		if r == nil {
			return fmt.Errorf("%w: missing %s region", ErrCorrupt, what)
		}
		if wantLen >= 0 && int64(r.Len) != wantLen {
			return fmt.Errorf("%w: %s region holds %d bytes, want %d", ErrCorrupt, what, r.Len, wantLen)
		}
		// Bounds via subtraction, not Off+Len: a directory declaring a
		// near-2^64 length must fail here, not wrap around and slice-panic
		// later (the structural check is what keeps checksum-valid-but-
		// hostile inputs from indexing out of bounds).
		if r.Off < headerSize || r.Off%align != 0 || r.Off > h.dirOff || r.Len > h.dirOff-r.Off {
			return fmt.Errorf("%w: %s region out of bounds", ErrCorrupt, what)
		}
		regions = append(regions, *r)
		dataBytes += int64(r.Len)
		return nil
	}
	var v1Bytes int64
	colSpans := make([]colSpan, len(dir.Columns))
	for pos, dc := range dir.Columns {
		a := schema.Attr(pos)
		if dc.Name != a.Name || dc.Kind != kindString(a.Kind) {
			return nil, fmt.Errorf("%w: column %d is %s %q, schema wants %s %q",
				ErrCorrupt, pos, dc.Kind, dc.Name, kindString(a.Kind), a.Name)
		}
		// Encoding entries are version-gated: a v1 file declaring a packed
		// encoding (or a packed entry with a nonsense width/base) is as
		// corrupt as a flipped page byte.
		if h.version < version2 && (dc.Enc != encRaw || dc.Width != 0 || dc.Min != nil) {
			return nil, fmt.Errorf("%w: column %d declares encoding %q in a v%d segment", ErrCorrupt, pos, dc.Enc, h.version)
		}
		packedLen := int64(0)
		if dc.Enc != encRaw {
			if dc.Width < 1 || dc.Width > 32 {
				return nil, fmt.Errorf("%w: column %d %s width %d out of range [1,32]", ErrCorrupt, pos, dc.Enc, dc.Width)
			}
			packedLen = int64(dataset.PackedWordCount(rows, dc.Width)) * 8
		}
		spanFirst := len(regions)
		if a.Kind == dataset.Categorical {
			switch dc.Enc {
			case encRaw:
				if err := checkRegion(dc.Codes, "codes", int64(rows)*4, 8); err != nil {
					return nil, err
				}
			case encBitpack:
				if dc.Min != nil {
					return nil, fmt.Errorf("%w: column %d bitpack entry carries a FoR base", ErrCorrupt, pos)
				}
				if err := checkRegion(dc.Codes, "packed codes", packedLen, 8); err != nil {
					return nil, err
				}
			default:
				return nil, fmt.Errorf("%w: column %d unknown encoding %q", ErrCorrupt, pos, dc.Enc)
			}
			if err := checkRegion(dc.Dict, "dictionary", -1, 8); err != nil {
				return nil, err
			}
			v1Bytes += int64(rows)*4 + int64(dc.Dict.Len)
		} else {
			switch dc.Enc {
			case encRaw:
				if err := checkRegion(dc.Vals, "values", int64(rows)*8, 8); err != nil {
					return nil, err
				}
			case encFoR:
				if dc.Min == nil || math.IsNaN(*dc.Min) || math.IsInf(*dc.Min, 0) {
					return nil, fmt.Errorf("%w: column %d FoR entry lacks a finite base", ErrCorrupt, pos)
				}
				if err := checkRegion(dc.Vals, "packed values", packedLen, 8); err != nil {
					return nil, err
				}
			default:
				return nil, fmt.Errorf("%w: column %d unknown encoding %q", ErrCorrupt, pos, dc.Enc)
			}
			if err := checkRegion(dc.Missing, "missing bitmap", int64(words)*8, 8); err != nil {
				return nil, err
			}
			v1Bytes += int64(rows)*8 + int64(words)*8
		}
		// The column's page-aligned envelope, for column-granular madvise.
		span := colSpan{start: regions[spanFirst].Off &^ (pageAlign - 1)}
		for _, r := range regions[spanFirst:] {
			if end := r.Off + r.Len; end > span.end {
				span.end = end
			}
		}
		colSpans[pos] = span
	}
	if dir.Misfits != nil {
		if err := checkRegion(dir.Misfits, "misfit table", -1, 8); err != nil {
			return nil, err
		}
	}
	buf := make([]byte, 1<<20)
	for _, r := range regions {
		if err := verifyRegion(f, r, buf); err != nil {
			return nil, err
		}
	}
	return &segMeta{h: h, dir: dir, schema: schema, rows: rows, regions: regions,
		dataBytes: dataBytes, v1Bytes: v1Bytes, colSpans: colSpans, size: size}, nil
}

func open(f *os.File, path string) (*Segment, error) {
	m, err := validateFile(f)
	if err != nil {
		return nil, err
	}
	data, mapped, err := mapFile(f, m.size)
	if err != nil {
		return nil, fmt.Errorf("colstore: mmap: %w", err)
	}
	seg := &Segment{path: path, f: f, data: data, mapped: mapped, rows: m.rows,
		version: int(m.h.version), dataBytes: m.dataBytes, v1Bytes: m.v1Bytes,
		colSpans: m.colSpans, colAdvised: make([]bool, len(m.colSpans))}
	table, err := seg.buildTable(m.schema, m.rows, &m.dir)
	if err != nil {
		seg.unmap()
		return nil, err
	}
	table.SetPrefetch(seg.Advise)
	table.SetColumnHints(seg.AdviseColumns, seg.ReleaseColumns)
	seg.table = table
	return seg, nil
}

// Verify re-runs the full open-time validation of the segment at path —
// header, directory CRC, structural bounds and every region checksum —
// through bounded sequential reads, without ever mapping the file. It is
// the background scrubber's segment check: cheap on the resident set,
// strict on the bytes. It returns the number of payload bytes checksummed
// (for read-rate pacing); a corrupt file returns ErrCorrupt.
func Verify(path string) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("colstore: %w", err)
	}
	defer f.Close()
	m, err := validateFile(f)
	if err != nil {
		return 0, err
	}
	return int64(headerSize) + int64(m.h.dirLen) + m.dataBytes, nil
}

// buildTable assembles the zero-copy column views and hands them to
// dataset.TableFromColumns for structural validation.
func (s *Segment) buildTable(schema *dataset.Schema, rows int, dir *directory) (*dataset.Table, error) {
	cols := make([]dataset.ColumnData, len(dir.Columns))
	for pos, dc := range dir.Columns {
		if schema.Attr(pos).Kind == dataset.Categorical {
			dict, err := decodeDict(s.region(*dc.Dict))
			if err != nil {
				return nil, fmt.Errorf("column %d: %w", pos, err)
			}
			cd := dataset.ColumnData{Kind: dataset.Categorical, Dict: dict}
			if dc.Enc == encBitpack {
				cd.PackedCodes = &dataset.PackedInts{
					Width: dc.Width,
					N:     rows,
					Words: viewUint64s(s.region(*dc.Codes)),
				}
			} else {
				cd.Codes = viewInt32s(s.region(*dc.Codes))
			}
			cols[pos] = cd
		} else {
			cd := dataset.ColumnData{
				Kind:         dataset.Continuous,
				MissingWords: viewUint64s(s.region(*dc.Missing)),
			}
			if dc.Enc == encFoR {
				cd.PackedVals = &dataset.PackedFloats{
					Ints: dataset.PackedInts{
						Width: dc.Width,
						N:     rows,
						Words: viewUint64s(s.region(*dc.Vals)),
					},
					Min: *dc.Min,
				}
			} else {
				cd.Vals = viewFloat64s(s.region(*dc.Vals))
			}
			cols[pos] = cd
		}
	}
	var misfits []dataset.MisfitCell
	if dir.Misfits != nil {
		var err error
		if misfits, err = decodeMisfits(s.region(*dir.Misfits)); err != nil {
			return nil, err
		}
	}
	t, err := dataset.TableFromColumns(schema, rows, cols, misfits)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return t, nil
}

func (s *Segment) region(r region) []byte { return s.data[r.Off : r.Off+r.Len] }

// Table returns the mmap-backed table. Valid until Close.
func (s *Segment) Table() *dataset.Table { return s.table }

// Path returns the segment file path.
func (s *Segment) Path() string { return s.path }

// Rows returns the row count.
func (s *Segment) Rows() int { return s.rows }

// DataBytes returns the raw column payload size (the threshold policy's
// measure of how big the table would be on the heap).
func (s *Segment) DataBytes() int64 { return s.dataBytes }

// MappedBytes returns the size of the file mapping.
func (s *Segment) MappedBytes() int64 { return int64(len(s.data)) }

// Version reports the on-disk format version (1 or 2).
func (s *Segment) Version() int { return s.version }

// V1DataBytes reports what the same columns would occupy in the
// full-width v1 layout (codes 4 B/row, values 8 B/row, plus
// dictionaries and missing bitmaps) — the denominator of the
// compression-ratio gauge.
func (s *Segment) V1DataBytes() int64 { return s.v1Bytes }

// ResidentBytes reports how much of the mapping currently sits in
// physical memory (mincore; on platforms without it, the whole heap
// fallback buffer counts as resident).
func (s *Segment) ResidentBytes() (int64, error) {
	if !s.mapped {
		return int64(len(s.data)), nil
	}
	return residentBytes(s.data)
}

// Advise hints the kernel to start faulting the mapping in ahead of a
// scan (madvise WILLNEED). It is the table's Prefetch hook, called by the
// scheduler before each batched pass; only the first call after open (or
// after Release) issues the syscall.
func (s *Segment) Advise() {
	if s.advised.CompareAndSwap(false, true) {
		adviseWillNeed(s.data)
	}
}

// Release drops the mapping's resident pages (madvise DONTNEED) — the
// cold-memory end of the policy lever; pages fault back in on the next
// scan. The next Advise re-issues its hint.
func (s *Segment) Release() {
	adviseDontNeed(s.data)
	s.advised.Store(false)
	s.advMu.Lock()
	for i := range s.colAdvised {
		s.colAdvised[i] = false
	}
	s.advMu.Unlock()
}

// AdviseColumns hints WILLNEED over only the named columns' page
// envelopes — the scheduler's column-granular prefetch, installed as the
// table's PrefetchColumns hook. A column already advised (and not since
// released) is skipped; a whole-mapping Advise supersedes everything.
func (s *Segment) AdviseColumns(cols []int) {
	if s.advised.Load() {
		return
	}
	s.advMu.Lock()
	defer s.advMu.Unlock()
	for _, pos := range cols {
		if pos < 0 || pos >= len(s.colSpans) || s.colAdvised[pos] {
			continue
		}
		if sp := s.colSpans[pos]; sp.end > sp.start && sp.end <= uint64(len(s.data)) {
			adviseWillNeed(s.data[sp.start:sp.end])
			s.colAdvised[pos] = true
		}
	}
}

// ReleaseColumns drops the named columns' resident pages (DONTNEED) —
// the cold-column end of the scheduler's planner. Pages fault back in on
// the next touch; a later AdviseColumns re-hints them.
func (s *Segment) ReleaseColumns(cols []int) {
	s.advMu.Lock()
	defer s.advMu.Unlock()
	for _, pos := range cols {
		if pos < 0 || pos >= len(s.colSpans) {
			continue
		}
		if sp := s.colSpans[pos]; sp.end > sp.start && sp.end <= uint64(len(s.data)) {
			adviseDontNeed(s.data[sp.start:sp.end])
			s.colAdvised[pos] = false
		}
	}
}

// ColumnResident reports how many bytes of the column's page envelope
// currently sit in physical memory (mincore; on platforms without a real
// mapping the whole envelope counts as resident).
func (s *Segment) ColumnResident(pos int) (int64, error) {
	if pos < 0 || pos >= len(s.colSpans) {
		return 0, fmt.Errorf("colstore: column %d out of range", pos)
	}
	sp := s.colSpans[pos]
	if sp.end <= sp.start || sp.end > uint64(len(s.data)) {
		return 0, nil
	}
	if !s.mapped {
		return int64(sp.end - sp.start), nil
	}
	return residentBytes(s.data[sp.start:sp.end])
}

// Close unmaps the file. The Table becomes invalid: any later column read
// faults. Only close a segment whose table can no longer be reached.
func (s *Segment) Close() error {
	err := s.unmap()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return err
}

func (s *Segment) unmap() error {
	if s.data == nil {
		return nil
	}
	var err error
	if s.mapped {
		err = unmapFile(s.data)
	}
	s.data = nil
	return err
}

// Load opens the segment, copies its columns onto the heap and closes the
// mapping — the below-threshold path of the storage policy, where a small
// table is cheaper served from RAM than through page faults. The returned
// table is independent of the file.
func Load(path string) (*dataset.Table, error) {
	seg, err := Open(path)
	if err != nil {
		return nil, err
	}
	defer seg.Close()
	return HeapCopy(seg.Table())
}

// HeapCopy clones a table's columns onto the heap — the way off a mapping
// that is about to close (the registry's below-threshold recovery path).
func HeapCopy(t *dataset.Table) (*dataset.Table, error) {
	schema := t.Schema()
	n := t.Size()
	cols := make([]dataset.ColumnData, schema.Arity())
	for pos := 0; pos < schema.Arity(); pos++ {
		cd := t.ColumnData(pos)
		hc := dataset.ColumnData{
			Kind:         cd.Kind,
			Codes:        append([]int32(nil), cd.Codes...),
			Dict:         append([]string(nil), cd.Dict...),
			Vals:         append([]float64(nil), cd.Vals...),
			MissingWords: append([]uint64(nil), cd.MissingWords...),
		}
		// Packed columns stay packed on the heap — same kernels, ~4-8x
		// less RAM than widening to the v1 layout.
		if cd.PackedCodes != nil {
			hc.PackedCodes = &dataset.PackedInts{
				Width: cd.PackedCodes.Width,
				N:     cd.PackedCodes.N,
				Words: append([]uint64(nil), cd.PackedCodes.Words...),
			}
		}
		if cd.PackedVals != nil {
			hc.PackedVals = &dataset.PackedFloats{
				Ints: dataset.PackedInts{
					Width: cd.PackedVals.Ints.Width,
					N:     cd.PackedVals.Ints.N,
					Words: append([]uint64(nil), cd.PackedVals.Ints.Words...),
				},
				Min: cd.PackedVals.Min,
			}
		}
		cols[pos] = hc
	}
	heap, err := dataset.TableFromColumns(schema, n, cols, t.MisfitCells())
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return heap, nil
}

// verifyRegion checksums one region through the caller's reused buffer.
func verifyRegion(f *os.File, r region, buf []byte) error {
	crc := crc32.New(castagnoli)
	off := int64(r.Off)
	left := int64(r.Len)
	for left > 0 {
		n := int64(len(buf))
		if n > left {
			n = left
		}
		if _, err := f.ReadAt(buf[:n], off); err != nil {
			return fmt.Errorf("%w: read at %d: %v", ErrCorrupt, off, err)
		}
		crc.Write(buf[:n])
		off += n
		left -= n
	}
	if got := crc.Sum32(); got != r.CRC {
		return fmt.Errorf("%w: page [%d,%d) checksum mismatch (got %08x, want %08x)",
			ErrCorrupt, r.Off, r.Off+r.Len, got, r.CRC)
	}
	return nil
}

// viewInt32s reinterprets mapped bytes as []int32 on little-endian hosts
// and decode-copies otherwise (correct everywhere, zero-copy where the
// representation matches).
func viewInt32s(b []byte) []int32 {
	if hostLittleEndian {
		return int32View(b)
	}
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

func viewFloat64s(b []byte) []float64 {
	if hostLittleEndian {
		return float64View(b)
	}
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

func viewUint64s(b []byte) []uint64 {
	if hostLittleEndian {
		return uint64View(b)
	}
	out := make([]uint64, len(b)/8)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return out
}
