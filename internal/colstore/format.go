// Package colstore is the disk-backed column store under the APEx server:
// it serializes a dataset.Table's typed columns — dictionary-encoded
// int32 codes plus dictionaries for categorical attributes, packed
// float64s plus missing bitmaps for continuous ones, and the exact misfit
// side table — into a paged, checksummed, versioned segment file, and
// reopens that file via mmap as zero-copy column slices behind the
// existing dataset.Table interfaces. The compiled predicate kernels,
// Histogram/TrueAnswers/ExactSums and the workload transformation cache
// run unchanged over disk-resident data, so a table far larger than RAM
// serves queries with the kernel's page cache as the only working set.
//
// Segment file layout (all integers little-endian):
//
//	[0,64)     fixed header: magic, version, row/column counts, the
//	           directory's location and CRC-32C, and the header's own CRC
//	[64,dir)   data pages, one per column region in schema order, each
//	           aligned to a 4 KiB page boundary: codes (4 B/row) then the
//	           dictionary blob for categorical attributes; values (8 B/row)
//	           then the missing bitmap (1 bit/row) for continuous ones;
//	           finally the misfit side table (JSON), if any
//	[dir,EOF)  directory: JSON naming every region's offset, length and
//	           CRC-32C, plus the full schema
//
// Open verifies every checksum with a bounded-buffer sequential read
// (never through the mapping, so validation does not inflate resident
// memory), then maps the file read-only and hands the column regions to
// dataset.TableFromColumns without copying. Any flipped byte in the
// header, a data page, a dictionary or the directory fails Open with
// ErrCorrupt.
package colstore

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"unsafe"

	"repro/internal/dataset"
)

// ErrCorrupt marks a segment that failed structural or checksum
// validation; callers (the server registry) quarantine the file and fall
// back to re-parsing the source CSV when one is available.
var ErrCorrupt = errors.New("colstore: segment corrupt")

// ErrIO marks a segment build/write failure — disk trouble, not bad
// input. The registry maps it to its persistence-failure surface (HTTP
// 500) instead of the analyst-input one (400).
var ErrIO = errors.New("colstore: segment I/O failure")

const (
	magic = "APXSEG1\n"
	// version1 is the original full-width layout: int32 codes and float64
	// values. version2 adds per-column lightweight encodings (bitpacked
	// dictionary codes, frame-of-reference values); the reader accepts
	// both, the writers emit currentVersion unless told otherwise.
	version1       = 1
	version2       = 2
	currentVersion = version2
	headerSize     = 64
	// pageAlign aligns every column region to the usual OS page size, so
	// madvise and mincore act on whole regions and no two columns share a
	// fault page.
	pageAlign = 4096
)

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64),
// matching the WAL's framing checksum.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// header is the fixed 64-byte preamble.
type header struct {
	version  uint32
	rows     uint64
	cols     uint32
	dirOff   uint64
	dirLen   uint64
	dirCRC   uint32
	fileSize uint64
}

func (h *header) encode() []byte {
	b := make([]byte, headerSize)
	copy(b[0:8], magic)
	binary.LittleEndian.PutUint32(b[8:12], h.version)
	binary.LittleEndian.PutUint32(b[12:16], headerSize)
	binary.LittleEndian.PutUint64(b[16:24], h.rows)
	binary.LittleEndian.PutUint32(b[24:28], h.cols)
	binary.LittleEndian.PutUint64(b[32:40], h.dirOff)
	binary.LittleEndian.PutUint64(b[40:48], h.dirLen)
	binary.LittleEndian.PutUint32(b[48:52], h.dirCRC)
	binary.LittleEndian.PutUint64(b[52:60], h.fileSize)
	binary.LittleEndian.PutUint32(b[60:64], crc32.Checksum(b[:60], castagnoli))
	return b
}

func decodeHeader(b []byte) (*header, error) {
	if len(b) < headerSize {
		return nil, fmt.Errorf("%w: file shorter than header", ErrCorrupt)
	}
	if string(b[0:8]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if got, want := crc32.Checksum(b[:60], castagnoli), binary.LittleEndian.Uint32(b[60:64]); got != want {
		return nil, fmt.Errorf("%w: header checksum mismatch (got %08x, want %08x)", ErrCorrupt, got, want)
	}
	v := binary.LittleEndian.Uint32(b[8:12])
	if v != version1 && v != version2 {
		return nil, fmt.Errorf("colstore: unsupported segment version %d (want %d or %d)", v, version1, version2)
	}
	if hl := binary.LittleEndian.Uint32(b[12:16]); hl != headerSize {
		return nil, fmt.Errorf("%w: header length %d", ErrCorrupt, hl)
	}
	return &header{
		version:  v,
		rows:     binary.LittleEndian.Uint64(b[16:24]),
		cols:     binary.LittleEndian.Uint32(b[24:28]),
		dirOff:   binary.LittleEndian.Uint64(b[32:40]),
		dirLen:   binary.LittleEndian.Uint64(b[40:48]),
		dirCRC:   binary.LittleEndian.Uint32(b[48:52]),
		fileSize: binary.LittleEndian.Uint64(b[52:60]),
	}, nil
}

// region locates one checksummed byte range of the file.
type region struct {
	Off uint64 `json:"off"`
	Len uint64 `json:"len"`
	CRC uint32 `json:"crc"`
}

// Column encodings (dirColumn.Enc). Empty means the full-width v1
// layout; v2 files may mix encodings per column (a continuous column
// with fractional values stays raw, its neighbors pack).
const (
	encRaw     = ""        // int32 codes / float64 values
	encBitpack = "bitpack" // categorical: biased codes at Width bits/row
	encFoR     = "for"     // continuous: Min + lane, Width bits/row
)

// dirColumn is one column's entry in the directory.
type dirColumn struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "categorical" | "continuous"

	// Enc selects the region encoding; Width and Min parameterize the
	// packed forms (Min only for enc "for"). Absent in v1 files.
	Enc   string   `json:"enc,omitempty"`
	Width int      `json:"width,omitempty"`
	Min   *float64 `json:"min,omitempty"`

	Codes *region `json:"codes,omitempty"` // categorical: codes (raw or bitpacked)
	Dict  *region `json:"dict,omitempty"`  // categorical: string blob

	Vals    *region `json:"vals,omitempty"`    // continuous: values (raw or FoR)
	Missing *region `json:"missing,omitempty"` // continuous: bitmap words
}

// directory is the segment's JSON trailer.
type directory struct {
	Schema  json.RawMessage `json:"schema"`
	Rows    int             `json:"rows"`
	Columns []dirColumn     `json:"columns"`
	Misfits *region         `json:"misfits,omitempty"`
}

// misfitJSON is the serialized form of one misfit cell. Misfit values are
// always a number in a categorical column or a string in a continuous one
// (NULLs encode directly in the columns), so two optional fields cover
// the whole domain.
type misfitJSON struct {
	Row int      `json:"row"`
	Pos int      `json:"pos"`
	Str *string  `json:"str,omitempty"`
	Num *float64 `json:"num,omitempty"`
}

func encodeMisfits(cells []dataset.MisfitCell) ([]byte, error) {
	out := make([]misfitJSON, 0, len(cells))
	for _, c := range cells {
		m := misfitJSON{Row: c.Row, Pos: c.Pos}
		switch {
		case c.Value.IsNull():
			return nil, fmt.Errorf("colstore: misfit cell (%d,%d) is NULL", c.Row, c.Pos)
		default:
			if s, ok := c.Value.AsStr(); ok {
				m.Str = &s
			} else if n, ok := c.Value.AsNum(); ok {
				m.Num = &n
			}
		}
		out = append(out, m)
	}
	return json.Marshal(out)
}

func decodeMisfits(b []byte) ([]dataset.MisfitCell, error) {
	var in []misfitJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return nil, fmt.Errorf("%w: misfit table: %v", ErrCorrupt, err)
	}
	out := make([]dataset.MisfitCell, 0, len(in))
	for _, m := range in {
		cell := dataset.MisfitCell{Row: m.Row, Pos: m.Pos}
		switch {
		case m.Str != nil:
			cell.Value = dataset.Str(*m.Str)
		case m.Num != nil:
			cell.Value = dataset.Num(*m.Num)
		default:
			return nil, fmt.Errorf("%w: misfit cell (%d,%d) carries no value", ErrCorrupt, m.Row, m.Pos)
		}
		out = append(out, cell)
	}
	return out, nil
}

// Dictionary blob: uvarint count, then per entry uvarint length + bytes.

func encodeDict(dict []string) []byte {
	var buf []byte
	var tmp [binary.MaxVarintLen64]byte
	buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(len(dict)))]...)
	for _, s := range dict {
		buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(len(s)))]...)
		buf = append(buf, s...)
	}
	return buf
}

func decodeDict(b []byte) ([]string, error) {
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("%w: dictionary count", ErrCorrupt)
	}
	b = b[n:]
	if count > uint64(len(b))+1 { // each entry costs at least one length byte
		return nil, fmt.Errorf("%w: dictionary count %d exceeds blob", ErrCorrupt, count)
	}
	out := make([]string, 0, count)
	for i := uint64(0); i < count; i++ {
		l, n := binary.Uvarint(b)
		if n <= 0 || uint64(len(b[n:])) < l {
			return nil, fmt.Errorf("%w: dictionary entry %d truncated", ErrCorrupt, i)
		}
		out = append(out, string(b[n:n+int(l)]))
		b = b[n+int(l):]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing dictionary bytes", ErrCorrupt, len(b))
	}
	return out, nil
}

// hostLittleEndian reports whether typed slices can alias the file bytes
// directly. On a big-endian host Open falls back to decode-copy, which is
// correct but not zero-copy.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// The reinterpreting views below are only used when hostLittleEndian:
// the segment encodes little-endian, so on LE hosts the file bytes are
// the in-memory representation.

func int32View(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
}

func float64View(b []byte) []float64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
}

func uint64View(b []byte) []uint64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), len(b)/8)
}

// bytesOfInt32s / bytesOfFloat64s / bytesOfUint64s are the write-side
// counterparts (LE hosts only; the builder falls back to per-element
// encoding elsewhere).

func bytesOfInt32s(v []int32) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*4)
}

func bytesOfFloat64s(v []float64) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*8)
}

func bytesOfUint64s(v []uint64) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*8)
}

func kindString(k dataset.AttrKind) string {
	if k == dataset.Categorical {
		return "categorical"
	}
	return "continuous"
}
