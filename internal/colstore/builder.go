package colstore

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"repro/internal/dataset"
)

// Builder streams rows into a segment file with bounded memory: the big
// per-row regions (codes, values) spill to temp files next to the output
// as they arrive, while only the small state — dictionaries, missing
// bitmaps (1 bit per row) and the rare misfit cells — stays in memory.
// Finish assembles the final segment in one sequential pass over the
// spills and fsyncs it; a 10M-row ingest never materializes a table.
//
// The builder writes directly at the given path and the file is complete
// only after Finish returns nil; callers wanting atomicity build inside a
// temp directory (the store's dataset transaction) or write to a temp
// name and rename.
type Builder struct {
	schema  *dataset.Schema
	path    string
	spill   string // temp dir holding per-column spill files
	rows    int
	cols    []*colBuilder
	misfits []dataset.MisfitCell
	err     error // first failure; poisons Append and Finish
}

type colBuilder struct {
	kind dataset.AttrKind
	f    *os.File
	w    *bufio.Writer

	// Categorical state: the dictionary, seeded with the public domain
	// exactly like dataset.NewTable so codes match heap-built tables.
	dict  []string
	index map[string]int32

	// Continuous state: the missing bitmap words, plus the running
	// frame-of-reference eligibility stats over the non-missing values
	// (decided cheaply during Append so Finish can pack the spill in one
	// streaming pass without a pre-scan).
	missing     []uint64
	forEligible bool
	forCount    int
	forMin      float64
	forMax      float64
}

// NewBuilder opens a builder that will write the segment at path. The
// spill directory is created next to the output so the final copy stays
// on one filesystem.
func NewBuilder(path string, schema *dataset.Schema) (*Builder, error) {
	spill, err := os.MkdirTemp(filepath.Dir(path), ".colstore-spill-")
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrIO, err)
	}
	b := &Builder{schema: schema, path: path, spill: spill}
	for pos := 0; pos < schema.Arity(); pos++ {
		a := schema.Attr(pos)
		f, err := os.OpenFile(filepath.Join(spill, fmt.Sprintf("col%d", pos)), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
		if err != nil {
			b.Abort()
			return nil, fmt.Errorf("%w: %v", ErrIO, err)
		}
		cb := &colBuilder{kind: a.Kind, f: f, w: bufio.NewWriterSize(f, 1<<16), forEligible: true}
		if a.Kind == dataset.Categorical {
			cb.index = make(map[string]int32, len(a.Values))
			for _, v := range a.Values {
				cb.code(v)
			}
		}
		b.cols = append(b.cols, cb)
	}
	return b, nil
}

func (c *colBuilder) code(v string) int32 {
	if id, ok := c.index[v]; ok {
		return id
	}
	id := int32(len(c.dict))
	c.dict = append(c.dict, v)
	c.index[v] = id
	return id
}

// sentinel codes, matching dataset's internal encoding.
const (
	nullCode   int32 = -1
	misfitCode int32 = -2
)

// Append adds one row. The tuple may be reused by the caller after the
// call returns (StreamCSV's contract). Cell semantics match
// dataset.Table.Append exactly, misfit cells included, so a segment built
// from the same rows reopens as an equivalent table.
func (b *Builder) Append(row dataset.Tuple) error {
	if b.err != nil {
		return b.err
	}
	if len(row) != b.schema.Arity() {
		return fmt.Errorf("colstore: tuple arity %d, schema arity %d", len(row), b.schema.Arity())
	}
	var scratch [8]byte
	for pos, v := range row {
		c := b.cols[pos]
		if c.kind == dataset.Categorical {
			code := nullCode
			if s, ok := v.AsStr(); ok {
				code = c.code(s)
			} else if !v.IsNull() {
				code = misfitCode
				b.misfits = append(b.misfits, dataset.MisfitCell{Row: b.rows, Pos: pos, Value: v})
			}
			binary.LittleEndian.PutUint32(scratch[:4], uint32(code))
			if _, err := c.w.Write(scratch[:4]); err != nil {
				return b.fail(err)
			}
			continue
		}
		val, missing := 0.0, true
		if n, ok := v.AsNum(); ok {
			val, missing = n, false
			if c.forEligible {
				if !dataset.FoREligibleValue(n) {
					c.forEligible = false
				} else {
					if c.forCount == 0 || n < c.forMin {
						c.forMin = n
					}
					if c.forCount == 0 || n > c.forMax {
						c.forMax = n
					}
					c.forCount++
				}
			}
		} else if !v.IsNull() {
			b.misfits = append(b.misfits, dataset.MisfitCell{Row: b.rows, Pos: pos, Value: v})
		}
		binary.LittleEndian.PutUint64(scratch[:8], math.Float64bits(val))
		if _, err := c.w.Write(scratch[:8]); err != nil {
			return b.fail(err)
		}
		if b.rows&63 == 0 {
			c.missing = append(c.missing, 0)
		}
		if missing {
			c.missing[len(c.missing)-1] |= 1 << (uint(b.rows) & 63)
		}
	}
	b.rows++
	return nil
}

func (b *Builder) fail(err error) error {
	if b.err == nil {
		b.err = fmt.Errorf("%w: %v", ErrIO, err)
	}
	return b.err
}

// Rows returns the number of rows appended so far.
func (b *Builder) Rows() int { return b.rows }

// BuildResult summarizes a finished segment.
type BuildResult struct {
	Rows int
	// DataBytes is the raw column payload (codes + values + bitmaps +
	// dictionaries), the size the mmap threshold policy compares against.
	DataBytes int64
	// FileBytes is the full segment size including header, page padding
	// and directory.
	FileBytes int64
}

// Finish assembles the segment from the spills, fsyncs it and removes the
// spill directory. The builder is spent afterwards.
func (b *Builder) Finish() (*BuildResult, error) {
	if b.err != nil {
		b.Abort()
		return nil, b.err
	}
	defer b.Abort() // releases spills; the output only on failure
	for _, c := range b.cols {
		if err := c.w.Flush(); err != nil {
			return nil, b.fail(err)
		}
		if err := c.f.Close(); err != nil {
			return nil, b.fail(err)
		}
		c.f = nil
	}

	out, err := os.OpenFile(b.path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, b.fail(err)
	}
	sw := newSegWriter(out)
	res, err := writeSegment(sw, currentVersion, b.schema, b.rows, func(pos int) (columnSource, error) {
		c := b.cols[pos]
		f, err := os.Open(filepath.Join(b.spill, fmt.Sprintf("col%d", pos)))
		if err != nil {
			return columnSource{}, err
		}
		src := columnSource{kind: c.kind, stream: f}
		if c.kind == dataset.Categorical {
			src.dict = c.dict
		} else {
			src.missing = c.missing
			if c.forEligible {
				if w, ok := dataset.FoRWidth(c.forMin, c.forMax); ok {
					src.forOK, src.forMin, src.forWidth = true, c.forMin, w
				}
			}
		}
		return src, nil
	}, b.misfits)
	if err != nil {
		out.Close()
		os.Remove(b.path)
		return nil, b.fail(err)
	}
	if err := out.Sync(); err != nil {
		out.Close()
		os.Remove(b.path)
		return nil, b.fail(err)
	}
	if err := out.Close(); err != nil {
		os.Remove(b.path)
		return nil, b.fail(err)
	}
	b.err = fmt.Errorf("colstore: builder already finished")
	return res, nil
}

// Abort discards the spills. Safe to call more than once and after
// Finish (where it is a no-op for the completed output).
func (b *Builder) Abort() {
	for _, c := range b.cols {
		if c.f != nil {
			c.f.Close()
			c.f = nil
		}
	}
	if b.spill != "" {
		os.RemoveAll(b.spill)
		b.spill = ""
	}
}

// BuildCSV streams CSV (ReadCSV semantics) straight into a segment at
// path with bounded memory — the disk-backed counterpart of ReadCSV.
// Malformed CSV surfaces as the dataset package's parse error (bad
// input); disk trouble wraps ErrIO.
func BuildCSV(path string, schema *dataset.Schema, r io.Reader) (*BuildResult, error) {
	b, err := NewBuilder(path, schema)
	if err != nil {
		return nil, err
	}
	if err := dataset.StreamCSV(r, schema, b.Append); err != nil {
		b.Abort()
		// A poisoned builder means the failure was ours (spill write),
		// not the caller's CSV.
		if b.err != nil {
			return nil, b.err
		}
		return nil, err
	}
	return b.Finish()
}

// WriteTable serializes an existing in-memory table to a segment at path
// (one sequential write straight from the table's column slices; no
// spills). Used to serialize programmatically built tables and to rebuild
// a quarantined segment from a recovered CSV parse — which is also how a
// v1 segment upgrades to v2 in place through the recovery path.
func WriteTable(path string, t *dataset.Table) (*BuildResult, error) {
	return WriteTableVersion(path, t, currentVersion)
}

// WriteTableVersion is WriteTable at an explicit format version; version
// 1 writes the legacy full-width layout (for upgrade tests and tooling
// that must fabricate old segments).
func WriteTableVersion(path string, t *dataset.Table, ver int) (*BuildResult, error) {
	if ver != version1 && ver != version2 {
		return nil, fmt.Errorf("colstore: unsupported segment version %d", ver)
	}
	out, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrIO, err)
	}
	sw := newSegWriter(out)
	res, err := writeSegment(sw, ver, t.Schema(), t.Size(), func(pos int) (columnSource, error) {
		cd := t.ColumnData(pos)
		if cd.Kind == dataset.Categorical {
			return columnSource{kind: cd.Kind, codes: cd.Codes, packedCodes: cd.PackedCodes, dict: cd.Dict}, nil
		}
		return columnSource{kind: cd.Kind, vals: cd.Vals, packedVals: cd.PackedVals, missing: cd.MissingWords}, nil
	}, t.MisfitCells())
	if err != nil {
		out.Close()
		os.Remove(path)
		return nil, fmt.Errorf("%w: %v", ErrIO, err)
	}
	if err := out.Sync(); err != nil {
		out.Close()
		os.Remove(path)
		return nil, fmt.Errorf("%w: %v", ErrIO, err)
	}
	if err := out.Close(); err != nil {
		os.Remove(path)
		return nil, fmt.Errorf("%w: %v", ErrIO, err)
	}
	return res, nil
}

// columnSource feeds writeSegment one column's payload: an in-memory
// slice (WriteTable over a heap table), an already-packed vector
// (WriteTable over a v2 mmap table), or a spill-file stream of raw LE
// values (Builder), with the builder's frame-of-reference stats riding
// along so the streaming pass knows the encoding up front.
type columnSource struct {
	kind dataset.AttrKind

	codes       []int32             // categorical, in-memory
	packedCodes *dataset.PackedInts // categorical, already bitpacked
	vals        []float64           // continuous, in-memory
	packedVals  *dataset.PackedFloats
	stream      *os.File // alternative: raw LE bytes for codes/vals

	dict    []string
	missing []uint64

	// Stream-side frame-of-reference decision (continuous only): set
	// when every spilled value was FoR-eligible and the span fits.
	forOK    bool
	forMin   float64
	forWidth int
}

// writeSegment lays the file out: header placeholder, page-aligned column
// regions, misfit blob, directory, then the real header. ver selects the
// column encodings: version 1 writes full-width codes/values everywhere;
// version 2 bitpacks categorical codes and frame-of-reference packs
// eligible continuous columns (the rest stay raw, marked in the
// directory).
func writeSegment(sw *segWriter, ver int, schema *dataset.Schema, rows int, source func(pos int) (columnSource, error), misfits []dataset.MisfitCell) (*BuildResult, error) {
	if err := sw.writeRaw(make([]byte, headerSize)); err != nil {
		return nil, err
	}
	var dataBytes int64
	dir := directory{Rows: rows}
	schemaJSON, err := json.Marshal(schema)
	if err != nil {
		return nil, fmt.Errorf("colstore: schema: %w", err)
	}
	dir.Schema = schemaJSON

	for pos := 0; pos < schema.Arity(); pos++ {
		src, err := source(pos)
		if err != nil {
			return nil, fmt.Errorf("colstore: column %d: %w", pos, err)
		}
		a := schema.Attr(pos)
		dc := dirColumn{Name: a.Name, Kind: kindString(src.kind)}
		if err := sw.padTo(pageAlign); err != nil {
			return nil, err
		}
		if src.kind == dataset.Categorical {
			var r region
			switch {
			case ver >= version2:
				dc.Enc = encBitpack
				switch {
				case src.packedCodes != nil: // already packed (v2 table rewrite)
					dc.Width = src.packedCodes.Width
					r, err = sw.writeUint64s(src.packedCodes.Words)
				case src.stream != nil:
					dc.Width = dataset.PackedCodeWidth(len(src.dict))
					r, err = sw.packCodesStream(src.stream, rows, dc.Width)
					src.stream.Close()
				default:
					p := dataset.PackCodes(src.codes, len(src.dict))
					dc.Width = p.Width
					r, err = sw.writeUint64s(p.Words)
				}
			case src.packedCodes != nil: // legacy v1 write from a packed table
				r, err = sw.writeInt32s(src.packedCodes.UnpackCodes())
			case src.stream != nil:
				r, err = sw.copyStream(src.stream, int64(rows)*4)
				src.stream.Close()
			default:
				r, err = sw.writeInt32s(src.codes)
			}
			if err != nil {
				return nil, fmt.Errorf("colstore: column %d codes: %w", pos, err)
			}
			dc.Codes = &r
			if err := sw.padTo(8); err != nil {
				return nil, err
			}
			dictR, err := sw.writeRegion(encodeDict(src.dict))
			if err != nil {
				return nil, fmt.Errorf("colstore: column %d dictionary: %w", pos, err)
			}
			dc.Dict = &dictR
			dataBytes += int64(r.Len) + int64(dictR.Len)
		} else {
			words := src.missing
			if want := (rows + 63) >> 6; len(words) != want {
				// A zero-row or short bitmap from the builder; normalize.
				norm := make([]uint64, want)
				copy(norm, words)
				words = norm
			}
			var r region
			switch {
			case ver >= version2 && src.packedVals != nil:
				min := src.packedVals.Min
				dc.Enc, dc.Width, dc.Min = encFoR, src.packedVals.Ints.Width, &min
				r, err = sw.writeUint64s(src.packedVals.Ints.Words)
			case ver >= version2 && src.stream != nil && src.forOK:
				min := src.forMin
				dc.Enc, dc.Width, dc.Min = encFoR, src.forWidth, &min
				r, err = sw.packValsStream(src.stream, rows, src.forWidth, src.forMin, words)
				src.stream.Close()
			case ver >= version2 && src.stream == nil:
				if p, ok := dataset.PackVals(src.vals, words); ok {
					min := p.Min
					dc.Enc, dc.Width, dc.Min = encFoR, p.Ints.Width, &min
					r, err = sw.writeUint64s(p.Ints.Words)
				} else {
					r, err = sw.writeFloat64s(src.vals)
				}
			case src.packedVals != nil: // legacy v1 write from a packed table
				r, err = sw.writeFloat64s(src.packedVals.UnpackVals(words))
			case src.stream != nil:
				r, err = sw.copyStream(src.stream, int64(rows)*8)
				src.stream.Close()
			default:
				r, err = sw.writeFloat64s(src.vals)
			}
			if err != nil {
				return nil, fmt.Errorf("colstore: column %d values: %w", pos, err)
			}
			dc.Vals = &r
			if err := sw.padTo(8); err != nil {
				return nil, err
			}
			missR, err := sw.writeUint64s(words)
			if err != nil {
				return nil, fmt.Errorf("colstore: column %d missing bitmap: %w", pos, err)
			}
			dc.Missing = &missR
			dataBytes += int64(r.Len) + int64(missR.Len)
		}
		dir.Columns = append(dir.Columns, dc)
	}

	if len(misfits) > 0 {
		blob, err := encodeMisfits(misfits)
		if err != nil {
			return nil, err
		}
		if err := sw.padTo(8); err != nil {
			return nil, err
		}
		r, err := sw.writeRegion(blob)
		if err != nil {
			return nil, err
		}
		dir.Misfits = &r
		dataBytes += int64(r.Len)
	}

	dirJSON, err := json.Marshal(&dir)
	if err != nil {
		return nil, fmt.Errorf("colstore: directory: %w", err)
	}
	if err := sw.padTo(8); err != nil {
		return nil, err
	}
	dirOff := sw.off
	if err := sw.writeRaw(dirJSON); err != nil {
		return nil, err
	}
	if err := sw.flush(); err != nil {
		return nil, err
	}

	h := header{
		version:  uint32(ver),
		rows:     uint64(rows),
		cols:     uint32(schema.Arity()),
		dirOff:   dirOff,
		dirLen:   uint64(len(dirJSON)),
		dirCRC:   crc32.Checksum(dirJSON, castagnoli),
		fileSize: sw.off,
	}
	if _, err := sw.f.WriteAt(h.encode(), 0); err != nil {
		return nil, fmt.Errorf("colstore: header: %w", err)
	}
	return &BuildResult{Rows: rows, DataBytes: dataBytes, FileBytes: int64(sw.off)}, nil
}

// segWriter tracks the write offset and computes per-region CRCs.
type segWriter struct {
	f   *os.File
	w   *bufio.Writer
	off uint64
}

func newSegWriter(f *os.File) *segWriter {
	return &segWriter{f: f, w: bufio.NewWriterSize(f, 1<<20)}
}

func (sw *segWriter) writeRaw(b []byte) error {
	n, err := sw.w.Write(b)
	sw.off += uint64(n)
	return err
}

func (sw *segWriter) padTo(align uint64) error {
	if rem := sw.off % align; rem != 0 {
		return sw.writeRaw(make([]byte, align-rem))
	}
	return nil
}

// writeRegion writes b as one checksummed region.
func (sw *segWriter) writeRegion(b []byte) (region, error) {
	r := region{Off: sw.off, Len: uint64(len(b)), CRC: crc32.Checksum(b, castagnoli)}
	return r, sw.writeRaw(b)
}

// copyStream copies a spill file (already little-endian bytes) into the
// segment, checksumming on the way through a bounded buffer.
func (sw *segWriter) copyStream(f *os.File, wantLen int64) (region, error) {
	r := region{Off: sw.off}
	crc := crc32.New(castagnoli)
	buf := make([]byte, 1<<20)
	var n int64
	for {
		k, err := f.Read(buf)
		if k > 0 {
			crc.Write(buf[:k])
			if werr := sw.writeRaw(buf[:k]); werr != nil {
				return r, werr
			}
			n += int64(k)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return r, err
		}
	}
	if n != wantLen {
		return r, fmt.Errorf("spill holds %d bytes, want %d", n, wantLen)
	}
	r.Len = uint64(n)
	r.CRC = crc.Sum32()
	return r, nil
}

// regionPacker accumulates fixed-width lanes into no-straddle words and
// streams them out as one checksummed region through a bounded buffer —
// the write-side twin of dataset.PackedInts, shaped for the builder's
// spill-to-segment pass so packing never materializes a column.
type regionPacker struct {
	sw    *segWriter
	width uint
	lpw   int
	cur   uint64
	lane  int
	buf   []byte
	crc   hash.Hash32
	r     region
}

func (sw *segWriter) newRegionPacker(width int) *regionPacker {
	return &regionPacker{
		sw: sw, width: uint(width), lpw: 64 / width,
		buf: make([]byte, 0, 1<<20), crc: crc32.New(castagnoli),
		r: region{Off: sw.off},
	}
}

func (rp *regionPacker) add(lane uint64) error {
	rp.cur |= lane << (uint(rp.lane) * rp.width)
	rp.lane++
	if rp.lane == rp.lpw {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], rp.cur)
		rp.buf = append(rp.buf, b[:]...)
		rp.cur, rp.lane = 0, 0
		if len(rp.buf) >= 1<<20 {
			return rp.flushBuf()
		}
	}
	return nil
}

func (rp *regionPacker) flushBuf() error {
	if len(rp.buf) == 0 {
		return nil
	}
	rp.crc.Write(rp.buf)
	err := rp.sw.writeRaw(rp.buf)
	rp.r.Len += uint64(len(rp.buf))
	rp.buf = rp.buf[:0]
	return err
}

func (rp *regionPacker) finish() (region, error) {
	if rp.lane > 0 {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], rp.cur)
		rp.buf = append(rp.buf, b[:]...)
	}
	if err := rp.flushBuf(); err != nil {
		return rp.r, err
	}
	rp.r.CRC = rp.crc.Sum32()
	return rp.r, nil
}

// packCodesStream bitpacks a categorical spill (raw LE int32 codes) into
// a segment region at the given lane width.
func (sw *segWriter) packCodesStream(f *os.File, rows, width int) (region, error) {
	rp := sw.newRegionPacker(width)
	br := bufio.NewReaderSize(f, 1<<20)
	var raw [4]byte
	for i := 0; i < rows; i++ {
		if _, err := io.ReadFull(br, raw[:]); err != nil {
			return rp.r, fmt.Errorf("codes spill: %w", err)
		}
		code := int32(binary.LittleEndian.Uint32(raw[:]))
		if err := rp.add(uint64(int64(code) + dataset.PackedCodeBias)); err != nil {
			return rp.r, err
		}
	}
	if _, err := br.Read(raw[:1]); err != io.EOF {
		return rp.r, fmt.Errorf("codes spill holds more than %d rows", rows)
	}
	return rp.finish()
}

// packValsStream frame-of-reference packs a continuous spill (raw LE
// float64s); rows whose missing bit is set pack as lane 0.
func (sw *segWriter) packValsStream(f *os.File, rows, width int, min float64, missing []uint64) (region, error) {
	rp := sw.newRegionPacker(width)
	br := bufio.NewReaderSize(f, 1<<20)
	var raw [8]byte
	for i := 0; i < rows; i++ {
		if _, err := io.ReadFull(br, raw[:]); err != nil {
			return rp.r, fmt.Errorf("values spill: %w", err)
		}
		lane := uint64(0)
		if missing[i>>6]&(1<<(uint(i)&63)) == 0 {
			v := math.Float64frombits(binary.LittleEndian.Uint64(raw[:]))
			lane = uint64(v - min)
		}
		if err := rp.add(lane); err != nil {
			return rp.r, err
		}
	}
	if _, err := br.Read(raw[:1]); err != io.EOF {
		return rp.r, fmt.Errorf("values spill holds more than %d rows", rows)
	}
	return rp.finish()
}

func (sw *segWriter) writeInt32s(v []int32) (region, error) {
	if hostLittleEndian {
		return sw.writeRegion(bytesOfInt32s(v))
	}
	return sw.writeEncoded(len(v)*4, func(b []byte) {
		for i, x := range v {
			binary.LittleEndian.PutUint32(b[i*4:], uint32(x))
		}
	})
}

func (sw *segWriter) writeFloat64s(v []float64) (region, error) {
	if hostLittleEndian {
		return sw.writeRegion(bytesOfFloat64s(v))
	}
	return sw.writeEncoded(len(v)*8, func(b []byte) {
		for i, x := range v {
			binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(x))
		}
	})
}

func (sw *segWriter) writeUint64s(v []uint64) (region, error) {
	if hostLittleEndian {
		return sw.writeRegion(bytesOfUint64s(v))
	}
	return sw.writeEncoded(len(v)*8, func(b []byte) {
		for i, x := range v {
			binary.LittleEndian.PutUint64(b[i*8:], x)
		}
	})
}

// writeEncoded is the big-endian-host fallback: encode into a scratch
// buffer, then write as one region.
func (sw *segWriter) writeEncoded(n int, fill func([]byte)) (region, error) {
	b := make([]byte, n)
	fill(b)
	return sw.writeRegion(b)
}

func (sw *segWriter) flush() error { return sw.w.Flush() }
