package colstore

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/noise"
	"repro/internal/query"
)

// TestDifferentialTranscripts is the acceptance proof for the column
// store: the same seeded analyst session, driven over a heap-backed table
// (ReadCSV) and over the mmap-backed table of the segment built from the
// same CSV, must produce byte-identical Definition 6.1 transcripts — same
// mechanisms, same noisy counts bit for bit, same denials, same charges.
// Any divergence in the columnar views (codes, dictionaries, bitmaps,
// misfit handling) would shift a noise-free count and break this.
func TestDifferentialTranscripts(t *testing.T) {
	schema := testSchema(t)
	csv := testCSV(20_000, 3)

	heap, err := dataset.ReadCSV(strings.NewReader(csv), schema)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "table.seg")
	if _, err := BuildCSV(path, schema, strings.NewReader(csv)); err != nil {
		t.Fatal(err)
	}
	seg, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()

	queries := []string{
		`BIN D ON COUNT(*) WHERE W = { age BETWEEN 0 AND 50, age BETWEEN 50 AND 100 } ERROR 300 CONFIDENCE 0.95;`,
		`BIN D ON COUNT(*) WHERE W = { state = 'CA', state = 'NY', state = 'TX' } ERROR 400 CONFIDENCE 0.9;`,
		`BIN D ON COUNT(*) WHERE W = { age > 30 AND state = 'CA', age <= 30 OR state = 'NY' } ERROR 350 CONFIDENCE 0.95;`,
		`BIN D ON COUNT(*) WHERE W = { income BETWEEN 0 AND 500000, income BETWEEN 500000 AND 1000000 } ERROR 500 CONFIDENCE 0.95;`,
		// Repeat of the first workload: with Reuse on this must hit the
		// inferencer identically on both substrates.
		`BIN D ON COUNT(*) WHERE W = { age BETWEEN 0 AND 50, age BETWEEN 50 AND 100 } ERROR 300 CONFIDENCE 0.95;`,
		// A tight requirement to drive at least one denial.
		`BIN D ON COUNT(*) WHERE W = { age BETWEEN 0 AND 10 } ERROR 2 CONFIDENCE 0.9999;`,
	}

	for _, mode := range []engine.Mode{engine.Optimistic, engine.Pessimistic} {
		for _, reuse := range []bool{false, true} {
			name := fmt.Sprintf("%v-reuse=%v", mode, reuse)
			heapTr := runTranscript(t, heap, mode, reuse, queries)
			mmapTr := runTranscript(t, seg.Table(), mode, reuse, queries)
			if !bytes.Equal(heapTr, mmapTr) {
				t.Fatalf("%s: transcripts diverge\nheap: %s\nmmap: %s", name, heapTr, mmapTr)
			}
		}
	}
}

// runTranscript drives one seeded session and returns the transcript in
// the WAL's canonical byte encoding (EncodeEntry per entry).
func runTranscript(t *testing.T, table *dataset.Table, mode engine.Mode, reuse bool, queries []string) []byte {
	t.Helper()
	eng, err := engine.New(table, engine.Config{
		Budget: 2.0,
		Mode:   mode,
		Rng:    noise.NewRand(42),
		Reuse:  reuse,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, text := range queries {
		q, err := query.Parse(text)
		if err != nil {
			t.Fatalf("%s: %v", text, err)
		}
		if _, err := eng.Ask(q); err != nil {
			// Denials and budget exhaustion are part of the scripted
			// transcript; anything else is a test failure.
			if err != engine.ErrDenied {
				t.Fatalf("%s: %v", text, err)
			}
		}
	}
	var out bytes.Buffer
	for i, e := range eng.Transcript() {
		b, err := engine.EncodeEntry(e)
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		out.Write(b)
		out.WriteByte('\n')
	}
	if _, err := eng.Validate(); err != nil {
		t.Fatalf("transcript invalid: %v", err)
	}
	return out.Bytes()
}
