package colstore

import (
	"fmt"
	"os"
)

// Info summarizes an on-disk segment: format version, per-column
// encodings and sizes, and what the same columns would occupy in the
// full-width v1 layout. Inspect never maps the file; it runs the same
// validation pass as Open, so an Info is only ever returned for a
// structurally sound, checksum-clean segment.
type Info struct {
	Version   int   // on-disk format version (1 or 2)
	Rows      int   // row count
	FileBytes int64 // total file size, header and directory included
	DataBytes int64 // column payload bytes (the scan working set)
	V1Bytes   int64 // payload bytes of the equivalent full-width v1 layout
	Columns   []ColumnInfo
}

// ColumnInfo is one column's slice of the Info.
type ColumnInfo struct {
	Name  string
	Kind  string // "categorical" | "continuous"
	Enc   string // "" (raw), "bitpack", or "for"
	Width int    // bits per row for packed encodings, 0 for raw
	Bytes int64  // this column's payload bytes in the file
}

// Inspect validates and summarizes the segment at path.
func Inspect(path string) (*Info, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("colstore: %w", err)
	}
	defer f.Close()
	m, err := validateFile(f)
	if err != nil {
		return nil, err
	}
	info := &Info{
		Version:   int(m.h.version),
		Rows:      m.rows,
		FileBytes: m.size,
		DataBytes: m.dataBytes,
		V1Bytes:   m.v1Bytes,
		Columns:   make([]ColumnInfo, len(m.dir.Columns)),
	}
	for pos, dc := range m.dir.Columns {
		ci := ColumnInfo{Name: dc.Name, Kind: dc.Kind, Enc: dc.Enc, Width: dc.Width}
		for _, r := range []*region{dc.Codes, dc.Dict, dc.Vals, dc.Missing} {
			if r != nil {
				ci.Bytes += int64(r.Len)
			}
		}
		info.Columns[pos] = ci
	}
	return info, nil
}
