package colstore

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// buildTestSegment writes a segment and returns its path plus the parsed
// directory (for locating regions to corrupt).
func buildTestSegment(t *testing.T) (string, *header, *directory) {
	t.Helper()
	schema := testSchema(t)
	path := filepath.Join(t.TempDir(), "table.seg")
	if _, err := BuildCSV(path, schema, strings.NewReader(testCSV(2000, 7))); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	h, err := decodeHeader(raw[:headerSize])
	if err != nil {
		t.Fatal(err)
	}
	var dir directory
	if err := json.Unmarshal(raw[h.dirOff:h.dirOff+h.dirLen], &dir); err != nil {
		t.Fatal(err)
	}
	return path, h, &dir
}

// flipByte XORs one byte of the file in place.
func flipByte(t *testing.T, path string, off uint64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], int64(off)); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], int64(off)); err != nil {
		t.Fatal(err)
	}
}

func wantCorrupt(t *testing.T, path, what string) {
	t.Helper()
	seg, err := Open(path)
	if err == nil {
		seg.Close()
		t.Fatalf("%s: Open succeeded on corrupted segment", what)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("%s: error %v is not ErrCorrupt", what, err)
	}
}

func TestCorruptHeader(t *testing.T) {
	for _, off := range []uint64{0, 9, 20, 61} { // magic, version, rows, header CRC
		path, _, _ := buildTestSegment(t)
		flipByte(t, path, off)
		wantCorrupt(t, path, "header byte "+string(rune('0'+off)))
	}
}

func TestCorruptDataPages(t *testing.T) {
	cases := []struct {
		name string
	}{
		{"codes"}, {"dictionary"}, {"values"}, {"missing bitmap"},
	}
	for _, tc := range cases {
		p, _, _ := buildTestSegment(t)
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		h2, err := decodeHeader(raw[:headerSize])
		if err != nil {
			t.Fatal(err)
		}
		var dir2 directory
		if err := json.Unmarshal(raw[h2.dirOff:h2.dirOff+h2.dirLen], &dir2); err != nil {
			t.Fatal(err)
		}
		var target *region
		for _, c := range dir2.Columns {
			switch tc.name {
			case "codes":
				if c.Codes != nil {
					target = c.Codes
				}
			case "dictionary":
				if c.Dict != nil {
					target = c.Dict
				}
			case "values":
				if c.Vals != nil && target == nil {
					target = c.Vals
				}
			case "missing bitmap":
				if c.Missing != nil && target == nil {
					target = c.Missing
				}
			}
		}
		if target == nil || target.Len == 0 {
			t.Fatalf("%s: no bytes to corrupt", tc.name)
		}
		flipByte(t, p, target.Off+target.Len/2)
		wantCorrupt(t, p, tc.name)
	}
}

func TestCorruptDirectory(t *testing.T) {
	path, h, _ := buildTestSegment(t)
	flipByte(t, path, h.dirOff+h.dirLen/2)
	wantCorrupt(t, path, "directory")
}

func TestTruncatedFile(t *testing.T) {
	path, h, _ := buildTestSegment(t)
	if err := os.Truncate(path, int64(h.fileSize)-100); err != nil {
		t.Fatal(err)
	}
	wantCorrupt(t, path, "truncated")
}

// TestRegionLengthOverflow rewrites the directory (with consistent
// CRCs everywhere) so the misfit region's length wraps uint64 arithmetic:
// Off+Len overflows past the directory bound and a negative-length verify
// loop would checksum zero bytes. The structural bounds check must reject
// it with ErrCorrupt — not index out of the mapping and panic.
func TestRegionLengthOverflow(t *testing.T) {
	path, h, dir := buildTestSegment(t)
	off := uint64(pageAlign + 8)
	dir.Misfits = &region{Off: off, Len: ^uint64(0) - off + 16, CRC: 0}
	newDir, err := json.Marshal(dir)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Append the hostile directory at EOF and point a freshly
	// checksummed header at it.
	if _, err := f.WriteAt(newDir, int64(h.fileSize)); err != nil {
		t.Fatal(err)
	}
	h2 := header{
		version: h.version, rows: h.rows, cols: h.cols,
		dirOff: h.fileSize, dirLen: uint64(len(newDir)),
		dirCRC:   crc32.Checksum(newDir, castagnoli),
		fileSize: h.fileSize + uint64(len(newDir)),
	}
	if _, err := f.WriteAt(h2.encode(), 0); err != nil {
		t.Fatal(err)
	}
	wantCorrupt(t, path, "region length overflow")
}

func TestHeaderLiesAboutRows(t *testing.T) {
	// A consistent-looking header whose row count disagrees with the
	// directory must fail even with a recomputed header CRC: the cross
	// check is structural, not just checksummed.
	path, h, _ := buildTestSegment(t)
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	hb := make([]byte, headerSize)
	if _, err := f.ReadAt(hb, 0); err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint64(hb[16:24], h.rows+1)
	h2, err := decodeHeader((&header{
		version: h.version, rows: h.rows + 1, cols: h.cols, dirOff: h.dirOff, dirLen: h.dirLen,
		dirCRC: h.dirCRC, fileSize: h.fileSize,
	}).encode())
	if err != nil || h2.rows != h.rows+1 {
		t.Fatalf("re-encoded header invalid: %v", err)
	}
	if _, err := f.WriteAt((&header{
		version: h.version, rows: h.rows + 1, cols: h.cols, dirOff: h.dirOff, dirLen: h.dirLen,
		dirCRC: h.dirCRC, fileSize: h.fileSize,
	}).encode(), 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	wantCorrupt(t, path, "row count lie")
}
