package colstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/engine"
)

// TestV1V2Differential is the version-gate proof: the same CSV written as
// a v1 segment (full-width), a v2 segment (bitpacked codes +
// frame-of-reference values), and a packed heap copy of the v2 table must
// all drive byte-identical Definition 6.1 transcripts against the
// heap-parsed original. The packed-code kernels evaluate over packed
// words directly, so any rounding or sentinel slip in the packed path
// would shift a noise-free count and diverge here.
func TestV1V2Differential(t *testing.T) {
	schema := testSchema(t)
	csv := testCSV(20_000, 11)

	heap, err := dataset.ReadCSV(strings.NewReader(csv), schema)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	v1Path := filepath.Join(dir, "v1.seg")
	v2Path := filepath.Join(dir, "v2.seg")
	if _, err := WriteTableVersion(v1Path, heap, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteTableVersion(v2Path, heap, 2); err != nil {
		t.Fatal(err)
	}
	v1, err := Open(v1Path)
	if err != nil {
		t.Fatalf("open v1: %v", err)
	}
	defer v1.Close()
	v2, err := Open(v2Path)
	if err != nil {
		t.Fatalf("open v2: %v", err)
	}
	defer v2.Close()
	if v1.Version() != 1 || v2.Version() != 2 {
		t.Fatalf("versions: v1=%d v2=%d", v1.Version(), v2.Version())
	}
	// v2 must actually compress: its column payload strictly under the
	// v1-equivalent accounting (income stays raw — fractional cents —
	// but age FoR-packs to 7 bits and state to 3).
	if v2.DataBytes() >= v2.V1DataBytes() {
		t.Fatalf("v2 payload %d not smaller than v1-equivalent %d", v2.DataBytes(), v2.V1DataBytes())
	}
	packedHeap, err := HeapCopy(v2.Table())
	if err != nil {
		t.Fatal(err)
	}

	queries := []string{
		`BIN D ON COUNT(*) WHERE W = { age BETWEEN 0 AND 50, age BETWEEN 50 AND 100 } ERROR 300 CONFIDENCE 0.95;`,
		`BIN D ON COUNT(*) WHERE W = { state = 'CA', state = 'NY', state = 'TX' } ERROR 400 CONFIDENCE 0.9;`,
		`BIN D ON COUNT(*) WHERE W = { age > 30 AND state = 'CA', age <= 30 OR state = 'NY' } ERROR 350 CONFIDENCE 0.95;`,
		`BIN D ON COUNT(*) WHERE W = { income BETWEEN 0 AND 500000, income BETWEEN 500000 AND 1000000 } ERROR 500 CONFIDENCE 0.95;`,
	}
	want := runTranscript(t, heap, engine.Optimistic, true, queries)
	for name, table := range map[string]*dataset.Table{
		"v1segment": v1.Table(), "v2segment": v2.Table(), "packedheap": packedHeap,
	} {
		if got := runTranscript(t, table, engine.Optimistic, true, queries); !bytes.Equal(want, got) {
			t.Errorf("%s: transcript diverges from heap original", name)
		}
	}
}

// TestInspect checks the no-mapping segment summary: version, per-column
// encodings and the compression accounting recoverysmoke and the bench
// rely on.
func TestInspect(t *testing.T) {
	schema := testSchema(t)
	csv := testCSV(5_000, 5)
	heap, err := dataset.ReadCSV(strings.NewReader(csv), schema)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for ver, wantEnc := range map[int]map[string]string{
		1: {"age": "", "state": "", "income": ""},
		2: {"age": encFoR, "state": encBitpack, "income": encRaw},
	} {
		path := filepath.Join(dir, fmt.Sprintf("v%d.seg", ver))
		if _, err := WriteTableVersion(path, heap, ver); err != nil {
			t.Fatal(err)
		}
		info, err := Inspect(path)
		if err != nil {
			t.Fatal(err)
		}
		if info.Version != ver || info.Rows != heap.Size() {
			t.Fatalf("v%d: Inspect says version=%d rows=%d", ver, info.Version, info.Rows)
		}
		for _, ci := range info.Columns {
			if ci.Enc != wantEnc[ci.Name] {
				t.Errorf("v%d: column %s encoded %q, want %q", ver, ci.Name, ci.Enc, wantEnc[ci.Name])
			}
		}
		if ver == 2 && info.DataBytes >= info.V1Bytes {
			t.Errorf("v2 payload %d not smaller than v1-equivalent %d", info.DataBytes, info.V1Bytes)
		}
	}
}

// rewriteDirectory re-marshals a tampered directory with consistent CRCs
// everywhere — appended at EOF with a freshly checksummed header pointing
// at it — so only the structural validation can catch the lie.
func rewriteDirectory(t *testing.T, path string, h *header, dir *directory, version uint32) {
	t.Helper()
	newDir, err := json.Marshal(dir)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt(newDir, int64(h.fileSize)); err != nil {
		t.Fatal(err)
	}
	h2 := header{
		version: version, rows: h.rows, cols: h.cols,
		dirOff: h.fileSize, dirLen: uint64(len(newDir)),
		dirCRC:   crc32.Checksum(newDir, castagnoli),
		fileSize: h.fileSize + uint64(len(newDir)),
	}
	if _, err := f.WriteAt(h2.encode(), 0); err != nil {
		t.Fatal(err)
	}
}

// TestTamperedEncodingEntries rewrites the v2 directory's encoding
// metadata with otherwise-consistent checksums: every lie about Enc,
// Width or the FoR base must fail structural validation with ErrCorrupt,
// never reach the kernels.
func TestTamperedEncodingEntries(t *testing.T) {
	// Column order in testSchema: age (FoR), state (bitpack), income (raw).
	cases := []struct {
		name   string
		tamper func(dir *directory)
	}{
		{"bitpack width zero", func(dir *directory) { dir.Columns[1].Width = 0 }},
		{"bitpack width 33", func(dir *directory) { dir.Columns[1].Width = 33 }},
		{"bitpack width off by one", func(dir *directory) { dir.Columns[1].Width++ }},
		{"unknown encoding", func(dir *directory) { dir.Columns[1].Enc = "zstd" }},
		{"bitpack with FoR base", func(dir *directory) {
			min := 3.0
			dir.Columns[1].Min = &min
		}},
		{"for without base", func(dir *directory) { dir.Columns[0].Min = nil }},
		{"for width widened", func(dir *directory) { dir.Columns[0].Width = 32 }},
		{"raw claims bitpack", func(dir *directory) {
			dir.Columns[2].Enc = encFoR
			dir.Columns[2].Width = 8
			min := 0.0
			dir.Columns[2].Min = &min
		}},
	}
	for _, tc := range cases {
		path, h, dir := buildTestSegment(t)
		tc.tamper(dir)
		rewriteDirectory(t, path, h, dir, h.version)
		wantCorrupt(t, path, tc.name)
	}

	// A v1 header over a directory with packed entries is the downgrade
	// lie: the version gate must reject the pair.
	path, h, dir := buildTestSegment(t)
	rewriteDirectory(t, path, h, dir, version1)
	wantCorrupt(t, path, "v1 header over v2 encodings")
}

// TestPackedPageBitFlip flips one byte in each packed page of a v2
// segment — the bitpacked code words and the frame-of-reference value
// words — and requires the per-page CRC to refuse the open. (The raw
// layout's equivalent lives in TestCorruptDataPages.)
func TestPackedPageBitFlip(t *testing.T) {
	_, _, dir := buildTestSegment(t)
	var flips []struct {
		what string
		off  uint64
	}
	for _, dc := range dir.Columns {
		switch dc.Enc {
		case encBitpack:
			flips = append(flips, struct {
				what string
				off  uint64
			}{"packed codes " + dc.Name, dc.Codes.Off + dc.Codes.Len/2})
		case encFoR:
			flips = append(flips, struct {
				what string
				off  uint64
			}{"packed values " + dc.Name, dc.Vals.Off + dc.Vals.Len/2})
		}
	}
	if len(flips) < 2 {
		t.Fatalf("test segment has %d packed columns, want both kinds", len(flips))
	}
	for _, fl := range flips {
		p, _, _ := buildTestSegment(t)
		flipByte(t, p, fl.off)
		wantCorrupt(t, p, fl.what)
	}
}
