package colstore

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func testSchema(t *testing.T) *dataset.Schema {
	t.Helper()
	return dataset.MustSchema(
		dataset.Attribute{Name: "age", Kind: dataset.Continuous, Min: 0, Max: 100},
		dataset.Attribute{Name: "state", Kind: dataset.Categorical, Values: []string{"CA", "NY", "TX"}},
		dataset.Attribute{Name: "income", Kind: dataset.Continuous, Min: 0, Max: 1e6},
	)
}

// testCSV renders n pseudo-random rows, sprinkling NULLs and
// out-of-domain categorical values (both legal CSV inputs).
func testCSV(n int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var sb strings.Builder
	sb.WriteString("age,state,income\n")
	states := []string{"CA", "NY", "TX", "WA", "OR"} // WA/OR are out-of-domain
	for i := 0; i < n; i++ {
		age := fmt.Sprintf("%d", rng.Intn(100))
		if rng.Intn(17) == 0 {
			age = ""
		}
		st := states[rng.Intn(len(states))]
		if rng.Intn(23) == 0 {
			st = ""
		}
		inc := fmt.Sprintf("%.2f", rng.Float64()*1e6)
		if rng.Intn(13) == 0 {
			inc = ""
		}
		fmt.Fprintf(&sb, "%s,%s,%s\n", age, st, inc)
	}
	return sb.String()
}

// assertTablesMatch compares two tables cell by cell and through the
// compiled predicate path.
func assertTablesMatch(t *testing.T, want, got *dataset.Table) {
	t.Helper()
	if want.Size() != got.Size() {
		t.Fatalf("size: want %d, got %d", want.Size(), got.Size())
	}
	for i := 0; i < want.Size(); i++ {
		w, g := want.Row(i), got.Row(i)
		for pos := range w {
			if w[pos] != g[pos] {
				t.Fatalf("row %d pos %d: want %v, got %v", i, pos, w[pos], g[pos])
			}
		}
	}
	preds := []dataset.Predicate{
		dataset.Range{Attr: "age", Lo: 20, Hi: 60},
		dataset.StrEq{Attr: "state", Val: "CA"},
		dataset.StrEq{Attr: "state", Val: "WA"}, // out-of-domain, data-present
		dataset.IsNull{Attr: "income"},
		dataset.And{dataset.Range{Attr: "age", Lo: 0, Hi: 50}, dataset.Not{P: dataset.StrEq{Attr: "state", Val: "TX"}}},
	}
	for _, p := range preds {
		if w, g := want.Count(p), got.Count(p); w != g {
			t.Fatalf("Count(%v): want %d, got %d", p, w, g)
		}
	}
}

func TestBuildCSVRoundTrip(t *testing.T) {
	schema := testSchema(t)
	csv := testCSV(5000, 1)
	heap, err := dataset.ReadCSV(strings.NewReader(csv), schema)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "table.seg")
	res, err := BuildCSV(path, schema, strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 5000 {
		t.Fatalf("rows: want 5000, got %d", res.Rows)
	}
	if res.DataBytes <= 0 || res.FileBytes < res.DataBytes {
		t.Fatalf("sizes inconsistent: %+v", res)
	}

	seg, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	if seg.Rows() != 5000 || seg.DataBytes() != res.DataBytes {
		t.Fatalf("segment reports rows=%d bytes=%d, build said %+v", seg.Rows(), seg.DataBytes(), res)
	}
	assertTablesMatch(t, heap, seg.Table())

	if !seg.Table().Sealed() {
		t.Fatal("mmap-backed table must be sealed")
	}
	if err := seg.Table().Append(dataset.Tuple{dataset.Num(1), dataset.Str("CA"), dataset.Num(2)}); err == nil {
		t.Fatal("Append on a sealed table must fail")
	}

	// The heap Load path must match too.
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	assertTablesMatch(t, heap, loaded)

	// Advise/Release/ResidentBytes must be callable and sane.
	seg.Advise()
	if res, err := seg.ResidentBytes(); err != nil || res < 0 || res > seg.MappedBytes() {
		t.Fatalf("ResidentBytes = %d, %v (mapped %d)", res, err, seg.MappedBytes())
	}
	seg.Release()
}

func TestWriteTableRoundTripWithMisfits(t *testing.T) {
	schema := testSchema(t)
	heap := dataset.NewTable(schema)
	heap.MustAppend(dataset.Tuple{dataset.Num(30), dataset.Str("CA"), dataset.Num(100)})
	// Kind-mismatched cells: a number in the categorical column, a string
	// in a continuous one.
	heap.MustAppend(dataset.Tuple{dataset.Num(40), dataset.Num(7), dataset.Str("oops")})
	heap.MustAppend(dataset.Tuple{dataset.Null, dataset.Null, dataset.Null})

	path := filepath.Join(t.TempDir(), "table.seg")
	if _, err := WriteTable(path, heap); err != nil {
		t.Fatal(err)
	}
	seg, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	got := seg.Table()
	if got.Size() != 3 {
		t.Fatalf("size %d", got.Size())
	}
	for i := 0; i < 3; i++ {
		w, g := heap.Row(i), got.Row(i)
		for pos := range w {
			if w[pos] != g[pos] {
				t.Fatalf("row %d pos %d: want %v, got %v", i, pos, w[pos], g[pos])
			}
		}
	}
	// The misfit fixup path must run through the compiled evaluator.
	if w, g := heap.Count(dataset.IsNull{Attr: "state"}), got.Count(dataset.IsNull{Attr: "state"}); w != g {
		t.Fatalf("IsNull(state): want %d, got %d", w, g)
	}
}

func TestEmptyTable(t *testing.T) {
	schema := testSchema(t)
	path := filepath.Join(t.TempDir(), "empty.seg")
	if _, err := BuildCSV(path, schema, strings.NewReader("age,state,income\n")); err != nil {
		t.Fatal(err)
	}
	seg, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	if seg.Rows() != 0 || seg.Table().Size() != 0 {
		t.Fatalf("rows %d", seg.Rows())
	}
	if n := seg.Table().Count(dataset.True{}); n != 0 {
		t.Fatalf("Count(true) = %d", n)
	}
}

func TestBuilderBoundedMemory(t *testing.T) {
	// Not a strict RSS assertion (that lives in the bench); this guards
	// the streaming path end to end at a size where full materialization
	// would be visible.
	if testing.Short() {
		t.Skip("short mode")
	}
	schema := testSchema(t)
	n := 200_000
	path := filepath.Join(t.TempDir(), "big.seg")
	b, err := NewBuilder(path, schema)
	if err != nil {
		t.Fatal(err)
	}
	row := make(dataset.Tuple, 3)
	for i := 0; i < n; i++ {
		row[0] = dataset.Num(float64(i % 100))
		row[1] = dataset.Str([]string{"CA", "NY", "TX"}[i%3])
		row[2] = dataset.Num(float64(i))
		if err := b.Append(row); err != nil {
			t.Fatal(err)
		}
	}
	res, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != n {
		t.Fatalf("rows %d", res.Rows)
	}
	seg, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	if got := seg.Table().Count(dataset.Range{Attr: "age", Lo: 0, Hi: 50}); got != n/2 {
		t.Fatalf("Count = %d, want %d", got, n/2)
	}
}
