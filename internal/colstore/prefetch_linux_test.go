//go:build linux

package colstore

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"repro/internal/dataset"
)

// evictSegment drops the segment's pages from memory: madvise(DONTNEED)
// on the mapping first (a page still mapped into a page table survives
// page-cache invalidation), then posix_fadvise(POSIX_FADV_DONTNEED) over
// the whole file to push the clean pages out of the page cache. Best
// effort — the caller must check residency and skip if the environment
// would not let go.
func evictSegment(t *testing.T, seg *Segment) {
	t.Helper()
	seg.Release()
	const posixFadvDontneed = 4
	if _, _, errno := syscall.Syscall6(syscall.SYS_FADVISE64,
		seg.f.Fd(), 0, 0, posixFadvDontneed, 0, 0); errno != 0 {
		t.Skipf("fadvise unavailable: %v", errno)
	}
}

// TestColumnGranularPrefetch is the mincore proof of the planned-column
// prefetch path: after evicting a multi-megabyte segment, prefetching and
// scanning only the age column must fault the age pages in while leaving
// the (much larger, unplanned) income column cold. Whole-table prefetch
// would drag every column back; this asserts it does not.
func TestColumnGranularPrefetch(t *testing.T) {
	// 300k rows: age FoR-packs to ~260 KiB + bitmap, income stays raw at
	// ~2.4 MiB — big enough that sequential-readahead spillover from the
	// age scan cannot meaningfully warm income.
	rng := rand.New(rand.NewSource(9))
	var sb strings.Builder
	sb.WriteString("age,state,income\n")
	for i := 0; i < 300_000; i++ {
		fmt.Fprintf(&sb, "%d,%s,%.2f\n", rng.Intn(100),
			[]string{"CA", "NY", "TX"}[rng.Intn(3)], rng.Float64()*1e6)
	}
	schema := testSchema(t)
	path := filepath.Join(t.TempDir(), "table.seg")
	if _, err := BuildCSV(path, schema, strings.NewReader(sb.String())); err != nil {
		t.Fatal(err)
	}
	seg, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()

	const agePos, incomePos = 0, 2
	frac := func(pos int) float64 {
		res, err := seg.ColumnResident(pos)
		if err != nil {
			t.Fatalf("ColumnResident(%d): %v", pos, err)
		}
		sp := seg.colSpans[pos]
		return float64(res) / float64(sp.end-sp.start)
	}

	evictSegment(t, seg)
	if f := frac(incomePos); f > 0.5 {
		t.Skipf("page cache would not release the segment (income %.0f%% resident after eviction)", f*100)
	}

	// The scheduler's path: derive the planned columns from the compiled
	// predicate, prefetch only those, scan.
	cp, err := dataset.Compile(schema, dataset.Range{Attr: "age", Lo: 20, Hi: 60})
	if err != nil {
		t.Fatal(err)
	}
	table := seg.Table()
	table.PrefetchColumns(cp.Columns())
	bm := cp.Eval(table)
	if bm.Count() == 0 {
		t.Fatal("scan matched nothing — bad test data")
	}

	ageFrac, incomeFrac := frac(agePos), frac(incomePos)
	if ageFrac < 0.8 {
		t.Errorf("planned age column only %.0f%% resident after prefetch+scan, want >= 80%%", ageFrac*100)
	}
	if incomeFrac > 0.3 {
		t.Errorf("unplanned income column %.0f%% resident, want <= 30%% (prefetch was not column-granular)", incomeFrac*100)
	}

	// Releasing the scanned column drops it cold again.
	table.ReleaseColumns(cp.Columns())
	const posixFadvDontneed = 4
	syscall.Syscall6(syscall.SYS_FADVISE64, seg.f.Fd(), 0, 0, posixFadvDontneed, 0, 0)
	if f := frac(agePos); f > 0.5 {
		t.Errorf("age column still %.0f%% resident after ReleaseColumns", f*100)
	}
}
