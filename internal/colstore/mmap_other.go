//go:build !linux

package colstore

import (
	"io"
	"os"
)

// Fallback for platforms without the syscall surface this package uses:
// the "mapping" is the whole file read onto the heap. Correct, but the
// resident set equals the file size — the beyond-RAM property needs a
// real mmap platform.

func mapFile(f *os.File, size int64) (data []byte, mapped bool, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, false, err
	}
	b := make([]byte, size)
	if _, err := io.ReadFull(f, b); err != nil {
		return nil, false, err
	}
	return b, false, nil
}

func unmapFile([]byte) error { return nil }

func adviseWillNeed([]byte) {}

func adviseDontNeed([]byte) {}

func residentBytes(b []byte) (int64, error) { return int64(len(b)), nil }
