//go:build linux

package colstore

import (
	"os"
	"syscall"
	"unsafe"
)

// mapFile maps the file read-only. mapped=true means the bytes alias the
// file and must be released with unmapFile.
func mapFile(f *os.File, size int64) (data []byte, mapped bool, err error) {
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, err
	}
	return b, true, nil
}

func unmapFile(b []byte) error { return syscall.Munmap(b) }

// adviseWillNeed asks the kernel to start reading the mapping in; best
// effort, errors ignored (the scan faults pages in regardless).
func adviseWillNeed(b []byte) {
	if len(b) > 0 {
		_ = syscall.Madvise(b, syscall.MADV_WILLNEED)
	}
}

// adviseDontNeed drops the mapping's resident pages; clean file-backed
// pages just re-fault from the page cache or disk.
func adviseDontNeed(b []byte) {
	if len(b) > 0 {
		_ = syscall.Madvise(b, syscall.MADV_DONTNEED)
	}
}

// residentBytes counts the mapping's pages currently in physical memory.
func residentBytes(b []byte) (int64, error) {
	if len(b) == 0 {
		return 0, nil
	}
	page := os.Getpagesize()
	vec := make([]byte, (len(b)+page-1)/page)
	// The stdlib syscall package has no Mincore wrapper; call it raw.
	if _, _, errno := syscall.Syscall(syscall.SYS_MINCORE,
		uintptr(unsafe.Pointer(&b[0])), uintptr(len(b)), uintptr(unsafe.Pointer(&vec[0]))); errno != 0 {
		return 0, errno
	}
	var resident int64
	for _, v := range vec {
		if v&1 != 0 {
			resident += int64(page)
		}
	}
	if resident > int64(len(b)) {
		resident = int64(len(b))
	}
	return resident, nil
}
