package mechanism

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/noise"
	"repro/internal/query"
	"repro/internal/workload"
)

// MWEM is the Multiplicative Weights Exponential Mechanism of Hardt, Ligett
// and McSherry — the data-dependent mechanism the paper names (§9, Appendix
// D) as the natural next addition to APEx's suite. It answers a WCQ by
// maintaining a synthetic histogram over the workload partitions: each
// round the exponential mechanism privately selects the worst-approximated
// query, measures it with Laplace noise, and multiplicative-weight updates
// pull the synthetic histogram toward the measurement. All queries are then
// answered from the synthetic histogram (free post-processing).
//
// Accuracy-to-privacy translation uses the HLM utility theorem
//
//	max error ≤ 2n·sqrt(ln|X|/T) + 10·T·ln L / ε
//
// which depends on the population size n. Because the translation must stay
// data independent (the §6 privacy proof requires denial decisions not to
// depend on D), MWEM takes a *public* population bound PublicN from the
// data owner and is only applicable when it is set; when the representation
// term 2N·sqrt(ln|X|/T) already exceeds α the mechanism reports itself
// inapplicable for that accuracy. The theorem is an expected-error bound,
// so unlike LM/SM the (α, β) guarantee here is heuristic — APEx in
// pessimistic mode will only pick MWEM when its εu still undercuts the
// exact mechanisms, which happens for very large workloads over small
// domains.
type MWEM struct {
	// Rounds is T; 0 means DefaultMWEMRounds.
	Rounds int
	// PublicN is the owner-published bound on |D| the translation uses.
	// MWEM is inapplicable while zero.
	PublicN float64
}

// DefaultMWEMRounds is the default iteration count.
const DefaultMWEMRounds = 10

// Name implements Mechanism.
func (MWEM) Name() string { return "MWEM" }

func (m MWEM) rounds() int {
	if m.Rounds <= 0 {
		return DefaultMWEMRounds
	}
	return m.Rounds
}

// Applicable implements Mechanism: MWEM answers WCQ over materialized
// workloads when a public population bound is configured.
func (m MWEM) Applicable(q *query.Query, tr *workload.Transformed) bool {
	return q.Kind == query.WCQ && tr.Materialized() && m.PublicN > 0
}

// Translate implements Mechanism via the HLM bound.
func (m MWEM) Translate(q *query.Query, tr *workload.Transformed) (Cost, error) {
	if !m.Applicable(q, tr) {
		return Cost{}, notApplicable(m.Name(), q)
	}
	if err := q.Req.Validate(); err != nil {
		return Cost{}, err
	}
	t := float64(m.rounds())
	domain := float64(tr.NumPartitions())
	l := float64(q.L())
	repr := 2 * m.PublicN * math.Sqrt(math.Log(math.Max(domain, 2))/t)
	if repr >= q.Req.Alpha {
		return Cost{}, fmt.Errorf("%w: MWEM representation error %.4g exceeds alpha %.4g (raise Rounds or alpha)",
			ErrNotApplicable, repr, q.Req.Alpha)
	}
	eps := 10 * t * math.Log(math.Max(l, 2)) / (q.Req.Alpha - repr)
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return Cost{}, fmt.Errorf("mechanism: MWEM translation produced invalid epsilon %v", eps)
	}
	return Cost{Lower: eps, Upper: eps}, nil
}

// Prefetch implements Prefetcher: MWEM reads the partition histogram.
func (MWEM) Prefetch(*query.Query, *workload.Transformed) Prefetch {
	return Prefetch{Histogram: true}
}

// Run implements Mechanism: the classic MWEM loop.
func (m MWEM) Run(q *query.Query, tr *workload.Transformed, d *dataset.Table, rng *rand.Rand) (*Result, error) {
	cost, err := m.Translate(q, tr)
	if err != nil {
		return nil, err
	}
	eps := cost.Upper
	t := m.rounds()
	perRound := eps / float64(t)

	x, err := tr.Histogram(d)
	if err != nil {
		return nil, err
	}
	w := tr.Matrix()
	trueAns, err := w.MulVec(x)
	if err != nil {
		return nil, err
	}
	n := m.PublicN

	// Synthetic histogram: uniform mass n over the partitions.
	parts := tr.NumPartitions()
	syn := make([]float64, parts)
	for i := range syn {
		syn[i] = n / float64(parts)
	}

	for round := 0; round < t; round++ {
		synAns, err := w.MulVec(syn)
		if err != nil {
			return nil, err
		}
		// Exponential mechanism over queries, score = |error|, sensitivity 1,
		// privacy ε/(2T).
		sel := exponentialSelect(rng, trueAns, synAns, perRound/2)
		// Laplace measurement of the selected query, privacy ε/(2T).
		meas := trueAns[sel] + noise.Laplace(rng, 2/perRound)
		// Multiplicative weights update toward the measurement.
		diff := meas - synAns[sel]
		var total float64
		for i := range syn {
			syn[i] *= math.Exp(w.At(sel, i) * diff / (2 * n))
			total += syn[i]
		}
		// Renormalize to mass n.
		if total > 0 {
			scale := n / total
			for i := range syn {
				syn[i] *= scale
			}
		}
	}

	out, err := w.MulVec(syn)
	if err != nil {
		return nil, err
	}
	return &Result{Counts: out, Epsilon: eps}, nil
}

// exponentialSelect draws a query index with probability proportional to
// exp(ε·|error|/2) (score sensitivity 1).
func exponentialSelect(rng *rand.Rand, trueAns, synAns []float64, eps float64) int {
	scores := make([]float64, len(trueAns))
	var maxScore float64
	for i := range trueAns {
		scores[i] = math.Abs(trueAns[i] - synAns[i])
		if scores[i] > maxScore {
			maxScore = scores[i]
		}
	}
	// Subtract the max for numerical stability.
	weights := make([]float64, len(scores))
	var total float64
	for i, s := range scores {
		weights[i] = math.Exp(eps * (s - maxScore) / 2)
		total += weights[i]
	}
	u := rng.Float64() * total
	for i, wt := range weights {
		if u < wt {
			return i
		}
		u -= wt
	}
	return len(weights) - 1
}

var _ Mechanism = MWEM{}
