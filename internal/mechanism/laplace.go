package mechanism

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/accuracy"
	"repro/internal/dataset"
	"repro/internal/noise"
	"repro/internal/query"
	"repro/internal/workload"
)

// LM is the baseline Laplace mechanism (Algorithm 2). It answers all three
// query types by adding Lap(‖W‖₁/ε) noise to the true workload counts; for
// ICQ/TCQ the noisy counts are thresholded / top-k-ed as post-processing.
type LM struct{}

// Name implements Mechanism.
func (LM) Name() string { return "LM" }

// Applicable implements Mechanism: LM answers every query type and needs no
// materialized matrix (only the sensitivity and true counts).
func (LM) Applicable(q *query.Query, tr *workload.Transformed) bool {
	return q.Kind == query.WCQ || q.Kind == query.ICQ || q.Kind == query.TCQ
}

// Translate implements Mechanism (Algorithm 2's translate). The bounds are
// data independent, so Lower == Upper:
//
//	WCQ: ε = ‖W‖₁ · ln(1/(1-(1-β)^{1/L})) / α
//	ICQ: ε = ‖W‖₁ · (ln(1/(1-(1-β)^{1/L})) - ln 2) / α
//	TCQ: ε = ‖W‖₁ · 2·ln(L/(2β)) / α
func (m LM) Translate(q *query.Query, tr *workload.Transformed) (Cost, error) {
	if !m.Applicable(q, tr) {
		return Cost{}, notApplicable(m.Name(), q)
	}
	if err := q.Req.Validate(); err != nil {
		return Cost{}, err
	}
	sens := tr.Sensitivity()
	if sens == 0 {
		// No tuple in the public domain satisfies any workload predicate:
		// the exact answer is data independent and free.
		return Cost{}, nil
	}
	alpha, beta := q.Req.Alpha, q.Req.Beta
	l := float64(q.L())
	var eps float64
	switch q.Kind {
	case query.WCQ:
		eps = sens * lnInvUnionBound(beta, l) / alpha
	case query.ICQ:
		eps = sens * (lnInvUnionBound(beta, l) - math.Ln2) / alpha
	case query.TCQ:
		eps = sens * 2 * math.Log(l/(2*beta)) / alpha
	}
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return Cost{}, fmt.Errorf("mechanism: LM translation produced invalid epsilon %v (alpha=%v beta=%v L=%v)", eps, alpha, beta, l)
	}
	return Cost{Lower: eps, Upper: eps}, nil
}

// lnInvUnionBound computes ln(1/(1-(1-β)^{1/L})), the per-query tail budget
// after a union bound over L queries. For tiny β/L this approaches ln(L/β).
func lnInvUnionBound(beta, l float64) float64 {
	// 1-(1-β)^{1/L} = -expm1(log1p(-β)/L), computed stably.
	inner := -math.Expm1(math.Log1p(-beta) / l)
	return -math.Log(inner)
}

// Prefetch implements Prefetcher: LM reads the exact workload answers.
func (LM) Prefetch(*query.Query, *workload.Transformed) Prefetch {
	return Prefetch{Truth: true}
}

// Run implements Mechanism (Algorithm 2's run).
func (m LM) Run(q *query.Query, tr *workload.Transformed, d *dataset.Table, rng *rand.Rand) (*Result, error) {
	cost, err := m.Translate(q, tr)
	if err != nil {
		return nil, err
	}
	eps := cost.Upper
	truth := tr.TrueAnswers(d)
	noisy := make([]float64, len(truth))
	if eps == 0 {
		// Zero-sensitivity workload: the exact (all-zero) answer is free.
		copy(noisy, truth)
	} else {
		b := tr.Sensitivity() / eps
		for i, v := range truth {
			noisy[i] = v + noise.Laplace(rng, b)
		}
	}
	res := &Result{Epsilon: eps}
	switch q.Kind {
	case query.WCQ:
		res.Counts = noisy
	case query.ICQ:
		res.Selected = accuracy.SelectAbove(noisy, q.Threshold)
	case query.TCQ:
		res.Selected = accuracy.SelectTopK(noisy, q.K)
	}
	return res, nil
}

// LTM is the Laplace top-k mechanism (Algorithm 5), a generalized
// report-noisy-max: noise Lap(k/ε) is added to the true counts and only the
// k top bin identifiers are released (never the counts), so the privacy
// cost is independent of the workload sensitivity.
type LTM struct{}

// Name implements Mechanism.
func (LTM) Name() string { return "LTM" }

// Applicable implements Mechanism.
func (LTM) Applicable(q *query.Query, tr *workload.Transformed) bool {
	return q.Kind == query.TCQ
}

// Translate implements Mechanism: ε = 2k·ln(L/(2β))/α, data independent.
func (m LTM) Translate(q *query.Query, tr *workload.Transformed) (Cost, error) {
	if !m.Applicable(q, tr) {
		return Cost{}, notApplicable(m.Name(), q)
	}
	if err := q.Req.Validate(); err != nil {
		return Cost{}, err
	}
	l := float64(q.L())
	eps := 2 * float64(q.K) * math.Log(l/(2*q.Req.Beta)) / q.Req.Alpha
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return Cost{}, fmt.Errorf("mechanism: LTM translation produced invalid epsilon %v", eps)
	}
	return Cost{Lower: eps, Upper: eps}, nil
}

// Prefetch implements Prefetcher: LTM reads the exact workload answers.
func (LTM) Prefetch(*query.Query, *workload.Transformed) Prefetch {
	return Prefetch{Truth: true}
}

// Run implements Mechanism.
func (m LTM) Run(q *query.Query, tr *workload.Transformed, d *dataset.Table, rng *rand.Rand) (*Result, error) {
	cost, err := m.Translate(q, tr)
	if err != nil {
		return nil, err
	}
	eps := cost.Upper
	b := float64(q.K) / eps
	truth := tr.TrueAnswers(d)
	noisy := make([]float64, len(truth))
	for i, v := range truth {
		noisy[i] = v + noise.Laplace(rng, b)
	}
	return &Result{
		Selected: accuracy.SelectTopK(noisy, q.K),
		Epsilon:  eps,
	}, nil
}

var (
	_ Mechanism = LM{}
	_ Mechanism = LTM{}
)
