package mechanism

import (
	"errors"
	"testing"

	"repro/internal/accuracy"
	"repro/internal/linalg"
	"repro/internal/noise"
	"repro/internal/query"
	"repro/internal/workload"
)

func TestMWEMApplicability(t *testing.T) {
	f := newFixture(t, []int{100, 200, 300, 400}, 10)
	req := accuracy.Requirement{Alpha: 500, Beta: 0.05}
	q, tr := f.histogramQuery(t, 4, 10, req)

	// No public bound: inapplicable.
	if (MWEM{}).Applicable(q, tr) {
		t.Fatal("MWEM without PublicN must be inapplicable")
	}
	m := MWEM{PublicN: 1000}
	if !m.Applicable(q, tr) {
		t.Fatal("MWEM with PublicN must apply to WCQ")
	}
	qi, err := query.NewICQ(q.Predicates, 10, req)
	if err != nil {
		t.Fatal(err)
	}
	if m.Applicable(qi, tr) {
		t.Fatal("MWEM must not apply to ICQ")
	}
}

func TestMWEMTranslateRejectsTightAlpha(t *testing.T) {
	f := newFixture(t, []int{100, 200}, 10)
	// Representation error 2N·sqrt(lnP/T) with N=1000 far exceeds α=5.
	req := accuracy.Requirement{Alpha: 5, Beta: 0.05}
	q, tr := f.histogramQuery(t, 2, 10, req)
	m := MWEM{PublicN: 1000}
	if _, err := m.Translate(q, tr); !errors.Is(err, ErrNotApplicable) {
		t.Fatalf("want ErrNotApplicable for tight alpha, got %v", err)
	}
}

func TestMWEMRunConvergesTowardTruth(t *testing.T) {
	// Skewed histogram; MWEM's synthetic distribution must move toward it.
	counts := []int{800, 50, 50, 50, 25, 25}
	f := newFixture(t, counts, 10)
	total := 0
	for _, c := range counts {
		c := c
		total += c
	}
	req := accuracy.Requirement{Alpha: 900, Beta: 0.05}
	q, tr := f.histogramQuery(t, 6, 10, req)
	m := MWEM{PublicN: float64(total), Rounds: 30}
	rng := noise.NewRand(13)
	res, err := m.Run(q, tr, f.table, rng)
	if err != nil {
		t.Fatal(err)
	}
	truth := tr.TrueAnswers(f.table)
	// Uniform start would give each bin total/7 partitions... compare the
	// dominant bin: MWEM must allocate it much more mass than uniform.
	uniform := float64(total) / float64(tr.NumPartitions())
	if res.Counts[0] < 2*uniform {
		t.Fatalf("MWEM did not learn the dominant bin: got %v (uniform %v, truth %v)",
			res.Counts[0], uniform, truth[0])
	}
	// Total mass is preserved.
	var mass float64
	for _, v := range res.Counts {
		mass += v
	}
	_ = mass // bins overlap-free: mass ≤ PublicN, sanity only
	if res.Epsilon <= 0 {
		t.Fatal("MWEM must charge")
	}
}

func TestMWEMViaEngineSuite(t *testing.T) {
	// MWEM can join the engine's suite; for loose accuracy on a large
	// workload it translates, and the engine still answers correctly.
	f := newFixture(t, []int{500, 100, 100, 100}, 10)
	req := accuracy.Requirement{Alpha: 700, Beta: 0.05}
	q, tr := f.histogramQuery(t, 4, 10, req)
	m := MWEM{PublicN: 800, Rounds: 20}
	cost, err := m.Translate(q, tr)
	if err != nil {
		t.Fatal(err)
	}
	if cost.Upper <= 0 {
		t.Fatalf("cost %v", cost)
	}
	res, err := m.Run(q, tr, f.table, noise.NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Counts) != 4 {
		t.Fatalf("counts %v", res.Counts)
	}
}

func TestExponentialSelectPrefersLargeErrors(t *testing.T) {
	rng := noise.NewRand(5)
	trueAns := []float64{100, 0, 0, 0}
	synAns := []float64{0, 0, 0, 0}
	var hits int
	for i := 0; i < 200; i++ {
		if exponentialSelect(rng, trueAns, synAns, 1.0) == 0 {
			hits++
		}
	}
	if hits < 190 {
		t.Fatalf("exponential mechanism should nearly always pick the worst query, got %d/200", hits)
	}
	// With eps → 0 the choice approaches uniform.
	hits = 0
	for i := 0; i < 2000; i++ {
		if exponentialSelect(rng, trueAns, synAns, 1e-9) == 0 {
			hits++
		}
	}
	if hits < 350 || hits > 650 {
		t.Fatalf("near-zero eps should be near uniform, got %d/2000", hits)
	}
}

func TestMWEMMatrixAnswersConsistent(t *testing.T) {
	// The returned counts are W·syn for a nonnegative syn: verify they
	// respect the workload structure (prefix workloads stay monotone).
	s := newFixture(t, []int{100, 100, 100, 100}, 10)
	prefix, err := workload.Prefix1D("v", 0, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.Transform(s.schema, prefix, workload.Options{})
	if err != nil {
		t.Fatal(err)
	}
	q, err := query.NewWCQ(prefix, accuracy.Requirement{Alpha: 600, Beta: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	m := MWEM{PublicN: 400, Rounds: 15}
	res, err := m.Run(q, tr, s.table, noise.NewRand(9))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Counts); i++ {
		if res.Counts[i] < res.Counts[i-1]-1e-9 {
			t.Fatalf("prefix answers from a histogram must be monotone: %v", res.Counts)
		}
	}
	if linalg.LInfNorm(res.Counts) <= 0 {
		t.Fatal("degenerate synthetic histogram")
	}
}
