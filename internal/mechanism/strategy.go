package mechanism

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/accuracy"
	"repro/internal/dataset"
	"repro/internal/noise"
	"repro/internal/query"
	"repro/internal/strategy"
	"repro/internal/translate"
	"repro/internal/workload"
)

// SM is the strategy-based (matrix) mechanism (Algorithm 3). It answers the
// low-sensitivity strategy workload A with Laplace noise and reconstructs
// the analyst's workload as ω = W·A⁺·(Ax + Lap(‖A‖₁/ε)^l).
//
// Because the reconstruction error is a weighted sum of Laplace variables
// with no closed-form CDF, Translate binary-searches the privacy cost using
// Monte-Carlo simulation of the failure rate (the paper's estimateBeta).
// The simulation exploits that the error scales as 1/ε: one batch of
// normalized error samples Z = ‖W·A⁺·Lap(1)^l‖∞ is drawn per
// (workload, strategy) pair and re-thresholded at every ε probed, so the
// binary search costs one matrix-vector product per sample in total.
//
// The samples come from a translate.Source — the per-dataset shared,
// persistent TranslationCache when the server wires one up (Source), or a
// private cache otherwise. Sampling seeds are canonical
// (translate.SampleSeed): the same workload translates to the bit-identical
// ε in any session, any process life, and any translation order.
//
// SM answers WCQ directly. It also answers ICQ (the paper's ICQ-SM):
// the analyst thresholds the noisy counts locally, which is post-processing;
// because ICQ accuracy only needs one-sided error, the WCQ translation is
// invoked at 2β (§5.3.1).
type SM struct {
	// Strategy is the strategy matrix family; nil means strategy.H2.
	Strategy strategy.Strategy
	// Samples is the Monte-Carlo sample count N; 0 means DefaultMCSamples.
	Samples int
	// Seed is retained for constructor compatibility but no longer feeds
	// the sampler: seeds are derived canonically from (strategy, N,
	// strategy-matrix rows), so ε cannot depend on arrival order or on
	// which session translated first.
	Seed int64
	// Source, when set, supplies translation plans — typically the
	// per-dataset shared translate.Cache so all sessions pay each
	// workload's sampling once and restarts reload it from the sidecar.
	// Nil means a private in-memory cache.
	Source translate.Source

	srcOnce sync.Once
	src     translate.Source
}

// DefaultMCSamples matches the paper's N = 10000.
const DefaultMCSamples = translate.DefaultSamples

// NewSM returns an SM with the given strategy (nil for H2) and sample count
// (0 for the default). The seed parameter is kept for compatibility; see
// SM.Seed.
func NewSM(s strategy.Strategy, samples int, seed int64) *SM {
	return &SM{Strategy: s, Samples: samples, Seed: seed}
}

// Name implements Mechanism.
func (m *SM) Name() string { return "SM-" + m.strat().Name() }

func (m *SM) strat() strategy.Strategy {
	if m.Strategy == nil {
		return strategy.H2
	}
	return m.Strategy
}

func (m *SM) samples() int {
	if m.Samples <= 0 {
		return DefaultMCSamples
	}
	return m.Samples
}

// source returns the plan source, defaulting to a private memory-only
// cache on first use.
func (m *SM) source() translate.Source {
	m.srcOnce.Do(func() {
		m.src = m.Source
		if m.src == nil {
			m.src = translate.NewCache("")
		}
	})
	return m.src
}

// Applicable implements Mechanism: SM needs the materialized workload
// matrix and handles WCQ and ICQ.
func (m *SM) Applicable(q *query.Query, tr *workload.Transformed) bool {
	if q.Kind != query.WCQ && q.Kind != query.ICQ {
		return false
	}
	return tr.Materialized()
}

// plan fetches the workload's translation plan through the source.
func (m *SM) plan(tr *workload.Transformed) (*translate.Plan, error) {
	p, err := m.source().Plan(tr, m.strat(), m.samples())
	if err != nil {
		return nil, fmt.Errorf("mechanism: SM: %w", err)
	}
	return p, nil
}

// TranslationNeed implements TranslationWarmer: a batching scheduler
// warms the plan through the source before admission so every fresh
// workload in the batch shares one sampling pass.
func (m *SM) TranslationNeed(q *query.Query, tr *workload.Transformed) (translate.Source, translate.Item, bool) {
	if !m.Applicable(q, tr) {
		return nil, translate.Item{}, false
	}
	return m.source(), translate.Item{Tr: tr, Strategy: m.strat(), Samples: m.samples()}, true
}

// Translate implements Mechanism (Algorithm 3's translate): a binary search
// for the smallest ε whose empirical failure rate, inflated by a normal
// confidence margin, stays below β.
func (m *SM) Translate(q *query.Query, tr *workload.Transformed) (Cost, error) {
	if !m.Applicable(q, tr) {
		return Cost{}, notApplicable(m.Name(), q)
	}
	if err := q.Req.Validate(); err != nil {
		return Cost{}, err
	}
	p, err := m.plan(tr)
	if err != nil {
		return Cost{}, err
	}
	if tr.Sensitivity() == 0 {
		// All-zero workload matrix: reconstruction is exact and free.
		return Cost{}, nil
	}
	alpha, beta := q.Req.Alpha, q.Req.Beta
	if q.Kind == query.ICQ {
		// One-sided accuracy: a WCQ guarantee at 2β gives ICQ accuracy at β.
		beta = 2 * beta
		if beta >= 1 {
			beta = 0.999999
		}
	}
	// Theorem A.1 upper bound: ε ≤ ‖A‖₁·‖WA⁺‖F / (α·math.Sqrt(β/2)).
	hi := p.SensA * p.FrobR / (alpha * math.Sqrt(beta/2))
	lo := 0.0
	if !passes(p, hi, alpha, beta) {
		// The Chebyshev bound should always pass; if MC noise says
		// otherwise, widen until it does.
		for i := 0; i < 60 && !passes(p, hi, alpha, beta); i++ {
			hi *= 2
		}
	}
	for i := 0; i < 60 && hi-lo > 1e-4*hi; i++ {
		mid := (lo + hi) / 2
		if passes(p, mid, alpha, beta) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return Cost{Lower: hi, Upper: hi}, nil
}

// passes is the paper's estimateBeta check: with N normalized error samples
// Z, failure at privacy ε means Z·(‖A‖₁/ε) > α. The empirical rate βe is
// accepted when βe + δβ + p/2 < β with δβ the z_{1-p/2} normal margin and
// p = β/100.
func passes(p *translate.Plan, eps, alpha, beta float64) bool {
	if eps <= 0 {
		return false
	}
	threshold := alpha * eps / p.SensA
	n := len(p.Zs)
	// zs sorted ascending: failures are samples > threshold.
	nf := n - upperBound(p.Zs, threshold)
	be := float64(nf) / float64(n)
	pp := beta / 100
	z := noise.ZScore(pp / 2)
	db := z * math.Sqrt(be*(1-be)/float64(n))
	return be+db+pp/2 < beta
}

// Prefetch implements Prefetcher: SM reads the partition histogram.
func (*SM) Prefetch(*query.Query, *workload.Transformed) Prefetch {
	return Prefetch{Histogram: true}
}

// Run implements Mechanism (Algorithm 3's run).
func (m *SM) Run(q *query.Query, tr *workload.Transformed, d *dataset.Table, rng *rand.Rand) (*Result, error) {
	cost, err := m.Translate(q, tr)
	if err != nil {
		return nil, err
	}
	return m.RunPrepared(q, tr, d, rng, cost)
}

// RunPrepared implements PreparedRunner: it executes with the privacy
// cost the engine already translated at admission, skipping the redundant
// re-translation (plan lookup plus full binary search) the single-shot
// Run pays at execute time.
func (m *SM) RunPrepared(q *query.Query, tr *workload.Transformed, d *dataset.Table, rng *rand.Rand, cost Cost) (*Result, error) {
	eps := cost.Upper
	p, err := m.plan(tr)
	if err != nil {
		return nil, err
	}
	rec, err := p.Reconstruction()
	if err != nil {
		return nil, fmt.Errorf("mechanism: SM: %w", err)
	}
	x, err := tr.Histogram(d)
	if err != nil {
		return nil, err
	}
	ax, err := rec.A.MulVec(x)
	if err != nil {
		return nil, err
	}
	if eps > 0 {
		b := rec.SensA / eps
		for i := range ax {
			ax[i] += noise.Laplace(rng, b)
		}
	}
	omega, err := rec.R.MulVec(ax)
	if err != nil {
		return nil, err
	}
	res := &Result{Epsilon: eps}
	switch q.Kind {
	case query.WCQ:
		res.Counts = omega
	case query.ICQ:
		res.Selected = accuracy.SelectAbove(omega, q.Threshold)
	}
	return res, nil
}

// upperBound returns the number of elements in sorted xs that are <= v.
func upperBound(xs []float64, v float64) int {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := (lo + hi) / 2
		if xs[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
