package mechanism

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/noise"
	"repro/internal/query"
	"repro/internal/workload"
)

// MPM is the multi-poking mechanism for iceberg queries (Algorithm 4), the
// paper's data-dependent translation. It probes the noisy differences
// count - c up to m times with gradually relaxed privacy: the i-th poke uses
// ε_i = (i+1)·εmax/m, and noise across pokes is correlated via the
// gradual-release ladder so the transcript through poke i is ε_i-DP. When
// every bin is confidently above or below the threshold the mechanism stops
// early and charges only ε_i — which is why its actual privacy loss depends
// on how far the true counts sit from the threshold (Figure 4c).
type MPM struct {
	// Pokes is m, the maximum number of probes; 0 means DefaultPokes.
	Pokes int
}

// DefaultPokes matches the paper's m = 10.
const DefaultPokes = 10

// Name implements Mechanism.
func (MPM) Name() string { return "MPM" }

func (m MPM) pokes() int {
	if m.Pokes <= 0 {
		return DefaultPokes
	}
	return m.Pokes
}

// Applicable implements Mechanism: MPM answers ICQ only.
func (m MPM) Applicable(q *query.Query, tr *workload.Transformed) bool {
	return q.Kind == query.ICQ
}

// Translate implements Mechanism: εu = ‖W‖₁·ln(mL/(2β))/α is the worst-case
// loss (all m pokes); εl = εu/m is the best case (one poke).
func (m MPM) Translate(q *query.Query, tr *workload.Transformed) (Cost, error) {
	if !m.Applicable(q, tr) {
		return Cost{}, notApplicable(m.Name(), q)
	}
	if err := q.Req.Validate(); err != nil {
		return Cost{}, err
	}
	if tr.Sensitivity() == 0 {
		// Unsatisfiable workload: the exact answer is data independent.
		return Cost{}, nil
	}
	mm := float64(m.pokes())
	l := float64(q.L())
	epsMax := tr.Sensitivity() * math.Log(mm*l/(2*q.Req.Beta)) / q.Req.Alpha
	if epsMax <= 0 || math.IsNaN(epsMax) || math.IsInf(epsMax, 0) {
		return Cost{}, fmt.Errorf("mechanism: MPM translation produced invalid epsilon %v", epsMax)
	}
	return Cost{Lower: epsMax / mm, Upper: epsMax}, nil
}

// Prefetch implements Prefetcher: MPM reads the exact workload answers.
func (MPM) Prefetch(*query.Query, *workload.Transformed) Prefetch {
	return Prefetch{Truth: true}
}

// Run implements Mechanism (Algorithm 4). The returned Epsilon is the
// privacy actually spent: ε_i of the poke at which the mechanism returned.
func (m MPM) Run(q *query.Query, tr *workload.Transformed, d *dataset.Table, rng *rand.Rand) (*Result, error) {
	cost, err := m.Translate(q, tr)
	if err != nil {
		return nil, err
	}
	epsMax := cost.Upper
	mm := m.pokes()
	sens := tr.Sensitivity()
	l := q.L()
	if sens == 0 {
		// Every count is identically zero: answer exactly, free of charge.
		sel := make([]bool, l)
		for j := range sel {
			sel[j] = 0 > q.Threshold
		}
		return &Result{Selected: sel, Epsilon: 0}, nil
	}

	// Privacy schedule ε_i = (i+1)·εmax/m.
	eps := make([]float64, mm)
	for i := range eps {
		eps[i] = float64(i+1) * epsMax / float64(mm)
	}
	ladder, err := noise.NewLadder(rng, sens, eps, l)
	if err != nil {
		return nil, err
	}

	truth := tr.TrueAnswers(d)
	diff := make([]float64, l) // Wx - c
	for j, v := range truth {
		diff[j] = v - q.Threshold
	}

	alpha := q.Req.Alpha
	tail := math.Log(float64(mm) * float64(l) / (2 * q.Req.Beta))
	noisyDiff := make([]float64, l)
	for i := 0; i < mm; i++ {
		eta := ladder.Noise(i)
		for j := range noisyDiff {
			noisyDiff[j] = diff[j] + eta[j]
		}
		// α_i = ‖W‖₁·ln(mL/(2β))/ε_i: the confident-decision margin at the
		// current privacy level.
		alphaI := sens * tail / eps[i]
		if i == mm-1 {
			// Last poke: α_i == α; decide every bin by the sign of the
			// noisy difference (Algorithm 4, line 20).
			sel := make([]bool, l)
			for j, v := range noisyDiff {
				sel[j] = v > 0
			}
			return &Result{Selected: sel, Epsilon: eps[i]}, nil
		}
		decided := true
		sel := make([]bool, l)
		for j, v := range noisyDiff {
			switch {
			case (v-alphaI)/alpha >= -1: // confidently (or acceptably) above
				sel[j] = true
			case (v+alphaI)/alpha <= 1: // confidently (or acceptably) below
				sel[j] = false
			default:
				decided = false
			}
			if !decided {
				break
			}
		}
		if decided {
			return &Result{Selected: sel, Epsilon: eps[i]}, nil
		}
	}
	// Unreachable: the final iteration always returns above.
	return nil, fmt.Errorf("mechanism: MPM did not terminate")
}

var _ Mechanism = MPM{}
