package mechanism

import (
	"errors"
	"math"
	"testing"

	"repro/internal/accuracy"
	"repro/internal/dataset"
	"repro/internal/noise"
	"repro/internal/query"
	"repro/internal/strategy"
	"repro/internal/workload"
)

// fixture builds a small table over one continuous attribute with a known
// histogram, plus transformed workloads.
type fixture struct {
	schema *dataset.Schema
	table  *dataset.Table
}

func newFixture(t *testing.T, counts []int, binWidth float64) *fixture {
	t.Helper()
	s := dataset.MustSchema(
		dataset.Attribute{Name: "v", Kind: dataset.Continuous, Min: 0, Max: binWidth * float64(len(counts))},
	)
	tab := dataset.NewTable(s)
	for bin, n := range counts {
		for i := 0; i < n; i++ {
			tab.MustAppend(dataset.Tuple{dataset.Num(binWidth*float64(bin) + binWidth/2)})
		}
	}
	return &fixture{schema: s, table: tab}
}

func (f *fixture) histogramQuery(t *testing.T, bins int, width float64, req accuracy.Requirement) (*query.Query, *workload.Transformed) {
	t.Helper()
	preds, err := workload.Histogram1D("v", 0, width*float64(bins), width)
	if err != nil {
		t.Fatal(err)
	}
	q, err := query.NewWCQ(preds, req)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.Transform(f.schema, preds, workload.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return q, tr
}

func TestLMTranslateFormulas(t *testing.T) {
	f := newFixture(t, []int{10, 20, 30, 40}, 10)
	req := accuracy.Requirement{Alpha: 5, Beta: 0.05}
	q, tr := f.histogramQuery(t, 4, 10, req)

	cost, err := LM{}.Translate(q, tr)
	if err != nil {
		t.Fatal(err)
	}
	l := 4.0
	want := 1 * math.Log(1/(1-math.Pow(1-0.05, 1/l))) / 5
	if math.Abs(cost.Upper-want) > 1e-9 {
		t.Fatalf("WCQ eps = %v, want %v", cost.Upper, want)
	}
	if cost.Lower != cost.Upper {
		t.Fatal("LM is data independent: lower must equal upper")
	}

	// ICQ: subtract ln 2.
	qi, err := query.NewICQ(q.Predicates, 25, req)
	if err != nil {
		t.Fatal(err)
	}
	ci, err := LM{}.Translate(qi, tr)
	if err != nil {
		t.Fatal(err)
	}
	wantICQ := 1 * (math.Log(1/(1-math.Pow(1-0.05, 1/l))) - math.Ln2) / 5
	if math.Abs(ci.Upper-wantICQ) > 1e-9 {
		t.Fatalf("ICQ eps = %v, want %v", ci.Upper, wantICQ)
	}

	// TCQ: 2·ln(L/2β)/α.
	qt, err := query.NewTCQ(q.Predicates, 2, req)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := LM{}.Translate(qt, tr)
	if err != nil {
		t.Fatal(err)
	}
	wantTCQ := 1 * 2 * math.Log(l/(2*0.05)) / 5
	if math.Abs(ct.Upper-wantTCQ) > 1e-9 {
		t.Fatalf("TCQ eps = %v, want %v", ct.Upper, wantTCQ)
	}
}

func TestLMSensitivityScalesCost(t *testing.T) {
	// Prefix workload has sensitivity L: LM's cost must be ~L× the
	// disjoint histogram's.
	f := newFixture(t, []int{10, 10, 10, 10, 10, 10, 10, 10}, 10)
	req := accuracy.Requirement{Alpha: 5, Beta: 0.05}
	_, trHist := f.histogramQuery(t, 8, 10, req)

	prefix, err := workload.Prefix1D("v", 0, 80, 10)
	if err != nil {
		t.Fatal(err)
	}
	qp, err := query.NewWCQ(prefix, req)
	if err != nil {
		t.Fatal(err)
	}
	trPrefix, err := workload.Transform(f.schema, prefix, workload.Options{})
	if err != nil {
		t.Fatal(err)
	}
	qh, err := query.NewWCQ(trHist.Predicates(), req)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := LM{}.Translate(qh, trHist)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := LM{}.Translate(qp, trPrefix)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := cp.Upper / ch.Upper; math.Abs(ratio-8) > 1e-9 {
		t.Fatalf("prefix/histogram cost ratio = %v, want 8", ratio)
	}
}

// TestLMAccuracyGuarantee verifies empirically that LM meets (α, β)-WCQ
// accuracy: the max error exceeds α in at most ~β of runs.
func TestLMAccuracyGuarantee(t *testing.T) {
	f := newFixture(t, []int{50, 100, 150, 200}, 10)
	req := accuracy.Requirement{Alpha: 20, Beta: 0.1}
	q, tr := f.histogramQuery(t, 4, 10, req)
	truth := tr.TrueAnswers(f.table)

	rng := noise.NewRand(123)
	const runs = 2000
	var failures int
	for i := 0; i < runs; i++ {
		res, err := LM{}.Run(q, tr, f.table, rng)
		if err != nil {
			t.Fatal(err)
		}
		e, err := accuracy.WCQError(truth, res.Counts)
		if err != nil {
			t.Fatal(err)
		}
		if e >= req.Alpha {
			failures++
		}
	}
	rate := float64(failures) / runs
	if rate > req.Beta {
		t.Fatalf("failure rate %v exceeds beta %v", rate, req.Beta)
	}
}

func TestLMICQRun(t *testing.T) {
	f := newFixture(t, []int{500, 5, 500, 5}, 10)
	req := accuracy.Requirement{Alpha: 50, Beta: 0.01}
	_, tr := f.histogramQuery(t, 4, 10, req)
	q, err := query.NewICQ(tr.Predicates(), 250, req)
	if err != nil {
		t.Fatal(err)
	}
	res, err := LM{}.Run(q, tr, f.table, noise.NewRand(5))
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, true, false}
	for i := range want {
		if res.Selected[i] != want[i] {
			t.Fatalf("selection %v, want %v", res.Selected, want)
		}
	}
	if res.Counts != nil {
		t.Fatal("ICQ must not reveal counts")
	}
}

func TestLTMTranslateAndRun(t *testing.T) {
	f := newFixture(t, []int{500, 400, 300, 5, 5, 5, 5, 5, 5, 5}, 10)
	req := accuracy.Requirement{Alpha: 50, Beta: 0.01}
	_, tr := f.histogramQuery(t, 10, 10, req)
	q, err := query.NewTCQ(tr.Predicates(), 3, req)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := LTM{}.Translate(q, tr)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * 3 * math.Log(10/(2*0.01)) / 50
	if math.Abs(cost.Upper-want) > 1e-9 {
		t.Fatalf("LTM eps = %v, want %v", cost.Upper, want)
	}
	res, err := LTM{}.Run(q, tr, f.table, noise.NewRand(7))
	if err != nil {
		t.Fatal(err)
	}
	var selected int
	for _, s := range res.Selected {
		if s {
			selected++
		}
	}
	if selected != 3 {
		t.Fatalf("LTM selected %d bins, want 3", selected)
	}
	// With well-separated counts the top 3 must be bins 0..2.
	if !res.Selected[0] || !res.Selected[1] || !res.Selected[2] {
		t.Fatalf("LTM missed a clear winner: %v", res.Selected)
	}
}

// LTM's cost is independent of workload sensitivity; LM's is not. This is
// the crossover the paper exploits for QT2/QT4 (Table 2).
func TestLTMIndependentOfSensitivity(t *testing.T) {
	f := newFixture(t, []int{10, 10, 10, 10, 10, 10, 10, 10}, 10)
	req := accuracy.Requirement{Alpha: 5, Beta: 0.05}
	prefix, err := workload.Prefix1D("v", 0, 80, 10)
	if err != nil {
		t.Fatal(err)
	}
	trPrefix, err := workload.Transform(f.schema, prefix, workload.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if trPrefix.Sensitivity() != 8 {
		t.Fatalf("prefix sensitivity = %v", trPrefix.Sensitivity())
	}
	q, err := query.NewTCQ(prefix, 2, req)
	if err != nil {
		t.Fatal(err)
	}
	ltm, err := LTM{}.Translate(q, trPrefix)
	if err != nil {
		t.Fatal(err)
	}
	lm, err := LM{}.Translate(q, trPrefix)
	if err != nil {
		t.Fatal(err)
	}
	if ltm.Upper >= lm.Upper {
		t.Fatalf("on a high-sensitivity workload LTM (%v) must beat LM (%v)", ltm.Upper, lm.Upper)
	}
}

func TestNotApplicableErrors(t *testing.T) {
	f := newFixture(t, []int{1, 2}, 10)
	req := accuracy.Requirement{Alpha: 1, Beta: 0.1}
	q, tr := f.histogramQuery(t, 2, 10, req)

	if _, err := (LTM{}).Translate(q, tr); !errors.Is(err, ErrNotApplicable) {
		t.Fatalf("LTM on WCQ: %v", err)
	}
	if _, err := (MPM{}).Translate(q, tr); !errors.Is(err, ErrNotApplicable) {
		t.Fatalf("MPM on WCQ: %v", err)
	}
	qt, err := query.NewTCQ(q.Predicates, 1, req)
	if err != nil {
		t.Fatal(err)
	}
	sm := NewSM(nil, 200, 1)
	if _, err := sm.Translate(qt, tr); !errors.Is(err, ErrNotApplicable) {
		t.Fatalf("SM on TCQ: %v", err)
	}
}

func TestSMTranslateBeatsLMOnPrefix(t *testing.T) {
	// The headline win: on a cumulative histogram (sensitivity L), the H2
	// strategy mechanism must be far cheaper than the Laplace baseline.
	f := newFixture(t, make([]int, 64), 10)
	req := accuracy.Requirement{Alpha: 50, Beta: 0.05}
	prefix, err := workload.Prefix1D("v", 0, 640, 10)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.Transform(f.schema, prefix, workload.Options{})
	if err != nil {
		t.Fatal(err)
	}
	q, err := query.NewWCQ(prefix, req)
	if err != nil {
		t.Fatal(err)
	}
	sm := NewSM(strategy.H2, 2000, 1)
	smc, err := sm.Translate(q, tr)
	if err != nil {
		t.Fatal(err)
	}
	lmc, err := LM{}.Translate(q, tr)
	if err != nil {
		t.Fatal(err)
	}
	if smc.Upper >= lmc.Upper {
		t.Fatalf("SM (%v) must beat LM (%v) on a prefix workload", smc.Upper, lmc.Upper)
	}
}

func TestSMTranslateDeterministic(t *testing.T) {
	f := newFixture(t, make([]int, 16), 10)
	req := accuracy.Requirement{Alpha: 20, Beta: 0.05}
	q, tr := f.histogramQuery(t, 16, 10, req)
	sm := NewSM(strategy.H2, 1000, 42)
	a, err := sm.Translate(q, tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sm.Translate(q, tr)
	if err != nil {
		t.Fatal(err)
	}
	if a.Upper != b.Upper {
		t.Fatalf("repeated translation differs: %v vs %v", a.Upper, b.Upper)
	}
}

// TestSMAccuracyGuarantee verifies the Monte-Carlo translation actually
// delivers (α, β)-WCQ accuracy on real runs.
func TestSMAccuracyGuarantee(t *testing.T) {
	f := newFixture(t, []int{30, 60, 90, 120, 150, 180, 210, 240}, 10)
	req := accuracy.Requirement{Alpha: 40, Beta: 0.1}
	q, tr := f.histogramQuery(t, 8, 10, req)
	truth := tr.TrueAnswers(f.table)
	sm := NewSM(strategy.H2, 3000, 9)

	rng := noise.NewRand(31)
	const runs = 1000
	var failures int
	for i := 0; i < runs; i++ {
		res, err := sm.Run(q, tr, f.table, rng)
		if err != nil {
			t.Fatal(err)
		}
		e, err := accuracy.WCQError(truth, res.Counts)
		if err != nil {
			t.Fatal(err)
		}
		if e >= req.Alpha {
			failures++
		}
	}
	rate := float64(failures) / runs
	if rate > req.Beta {
		t.Fatalf("SM failure rate %v exceeds beta %v", rate, req.Beta)
	}
}

func TestSMICQCheaperThanWCQ(t *testing.T) {
	// One-sided accuracy halves the effective failure budget requirement,
	// so ICQ-SM is never more expensive than WCQ-SM at the same (α, β).
	f := newFixture(t, make([]int, 16), 10)
	req := accuracy.Requirement{Alpha: 20, Beta: 0.01}
	q, tr := f.histogramQuery(t, 16, 10, req)
	qi, err := query.NewICQ(q.Predicates, 100, req)
	if err != nil {
		t.Fatal(err)
	}
	sm := NewSM(strategy.H2, 2000, 3)
	cw, err := sm.Translate(q, tr)
	if err != nil {
		t.Fatal(err)
	}
	ci, err := sm.Translate(qi, tr)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Upper > cw.Upper {
		t.Fatalf("ICQ-SM (%v) must not exceed WCQ-SM (%v)", ci.Upper, cw.Upper)
	}
}

func TestSMNotApplicableWhenImplicit(t *testing.T) {
	// Build an implicit transformation (predicates over many attributes).
	attrs := make([]dataset.Attribute, 30)
	preds := make([]dataset.Predicate, 30)
	names := make([]string, 30)
	for i := range attrs {
		names[i] = string(rune('a'+i%26)) + string(rune('a'+i/26))
		attrs[i] = dataset.Attribute{Name: names[i], Kind: dataset.Continuous, Min: 0, Max: 1}
		preds[i] = dataset.NumCmp{Attr: names[i], Op: dataset.Gt, C: 0.5}
	}
	s := dataset.MustSchema(attrs...)
	tr, err := workload.Transform(s, preds, workload.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Materialized() {
		t.Fatal("fixture should be implicit")
	}
	q, err := query.NewWCQ(preds, accuracy.Requirement{Alpha: 10, Beta: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	sm := NewSM(nil, 100, 1)
	if sm.Applicable(q, tr) {
		t.Fatal("SM must not be applicable to implicit workloads")
	}
	// LM still applies.
	if !(LM{}).Applicable(q, tr) {
		t.Fatal("LM must remain applicable")
	}
}

func TestMPMTranslateBounds(t *testing.T) {
	f := newFixture(t, []int{100, 200}, 10)
	req := accuracy.Requirement{Alpha: 10, Beta: 0.05}
	_, tr := f.histogramQuery(t, 2, 10, req)
	q, err := query.NewICQ(tr.Predicates(), 150, req)
	if err != nil {
		t.Fatal(err)
	}
	m := MPM{Pokes: 10}
	cost, err := m.Translate(q, tr)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 * math.Log(10*2/(2*0.05)) / 10
	if math.Abs(cost.Upper-want) > 1e-9 {
		t.Fatalf("MPM upper = %v, want %v", cost.Upper, want)
	}
	if math.Abs(cost.Lower-want/10) > 1e-9 {
		t.Fatalf("MPM lower = %v, want %v", cost.Lower, want/10)
	}
}

// TestMPMDataDependence is the Example 5.4 phenomenon: counts far from the
// threshold let MPM stop after few pokes (low actual ε); counts hugging the
// threshold force many pokes (high actual ε).
func TestMPMDataDependence(t *testing.T) {
	req := accuracy.Requirement{Alpha: 10, Beta: 0.05}
	m := MPM{Pokes: 10}

	runMedian := func(counts []int, c float64) float64 {
		f := newFixture(t, counts, 10)
		_, tr := f.histogramQuery(t, len(counts), 10, req)
		q, err := query.NewICQ(tr.Predicates(), c, req)
		if err != nil {
			t.Fatal(err)
		}
		rng := noise.NewRand(77)
		var epss []float64
		for i := 0; i < 31; i++ {
			res, err := m.Run(q, tr, f.table, rng)
			if err != nil {
				t.Fatal(err)
			}
			epss = append(epss, res.Epsilon)
		}
		return median(epss)
	}

	farEps := runMedian([]int{1000, 0}, 100)  // counts 900 and -100 away
	nearEps := runMedian([]int{105, 95}, 100) // counts 5 away

	if farEps >= nearEps {
		t.Fatalf("far-from-threshold eps %v must be below near-threshold eps %v", farEps, nearEps)
	}
}

// TestExample54 reproduces the paper's Example 5.4 quantitatively: for
// qϕ,>c with c=100, α=10, β=0.1/2... the paper uses β such that LM costs
// ln(1/(2β))/α = 2.23; with count 1000 MPM should stop at its first poke,
// spending about one tenth of its upper bound.
func TestExample54(t *testing.T) {
	// One bin with count 1000, threshold 100.
	f := newFixture(t, []int{1000}, 10)
	req := accuracy.Requirement{Alpha: 10, Beta: 0.1 / 2} // ln(1/(2β))/α ≈ 0.23... scaled below
	_, tr := f.histogramQuery(t, 1, 10, req)
	q, err := query.NewICQ(tr.Predicates(), 100, req)
	if err != nil {
		t.Fatal(err)
	}
	m := MPM{Pokes: 10}
	cost, err := m.Translate(q, tr)
	if err != nil {
		t.Fatal(err)
	}
	rng := noise.NewRand(3)
	firstPokeEps := cost.Upper / 10
	var stoppedEarly int
	const runs = 50
	for i := 0; i < runs; i++ {
		res, err := m.Run(q, tr, f.table, rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.Epsilon <= firstPokeEps+1e-12 {
			stoppedEarly++
		}
	}
	if stoppedEarly < runs*9/10 {
		t.Fatalf("with count 10x the threshold MPM should almost always stop at poke 1; stopped early %d/%d", stoppedEarly, runs)
	}
}

// TestMPMAccuracyGuarantee: MPM must satisfy (α, β)-ICQ accuracy.
func TestMPMAccuracyGuarantee(t *testing.T) {
	f := newFixture(t, []int{300, 80, 150, 20}, 10)
	req := accuracy.Requirement{Alpha: 30, Beta: 0.1}
	_, tr := f.histogramQuery(t, 4, 10, req)
	c := 100.0
	q, err := query.NewICQ(tr.Predicates(), c, req)
	if err != nil {
		t.Fatal(err)
	}
	truth := tr.TrueAnswers(f.table)
	m := MPM{}
	rng := noise.NewRand(55)
	const runs = 500
	var failures int
	for i := 0; i < runs; i++ {
		res, err := m.Run(q, tr, f.table, rng)
		if err != nil {
			t.Fatal(err)
		}
		e, err := accuracy.ICQError(truth, res.Selected, c)
		if err != nil {
			t.Fatal(err)
		}
		if e > req.Alpha {
			failures++
		}
	}
	if rate := float64(failures) / runs; rate > req.Beta {
		t.Fatalf("MPM failure rate %v exceeds beta %v", rate, req.Beta)
	}
}

func TestMPMEpsilonNeverExceedsUpper(t *testing.T) {
	f := newFixture(t, []int{105, 95, 100, 110}, 10)
	req := accuracy.Requirement{Alpha: 5, Beta: 0.05}
	_, tr := f.histogramQuery(t, 4, 10, req)
	q, err := query.NewICQ(tr.Predicates(), 100, req)
	if err != nil {
		t.Fatal(err)
	}
	m := MPM{}
	cost, err := m.Translate(q, tr)
	if err != nil {
		t.Fatal(err)
	}
	rng := noise.NewRand(66)
	for i := 0; i < 100; i++ {
		res, err := m.Run(q, tr, f.table, rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.Epsilon > cost.Upper+1e-12 {
			t.Fatalf("actual eps %v exceeds upper %v", res.Epsilon, cost.Upper)
		}
		if res.Epsilon < cost.Lower-1e-12 {
			t.Fatalf("actual eps %v below lower %v", res.Epsilon, cost.Lower)
		}
	}
}

func TestResultSelectedPredicates(t *testing.T) {
	preds := []dataset.Predicate{
		dataset.NumCmp{Attr: "v", Op: dataset.Gt, C: 1},
		dataset.NumCmp{Attr: "v", Op: dataset.Gt, C: 2},
	}
	r := &Result{Selected: []bool{false, true}}
	sel := r.SelectedPredicates(preds)
	if len(sel) != 1 || sel[0].String() != "v>2" {
		t.Fatalf("selected = %v", sel)
	}
}

func median(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}

// Zero-sensitivity workloads (no domain tuple satisfies any predicate) are
// data independent: exact answers, zero privacy charge. The ER strategies
// pose such queries (e.g. O ∧ ¬p with p already in O).
func TestZeroSensitivityIsFree(t *testing.T) {
	f := newFixture(t, []int{100, 200}, 10)
	req := accuracy.Requirement{Alpha: 10, Beta: 0.05}
	// v > 5 AND v < 3 is unsatisfiable.
	preds := []dataset.Predicate{dataset.And{
		dataset.NumCmp{Attr: "v", Op: dataset.Gt, C: 5},
		dataset.NumCmp{Attr: "v", Op: dataset.Lt, C: 3},
	}}
	tr, err := workload.Transform(f.schema, preds, workload.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Sensitivity() != 0 {
		t.Fatalf("sensitivity = %v, want 0", tr.Sensitivity())
	}
	rng := noise.NewRand(1)

	qw, err := query.NewWCQ(preds, req)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := LM{}.Translate(qw, tr)
	if err != nil {
		t.Fatal(err)
	}
	if cost.Upper != 0 {
		t.Fatalf("LM cost = %v, want 0", cost.Upper)
	}
	res, err := LM{}.Run(qw, tr, f.table, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epsilon != 0 || res.Counts[0] != 0 {
		t.Fatalf("LM free run: eps=%v counts=%v", res.Epsilon, res.Counts)
	}

	qi, err := query.NewICQ(preds, 50, req)
	if err != nil {
		t.Fatal(err)
	}
	mres, err := MPM{}.Run(qi, tr, f.table, rng)
	if err != nil {
		t.Fatal(err)
	}
	if mres.Epsilon != 0 || mres.Selected[0] {
		t.Fatalf("MPM free run: eps=%v sel=%v", mres.Epsilon, mres.Selected)
	}

	sm := NewSM(nil, 200, 1)
	if sm.Applicable(qw, tr) {
		sres, err := sm.Run(qw, tr, f.table, rng)
		if err != nil {
			t.Fatal(err)
		}
		if sres.Epsilon != 0 || sres.Counts[0] != 0 {
			t.Fatalf("SM free run: eps=%v counts=%v", sres.Epsilon, sres.Counts)
		}
	}
}
