package mechanism

import (
	"testing"

	"repro/internal/accuracy"
	"repro/internal/noise"
	"repro/internal/query"
	"repro/internal/strategy"
	"repro/internal/translate"
	"repro/internal/workload"
)

// Regression for the order-dependent Monte-Carlo seeding bug: the sampler
// used to be seeded with m.Seed ^ len(cache)+1, so a workload's ε depended
// on how many workloads the same SM had translated before it, and two
// sessions translating the same workload could disagree. Seeds are now
// canonical (translate.SampleSeed), so ε must be bit-equal across
// translation orders and across SM instances.

func (f *fixture) prefixQuery(t *testing.T, bins int, width float64, req accuracy.Requirement) (*query.Query, *workload.Transformed) {
	t.Helper()
	preds, err := workload.Prefix1D("v", 0, width*float64(bins), width)
	if err != nil {
		t.Fatal(err)
	}
	q, err := query.NewWCQ(preds, req)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.Transform(f.schema, preds, workload.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return q, tr
}

func TestSMEpsilonOrderIndependent(t *testing.T) {
	f := newFixture(t, []int{10, 20, 30, 40, 10, 20, 30, 40}, 10)
	req := accuracy.Requirement{Alpha: 8, Beta: 0.05}
	qh, trh := f.histogramQuery(t, 8, 10, req)
	qp, trp := f.prefixQuery(t, 8, 10, req)

	// Session 1 translates histogram first; session 2 prefix first; session
	// 3 only ever sees the prefix workload. Different SM seeds on purpose:
	// the constructor seed must not influence translation.
	sm1 := NewSM(strategy.H2, 800, 1)
	h1, err := sm1.Translate(qh, trh)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := sm1.Translate(qp, trp)
	if err != nil {
		t.Fatal(err)
	}

	sm2 := NewSM(strategy.H2, 800, 99)
	p2, err := sm2.Translate(qp, trp)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := sm2.Translate(qh, trh)
	if err != nil {
		t.Fatal(err)
	}

	sm3 := NewSM(strategy.H2, 800, 1234)
	p3, err := sm3.Translate(qp, trp)
	if err != nil {
		t.Fatal(err)
	}

	if h1.Upper != h2.Upper {
		t.Fatalf("histogram ε depends on translation order: %v vs %v", h1.Upper, h2.Upper)
	}
	if p1.Upper != p2.Upper || p1.Upper != p3.Upper {
		t.Fatalf("prefix ε depends on order or session: %v / %v / %v", p1.Upper, p2.Upper, p3.Upper)
	}
}

// TestSMSharedSourceMatchesPrivate: reading through a shared per-dataset
// cache must not change ε relative to a private one, and a second SM on
// the shared cache must hit rather than resample.
func TestSMSharedSourceMatchesPrivate(t *testing.T) {
	f := newFixture(t, []int{10, 20, 30, 40}, 10)
	req := accuracy.Requirement{Alpha: 8, Beta: 0.05}
	q, tr := f.histogramQuery(t, 4, 10, req)

	private := NewSM(strategy.H2, 800, 1)
	cPriv, err := private.Translate(q, tr)
	if err != nil {
		t.Fatal(err)
	}

	shared := translate.NewCache("")
	smA := NewSM(strategy.H2, 800, 1)
	smA.Source = shared
	smB := NewSM(strategy.H2, 800, 2)
	smB.Source = shared
	cA, err := smA.Translate(q, tr)
	if err != nil {
		t.Fatal(err)
	}
	cB, err := smB.Translate(q, tr)
	if err != nil {
		t.Fatal(err)
	}

	if cA.Upper != cPriv.Upper || cB.Upper != cPriv.Upper {
		t.Fatalf("shared-cache ε diverged: private %v, shared %v / %v", cPriv.Upper, cA.Upper, cB.Upper)
	}
	if st := shared.Stats(); st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("two SMs on one cache: %+v, want 1 miss 1 hit", st)
	}
}

// TestSMRunPreparedMatchesRun: the prepared path (engine translates at
// admission, executes later) must produce exactly the noise and counts of
// the single-shot Run.
func TestSMRunPreparedMatchesRun(t *testing.T) {
	f := newFixture(t, []int{100, 200, 300, 400}, 10)
	req := accuracy.Requirement{Alpha: 20, Beta: 0.05}
	q, tr := f.histogramQuery(t, 4, 10, req)

	smRun := NewSM(strategy.H2, 800, 1)
	resRun, err := smRun.Run(q, tr, f.table, noise.NewRand(7))
	if err != nil {
		t.Fatal(err)
	}

	smPrep := NewSM(strategy.H2, 800, 1)
	cost, err := smPrep.Translate(q, tr)
	if err != nil {
		t.Fatal(err)
	}
	resPrep, err := smPrep.RunPrepared(q, tr, f.table, noise.NewRand(7), cost)
	if err != nil {
		t.Fatal(err)
	}

	if resRun.Epsilon != resPrep.Epsilon {
		t.Fatalf("ε: run %v, prepared %v", resRun.Epsilon, resPrep.Epsilon)
	}
	if len(resRun.Counts) != len(resPrep.Counts) {
		t.Fatalf("count lengths differ: %d vs %d", len(resRun.Counts), len(resPrep.Counts))
	}
	for i := range resRun.Counts {
		if resRun.Counts[i] != resPrep.Counts[i] {
			t.Fatalf("count[%d]: run %v, prepared %v", i, resRun.Counts[i], resPrep.Counts[i])
		}
	}
}
