// Package mechanism implements APEx's suite of differentially private
// mechanisms (paper §5). Every mechanism exposes the two functions of the
// paper's interface:
//
//   - Translate maps a query plus accuracy requirement (α, β) to a lower and
//     upper bound (εl, εu) on the privacy loss the mechanism would incur.
//   - Run executes the mechanism on the data, returning the noisy answer and
//     the *actual* privacy loss ε (which for data-dependent mechanisms such
//     as the multi-poking mechanism may be below εu).
//
// Implemented mechanisms:
//
//   - LM        — Laplace baseline for WCQ, ICQ, TCQ (Algorithm 2)
//   - SM        — strategy (matrix) mechanism for WCQ and ICQ (Algorithm 3)
//   - MPM       — multi-poking mechanism for ICQ (Algorithm 4)
//   - LTM       — Laplace top-k mechanism for TCQ (Algorithm 5)
package mechanism

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/query"
	"repro/internal/translate"
	"repro/internal/workload"
)

// Cost is the privacy-loss interval returned by Translate. For
// data-independent mechanisms Lower == Upper; for the multi-poking mechanism
// Lower is the best case (one poke) and Upper the worst case (all pokes).
type Cost struct {
	Lower, Upper float64
}

// Result is a mechanism's output.
type Result struct {
	// Counts holds the noisy per-predicate counts (WCQ only).
	Counts []float64
	// Selected marks the returned bin identifiers (ICQ and TCQ only).
	Selected []bool
	// Epsilon is the actual privacy loss charged for this run.
	Epsilon float64
}

// SelectedPredicates maps the selection mask back to predicates.
func (r *Result) SelectedPredicates(preds []dataset.Predicate) []dataset.Predicate {
	var out []dataset.Predicate
	for i, sel := range r.Selected {
		if sel {
			out = append(out, preds[i])
		}
	}
	return out
}

// Mechanism is the common interface of APEx's translation mechanisms.
type Mechanism interface {
	// Name identifies the mechanism in transcripts and experiment tables.
	Name() string
	// Applicable reports whether this mechanism can answer q given its
	// workload transformation.
	Applicable(q *query.Query, tr *workload.Transformed) bool
	// Translate returns the privacy-loss bounds for answering q with the
	// required accuracy (the mechanism's translate function).
	Translate(q *query.Query, tr *workload.Transformed) (Cost, error)
	// Run executes the mechanism (the mechanism's run function). The
	// returned Result's Epsilon is the actual loss; it never exceeds
	// Translate's Upper.
	Run(q *query.Query, tr *workload.Transformed, d *dataset.Table, rng *rand.Rand) (*Result, error)
}

// Prefetch describes the noise-free evaluations a mechanism's Run reads
// from the workload transformation: the partition histogram x = T_W(D)
// and/or the exact per-predicate answers. A batching executor uses it to
// warm the shared per-dataset evaluation cache for many queries in one
// grouped columnar pass before the mechanisms run.
type Prefetch struct {
	Histogram bool
	Truth     bool
}

// Prefetcher is implemented by mechanisms that can declare, ahead of Run,
// which noise-free evaluations they will read. Declaring is optional and
// purely an optimization: a mechanism that understates (or doesn't
// implement the interface) simply computes the evaluation itself inside
// Run, through the same cache.
type Prefetcher interface {
	Prefetch(q *query.Query, tr *workload.Transformed) Prefetch
}

// PreparedRunner is implemented by mechanisms whose Run begins by
// re-deriving state the engine already translated at admission (the
// privacy cost, and with it the cached translation plan). The two-phase
// engine path calls RunPrepared with the admitted plan's cost so execute
// time pays no second binary search. Run must behave exactly like
// Translate followed by RunPrepared with the resulting cost.
type PreparedRunner interface {
	RunPrepared(q *query.Query, tr *workload.Transformed, d *dataset.Table, rng *rand.Rand, cost Cost) (*Result, error)
}

// TranslationWarmer is implemented by mechanisms whose Translate reads a
// Monte-Carlo translation plan that can be precomputed. A batching
// scheduler collects every admitted-to-be query's need before admission
// and warms them with one translate.Source.TranslateBatch call per
// source, so all fresh workloads of a batch share one sampling pass.
// Warming is purely an optimization: an unwarmed plan is computed inside
// Translate through the same source.
type TranslationWarmer interface {
	TranslationNeed(q *query.Query, tr *workload.Transformed) (translate.Source, translate.Item, bool)
}

// ErrNotApplicable is returned by Translate/Run when the mechanism cannot
// answer the query (wrong kind, or a required matrix is unavailable).
var ErrNotApplicable = errors.New("mechanism: not applicable to this query")

func notApplicable(name string, q *query.Query) error {
	return fmt.Errorf("%w: %s cannot answer %s", ErrNotApplicable, name, q.Kind)
}
