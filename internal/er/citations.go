package er

import (
	"fmt"
	"math/rand"
	"strings"
)

// Citation is one bibliographic record with the schema of the Magellan
// citations dataset: three text attributes and a publication year.
type Citation struct {
	Title   string
	Authors string
	Venue   string
	Year    int
}

// Pair is one row of the case-study table: a pair of citation records with
// a ground-truth duplicate label.
type Pair struct {
	R1, R2 Citation
	Match  bool
}

// CitationAttrs lists the record attributes in a stable order.
var CitationAttrs = []string{"title", "authors", "venue", "year"}

// Get returns the string form of the named attribute.
func (c Citation) Get(attr string) string {
	switch attr {
	case "title":
		return c.Title
	case "authors":
		return c.Authors
	case "venue":
		return c.Venue
	case "year":
		if c.Year == 0 {
			return ""
		}
		return fmt.Sprintf("%d", c.Year)
	default:
		return ""
	}
}

var (
	titleWords = []string{
		"efficient", "scalable", "adaptive", "distributed", "parallel",
		"incremental", "approximate", "private", "secure", "robust",
		"query", "processing", "optimization", "indexing", "learning",
		"mining", "integration", "cleaning", "matching", "resolution",
		"entity", "data", "stream", "graph", "database", "knowledge",
		"transaction", "storage", "memory", "cache", "join", "aggregation",
		"sampling", "sketch", "histogram", "workload", "privacy", "exploration",
	}
	venues = []string{
		"SIGMOD Conference", "VLDB", "ICDE", "EDBT", "CIKM", "KDD", "WWW",
		"TKDE", "VLDB Journal", "SIGMOD Record",
	}
	venueAbbrev = map[string]string{
		"SIGMOD Conference": "SIGMOD",
		"VLDB":              "Proc. VLDB Endow.",
		"ICDE":              "Intl. Conf. Data Engineering",
		"EDBT":              "Extending Database Technology",
		"CIKM":              "Conf. Information and Knowledge Management",
		"KDD":               "SIGKDD",
		"WWW":               "World Wide Web Conf.",
		"TKDE":              "IEEE Trans. Knowl. Data Eng.",
		"VLDB Journal":      "VLDBJ",
		"SIGMOD Record":     "SIGMOD Rec.",
	}
	firstNames = []string{
		"james", "mary", "wei", "ling", "ahmed", "fatima", "ivan", "olga",
		"raj", "priya", "ken", "yuki", "hans", "greta", "luis", "maria",
		"sam", "alex", "chris", "dana",
	}
	lastNames = []string{
		"smith", "johnson", "chen", "wang", "kumar", "patel", "mueller",
		"garcia", "tanaka", "kim", "ivanov", "rossi", "silva", "nguyen",
		"brown", "davis", "miller", "wilson", "moore", "taylor",
	}
)

// CitationsConfig controls the synthetic pair generator.
type CitationsConfig struct {
	// Pairs is the number of rows (paper: 4000). Required.
	Pairs int
	// MatchFraction is the fraction of duplicate pairs; 0 means 0.1
	// (matching the blocking-cost cutoff of 550/4000: capturing every
	// match plus a few non-matches must stay under ~14% of the pairs).
	MatchFraction float64
	// NullRate is the chance an attribute value is missing; 0 means 0.03.
	NullRate float64
	// Seed drives the generator.
	Seed int64
}

// GenerateCitations builds a labeled pair table in the style of the
// Magellan citations benchmark: match pairs are perturbed copies (typos,
// venue abbreviations, author initials, token drops) and non-match pairs
// are distinct records, occasionally sharing a venue or year so that the
// similarity space is not trivially separable.
func GenerateCitations(cfg CitationsConfig) []Pair {
	if cfg.MatchFraction == 0 {
		cfg.MatchFraction = 0.1
	}
	if cfg.NullRate == 0 {
		cfg.NullRate = 0.03
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pairs := make([]Pair, 0, cfg.Pairs)
	for i := 0; i < cfg.Pairs; i++ {
		base := randomCitation(rng)
		if rng.Float64() < cfg.MatchFraction {
			dup := perturb(rng, base)
			pairs = append(pairs, Pair{R1: withNulls(rng, base, cfg.NullRate), R2: withNulls(rng, dup, cfg.NullRate), Match: true})
		} else {
			other := randomCitation(rng)
			// Occasionally share a venue/year to create hard negatives.
			if rng.Float64() < 0.3 {
				other.Venue = base.Venue
			}
			if rng.Float64() < 0.3 {
				other.Year = base.Year
			}
			pairs = append(pairs, Pair{R1: withNulls(rng, base, cfg.NullRate), R2: withNulls(rng, other, cfg.NullRate), Match: false})
		}
	}
	return pairs
}

func randomCitation(rng *rand.Rand) Citation {
	nWords := 4 + rng.Intn(5)
	words := make([]string, nWords)
	for i := range words {
		words[i] = titleWords[rng.Intn(len(titleWords))]
	}
	nAuthors := 1 + rng.Intn(3)
	authors := make([]string, nAuthors)
	for i := range authors {
		authors[i] = firstNames[rng.Intn(len(firstNames))] + " " + lastNames[rng.Intn(len(lastNames))]
	}
	return Citation{
		Title:   strings.Join(words, " "),
		Authors: strings.Join(authors, ", "),
		Venue:   venues[rng.Intn(len(venues))],
		Year:    1985 + rng.Intn(35),
	}
}

// perturb produces a duplicate with realistic dirtiness.
func perturb(rng *rand.Rand, c Citation) Citation {
	out := c
	// Title: typos and occasional word drop.
	out.Title = typo(rng, out.Title, 1+rng.Intn(3))
	if rng.Float64() < 0.2 {
		words := strings.Fields(out.Title)
		if len(words) > 3 {
			drop := rng.Intn(len(words))
			out.Title = strings.Join(append(words[:drop], words[drop+1:]...), " ")
		}
	}
	// Authors: initials style half the time, typos otherwise.
	if rng.Float64() < 0.5 {
		out.Authors = initialsStyle(out.Authors)
	} else {
		out.Authors = typo(rng, out.Authors, 1)
	}
	// Venue: abbreviation style.
	if rng.Float64() < 0.6 {
		if ab, ok := venueAbbrev[out.Venue]; ok {
			out.Venue = ab
		}
	}
	// Year: off by one occasionally (data-entry error).
	if rng.Float64() < 0.1 {
		out.Year += rng.Intn(3) - 1
	}
	return out
}

// typo applies n single-character edits (substitute/delete/duplicate).
func typo(rng *rand.Rand, s string, n int) string {
	b := []byte(s)
	for k := 0; k < n && len(b) > 1; k++ {
		i := rng.Intn(len(b))
		switch rng.Intn(3) {
		case 0: // substitute
			b[i] = byte('a' + rng.Intn(26))
		case 1: // delete
			b = append(b[:i], b[i+1:]...)
		default: // duplicate
			b = append(b[:i+1], b[i:]...)
		}
	}
	return string(b)
}

// initialsStyle turns "james smith, wei chen" into "j. smith, w. chen".
func initialsStyle(authors string) string {
	parts := strings.Split(authors, ",")
	for i, p := range parts {
		fields := strings.Fields(p)
		if len(fields) >= 2 {
			fields[0] = fields[0][:1] + "."
			parts[i] = strings.Join(fields, " ")
		}
	}
	return strings.Join(parts, ", ")
}

func withNulls(rng *rand.Rand, c Citation, rate float64) Citation {
	out := c
	if rng.Float64() < rate {
		out.Venue = ""
	}
	if rng.Float64() < rate/2 {
		out.Authors = ""
	}
	if rng.Float64() < rate {
		out.Year = 0
	}
	return out
}
