// Package er implements the entity-resolution substrate of the paper's case
// study (§8 and Appendix C): a synthetic Magellan-style citations pair
// dataset, string transformations and similarity functions, the similarity-
// predicate feature space, the cleaner model of Table 3, and the four
// exploration strategies (BS1/BS2 for blocking, MS1/MS2 for matching) that
// drive APEx with sequences of WCQ/ICQ/TCQ queries.
package er

import (
	"math"
	"sort"
	"strings"
)

// SimFunc identifies one of the similarity functions of the cleaner model's
// space S (Table 3).
type SimFunc string

// The similarity function space S.
const (
	Edit       SimFunc = "edit"
	SmithWater SimFunc = "smithwater"
	Jaro       SimFunc = "jaro"
	Cosine     SimFunc = "cosine"
	Jaccard    SimFunc = "jaccard"
	Overlap    SimFunc = "overlap"
	Diff       SimFunc = "diff"
)

// AllSimFuncs lists the similarity space S in a stable order.
var AllSimFuncs = []SimFunc{Edit, SmithWater, Jaro, Cosine, Jaccard, Overlap, Diff}

// IsTokenBased reports whether the function compares token sets (true) or
// character strings (false).
func (f SimFunc) IsTokenBased() bool {
	switch f {
	case Cosine, Jaccard, Overlap:
		return true
	default:
		return false
	}
}

// clamp01 guards against floating-point drift just outside [0,1].
func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// StringSim computes a character-based similarity in [0,1].
func StringSim(f SimFunc, a, b string) float64 {
	return clamp01(stringSim(f, a, b))
}

func stringSim(f SimFunc, a, b string) float64 {
	switch f {
	case Edit:
		return editSimilarity(a, b)
	case SmithWater:
		return smithWatermanSimilarity(a, b)
	case Jaro:
		return jaroSimilarity(a, b)
	case Diff:
		if a == b {
			return 1
		}
		return 0
	default:
		return 0
	}
}

// TokenSim computes a token-set similarity in [0,1].
func TokenSim(f SimFunc, a, b []string) float64 {
	return clamp01(tokenSim(f, a, b))
}

func tokenSim(f SimFunc, a, b []string) float64 {
	switch f {
	case Cosine:
		return cosineSimilarity(a, b)
	case Jaccard:
		return jaccardSimilarity(a, b)
	case Overlap:
		return overlapSimilarity(a, b)
	default:
		return 0
	}
}

// editSimilarity is 1 - Levenshtein(a,b)/max(len). Empty-vs-empty is 1.
func editSimilarity(a, b string) float64 {
	if a == b {
		return 1
	}
	la, lb := len(a), len(b)
	if la == 0 || lb == 0 {
		return 0
	}
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = minInt(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	dist := prev[lb]
	maxLen := la
	if lb > maxLen {
		maxLen = lb
	}
	return 1 - float64(dist)/float64(maxLen)
}

// smithWatermanSimilarity normalizes the best local-alignment score (match
// +2, mismatch -1, gap -1) by twice the shorter string's length (the maximum
// achievable score).
func smithWatermanSimilarity(a, b string) float64 {
	la, lb := len(a), len(b)
	if la == 0 || lb == 0 {
		if la == lb {
			return 1
		}
		return 0
	}
	const match, mismatch, gap = 2, -1, -1
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	best := 0
	for i := 1; i <= la; i++ {
		for j := 1; j <= lb; j++ {
			s := mismatch
			if a[i-1] == b[j-1] {
				s = match
			}
			v := maxInt(0, prev[j-1]+s, prev[j]+gap, cur[j-1]+gap)
			cur[j] = v
			if v > best {
				best = v
			}
		}
		prev, cur = cur, prev
		for j := range cur {
			cur[j] = 0
		}
	}
	shorter := la
	if lb < shorter {
		shorter = lb
	}
	return float64(best) / float64(match*shorter)
}

// jaroSimilarity is the classic Jaro similarity.
func jaroSimilarity(a, b string) float64 {
	la, lb := len(a), len(b)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := maxInt(la, lb)/2 - 1
	if window < 0 {
		window = 0
	}
	aMatch := make([]bool, la)
	bMatch := make([]bool, lb)
	var matches int
	for i := 0; i < la; i++ {
		lo := maxInt(0, i-window)
		hi := minInt(lb-1, i+window, lb-1)
		for j := lo; j <= hi; j++ {
			if bMatch[j] || a[i] != b[j] {
				continue
			}
			aMatch[i], bMatch[j] = true, true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	var transpositions int
	j := 0
	for i := 0; i < la; i++ {
		if !aMatch[i] {
			continue
		}
		for !bMatch[j] {
			j++
		}
		if a[i] != b[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(la) + m/float64(lb) + (m-t)/m) / 3
}

// cosineSimilarity is the cosine of the token frequency vectors.
func cosineSimilarity(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	fa, fb := freq(a), freq(b)
	var dot, na, nb float64
	for tok, ca := range fa {
		if cb, ok := fb[tok]; ok {
			dot += float64(ca) * float64(cb)
		}
		na += float64(ca) * float64(ca)
	}
	for _, cb := range fb {
		nb += float64(cb) * float64(cb)
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// jaccardSimilarity is |A∩B| / |A∪B| over token sets.
func jaccardSimilarity(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	sa, sb := toSet(a), toSet(b)
	inter := 0
	for tok := range sa {
		if _, ok := sb[tok]; ok {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// overlapSimilarity is |A∩B| / min(|A|, |B|) over token sets.
func overlapSimilarity(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	sa, sb := toSet(a), toSet(b)
	if len(sa) == 0 || len(sb) == 0 {
		return 0
	}
	inter := 0
	for tok := range sa {
		if _, ok := sb[tok]; ok {
			inter++
		}
	}
	return float64(inter) / float64(minInt(len(sa), len(sb)))
}

func freq(tokens []string) map[string]int {
	m := make(map[string]int, len(tokens))
	for _, t := range tokens {
		m[t]++
	}
	return m
}

func toSet(tokens []string) map[string]struct{} {
	m := make(map[string]struct{}, len(tokens))
	for _, t := range tokens {
		m[t] = struct{}{}
	}
	return m
}

// Transformation identifies one of the cleaner model's transformation space
// T: character n-grams or whitespace tokenization.
type Transformation string

// The transformation space T.
const (
	TwoGrams   Transformation = "2grams"
	ThreeGrams Transformation = "3grams"
	SpaceTok   Transformation = "space"
)

// AllTransformations lists T in a stable order.
var AllTransformations = []Transformation{TwoGrams, ThreeGrams, SpaceTok}

// Tokens applies the transformation to a string, producing the token list
// consumed by token-based similarity functions.
func (tr Transformation) Tokens(s string) []string {
	s = Normalize(s)
	switch tr {
	case TwoGrams:
		return ngrams(s, 2)
	case ThreeGrams:
		return ngrams(s, 3)
	case SpaceTok:
		return strings.Fields(s)
	default:
		return nil
	}
}

// Normalize lowercases and collapses whitespace; the character-based
// similarity functions operate on this view for every transformation.
func Normalize(s string) string {
	return strings.Join(strings.Fields(strings.ToLower(s)), " ")
}

func ngrams(s string, n int) []string {
	if len(s) < n {
		if s == "" {
			return nil
		}
		return []string{s}
	}
	out := make([]string, 0, len(s)-n+1)
	for i := 0; i+n <= len(s); i++ {
		out = append(out, s[i:i+n])
	}
	return out
}

// SortedTokens returns the sorted unique tokens (helper for tests).
func SortedTokens(tokens []string) []string {
	set := toSet(tokens)
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

func minInt(xs ...int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func maxInt(xs ...int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
