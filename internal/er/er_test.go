package er

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/noise"
)

func TestGenerateCitationsLabels(t *testing.T) {
	pairs := GenerateCitations(CitationsConfig{Pairs: 2000, Seed: 1})
	if len(pairs) != 2000 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	var matches int
	for _, p := range pairs {
		if p.Match {
			matches++
		}
	}
	frac := float64(matches) / 2000
	if frac < 0.07 || frac > 0.13 {
		t.Fatalf("match fraction %v, want ~0.1", frac)
	}
}

func TestMatchPairsAreSimilar(t *testing.T) {
	pairs := GenerateCitations(CitationsConfig{Pairs: 800, Seed: 2, NullRate: 1e-9})
	var matchSim, nonSim float64
	var nm, nn int
	for _, p := range pairs {
		s := TokenSim(Jaccard, ThreeGrams.Tokens(p.R1.Title), ThreeGrams.Tokens(p.R2.Title))
		if p.Match {
			matchSim += s
			nm++
		} else {
			nonSim += s
			nn++
		}
	}
	avgMatch, avgNon := matchSim/float64(nm), nonSim/float64(nn)
	if avgMatch < avgNon+0.3 {
		t.Fatalf("title similarity must separate labels: match %v vs non %v", avgMatch, avgNon)
	}
}

func TestCitationGet(t *testing.T) {
	c := Citation{Title: "t", Authors: "a", Venue: "v", Year: 1999}
	if c.Get("title") != "t" || c.Get("authors") != "a" || c.Get("venue") != "v" || c.Get("year") != "1999" {
		t.Fatal("Get accessors")
	}
	if c.Get("bogus") != "" {
		t.Fatal("unknown attr must be empty")
	}
	if (Citation{}).Get("year") != "" {
		t.Fatal("zero year renders empty (missing)")
	}
}

func TestFeatureTableShape(t *testing.T) {
	pairs := GenerateCitations(CitationsConfig{Pairs: 50, Seed: 3})
	ft := FeatureTable(pairs)
	wantCols := 4*3*7 + 1
	if ft.Schema().Arity() != wantCols {
		t.Fatalf("arity %d, want %d", ft.Schema().Arity(), wantCols)
	}
	if ft.Size() != 50 {
		t.Fatalf("rows %d", ft.Size())
	}
	// All features in [0,1] or NULL.
	for i := 0; i < ft.Size(); i++ {
		row := ft.Row(i)
		for j := 0; j < wantCols-1; j++ {
			if row[j].IsNull() {
				continue
			}
			v, ok := row[j].AsNum()
			if !ok || v < 0 || v > 1 {
				t.Fatalf("feature (%d,%d) = %v", i, j, row[j])
			}
		}
	}
}

func TestFeatureSeparation(t *testing.T) {
	// The features must separate matches from non-matches on average —
	// otherwise the case study cannot work.
	pairs := GenerateCitations(CitationsConfig{Pairs: 600, Seed: 4})
	ft := FeatureTable(pairs)
	col, ok := ft.Schema().Lookup(FeatureName("title", ThreeGrams, Jaccard))
	if !ok {
		t.Fatal("missing feature column")
	}
	labelIdx, _ := ft.Schema().Lookup("label")
	var sumM, sumN float64
	var nM, nN int
	for i := 0; i < ft.Size(); i++ {
		row := ft.Row(i)
		v, ok := row[col].AsNum()
		if !ok {
			continue
		}
		if lab, _ := row[labelIdx].AsStr(); lab == "MATCH" {
			sumM += v
			nM++
		} else {
			sumN += v
			nN++
		}
	}
	if sumM/float64(nM) < sumN/float64(nN)+0.3 {
		t.Fatalf("feature separation too weak: %v vs %v", sumM/float64(nM), sumN/float64(nN))
	}
}

func TestSimPredicateOverFeatureTable(t *testing.T) {
	pairs := GenerateCitations(CitationsConfig{Pairs: 200, Seed: 5})
	ft := FeatureTable(pairs)
	p := SimPredicate{Attr: "title", Trans: ThreeGrams, Sim: Jaccard, Theta: 0.5}
	caught := ft.Count(p.Predicate())
	if caught == 0 || caught == ft.Size() {
		t.Fatalf("predicate should split the table, caught %d/%d", caught, ft.Size())
	}
}

func TestDNFCNFPredicates(t *testing.T) {
	pairs := GenerateCitations(CitationsConfig{Pairs: 100, Seed: 6})
	ft := FeatureTable(pairs)
	s := ft.Schema()
	if got := ft.Count(DNF{}.Predicate()); got != 0 {
		t.Fatalf("empty DNF must match nothing, got %d", got)
	}
	if got := ft.Count(CNF{}.Predicate()); got != ft.Size() {
		t.Fatalf("empty CNF must match everything, got %d", got)
	}
	p1 := SimPredicate{Attr: "title", Trans: ThreeGrams, Sim: Jaccard, Theta: 0.4}
	p2 := SimPredicate{Attr: "venue", Trans: SpaceTok, Sim: Overlap, Theta: 0.6}
	dnf := DNF{p1, p2}
	cnf := CNF{p1, p2}
	for i := 0; i < ft.Size(); i++ {
		row := ft.Row(i)
		d := dnf.Predicate().Eval(s, row)
		c := cnf.Predicate().Eval(s, row)
		e1, e2 := p1.Predicate().Eval(s, row), p2.Predicate().Eval(s, row)
		if d != (e1 || e2) {
			t.Fatal("DNF semantics")
		}
		if c != (e1 && e2) {
			t.Fatal("CNF semantics")
		}
	}
}

func TestQualityMetrics(t *testing.T) {
	pairs := GenerateCitations(CitationsConfig{Pairs: 400, Seed: 7})
	ft := FeatureTable(pairs)
	// A reasonable title predicate should yield decent blocking recall with
	// sub-linear cost.
	block := DNF{{Attr: "title", Trans: ThreeGrams, Sim: Jaccard, Theta: 0.4}}
	recall, cost := BlockingQuality(ft, block)
	if recall < 0.6 {
		t.Fatalf("recall %v too low for an easy blocking predicate", recall)
	}
	if cost >= 1 {
		t.Fatalf("cost %v", cost)
	}
	prec, rec, f1 := MatchingQuality(ft, CNF{{Attr: "title", Trans: ThreeGrams, Sim: Jaccard, Theta: 0.5}})
	if prec <= 0 || rec <= 0 || f1 <= 0 {
		t.Fatalf("matching quality: p=%v r=%v f1=%v", prec, rec, f1)
	}
	// Empty blocking: zero recall, zero cost.
	r0, c0 := BlockingQuality(ft, nil)
	if r0 != 0 || c0 != 0 {
		t.Fatalf("empty blocking: r=%v c=%v", r0, c0)
	}
}

func TestSampleCleanerRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 100; i++ {
		c := SampleCleaner(rng)
		if c.NumAttrs < 2 || c.NumAttrs > 4 {
			t.Fatalf("NumAttrs %d", c.NumAttrs)
		}
		if len(c.Transforms) < 1 || len(c.Transforms) > 3 {
			t.Fatalf("Transforms %v", c.Transforms)
		}
		if len(c.Sims) < 2 || len(c.Sims) > 6 {
			t.Fatalf("Sims %v", c.Sims)
		}
		if c.ThetaLo <= 0 || c.ThetaLo >= 0.5 || c.ThetaHi <= 0.5 || c.ThetaHi >= 1 {
			t.Fatalf("theta range [%v,%v]", c.ThetaLo, c.ThetaHi)
		}
		if c.MinMatchCaught < 0.2 || c.MinMatchCaught > 0.5 {
			t.Fatalf("x8 = %v", c.MinMatchCaught)
		}
		if c.MaxNonMatchCaught < 0.1 || c.MaxNonMatchCaught > 0.2 {
			t.Fatalf("x9 = %v", c.MaxNonMatchCaught)
		}
		if c.Relax != 2 && c.Relax != 3 {
			t.Fatalf("x10 = %v", c.Relax)
		}
		thetas := c.Thetas()
		if len(thetas) != c.NumThetas {
			t.Fatalf("thetas %v", thetas)
		}
	}
}

func TestCleanerThetaOrdering(t *testing.T) {
	c := Cleaner{ThetaLo: 0.2, ThetaHi: 0.8, NumThetas: 4, ThetaDescending: true}
	th := c.Thetas()
	for i := 1; i < len(th); i++ {
		if th[i] >= th[i-1] {
			t.Fatalf("descending thetas: %v", th)
		}
	}
	c.ThetaDescending = false
	th = c.Thetas()
	for i := 1; i < len(th); i++ {
		if th[i] <= th[i-1] {
			t.Fatalf("ascending thetas: %v", th)
		}
	}
	one := Cleaner{ThetaLo: 0.2, ThetaHi: 0.8, NumThetas: 1}
	if got := one.Thetas(); len(got) != 1 || got[0] != 0.5 {
		t.Fatalf("single theta = %v", got)
	}
}

func TestCleanerStyles(t *testing.T) {
	alpha := 10.0
	if (Cleaner{Style: Neutral}).AdjustNoisy(5, alpha) != 5 {
		t.Fatal("neutral")
	}
	if (Cleaner{Style: OptimisticStyle}).AdjustNoisy(5, alpha) != 7 {
		t.Fatal("optimistic")
	}
	if (Cleaner{Style: PessimisticStyle}).AdjustNoisy(5, alpha) != 3 {
		t.Fatal("pessimistic")
	}
}

func TestCandidatePredicatesDeterministicOrder(t *testing.T) {
	c := Cleaner{
		NumAttrs: 2, Transforms: []Transformation{TwoGrams},
		Sims: []SimFunc{Jaccard, Edit}, ThetaLo: 0.2, ThetaHi: 0.8,
		NumThetas: 2, PredOrderSeed: 99,
	}
	a := c.CandidatePredicates([]string{"title", "venue"})
	b := c.CandidatePredicates([]string{"title", "venue"})
	if len(a) != 2*1*2*2 {
		t.Fatalf("candidate count %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("candidate order must be deterministic per cleaner")
		}
	}
}

// featureTableCache shares an expensive feature table across strategy tests.
var (
	ftOnce  sync.Once
	ftTable *dataset.Table
)

func sharedFeatureTable(t *testing.T) *dataset.Table {
	t.Helper()
	ftOnce.Do(func() {
		pairs := GenerateCitations(CitationsConfig{Pairs: 500, Seed: 11})
		ftTable = FeatureTable(pairs)
	})
	return ftTable
}

func newTask(t *testing.T, budget float64, seed int64) *Task {
	t.Helper()
	ft := sharedFeatureTable(t)
	eng, err := engine.New(ft, engine.Config{
		Budget: budget,
		Mode:   engine.Optimistic,
		Rng:    noise.NewRand(seed),
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	cl := SampleCleaner(rng)
	return &Task{
		Table:   ft,
		Engine:  eng,
		Cleaner: cl,
		Alpha:   0.08 * float64(ft.Size()),
		Beta:    0.0005,
	}
}

func TestRunBS1EndToEnd(t *testing.T) {
	task := newTask(t, 2.0, 21)
	block, err := RunBS1(task)
	if err != nil {
		t.Fatal(err)
	}
	recall, cost := BlockingQuality(task.Table, block)
	t.Logf("BS1: |O|=%d recall=%.3f cost=%.3f spent=%.3f", len(block), recall, cost, task.Engine.Spent())
	if task.Engine.Spent() > task.Engine.Budget()+1e-9 {
		t.Fatal("budget exceeded")
	}
	if len(task.Engine.Transcript()) == 0 {
		t.Fatal("no queries issued")
	}
}

func TestRunBS2EndToEnd(t *testing.T) {
	task := newTask(t, 2.0, 22)
	block, err := RunBS2(task)
	if err != nil {
		t.Fatal(err)
	}
	recall, cost := BlockingQuality(task.Table, block)
	t.Logf("BS2: |O|=%d recall=%.3f cost=%.3f spent=%.3f", len(block), recall, cost, task.Engine.Spent())
	if task.Engine.Spent() > task.Engine.Budget()+1e-9 {
		t.Fatal("budget exceeded")
	}
}

func TestRunMS1EndToEnd(t *testing.T) {
	task := newTask(t, 2.0, 23)
	match, err := RunMS1(task)
	if err != nil {
		t.Fatal(err)
	}
	p, r, f1 := MatchingQuality(task.Table, match)
	t.Logf("MS1: |O|=%d p=%.3f r=%.3f f1=%.3f spent=%.3f", len(match), p, r, f1, task.Engine.Spent())
	if task.Engine.Spent() > task.Engine.Budget()+1e-9 {
		t.Fatal("budget exceeded")
	}
}

func TestRunMS2EndToEnd(t *testing.T) {
	task := newTask(t, 2.0, 24)
	match, err := RunMS2(task)
	if err != nil {
		t.Fatal(err)
	}
	p, r, f1 := MatchingQuality(task.Table, match)
	t.Logf("MS2: |O|=%d p=%.3f r=%.3f f1=%.3f spent=%.3f", len(match), p, r, f1, task.Engine.Spent())
	if task.Engine.Spent() > task.Engine.Budget()+1e-9 {
		t.Fatal("budget exceeded")
	}
}

func TestStrategiesStopCleanlyOnTinyBudget(t *testing.T) {
	task := newTask(t, 0.0001, 25)
	block, err := RunBS1(task)
	if err != nil {
		t.Fatal(err)
	}
	if len(block) != 0 {
		t.Fatalf("tiny budget should deny everything, got |O|=%d", len(block))
	}
	if task.Engine.Spent() != 0 {
		t.Fatal("denied strategy must not spend")
	}
}
