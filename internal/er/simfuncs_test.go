package er

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEditSimilarity(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"", "", 1},
		{"abc", "abc", 1},
		{"abc", "", 0},
		{"", "abc", 0},
		{"kitten", "sitting", 1 - 3.0/7},
		{"abc", "abd", 1 - 1.0/3},
	}
	for _, c := range cases {
		if got := StringSim(Edit, c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("edit(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestJaroSimilarity(t *testing.T) {
	// Classic reference values.
	if got := StringSim(Jaro, "MARTHA", "MARHTA"); math.Abs(got-0.944444) > 1e-4 {
		t.Fatalf("jaro(MARTHA,MARHTA) = %v", got)
	}
	if got := StringSim(Jaro, "DIXON", "DICKSONX"); math.Abs(got-0.766667) > 1e-4 {
		t.Fatalf("jaro(DIXON,DICKSONX) = %v", got)
	}
	if got := StringSim(Jaro, "", ""); got != 1 {
		t.Fatalf("jaro empty = %v", got)
	}
	if got := StringSim(Jaro, "a", ""); got != 0 {
		t.Fatalf("jaro one-empty = %v", got)
	}
	if got := StringSim(Jaro, "abc", "xyz"); got != 0 {
		t.Fatalf("jaro disjoint = %v", got)
	}
}

func TestSmithWaterman(t *testing.T) {
	if got := StringSim(SmithWater, "abc", "abc"); got != 1 {
		t.Fatalf("SW identical = %v", got)
	}
	if got := StringSim(SmithWater, "abc", "xyz"); got != 0 {
		t.Fatalf("SW disjoint = %v", got)
	}
	// Substring alignment scores fully for the shorter string.
	if got := StringSim(SmithWater, "abc", "xxabcxx"); got != 1 {
		t.Fatalf("SW substring = %v", got)
	}
}

func TestDiffSim(t *testing.T) {
	if StringSim(Diff, "x", "x") != 1 || StringSim(Diff, "x", "y") != 0 {
		t.Fatal("diff must be exact match")
	}
}

func TestTokenSims(t *testing.T) {
	a := []string{"data", "base", "systems"}
	b := []string{"data", "base", "theory"}
	if got := TokenSim(Jaccard, a, b); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("jaccard = %v, want 0.5", got)
	}
	if got := TokenSim(Overlap, a, b); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("overlap = %v, want 2/3", got)
	}
	cos := TokenSim(Cosine, a, b)
	if math.Abs(cos-2.0/3) > 1e-12 {
		t.Fatalf("cosine = %v, want 2/3", cos)
	}
	if got := TokenSim(Jaccard, nil, nil); got != 1 {
		t.Fatalf("jaccard empty = %v", got)
	}
	if got := TokenSim(Cosine, a, nil); got != 0 {
		t.Fatalf("cosine one-empty = %v", got)
	}
}

func TestTransformations(t *testing.T) {
	toks := TwoGrams.Tokens("ab cd")
	// Normalized "ab cd" has 2-grams: "ab","b ", " c","cd".
	if len(toks) != 4 {
		t.Fatalf("2grams = %v", toks)
	}
	toks3 := ThreeGrams.Tokens("abcd")
	if len(toks3) != 2 || toks3[0] != "abc" || toks3[1] != "bcd" {
		t.Fatalf("3grams = %v", toks3)
	}
	words := SpaceTok.Tokens("  Hello   World ")
	if len(words) != 2 || words[0] != "hello" || words[1] != "world" {
		t.Fatalf("space tokens = %v", words)
	}
	if got := TwoGrams.Tokens(""); got != nil {
		t.Fatalf("empty string tokens = %v", got)
	}
	if got := TwoGrams.Tokens("a"); len(got) != 1 || got[0] != "a" {
		t.Fatalf("short string tokens = %v", got)
	}
}

func TestNormalize(t *testing.T) {
	if got := Normalize("  A  B\tC "); got != "a b c" {
		t.Fatalf("Normalize = %q", got)
	}
}

// Property: all similarity functions land in [0,1] and are symmetric, and
// identical inputs score 1.
func TestQuickSimilarityProperties(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 40 {
			a = a[:40]
		}
		if len(b) > 40 {
			b = b[:40]
		}
		for _, sf := range []SimFunc{Edit, SmithWater, Jaro, Diff} {
			ab := StringSim(sf, a, b)
			ba := StringSim(sf, b, a)
			if ab < -1e-12 || ab > 1+1e-12 {
				return false
			}
			if math.Abs(ab-ba) > 1e-9 {
				return false
			}
			if StringSim(sf, a, a) != 1 {
				return false
			}
		}
		ta, tb := SpaceTok.Tokens(a), SpaceTok.Tokens(b)
		for _, sf := range []SimFunc{Cosine, Jaccard, Overlap} {
			ab := TokenSim(sf, ta, tb)
			ba := TokenSim(sf, tb, ta)
			if ab < -1e-12 || ab > 1+1e-12 || math.Abs(ab-ba) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSortedTokens(t *testing.T) {
	got := SortedTokens([]string{"b", "a", "b"})
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("SortedTokens = %v", got)
	}
}
