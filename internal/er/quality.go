package er

import (
	"repro/internal/dataset"
)

// BlockingQuality evaluates a blocking function on the ground truth:
// recall is the fraction of true match pairs captured by the DNF, and cost
// is the fraction of all pairs captured (the blocking cost of §8.1).
func BlockingQuality(table *dataset.Table, block DNF) (recall, cost float64) {
	pred := block.Predicate()
	s := table.Schema()
	labelIdx, _ := s.Lookup("label")
	var matches, caughtMatches, caught int
	for i := 0; i < table.Size(); i++ {
		row := table.Row(i)
		isMatch := false
		if v, ok := row[labelIdx].AsStr(); ok {
			isMatch = v == "MATCH"
		}
		captured := pred.Eval(s, row)
		if isMatch {
			matches++
			if captured {
				caughtMatches++
			}
		}
		if captured {
			caught++
		}
	}
	if matches > 0 {
		recall = float64(caughtMatches) / float64(matches)
	}
	if table.Size() > 0 {
		cost = float64(caught) / float64(table.Size())
	}
	return recall, cost
}

// MatchingQuality evaluates a matching function: precision and recall of
// the CNF against the ground-truth labels, and their harmonic mean F1.
func MatchingQuality(table *dataset.Table, match CNF) (precision, recall, f1 float64) {
	pred := match.Predicate()
	s := table.Schema()
	labelIdx, _ := s.Lookup("label")
	var tp, fp, fn int
	for i := 0; i < table.Size(); i++ {
		row := table.Row(i)
		isMatch := false
		if v, ok := row[labelIdx].AsStr(); ok {
			isMatch = v == "MATCH"
		}
		predicted := pred.Eval(s, row)
		switch {
		case predicted && isMatch:
			tp++
		case predicted && !isMatch:
			fp++
		case !predicted && isMatch:
			fn++
		}
	}
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		recall = float64(tp) / float64(tp+fn)
	}
	if precision+recall > 0 {
		f1 = 2 * precision * recall / (precision + recall)
	}
	return precision, recall, f1
}
