package er

import (
	"fmt"
	"strconv"

	"repro/internal/dataset"
)

// FeatureName renders the table attribute name of the similarity feature
// for the predicate family (attr, transformation, simFunc).
func FeatureName(attr string, tr Transformation, sim SimFunc) string {
	return attr + "|" + string(tr) + "|" + string(sim)
}

// FeatureTable materializes the APEx-visible table for the case study:
// one row per citation pair, one continuous [0,1] attribute per
// (record attribute × transformation × similarity function) combination,
// plus the ground-truth label. A feature is NULL when either record's
// attribute is missing — exactly the IS NULL semantics the strategies'
// first query q1 relies on.
//
// Character-based similarities do not depend on the tokenization, so they
// are computed once per (attr, sim) and reused across transformations.
func FeatureTable(pairs []Pair) *dataset.Table {
	attrs := make([]dataset.Attribute, 0, len(CitationAttrs)*len(AllTransformations)*len(AllSimFuncs)+1)
	for _, a := range CitationAttrs {
		for _, tr := range AllTransformations {
			for _, sf := range AllSimFuncs {
				attrs = append(attrs, dataset.Attribute{
					Name: FeatureName(a, tr, sf),
					Kind: dataset.Continuous,
					Min:  0,
					Max:  1,
				})
			}
		}
	}
	attrs = append(attrs, dataset.Attribute{
		Name:   "label",
		Kind:   dataset.Categorical,
		Values: []string{"MATCH", "NON-MATCH"},
	})
	schema := dataset.MustSchema(attrs...)
	table := dataset.NewTable(schema)

	for _, p := range pairs {
		row := make(dataset.Tuple, schema.Arity())
		col := 0
		for _, a := range CitationAttrs {
			v1, v2 := p.R1.Get(a), p.R2.Get(a)
			missing := v1 == "" || v2 == ""
			// Cache char-based sims once per attribute.
			charSim := map[SimFunc]float64{}
			if !missing {
				n1, n2 := Normalize(v1), Normalize(v2)
				for _, sf := range AllSimFuncs {
					if !sf.IsTokenBased() {
						charSim[sf] = attrSim(sf, a, n1, n2)
					}
				}
			}
			for _, tr := range AllTransformations {
				var toks1, toks2 []string
				if !missing {
					toks1, toks2 = tr.Tokens(v1), tr.Tokens(v2)
				}
				for _, sf := range AllSimFuncs {
					if missing {
						row[col] = dataset.Null
					} else if sf.IsTokenBased() {
						row[col] = dataset.Num(TokenSim(sf, toks1, toks2))
					} else {
						row[col] = dataset.Num(charSim[sf])
					}
					col++
				}
			}
		}
		label := "NON-MATCH"
		if p.Match {
			label = "MATCH"
		}
		row[col] = dataset.Str(label)
		table.MustAppend(row)
	}
	return table
}

// attrSim computes a character similarity with the year attribute treated
// numerically for Diff (1 - |Δyear|/5, clamped), matching the cleaner
// model's numeric-difference predicate.
func attrSim(sf SimFunc, attr, n1, n2 string) float64 {
	if sf == Diff && attr == "year" {
		y1, err1 := strconv.Atoi(n1)
		y2, err2 := strconv.Atoi(n2)
		if err1 == nil && err2 == nil {
			d := float64(y1 - y2)
			if d < 0 {
				d = -d
			}
			v := 1 - d/5
			if v < 0 {
				v = 0
			}
			return v
		}
	}
	return StringSim(sf, n1, n2)
}

// SimPredicate is a similarity predicate p = (A, t, sim, θ): it holds when
// sim(t(r1.A), t(r2.A)) > θ. Over the feature table this is a simple
// comparison on the precomputed feature column.
type SimPredicate struct {
	Attr  string
	Trans Transformation
	Sim   SimFunc
	Theta float64
}

// String implements fmt.Stringer.
func (p SimPredicate) String() string {
	return fmt.Sprintf("%s(%s(%s))>%.3f", p.Sim, p.Trans, p.Attr, p.Theta)
}

// Predicate converts the similarity predicate to a dataset predicate over
// the feature table.
func (p SimPredicate) Predicate() dataset.Predicate {
	return dataset.NumCmp{Attr: FeatureName(p.Attr, p.Trans, p.Sim), Op: dataset.Gt, C: p.Theta}
}

// DNF is a disjunction of similarity predicates (a blocking function Pb).
type DNF []SimPredicate

// Predicate converts the DNF to a dataset predicate; an empty DNF matches
// nothing.
func (d DNF) Predicate() dataset.Predicate {
	if len(d) == 0 {
		return dataset.Not{P: dataset.True{}}
	}
	or := make(dataset.Or, len(d))
	for i, p := range d {
		or[i] = p.Predicate()
	}
	return or
}

// CNF is a conjunction of similarity predicates (a matching function Pm).
type CNF []SimPredicate

// Predicate converts the CNF to a dataset predicate; an empty CNF matches
// everything.
func (c CNF) Predicate() dataset.Predicate {
	if len(c) == 0 {
		return dataset.True{}
	}
	and := make(dataset.And, len(c))
	for i, p := range c {
		and[i] = p.Predicate()
	}
	return and
}
