package er

import (
	"math/rand"
)

// Style is the cleaner's attitude to noisy answers (Table 3, c6).
type Style int

// Cleaner styles.
const (
	// Neutral trusts the noisy answer as is.
	Neutral Style = iota
	// OptimisticStyle adds α/5 to noisy answers before deciding.
	OptimisticStyle
	// PessimisticStyle subtracts α/5 from noisy answers before deciding.
	PessimisticStyle
)

// Cleaner is one concrete sample from the cleaner model C = (x1..x11) of
// Table 3: the parameters that drive a blocking or matching exploration.
type Cleaner struct {
	// Attrs is x1: the ordered attribute subset (chosen by null counts at
	// run time; NumAttrs fixes its size).
	NumAttrs int
	// Transforms is x2: the transformation subset.
	Transforms []Transformation
	// Sims is x3: the similarity-function subset.
	Sims []SimFunc
	// ThetaLo and ThetaHi are x4, x5: the threshold range.
	ThetaLo, ThetaHi float64
	// NumThetas is x6: how many thresholds to try, evenly spaced.
	NumThetas int
	// ThetaDescending orders thresholds high-to-low when true.
	ThetaDescending bool
	// MinMatchCaught is x8: minimum fraction of remaining matches a
	// blocking predicate must catch.
	MinMatchCaught float64
	// MaxNonMatchCaught is x9: maximum fraction of remaining non-matches a
	// blocking predicate may catch.
	MaxNonMatchCaught float64
	// Relax is x10: when every candidate was rejected and O is empty,
	// MinMatchCaught /= Relax and MaxNonMatchCaught *= Relax.
	Relax float64
	// Style is x11.
	Style Style
	// MaxPruneMatch / MinPruneNonMatch are the matching-task criteria
	// (Figure 9): a predicate may prune at most this fraction of captured
	// matches and must prune at least this fraction of captured non-matches.
	MaxPruneMatch    float64
	MinPruneNonMatch float64
	// PredOrderSeed is x7: the permutation seed for the candidate order.
	PredOrderSeed int64
	// BlockingCostCutoff is the maximum fraction of pairs a blocking
	// function may capture (the paper's 550/4000 hardware cutoff).
	BlockingCostCutoff float64
}

// SampleCleaner draws one concrete cleaner from the model's parameter space
// (Table 3).
func SampleCleaner(rng *rand.Rand) Cleaner {
	trs := sampleSubset(rng, AllTransformations, 1+rng.Intn(3))
	sims := sampleSubset(rng, AllSimFuncs, 2+rng.Intn(5))
	c := Cleaner{
		NumAttrs:           2 + rng.Intn(3), // 2..4 of the citation attrs
		Transforms:         trs,
		Sims:               sims,
		ThetaLo:            0.05 + rng.Float64()*0.45, // (0, 0.5)
		ThetaHi:            0.5 + rng.Float64()*0.45,  // (0.5, 1)
		NumThetas:          2 + rng.Intn(5),           // {2..6}
		ThetaDescending:    rng.Intn(2) == 0,
		MinMatchCaught:     0.2 + rng.Float64()*0.3,  // [0.2, 0.5]
		MaxNonMatchCaught:  0.1 + rng.Float64()*0.1,  // [0.1, 0.2]
		Relax:              float64(2 + rng.Intn(2)), // {2, 3}
		Style:              Style(rng.Intn(3)),
		MaxPruneMatch:      0.01 + rng.Float64()*0.04, // ~1-5%
		MinPruneNonMatch:   0.3 + rng.Float64()*0.3,   // ~30-60%
		PredOrderSeed:      rng.Int63(),
		BlockingCostCutoff: 550.0 / 4000.0,
	}
	return c
}

// sampleSubset draws k distinct elements preserving a shuffled order.
func sampleSubset[T any](rng *rand.Rand, pool []T, k int) []T {
	if k > len(pool) {
		k = len(pool)
	}
	idx := rng.Perm(len(pool))[:k]
	out := make([]T, k)
	for i, j := range idx {
		out[i] = pool[j]
	}
	return out
}

// Thetas returns the cleaner's evenly spaced threshold list in its chosen
// order (c4).
func (c Cleaner) Thetas() []float64 {
	n := c.NumThetas
	if n < 1 {
		n = 1
	}
	out := make([]float64, n)
	if n == 1 {
		out[0] = (c.ThetaLo + c.ThetaHi) / 2
	} else {
		step := (c.ThetaHi - c.ThetaLo) / float64(n-1)
		for i := range out {
			out[i] = c.ThetaLo + float64(i)*step
		}
	}
	if c.ThetaDescending {
		for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
			out[i], out[j] = out[j], out[i]
		}
	}
	return out
}

// CandidatePredicates enumerates P = attrs × transforms × sims × thetas in
// the cleaner's exploration order x7 (c5a).
func (c Cleaner) CandidatePredicates(attrs []string) []SimPredicate {
	var out []SimPredicate
	for _, a := range attrs {
		for _, tr := range c.Transforms {
			for _, sf := range c.Sims {
				for _, th := range c.Thetas() {
					out = append(out, SimPredicate{Attr: a, Trans: tr, Sim: sf, Theta: th})
				}
			}
		}
	}
	rng := rand.New(rand.NewSource(c.PredOrderSeed))
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// AdjustNoisy applies the cleaner's style (c6): optimistic cleaners inflate
// noisy answers by α/5, pessimistic ones deflate them.
func (c Cleaner) AdjustNoisy(v, alpha float64) float64 {
	switch c.Style {
	case OptimisticStyle:
		return v + alpha/5
	case PessimisticStyle:
		return v - alpha/5
	default:
		return v
	}
}
