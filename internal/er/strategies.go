package er

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/accuracy"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/query"
)

// Task bundles everything one exploration strategy needs: the feature
// table, an APEx engine over it, a concrete cleaner, and the accuracy
// requirement each issued query carries.
type Task struct {
	Table   *dataset.Table
	Engine  *engine.Engine
	Cleaner Cleaner
	// Alpha is the accuracy bound in count units (e.g. 0.008·|D|).
	Alpha float64
	// Beta is the per-query failure probability.
	Beta float64
}

func (t *Task) req() accuracy.Requirement {
	return accuracy.Requirement{Alpha: t.Alpha, Beta: t.Beta}
}

// repFeature returns the representative feature column used for null
// counting on a record attribute (nulls are identical across features of
// the same attribute).
func repFeature(attr string) string {
	return FeatureName(attr, AllTransformations[0], AllSimFuncs[0])
}

// chooseAttrsWCQ is q1 of BS1/MS1: a WCQ counting nulls per attribute, then
// picking the Cleaner.NumAttrs attributes with the fewest (noisy) nulls.
func (t *Task) chooseAttrsWCQ() ([]string, error) {
	preds := make([]dataset.Predicate, len(CitationAttrs))
	for i, a := range CitationAttrs {
		preds[i] = dataset.IsNull{Attr: repFeature(a)}
	}
	q, err := query.NewWCQ(preds, t.req())
	if err != nil {
		return nil, err
	}
	ans, err := t.Engine.Ask(q)
	if err != nil {
		return nil, err
	}
	type pair struct {
		attr  string
		nulls float64
	}
	ps := make([]pair, len(CitationAttrs))
	for i, a := range CitationAttrs {
		ps[i] = pair{a, ans.Counts[i]}
	}
	sort.SliceStable(ps, func(i, j int) bool { return ps[i].nulls < ps[j].nulls })
	n := t.Cleaner.NumAttrs
	if n > len(ps) {
		n = len(ps)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = ps[i].attr
	}
	return out, nil
}

// chooseAttrsTCQ is q1' of BS2/MS2: a top-k query for the attributes with
// the most non-null values (equivalently the fewest nulls).
func (t *Task) chooseAttrsTCQ() ([]string, error) {
	preds := make([]dataset.Predicate, len(CitationAttrs))
	for i, a := range CitationAttrs {
		preds[i] = dataset.Not{P: dataset.IsNull{Attr: repFeature(a)}}
	}
	k := t.Cleaner.NumAttrs
	if k > len(preds) {
		k = len(preds)
	}
	q, err := query.NewTCQ(preds, k, t.req())
	if err != nil {
		return nil, err
	}
	ans, err := t.Engine.Ask(q)
	if err != nil {
		return nil, err
	}
	var out []string
	for i, sel := range ans.Selected {
		if sel {
			out = append(out, CitationAttrs[i])
		}
	}
	return out, nil
}

// labelCounts asks one WCQ for the (noisy) number of MATCH and NON-MATCH
// rows — the strategies' starting totals.
func (t *Task) labelCounts() (matches, nonMatches float64, err error) {
	preds := []dataset.Predicate{
		dataset.StrEq{Attr: "label", Val: "MATCH"},
		dataset.StrEq{Attr: "label", Val: "NON-MATCH"},
	}
	q, err := query.NewWCQ(preds, t.req())
	if err != nil {
		return 0, 0, err
	}
	ans, err := t.Engine.Ask(q)
	if err != nil {
		return 0, 0, err
	}
	m := t.Cleaner.AdjustNoisy(ans.Counts[0], t.Alpha)
	n := t.Cleaner.AdjustNoisy(ans.Counts[1], t.Alpha)
	return clampNonNeg(m), clampNonNeg(n), nil
}

// RunBS1 executes blocking strategy 1 (Figure 8a): WCQ-only exploration
// that grows a disjunction O of similarity predicates. It stops when the
// engine denies a query (budget exhausted) or candidates run out; the DNF
// built so far is always returned.
func RunBS1(t *Task) (DNF, error) {
	attrs, err := t.chooseAttrsWCQ()
	if err != nil {
		return nil, ignoreDenial(err)
	}
	return t.blockingLoop(attrs, t.blockCandidateWCQ)
}

// RunBS2 executes blocking strategy 2 (Figure 8b): attribute choice via
// TCQ, per-candidate checks via ICQ.
func RunBS2(t *Task) (DNF, error) {
	attrs, err := t.chooseAttrsTCQ()
	if err != nil {
		return nil, ignoreDenial(err)
	}
	return t.blockingLoop(attrs, t.blockCandidateICQ)
}

// blockCandidate evaluates one candidate; it returns whether to accept,
// and estimated caught match/non-match counts for bookkeeping.
type blockCandidate func(o DNF, p SimPredicate, remM, remN float64) (accept bool, caughtM, caughtN float64, err error)

func (t *Task) blockingLoop(attrs []string, check blockCandidate) (DNF, error) {
	remM, remN, err := t.labelCounts()
	if err != nil {
		return nil, ignoreDenial(err)
	}
	cutoff := t.Cleaner.BlockingCostCutoff * float64(t.Table.Size())
	var o DNF
	var captured float64
	minCatch, maxCatch := t.Cleaner.MinMatchCaught, t.Cleaner.MaxNonMatchCaught
	candidates := t.Cleaner.CandidatePredicates(attrs)
	for round := 0; round < 3; round++ {
		for _, p := range candidates {
			if remM <= t.Alpha/5 {
				return o, nil // essentially all matches captured
			}
			accept, cm, cn, err := check(o, p, remM*minCatch, remN*maxCatch)
			if err != nil {
				return o, ignoreDenial(err)
			}
			if !accept {
				continue
			}
			if captured+cm+cn > cutoff {
				continue // would blow the blocking-cost budget
			}
			o = append(o, p)
			captured += cm + cn
			remM = clampNonNeg(remM - cm)
			remN = clampNonNeg(remN - cn)
		}
		if len(o) > 0 {
			return o, nil
		}
		// All candidates rejected with an empty O: relax the criteria (x10).
		minCatch /= t.Cleaner.Relax
		maxCatch *= t.Cleaner.Relax
	}
	return o, nil
}

// blockCandidateWCQ is BS1's q5a/q5b pair, posed as a single two-predicate
// WCQ: counts of remaining matches and non-matches caught by p.
func (t *Task) blockCandidateWCQ(o DNF, p SimPredicate, needM, allowN float64) (bool, float64, float64, error) {
	notO := dataset.Not{P: o.Predicate()}
	preds := []dataset.Predicate{
		dataset.And{notO, p.Predicate(), dataset.StrEq{Attr: "label", Val: "MATCH"}},
		dataset.And{notO, p.Predicate(), dataset.StrEq{Attr: "label", Val: "NON-MATCH"}},
	}
	q, err := query.NewWCQ(preds, t.req())
	if err != nil {
		return false, 0, 0, err
	}
	ans, err := t.Engine.Ask(q)
	if err != nil {
		return false, 0, 0, err
	}
	cm := clampNonNeg(t.Cleaner.AdjustNoisy(ans.Counts[0], t.Alpha))
	cn := clampNonNeg(t.Cleaner.AdjustNoisy(ans.Counts[1], t.Alpha))
	accept := cm > needM && cn < allowN
	return accept, cm, cn, nil
}

// blockCandidateICQ is BS2's q5a'/q5b': two single-predicate ICQs. The
// match test asks whether p catches more than the required fraction of the
// remaining matches; the non-match test asks whether p leaves uncaught more
// than (1 - allowed fraction) of the remaining non-matches.
func (t *Task) blockCandidateICQ(o DNF, p SimPredicate, needM, allowN float64) (bool, float64, float64, error) {
	notO := dataset.Not{P: o.Predicate()}
	matchPred := dataset.And{notO, p.Predicate(), dataset.StrEq{Attr: "label", Val: "MATCH"}}
	qa, err := query.NewICQ([]dataset.Predicate{matchPred}, clampNonNeg(needM), t.req())
	if err != nil {
		return false, 0, 0, err
	}
	ansA, err := t.Engine.Ask(qa)
	if err != nil {
		return false, 0, 0, err
	}
	if !ansA.Selected[0] {
		return false, 0, 0, nil
	}
	// Non-matches NOT caught by p must exceed remN - allowN (i.e. p catches
	// fewer than the allowed number). Note Figure 8b words this with the
	// complement predicate; this is the semantically equivalent form.
	remNonCaught := dataset.And{notO, dataset.Not{P: p.Predicate()}, dataset.StrEq{Attr: "label", Val: "NON-MATCH"}}
	// threshold: remaining non-matches minus the allowance. We estimate the
	// remaining count from the bookkeeping the caller maintains via
	// needM/allowN, which encode remM·x8 and remN·x9.
	thresholdN := clampNonNeg(allowN / t.Cleaner.MaxNonMatchCaught * (1 - t.Cleaner.MaxNonMatchCaught))
	qb, err := query.NewICQ([]dataset.Predicate{remNonCaught}, thresholdN, t.req())
	if err != nil {
		return false, 0, 0, err
	}
	ansB, err := t.Engine.Ask(qb)
	if err != nil {
		return false, 0, 0, err
	}
	if !ansB.Selected[0] {
		return false, 0, 0, nil
	}
	// ICQ reveals membership only: bookkeeping estimates the caught
	// matches by the passed threshold and the caught non-matches by half
	// the allowance (the criterion guarantees they are below allowN).
	return true, needM, allowN / 2, nil
}

// RunMS1 executes matching strategy 1 (Figure 9a): WCQ-only exploration
// growing a conjunction of similarity predicates.
func RunMS1(t *Task) (CNF, error) {
	attrs, err := t.chooseAttrsWCQ()
	if err != nil {
		return nil, ignoreDenial(err)
	}
	return t.matchingLoop(attrs, t.matchCandidateWCQ)
}

// RunMS2 executes matching strategy 2 (Figure 9b): ICQ/TCQ exploration.
func RunMS2(t *Task) (CNF, error) {
	attrs, err := t.chooseAttrsTCQ()
	if err != nil {
		return nil, ignoreDenial(err)
	}
	return t.matchingLoop(attrs, t.matchCandidateICQ)
}

type matchCandidate func(o CNF, p SimPredicate, capM, capN float64) (accept bool, keptM, keptN float64, err error)

func (t *Task) matchingLoop(attrs []string, check matchCandidate) (CNF, error) {
	capM, capN, err := t.labelCounts()
	if err != nil {
		return nil, ignoreDenial(err)
	}
	var o CNF
	for _, p := range t.Cleaner.CandidatePredicates(attrs) {
		if capN <= t.Alpha/5 {
			return o, nil // all non-matches pruned: matcher is done
		}
		accept, km, kn, err := check(o, p, capM, capN)
		if err != nil {
			return o, ignoreDenial(err)
		}
		if !accept {
			continue
		}
		o = append(o, p)
		capM, capN = clampNonNeg(km), clampNonNeg(kn)
	}
	return o, nil
}

// matchCandidateWCQ is MS1's q5a/q5b: counts of captured matches and
// non-matches that survive adding p to the conjunction.
func (t *Task) matchCandidateWCQ(o CNF, p SimPredicate, capM, capN float64) (bool, float64, float64, error) {
	oPred := o.Predicate()
	preds := []dataset.Predicate{
		dataset.And{oPred, p.Predicate(), dataset.StrEq{Attr: "label", Val: "MATCH"}},
		dataset.And{oPred, p.Predicate(), dataset.StrEq{Attr: "label", Val: "NON-MATCH"}},
	}
	q, err := query.NewWCQ(preds, t.req())
	if err != nil {
		return false, 0, 0, err
	}
	ans, err := t.Engine.Ask(q)
	if err != nil {
		return false, 0, 0, err
	}
	keptM := clampNonNeg(t.Cleaner.AdjustNoisy(ans.Counts[0], t.Alpha))
	keptN := clampNonNeg(t.Cleaner.AdjustNoisy(ans.Counts[1], t.Alpha))
	prunedM, prunedN := 1.0, 1.0
	if capM > 0 {
		prunedM = 1 - keptM/capM
	}
	if capN > 0 {
		prunedN = 1 - keptN/capN
	}
	accept := prunedM < t.Cleaner.MaxPruneMatch && prunedN > t.Cleaner.MinPruneNonMatch
	return accept, keptM, keptN, nil
}

// matchCandidateICQ is MS2's q5a'/q5b': membership tests on how much p
// would prune.
func (t *Task) matchCandidateICQ(o CNF, p SimPredicate, capM, capN float64) (bool, float64, float64, error) {
	oPred := o.Predicate()
	notP := dataset.Not{P: p.Predicate()}
	// q5a': does p prune more than the allowed fraction of captured matches?
	prunedMatches := dataset.And{oPred, notP, dataset.StrEq{Attr: "label", Val: "MATCH"}}
	qa, err := query.NewICQ([]dataset.Predicate{prunedMatches}, clampNonNeg(t.Cleaner.MaxPruneMatch*capM), t.req())
	if err != nil {
		return false, 0, 0, err
	}
	ansA, err := t.Engine.Ask(qa)
	if err != nil {
		return false, 0, 0, err
	}
	if ansA.Selected[0] {
		return false, 0, 0, nil // prunes too many matches
	}
	// q5b': does p prune at least the required fraction of captured
	// non-matches?
	prunedNon := dataset.And{oPred, notP, dataset.StrEq{Attr: "label", Val: "NON-MATCH"}}
	qb, err := query.NewICQ([]dataset.Predicate{prunedNon}, clampNonNeg(t.Cleaner.MinPruneNonMatch*capN), t.req())
	if err != nil {
		return false, 0, 0, err
	}
	ansB, err := t.Engine.Ask(qb)
	if err != nil {
		return false, 0, 0, err
	}
	if !ansB.Selected[0] {
		return false, 0, 0, nil
	}
	return true, capM * (1 - t.Cleaner.MaxPruneMatch), capN * (1 - t.Cleaner.MinPruneNonMatch), nil
}

// ignoreDenial converts a budget denial into a clean stop (the strategy
// returns whatever it has built); other errors propagate.
func ignoreDenial(err error) error {
	if errors.Is(err, engine.ErrDenied) {
		return nil
	}
	return fmt.Errorf("er: %w", err)
}

func clampNonNeg(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}
