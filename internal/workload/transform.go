// Package workload implements the workload algebra of APEx §5: predicate
// workloads W = {ϕ1..ϕL}, the transformation T(W) that partitions the full
// domain dom(R) into the minimal discretized domain domW(R) on which every
// predicate is constant, the resulting L×|domW(R)| query matrix **W**, and
// the histogram extraction x = T_W(D).
//
// The transformation decomposes the workload into connected components of
// predicates that share attributes. Within a component the (small) grid of
// attribute "atoms" is enumerated and cells with identical predicate
// signatures are merged; across components the partition set is the cross
// product. The workload sensitivity ‖W‖₁ is the sum over components of the
// maximum number of predicates a single cell satisfies, which equals the
// max column sum of the materialized matrix. When the cross product is too
// large to materialize (e.g. 100 predicates over 100 distinct attributes),
// the Transformed stays implicit: sensitivity and true answers remain
// available, but matrix-based mechanisms report themselves inapplicable —
// exactly the "applicable mechanisms" notion of paper Algorithm 1.
package workload

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"

	"repro/internal/dataset"
	"repro/internal/linalg"
)

// Options tunes the transformation limits.
type Options struct {
	// MaxPartitions caps the materialized global partition count. Above
	// the cap the Transformed stays implicit. Zero means DefaultMaxPartitions.
	MaxPartitions int
	// MaxCellsPerComponent caps the per-component atom-grid enumeration.
	// Zero means DefaultMaxCells.
	MaxCellsPerComponent int
}

// Default limits for Transform.
const (
	DefaultMaxPartitions = 4096
	DefaultMaxCells      = 1 << 20
)

// BreakpointProvider may be implemented by custom predicates (such as
// dataset.Func) to declare the numeric breakpoints at which their truth
// value can change, keyed by attribute. Without it, custom predicates
// cannot be transformed.
type BreakpointProvider interface {
	Breakpoints() map[string][]float64
}

// Transformed is the result of T(W): the partitioned domain, the query
// matrix (when materialized), and evaluation helpers.
type Transformed struct {
	schema *dataset.Schema
	preds  []dataset.Predicate

	sens  float64
	comps []*component

	parts int            // total partitions (product of component counts)
	mat   *linalg.Matrix // L×parts, nil when implicit

	// Columnar evaluation state: the compiled predicate kernels are built
	// lazily on first Histogram/TrueAnswers call and shared by every
	// subsequent evaluation (a Transformed is immutable once built, so
	// concurrent sessions can evaluate through it). memo, when non-nil
	// (set by TransformCache), additionally caches the noise-free results
	// per table.
	kOnce sync.Once
	k     colKernels
	memo  *evalMemo

	// keyOnce/key lazily cache the canonical workload key (Key over
	// preds) so per-query consumers — the strategy-translation cache
	// looks plans up by it on every Translate — don't re-render the
	// predicates each time.
	keyOnce sync.Once
	key     string
}

// colKernels holds the compiled columnar evaluators for one workload.
type colKernels struct {
	// err non-nil means some predicate is not compilable (an opaque
	// dataset.Func); every evaluation falls back to the row path.
	err error
	// preds are the compiled kernels, aligned with Transformed.preds.
	preds []*dataset.CompiledPredicate
	// comps holds per-component signature lookups for the vectorized
	// partition kernel; nil when some component is too wide (> 64
	// predicates), in which case Histogram falls back to the row path
	// while TrueAnswers stays columnar.
	comps []compiledComp
}

// compiledComp maps a component's predicate-satisfaction bitmask (bit bi
// set ⇔ predicate predIdx[bi] holds) to its partition index. Narrow
// components use a dense table, wider ones a map.
type compiledComp struct {
	width  int
	dense  []int32 // len 1<<width when width <= denseSigWidth; -1 = unseen
	lookup map[uint64]int32
}

// denseSigWidth bounds the dense signature table at 1<<16 entries.
const denseSigWidth = 16

type component struct {
	predIdx []int // global predicate indices owned by this component
	attrs   []int // schema attribute positions
	// reps[i] is the representative tuple fragment for cell i; cells are
	// collapsed into partitions by signature.
	sigToPart map[string]int
	partSigs  []string // partition index -> signature over predIdx bits
	maxSat    int
}

// Transform computes T(W) for the workload preds over the public schema.
func Transform(s *dataset.Schema, preds []dataset.Predicate, opt Options) (*Transformed, error) {
	if len(preds) == 0 {
		return nil, fmt.Errorf("workload: empty workload")
	}
	if opt.MaxPartitions <= 0 {
		opt.MaxPartitions = DefaultMaxPartitions
	}
	if opt.MaxCellsPerComponent <= 0 {
		opt.MaxCellsPerComponent = DefaultMaxCells
	}

	acc := newAtomAcc(s)
	for i, p := range preds {
		if err := acc.collect(p); err != nil {
			return nil, fmt.Errorf("workload: predicate %d (%s): %w", i, p, err)
		}
	}

	tr := &Transformed{schema: s, preds: preds}
	groups := groupPredicates(s, preds)
	oversized := false
	for _, g := range groups {
		c, ok, err := buildComponent(s, preds, g, acc, opt.MaxCellsPerComponent)
		if err != nil {
			return nil, err
		}
		if !ok {
			// Component grid too large to enumerate: fall back to the safe
			// sensitivity upper bound (all predicates in the component can
			// overlap) and keep the whole transformation implicit.
			oversized = true
			tr.sens += float64(len(g))
			continue
		}
		tr.comps = append(tr.comps, c)
		tr.sens += float64(c.maxSat)
	}
	if oversized {
		tr.parts = -1
		tr.comps = nil
		return tr, nil
	}

	// Total partition count; overflow-safe product.
	parts := 1
	implicit := false
	for _, c := range tr.comps {
		n := len(c.partSigs)
		if parts > opt.MaxPartitions/n+1 {
			implicit = true
			break
		}
		parts *= n
		if parts > opt.MaxPartitions {
			implicit = true
			break
		}
	}
	if implicit {
		tr.parts = -1
		return tr, nil
	}
	tr.parts = parts
	tr.mat = tr.buildMatrix()
	return tr, nil
}

// L returns the number of predicates in the workload.
func (tr *Transformed) L() int { return len(tr.preds) }

// Predicates returns the workload predicates (shared slice).
func (tr *Transformed) Predicates() []dataset.Predicate { return tr.preds }

// Schema returns the public schema.
func (tr *Transformed) Schema() *dataset.Schema { return tr.schema }

// CanonicalKey returns Key(tr.Predicates()), computed once and cached.
// It identifies the workload across caches: the transformation cache,
// the answer-reuse cache and the strategy-translation cache all agree on
// it.
func (tr *Transformed) CanonicalKey() string {
	tr.keyOnce.Do(func() { tr.key = Key(tr.preds) })
	return tr.key
}

// Sensitivity returns ‖W‖₁, the workload sensitivity (max number of
// predicates any single tuple can satisfy).
func (tr *Transformed) Sensitivity() float64 { return tr.sens }

// Materialized reports whether the partition matrix was built.
func (tr *Transformed) Materialized() bool { return tr.mat != nil }

// NumPartitions returns |domW(R)|, or -1 when implicit.
func (tr *Transformed) NumPartitions() int { return tr.parts }

// Matrix returns the L×|domW(R)| query matrix, or nil when implicit.
func (tr *Transformed) Matrix() *linalg.Matrix { return tr.mat }

// Histogram computes x = T_W(D), the per-partition tuple counts, with one
// columnar pass per referenced column (vectorized mixed-radix partition
// codes) instead of a per-row predicate interpretation. It errors if the
// workload is implicit or a tuple falls outside the public domain. When
// the Transformed came from a TransformCache, the noise-free result is
// memoized per table and shared across callers.
func (tr *Transformed) Histogram(d *dataset.Table) ([]float64, error) {
	if tr.mat == nil {
		return nil, fmt.Errorf("workload: histogram unavailable for implicit transformation")
	}
	if tr.memo != nil {
		return tr.memo.histogram(tr, d)
	}
	return tr.histogram(d)
}

// predSource supplies a predicate's selection bitmap by workload index.
// The scratch bitmap may be used as the backing store and is reused
// across calls; callers only read the returned bitmap's words. The
// batched evaluation path uses it to feed many workloads from one shared,
// deduplicated set of predicate evaluations.
type predSource func(pi int, scratch *dataset.Bitmap) *dataset.Bitmap

// histogram is the uncached evaluation behind Histogram.
func (tr *Transformed) histogram(d *dataset.Table) ([]float64, error) {
	return tr.histogramWith(d, nil)
}

// histogramWith is histogram with an optional predicate-bitmap source;
// nil means every predicate is evaluated in place (the unbatched path).
// Both paths run the identical accumulation over the bitmap words, so
// batched results are bit-for-bit equal to unbatched ones, including the
// out-of-domain error a bad row produces.
func (tr *Transformed) histogramWith(d *dataset.Table, get predSource) ([]float64, error) {
	k := tr.kernels()
	if k.err != nil || k.comps == nil {
		return tr.HistogramRows(d)
	}
	if get == nil {
		get = func(pi int, scratch *dataset.Bitmap) *dataset.Bitmap {
			k.preds[pi].EvalInto(d, scratch)
			return scratch
		}
	}
	n := d.Size()
	x := make([]float64, tr.parts)
	if n == 0 {
		return x, nil
	}
	idx := make([]int32, n)    // per-row global partition, mixed radix
	masks := make([]uint64, n) // per-row signature within one component
	scratch := dataset.NewBitmap(n)
	// Out-of-domain handling must match the row path exactly: that path
	// scans rows outermost and fails at the FIRST bad row (reporting the
	// first failing component's signature for it), so track the minimum
	// failing row across components instead of failing component-major.
	badRow, badWidth := -1, 0
	var badMask uint64
	for ci, c := range tr.comps {
		for i := range masks {
			masks[i] = 0
		}
		for bi, pi := range c.predIdx {
			sel := get(pi, scratch)
			bit := uint64(1) << uint(bi)
			for wi, w := range sel.Words() {
				base := wi << 6
				for w != 0 {
					masks[base+bits.TrailingZeros64(w)] |= bit
					w &= w - 1
				}
			}
		}
		cc := &k.comps[ci]
		radix := int32(len(c.partSigs))
		// A failure at or beyond the best known bad row cannot win (ties
		// go to the earlier component, like the row path), so scan only
		// the strictly earlier rows once a failure is on record.
		limit := n
		if badRow >= 0 {
			limit = badRow
		}
		if cc.dense != nil {
			for i := 0; i < limit; i++ {
				m := masks[i]
				p := cc.dense[m]
				if p < 0 {
					badRow, badMask, badWidth = i, m, cc.width
					break
				}
				idx[i] = idx[i]*radix + p
			}
		} else {
			for i := 0; i < limit; i++ {
				m := masks[i]
				p, ok := cc.lookup[m]
				if !ok {
					badRow, badMask, badWidth = i, m, cc.width
					break
				}
				idx[i] = idx[i]*radix + p
			}
		}
	}
	if badRow >= 0 {
		return nil, unseenSignature(badRow, badMask, badWidth)
	}
	for _, p := range idx {
		x[p]++
	}
	return x, nil
}

// HistogramRows is the row-at-a-time reference implementation of
// Histogram (the seed data path), kept for differential testing and
// benchmarking of the columnar kernels.
func (tr *Transformed) HistogramRows(d *dataset.Table) ([]float64, error) {
	if tr.mat == nil {
		return nil, fmt.Errorf("workload: histogram unavailable for implicit transformation")
	}
	x := make([]float64, tr.parts)
	for i := 0; i < d.Size(); i++ {
		idx, err := tr.partitionOf(d.Row(i))
		if err != nil {
			return nil, fmt.Errorf("workload: row %d: %w", i, err)
		}
		x[idx]++
	}
	return x, nil
}

// TrueAnswers returns the exact workload answers c_ϕi(D) = w_i·x
// (available even for implicit transformations), one columnar predicate
// kernel per workload entry. When the Transformed came from a
// TransformCache, the noise-free result is memoized per table.
func (tr *Transformed) TrueAnswers(d *dataset.Table) []float64 {
	if tr.memo != nil {
		return tr.memo.trueAnswers(tr, d)
	}
	return tr.trueAnswers(d)
}

// trueAnswers is the uncached evaluation behind TrueAnswers.
func (tr *Transformed) trueAnswers(d *dataset.Table) []float64 {
	return tr.trueAnswersWith(d, nil)
}

// trueAnswersWith is trueAnswers with an optional predicate-bitmap
// source; nil evaluates each predicate in place (the unbatched path).
func (tr *Transformed) trueAnswersWith(d *dataset.Table, get predSource) []float64 {
	k := tr.kernels()
	if k.err != nil {
		return tr.TrueAnswersRows(d)
	}
	if get == nil {
		get = func(pi int, scratch *dataset.Bitmap) *dataset.Bitmap {
			k.preds[pi].EvalInto(d, scratch)
			return scratch
		}
	}
	out := make([]float64, len(tr.preds))
	scratch := dataset.NewBitmap(d.Size())
	for j := range k.preds {
		out[j] = float64(get(j, scratch).Count())
	}
	return out
}

// TrueAnswersRows is the row-at-a-time reference implementation of
// TrueAnswers (the seed data path), kept for differential testing and
// benchmarking of the columnar kernels.
func (tr *Transformed) TrueAnswersRows(d *dataset.Table) []float64 {
	out := make([]float64, len(tr.preds))
	for i := 0; i < d.Size(); i++ {
		row := d.Row(i)
		for j, p := range tr.preds {
			if p.Eval(tr.schema, row) {
				out[j]++
			}
		}
	}
	return out
}

// kernels compiles the columnar evaluators once per Transformed.
func (tr *Transformed) kernels() *colKernels {
	tr.kOnce.Do(func() {
		k := &tr.k
		k.preds = make([]*dataset.CompiledPredicate, len(tr.preds))
		for i, p := range tr.preds {
			cp, err := dataset.Compile(tr.schema, p)
			if err != nil {
				k.err = err
				return
			}
			k.preds[i] = cp
		}
		if tr.parts > math.MaxInt32 {
			return // mixed-radix codes would overflow; keep comps nil
		}
		comps := make([]compiledComp, len(tr.comps))
		for ci, c := range tr.comps {
			width := len(c.predIdx)
			if width > 64 {
				return // signature exceeds one word; comps stays nil
			}
			cc := compiledComp{width: width}
			if width <= denseSigWidth {
				cc.dense = make([]int32, 1<<uint(width))
				for i := range cc.dense {
					cc.dense[i] = -1
				}
			} else {
				cc.lookup = make(map[uint64]int32, len(c.partSigs))
			}
			for sig, part := range c.sigToPart {
				var m uint64
				for bi := 0; bi < width; bi++ {
					if sig[bi] == '1' {
						m |= 1 << uint(bi)
					}
				}
				if cc.dense != nil {
					cc.dense[m] = int32(part)
				} else {
					cc.lookup[m] = int32(part)
				}
			}
			comps[ci] = cc
		}
		k.comps = comps
	})
	return &tr.k
}

// unseenSignature renders the row-path error for a mask with no partition.
func unseenSignature(row int, mask uint64, width int) error {
	sig := make([]byte, width)
	for bi := 0; bi < width; bi++ {
		if mask&(1<<uint(bi)) != 0 {
			sig[bi] = '1'
		} else {
			sig[bi] = '0'
		}
	}
	return fmt.Errorf("workload: row %d: tuple outside public domain (unseen signature %s)", row, sig)
}

// partitionOf maps a tuple to its global partition index (mixed radix over
// component partition indices).
func (tr *Transformed) partitionOf(row dataset.Tuple) (int, error) {
	idx := 0
	for _, c := range tr.comps {
		var sig strings.Builder
		for _, pi := range c.predIdx {
			if tr.preds[pi].Eval(tr.schema, row) {
				sig.WriteByte('1')
			} else {
				sig.WriteByte('0')
			}
		}
		p, ok := c.sigToPart[sig.String()]
		if !ok {
			return 0, fmt.Errorf("tuple outside public domain (unseen signature %s)", sig.String())
		}
		idx = idx*len(c.partSigs) + p
	}
	return idx, nil
}

// buildMatrix materializes W over the global partition cross product.
func (tr *Transformed) buildMatrix() *linalg.Matrix {
	m := linalg.NewMatrix(len(tr.preds), tr.parts)
	// Iterate the mixed-radix space of component partition indices.
	counts := make([]int, len(tr.comps))
	for i, c := range tr.comps {
		counts[i] = len(c.partSigs)
	}
	pos := make([]int, len(tr.comps))
	for col := 0; col < tr.parts; col++ {
		for ci, c := range tr.comps {
			sig := c.partSigs[pos[ci]]
			for bi, pi := range c.predIdx {
				if sig[bi] == '1' {
					m.Set(pi, col, 1)
				}
			}
		}
		// Increment mixed-radix counter (last component varies fastest to
		// match partitionOf's accumulation order).
		for ci := len(pos) - 1; ci >= 0; ci-- {
			pos[ci]++
			if pos[ci] < counts[ci] {
				break
			}
			pos[ci] = 0
		}
	}
	return m
}

// --- atom collection ---

type atomAcc struct {
	schema *dataset.Schema
	// numeric breakpoints per attribute position
	nums map[int]map[float64]struct{}
	// whether the attribute is referenced at all
	used map[int]struct{}
}

func newAtomAcc(s *dataset.Schema) *atomAcc {
	return &atomAcc{
		schema: s,
		nums:   make(map[int]map[float64]struct{}),
		used:   make(map[int]struct{}),
	}
}

func (a *atomAcc) addNum(attr string, c float64) error {
	i, ok := a.schema.Lookup(attr)
	if !ok {
		return fmt.Errorf("unknown attribute %q", attr)
	}
	a.used[i] = struct{}{}
	if a.nums[i] == nil {
		a.nums[i] = make(map[float64]struct{})
	}
	a.nums[i][c] = struct{}{}
	return nil
}

func (a *atomAcc) addAttr(attr string) error {
	i, ok := a.schema.Lookup(attr)
	if !ok {
		return fmt.Errorf("unknown attribute %q", attr)
	}
	a.used[i] = struct{}{}
	return nil
}

func (a *atomAcc) collect(p dataset.Predicate) error {
	switch q := p.(type) {
	case dataset.NumCmp:
		return a.addNum(q.Attr, q.C)
	case dataset.Range:
		if err := a.addNum(q.Attr, q.Lo); err != nil {
			return err
		}
		return a.addNum(q.Attr, q.Hi)
	case dataset.StrEq:
		return a.addAttr(q.Attr)
	case dataset.IsNull:
		return a.addAttr(q.Attr)
	case dataset.And:
		for _, c := range q {
			if err := a.collect(c); err != nil {
				return err
			}
		}
		return nil
	case dataset.Or:
		for _, c := range q {
			if err := a.collect(c); err != nil {
				return err
			}
		}
		return nil
	case dataset.Not:
		return a.collect(q.P)
	case dataset.True:
		return nil
	default:
		bp, ok := p.(BreakpointProvider)
		if !ok {
			return fmt.Errorf("cannot introspect predicate type %T (implement workload.BreakpointProvider)", p)
		}
		for attr, cs := range bp.Breakpoints() {
			for _, c := range cs {
				if err := a.addNum(attr, c); err != nil {
					return err
				}
			}
		}
		// Ensure all read attributes are registered even without breakpoints.
		for _, attr := range p.Attrs() {
			if err := a.addAttr(attr); err != nil {
				return err
			}
		}
		return nil
	}
}

// representatives returns the representative values for one attribute: a
// finite set of Values such that every predicate in the workload is
// constant between consecutive representatives.
func (a *atomAcc) representatives(attrPos int) []dataset.Value {
	attr := a.schema.Attr(attrPos)
	if attr.Kind == dataset.Categorical {
		out := make([]dataset.Value, 0, len(attr.Values)+1)
		for _, v := range attr.Values {
			out = append(out, dataset.Str(v))
		}
		out = append(out, dataset.Null)
		return out
	}
	// Continuous: breakpoints within [Min, Max] plus interval midpoints.
	pts := []float64{attr.Min, attr.Max}
	for c := range a.nums[attrPos] {
		if c >= attr.Min && c <= attr.Max {
			pts = append(pts, c)
		}
	}
	sort.Float64s(pts)
	pts = dedupFloats(pts)
	out := make([]dataset.Value, 0, 2*len(pts)+1)
	for i, p := range pts {
		out = append(out, dataset.Num(p))
		if i+1 < len(pts) {
			mid := p + (pts[i+1]-p)/2
			if mid > p && mid < pts[i+1] {
				out = append(out, dataset.Num(mid))
			}
		}
	}
	out = append(out, dataset.Null)
	return out
}

func dedupFloats(xs []float64) []float64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// --- predicate grouping (connected components over shared attributes) ---

func groupPredicates(s *dataset.Schema, preds []dataset.Predicate) [][]int {
	parent := make([]int, len(preds))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(x, y int) { parent[find(x)] = find(y) }

	attrOwner := make(map[string]int)
	for i, p := range preds {
		for _, a := range p.Attrs() {
			if prev, ok := attrOwner[a]; ok {
				union(i, prev)
			} else {
				attrOwner[a] = i
			}
		}
	}
	groups := make(map[int][]int)
	for i := range preds {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	out := make([][]int, 0, len(groups))
	for _, r := range roots {
		g := groups[r]
		sort.Ints(g)
		out = append(out, g)
	}
	return out
}

func buildComponent(s *dataset.Schema, preds []dataset.Predicate, group []int, acc *atomAcc, maxCells int) (*component, bool, error) {
	c := &component{predIdx: group, sigToPart: make(map[string]int)}
	attrSet := make(map[int]struct{})
	for _, pi := range group {
		for _, a := range preds[pi].Attrs() {
			pos, ok := s.Lookup(a)
			if !ok {
				return nil, false, fmt.Errorf("workload: unknown attribute %q", a)
			}
			attrSet[pos] = struct{}{}
		}
	}
	for pos := range attrSet {
		c.attrs = append(c.attrs, pos)
	}
	sort.Ints(c.attrs)

	reps := make([][]dataset.Value, len(c.attrs))
	cells := 1
	for i, pos := range c.attrs {
		reps[i] = acc.representatives(pos)
		if cells > maxCells/len(reps[i])+1 {
			return nil, false, nil
		}
		cells *= len(reps[i])
		if cells > maxCells {
			return nil, false, nil
		}
	}

	// Enumerate the grid; the row template carries NULLs for attributes
	// outside the component (predicates never read them).
	row := make(dataset.Tuple, s.Arity())
	idx := make([]int, len(c.attrs))
	var sig strings.Builder
	for cell := 0; cell < cells; cell++ {
		for i, pos := range c.attrs {
			row[pos] = reps[i][idx[i]]
		}
		sig.Reset()
		sat := 0
		for _, pi := range c.predIdx {
			if preds[pi].Eval(s, row) {
				sig.WriteByte('1')
				sat++
			} else {
				sig.WriteByte('0')
			}
		}
		key := sig.String()
		if _, ok := c.sigToPart[key]; !ok {
			c.sigToPart[key] = len(c.partSigs)
			c.partSigs = append(c.partSigs, key)
		}
		if sat > c.maxSat {
			c.maxSat = sat
		}
		for i := len(idx) - 1; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(reps[i]) {
				break
			}
			idx[i] = 0
		}
	}
	return c, true, nil
}

// SensitivityUpperBound returns a quick safe upper bound for ‖W‖₁ (the
// workload length), usable before transformation.
func SensitivityUpperBound(preds []dataset.Predicate) float64 {
	return float64(len(preds))
}

// MaxCount is a helper that returns max(counts) or 0.
func MaxCount(xs []float64) float64 {
	best := math.Inf(-1)
	for _, x := range xs {
		if x > best {
			best = x
		}
	}
	if math.IsInf(best, -1) {
		return 0
	}
	return best
}
