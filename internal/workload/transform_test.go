package workload

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/linalg"
)

func schemaFixture(t *testing.T) *dataset.Schema {
	t.Helper()
	return dataset.MustSchema(
		dataset.Attribute{Name: "gain", Kind: dataset.Continuous, Min: 0, Max: 5000},
		dataset.Attribute{Name: "age", Kind: dataset.Continuous, Min: 0, Max: 100},
		dataset.Attribute{Name: "sex", Kind: dataset.Categorical, Values: []string{"M", "F"}},
		dataset.Attribute{Name: "state", Kind: dataset.Categorical, Values: []string{"AL", "AK", "WY"}},
	)
}

func mustTransform(t *testing.T, s *dataset.Schema, preds []dataset.Predicate) *Transformed {
	t.Helper()
	tr, err := Transform(s, preds, Options{})
	if err != nil {
		t.Fatalf("Transform: %v", err)
	}
	return tr
}

func TestTransformEmptyWorkload(t *testing.T) {
	if _, err := Transform(schemaFixture(t), nil, Options{}); err == nil {
		t.Fatal("empty workload must error")
	}
}

func TestHistogramWorkloadShape(t *testing.T) {
	s := schemaFixture(t)
	preds, err := Histogram1D("gain", 0, 500, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 10 {
		t.Fatalf("want 10 bins, got %d", len(preds))
	}
	tr := mustTransform(t, s, preds)
	if !tr.Materialized() {
		t.Fatal("histogram workload must materialize")
	}
	// Disjoint bins: sensitivity 1.
	if tr.Sensitivity() != 1 {
		t.Fatalf("sensitivity = %v, want 1", tr.Sensitivity())
	}
	// 10 bins + the catch-all (gain >= 500 or NULL) = 11 partitions.
	if tr.NumPartitions() != 11 {
		t.Fatalf("partitions = %d, want 11", tr.NumPartitions())
	}
	if got := tr.Matrix().L1Norm(); got != 1 {
		t.Fatalf("matrix L1 = %v, want 1 (must equal sensitivity)", got)
	}
}

func TestPrefixWorkloadSensitivity(t *testing.T) {
	s := schemaFixture(t)
	preds, err := Prefix1D("gain", 0, 500, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 10 {
		t.Fatalf("want 10 prefixes, got %d", len(preds))
	}
	tr := mustTransform(t, s, preds)
	// A tuple in [0,50) satisfies every prefix: sensitivity = L.
	if tr.Sensitivity() != 10 {
		t.Fatalf("sensitivity = %v, want 10", tr.Sensitivity())
	}
	if got := tr.Matrix().L1Norm(); got != 10 {
		t.Fatalf("matrix L1 = %v, want 10", got)
	}
}

func TestTransformMatrixMatchesDirectCounts(t *testing.T) {
	s := schemaFixture(t)
	preds, err := Histogram1D("gain", 0, 500, 50)
	if err != nil {
		t.Fatal(err)
	}
	tr := mustTransform(t, s, preds)

	d := dataset.NewTable(s)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		d.MustAppend(dataset.Tuple{
			dataset.Num(rng.Float64() * 600), // some rows beyond the last bin
			dataset.Num(float64(rng.Intn(100))),
			dataset.Str("M"),
			dataset.Str("AL"),
		})
	}
	x, err := tr.Histogram(d)
	if err != nil {
		t.Fatal(err)
	}
	viaMatrix, err := tr.Matrix().MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	direct := tr.TrueAnswers(d)
	for i := range direct {
		if viaMatrix[i] != direct[i] {
			t.Fatalf("bin %d: Wx=%v direct=%v", i, viaMatrix[i], direct[i])
		}
	}
	// Histogram mass equals |D|.
	var total float64
	for _, v := range x {
		total += v
	}
	if total != 500 {
		t.Fatalf("histogram mass %v, want 500", total)
	}
}

func TestPrefixMatrixMatchesDirectCounts(t *testing.T) {
	s := schemaFixture(t)
	preds, err := Prefix1D("gain", 0, 5000, 50)
	if err != nil {
		t.Fatal(err)
	}
	tr := mustTransform(t, s, preds)
	if tr.L() != 100 {
		t.Fatalf("L = %d", tr.L())
	}
	d := dataset.NewTable(s)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 300; i++ {
		d.MustAppend(dataset.Tuple{
			dataset.Num(rng.Float64() * 5000),
			dataset.Num(50),
			dataset.Str("F"),
			dataset.Str("WY"),
		})
	}
	x, err := tr.Histogram(d)
	if err != nil {
		t.Fatal(err)
	}
	viaMatrix, err := tr.Matrix().MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	direct := tr.TrueAnswers(d)
	for i := range direct {
		if viaMatrix[i] != direct[i] {
			t.Fatalf("prefix %d: Wx=%v direct=%v", i, viaMatrix[i], direct[i])
		}
	}
	// Prefix counts must be monotone.
	for i := 1; i < len(direct); i++ {
		if direct[i] < direct[i-1] {
			t.Fatalf("prefix counts not monotone at %d: %v < %v", i, direct[i], direct[i-1])
		}
	}
}

func TestTwoAttributeConjunction(t *testing.T) {
	s := schemaFixture(t)
	// QI2-style workload: gain range × sex.
	var preds []dataset.Predicate
	for b := 0.0; b < 500; b += 100 {
		for _, sex := range []string{"M", "F"} {
			preds = append(preds, dataset.And{
				dataset.Range{Attr: "gain", Lo: b, Hi: b + 100},
				dataset.StrEq{Attr: "sex", Val: sex},
			})
		}
	}
	tr := mustTransform(t, s, preds)
	if tr.Sensitivity() != 1 {
		t.Fatalf("disjoint 2D bins must have sensitivity 1, got %v", tr.Sensitivity())
	}
	d := dataset.NewTable(s)
	d.MustAppend(dataset.Tuple{dataset.Num(150), dataset.Num(1), dataset.Str("M"), dataset.Str("AL")})
	d.MustAppend(dataset.Tuple{dataset.Num(150), dataset.Num(1), dataset.Str("F"), dataset.Str("AL")})
	got := tr.TrueAnswers(d)
	var nonzero int
	for _, v := range got {
		if v > 0 {
			nonzero++
		}
	}
	if nonzero != 2 {
		t.Fatalf("expected exactly two nonzero bins, got %v", got)
	}
}

func TestDisjointAttributesComponents(t *testing.T) {
	s := schemaFixture(t)
	// Predicates over unrelated attributes split into separate components;
	// sensitivity adds up because one tuple can satisfy one per component.
	preds := []dataset.Predicate{
		dataset.NumCmp{Attr: "gain", Op: dataset.Gt, C: 100},
		dataset.NumCmp{Attr: "age", Op: dataset.Gt, C: 50},
		dataset.StrEq{Attr: "sex", Val: "M"},
	}
	tr := mustTransform(t, s, preds)
	if tr.Sensitivity() != 3 {
		t.Fatalf("sensitivity = %v, want 3", tr.Sensitivity())
	}
	if tr.Materialized() && tr.Matrix().L1Norm() != 3 {
		t.Fatalf("matrix L1 = %v, want 3", tr.Matrix().L1Norm())
	}
}

func TestImplicitTransformation(t *testing.T) {
	// 40 predicates on 40 distinct attributes => 2^40 partitions: implicit.
	attrs := make([]dataset.Attribute, 40)
	preds := make([]dataset.Predicate, 40)
	for i := range attrs {
		name := "a" + strings.Repeat("x", i+1)
		attrs[i] = dataset.Attribute{Name: name, Kind: dataset.Continuous, Min: 0, Max: 1}
		preds[i] = dataset.NumCmp{Attr: name, Op: dataset.Gt, C: 0.5}
	}
	s := dataset.MustSchema(attrs...)
	tr, err := Transform(s, preds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Materialized() {
		t.Fatal("must stay implicit")
	}
	if tr.NumPartitions() != -1 {
		t.Fatalf("partitions = %d, want -1", tr.NumPartitions())
	}
	if tr.Sensitivity() != 40 {
		t.Fatalf("sensitivity = %v, want 40", tr.Sensitivity())
	}
	if _, err := tr.Histogram(dataset.NewTable(s)); err == nil {
		t.Fatal("implicit histogram must error")
	}
	// TrueAnswers still works.
	d := dataset.NewTable(s)
	row := make(dataset.Tuple, 40)
	for i := range row {
		row[i] = dataset.Num(0.9)
	}
	d.MustAppend(row)
	ans := tr.TrueAnswers(d)
	for i, v := range ans {
		if v != 1 {
			t.Fatalf("answer %d = %v, want 1", i, v)
		}
	}
}

func TestNullHandling(t *testing.T) {
	s := schemaFixture(t)
	preds := []dataset.Predicate{
		dataset.IsNull{Attr: "gain"},
		dataset.NumCmp{Attr: "gain", Op: dataset.Gt, C: 100},
	}
	tr := mustTransform(t, s, preds)
	d := dataset.NewTable(s)
	d.MustAppend(dataset.Tuple{dataset.Null, dataset.Num(1), dataset.Str("M"), dataset.Str("AL")})
	d.MustAppend(dataset.Tuple{dataset.Num(500), dataset.Num(1), dataset.Str("M"), dataset.Str("AL")})
	x, err := tr.Histogram(d)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := tr.Matrix().MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	if ans[0] != 1 || ans[1] != 1 {
		t.Fatalf("answers = %v, want [1 1]", ans)
	}
}

func TestUnknownAttributeErrors(t *testing.T) {
	s := schemaFixture(t)
	_, err := Transform(s, []dataset.Predicate{dataset.NumCmp{Attr: "bogus", Op: dataset.Gt, C: 1}}, Options{})
	if err == nil {
		t.Fatal("unknown attribute must error")
	}
}

func TestUninstrospectablePredicateErrors(t *testing.T) {
	s := schemaFixture(t)
	f := dataset.Func{Name: "opaque", ReadAttrs: []string{"gain"}, Fn: func(*dataset.Schema, dataset.Tuple) bool { return true }}
	if _, err := Transform(s, []dataset.Predicate{f}, Options{}); err == nil {
		t.Fatal("opaque Func must error without BreakpointProvider")
	}
}

// funcWithBreakpoints wraps dataset.Func with declared breakpoints.
type funcWithBreakpoints struct {
	dataset.Func
	bps map[string][]float64
}

func (f funcWithBreakpoints) Breakpoints() map[string][]float64 { return f.bps }

func TestBreakpointProviderFunc(t *testing.T) {
	s := schemaFixture(t)
	f := funcWithBreakpoints{
		Func: dataset.Func{
			Name:      "gain-mid",
			ReadAttrs: []string{"gain"},
			Fn: func(sc *dataset.Schema, tp dataset.Tuple) bool {
				i, _ := sc.Lookup("gain")
				v, ok := tp[i].AsNum()
				return ok && v >= 100 && v < 200
			},
		},
		bps: map[string][]float64{"gain": {100, 200}},
	}
	tr := mustTransform(t, s, []dataset.Predicate{f})
	d := dataset.NewTable(s)
	d.MustAppend(dataset.Tuple{dataset.Num(150), dataset.Num(1), dataset.Str("M"), dataset.Str("AL")})
	d.MustAppend(dataset.Tuple{dataset.Num(250), dataset.Num(1), dataset.Str("M"), dataset.Str("AL")})
	x, err := tr.Histogram(d)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := tr.Matrix().MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	if ans[0] != 1 {
		t.Fatalf("answer = %v, want 1", ans[0])
	}
}

func TestCategoryAndPointBuilders(t *testing.T) {
	s := schemaFixture(t)
	cats := CategoryPredicates("state", []string{"AL", "AK", "WY"})
	tr := mustTransform(t, s, cats)
	if tr.Sensitivity() != 1 {
		t.Fatalf("category sensitivity = %v", tr.Sensitivity())
	}
	// 3 states + NULL partition = 4.
	if tr.NumPartitions() != 4 {
		t.Fatalf("partitions = %d, want 4", tr.NumPartitions())
	}
	pts := PointPredicates("age", []float64{0, 1, 2})
	tr2 := mustTransform(t, s, pts)
	if tr2.Sensitivity() != 1 {
		t.Fatalf("point sensitivity = %v", tr2.Sensitivity())
	}
}

func TestBuilderValidation(t *testing.T) {
	if _, err := Histogram1D("g", 0, 10, 0); err == nil {
		t.Fatal("zero width must error")
	}
	if _, err := Histogram1D("g", 10, 0, 1); err == nil {
		t.Fatal("inverted bounds must error")
	}
	if _, err := Prefix1D("g", 0, 10, -1); err == nil {
		t.Fatal("negative width must error")
	}
	if _, err := Histogram2D("a", 0, 10, 0, "b", 0, 1, 1); err == nil {
		t.Fatal("bad first dim must error")
	}
	if _, err := Histogram2D("a", 0, 10, 1, "b", 0, 1, 0); err == nil {
		t.Fatal("bad second dim must error")
	}
}

func TestHistogram2DBuilder(t *testing.T) {
	s := schemaFixture(t)
	preds, err := Histogram2D("gain", 0, 200, 100, "age", 0, 20, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 4 {
		t.Fatalf("want 4 cells, got %d", len(preds))
	}
	tr := mustTransform(t, s, preds)
	if tr.Sensitivity() != 1 {
		t.Fatalf("2D grid sensitivity = %v", tr.Sensitivity())
	}
}

// Property: for any data, Histogram mass == |D| and Wx == TrueAnswers.
func TestHistogramMassInvariant(t *testing.T) {
	s := schemaFixture(t)
	preds, err := Histogram2D("gain", 0, 1000, 200, "age", 0, 100, 25)
	if err != nil {
		t.Fatal(err)
	}
	tr := mustTransform(t, s, preds)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		n := rng.Intn(200)
		d := dataset.NewTable(s)
		for i := 0; i < n; i++ {
			d.MustAppend(dataset.Tuple{
				dataset.Num(rng.Float64() * 5000),
				dataset.Num(rng.Float64() * 100),
				dataset.Str([]string{"M", "F"}[rng.Intn(2)]),
				dataset.Str("AL"),
			})
		}
		x, err := tr.Histogram(d)
		if err != nil {
			t.Fatal(err)
		}
		var mass float64
		for _, v := range x {
			mass += v
		}
		if int(mass) != n {
			t.Fatalf("trial %d: mass %v != %d", trial, mass, n)
		}
		wx, err := tr.Matrix().MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		direct := tr.TrueAnswers(d)
		if linalg.LInfNorm(mustSub(t, wx, direct)) != 0 {
			t.Fatalf("trial %d: Wx != direct", trial)
		}
	}
}

func mustSub(t *testing.T, a, b []float64) []float64 {
	t.Helper()
	d, err := linalg.Sub(a, b)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestOversizedComponentFallsBackToImplicit(t *testing.T) {
	// One component over 8 attributes, each with many breakpoints, exceeds
	// a tiny cell cap: Transform must stay implicit with the sensitivity
	// upper bound rather than erroring.
	attrs := make([]dataset.Attribute, 8)
	for i := range attrs {
		attrs[i] = dataset.Attribute{Name: string(rune('a' + i)), Kind: dataset.Continuous, Min: 0, Max: 1}
	}
	s := dataset.MustSchema(attrs...)
	// Connect all attributes into one component via a chained conjunction.
	var conj dataset.And
	for i := range attrs {
		conj = append(conj, dataset.NumCmp{Attr: attrs[i].Name, Op: dataset.Gt, C: 0.5})
	}
	preds := []dataset.Predicate{conj, dataset.NumCmp{Attr: "a", Op: dataset.Lt, C: 0.2}}
	tr, err := Transform(s, preds, Options{MaxCellsPerComponent: 10})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Materialized() {
		t.Fatal("must stay implicit")
	}
	if tr.Sensitivity() != 2 {
		t.Fatalf("sensitivity upper bound = %v, want 2", tr.Sensitivity())
	}
	d := dataset.NewTable(s)
	row := make(dataset.Tuple, 8)
	for i := range row {
		row[i] = dataset.Num(0.9)
	}
	d.MustAppend(row)
	ans := tr.TrueAnswers(d)
	if ans[0] != 1 || ans[1] != 0 {
		t.Fatalf("answers = %v", ans)
	}
}

func TestAllRanges1D(t *testing.T) {
	s := schemaFixture(t)
	preds, err := AllRanges1D("age", 0, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	// n = 4 bins: 4·5/2 = 10 ranges.
	if len(preds) != 10 {
		t.Fatalf("want 10 ranges, got %d", len(preds))
	}
	tr := mustTransform(t, s, preds)
	// A tuple in the first bin is inside ranges [0,10),[0,20),[0,30),[0,40): 4.
	// Middle bins participate in more ranges: bin 1 is inside i<=1<j: i∈{0,1}, j∈{2,3,4} => 6.
	if tr.Sensitivity() != 6 {
		t.Fatalf("all-ranges sensitivity = %v, want 6", tr.Sensitivity())
	}
	if _, err := AllRanges1D("age", 10, 0, 1); err == nil {
		t.Fatal("inverted bounds must error")
	}
}

func TestMarginals2D(t *testing.T) {
	s := schemaFixture(t)
	preds, err := Marginals2D("age", 0, 100, 25, "gain", 0, 1000, 250)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 8 {
		t.Fatalf("want 4+4 marginal bins, got %d", len(preds))
	}
	tr := mustTransform(t, s, preds)
	if tr.Sensitivity() != 2 {
		t.Fatalf("marginal sensitivity = %v, want 2", tr.Sensitivity())
	}
	if _, err := Marginals2D("age", 0, 0, 1, "gain", 0, 1, 1); err == nil {
		t.Fatal("bad first marginal must error")
	}
	if _, err := Marginals2D("age", 0, 1, 1, "gain", 0, 0, 1); err == nil {
		t.Fatal("bad second marginal must error")
	}
}
