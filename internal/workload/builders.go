package workload

import (
	"fmt"
	"math"

	"repro/internal/dataset"
)

// Histogram1D returns the disjoint-bin workload
// {attr ∈ [lo, lo+w), [lo+w, lo+2w), ..., [hi-w, hi)} — the Wh of §3.1.
func Histogram1D(attr string, lo, hi, width float64) ([]dataset.Predicate, error) {
	if width <= 0 || hi <= lo {
		return nil, fmt.Errorf("workload: invalid histogram bounds [%g,%g) width %g", lo, hi, width)
	}
	n := int(math.Round((hi - lo) / width))
	if n < 1 {
		n = 1
	}
	out := make([]dataset.Predicate, 0, n)
	for i := 0; i < n; i++ {
		b := lo + float64(i)*width
		end := lo + float64(i+1)*width
		if end > hi || i == n-1 {
			end = hi
		}
		out = append(out, dataset.Range{Attr: attr, Lo: b, Hi: end})
	}
	return out, nil
}

// Prefix1D returns the cumulative (prefix) workload
// {attr < lo+w, attr < lo+2w, ..., attr < hi} — the Wp of §3.1, with
// sensitivity equal to the workload size.
func Prefix1D(attr string, lo, hi, width float64) ([]dataset.Predicate, error) {
	if width <= 0 || hi <= lo {
		return nil, fmt.Errorf("workload: invalid prefix bounds [%g,%g) width %g", lo, hi, width)
	}
	n := int(math.Round((hi - lo) / width))
	if n < 1 {
		n = 1
	}
	out := make([]dataset.Predicate, 0, n)
	for i := 1; i <= n; i++ {
		b := lo + float64(i)*width
		if b > hi || i == n {
			b = hi
		}
		out = append(out, dataset.Range{Attr: attr, Lo: lo, Hi: b})
	}
	return out, nil
}

// Histogram2D returns the grid workload over two continuous attributes:
// one predicate per (cell1, cell2) pair — e.g. QW4's
// (total amount bin) × (passenger count) workload.
func Histogram2D(attr1 string, lo1, hi1, w1 float64, attr2 string, lo2, hi2, w2 float64) ([]dataset.Predicate, error) {
	b1, err := Histogram1D(attr1, lo1, hi1, w1)
	if err != nil {
		return nil, err
	}
	b2, err := Histogram1D(attr2, lo2, hi2, w2)
	if err != nil {
		return nil, err
	}
	out := make([]dataset.Predicate, 0, len(b1)*len(b2))
	for _, p1 := range b1 {
		for _, p2 := range b2 {
			out = append(out, dataset.And{p1, p2})
		}
	}
	return out, nil
}

// PointPredicates returns one equality predicate per value of a continuous
// attribute — e.g. QT1's {"age"=0, ..., "age"=99}.
func PointPredicates(attr string, values []float64) []dataset.Predicate {
	out := make([]dataset.Predicate, len(values))
	for i, v := range values {
		out[i] = dataset.NumCmp{Attr: attr, Op: dataset.Eq, C: v}
	}
	return out
}

// CategoryPredicates returns one equality predicate per categorical value —
// e.g. {State=AL, ..., State=WY}.
func CategoryPredicates(attr string, values []string) []dataset.Predicate {
	out := make([]dataset.Predicate, len(values))
	for i, v := range values {
		out[i] = dataset.StrEq{Attr: attr, Val: v}
	}
	return out
}

// AllRanges1D returns the workload of ALL contiguous ranges over the bins
// [lo+i·w, lo+j·w) for 0 <= i < j <= n — the classic range-query workload
// of the matrix-mechanism literature, with L = n(n+1)/2 and sensitivity
// up to ~n²/4 under the Laplace baseline (where hierarchical strategies
// shine the most).
func AllRanges1D(attr string, lo, hi, width float64) ([]dataset.Predicate, error) {
	if width <= 0 || hi <= lo {
		return nil, fmt.Errorf("workload: invalid range bounds [%g,%g) width %g", lo, hi, width)
	}
	n := int(math.Round((hi - lo) / width))
	if n < 1 {
		n = 1
	}
	out := make([]dataset.Predicate, 0, n*(n+1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j <= n; j++ {
			start := lo + float64(i)*width
			end := lo + float64(j)*width
			if end > hi || j == n {
				end = hi
			}
			out = append(out, dataset.Range{Attr: attr, Lo: start, Hi: end})
		}
	}
	return out, nil
}

// Marginals2D returns the two one-dimensional marginals of a 2-D histogram
// as a single workload: first the bins of attr1, then the bins of attr2.
// Sensitivity is 2 (one tuple lands in one bin per marginal).
func Marginals2D(attr1 string, lo1, hi1, w1 float64, attr2 string, lo2, hi2, w2 float64) ([]dataset.Predicate, error) {
	m1, err := Histogram1D(attr1, lo1, hi1, w1)
	if err != nil {
		return nil, err
	}
	m2, err := Histogram1D(attr2, lo2, hi2, w2)
	if err != nil {
		return nil, err
	}
	return append(m1, m2...), nil
}
