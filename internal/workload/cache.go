package workload

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/dataset"
)

// Key returns the canonical cache key of a workload: the rendered
// predicates joined with NUL. Predicates render deterministically, so two
// workloads with the same key are the same workload. The engine's
// transformation and answer caches and the server's shared per-dataset
// evaluation cache all key on it.
func Key(preds []dataset.Predicate) string {
	var sb strings.Builder
	for _, p := range preds {
		sb.WriteString(p.String())
		sb.WriteByte(0)
	}
	return sb.String()
}

// ID folds a canonical Key (arbitrarily long) into a short stable
// identifier usable as a trace tag, sketch key and metric-safe string.
// The engine stamps it on every request trace so the analytics plane can
// attribute cost per workload without re-rendering the predicates.
func ID(key string) string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return "w" + strconv.FormatUint(h.Sum64(), 16)
}

// TransformCache is a thread-safe cache of workload transformations,
// keyed by Key. Transformeds it hands out additionally memoize their
// noise-free Histogram/TrueAnswers per table, with concurrent callers of
// the same (workload, table) pair sharing one computation — so N analyst
// sessions asking the same workload over the same dataset cost one data
// scan, not N.
//
// Sharing noise-free evaluations is privacy-neutral: they never leave the
// process, and every mechanism adds its own per-session noise on top
// before anything reaches an analyst.
type TransformCache struct {
	opt     Options
	mu      sync.Mutex
	entries map[string]*transformEntry
}

type transformEntry struct {
	schema *dataset.Schema
	once   sync.Once
	tr     *Transformed
	err    error
}

// transformCacheMaxEntries bounds the distinct workloads one cache
// retains. A server-side cache lives as long as its dataset and any
// analyst can mint fresh workload keys by varying predicate constants,
// so reaching the bound drops the map wholesale (Transformeds held by
// live engines stay valid; subsequent repeats just recompute once).
const transformCacheMaxEntries = 256

// NewTransformCache returns an empty cache applying opt to every
// transformation.
func NewTransformCache(opt Options) *TransformCache {
	return &TransformCache{opt: opt, entries: make(map[string]*transformEntry)}
}

// Transform returns the cached T(W) for the workload, computing it at
// most once per key even under concurrent callers. A cache is bound to
// the first schema it sees: compiled kernels bake in attribute positions
// and category codes, so sharing one cache across schemas is a wiring
// bug and fails loudly instead of returning kernels for the wrong table
// layout.
func (c *TransformCache) Transform(s *dataset.Schema, preds []dataset.Predicate) (*Transformed, error) {
	key := Key(preds)
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		if len(c.entries) >= transformCacheMaxEntries {
			c.entries = make(map[string]*transformEntry)
		}
		e = &transformEntry{schema: s}
		c.entries[key] = e
	}
	c.mu.Unlock()
	if e.schema != s {
		return nil, fmt.Errorf("workload: TransformCache is bound to another schema (one cache per dataset; workload %v)", preds)
	}
	e.once.Do(func() {
		e.tr, e.err = Transform(s, preds, c.opt)
		if e.err == nil {
			e.tr.memo = &evalMemo{}
		}
	})
	return e.tr, e.err
}

// Len returns the number of cached workloads.
func (c *TransformCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Has reports whether the cache already holds (or is computing) the
// workload with the given Key. It is advisory — a concurrent Transform
// can change the answer immediately — and exists for observability:
// request traces record it as the transform-cache hit/miss attribute.
func (c *TransformCache) Has(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// evalMemo caches a Transformed's noise-free evaluations per table. The
// key includes the table size so appending to a table (the only mutation
// the Table API allows) naturally invalidates stale entries.
type evalMemo struct {
	mu    sync.Mutex
	hist  map[memoKey]*memoEntry
	truth map[memoKey]*memoEntry
}

type memoKey struct {
	t *dataset.Table
	n int
}

type memoEntry struct {
	once sync.Once
	done atomic.Bool // set once vals/err are final; lets batchers peek
	vals []float64
	err  error
}

// compute runs fn at most once and marks the entry ready.
func (e *memoEntry) compute(fn func() ([]float64, error)) {
	e.once.Do(func() {
		e.vals, e.err = fn()
		e.done.Store(true)
	})
}

// memoMaxTables bounds each memo map; in practice a server evaluates one
// workload against one registered table, so the bound only guards
// pathological use.
const memoMaxTables = 8

func (m *evalMemo) get(mp *map[memoKey]*memoEntry, d *dataset.Table) *memoEntry {
	k := memoKey{t: d, n: d.Size()}
	m.mu.Lock()
	defer m.mu.Unlock()
	if *mp == nil {
		*mp = make(map[memoKey]*memoEntry)
	}
	if e, ok := (*mp)[k]; ok {
		return e
	}
	if len(*mp) >= memoMaxTables {
		*mp = make(map[memoKey]*memoEntry)
	}
	e := &memoEntry{}
	(*mp)[k] = e
	return e
}

// ready reports whether the memoized value for d is already final in mp,
// without creating an entry. Batchers use it to skip work another batch
// (or an unbatched evaluation) has done.
func (m *evalMemo) ready(mp *map[memoKey]*memoEntry, d *dataset.Table) bool {
	k := memoKey{t: d, n: d.Size()}
	m.mu.Lock()
	e, ok := (*mp)[k]
	m.mu.Unlock()
	return ok && e.done.Load()
}

// histogram returns a copy of the memoized x = T_W(D), computing it once
// per (workload, table) across all concurrent sessions.
func (m *evalMemo) histogram(tr *Transformed, d *dataset.Table) ([]float64, error) {
	e := m.get(&m.hist, d)
	e.compute(func() ([]float64, error) { return tr.histogram(d) })
	if e.err != nil {
		return nil, e.err
	}
	return append([]float64(nil), e.vals...), nil
}

// trueAnswers returns a copy of the memoized exact workload answers.
func (m *evalMemo) trueAnswers(tr *Transformed, d *dataset.Table) []float64 {
	e := m.get(&m.truth, d)
	e.compute(func() ([]float64, error) { return tr.trueAnswers(d), nil })
	return append([]float64(nil), e.vals...)
}

// warmHistogram memoizes the histogram computed from a shared predicate-
// bitmap source (the batched path), without copying the result out.
func (m *evalMemo) warmHistogram(tr *Transformed, d *dataset.Table, get predSource) {
	e := m.get(&m.hist, d)
	e.compute(func() ([]float64, error) { return tr.histogramWith(d, get) })
}

// warmTruth memoizes the exact answers computed from a shared predicate-
// bitmap source (the batched path), without copying the result out.
func (m *evalMemo) warmTruth(tr *Transformed, d *dataset.Table, get predSource) {
	e := m.get(&m.truth, d)
	e.compute(func() ([]float64, error) { return tr.trueAnswersWith(d, get), nil })
}
