package workload

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

// TestEvaluateBatchMatchesUnbatched is the batched-path differential
// test: warming many workloads' memos through one EvaluateBatch (shared,
// deduplicated predicate evaluations) must leave Histogram and
// TrueAnswers bit-for-bit equal to a cache that evaluated each workload
// on its own. Workloads deliberately overlap in predicates so the dedup
// path is exercised.
func TestEvaluateBatchMatchesUnbatched(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	s := columnarSchema(t)
	for trial := 0; trial < 20; trial++ {
		d := randDomainTable(rng, s, 150+rng.Intn(250))
		// A pool of predicates shared across the batch's workloads plus
		// per-workload extras: realistic overlap for the dedup to find.
		pool := randWorkload(rng, s, 6)
		var batchPreds [][]dataset.Predicate
		for w := 0; w < 5; w++ {
			preds := append([]dataset.Predicate{}, pool[:2+rng.Intn(4)]...)
			preds = append(preds, randWorkload(rng, s, 1+rng.Intn(3))...)
			batchPreds = append(batchPreds, preds)
		}

		batched := NewTransformCache(Options{})
		plain := NewTransformCache(Options{})
		var items []BatchItem
		var trsB, trsP []*Transformed
		for _, preds := range batchPreds {
			trB, err := batched.Transform(s, preds)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			trP, err := plain.Transform(s, preds)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			trsB, trsP = append(trsB, trB), append(trsP, trP)
			items = append(items, BatchItem{Tr: trB, Histogram: true, Truth: true})
		}
		batched.EvaluateBatch(d, items)

		for w := range trsB {
			gotT, wantT := trsB[w].TrueAnswers(d), trsP[w].TrueAnswers(d)
			for j := range wantT {
				if gotT[j] != wantT[j] {
					t.Fatalf("trial %d workload %d: batched TrueAnswers[%d] = %v, unbatched %v",
						trial, w, j, gotT[j], wantT[j])
				}
			}
			if !trsB[w].Materialized() {
				continue
			}
			gotH, errB := trsB[w].Histogram(d)
			wantH, errP := trsP[w].Histogram(d)
			if (errB == nil) != (errP == nil) {
				t.Fatalf("trial %d workload %d: batched err %v, unbatched %v", trial, w, errB, errP)
			}
			for p := range wantH {
				if gotH[p] != wantH[p] {
					t.Fatalf("trial %d workload %d: batched Histogram[%d] = %v, unbatched %v",
						trial, w, p, gotH[p], wantH[p])
				}
			}
		}
	}
}

// TestEvaluateBatchErrorParity: a tuple outside the public domain must
// produce the identical error through the batched warmup.
func TestEvaluateBatchErrorParity(t *testing.T) {
	s := columnarSchema(t)
	d := dataset.NewTable(s)
	d.MustAppend(dataset.Tuple{dataset.Num(30), dataset.Str("CA"), dataset.Num(10)})
	d.MustAppend(dataset.Tuple{dataset.Num(200), dataset.Str("CA"), dataset.Num(10)})
	preds := []dataset.Predicate{dataset.NumCmp{Attr: "age", Op: dataset.Ge, C: 150}}

	c := NewTransformCache(Options{})
	tr, err := c.Transform(s, preds)
	if err != nil {
		t.Fatal(err)
	}
	c.EvaluateBatch(d, []BatchItem{{Tr: tr, Histogram: true}})
	_, errBatched := tr.Histogram(d)

	trPlain, err := Transform(s, preds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, errPlain := trPlain.Histogram(d)
	if errBatched == nil || errPlain == nil {
		t.Fatalf("expected out-of-domain error on both paths, got batched %v, plain %v", errBatched, errPlain)
	}
	if errBatched.Error() != errPlain.Error() {
		t.Fatalf("error text differs:\nbatched: %v\nplain:   %v", errBatched, errPlain)
	}
}

// TestEvaluateBatchSkipsIneligible: implicit transformations, opaque
// predicates and foreign Transformeds must be skipped without panicking,
// and plain evaluation must still work afterwards.
func TestEvaluateBatchSkipsIneligible(t *testing.T) {
	s := columnarSchema(t)
	rng := rand.New(rand.NewSource(7))
	d := randDomainTable(rng, s, 100)

	c := NewTransformCache(Options{})
	// An opaque Func predicate: kernels cannot compile.
	f := breakpointFunc{
		Func: dataset.Func{
			Name:      "always",
			ReadAttrs: []string{"age"},
			Fn:        func(*dataset.Schema, dataset.Tuple) bool { return true },
		},
		bps: map[string][]float64{"age": {50}},
	}
	trFunc, err := c.Transform(s, []dataset.Predicate{f})
	if err != nil {
		t.Fatal(err)
	}
	// A Transformed built outside any cache (no memo).
	trForeign, err := Transform(s, []dataset.Predicate{dataset.Range{Attr: "age", Lo: 0, Hi: 50}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c.EvaluateBatch(d, []BatchItem{
		{Tr: trFunc, Histogram: true, Truth: true},
		{Tr: trForeign, Histogram: true, Truth: true},
		{Tr: nil, Histogram: true},
	})
	truth := trFunc.TrueAnswers(d)
	if truth[0] != float64(d.Size()) {
		t.Fatalf("opaque TRUE predicate counted %v of %d rows", truth[0], d.Size())
	}
}
