package workload

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/dataset"
)

func columnarSchema(t *testing.T) *dataset.Schema {
	t.Helper()
	s, err := dataset.NewSchema(
		dataset.Attribute{Name: "age", Kind: dataset.Continuous, Min: 0, Max: 100},
		dataset.Attribute{Name: "state", Kind: dataset.Categorical, Values: []string{"CA", "NY", "TX"}},
		dataset.Attribute{Name: "gain", Kind: dataset.Continuous, Min: 0, Max: 1000},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// randDomainTable fills a table with in-domain values plus NULLs — the
// rows Histogram must partition without error.
func randDomainTable(rng *rand.Rand, s *dataset.Schema, n int) *dataset.Table {
	t := dataset.NewTable(s)
	row := make(dataset.Tuple, s.Arity())
	for i := 0; i < n; i++ {
		for pos := 0; pos < s.Arity(); pos++ {
			a := s.Attr(pos)
			switch {
			case rng.Float64() < 0.08:
				row[pos] = dataset.Null
			case a.Kind == dataset.Categorical:
				row[pos] = dataset.Str(a.Values[rng.Intn(len(a.Values))])
			default:
				row[pos] = dataset.Num(a.Min + rng.Float64()*(a.Max-a.Min))
			}
		}
		t.MustAppend(row)
	}
	return t
}

// randWorkload builds a random transformable workload mixing range,
// comparison, equality, null and boolean-combination predicates.
func randWorkload(rng *rand.Rand, s *dataset.Schema, l int) []dataset.Predicate {
	contAttrs := []string{"age", "gain"}
	maxOf := map[string]float64{"age": 100, "gain": 1000}
	atom := func() dataset.Predicate {
		switch rng.Intn(4) {
		case 0:
			a := contAttrs[rng.Intn(2)]
			lo := rng.Float64() * maxOf[a]
			return dataset.Range{Attr: a, Lo: lo, Hi: lo + rng.Float64()*maxOf[a]/2}
		case 1:
			a := contAttrs[rng.Intn(2)]
			return dataset.NumCmp{Attr: a, Op: dataset.CmpOp(rng.Intn(6)), C: rng.Float64() * maxOf[a]}
		case 2:
			vals := []string{"CA", "NY", "TX"}
			return dataset.StrEq{Attr: "state", Val: vals[rng.Intn(3)]}
		default:
			attrs := []string{"age", "state", "gain"}
			return dataset.IsNull{Attr: attrs[rng.Intn(3)]}
		}
	}
	out := make([]dataset.Predicate, l)
	for i := range out {
		switch rng.Intn(4) {
		case 0:
			out[i] = dataset.And{atom(), atom()}
		case 1:
			out[i] = dataset.Or{atom(), atom()}
		case 2:
			out[i] = dataset.Not{P: atom()}
		default:
			out[i] = atom()
		}
	}
	return out
}

// TestColumnarKernelsMatchRowPathRandomized is the workload-level
// differential test: for random workloads over random tables, the
// columnar Histogram and TrueAnswers must match the row-at-a-time
// reference exactly (counts are integers, so equality is exact).
func TestColumnarKernelsMatchRowPathRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	s := columnarSchema(t)
	for trial := 0; trial < 40; trial++ {
		d := randDomainTable(rng, s, 100+rng.Intn(300))
		preds := randWorkload(rng, s, 1+rng.Intn(8))
		tr, err := Transform(s, preds, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		truth := tr.TrueAnswers(d)
		rows := tr.TrueAnswersRows(d)
		for j := range truth {
			if truth[j] != rows[j] {
				t.Fatalf("trial %d: TrueAnswers[%d] columnar %v vs rows %v (workload %v)",
					trial, j, truth[j], rows[j], preds)
			}
		}
		if !tr.Materialized() {
			continue
		}
		x, err := tr.Histogram(d)
		if err != nil {
			t.Fatalf("trial %d: columnar histogram: %v", trial, err)
		}
		xr, err := tr.HistogramRows(d)
		if err != nil {
			t.Fatalf("trial %d: row histogram: %v", trial, err)
		}
		var mass float64
		for p := range x {
			if x[p] != xr[p] {
				t.Fatalf("trial %d: Histogram[%d] columnar %v vs rows %v", trial, p, x[p], xr[p])
			}
			mass += x[p]
		}
		if mass != float64(d.Size()) {
			t.Fatalf("trial %d: histogram mass %v != |D| %d", trial, mass, d.Size())
		}
		// Wx must equal the true answers (the defining identity of T_W).
		for j := range preds {
			var dot float64
			for p := 0; p < tr.NumPartitions(); p++ {
				dot += tr.Matrix().At(j, p) * x[p]
			}
			if math.Abs(dot-truth[j]) > 1e-9 {
				t.Fatalf("trial %d: W·x = %v but true answer %v for predicate %d", trial, dot, truth[j], j)
			}
		}
	}
}

// TestHistogramOutOfDomainErrorParity: a tuple outside the public domain
// must fail identically on both paths.
func TestHistogramOutOfDomainErrorParity(t *testing.T) {
	s := columnarSchema(t)
	d := dataset.NewTable(s)
	d.MustAppend(dataset.Tuple{dataset.Num(30), dataset.Str("CA"), dataset.Num(10)})
	// age 200 breaks the public domain [0,100]: the predicate below is
	// satisfiable only beyond it, a signature no representative cell has.
	d.MustAppend(dataset.Tuple{dataset.Num(200), dataset.Str("CA"), dataset.Num(10)})
	preds := []dataset.Predicate{dataset.NumCmp{Attr: "age", Op: dataset.Ge, C: 150}}
	tr, err := Transform(s, preds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, errCol := tr.Histogram(d)
	_, errRow := tr.HistogramRows(d)
	if errCol == nil || errRow == nil {
		t.Fatalf("expected out-of-domain error on both paths, got columnar %v, rows %v", errCol, errRow)
	}
	if errCol.Error() != errRow.Error() {
		t.Fatalf("error text differs:\ncolumnar: %v\nrows:     %v", errCol, errRow)
	}
}

// TestFuncPredicateFallsBackToRows: an opaque predicate with declared
// breakpoints transforms fine but cannot compile; evaluation must fall
// back to the row path and still be exact.
func TestFuncPredicateFallsBackToRows(t *testing.T) {
	s := columnarSchema(t)
	f := breakpointFunc{
		Func: dataset.Func{
			Name:      "age-even-decade",
			ReadAttrs: []string{"age"},
			Fn: func(sc *dataset.Schema, tu dataset.Tuple) bool {
				i, _ := sc.Lookup("age")
				v, ok := tu[i].AsNum()
				return ok && int(v/10)%2 == 0
			},
		},
		bps: map[string][]float64{"age": {0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}},
	}
	preds := []dataset.Predicate{f}
	tr, err := Transform(s, preds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	d := randDomainTable(rng, s, 400)
	truth := tr.TrueAnswers(d)
	rows := tr.TrueAnswersRows(d)
	if truth[0] != rows[0] {
		t.Fatalf("fallback mismatch: %v vs %v", truth[0], rows[0])
	}
	x, err := tr.Histogram(d)
	if err != nil {
		t.Fatal(err)
	}
	xr, err := tr.HistogramRows(d)
	if err != nil {
		t.Fatal(err)
	}
	for p := range x {
		if x[p] != xr[p] {
			t.Fatalf("histogram fallback mismatch at %d", p)
		}
	}
}

type breakpointFunc struct {
	dataset.Func
	bps map[string][]float64
}

func (b breakpointFunc) Breakpoints() map[string][]float64 { return b.bps }

// TestTransformCacheSharesOneEvaluation: concurrent Transform calls for
// the same workload return one Transformed, and its memoized evaluations
// are computed once per table yet handed out as independent copies.
func TestTransformCacheSharesOneEvaluation(t *testing.T) {
	s := columnarSchema(t)
	rng := rand.New(rand.NewSource(9))
	d := randDomainTable(rng, s, 300)
	preds, err := Histogram1D("age", 0, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	c := NewTransformCache(Options{})

	const callers = 8
	trs := make([]*Transformed, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, err := c.Transform(s, preds)
			if err != nil {
				t.Error(err)
				return
			}
			trs[i] = tr
			if _, err := tr.Histogram(d); err != nil {
				t.Error(err)
			}
			tr.TrueAnswers(d)
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if trs[i] != trs[0] {
			t.Fatal("cache returned distinct Transformed values for one workload")
		}
	}
	if c.Len() != 1 {
		t.Fatalf("cache has %d entries", c.Len())
	}

	// Handed-out slices are copies: a caller scribbling on its answer
	// must not poison the cache.
	a := trs[0].TrueAnswers(d)
	a[0] = -12345
	b := trs[0].TrueAnswers(d)
	if b[0] == -12345 {
		t.Fatal("memoized TrueAnswers leaked shared backing storage")
	}
	h1, err := trs[0].Histogram(d)
	if err != nil {
		t.Fatal(err)
	}
	h1[0] = -1
	h2, err := trs[0].Histogram(d)
	if err != nil {
		t.Fatal(err)
	}
	if h2[0] == -1 {
		t.Fatal("memoized Histogram leaked shared backing storage")
	}

	// Appending invalidates: the size-keyed memo must recompute.
	before := trs[0].TrueAnswers(d)
	d.MustAppend(dataset.Tuple{dataset.Num(5), dataset.Str("CA"), dataset.Num(1)})
	after := trs[0].TrueAnswers(d)
	if after[0] != before[0]+1 {
		t.Fatalf("memo served stale answers after append: %v then %v", before[0], after[0])
	}
}

// TestTransformCacheRejectsForeignSchema: compiled kernels bake in
// attribute positions, so one cache must refuse a second schema instead
// of serving kernels for the wrong table layout.
func TestTransformCacheRejectsForeignSchema(t *testing.T) {
	s1 := columnarSchema(t)
	s2, err := dataset.NewSchema(
		dataset.Attribute{Name: "state", Kind: dataset.Categorical, Values: []string{"CA"}},
		dataset.Attribute{Name: "age", Kind: dataset.Continuous, Min: 0, Max: 100},
	)
	if err != nil {
		t.Fatal(err)
	}
	c := NewTransformCache(Options{})
	preds := []dataset.Predicate{dataset.Range{Attr: "age", Lo: 0, Hi: 50}}
	if _, err := c.Transform(s1, preds); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Transform(s2, preds); err == nil {
		t.Fatal("same cache across two schemas must error")
	}
	// The bound schema keeps working.
	if _, err := c.Transform(s1, preds); err != nil {
		t.Fatal(err)
	}
}

// TestTransformCacheBoundsEntries: a long-lived server cache must not
// grow without bound as analysts mint distinct workload keys.
func TestTransformCacheBoundsEntries(t *testing.T) {
	s := columnarSchema(t)
	c := NewTransformCache(Options{})
	for i := 0; i < 600; i++ {
		preds := []dataset.Predicate{dataset.Range{Attr: "age", Lo: float64(i % 100), Hi: float64(i%100) + 0.5}}
		if i%7 == 0 {
			preds[0] = dataset.NumCmp{Attr: "gain", Op: dataset.Lt, C: float64(i)}
		}
		if _, err := c.Transform(s, preds); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Len(); got > 256 {
		t.Fatalf("cache grew to %d entries, bound is 256", got)
	}
}

// TestHistogramErrorParityAcrossComponents: when different rows are
// out-of-domain in different components, both paths must still report
// the same (first) failing row — the row path scans rows outermost, so
// the columnar kernel has to take the minimum across components.
func TestHistogramErrorParityAcrossComponents(t *testing.T) {
	s := columnarSchema(t)
	// Two components: one over age, one over gain; each predicate is
	// satisfiable only beyond its public domain.
	preds := []dataset.Predicate{
		dataset.NumCmp{Attr: "age", Op: dataset.Ge, C: 150},
		dataset.NumCmp{Attr: "gain", Op: dataset.Ge, C: 5000},
	}
	tr, err := Transform(s, preds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := dataset.NewTable(s)
	// Row 0 breaks only the gain component (second in component order);
	// row 1 breaks only the age component (first in component order).
	d.MustAppend(dataset.Tuple{dataset.Num(10), dataset.Str("CA"), dataset.Num(9000)})
	d.MustAppend(dataset.Tuple{dataset.Num(200), dataset.Str("CA"), dataset.Num(10)})
	_, errCol := tr.Histogram(d)
	_, errRow := tr.HistogramRows(d)
	if errCol == nil || errRow == nil {
		t.Fatalf("expected errors, got columnar %v, rows %v", errCol, errRow)
	}
	if errCol.Error() != errRow.Error() {
		t.Fatalf("error text differs:\ncolumnar: %v\nrows:     %v", errCol, errRow)
	}
	if !strings.Contains(errRow.Error(), "row 0") {
		t.Fatalf("row path should fail at row 0, got %v", errRow)
	}
}
