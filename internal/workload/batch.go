package workload

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/dataset"
)

// BatchItem asks for one workload's noise-free evaluations to be warmed:
// the partition histogram and/or the exact per-predicate answers.
type BatchItem struct {
	Tr        *Transformed
	Histogram bool
	Truth     bool
}

// BatchStats reports what one EvaluateBatch actually scanned — the
// scheduler's feed for the scan-bandwidth counters
// (apex_scan_bytes_total / apex_scan_rows_total) and its cold-column
// release planner. Zero-valued when the batch had nothing to warm.
type BatchStats struct {
	// UniquePredicates is the deduplicated predicate count: the number of
	// full-column scans the batch ran, regardless of how many workloads
	// shared each one.
	UniquePredicates int
	// Rows is UniquePredicates × table rows — the numerator of the
	// rows-per-byte bandwidth figure.
	Rows int64
	// ScanBytes is the column storage those scans read: packed words for
	// v2 columns, full-width slices for v1/heap ones, summed per scan (a
	// column referenced by three unique predicates counts three times,
	// matching the traffic the kernels actually issue).
	ScanBytes int64
	// Columns is the deduplicated, sorted set of schema positions the
	// batch planned — what was prefetched, and what the cold-column
	// planner marks as recently hot.
	Columns []int
}

// EvaluateBatch warms the noise-free evaluation memos of several
// workloads over one table in a single grouped columnar pass: the
// predicates of every batched workload are deduplicated by their
// canonical rendered form (the same identity Key uses), each unique
// predicate is evaluated exactly once — in parallel across CPUs — and
// every workload's histogram/true-answer memo is then assembled from the
// shared bitmaps. N pending distinct workloads that share predicates
// cost one scan per unique predicate instead of one per (workload,
// predicate) pair, and the table's columns stay hot across the group.
//
// The assembly runs the identical accumulation code as the unbatched
// path, so memoized results — including out-of-domain errors — are
// bit-for-bit what an unbatched evaluation would have produced; later
// Histogram/TrueAnswers calls simply hit the memo. Workloads whose
// kernels cannot compile (opaque predicates), that were not produced by
// this cache, or whose results are already memoized are skipped — their
// mechanisms evaluate through the ordinary path, so warming is never
// required for correctness.
//
// Before the scans run, the batch's planned column set — the union of
// the deduplicated predicates' attributes — is handed to the table's
// column-granular prefetch hook (dataset.Table.PrefetchColumns), so an
// mmap-backed table advises WILLNEED over exactly the byte ranges this
// batch will read and nothing else. The returned BatchStats describe the
// scans that actually ran.
// ScanPlan predicts the columnar scan a noise-free evaluation of this
// workload alone would issue over d, without running it: the deduplicated
// sorted column set and the byte traffic. It runs the identical
// accounting as EvaluateBatch's plan pass — predicates deduplicated by
// their canonical rendered form, each unique predicate's columns summed
// via d.ColumnScanBytes — so for a single-workload batch the predicted
// ScanBytes equals BatchStats.ScanBytes exactly. ok is false when some
// predicate cannot compile to a columnar kernel (the evaluation would
// take the row path, whose traffic the column accounting does not model).
func (tr *Transformed) ScanPlan(d *dataset.Table) (cols []int, scanBytes int64, ok bool) {
	k := tr.kernels()
	if k.err != nil {
		return nil, 0, false
	}
	uniq := make(map[string]bool, len(tr.preds))
	seen := make(map[int]bool)
	for j, p := range tr.preds {
		key := p.String()
		if uniq[key] {
			continue
		}
		uniq[key] = true
		for _, pos := range k.preds[j].Columns() {
			scanBytes += d.ColumnScanBytes(pos)
			if !seen[pos] {
				seen[pos] = true
				cols = append(cols, pos)
			}
		}
	}
	sort.Ints(cols)
	return cols, scanBytes, true
}

func (c *TransformCache) EvaluateBatch(d *dataset.Table, items []BatchItem) BatchStats {
	type shared struct {
		cp *dataset.CompiledPredicate
		bm *dataset.Bitmap
	}
	uniq := make(map[string]*shared)
	var order []*shared

	// Collection pass: decide what each item still needs and map its
	// predicates onto the deduplicated evaluation set.
	type task struct {
		tr         *Transformed
		srcs       []*shared // aligned with tr.preds
		hist, trut bool
	}
	var tasks []task
	for _, it := range items {
		tr := it.Tr
		if tr == nil || tr.memo == nil {
			continue
		}
		k := tr.kernels()
		if k.err != nil {
			continue
		}
		// Histogram is only defined for materialized transformations, and
		// anything already memoized needs no work.
		hist := it.Histogram && tr.Materialized() && !tr.memo.ready(&tr.memo.hist, d)
		trut := it.Truth && !tr.memo.ready(&tr.memo.truth, d)
		if !hist && !trut {
			continue
		}
		srcs := make([]*shared, len(tr.preds))
		for j, p := range tr.preds {
			key := p.String()
			s, ok := uniq[key]
			if !ok {
				s = &shared{cp: k.preds[j]}
				uniq[key] = s
				order = append(order, s)
			}
			srcs[j] = s
		}
		tasks = append(tasks, task{tr: tr, srcs: srcs, hist: hist, trut: trut})
	}
	if len(tasks) == 0 {
		return BatchStats{}
	}

	// Plan pass: derive the batch's column set from the deduplicated
	// predicates and prefetch only those byte ranges, before the first
	// kernel faults a page. ScanBytes counts each unique predicate's
	// column reads separately — that is the traffic the scans issue.
	stats := BatchStats{UniquePredicates: len(order), Rows: int64(len(order)) * int64(d.Size())}
	seen := make(map[int]bool)
	for _, s := range order {
		for _, pos := range s.cp.Columns() {
			stats.ScanBytes += d.ColumnScanBytes(pos)
			if !seen[pos] {
				seen[pos] = true
				stats.Columns = append(stats.Columns, pos)
			}
		}
	}
	sort.Ints(stats.Columns)
	d.PrefetchColumns(stats.Columns)

	// Evaluation pass: one columnar scan per unique predicate across the
	// whole batch, spread over the CPUs.
	if nw := min(runtime.GOMAXPROCS(0), len(order)); nw > 1 {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(order) {
						return
					}
					order[i].bm = order[i].cp.Eval(d)
				}
			}()
		}
		wg.Wait()
	} else {
		for _, s := range order {
			s.bm = s.cp.Eval(d)
		}
	}

	// Assembly pass: fill each workload's memo from the shared bitmaps.
	for _, t := range tasks {
		get := func(pi int, _ *dataset.Bitmap) *dataset.Bitmap { return t.srcs[pi].bm }
		if t.hist {
			t.tr.memo.warmHistogram(t.tr, d, get)
		}
		if t.trut {
			t.tr.memo.warmTruth(t.tr, d, get)
		}
	}
	return stats
}
