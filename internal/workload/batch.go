package workload

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/dataset"
)

// BatchItem asks for one workload's noise-free evaluations to be warmed:
// the partition histogram and/or the exact per-predicate answers.
type BatchItem struct {
	Tr        *Transformed
	Histogram bool
	Truth     bool
}

// EvaluateBatch warms the noise-free evaluation memos of several
// workloads over one table in a single grouped columnar pass: the
// predicates of every batched workload are deduplicated by their
// canonical rendered form (the same identity Key uses), each unique
// predicate is evaluated exactly once — in parallel across CPUs — and
// every workload's histogram/true-answer memo is then assembled from the
// shared bitmaps. N pending distinct workloads that share predicates
// cost one scan per unique predicate instead of one per (workload,
// predicate) pair, and the table's columns stay hot across the group.
//
// The assembly runs the identical accumulation code as the unbatched
// path, so memoized results — including out-of-domain errors — are
// bit-for-bit what an unbatched evaluation would have produced; later
// Histogram/TrueAnswers calls simply hit the memo. Workloads whose
// kernels cannot compile (opaque predicates), that were not produced by
// this cache, or whose results are already memoized are skipped — their
// mechanisms evaluate through the ordinary path, so warming is never
// required for correctness.
func (c *TransformCache) EvaluateBatch(d *dataset.Table, items []BatchItem) {
	type shared struct {
		cp *dataset.CompiledPredicate
		bm *dataset.Bitmap
	}
	uniq := make(map[string]*shared)
	var order []*shared

	// Collection pass: decide what each item still needs and map its
	// predicates onto the deduplicated evaluation set.
	type task struct {
		tr         *Transformed
		srcs       []*shared // aligned with tr.preds
		hist, trut bool
	}
	var tasks []task
	for _, it := range items {
		tr := it.Tr
		if tr == nil || tr.memo == nil {
			continue
		}
		k := tr.kernels()
		if k.err != nil {
			continue
		}
		// Histogram is only defined for materialized transformations, and
		// anything already memoized needs no work.
		hist := it.Histogram && tr.Materialized() && !tr.memo.ready(&tr.memo.hist, d)
		trut := it.Truth && !tr.memo.ready(&tr.memo.truth, d)
		if !hist && !trut {
			continue
		}
		srcs := make([]*shared, len(tr.preds))
		for j, p := range tr.preds {
			key := p.String()
			s, ok := uniq[key]
			if !ok {
				s = &shared{cp: k.preds[j]}
				uniq[key] = s
				order = append(order, s)
			}
			srcs[j] = s
		}
		tasks = append(tasks, task{tr: tr, srcs: srcs, hist: hist, trut: trut})
	}
	if len(tasks) == 0 {
		return
	}

	// Evaluation pass: one columnar scan per unique predicate across the
	// whole batch, spread over the CPUs.
	if nw := min(runtime.GOMAXPROCS(0), len(order)); nw > 1 {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(order) {
						return
					}
					order[i].bm = order[i].cp.Eval(d)
				}
			}()
		}
		wg.Wait()
	} else {
		for _, s := range order {
			s.bm = s.cp.Eval(d)
		}
	}

	// Assembly pass: fill each workload's memo from the shared bitmaps.
	for _, t := range tasks {
		get := func(pi int, _ *dataset.Bitmap) *dataset.Bitmap { return t.srcs[pi].bm }
		if t.hist {
			t.tr.memo.warmHistogram(t.tr, d, get)
		}
		if t.trut {
			t.tr.memo.warmTruth(t.tr, d, get)
		}
	}
}
