package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustMatrix(t *testing.T, rows [][]float64) *Matrix {
	t.Helper()
	m, err := NewMatrixFromRows(rows)
	if err != nil {
		t.Fatalf("NewMatrixFromRows: %v", err)
	}
	return m
}

func TestNewMatrixFromRowsRagged(t *testing.T) {
	if _, err := NewMatrixFromRows([][]float64{{1, 2}, {3}}); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestNewMatrixFromRowsEmpty(t *testing.T) {
	m, err := NewMatrixFromRows(nil)
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if m.Rows() != 0 || m.Cols() != 0 {
		t.Fatalf("want 0x0, got %dx%d", m.Rows(), m.Cols())
	}
}

func TestIdentityMulVec(t *testing.T) {
	id := Identity(4)
	x := []float64{1, 2, 3, 4}
	y, err := id.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if y[i] != x[i] {
			t.Fatalf("identity changed vector at %d: %v", i, y)
		}
	}
}

func TestMulShapes(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(4, 2)
	if _, err := a.Mul(b); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
	if _, err := a.MulVec([]float64{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestMulKnown(t *testing.T) {
	a := mustMatrix(t, [][]float64{{1, 2}, {3, 4}})
	b := mustMatrix(t, [][]float64{{5, 6}, {7, 8}})
	got, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := mustMatrix(t, [][]float64{{19, 22}, {43, 50}})
	if !got.Equal(want, 0) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestTranspose(t *testing.T) {
	a := mustMatrix(t, [][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows() != 3 || at.Cols() != 2 {
		t.Fatalf("bad shape %dx%d", at.Rows(), at.Cols())
	}
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestInverseKnown(t *testing.T) {
	a := mustMatrix(t, [][]float64{{4, 7}, {2, 6}})
	inv, err := a.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	want := mustMatrix(t, [][]float64{{0.6, -0.7}, {-0.2, 0.4}})
	if !inv.Equal(want, 1e-12) {
		t.Fatalf("got %v want %v", inv, want)
	}
}

func TestInverseSingular(t *testing.T) {
	a := mustMatrix(t, [][]float64{{1, 2}, {2, 4}})
	if _, err := a.Inverse(); !errors.Is(err, ErrSingular) {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestInverseNonSquare(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := a.Inverse(); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestInverseRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(8)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			// Diagonal dominance keeps the matrix comfortably nonsingular.
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		inv, err := a.Inverse()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		prod, err := a.Mul(inv)
		if err != nil {
			t.Fatal(err)
		}
		if !prod.Equal(Identity(n), 1e-8) {
			t.Fatalf("trial %d: A·A⁻¹ != I: %v", trial, prod)
		}
	}
}

func TestPseudoInverseFullColumnRank(t *testing.T) {
	// Tall matrix with independent columns: A⁺A = I.
	a := mustMatrix(t, [][]float64{{1, 0}, {0, 1}, {1, 1}})
	pinv, err := a.PseudoInverse()
	if err != nil {
		t.Fatal(err)
	}
	prod, err := pinv.Mul(a)
	if err != nil {
		t.Fatal(err)
	}
	if !prod.Equal(Identity(2), 1e-9) {
		t.Fatalf("A⁺A != I: %v", prod)
	}
}

func TestPseudoInverseReconstruction(t *testing.T) {
	// W rows must be reconstructable: W·A⁺·A = W for A spanning W's row space.
	a := mustMatrix(t, [][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {1, 1, 1}})
	w := mustMatrix(t, [][]float64{{1, 1, 0}, {0, 1, 1}, {1, 1, 1}})
	pinv, err := a.PseudoInverse()
	if err != nil {
		t.Fatal(err)
	}
	wap, err := w.Mul(pinv)
	if err != nil {
		t.Fatal(err)
	}
	back, err := wap.Mul(a)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(w, 1e-9) {
		t.Fatalf("WA⁺A != W: %v", back)
	}
}

func TestL1NormIsMaxColumnSum(t *testing.T) {
	a := mustMatrix(t, [][]float64{{1, -2}, {3, 0.5}})
	if got := a.L1Norm(); got != 4 {
		t.Fatalf("L1Norm = %v, want 4", got)
	}
}

func TestFrobeniusNorm(t *testing.T) {
	a := mustMatrix(t, [][]float64{{3, 0}, {0, 4}})
	if got := a.FrobeniusNorm(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Frobenius = %v, want 5", got)
	}
}

func TestMaxAbs(t *testing.T) {
	a := mustMatrix(t, [][]float64{{-7, 2}, {3, 4}})
	if got := a.MaxAbs(); got != 7 {
		t.Fatalf("MaxAbs = %v, want 7", got)
	}
}

func TestScaleAdd(t *testing.T) {
	a := mustMatrix(t, [][]float64{{1, 2}})
	b := mustMatrix(t, [][]float64{{3, 4}})
	sum, err := a.Clone().Scale(2).Add(b)
	if err != nil {
		t.Fatal(err)
	}
	want := mustMatrix(t, [][]float64{{5, 8}})
	if !sum.Equal(want, 0) {
		t.Fatalf("got %v want %v", sum, want)
	}
}

func TestAddShapeMismatch(t *testing.T) {
	if _, err := NewMatrix(1, 2).Add(NewMatrix(2, 1)); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestMulVecInto(t *testing.T) {
	a := mustMatrix(t, [][]float64{{1, 2}, {3, 4}})
	dst := make([]float64, 2)
	if err := a.MulVecInto(dst, []float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 3 || dst[1] != 7 {
		t.Fatalf("got %v", dst)
	}
	if err := a.MulVecInto(dst[:1], []float64{1, 1}); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestRowCloneIndependence(t *testing.T) {
	a := mustMatrix(t, [][]float64{{1, 2}})
	r := a.Row(0)
	r[0] = 99
	if a.At(0, 0) != 1 {
		t.Fatal("Row must copy")
	}
	c := a.Clone()
	c.Set(0, 0, 42)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone must copy")
	}
}

func TestSubVec(t *testing.T) {
	got, err := Sub([]float64{3, 5}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 || got[1] != 3 {
		t.Fatalf("got %v", got)
	}
	if _, err := Sub([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestLInfNorm(t *testing.T) {
	if got := LInfNorm([]float64{1, -9, 3}); got != 9 {
		t.Fatalf("got %v", got)
	}
	if got := LInfNorm(nil); got != 0 {
		t.Fatalf("empty vector: got %v", got)
	}
}

// Property: transposing twice is the identity.
func TestQuickTransposeInvolution(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		cols := len(vals)%4 + 1
		rows := len(vals) / cols
		if rows == 0 {
			return true
		}
		m := NewMatrix(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.Set(i, j, vals[i*cols+j])
			}
		}
		return m.T().T().Equal(m, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: L1 norm is absolutely homogeneous: ‖cA‖₁ = |c|·‖A‖₁.
func TestQuickL1Homogeneous(t *testing.T) {
	f := func(a, b, c, d, s float64) bool {
		if math.IsNaN(a+b+c+d+s) || math.IsInf(a+b+c+d+s, 0) {
			return true
		}
		// Bound magnitudes so products stay finite.
		clamp := func(x float64) float64 { return math.Mod(x, 1e6) }
		a, b, c, d, s = clamp(a), clamp(b), clamp(c), clamp(d), clamp(s)
		m, err := NewMatrixFromRows([][]float64{{a, b}, {c, d}})
		if err != nil {
			return false
		}
		lhs := m.Clone().Scale(s).L1Norm()
		rhs := math.Abs(s) * m.L1Norm()
		return math.Abs(lhs-rhs) <= 1e-6*(1+math.Abs(rhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: for random full-column-rank A, A⁺ satisfies the Penrose
// condition A·A⁺·A = A.
func TestQuickPenroseCondition(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		rows := 3 + rng.Intn(5)
		cols := 1 + rng.Intn(3)
		a := NewMatrix(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
		}
		pinv, err := a.PseudoInverse()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ap, err := a.Mul(pinv)
		if err != nil {
			t.Fatal(err)
		}
		apa, err := ap.Mul(a)
		if err != nil {
			t.Fatal(err)
		}
		if !apa.Equal(a, 1e-7) {
			t.Fatalf("trial %d: AA⁺A != A", trial)
		}
	}
}

func BenchmarkMulVec200(b *testing.B) {
	m := NewMatrix(200, 200)
	x := make([]float64, 200)
	for i := range x {
		x[i] = float64(i)
	}
	dst := make([]float64, 200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.MulVecInto(dst, x)
	}
}

func BenchmarkInverse100(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n := 100
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := a.Inverse(); err != nil {
			b.Fatal(err)
		}
	}
}
