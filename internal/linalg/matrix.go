// Package linalg provides the small dense linear-algebra kernel APEx needs:
// matrix/vector products, Gaussian-elimination inverses, Moore–Penrose
// pseudoinverses, and the matrix norms that appear in the accuracy-to-privacy
// translation formulas (the L1 column norm is the sensitivity of a workload,
// the Frobenius norm bounds strategy-mechanism error).
//
// Matrices are dense row-major float64. Everything is implemented from
// scratch on the standard library; sizes in APEx are small (a few hundred
// rows/columns), so cubic algorithms are fine.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	rows, cols int
	data       []float64
}

// ErrSingular is returned when an inverse of a singular matrix is requested.
var ErrSingular = errors.New("linalg: matrix is singular")

// ErrShape is returned when operand dimensions do not conform.
var ErrShape = errors.New("linalg: dimension mismatch")

// NewMatrix returns a zero rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative dimension")
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewMatrixFromRows builds a matrix from row slices. All rows must have the
// same length.
func NewMatrixFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("%w: row %d has %d entries, want %d", ErrShape, i, len(r), cols)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of bounds for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*out.cols+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// Mul returns m·b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.cols != b.rows {
		return nil, fmt.Errorf("%w: %dx%d · %dx%d", ErrShape, m.rows, m.cols, b.rows, b.cols)
	}
	out := NewMatrix(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		mrow := m.data[i*m.cols : (i+1)*m.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for k, mv := range mrow {
			if mv == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += mv * bv
			}
		}
	}
	return out, nil
}

// MulVec returns m·x as a new vector.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if m.cols != len(x) {
		return nil, fmt.Errorf("%w: %dx%d · vec(%d)", ErrShape, m.rows, m.cols, len(x))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// MulVecInto computes m·x into dst (len(dst) must equal m.Rows()).
// It avoids allocation on hot paths such as Monte-Carlo translation.
func (m *Matrix) MulVecInto(dst, x []float64) error {
	if m.cols != len(x) || m.rows != len(dst) {
		return ErrShape
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
	return nil
}

// MulVecLInf returns ‖m·x‖∞ without materializing the product vector.
// Each dot product accumulates in the same ascending-column order as
// MulVecInto, so the result is bit-identical to LInfNorm over a
// MulVecInto output — the property the Monte-Carlo translation's
// differential tests rely on.
func (m *Matrix) MulVecLInf(x []float64) (float64, error) {
	if m.cols != len(x) {
		return 0, ErrShape
	}
	var best float64
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		if a := math.Abs(s); a > best {
			best = a
		}
	}
	return best, nil
}

// Scale multiplies every entry by s in place and returns the receiver.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.data {
		m.data[i] *= s
	}
	return m
}

// Add returns m + b.
func (m *Matrix) Add(b *Matrix) (*Matrix, error) {
	if m.rows != b.rows || m.cols != b.cols {
		return nil, ErrShape
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] += b.data[i]
	}
	return out, nil
}

// L1Norm returns the maximum column L1 norm (max_j Σ_i |a_ij|). For a query
// matrix this equals the sensitivity of the workload (paper §5.1).
func (m *Matrix) L1Norm() float64 {
	var best float64
	for j := 0; j < m.cols; j++ {
		var s float64
		for i := 0; i < m.rows; i++ {
			s += math.Abs(m.data[i*m.cols+j])
		}
		if s > best {
			best = s
		}
	}
	return best
}

// FrobeniusNorm returns sqrt(ΣΣ a_ij²).
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns max |a_ij|, or 0 for an empty matrix.
func (m *Matrix) MaxAbs() float64 {
	var best float64
	for _, v := range m.data {
		if a := math.Abs(v); a > best {
			best = a
		}
	}
	return best
}

// Equal reports whether m and b have the same shape and entries within tol.
func (m *Matrix) Equal(b *Matrix, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i := range m.data {
		if math.Abs(m.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%dx%d[", m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			sb.WriteString("; ")
		}
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%g", m.data[i*m.cols+j])
		}
	}
	sb.WriteByte(']')
	return sb.String()
}

// Inverse returns the inverse of a square matrix via Gauss–Jordan
// elimination with partial pivoting.
func (m *Matrix) Inverse() (*Matrix, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("%w: inverse of %dx%d", ErrShape, m.rows, m.cols)
	}
	n := m.rows
	a := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Partial pivot: find the largest |a[r][col]| for r >= col.
		pivot := col
		best := math.Abs(a.data[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.data[r*n+col]); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(a, pivot, col)
			swapRows(inv, pivot, col)
		}
		p := a.data[col*n+col]
		for j := 0; j < n; j++ {
			a.data[col*n+j] /= p
			inv.data[col*n+j] /= p
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.data[r*n+col]
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				a.data[r*n+j] -= f * a.data[col*n+j]
				inv.data[r*n+j] -= f * inv.data[col*n+j]
			}
		}
	}
	return inv, nil
}

func swapRows(m *Matrix, i, j int) {
	ri := m.data[i*m.cols : (i+1)*m.cols]
	rj := m.data[j*m.cols : (j+1)*m.cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// PseudoInverse returns the Moore–Penrose pseudoinverse A⁺.
//
// For the strategy matrices APEx uses (identity, hierarchical H2) A has full
// column rank, so A⁺ = (AᵀA)⁻¹Aᵀ. If AᵀA is singular the routine falls back
// to ridge-regularized inversion with a tiny λ, which yields an approximate
// pseudoinverse adequate for reconstruction matrices.
func (m *Matrix) PseudoInverse() (*Matrix, error) {
	at := m.T()
	ata, err := at.Mul(m)
	if err != nil {
		return nil, err
	}
	inv, err := ata.Inverse()
	if err != nil {
		if !errors.Is(err, ErrSingular) {
			return nil, err
		}
		// Ridge fallback: (AᵀA + λI)⁻¹Aᵀ with λ scaled to the matrix.
		lambda := 1e-10 * (1 + ata.MaxAbs())
		reg := ata.Clone()
		for i := 0; i < reg.rows; i++ {
			reg.data[i*reg.cols+i] += lambda
		}
		inv, err = reg.Inverse()
		if err != nil {
			return nil, fmt.Errorf("linalg: pseudoinverse failed: %w", err)
		}
	}
	return inv.Mul(at)
}

// LInfNorm returns max_i |x_i| of a vector, or 0 for an empty vector.
func LInfNorm(x []float64) float64 {
	var best float64
	for _, v := range x {
		if a := math.Abs(v); a > best {
			best = a
		}
	}
	return best
}

// Sub returns a-b element-wise for vectors.
func Sub(a, b []float64) ([]float64, error) {
	if len(a) != len(b) {
		return nil, ErrShape
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out, nil
}
