// Package integration exercises end-to-end flows across module boundaries:
// parsed queries through the engine, CSV round trips into exploration
// sessions, adaptive sequences with budget exhaustion, and the §6 validity
// invariants under adversarial query streams.
package integration

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/accuracy"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/noise"
	"repro/internal/query"
	"repro/internal/workload"
)

func TestParsedQueryThroughEngine(t *testing.T) {
	table := datagen.Adult(5000, 1)
	eng, err := engine.New(table, engine.Config{
		Budget: 5, Mode: engine.Optimistic, Rng: noise.NewRand(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	q, err := query.Parse(`BIN D ON COUNT(*) WHERE W = {
		"capital gain" BETWEEN 0 AND 100,
		"capital gain" BETWEEN 100 AND 5000,
		"capital gain" >= 5000
	} ERROR 250 CONFIDENCE 0.999;`)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := eng.Ask(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Counts) != 3 {
		t.Fatalf("counts %v", ans.Counts)
	}
	// ~92% of rows have zero gain: first bin must dominate.
	if ans.Counts[0] < ans.Counts[1] || ans.Counts[0] < ans.Counts[2] {
		t.Fatalf("low-gain bin should dominate: %v", ans.Counts)
	}
}

func TestParsedICQAndTCQThroughEngine(t *testing.T) {
	table := datagen.Adult(5000, 2)
	eng, err := engine.New(table, engine.Config{
		Budget: 10, Mode: engine.Optimistic, Rng: noise.NewRand(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	icq, err := query.Parse(`BIN D ON COUNT(*) WHERE W = {
		sex = 'Male', sex = 'Female'
	} HAVING COUNT(*) > 2500 ERROR 250 CONFIDENCE 0.999;`)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := eng.Ask(icq)
	if err != nil {
		t.Fatal(err)
	}
	// ~67% male: only the Male bin exceeds half the table.
	if !ans.Selected[0] || ans.Selected[1] {
		t.Fatalf("ICQ selection %v", ans.Selected)
	}

	tcq, err := query.Parse(`BIN D ON COUNT(*) WHERE W = {
		workclass = 'Private', workclass = 'Never-worked', workclass = 'State-gov'
	} ORDER BY COUNT(*) LIMIT 1 ERROR 250 CONFIDENCE 0.999;`)
	if err != nil {
		t.Fatal(err)
	}
	ans, err = eng.Ask(tcq)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Selected[0] {
		t.Fatalf("Private must be the top workclass: %v", ans.Selected)
	}
}

func TestCSVRoundTripIntoEngine(t *testing.T) {
	orig := datagen.NYTaxi(2000, 3)
	var buf bytes.Buffer
	if err := dataset.WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := dataset.ReadCSV(&buf, orig.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != orig.Size() {
		t.Fatalf("round trip lost rows: %d vs %d", back.Size(), orig.Size())
	}
	eng, err := engine.New(back, engine.Config{Budget: 1, Rng: noise.NewRand(3)})
	if err != nil {
		t.Fatal(err)
	}
	bins, err := workload.Histogram1D("trip distance", 0, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	q, err := query.NewWCQ(bins, accuracy.Requirement{Alpha: 100, Beta: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Ask(q); err != nil {
		t.Fatal(err)
	}
}

// TestAdaptiveSequenceInvariants drives a randomized adaptive analyst
// against the engine and checks the §6 validity invariants on the final
// transcript: Σ actual ε ≤ B, every answer's reserved worst case also fit,
// and denials charge nothing.
func TestAdaptiveSequenceInvariants(t *testing.T) {
	table := datagen.Adult(4000, 4)
	budget := 1.5
	eng, err := engine.New(table, engine.Config{
		Budget: budget, Mode: engine.Optimistic, Rng: noise.NewRand(4),
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	var asked, denied int
	for i := 0; i < 120; i++ {
		q := randomQuery(t, rng, table.Size())
		ans, err := eng.Ask(q)
		switch {
		case errors.Is(err, engine.ErrDenied):
			denied++
			continue
		case err != nil:
			t.Fatal(err)
		}
		asked++
		if ans.Epsilon > ans.EpsilonUpper+1e-9 {
			t.Fatalf("actual %v above reserved %v", ans.Epsilon, ans.EpsilonUpper)
		}
		if eng.Spent() > budget+1e-9 {
			t.Fatalf("budget blown at query %d: %v", i, eng.Spent())
		}
	}
	var sum float64
	for _, e := range eng.Transcript() {
		if e.Denied && e.Epsilon != 0 {
			t.Fatal("denied entries must not charge")
		}
		sum += e.Epsilon
	}
	if math.Abs(sum-eng.Spent()) > 1e-9 {
		t.Fatalf("transcript sum %v != spent %v", sum, eng.Spent())
	}
	if asked == 0 {
		t.Fatal("no queries answered; fixture too tight")
	}
	if denied == 0 {
		t.Fatal("budget never exhausted; fixture too loose")
	}
	t.Logf("answered %d, denied %d, spent %.4f of %.1f", asked, denied, eng.Spent(), budget)
}

// randomQuery builds a random valid query over the Adult schema.
func randomQuery(t *testing.T, rng *rand.Rand, size int) *query.Query {
	t.Helper()
	alphaFrac := []float64{0.04, 0.08, 0.16, 0.32}[rng.Intn(4)]
	req := accuracy.Requirement{Alpha: alphaFrac * float64(size), Beta: 0.001}
	var preds []dataset.Predicate
	switch rng.Intn(3) {
	case 0:
		var err error
		preds, err = workload.Histogram1D("age", 0, 100, 10)
		if err != nil {
			t.Fatal(err)
		}
	case 1:
		var err error
		preds, err = workload.Prefix1D("capital gain", 0, 5000, 500)
		if err != nil {
			t.Fatal(err)
		}
	default:
		preds = workload.CategoryPredicates("workclass", datagen.AdultWorkclasses)
	}
	var q *query.Query
	var err error
	switch rng.Intn(3) {
	case 0:
		q, err = query.NewWCQ(preds, req)
	case 1:
		q, err = query.NewICQ(preds, float64(rng.Intn(size)), req)
	default:
		q, err = query.NewTCQ(preds, 1+rng.Intn(3), req)
	}
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestAccuracyContractAcrossEngine verifies the engine-level accuracy
// promise end to end: across repeated asks of a WCQ, the fraction of runs
// whose max error exceeds α stays at or below β (with slack for Monte-Carlo
// variation).
func TestAccuracyContractAcrossEngine(t *testing.T) {
	table := datagen.Adult(4000, 5)
	bins, err := workload.Histogram1D("age", 0, 100, 20)
	if err != nil {
		t.Fatal(err)
	}
	req := accuracy.Requirement{Alpha: 0.04 * 4000, Beta: 0.05}
	q, err := query.NewWCQ(bins, req)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.Transform(table.Schema(), bins, workload.Options{})
	if err != nil {
		t.Fatal(err)
	}
	truth := tr.TrueAnswers(table)
	eng, err := engine.New(table, engine.Config{
		Budget: 1e9, Mode: engine.Optimistic, Rng: noise.NewRand(5),
	})
	if err != nil {
		t.Fatal(err)
	}
	const runs = 400
	var failures int
	for i := 0; i < runs; i++ {
		ans, err := eng.Ask(q)
		if err != nil {
			t.Fatal(err)
		}
		e, err := accuracy.WCQError(truth, ans.Counts)
		if err != nil {
			t.Fatal(err)
		}
		if e >= req.Alpha {
			failures++
		}
	}
	if rate := float64(failures) / runs; rate > req.Beta {
		t.Fatalf("engine-level failure rate %v exceeds beta %v", rate, req.Beta)
	}
}

// TestConcurrentAsksAreSafe runs parallel analysts against one engine and
// checks the budget invariant still holds (the engine serializes charging).
func TestConcurrentAsksAreSafe(t *testing.T) {
	table := datagen.Adult(2000, 6)
	budget := 0.8
	eng, err := engine.New(table, engine.Config{
		Budget: budget, Mode: engine.Optimistic, Rng: noise.NewRand(6),
	})
	if err != nil {
		t.Fatal(err)
	}
	bins, err := workload.Histogram1D("age", 0, 100, 25)
	if err != nil {
		t.Fatal(err)
	}
	q, err := query.NewWCQ(bins, accuracy.Requirement{Alpha: 0.08 * 2000, Beta: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 20; i++ {
				if _, err := eng.Ask(q); err != nil && !errors.Is(err, engine.ErrDenied) {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if eng.Spent() > budget+1e-9 {
		t.Fatalf("concurrent budget blown: %v > %v", eng.Spent(), budget)
	}
}

// TestDatasetScaleInvariance pins the DESIGN.md claim justifying the NYTaxi
// size substitution: the privacy cost at accuracy α = frac·|D| depends on
// |D| only through frac, so halving the table halves nothing.
func TestDatasetScaleInvariance(t *testing.T) {
	costAt := func(rows int) float64 {
		table := datagen.NYTaxi(rows, 7)
		bins, err := workload.Histogram1D("trip distance", 0, 10, 1)
		if err != nil {
			t.Fatal(err)
		}
		q, err := query.NewWCQ(bins, accuracy.Requirement{Alpha: 0.08 * float64(rows), Beta: 0.001})
		if err != nil {
			t.Fatal(err)
		}
		eng, err := engine.New(table, engine.Config{Budget: 1e9, Rng: noise.NewRand(7)})
		if err != nil {
			t.Fatal(err)
		}
		ans, err := eng.Ask(q)
		if err != nil {
			t.Fatal(err)
		}
		return ans.Epsilon * float64(rows)
	}
	a, b := costAt(5000), costAt(20000)
	if math.Abs(a-b) > 1e-6*a {
		t.Fatalf("normalized cost must be size invariant: %v vs %v", a, b)
	}
}

func TestTranscriptReadableRendering(t *testing.T) {
	table := datagen.Adult(1000, 8)
	eng, err := engine.New(table, engine.Config{Budget: 2, Rng: noise.NewRand(8)})
	if err != nil {
		t.Fatal(err)
	}
	bins, err := workload.Histogram1D("age", 0, 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	q, err := query.NewWCQ(bins, accuracy.Requirement{Alpha: 100, Beta: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Ask(q); err != nil {
		t.Fatal(err)
	}
	for _, e := range eng.Transcript() {
		s := fmt.Sprintf("%s -> eps %.4f", e.Query, e.Epsilon)
		if len(s) == 0 {
			t.Fatal("unrenderable transcript entry")
		}
	}
}
