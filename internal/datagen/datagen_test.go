package datagen

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

func TestAdultShape(t *testing.T) {
	const n = 20000
	d := Adult(n, 1)
	if d.Size() != n {
		t.Fatalf("size %d", d.Size())
	}
	// ~92% zero capital gain.
	zeros := d.Count(dataset.NumCmp{Attr: "capital gain", Op: dataset.Eq, C: 0})
	if frac := float64(zeros) / n; frac < 0.88 || frac > 0.95 {
		t.Fatalf("zero-gain fraction %v, want ~0.92", frac)
	}
	// ~67% male.
	males := d.Count(dataset.StrEq{Attr: "sex", Val: "Male"})
	if frac := float64(males) / n; frac < 0.63 || frac > 0.71 {
		t.Fatalf("male fraction %v, want ~0.67", frac)
	}
	// The QI2 anchor bins: male & gain<100 near 0.61|D|, female & gain<100
	// near 0.31|D| (the structure behind Figure 4c).
	maleLow := d.Count(dataset.And{
		dataset.Range{Attr: "capital gain", Lo: 0, Hi: 100},
		dataset.StrEq{Attr: "sex", Val: "Male"},
	})
	if frac := float64(maleLow) / n; frac < 0.55 || frac > 0.68 {
		t.Fatalf("male low-gain fraction %v, want ~0.61", frac)
	}
	femaleLow := d.Count(dataset.And{
		dataset.Range{Attr: "capital gain", Lo: 0, Hi: 100},
		dataset.StrEq{Attr: "sex", Val: "Female"},
	})
	if frac := float64(femaleLow) / n; frac < 0.26 || frac > 0.36 {
		t.Fatalf("female low-gain fraction %v, want ~0.31", frac)
	}
}

func TestAdultAgesIntegerInRange(t *testing.T) {
	d := Adult(5000, 2)
	idx, _ := d.Schema().Lookup("age")
	for i := 0; i < d.Size(); i++ {
		v, ok := d.Row(i)[idx].AsNum()
		if !ok {
			t.Fatal("age must be numeric")
		}
		if v != math.Floor(v) || v < 17 || v > 90 {
			t.Fatalf("bad age %v", v)
		}
	}
}

func TestAdultDeterministic(t *testing.T) {
	a := Adult(100, 7)
	b := Adult(100, 7)
	for i := 0; i < 100; i++ {
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatalf("row %d differs at %d", i, j)
			}
		}
	}
	c := Adult(100, 8)
	same := true
	for i := 0; i < 100 && same; i++ {
		ra, rc := a.Row(i), c.Row(i)
		for j := range ra {
			if ra[j] != rc[j] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestAdultWithinPublicDomain(t *testing.T) {
	d := Adult(3000, 3)
	s := d.Schema()
	for i := 0; i < d.Size(); i++ {
		row := d.Row(i)
		for j := 0; j < s.Arity(); j++ {
			attr := s.Attr(j)
			v := row[j]
			if v.IsNull() {
				continue
			}
			switch attr.Kind {
			case dataset.Continuous:
				f, ok := v.AsNum()
				if !ok || f < attr.Min || f > attr.Max {
					t.Fatalf("row %d attr %q = %v outside [%v,%v]", i, attr.Name, v, attr.Min, attr.Max)
				}
			case dataset.Categorical:
				sv, ok := v.AsStr()
				if !ok {
					t.Fatalf("row %d attr %q not a string", i, attr.Name)
				}
				found := false
				for _, dom := range attr.Values {
					if dom == sv {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("row %d attr %q = %q outside domain", i, attr.Name, sv)
				}
			}
		}
	}
}

func TestNYTaxiShape(t *testing.T) {
	const n = 20000
	d := NYTaxi(n, 1)
	if d.Size() != n {
		t.Fatalf("size %d", d.Size())
	}
	// Most trips are short: over half under 4 miles.
	short := d.Count(dataset.Range{Attr: "trip distance", Lo: 0, Hi: 4})
	if frac := float64(short) / n; frac < 0.5 {
		t.Fatalf("short-trip fraction %v, want > 0.5", frac)
	}
	// Single-passenger dominates.
	solo := d.Count(dataset.NumCmp{Attr: "passenger count", Op: dataset.Eq, C: 1})
	if frac := float64(solo) / n; frac < 0.6 || frac > 0.8 {
		t.Fatalf("solo fraction %v, want ~0.71", frac)
	}
	// Fares start at the $2.50 flagfall.
	below := d.Count(dataset.NumCmp{Attr: "fare amount", Op: dataset.Lt, C: 2.5})
	if below != 0 {
		t.Fatalf("%d fares below flagfall", below)
	}
}

func TestNYTaxiTotalsConsistent(t *testing.T) {
	d := NYTaxi(2000, 2)
	s := d.Schema()
	fi, _ := s.Lookup("fare amount")
	ti, _ := s.Lookup("tip amount")
	oi, _ := s.Lookup("tolls amount")
	tot, _ := s.Lookup("total amount")
	for i := 0; i < d.Size(); i++ {
		row := d.Row(i)
		fare, _ := row[fi].AsNum()
		tip, _ := row[ti].AsNum()
		tolls, _ := row[oi].AsNum()
		total, _ := row[tot].AsNum()
		want := fare + tip + tolls + 0.5
		if math.Abs(total-want) > 0.011 {
			t.Fatalf("row %d total %v != %v", i, total, want)
		}
	}
}

func TestNYTaxiZonesSkewed(t *testing.T) {
	d := NYTaxi(20000, 3)
	// Zipf skew: the busiest decile of zones should carry a large share.
	low := d.Count(dataset.Range{Attr: "PUID", Lo: 1, Hi: 27})
	if frac := float64(low) / 20000; frac < 0.3 {
		t.Fatalf("top-zone share %v, want > 0.3 (skewed)", frac)
	}
}

func TestNYTaxiWithinPublicDomain(t *testing.T) {
	d := NYTaxi(3000, 4)
	s := d.Schema()
	for i := 0; i < d.Size(); i++ {
		row := d.Row(i)
		for j := 0; j < s.Arity(); j++ {
			attr := s.Attr(j)
			if attr.Kind != dataset.Continuous {
				continue
			}
			f, ok := row[j].AsNum()
			if !ok || f < attr.Min || f > attr.Max {
				t.Fatalf("row %d attr %q = %v outside [%v,%v]", i, attr.Name, row[j], attr.Min, attr.Max)
			}
		}
	}
}

func TestPickHelpers(t *testing.T) {
	rng := mustRng()
	counts := map[string]int{}
	for i := 0; i < 10000; i++ {
		counts[pickWeighted(rng, []string{"a", "b"}, []float64{0.9, 0.1})]++
	}
	if counts["a"] < 8500 {
		t.Fatalf("weighted pick off: %v", counts)
	}
	zc := map[string]int{}
	for i := 0; i < 10000; i++ {
		zc[pickZipf(rng, []string{"x", "y", "z"}, 1.0)]++
	}
	if !(zc["x"] > zc["y"] && zc["y"] > zc["z"]) {
		t.Fatalf("zipf ordering off: %v", zc)
	}
}

func mustRng() *rand.Rand { return rand.New(rand.NewSource(99)) }
