package datagen

import (
	"math"
	"math/rand"

	"repro/internal/dataset"
)

// NYTaxiSize is the row count of the paper's NYC yellow-taxi extract.
// Generating the full table is supported but the experiments default to a
// smaller sample: all privacy-cost formulas depend on α through the ratio
// α/|D|, so the curve shapes are size invariant (see DESIGN.md).
const NYTaxiSize = 9710124

// DefaultNYTaxiSize is the row count experiments use by default.
const DefaultNYTaxiSize = 100000

// Taxi categorical domains.
var (
	TaxiPaymentTypes = []string{"card", "cash", "no-charge", "dispute"}
	TaxiVendors      = []string{"CMT", "VTS"}
)

// NYTaxiSchema returns the public schema of the taxi table.
func NYTaxiSchema() *dataset.Schema {
	return dataset.MustSchema(
		dataset.Attribute{Name: "vendor", Kind: dataset.Categorical, Values: TaxiVendors},
		dataset.Attribute{Name: "pickup date", Kind: dataset.Continuous, Min: 1, Max: 31},
		dataset.Attribute{Name: "pickup hour", Kind: dataset.Continuous, Min: 0, Max: 23},
		dataset.Attribute{Name: "passenger count", Kind: dataset.Continuous, Min: 1, Max: 10},
		dataset.Attribute{Name: "trip distance", Kind: dataset.Continuous, Min: 0, Max: 100},
		dataset.Attribute{Name: "PUID", Kind: dataset.Continuous, Min: 1, Max: 265},
		dataset.Attribute{Name: "DOID", Kind: dataset.Continuous, Min: 1, Max: 265},
		dataset.Attribute{Name: "payment type", Kind: dataset.Categorical, Values: TaxiPaymentTypes},
		dataset.Attribute{Name: "fare amount", Kind: dataset.Continuous, Min: 0, Max: 500},
		dataset.Attribute{Name: "tip amount", Kind: dataset.Continuous, Min: 0, Max: 200},
		dataset.Attribute{Name: "tolls amount", Kind: dataset.Continuous, Min: 0, Max: 50},
		dataset.Attribute{Name: "total amount", Kind: dataset.Continuous, Min: 0, Max: 600},
	)
}

// NYTaxi generates n taxi trips with the yellow-cab distributional shape:
// exponential trip distances with a short-trip mode, fares metered off
// distance, Zipf-skewed pickup/dropoff zones, and mostly single passengers.
func NYTaxi(n int, seed int64) *dataset.Table {
	rng := rand.New(rand.NewSource(seed))
	s := NYTaxiSchema()
	t := dataset.NewTable(s)
	for i := 0; i < n; i++ {
		t.MustAppend(taxiRow(rng))
	}
	return t
}

func taxiRow(rng *rand.Rand) dataset.Tuple {
	dist := sampleTripDistance(rng)
	fare := meterFare(rng, dist)
	tip := 0.0
	payment := pickWeighted(rng, TaxiPaymentTypes, []float64{0.62, 0.36, 0.01, 0.01})
	if payment == "card" {
		tip = round2(fare * (0.1 + rng.Float64()*0.2))
	}
	tolls := 0.0
	if rng.Float64() < 0.05 {
		tolls = round2(2 + rng.Float64()*15)
	}
	total := round2(fare + tip + tolls + 0.5) // flat surcharge
	return dataset.Tuple{
		dataset.Str(pickWeighted(rng, TaxiVendors, []float64{0.47, 0.53})),
		dataset.Num(float64(1 + rng.Intn(31))),
		dataset.Num(sampleHour(rng)),
		dataset.Num(samplePassengers(rng)),
		dataset.Num(dist),
		dataset.Num(sampleZone(rng)),
		dataset.Num(sampleZone(rng)),
		dataset.Str(payment),
		dataset.Num(fare),
		dataset.Num(tip),
		dataset.Num(tolls),
		dataset.Num(total),
	}
}

// sampleTripDistance draws an exponential-ish distance (mean ~3 miles) with
// a spike of very short hops, giving QW3/QI3 their mass in the lowest bins.
func sampleTripDistance(rng *rand.Rand) float64 {
	if rng.Float64() < 0.12 {
		return round2(rng.Float64() * 1.0) // short hops < 1 mile
	}
	d := rng.ExpFloat64() * 2.8
	if d > 100 {
		d = 100
	}
	return round2(d)
}

// meterFare approximates the metered fare: flagfall plus per-mile rate with
// noise. Fares of short hops cluster under $10, matching the QI3/QI4
// threshold geometry.
func meterFare(rng *rand.Rand, dist float64) float64 {
	fare := 2.5 + dist*2.5 + rng.NormFloat64()*1.0
	if fare < 2.5 {
		fare = 2.5
	}
	if fare > 500 {
		fare = 500
	}
	return round2(fare)
}

func sampleHour(rng *rand.Rand) float64 {
	// Bimodal: morning and evening peaks.
	u := rng.Float64()
	switch {
	case u < 0.3:
		return clamp(math.Floor(8+rng.NormFloat64()*2), 0, 23)
	case u < 0.75:
		return clamp(math.Floor(18+rng.NormFloat64()*3), 0, 23)
	default:
		return float64(rng.Intn(24))
	}
}

func samplePassengers(rng *rand.Rand) float64 {
	u := rng.Float64()
	switch {
	case u < 0.71:
		return 1
	case u < 0.85:
		return 2
	case u < 0.91:
		return 3
	case u < 0.95:
		return 4
	case u < 0.98:
		return 5
	default:
		return float64(6 + rng.Intn(5))
	}
}

// sampleZone draws a taxi-zone id with Zipf skew (Manhattan zones dominate).
func sampleZone(rng *rand.Rand) float64 {
	// Inverse-CDF of a truncated Zipf over 1..265 approximated by a
	// power-law transform; clamps keep the value in the public domain.
	u := rng.Float64()
	z := math.Floor(1 + 264*math.Pow(u, 2.2))
	return clamp(z, 1, 265)
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }
