// Package datagen synthesizes the two evaluation datasets of the paper with
// matching schemas, sizes and distributional shape: the 1994 US Census
// "Adult" table (32,561 rows) and the NYC yellow-taxi trip table
// (9.7M rows in the paper; configurable here). The real files are not
// redistributable, so the generators reproduce the statistical structure
// the experiments depend on — zero-inflated capital gain with a long tail,
// a 2:1 sex ratio (which pins the two large bins of QI2 near 0.61|D| and
// 0.31|D| that drive Figure 4c), unimodal age, skewed taxi fares and
// pickup/dropoff zones — rather than the exact microdata.
package datagen

import (
	"math"
	"math/rand"

	"repro/internal/dataset"
)

// AdultSize is the row count of the original UCI Adult extract.
const AdultSize = 32561

// Workclass, education, and other public categorical domains of Adult.
var (
	AdultWorkclasses = []string{
		"Private", "Self-emp-not-inc", "Self-emp-inc", "Federal-gov",
		"Local-gov", "State-gov", "Without-pay", "Never-worked",
	}
	AdultEducations = []string{
		"Bachelors", "Some-college", "11th", "HS-grad", "Prof-school",
		"Assoc-acdm", "Assoc-voc", "9th", "7th-8th", "12th", "Masters",
		"1st-4th", "10th", "Doctorate", "5th-6th", "Preschool",
	}
	AdultMaritalStatuses = []string{
		"Married-civ-spouse", "Divorced", "Never-married", "Separated",
		"Widowed", "Married-spouse-absent", "Married-AF-spouse",
	}
	AdultOccupations = []string{
		"Tech-support", "Craft-repair", "Other-service", "Sales",
		"Exec-managerial", "Prof-specialty", "Handlers-cleaners",
		"Machine-op-inspct", "Adm-clerical", "Farming-fishing",
		"Transport-moving", "Priv-house-serv", "Protective-serv",
		"Armed-Forces",
	}
	AdultRelationships = []string{
		"Wife", "Own-child", "Husband", "Not-in-family", "Other-relative",
		"Unmarried",
	}
	AdultRaces = []string{
		"White", "Asian-Pac-Islander", "Amer-Indian-Eskimo", "Other", "Black",
	}
	AdultSexes     = []string{"Male", "Female"}
	AdultCountries = []string{
		"United-States", "Mexico", "Philippines", "Germany", "Canada",
		"Puerto-Rico", "India", "El-Salvador", "Cuba", "England", "China",
		"Other",
	}
	AdultLabels = []string{"<=50K", ">50K"}
)

// AdultSchema returns the public schema of the Adult table.
func AdultSchema() *dataset.Schema {
	return dataset.MustSchema(
		dataset.Attribute{Name: "age", Kind: dataset.Continuous, Min: 0, Max: 100},
		dataset.Attribute{Name: "workclass", Kind: dataset.Categorical, Values: AdultWorkclasses},
		dataset.Attribute{Name: "education", Kind: dataset.Categorical, Values: AdultEducations},
		dataset.Attribute{Name: "education num", Kind: dataset.Continuous, Min: 1, Max: 16},
		dataset.Attribute{Name: "marital status", Kind: dataset.Categorical, Values: AdultMaritalStatuses},
		dataset.Attribute{Name: "occupation", Kind: dataset.Categorical, Values: AdultOccupations},
		dataset.Attribute{Name: "relationship", Kind: dataset.Categorical, Values: AdultRelationships},
		dataset.Attribute{Name: "race", Kind: dataset.Categorical, Values: AdultRaces},
		dataset.Attribute{Name: "sex", Kind: dataset.Categorical, Values: AdultSexes},
		dataset.Attribute{Name: "capital gain", Kind: dataset.Continuous, Min: 0, Max: 100000},
		dataset.Attribute{Name: "capital loss", Kind: dataset.Continuous, Min: 0, Max: 5000},
		dataset.Attribute{Name: "hours per week", Kind: dataset.Continuous, Min: 1, Max: 99},
		dataset.Attribute{Name: "country", Kind: dataset.Categorical, Values: AdultCountries},
		dataset.Attribute{Name: "label", Kind: dataset.Categorical, Values: AdultLabels},
	)
}

// Adult generates n rows of Census-like microdata. Use n = AdultSize for
// the paper's configuration. The generator is deterministic given the seed.
func Adult(n int, seed int64) *dataset.Table {
	rng := rand.New(rand.NewSource(seed))
	s := AdultSchema()
	t := dataset.NewTable(s)
	for i := 0; i < n; i++ {
		t.MustAppend(adultRow(rng))
	}
	return t
}

func adultRow(rng *rand.Rand) dataset.Tuple {
	age := sampleAge(rng)
	sex := pickWeighted(rng, AdultSexes, []float64{0.67, 0.33})
	gain := sampleCapitalGain(rng)
	loss := 0.0
	if rng.Float64() < 0.047 {
		loss = 200 + rng.Float64()*4300
	}
	hours := sampleHours(rng)
	return dataset.Tuple{
		dataset.Num(age),
		dataset.Str(pickWeighted(rng, AdultWorkclasses, []float64{0.70, 0.08, 0.03, 0.03, 0.06, 0.04, 0.05, 0.01})),
		dataset.Str(pickZipf(rng, AdultEducations, 1.1)),
		dataset.Num(float64(1 + rng.Intn(16))),
		dataset.Str(pickZipf(rng, AdultMaritalStatuses, 1.0)),
		dataset.Str(pickZipf(rng, AdultOccupations, 0.7)),
		dataset.Str(pickZipf(rng, AdultRelationships, 0.8)),
		dataset.Str(pickWeighted(rng, AdultRaces, []float64{0.85, 0.03, 0.01, 0.01, 0.10})),
		dataset.Str(sex),
		dataset.Num(gain),
		dataset.Num(loss),
		dataset.Num(hours),
		dataset.Str(pickWeighted(rng, AdultCountries, []float64{0.90, 0.02, 0.006, 0.004, 0.004, 0.004, 0.003, 0.003, 0.003, 0.003, 0.002, 0.048})),
		dataset.Str(pickWeighted(rng, AdultLabels, []float64{0.76, 0.24})),
	}
}

// sampleAge draws an age with the Adult table's unimodal shape (mode in the
// 30s, support 17..90, integer valued so QT1's "age = k" bins are populated).
func sampleAge(rng *rand.Rand) float64 {
	for {
		a := 38 + rng.NormFloat64()*13
		if a >= 17 && a <= 90 {
			return math.Floor(a)
		}
	}
}

// sampleCapitalGain reproduces the zero-inflated long-tailed capital-gain
// distribution: ~92% exact zeros, a small mid-range mass and a sparse tail
// (99999 sentinel included). The heavy mass below 100 is what puts QI2's two
// large bins near 0.61|D| (male) and 0.31|D| (female).
func sampleCapitalGain(rng *rand.Rand) float64 {
	u := rng.Float64()
	switch {
	case u < 0.917:
		return 0
	case u < 0.96:
		// Mid-range gains, log-uniformly spread over [100, 10000).
		return math.Floor(100 * math.Exp(rng.Float64()*math.Log(100)))
	case u < 0.999:
		// Larger gains in [10000, 50000).
		return math.Floor(10000 + rng.Float64()*40000)
	default:
		return 99999
	}
}

func sampleHours(rng *rand.Rand) float64 {
	u := rng.Float64()
	switch {
	case u < 0.46:
		return 40
	case u < 0.7:
		h := math.Floor(40 + rng.NormFloat64()*10)
		return clamp(h, 1, 99)
	default:
		return clamp(math.Floor(20+rng.Float64()*50), 1, 99)
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// pickWeighted draws one value according to the weights (normalized
// internally).
func pickWeighted(rng *rand.Rand, values []string, weights []float64) string {
	var total float64
	for _, w := range weights {
		total += w
	}
	u := rng.Float64() * total
	for i, w := range weights {
		if u < w {
			return values[i]
		}
		u -= w
	}
	return values[len(values)-1]
}

// pickZipf draws one value with Zipf(s) rank weighting.
func pickZipf(rng *rand.Rand, values []string, s float64) string {
	var total float64
	for i := range values {
		total += 1 / math.Pow(float64(i+1), s)
	}
	u := rng.Float64() * total
	for i := range values {
		w := 1 / math.Pow(float64(i+1), s)
		if u < w {
			return values[i]
		}
		u -= w
	}
	return values[len(values)-1]
}
