// Package exec defines the phase boundary of the engine's two-phase query
// path. The engine splits Algorithm 1's loop body into explicit phases:
//
//  1. Prepare (under the engine lock): validate, translate the query to the
//     applicable mechanism with the least privacy loss, check the
//     worst-case loss against the remaining budget, and reserve it. The
//     result is a Plan.
//  2. Execute (outside the engine lock): run the chosen mechanism — the
//     columnar scan plus the noise draw — yielding an Outcome. Because the
//     engine lock is not held, independent plans can execute concurrently
//     and a scheduler can coalesce many plans' noise-free scans into one
//     batched columnar pass.
//  3. Commit (under the engine lock): settle the actual privacy loss,
//     release the reservation, append the transcript entry, and run the
//     commit hook — sequenced exactly like the single-phase path, so the
//     Definition 6.1 invariant and crash recovery are untouched.
//
// The types here are plain data: they deliberately depend only on the
// query, workload and mechanism layers so both the engine (which issues
// them) and the scheduler (which batches them) can share the vocabulary
// without an import cycle.
package exec

import (
	"time"

	"repro/internal/mechanism"
	"repro/internal/query"
	"repro/internal/workload"
)

// Plan is an admitted query whose worst-case privacy loss has been
// reserved against the engine's budget but whose mechanism has not run
// yet. A plan is single-use: it must be finished by exactly one
// Engine.Commit or Engine.Abort, after which Finished is set. Abandoning
// a plan leaks its reservation and blocks Seal, so schedulers must finish
// every plan they prepare, even on error paths.
type Plan struct {
	// Query is the validated exploration query.
	Query *query.Query
	// Transformed is T(W) for the query's workload, from the engine's
	// (typically per-dataset shared) transformation cache.
	Transformed *workload.Transformed
	// Mechanism is the translator's choice for this query and mode.
	Mechanism mechanism.Mechanism
	// Cost is the mechanism's translated privacy-loss interval; Cost.Upper
	// is the amount reserved against the budget until the plan finishes.
	Cost mechanism.Cost
	// Key is the workload's canonical cache key (workload.Key).
	Key string
	// Needs declares the noise-free evaluations the mechanism will read
	// when it runs, so a batching scheduler can warm the shared
	// per-dataset caches with one grouped columnar pass first. Warming
	// is purely an optimization: a mechanism whose needs are understated
	// simply computes the missing evaluation itself.
	Needs mechanism.Prefetch
	// Owner is the engine that issued the plan; Commit and Abort refuse
	// plans prepared by another engine.
	Owner any
	// Finished is set (under the issuing engine's lock) once the plan has
	// been committed or aborted.
	Finished bool
}

// Outcome is the result of executing a plan's mechanism.
type Outcome struct {
	// Result is the mechanism's noisy output; nil when Err is set.
	Result *mechanism.Result
	// Err is the mechanism failure, if any.
	Err error
	// Elapsed is the mechanism's wall-clock run time (the scan plus the
	// noise draw), recorded for the per-mechanism latency metrics.
	Elapsed time.Duration
}
