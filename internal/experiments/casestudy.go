package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/er"
	"repro/internal/noise"
)

// StrategyName identifies one of the four case-study strategies.
type StrategyName string

// The four exploration strategies of §8.
const (
	BS1 StrategyName = "BS1"
	BS2 StrategyName = "BS2"
	MS1 StrategyName = "MS1"
	MS2 StrategyName = "MS2"
)

// AllStrategies lists the strategies in report order.
var AllStrategies = []StrategyName{BS1, BS2, MS1, MS2}

// erQuality runs one strategy once and returns its task quality (recall for
// blocking, F1 for matching).
func erQuality(name StrategyName, task *er.Task) (float64, error) {
	switch name {
	case BS1:
		block, err := er.RunBS1(task)
		if err != nil {
			return 0, err
		}
		recall, _ := er.BlockingQuality(task.Table, block)
		return recall, nil
	case BS2:
		block, err := er.RunBS2(task)
		if err != nil {
			return 0, err
		}
		recall, _ := er.BlockingQuality(task.Table, block)
		return recall, nil
	case MS1:
		match, err := er.RunMS1(task)
		if err != nil {
			return 0, err
		}
		_, _, f1 := er.MatchingQuality(task.Table, match)
		return f1, nil
	case MS2:
		match, err := er.RunMS2(task)
		if err != nil {
			return 0, err
		}
		_, _, f1 := er.MatchingQuality(task.Table, match)
		return f1, nil
	default:
		return 0, fmt.Errorf("experiments: unknown strategy %q", name)
	}
}

// caseStudyRun executes one strategy ERRuns times at the given budget and
// alpha fraction, returning quality quartiles.
func (c Config) caseStudyRun(ft *dataset.Table, name StrategyName, budget, alphaFrac float64, seed int64) (q1, med, q3 float64, err error) {
	var quals []float64
	cleanerRng := rand.New(rand.NewSource(seed))
	for run := 0; run < c.ERRuns; run++ {
		eng, err := engine.New(ft, engine.Config{
			Budget: budget,
			Mode:   engine.Optimistic,
			Rng:    noise.NewRand(seed + int64(run)*7919),
		})
		if err != nil {
			return 0, 0, 0, err
		}
		task := &er.Task{
			Table:   ft,
			Engine:  eng,
			Cleaner: er.SampleCleaner(cleanerRng),
			Alpha:   alphaFrac * float64(ft.Size()),
			Beta:    Beta,
		}
		q, err := erQuality(name, task)
		if err != nil {
			return 0, 0, 0, err
		}
		quals = append(quals, q)
	}
	sort.Float64s(quals)
	n := len(quals)
	return quals[n/4], quals[n/2], quals[3*n/4], nil
}

// featureTable builds the case-study feature table for n pairs.
func (c Config) featureTable(n int) *dataset.Table {
	pairs := er.GenerateCitations(er.CitationsConfig{Pairs: n, Seed: c.Seed + 50})
	return er.FeatureTable(pairs)
}

// Figure5 reproduces the budget sweep: task quality of the four strategies
// as the owner budget B grows, at fixed α = 0.08|D|.
func Figure5(cfg Config) error {
	cfg = cfg.norm()
	w := cfg.out()
	ft := cfg.featureTable(cfg.ERPairs)
	fmt.Fprintf(w, "# Figure 5: task quality vs privacy budget B (|D|=%d, alpha=0.08|D|)\n", ft.Size())
	fmt.Fprintln(w, "strategy\tB\tq1\tmedian\tq3")
	for _, name := range AllStrategies {
		for _, b := range []float64{0.1, 0.2, 0.5, 1, 1.5, 2} {
			q1, med, q3, err := cfg.caseStudyRun(ft, name, b, 0.08, cfg.Seed+500)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%s\t%.1f\t%.3f\t%.3f\t%.3f\n", name, b, q1, med, q3)
		}
	}
	return nil
}

// Figure6 reproduces the accuracy sweep: task quality at fixed B = 1 as the
// per-query accuracy requirement α varies.
func Figure6(cfg Config) error {
	cfg = cfg.norm()
	w := cfg.out()
	ft := cfg.featureTable(cfg.ERPairs)
	fmt.Fprintf(w, "# Figure 6: task quality vs alpha (|D|=%d, B=1)\n", ft.Size())
	fmt.Fprintln(w, "strategy\talpha/|D|\tq1\tmedian\tq3")
	for _, name := range AllStrategies {
		for _, af := range AlphaFractions {
			q1, med, q3, err := cfg.caseStudyRun(ft, name, 1.0, af, cfg.Seed+600)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%s\t%.2f\t%.3f\t%.3f\t%.3f\n", name, af, q1, med, q3)
		}
	}
	return nil
}

// Figure7 reproduces the data-size study: the blocking strategies at
// |D| = 1000 under both the budget sweep and the alpha sweep.
func Figure7(cfg Config) error {
	cfg = cfg.norm()
	w := cfg.out()
	small := cfg.ERPairs / 2
	if small < 200 {
		small = 200
	}
	ft := cfg.featureTable(small)
	fmt.Fprintf(w, "# Figure 7: blocking at smaller data size (|D|=%d)\n", ft.Size())
	fmt.Fprintln(w, "strategy\tsweep\tvalue\tq1\tmedian\tq3")
	for _, name := range []StrategyName{BS1, BS2} {
		// Smaller data needs a larger budget to reach the same quality
		// (the paper's Figure 7 message), so the sweep extends further.
		for _, b := range []float64{0.5, 1, 1.5, 2, 3, 4} {
			q1, med, q3, err := cfg.caseStudyRun(ft, name, b, 0.08, cfg.Seed+700)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%s\tB\t%.1f\t%.3f\t%.3f\t%.3f\n", name, b, q1, med, q3)
		}
		for _, af := range AlphaFractions {
			q1, med, q3, err := cfg.caseStudyRun(ft, name, 1.0, af, cfg.Seed+800)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%s\talpha\t%.2f\t%.3f\t%.3f\t%.3f\n", name, af, q1, med, q3)
		}
	}
	return nil
}
