// Package experiments regenerates every table and figure of the paper's
// evaluation (§7 query benchmarks, §8 entity-resolution case study). Each
// driver prints the same rows/series the paper reports; EXPERIMENTS.md
// records the paper-vs-measured comparison.
package experiments

import (
	"io"
	"os"
)

// Config scales the experiment drivers. The zero value runs a laptop-scale
// configuration; Paper() matches the paper's sizes where feasible.
type Config struct {
	// AdultSize is |D| for the Adult dataset (paper: 32561).
	AdultSize int
	// TaxiSize is |D| for the NYTaxi dataset (paper: 9710124; default 100k —
	// all reported metrics are scaled by |D|, see DESIGN.md).
	TaxiSize int
	// Runs is the repetition count for per-query experiments (paper: 10).
	Runs int
	// ERRuns is the repetition count for case-study strategies (paper: 100).
	ERRuns int
	// ERPairs is the case-study training size (paper: 4000).
	ERPairs int
	// MCSamples is the strategy-mechanism Monte-Carlo sample count
	// (paper: 10000).
	MCSamples int
	// Seed drives all randomness.
	Seed int64
	// Out receives the report; nil means os.Stdout.
	Out io.Writer
}

// Default returns the laptop-scale configuration used by tests and benches.
func Default() Config {
	return Config{
		AdultSize: 32561,
		TaxiSize:  100000,
		Runs:      10,
		ERRuns:    20,
		ERPairs:   2000,
		MCSamples: 3000,
		Seed:      1,
	}
}

// Quick returns a fast configuration for smoke tests.
func Quick() Config {
	return Config{
		AdultSize: 4000,
		TaxiSize:  8000,
		Runs:      3,
		ERRuns:    3,
		ERPairs:   300,
		MCSamples: 500,
		Seed:      1,
	}
}

// Paper returns the paper's configuration (slow; the full taxi table).
func Paper() Config {
	return Config{
		AdultSize: 32561,
		TaxiSize:  9710124,
		Runs:      10,
		ERRuns:    100,
		ERPairs:   4000,
		MCSamples: 10000,
		Seed:      1,
	}
}

func (c Config) out() io.Writer {
	if c.Out == nil {
		return os.Stdout
	}
	return c.Out
}

func (c Config) norm() Config {
	d := Default()
	if c.AdultSize == 0 {
		c.AdultSize = d.AdultSize
	}
	if c.TaxiSize == 0 {
		c.TaxiSize = d.TaxiSize
	}
	if c.Runs == 0 {
		c.Runs = d.Runs
	}
	if c.ERRuns == 0 {
		c.ERRuns = d.ERRuns
	}
	if c.ERPairs == 0 {
		c.ERPairs = d.ERPairs
	}
	if c.MCSamples == 0 {
		c.MCSamples = d.MCSamples
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	return c
}

// AlphaFractions is the paper's α sweep (fractions of |D|).
var AlphaFractions = []float64{0.01, 0.02, 0.04, 0.08, 0.16, 0.32, 0.64}

// Beta is the paper's fixed per-query failure probability.
const Beta = 0.0005
