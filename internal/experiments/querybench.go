package experiments

import (
	"fmt"

	"sort"

	"repro/internal/accuracy"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/mechanism"
	"repro/internal/noise"
	"repro/internal/query"
	"repro/internal/strategy"
	"repro/internal/workload"
)

func reqFor(tableSize int, alphaFrac, beta float64) accuracy.Requirement {
	return accuracy.Requirement{Alpha: alphaFrac * float64(tableSize), Beta: beta}
}

// datasets materializes the two benchmark tables.
func (c Config) datasets() (adult, taxi *dataset.Table) {
	return datagen.Adult(c.AdultSize, c.Seed), datagen.NYTaxi(c.TaxiSize, c.Seed+1)
}

func (c Config) tableFor(b BenchQuery, adult, taxi *dataset.Table) *dataset.Table {
	if b.Dataset == "adult" {
		return adult
	}
	return taxi
}

func (c Config) mechanisms() []mechanism.Mechanism {
	return []mechanism.Mechanism{
		mechanism.LM{},
		mechanism.NewSM(strategy.H2, c.MCSamples, c.Seed),
		mechanism.MPM{},
		mechanism.LTM{},
	}
}

// empiricalError computes the paper's per-kind empirical error, scaled by |D|.
func empiricalError(q *query.Query, tr *workload.Transformed, d *dataset.Table, res *mechanism.Result) (float64, error) {
	truth := tr.TrueAnswers(d)
	var e float64
	var err error
	switch q.Kind {
	case query.WCQ:
		e, err = accuracy.WCQError(truth, res.Counts)
	case query.ICQ:
		e, err = accuracy.ICQError(truth, res.Selected, q.Threshold)
	case query.TCQ:
		e, err = accuracy.TCQError(truth, res.Selected, q.K)
	}
	if err != nil {
		return 0, err
	}
	return e / float64(d.Size()), nil
}

// Figure2 reproduces the end-to-end study: for each of the 12 queries and
// each α, the mechanism APEx (optimistic mode) picks, its privacy cost, and
// the empirical error over Runs repetitions.
func Figure2(cfg Config) error {
	cfg = cfg.norm()
	w := cfg.out()
	adult, taxi := cfg.datasets()
	queries, err := Benchmark()
	if err != nil {
		return err
	}
	rng := noise.NewRand(cfg.Seed + 100)
	fmt.Fprintln(w, "# Figure 2: privacy cost vs empirical error (optimistic mode)")
	fmt.Fprintln(w, "query\talpha/|D|\tmechanism\teps_upper\teps_actual_median\terr_median\terr_max")
	for _, b := range queries {
		d := cfg.tableFor(b, adult, taxi)
		for _, af := range AlphaFractions {
			q, err := b.Bind(d.Size(), af, Beta)
			if err != nil {
				return err
			}
			eng, err := engine.New(d, engine.Config{
				Budget:     1e12, // isolate mechanism choice from budgeting
				Mode:       engine.Optimistic,
				Mechanisms: cfg.mechanisms(),
				Rng:        rng,
			})
			if err != nil {
				return err
			}
			tr, err := workload.Transform(d.Schema(), q.Predicates, workload.Options{})
			if err != nil {
				return err
			}
			var epsActual, errs []float64
			var mechName string
			var epsUpper float64
			for run := 0; run < cfg.Runs; run++ {
				ans, err := eng.Ask(q)
				if err != nil {
					return fmt.Errorf("%s alpha=%g: %w", b.Name, af, err)
				}
				mechName = ans.Mechanism
				epsUpper = ans.EpsilonUpper
				epsActual = append(epsActual, ans.Epsilon)
				res := &mechanism.Result{Counts: ans.Counts, Selected: ans.Selected}
				e, err := empiricalError(q, tr, d, res)
				if err != nil {
					return err
				}
				errs = append(errs, e)
			}
			fmt.Fprintf(w, "%s\t%.2f\t%s\t%.6g\t%.6g\t%.4f\t%.4f\n",
				b.Name, af, mechName, epsUpper, median(epsActual), median(errs), maxOf(errs))
		}
	}
	return nil
}

// Figure3 reproduces the F1-score study for QI4 (ICQ) and QT1 (TCQ).
func Figure3(cfg Config) error {
	cfg = cfg.norm()
	w := cfg.out()
	adult, taxi := cfg.datasets()
	queries, err := Benchmark()
	if err != nil {
		return err
	}
	rng := noise.NewRand(cfg.Seed + 200)
	fmt.Fprintln(w, "# Figure 3: F1 of noisy vs true answer sets (QI4, QT1)")
	fmt.Fprintln(w, "query\talpha/|D|\teps_actual_median\tF1_median")
	for _, b := range queries {
		if b.Name != "QI4" && b.Name != "QT1" {
			continue
		}
		d := cfg.tableFor(b, adult, taxi)
		for _, af := range AlphaFractions {
			q, err := b.Bind(d.Size(), af, Beta)
			if err != nil {
				return err
			}
			tr, err := workload.Transform(d.Schema(), q.Predicates, workload.Options{})
			if err != nil {
				return err
			}
			truth := tr.TrueAnswers(d)
			var truthSel []bool
			if q.Kind == query.ICQ {
				truthSel = accuracy.SelectAbove(truth, q.Threshold)
			} else {
				truthSel = accuracy.SelectTopK(truth, q.K)
			}
			eng, err := engine.New(d, engine.Config{
				Budget: 1e12, Mode: engine.Optimistic,
				Mechanisms: cfg.mechanisms(), Rng: rng,
			})
			if err != nil {
				return err
			}
			var epss, f1s []float64
			for run := 0; run < cfg.Runs; run++ {
				ans, err := eng.Ask(q)
				if err != nil {
					return err
				}
				f1, err := accuracy.F1(truthSel, ans.Selected)
				if err != nil {
					return err
				}
				epss = append(epss, ans.Epsilon)
				f1s = append(f1s, f1)
			}
			fmt.Fprintf(w, "%s\t%.2f\t%.6g\t%.3f\n", b.Name, af, median(epss), median(f1s))
		}
	}
	return nil
}

// Table2 reproduces the optimal-mechanism study: the median actual privacy
// cost of every applicable mechanism on all 12 queries at α ∈ {0.02, 0.08}|D|.
func Table2(cfg Config) error {
	cfg = cfg.norm()
	w := cfg.out()
	adult, taxi := cfg.datasets()
	queries, err := Benchmark()
	if err != nil {
		return err
	}
	rng := noise.NewRand(cfg.Seed + 300)
	fmt.Fprintln(w, "# Table 2: median actual privacy cost per mechanism")
	fmt.Fprintln(w, "query\talpha/|D|\tmechanism\teps_median\tbest")
	for _, b := range queries {
		d := cfg.tableFor(b, adult, taxi)
		for _, af := range []float64{0.02, 0.08} {
			q, err := b.Bind(d.Size(), af, Beta)
			if err != nil {
				return err
			}
			tr, err := workload.Transform(d.Schema(), q.Predicates, workload.Options{})
			if err != nil {
				return err
			}
			type row struct {
				name string
				eps  float64
			}
			var rows []row
			for _, m := range cfg.mechanisms() {
				if !m.Applicable(q, tr) {
					continue
				}
				var eps []float64
				for run := 0; run < cfg.Runs; run++ {
					res, err := m.Run(q, tr, d, rng)
					if err != nil {
						return fmt.Errorf("%s %s: %w", b.Name, m.Name(), err)
					}
					eps = append(eps, res.Epsilon)
				}
				rows = append(rows, row{qualifiedName(m, q), median(eps)})
			}
			best := ""
			bestEps := -1.0
			for _, r := range rows {
				if bestEps < 0 || r.eps < bestEps {
					bestEps, best = r.eps, r.name
				}
			}
			for _, r := range rows {
				marker := ""
				if r.name == best {
					marker = "*"
				}
				fmt.Fprintf(w, "%s\t%.2f\t%s\t%.6g\t%s\n", b.Name, af, r.name, r.eps, marker)
			}
		}
	}
	return nil
}

// qualifiedName labels mechanisms the way Table 2 does (query type prefix).
func qualifiedName(m mechanism.Mechanism, q *query.Query) string {
	prefix := q.Kind.String()
	return prefix + "-" + m.Name()
}

// Figure4a reproduces the workload-size sweep: LM vs SM privacy cost on the
// QW1 (histogram) and QW2 (prefix) templates for L ∈ {100..500}.
func Figure4a(cfg Config) error {
	cfg = cfg.norm()
	w := cfg.out()
	adult, _ := cfg.datasets()
	fmt.Fprintln(w, "# Figure 4a: privacy cost vs workload size L (alpha=0.08|D|)")
	fmt.Fprintln(w, "L\tLM,QW1\tLM,QW2\tSM,QW1\tSM,QW2")
	req := reqFor(adult.Size(), 0.08, Beta)
	sm := mechanism.NewSM(strategy.H2, minInt(cfg.MCSamples, 1000), cfg.Seed)
	for _, l := range []int{100, 200, 300, 400, 500} {
		hist, err := workload.Histogram1D("capital gain", 0, float64(l*50), 50)
		if err != nil {
			return err
		}
		prefix, err := workload.Prefix1D("capital gain", 0, float64(l*50), 50)
		if err != nil {
			return err
		}
		var costs []float64
		for _, preds := range [][]dataset.Predicate{hist, prefix} {
			q, err := query.NewWCQ(preds, req)
			if err != nil {
				return err
			}
			tr, err := workload.Transform(adult.Schema(), preds, workload.Options{})
			if err != nil {
				return err
			}
			lm, err := mechanism.LM{}.Translate(q, tr)
			if err != nil {
				return err
			}
			costs = append(costs, lm.Upper)
		}
		for _, preds := range [][]dataset.Predicate{hist, prefix} {
			q, err := query.NewWCQ(preds, req)
			if err != nil {
				return err
			}
			tr, err := workload.Transform(adult.Schema(), preds, workload.Options{})
			if err != nil {
				return err
			}
			smc, err := sm.Translate(q, tr)
			if err != nil {
				return err
			}
			costs = append(costs, smc.Upper)
		}
		fmt.Fprintf(w, "%d\t%.6g\t%.6g\t%.6g\t%.6g\n", l, costs[0], costs[1], costs[2], costs[3])
	}
	return nil
}

// Figure4b reproduces the top-k sweep: LM vs LTM privacy cost on QT3/QT4
// for k ∈ {10..50}.
func Figure4b(cfg Config) error {
	cfg = cfg.norm()
	w := cfg.out()
	_, taxi := cfg.datasets()
	queries, err := Benchmark()
	if err != nil {
		return err
	}
	var qt3, qt4 BenchQuery
	for _, b := range queries {
		switch b.Name {
		case "QT3":
			qt3 = b
		case "QT4":
			qt4 = b
		}
	}
	fmt.Fprintln(w, "# Figure 4b: privacy cost vs TCQ k (alpha=0.08|D|)")
	fmt.Fprintln(w, "k\tLM,QT3\tLM,QT4\tLTM,QT3\tLTM,QT4")
	for _, k := range []int{10, 20, 30, 40, 50} {
		var costs []float64
		for _, b := range []BenchQuery{qt3, qt4} {
			b.K = k
			q, err := b.Bind(taxi.Size(), 0.08, Beta)
			if err != nil {
				return err
			}
			tr, err := workload.Transform(taxi.Schema(), q.Predicates, workload.Options{})
			if err != nil {
				return err
			}
			lm, err := mechanism.LM{}.Translate(q, tr)
			if err != nil {
				return err
			}
			ltm, err := mechanism.LTM{}.Translate(q, tr)
			if err != nil {
				return err
			}
			costs = append(costs, lm.Upper, ltm.Upper)
		}
		fmt.Fprintf(w, "%d\t%.6g\t%.6g\t%.6g\t%.6g\n", k, costs[0], costs[2], costs[1], costs[3])
	}
	return nil
}

// Figure4c reproduces the ICQ threshold sweep on QI2: the actual privacy
// cost of ICQ-LM, ICQ-SM and ICQ-MPM as c/|D| varies. MPM's cost dips when
// all bin counts are far from c and spikes when a bin count hugs c.
func Figure4c(cfg Config) error {
	cfg = cfg.norm()
	w := cfg.out()
	adult, _ := cfg.datasets()
	queries, err := Benchmark()
	if err != nil {
		return err
	}
	var qi2 BenchQuery
	for _, b := range queries {
		if b.Name == "QI2" {
			qi2 = b
		}
	}
	rng := noise.NewRand(cfg.Seed + 400)
	sm := mechanism.NewSM(strategy.H2, minInt(cfg.MCSamples, 1000), cfg.Seed)
	mpm := mechanism.MPM{}
	fmt.Fprintln(w, "# Figure 4c: actual privacy cost vs ICQ threshold c (QI2, alpha=0.08|D|)")
	fmt.Fprintln(w, "c/|D|\tICQ-LM\tICQ-SM\tICQ-MPM_median")
	tr, err := workload.Transform(adult.Schema(), qi2.Preds, workload.Options{})
	if err != nil {
		return err
	}
	for _, cf := range []float64{0.01, 0.02, 0.04, 0.08, 0.16, 0.24, 0.32, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90, 1.0} {
		qi2.ThresholdFrac = cf
		q, err := qi2.Bind(adult.Size(), 0.08, Beta)
		if err != nil {
			return err
		}
		lm, err := mechanism.LM{}.Translate(q, tr)
		if err != nil {
			return err
		}
		smc, err := sm.Translate(q, tr)
		if err != nil {
			return err
		}
		var mpmEps []float64
		for run := 0; run < cfg.Runs; run++ {
			res, err := mpm.Run(q, tr, adult, rng)
			if err != nil {
				return err
			}
			mpmEps = append(mpmEps, res.Epsilon)
		}
		fmt.Fprintf(w, "%.2f\t%.6g\t%.6g\t%.6g\n", cf, lm.Upper, smc.Upper, median(mpmEps))
	}
	return nil
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return cp[len(cp)/2]
}

func maxOf(xs []float64) float64 {
	var best float64
	for i, x := range xs {
		if i == 0 || x > best {
			best = x
		}
	}
	return best
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
