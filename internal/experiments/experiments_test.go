package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/query"
	"repro/internal/workload"
)

func TestBenchmarkDefinitions(t *testing.T) {
	qs, err := Benchmark()
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 12 {
		t.Fatalf("want 12 queries, got %d", len(qs))
	}
	wantKinds := map[string]query.Kind{
		"QW1": query.WCQ, "QW2": query.WCQ, "QW3": query.WCQ, "QW4": query.WCQ,
		"QI1": query.ICQ, "QI2": query.ICQ, "QI3": query.ICQ, "QI4": query.ICQ,
		"QT1": query.TCQ, "QT2": query.TCQ, "QT3": query.TCQ, "QT4": query.TCQ,
	}
	for _, b := range qs {
		if b.Kind != wantKinds[b.Name] {
			t.Errorf("%s kind %v", b.Name, b.Kind)
		}
		if len(b.Preds) != 100 {
			t.Errorf("%s has %d predicates, want 100", b.Name, len(b.Preds))
		}
		q, err := b.Bind(10000, 0.08, Beta)
		if err != nil {
			t.Errorf("%s bind: %v", b.Name, err)
			continue
		}
		if err := q.Validate(); err != nil {
			t.Errorf("%s validate: %v", b.Name, err)
		}
	}
}

func TestBenchmarkSensitivities(t *testing.T) {
	// The sensitivity structure drives the whole evaluation: QW1 (disjoint
	// bins) has sensitivity 1, QW2 (prefix) has sensitivity L, QT2/QT4
	// (multi-attribute) have sensitivity > 1.
	cfg := Quick()
	adult, taxi := cfg.datasets()
	qs, err := Benchmark()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"QW1": 1, "QW2": 100, "QW3": 1, "QW4": 1,
		"QI1": 100, "QI2": 1, "QI3": 1, "QI4": 1,
		"QT1": 1, "QT3": 1,
	}
	for _, b := range qs {
		d := cfg.tableFor(b, adult, taxi)
		tr, err := workload.Transform(d.Schema(), b.Preds, workload.Options{})
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if w, ok := want[b.Name]; ok {
			if tr.Sensitivity() != w {
				t.Errorf("%s sensitivity = %v, want %v", b.Name, tr.Sensitivity(), w)
			}
		} else if tr.Sensitivity() <= 1 {
			// QT2/QT4 span many attributes: sensitivity must exceed 1.
			t.Errorf("%s sensitivity = %v, want > 1", b.Name, tr.Sensitivity())
		}
	}
}

func TestFigure2Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	cfg := Quick()
	cfg.Out = &buf
	if err := Figure2(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// 12 queries × 7 alphas = 84 data rows.
	if got := strings.Count(out, "\n") - 2; got != 84 {
		t.Fatalf("want 84 rows, got %d:\n%s", got, out)
	}
	for _, q := range []string{"QW1", "QI2", "QT4"} {
		if !strings.Contains(out, q) {
			t.Fatalf("missing %s", q)
		}
	}
}

func TestFigure3Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	cfg := Quick()
	cfg.Out = &buf
	if err := Figure3(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "QI4") || !strings.Contains(buf.String(), "QT1") {
		t.Fatalf("missing queries:\n%s", buf.String())
	}
}

func TestTable2Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	cfg := Quick()
	cfg.Out = &buf
	if err := Table2(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Key qualitative claims: ICQ rows include all three ICQ mechanisms;
	// TCQ rows include both LM and LTM.
	for _, want := range []string{"ICQ-LM", "ICQ-SM-h2", "ICQ-MPM", "TCQ-LM", "TCQ-LTM", "WCQ-SM-h2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %s in table 2 output:\n%s", want, out)
		}
	}
}

func TestFigure4Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := Quick()
	var buf bytes.Buffer
	cfg.Out = &buf
	if err := Figure4a(cfg); err != nil {
		t.Fatal(err)
	}
	if err := Figure4b(cfg); err != nil {
		t.Fatal(err)
	}
	if err := Figure4c(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 4a", "Figure 4b", "Figure 4c"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %s", want)
		}
	}
}

func TestFigure5Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := Quick()
	cfg.ERRuns = 2
	var buf bytes.Buffer
	cfg.Out = &buf
	if err := Figure5(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, s := range []string{"BS1", "BS2", "MS1", "MS2"} {
		if !strings.Contains(out, s) {
			t.Fatalf("missing %s:\n%s", s, out)
		}
	}
}

func TestConfigNorm(t *testing.T) {
	var c Config
	n := c.norm()
	if n.AdultSize == 0 || n.Runs == 0 || n.ERPairs == 0 {
		t.Fatalf("norm did not fill defaults: %+v", n)
	}
	if Paper().TaxiSize != 9710124 {
		t.Fatal("paper config must use full taxi size")
	}
}
