package experiments

import (
	"fmt"

	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/query"
	"repro/internal/workload"
)

// BenchQuery is one row of Table 1: a named benchmark query template bound
// to a dataset. The accuracy requirement is attached per experiment.
type BenchQuery struct {
	Name    string
	Kind    query.Kind
	Dataset string // "adult" or "nytaxi"
	// Build returns the workload predicates. thresholdFrac (ICQ) and k
	// (TCQ) are bound by Bind.
	Preds []dataset.Predicate
	// ThresholdFrac is the ICQ threshold as a fraction of |D| (paper: 0.1).
	ThresholdFrac float64
	// K is the TCQ limit (paper: 10).
	K int
}

// Bind instantiates the template into a runnable query for a table of the
// given size with accuracy (alphaFrac·|D|, Beta).
func (b BenchQuery) Bind(tableSize int, alphaFrac, beta float64) (*query.Query, error) {
	req := reqFor(tableSize, alphaFrac, beta)
	switch b.Kind {
	case query.WCQ:
		return query.NewWCQ(b.Preds, req)
	case query.ICQ:
		return query.NewICQ(b.Preds, b.ThresholdFrac*float64(tableSize), req)
	case query.TCQ:
		return query.NewTCQ(b.Preds, b.K, req)
	default:
		return nil, fmt.Errorf("experiments: unknown kind %v", b.Kind)
	}
}

// Benchmark returns the paper's 12 exploration queries (Table 1).
func Benchmark() ([]BenchQuery, error) {
	var out []BenchQuery

	// QW1: Adult capital-gain histogram, 100 bins of width 50.
	qw1, err := workload.Histogram1D("capital gain", 0, 5000, 50)
	if err != nil {
		return nil, err
	}
	out = append(out, BenchQuery{Name: "QW1", Kind: query.WCQ, Dataset: "adult", Preds: qw1})

	// QW2: Adult capital-gain cumulative histogram (prefix workload).
	qw2, err := workload.Prefix1D("capital gain", 0, 5000, 50)
	if err != nil {
		return nil, err
	}
	out = append(out, BenchQuery{Name: "QW2", Kind: query.WCQ, Dataset: "adult", Preds: qw2})

	// QW3: NYTaxi trip-distance histogram, 100 bins of width 0.1.
	qw3, err := workload.Histogram1D("trip distance", 0, 10, 0.1)
	if err != nil {
		return nil, err
	}
	out = append(out, BenchQuery{Name: "QW3", Kind: query.WCQ, Dataset: "nytaxi", Preds: qw3})

	// QW4: NYTaxi 2-D histogram (total amount bin × passenger count).
	var qw4 []dataset.Predicate
	for b := 0.0; b < 10; b++ {
		for p := 1.0; p <= 10; p++ {
			qw4 = append(qw4, dataset.And{
				dataset.Range{Attr: "total amount", Lo: b, Hi: b + 1},
				dataset.NumCmp{Attr: "passenger count", Op: dataset.Eq, C: p},
			})
		}
	}
	out = append(out, BenchQuery{Name: "QW4", Kind: query.WCQ, Dataset: "nytaxi", Preds: qw4})

	// QI1: Adult capital-gain prefix workload with a HAVING threshold.
	qi1, err := workload.Prefix1D("capital gain", 0, 5000, 50)
	if err != nil {
		return nil, err
	}
	out = append(out, BenchQuery{Name: "QI1", Kind: query.ICQ, Dataset: "adult", Preds: qi1, ThresholdFrac: 0.1})

	// QI2: Adult (capital-gain bin × sex) iceberg query, 50 bins × 2.
	var qi2 []dataset.Predicate
	for b := 0.0; b < 5000; b += 100 {
		for _, sex := range datagen.AdultSexes {
			qi2 = append(qi2, dataset.And{
				dataset.Range{Attr: "capital gain", Lo: b, Hi: b + 100},
				dataset.StrEq{Attr: "sex", Val: sex},
			})
		}
	}
	out = append(out, BenchQuery{Name: "QI2", Kind: query.ICQ, Dataset: "adult", Preds: qi2, ThresholdFrac: 0.1})

	// QI3: NYTaxi fare-amount bins.
	qi3, err := workload.Histogram1D("fare amount", 0, 10, 0.1)
	if err != nil {
		return nil, err
	}
	out = append(out, BenchQuery{Name: "QI3", Kind: query.ICQ, Dataset: "nytaxi", Preds: qi3, ThresholdFrac: 0.1})

	// QI4: NYTaxi total-amount bins.
	qi4, err := workload.Histogram1D("total amount", 0, 10, 0.1)
	if err != nil {
		return nil, err
	}
	out = append(out, BenchQuery{Name: "QI4", Kind: query.ICQ, Dataset: "nytaxi", Preds: qi4, ThresholdFrac: 0.1})

	// QT1: Adult top-10 ages (point predicates age = 0..99).
	ages := make([]float64, 100)
	for i := range ages {
		ages[i] = float64(i)
	}
	out = append(out, BenchQuery{Name: "QT1", Kind: query.TCQ, Dataset: "adult", Preds: workload.PointPredicates("age", ages), K: 10})

	// QT2: Adult 100 predicates spread over many attributes.
	out = append(out, BenchQuery{Name: "QT2", Kind: query.TCQ, Dataset: "adult", Preds: adultMultiAttr(), K: 10})

	// QT3: NYTaxi (PUID, DOID) zone grid.
	var qt3 []dataset.Predicate
	for pu := 1.0; pu <= 10; pu++ {
		for do := 1.0; do <= 10; do++ {
			qt3 = append(qt3, dataset.And{
				dataset.NumCmp{Attr: "PUID", Op: dataset.Eq, C: pu},
				dataset.NumCmp{Attr: "DOID", Op: dataset.Eq, C: do},
			})
		}
	}
	out = append(out, BenchQuery{Name: "QT3", Kind: query.TCQ, Dataset: "nytaxi", Preds: qt3, K: 10})

	// QT4: NYTaxi 100 predicates over many attributes.
	out = append(out, BenchQuery{Name: "QT4", Kind: query.TCQ, Dataset: "nytaxi", Preds: taxiMultiAttr(), K: 10})

	return out, nil
}

// adultMultiAttr builds QT2's 100 predicates across 8 Adult attributes, so
// a single tuple can satisfy up to 8 of them (high sensitivity relative to
// QT1's disjoint bins).
func adultMultiAttr() []dataset.Predicate {
	var out []dataset.Predicate
	for i := 0; i < 10; i++ { // 10 ages
		out = append(out, dataset.NumCmp{Attr: "age", Op: dataset.Eq, C: float64(25 + i)})
	}
	for i := 0; i < 10; i++ { // 10 hours
		out = append(out, dataset.NumCmp{Attr: "hours per week", Op: dataset.Eq, C: float64(31 + i)})
	}
	for i := 0; i < 16; i++ { // all education nums
		out = append(out, dataset.NumCmp{Attr: "education num", Op: dataset.Eq, C: float64(1 + i)})
	}
	for i := 0; i < 10; i++ { // capital-gain decades
		out = append(out, dataset.Range{Attr: "capital gain", Lo: float64(i * 500), Hi: float64((i + 1) * 500)})
	}
	for _, v := range datagen.AdultWorkclasses { // 8
		out = append(out, dataset.StrEq{Attr: "workclass", Val: v})
	}
	for _, v := range datagen.AdultEducations { // 16
		out = append(out, dataset.StrEq{Attr: "education", Val: v})
	}
	for _, v := range datagen.AdultMaritalStatuses { // 7
		out = append(out, dataset.StrEq{Attr: "marital status", Val: v})
	}
	for _, v := range datagen.AdultOccupations { // 14
		out = append(out, dataset.StrEq{Attr: "occupation", Val: v})
	}
	for _, v := range datagen.AdultRelationships[:5] { // top up to 96
		out = append(out, dataset.StrEq{Attr: "relationship", Val: v})
	}
	for _, v := range datagen.AdultRaces[:4] { // top up to 100
		out = append(out, dataset.StrEq{Attr: "race", Val: v})
	}
	return out[:100]
}

// taxiMultiAttr builds QT4's 100 predicates across 6 taxi attributes.
func taxiMultiAttr() []dataset.Predicate {
	var out []dataset.Predicate
	for d := 1.0; d <= 31; d++ { // 31 pickup dates
		out = append(out, dataset.NumCmp{Attr: "pickup date", Op: dataset.Eq, C: d})
	}
	for h := 0.0; h <= 23; h++ { // 24 hours
		out = append(out, dataset.NumCmp{Attr: "pickup hour", Op: dataset.Eq, C: h})
	}
	for p := 1.0; p <= 10; p++ { // 10 passenger counts
		out = append(out, dataset.NumCmp{Attr: "passenger count", Op: dataset.Eq, C: p})
	}
	for i := 0; i < 10; i++ { // 10 distance bins
		out = append(out, dataset.Range{Attr: "trip distance", Lo: float64(i), Hi: float64(i + 1)})
	}
	for i := 0; i < 19; i++ { // 19 fare bins
		out = append(out, dataset.Range{Attr: "fare amount", Lo: float64(i * 2), Hi: float64((i + 1) * 2)})
	}
	for _, v := range datagen.TaxiPaymentTypes { // 4
		out = append(out, dataset.StrEq{Attr: "payment type", Val: v})
	}
	for _, v := range datagen.TaxiVendors { // 2
		out = append(out, dataset.StrEq{Attr: "vendor", Val: v})
	}
	return out[:100]
}
