package metrics

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("apex_queries_total", "Total queries.", L("dataset", "people"), L("outcome", "answered"))
	c.Inc()
	c.Add(2)
	g := r.Gauge("apex_queue_depth", "Pending requests.", L("dataset", "people"))
	g.Set(5)
	g.Add(-2)

	out := r.Render()
	for _, want := range []string{
		"# HELP apex_queries_total Total queries.",
		"# TYPE apex_queries_total counter",
		`apex_queries_total{dataset="people",outcome="answered"} 3`,
		"# TYPE apex_queue_depth gauge",
		`apex_queue_depth{dataset="people"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestSameSeriesIsSameInstance(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "h", L("x", "1"))
	b := r.Counter("c_total", "h", L("x", "1"))
	if a != b {
		t.Fatal("same (name, labels) must return the same counter")
	}
	if c := r.Counter("c_total", "h", L("x", "2")); c == a {
		t.Fatal("different labels must return a different series")
	}
}

func TestHistogramBucketsAreCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.1, 1, 10}, L("mech", "LM"))
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	out := r.Render()
	for _, want := range []string{
		`lat_seconds_bucket{mech="LM",le="0.1"} 1`,
		`lat_seconds_bucket{mech="LM",le="1"} 3`,
		`lat_seconds_bucket{mech="LM",le="10"} 4`,
		`lat_seconds_bucket{mech="LM",le="+Inf"} 5`,
		`lat_seconds_sum{mech="LM"} 56.05`,
		`lat_seconds_count{mech="LM"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
}

func TestHandlerServesTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "h").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Counter("conc_total", "h").Inc()
				r.Histogram("conc_hist", "h", []float64{1, 2}).Observe(float64(j % 3))
				_ = r.Render()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("conc_total", "h").Value(); got != 4000 {
		t.Fatalf("counter = %v, want 4000", got)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", "h", []float64{0.1, 0.2, 0.4, 0.8})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	// 100 observations spread uniformly over (0, 0.4]: 25 per bucket up to
	// 0.4, none beyond.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.004)
	}
	// p50 interpolates inside the (0.1, 0.2] bucket: 25 observations below
	// it, rank 50 is at its midpoint.
	if got := h.Quantile(0.5); got < 0.15 || got > 0.25 {
		t.Fatalf("p50 = %v, want ~0.2", got)
	}
	if got := h.Quantile(0.99); got < 0.35 || got > 0.4+1e-9 {
		t.Fatalf("p99 = %v, want within (0.35, 0.4]", got)
	}
	// Observations beyond the last finite bucket clamp to it rather than
	// inventing a value for the +Inf bucket.
	h.Observe(100)
	if got := h.Quantile(1.0); got != 0.8 {
		t.Fatalf("p100 with overflow = %v, want clamp to 0.8", got)
	}
	// Snapshot is self-consistent with the live histogram.
	snap := h.Snapshot()
	if snap.Total != h.Count() || snap.Quantile(0.5) != h.Quantile(0.5) {
		t.Fatalf("snapshot diverges: %+v", snap)
	}
}
