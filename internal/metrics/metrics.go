// Package metrics is a small, dependency-free metrics registry exposing
// counters, gauges and histograms in the Prometheus text exposition
// format. The server uses it for the observability the scheduler refactor
// introduces: per-mechanism latency histograms, per-dataset queue-depth
// and batch-size series, and privacy-budget spend histograms, all served
// at /metrics.
//
// Series are identified by a metric name plus an ordered label list, as
// in Prometheus. Lookup allocates, so hot paths should resolve a series
// once and hold the pointer; Counter/Gauge/Histogram return the same
// instance for the same (name, labels) every time.
package metrics

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value pair qualifying a series.
type Label struct {
	Name, Value string
}

// L is shorthand for building a label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Registry holds metric families and renders them for scraping. The zero
// value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // registration order for stable output

	cmu        sync.Mutex
	collectors []func()
}

type family struct {
	name, help, typ string
	buckets         []float64 // histograms only
	mu              sync.Mutex
	series          map[string]metric // key: rendered label set
	order           []string
}

type metric interface {
	render(sb *strings.Builder, name, labels string)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help, typ string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, buckets: buckets, series: make(map[string]metric)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	return f
}

func (f *family) get(labels []Label, mk func() metric) metric {
	key := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.series[key]
	if !ok {
		m = mk()
		f.series[key] = m
		f.order = append(f.order, key)
	}
	return m
}

// Counter is a monotonically increasing float64.
type Counter struct{ bits atomic.Uint64 }

// Add increases the counter by v (v must be >= 0).
func (c *Counter) Add(v float64) { atomicAdd(&c.bits, v) }

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

func (c *Counter) render(sb *strings.Builder, name, labels string) {
	fmt.Fprintf(sb, "%s%s %s\n", name, labels, formatFloat(c.Value()))
}

// Gauge is an arbitrary float64 value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by v (may be negative).
func (g *Gauge) Add(v float64) { atomicAdd(&g.bits, v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) render(sb *strings.Builder, name, labels string) {
	fmt.Fprintf(sb, "%s%s %s\n", name, labels, formatFloat(g.Value()))
}

// Histogram counts observations into cumulative buckets, Prometheus
// style, with a sum and a total count.
type Histogram struct {
	mu      sync.Mutex
	buckets []float64 // upper bounds, ascending; +Inf is implicit
	counts  []uint64  // len(buckets)+1, last is the +Inf bucket
	sum     float64
	total   uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.buckets, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.total++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// HistogramSnapshot is one consistent read of a histogram: bucket upper
// bounds (ascending, +Inf implicit), per-bucket counts (len(Buckets)+1,
// last is the overflow bucket), sum and total.
type HistogramSnapshot struct {
	Buckets []float64
	Counts  []uint64
	Sum     float64
	Total   uint64
}

// Snapshot copies the histogram's state under one lock hold, so quantile
// estimates and delta computations see buckets, sum and total from the
// same instant.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Buckets: h.buckets, // immutable after construction
		Counts:  append([]uint64(nil), h.counts...),
		Sum:     h.sum,
		Total:   h.total,
	}
}

// Quantile estimates the q-quantile (0 <= q <= 1) the way Prometheus'
// histogram_quantile does: find the bucket holding the target rank and
// interpolate linearly within it. Observations in the overflow bucket
// clamp to the highest finite bound. Returns 0 on an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Total == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Total)
	var cum float64
	for i, ub := range s.Buckets {
		prev := cum
		cum += float64(s.Counts[i])
		if cum >= rank {
			lo := 0.0
			if i > 0 {
				lo = s.Buckets[i-1]
			}
			if s.Counts[i] == 0 {
				return ub
			}
			return lo + (ub-lo)*(rank-prev)/float64(s.Counts[i])
		}
	}
	return s.Buckets[len(s.Buckets)-1]
}

// Quantile is Snapshot().Quantile(q) — a convenience for one-off reads.
func (h *Histogram) Quantile(q float64) float64 {
	return h.Snapshot().Quantile(q)
}

func (h *Histogram) render(sb *strings.Builder, name, labels string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	var cum uint64
	for i, ub := range h.buckets {
		cum += h.counts[i]
		fmt.Fprintf(sb, "%s_bucket%s %d\n", name, bucketLabels(labels, formatFloat(ub)), cum)
	}
	cum += h.counts[len(h.buckets)]
	fmt.Fprintf(sb, "%s_bucket%s %d\n", name, bucketLabels(labels, "+Inf"), cum)
	fmt.Fprintf(sb, "%s_sum%s %s\n", name, labels, formatFloat(h.sum))
	fmt.Fprintf(sb, "%s_count%s %d\n", name, labels, h.total)
}

// Counter returns (creating on first use) the counter series for the
// given name and labels. Help is recorded on first use of the name.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	f := r.family(name, help, "counter", nil)
	return f.get(labels, func() metric { return &Counter{} }).(*Counter)
}

// Gauge returns (creating on first use) the gauge series for the given
// name and labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	f := r.family(name, help, "gauge", nil)
	return f.get(labels, func() metric { return &Gauge{} }).(*Gauge)
}

// Histogram returns (creating on first use) the histogram series for the
// given name and labels. The bucket bounds are fixed by the first call
// for a name; later calls reuse them.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	f := r.family(name, help, "histogram", buckets)
	return f.get(labels, func() metric {
		return &Histogram{buckets: f.buckets, counts: make([]uint64, len(f.buckets)+1)}
	}).(*Histogram)
}

// ExpBuckets returns n exponential bucket bounds starting at start and
// multiplying by factor — the usual latency-histogram shape.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// OnScrape registers a collector invoked at the start of every Render —
// the hook for gauges whose truth lives elsewhere (resident-set sizes,
// page-fault counts) and is only worth computing when someone scrapes.
// Collectors run outside the registry lock and update series normally.
func (r *Registry) OnScrape(f func()) {
	r.cmu.Lock()
	defer r.cmu.Unlock()
	r.collectors = append(r.collectors, f)
}

// Render writes every family in the Prometheus text exposition format.
func (r *Registry) Render() string {
	r.cmu.Lock()
	collectors := append([]func(){}, r.collectors...)
	r.cmu.Unlock()
	for _, f := range collectors {
		f()
	}

	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	var sb strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		for _, key := range f.order {
			f.series[key].render(&sb, f.name, key)
		}
		f.mu.Unlock()
	}
	return sb.String()
}

// Handler serves the registry at its mount point (conventionally
// /metrics) in the text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(r.Render()))
	})
}

// renderLabels renders a sorted {k="v",...} label set ("" when empty).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", l.Name, l.Value)
	}
	sb.WriteByte('}')
	return sb.String()
}

// bucketLabels splices le="bound" into an existing rendered label set.
func bucketLabels(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// formatFloat renders a float the way Prometheus clients do.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// atomicAdd adds v to a float64 stored as uint64 bits.
func atomicAdd(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}
