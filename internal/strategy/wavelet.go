package strategy

import (
	"fmt"

	"repro/internal/linalg"
)

// Wavelet is the Haar-wavelet strategy (Privelet, Xiao et al.): the strategy
// answers the Haar transform coefficients of the histogram. Like the
// hierarchical strategy it has logarithmic sensitivity, but range-query
// reconstruction touches only O(log n) coefficients with ±1 weights. The
// paper's APEx uses H2 for its experiments; Wavelet is provided as an
// alternative strategy for the ablation benchmarks.
type Wavelet struct{}

// Name implements Strategy.
func (Wavelet) Name() string { return "haar" }

// Matrix implements Strategy. The domain is implicitly padded to the next
// power of two; padded-only rows are dropped (they are identically zero on
// the real columns), which preserves full column rank because the remaining
// rows still span the space.
func (Wavelet) Matrix(n int) (*linalg.Matrix, error) {
	if n <= 0 {
		return nil, fmt.Errorf("strategy: domain size %d", n)
	}
	p := 1
	for p < n {
		p *= 2
	}
	// Haar basis rows over [0, p): the average row plus difference rows at
	// every scale. Row values restricted to the first n columns.
	type hrow struct {
		vals []float64
	}
	var rows []hrow
	// Scaling (average) row.
	avg := make([]float64, n)
	for j := 0; j < n; j++ {
		avg[j] = 1
	}
	rows = append(rows, hrow{avg})
	// Difference rows: for each scale s (block size b = p/2^s pairs).
	for size := p; size >= 2; size /= 2 {
		half := size / 2
		for start := 0; start < p; start += size {
			v := make([]float64, n)
			nonzero := false
			for j := start; j < start+half && j < n; j++ {
				v[j] = 1
				nonzero = true
			}
			for j := start + half; j < start+size && j < n; j++ {
				v[j] = -1
				nonzero = true
			}
			if nonzero {
				rows = append(rows, hrow{v})
			}
		}
	}
	m := linalg.NewMatrix(len(rows), n)
	for r, hr := range rows {
		for j, v := range hr.vals {
			if v != 0 {
				m.Set(r, j, v)
			}
		}
	}
	return m, nil
}
