package strategy

import (
	"math"
	"testing"

	"repro/internal/linalg"
)

func TestIdentityMatrix(t *testing.T) {
	m, err := Identity{}.Matrix(5)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(linalg.Identity(5), 0) {
		t.Fatal("identity strategy must be I")
	}
	if m.L1Norm() != 1 {
		t.Fatalf("identity sensitivity = %v", m.L1Norm())
	}
	if _, err := (Identity{}).Matrix(0); err == nil {
		t.Fatal("zero domain must error")
	}
}

func TestH2Shape(t *testing.T) {
	m, err := H2.Matrix(4)
	if err != nil {
		t.Fatal(err)
	}
	// Binary tree over 4 leaves: 1 root + 2 internal + 4 leaves = 7 rows.
	if m.Rows() != 7 || m.Cols() != 4 {
		t.Fatalf("H2(4) shape %dx%d", m.Rows(), m.Cols())
	}
	// Root row is all ones.
	for j := 0; j < 4; j++ {
		if m.At(0, j) != 1 {
			t.Fatal("root row must cover the domain")
		}
	}
	// Sensitivity = tree height = 3 levels.
	if got := m.L1Norm(); got != 3 {
		t.Fatalf("H2(4) sensitivity = %v, want 3", got)
	}
}

func TestH2SensitivityLogarithmic(t *testing.T) {
	for _, n := range []int{8, 16, 64, 100, 256} {
		m, err := H2.Matrix(n)
		if err != nil {
			t.Fatal(err)
		}
		got := m.L1Norm()
		want := math.Ceil(math.Log2(float64(n))) + 1
		if got > want+1 {
			t.Errorf("H2(%d) sensitivity %v exceeds log bound %v", n, got, want)
		}
	}
}

func TestH2ContainsLeaves(t *testing.T) {
	n := 10
	m, err := H2.Matrix(n)
	if err != nil {
		t.Fatal(err)
	}
	// Every singleton must appear as a row (full column rank guarantee).
	found := make([]bool, n)
	for r := 0; r < m.Rows(); r++ {
		ones, col := 0, -1
		for j := 0; j < n; j++ {
			if m.At(r, j) == 1 {
				ones++
				col = j
			}
		}
		if ones == 1 {
			found[col] = true
		}
	}
	for j, ok := range found {
		if !ok {
			t.Fatalf("no leaf row for column %d", j)
		}
	}
}

func TestHierarchicalBranchFactors(t *testing.T) {
	for _, b := range []int{2, 4, 8} {
		h := Hierarchical{Branch: b}
		m, err := h.Matrix(64)
		if err != nil {
			t.Fatal(err)
		}
		if m.Cols() != 64 {
			t.Fatalf("b=%d: cols %d", b, m.Cols())
		}
		// Higher fanout => shallower tree => lower sensitivity.
		want := math.Ceil(math.Log(64)/math.Log(float64(b))) + 1
		if got := m.L1Norm(); got > want+1 {
			t.Errorf("b=%d sensitivity %v > %v", b, got, want)
		}
	}
	if (Hierarchical{Branch: 0}).Name() != "h2" {
		t.Fatal("default branch must be 2")
	}
	if (Hierarchical{Branch: 4}).Name() != "h4" {
		t.Fatal("name must include branch")
	}
}

func TestNewReconstructionSpans(t *testing.T) {
	// Prefix workload over 6 partitions.
	n := 6
	w := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			w.Set(i, j, 1)
		}
	}
	rec, err := NewReconstruction(w, H2)
	if err != nil {
		t.Fatal(err)
	}
	if rec.SensA <= 0 {
		t.Fatal("strategy sensitivity must be positive")
	}
	// Exact reconstruction on noiseless answers: R·(A·x) == W·x.
	x := []float64{3, 1, 4, 1, 5, 9}
	ax, err := rec.A.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rec.R.MulVec(ax)
	if err != nil {
		t.Fatal(err)
	}
	want, err := w.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-8 {
			t.Fatalf("reconstruction mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestReconstructionIdentityStrategy(t *testing.T) {
	w := linalg.NewMatrix(2, 3)
	w.Set(0, 0, 1)
	w.Set(0, 1, 1)
	w.Set(1, 2, 1)
	rec, err := NewReconstruction(w, Identity{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.SensA != 1 {
		t.Fatalf("identity SensA = %v", rec.SensA)
	}
	if !rec.R.Equal(w, 1e-9) {
		t.Fatal("R must equal W for identity strategy")
	}
}

func TestH2SingleColumn(t *testing.T) {
	m, err := H2.Matrix(1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 1 || m.At(0, 0) != 1 {
		t.Fatalf("H2(1) = %v", m)
	}
}

func TestWaveletSpansAndReconstructs(t *testing.T) {
	for _, n := range []int{1, 2, 4, 6, 8, 10, 16} {
		a, err := Wavelet{}.Matrix(n)
		if err != nil {
			t.Fatal(err)
		}
		if a.Cols() != n {
			t.Fatalf("n=%d: cols %d", n, a.Cols())
		}
		// Prefix workload reconstruction through the pseudoinverse.
		w := linalg.NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				w.Set(i, j, 1)
			}
		}
		rec, err := NewReconstruction(w, Wavelet{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(i*i + 1)
		}
		ax, err := rec.A.MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		got, err := rec.R.MulVec(ax)
		if err != nil {
			t.Fatal(err)
		}
		want, err := w.MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-7 {
				t.Fatalf("n=%d idx=%d: %v vs %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestWaveletSensitivityLogarithmic(t *testing.T) {
	for _, n := range []int{16, 64, 256} {
		a, err := Wavelet{}.Matrix(n)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Log2(float64(n)) + 1
		if got := a.L1Norm(); got > want+1 {
			t.Errorf("haar(%d) sensitivity %v > %v", n, got, want)
		}
	}
	if (Wavelet{}).Name() != "haar" {
		t.Fatal("name")
	}
	if _, err := (Wavelet{}).Matrix(0); err == nil {
		t.Fatal("zero domain must error")
	}
}
