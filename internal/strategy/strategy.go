// Package strategy provides the strategy matrices A used by APEx's
// strategy-based (matrix) mechanism for workload counting queries
// (paper §5.2). A strategy answers a different set of counting queries with
// low sensitivity ‖A‖₁ from which the analyst's workload W is reconstructed
// via the pseudoinverse: ω = W·A⁺·(Ax + noise).
//
// Two strategies are built in: Identity (answer each partition count
// directly) and the hierarchical H2 tree of interval counts of Hay et al.,
// the strategy the paper uses for all experiments. H2 generalizes to any
// branching factor for ablation studies.
package strategy

import (
	"fmt"

	"repro/internal/linalg"
)

// Strategy produces a strategy matrix for a given domain size.
type Strategy interface {
	// Name identifies the strategy in transcripts and experiment output.
	Name() string
	// Matrix returns the l×n strategy matrix for an n-partition domain.
	Matrix(n int) (*linalg.Matrix, error)
}

// Identity is the trivial strategy A = I.
type Identity struct{}

// Name implements Strategy.
func (Identity) Name() string { return "identity" }

// Matrix implements Strategy.
func (Identity) Matrix(n int) (*linalg.Matrix, error) {
	if n <= 0 {
		return nil, fmt.Errorf("strategy: domain size %d", n)
	}
	return linalg.Identity(n), nil
}

// Hierarchical is the Hb strategy: a complete b-ary tree of interval counts
// over the n partitions. Every tree node contributes one row that is the
// indicator of its interval; leaves are the singleton intervals. The
// sensitivity ‖A‖₁ equals the tree height (every element appears in one
// node per level).
type Hierarchical struct {
	// Branch is the branching factor; 0 or 1 means the default of 2 (H2).
	Branch int
}

// H2 is the paper's default strategy: a binary hierarchy of counts.
var H2 = Hierarchical{Branch: 2}

// Name implements Strategy.
func (h Hierarchical) Name() string {
	return fmt.Sprintf("h%d", h.branch())
}

func (h Hierarchical) branch() int {
	if h.Branch < 2 {
		return 2
	}
	return h.Branch
}

// Matrix implements Strategy.
func (h Hierarchical) Matrix(n int) (*linalg.Matrix, error) {
	if n <= 0 {
		return nil, fmt.Errorf("strategy: domain size %d", n)
	}
	b := h.branch()
	type interval struct{ lo, hi int } // [lo, hi)
	var rows []interval
	queue := []interval{{0, n}}
	for len(queue) > 0 {
		iv := queue[0]
		queue = queue[1:]
		rows = append(rows, iv)
		size := iv.hi - iv.lo
		if size <= 1 {
			continue
		}
		// Split into up to b children of near-equal size.
		children := b
		if size < b {
			children = size
		}
		base := size / children
		extra := size % children
		lo := iv.lo
		for c := 0; c < children; c++ {
			w := base
			if c < extra {
				w++
			}
			queue = append(queue, interval{lo, lo + w})
			lo += w
		}
	}
	m := linalg.NewMatrix(len(rows), n)
	for r, iv := range rows {
		for j := iv.lo; j < iv.hi; j++ {
			m.Set(r, j, 1)
		}
	}
	return m, nil
}

// Reconstruction bundles a strategy matrix with the reconstruction matrix
// R = W·A⁺ used by the strategy mechanism, precomputed once per
// (workload, strategy, domain) triple.
type Reconstruction struct {
	// A is the strategy matrix (l×n).
	A *linalg.Matrix
	// R is W·A⁺ (L×l): noisy strategy answers are mapped to workload
	// answers by ω = R·ŷ.
	R *linalg.Matrix
	// SensA is ‖A‖₁, the strategy sensitivity.
	SensA float64
}

// NewReconstruction builds the reconstruction for workload matrix w and
// strategy s over w's column count. It verifies the strategy spans the
// workload (W·A⁺·A = W), returning an error otherwise.
func NewReconstruction(w *linalg.Matrix, s Strategy) (*Reconstruction, error) {
	a, err := s.Matrix(w.Cols())
	if err != nil {
		return nil, err
	}
	pinv, err := a.PseudoInverse()
	if err != nil {
		return nil, fmt.Errorf("strategy %s: pseudoinverse: %w", s.Name(), err)
	}
	r, err := w.Mul(pinv)
	if err != nil {
		return nil, err
	}
	// Spanning check: W·A⁺·A must reproduce W.
	back, err := r.Mul(a)
	if err != nil {
		return nil, err
	}
	if !back.Equal(w, 1e-6) {
		return nil, fmt.Errorf("strategy %s does not span the workload", s.Name())
	}
	return &Reconstruction{A: a, R: r, SensA: a.L1Norm()}, nil
}
