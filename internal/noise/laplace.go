// Package noise provides the randomness substrate for APEx's differentially
// private mechanisms: Laplace sampling, Laplace tail bounds used by the
// accuracy-to-privacy translation formulas, and the gradual-release
// ("RelaxPrivacy") noise ladder that the multi-poking mechanism uses to
// correlate noise across privacy relaxations.
//
// All sampling goes through an injected *rand.Rand so experiments are
// reproducible; NewSource gives a convenient seeded source.
package noise

import (
	"fmt"
	"math"
	"math/rand"
)

// NewRand returns a deterministic *rand.Rand seeded with seed.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// SplitSeed derives an independent stream seed from a base seed, using a
// splitmix64-style finalizer. Parallel samplers (the strategy mechanism's
// blocked Monte-Carlo translation) give every block its own stream, so
// the drawn samples are a pure function of (seed, stream) — identical no
// matter how many workers run the blocks or in what order.
func SplitSeed(seed, stream int64) int64 {
	z := uint64(seed) + (uint64(stream)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Laplace draws one sample from the Laplace distribution with mean 0 and
// scale b (density (1/2b)·exp(-|z|/b)) using inverse-CDF sampling.
func Laplace(rng *rand.Rand, b float64) float64 {
	if b < 0 {
		panic(fmt.Sprintf("noise: negative Laplace scale %v", b))
	}
	if b == 0 {
		return 0
	}
	// u uniform in (-1/2, 1/2); guard against u == -1/2 exactly.
	u := rng.Float64() - 0.5
	for u == -0.5 {
		u = rng.Float64() - 0.5
	}
	if u < 0 {
		return b * math.Log(1+2*u)
	}
	return -b * math.Log(1-2*u)
}

// LaplaceVec draws n independent Laplace(0, b) samples.
func LaplaceVec(rng *rand.Rand, b float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = Laplace(rng, b)
	}
	return out
}

// LaplaceVecInto fills dst with independent Laplace(0, b) samples.
func LaplaceVecInto(rng *rand.Rand, b float64, dst []float64) {
	for i := range dst {
		dst[i] = Laplace(rng, b)
	}
}

// TailProb returns Pr[|Lap(0,b)| > t] = exp(-t/b) for t >= 0.
func TailProb(b, t float64) float64 {
	if t < 0 {
		return 1
	}
	if b == 0 {
		if t == 0 {
			return 1
		}
		return 0
	}
	return math.Exp(-t / b)
}

// OneSidedTailProb returns Pr[Lap(0,b) > t] = exp(-t/b)/2 for t >= 0.
func OneSidedTailProb(b, t float64) float64 {
	if t < 0 {
		return 1 - OneSidedTailProb(b, -t)
	}
	if b == 0 {
		return 0
	}
	return math.Exp(-t/b) / 2
}

// ZScore returns the (1-p)-quantile of the standard normal distribution,
// i.e. z such that Φ(z) = 1-p. It is used by the strategy mechanism's
// Monte-Carlo translation to build a confidence interval around the
// empirical failure rate (Algorithm 3, line 21). Implemented with the
// Beasley-Springer-Moro rational approximation (absolute error < 1.2e-9).
func ZScore(p float64) float64 {
	return normQuantile(1 - p)
}

// normQuantile returns Φ⁻¹(u) for u in (0,1), using the Acklam/BSM
// rational approximation.
func normQuantile(u float64) float64 {
	if u <= 0 {
		return math.Inf(-1)
	}
	if u >= 1 {
		return math.Inf(1)
	}
	// Coefficients for the central and tail regions (Acklam 2003).
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const plow = 0.02425
	switch {
	case u < plow:
		q := math.Sqrt(-2 * math.Log(u))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case u <= 1-plow:
		q := u - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-u))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}
