package noise

import (
	"fmt"
	"math/rand"
)

// Ladder implements the gradual-release ("RelaxPrivacy") noise schedule of
// Koufogiannis et al. used by the multi-poking mechanism (paper Algorithm 4,
// line 15). A Ladder pre-computes, for an increasing privacy sequence
// ε_0 < ε_1 < ... < ε_{m-1}, a correlated sequence of noise vectors
// η_0, η_1, ..., η_{m-1} such that
//
//  1. marginally η_i ~ Lap(sens/ε_i)^L at every stage, and
//  2. every earlier (noisier) vector is a deterministic function of the
//     latest (least-noisy) vector plus data-independent randomness, so the
//     transcript through stage i is a post-processing of an ε_i-DP release.
//
// Construction: sample the final vector η_{m-1} ~ Lap(sens/ε_{m-1})^L, then
// walk backwards with η_i = η_{i+1} + ξ_i where ξ_i is 0 with probability
// (ε_i/ε_{i+1})² and Lap(sens/ε_i) otherwise. The Laplace characteristic
// function 1/(1+b²t²) factors exactly this way:
//
//	φ_{Lap(b_i)}(t) = φ_{Lap(b_{i+1})}(t) · [ (ε_i/ε_{i+1})² + (1-(ε_i/ε_{i+1})²)·φ_{Lap(b_i)}(t) ]
//
// so each η_i has the exact Laplace marginal at its own privacy level.
type Ladder struct {
	levels [][]float64 // levels[i] is the noise vector for stage i
	eps    []float64
}

// NewLadder builds a ladder for len(eps) stages over vectors of length n,
// with per-stage scales sens/eps[i]. eps must be strictly increasing and
// positive.
func NewLadder(rng *rand.Rand, sens float64, eps []float64, n int) (*Ladder, error) {
	if len(eps) == 0 {
		return nil, fmt.Errorf("noise: ladder needs at least one stage")
	}
	if sens <= 0 {
		return nil, fmt.Errorf("noise: ladder sensitivity must be positive, got %v", sens)
	}
	for i, e := range eps {
		if e <= 0 {
			return nil, fmt.Errorf("noise: ladder eps[%d]=%v must be positive", i, e)
		}
		if i > 0 && e <= eps[i-1] {
			return nil, fmt.Errorf("noise: ladder eps must be strictly increasing (eps[%d]=%v <= eps[%d]=%v)", i, e, i-1, eps[i-1])
		}
	}
	m := len(eps)
	levels := make([][]float64, m)
	// Final stage: fresh Laplace at the largest ε (smallest scale).
	levels[m-1] = LaplaceVec(rng, sens/eps[m-1], n)
	// Backward refinement: add an independent "coarsening" increment.
	for i := m - 2; i >= 0; i-- {
		ratio := eps[i] / eps[i+1]
		keep := ratio * ratio
		cur := make([]float64, n)
		next := levels[i+1]
		for j := 0; j < n; j++ {
			if rng.Float64() < keep {
				cur[j] = next[j]
			} else {
				cur[j] = next[j] + Laplace(rng, sens/eps[i])
			}
		}
		levels[i] = cur
	}
	cp := make([]float64, len(eps))
	copy(cp, eps)
	return &Ladder{levels: levels, eps: cp}, nil
}

// Stages returns the number of stages in the ladder.
func (l *Ladder) Stages() int { return len(l.levels) }

// Eps returns the privacy level of stage i.
func (l *Ladder) Eps(i int) float64 { return l.eps[i] }

// Noise returns the noise vector for stage i. The returned slice is shared;
// callers must not modify it.
func (l *Ladder) Noise(i int) []float64 { return l.levels[i] }
