package noise

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLaplaceZeroScale(t *testing.T) {
	rng := NewRand(1)
	for i := 0; i < 10; i++ {
		if v := Laplace(rng, 0); v != 0 {
			t.Fatalf("Laplace(0) = %v, want 0", v)
		}
	}
}

func TestLaplaceNegativeScalePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative scale")
		}
	}()
	Laplace(NewRand(1), -1)
}

func TestLaplaceMomentsMatch(t *testing.T) {
	rng := NewRand(42)
	const n = 200000
	b := 2.5
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := Laplace(rng, b)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("mean %v too far from 0", mean)
	}
	// Var(Lap(b)) = 2b² = 12.5.
	if math.Abs(variance-2*b*b) > 0.5 {
		t.Fatalf("variance %v, want ~%v", variance, 2*b*b)
	}
}

func TestLaplaceTailEmpirical(t *testing.T) {
	rng := NewRand(7)
	const n = 100000
	b, thresh := 1.0, 2.0
	var exceed int
	for i := 0; i < n; i++ {
		if math.Abs(Laplace(rng, b)) > thresh {
			exceed++
		}
	}
	got := float64(exceed) / n
	want := TailProb(b, thresh) // e^-2 ≈ 0.1353
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("empirical tail %v, analytic %v", got, want)
	}
}

func TestTailProbEdges(t *testing.T) {
	if got := TailProb(1, -1); got != 1 {
		t.Fatalf("TailProb(t<0) = %v, want 1", got)
	}
	if got := TailProb(0, 0); got != 1 {
		t.Fatalf("TailProb(b=0,t=0) = %v, want 1", got)
	}
	if got := TailProb(0, 1); got != 0 {
		t.Fatalf("TailProb(b=0,t>0) = %v, want 0", got)
	}
}

func TestOneSidedTail(t *testing.T) {
	if got, want := OneSidedTailProb(1, 0), 0.5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("got %v want %v", got, want)
	}
	// Symmetry: P(X > -t) = 1 - P(X > t).
	if got, want := OneSidedTailProb(1, -2), 1-OneSidedTailProb(1, 2); math.Abs(got-want) > 1e-12 {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestZScoreKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.025, 1.959964},
		{0.05, 1.644854},
		{0.005, 2.575829},
	}
	for _, c := range cases {
		if got := ZScore(c.p); math.Abs(got-c.want) > 1e-4 {
			t.Errorf("ZScore(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestNormQuantileExtremes(t *testing.T) {
	if !math.IsInf(normQuantile(0), -1) {
		t.Fatal("normQuantile(0) should be -Inf")
	}
	if !math.IsInf(normQuantile(1), 1) {
		t.Fatal("normQuantile(1) should be +Inf")
	}
}

// Property: the Laplace quantile/tail relationship holds: the fraction of
// samples under the (1-q)-tail threshold matches q approximately.
func TestQuickTailMonotone(t *testing.T) {
	f := func(rawB, rawT1, rawT2 float64) bool {
		b := math.Abs(math.Mod(rawB, 10)) + 0.1
		t1 := math.Abs(math.Mod(rawT1, 10))
		t2 := math.Abs(math.Mod(rawT2, 10))
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		return TailProb(b, t1) >= TailProb(b, t2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLaplaceVecInto(t *testing.T) {
	rng := NewRand(9)
	dst := make([]float64, 16)
	LaplaceVecInto(rng, 1.0, dst)
	var nonzero int
	for _, v := range dst {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("expected nonzero noise")
	}
}

func TestDeterminism(t *testing.T) {
	a := LaplaceVec(NewRand(5), 1.0, 8)
	b := LaplaceVec(NewRand(5), 1.0, 8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same samples")
		}
	}
}

func BenchmarkLaplace(b *testing.B) {
	rng := NewRand(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Laplace(rng, 1.0)
	}
}
