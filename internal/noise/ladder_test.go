package noise

import (
	"math"
	"testing"
)

func TestNewLadderValidation(t *testing.T) {
	rng := NewRand(1)
	if _, err := NewLadder(rng, 1, nil, 4); err == nil {
		t.Fatal("empty eps must error")
	}
	if _, err := NewLadder(rng, 0, []float64{1}, 4); err == nil {
		t.Fatal("zero sensitivity must error")
	}
	if _, err := NewLadder(rng, 1, []float64{1, 1}, 4); err == nil {
		t.Fatal("non-increasing eps must error")
	}
	if _, err := NewLadder(rng, 1, []float64{-1, 1}, 4); err == nil {
		t.Fatal("negative eps must error")
	}
}

func TestLadderShapes(t *testing.T) {
	rng := NewRand(2)
	eps := []float64{0.1, 0.2, 0.3}
	l, err := NewLadder(rng, 2, eps, 5)
	if err != nil {
		t.Fatal(err)
	}
	if l.Stages() != 3 {
		t.Fatalf("Stages = %d", l.Stages())
	}
	for i := range eps {
		if l.Eps(i) != eps[i] {
			t.Fatalf("Eps(%d) = %v", i, l.Eps(i))
		}
		if len(l.Noise(i)) != 5 {
			t.Fatalf("stage %d has %d entries", i, len(l.Noise(i)))
		}
	}
}

// Marginal check: each stage's noise must be Laplace with scale sens/eps_i.
// We verify the variance (2b²) within Monte-Carlo tolerance.
func TestLadderMarginalVariance(t *testing.T) {
	rng := NewRand(3)
	eps := []float64{0.5, 1.0, 2.0}
	sens := 1.0
	const trials = 4000
	const n = 8
	sumSq := make([]float64, len(eps))
	for tr := 0; tr < trials; tr++ {
		l, err := NewLadder(rng, sens, eps, n)
		if err != nil {
			t.Fatal(err)
		}
		for i := range eps {
			for _, v := range l.Noise(i) {
				sumSq[i] += v * v
			}
		}
	}
	for i, e := range eps {
		b := sens / e
		want := 2 * b * b
		got := sumSq[i] / float64(trials*n)
		if math.Abs(got-want) > 0.15*want {
			t.Errorf("stage %d: variance %v, want ~%v", i, got, want)
		}
	}
}

// Refinement property: coarser stages differ from the final stage only by
// the data-independent increments, and with probability (ε_i/ε_{i+1})² a
// coordinate is carried over exactly. Check the carry-over rate empirically.
func TestLadderCarryOverRate(t *testing.T) {
	rng := NewRand(4)
	eps := []float64{1.0, 2.0}
	const trials = 20000
	var same int
	for tr := 0; tr < trials; tr++ {
		l, err := NewLadder(rng, 1, eps, 1)
		if err != nil {
			t.Fatal(err)
		}
		if l.Noise(0)[0] == l.Noise(1)[0] {
			same++
		}
	}
	got := float64(same) / trials
	want := 0.25 // (1/2)²
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("carry-over rate %v, want ~%v", got, want)
	}
}

// The noisier stage must never have smaller expected magnitude than the
// less-noisy stage in aggregate (variance ordering).
func TestLadderVarianceOrdering(t *testing.T) {
	rng := NewRand(5)
	eps := []float64{0.2, 0.4, 0.8, 1.6}
	const trials = 3000
	sums := make([]float64, len(eps))
	for tr := 0; tr < trials; tr++ {
		l, err := NewLadder(rng, 1, eps, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i := range eps {
			for _, v := range l.Noise(i) {
				sums[i] += v * v
			}
		}
	}
	for i := 1; i < len(sums); i++ {
		if sums[i] >= sums[i-1] {
			t.Fatalf("variance must decrease along the ladder: %v", sums)
		}
	}
}
