// Package accuracy defines APEx's accuracy semantics (Definitions 3.1–3.3)
// and the empirical error metrics the paper's evaluation section reports:
// the scaled maximum workload error for WCQ, the scaled mislabel distance
// for ICQ/TCQ, and the F1 score between true and noisy answer sets.
package accuracy

import (
	"fmt"
	"math"
	"sort"
)

// Requirement is the (α, 1-β) accuracy annotation attached to every
// exploration query: "error at most Alpha except with probability Beta".
type Requirement struct {
	// Alpha is the additive error bound in count units.
	Alpha float64
	// Beta is the failure probability (confidence is 1-Beta).
	Beta float64
}

// Validate checks the requirement is usable: α > 0 and β ∈ (0, 1).
func (r Requirement) Validate() error {
	if r.Alpha <= 0 || math.IsNaN(r.Alpha) || math.IsInf(r.Alpha, 0) {
		return fmt.Errorf("accuracy: alpha must be positive and finite, got %v", r.Alpha)
	}
	if r.Beta <= 0 || r.Beta >= 1 || math.IsNaN(r.Beta) {
		return fmt.Errorf("accuracy: beta must lie in (0,1), got %v", r.Beta)
	}
	return nil
}

// String implements fmt.Stringer.
func (r Requirement) String() string {
	return fmt.Sprintf("ERROR %g CONFIDENCE %g", r.Alpha, 1-r.Beta)
}

// WCQError returns the maximum absolute error ‖noisy - truth‖∞ of a
// workload counting answer. Scale by |D| for the paper's reported metric.
func WCQError(truth, noisy []float64) (float64, error) {
	if len(truth) != len(noisy) {
		return 0, fmt.Errorf("accuracy: answer length %d vs %d", len(noisy), len(truth))
	}
	var worst float64
	for i := range truth {
		if d := math.Abs(noisy[i] - truth[i]); d > worst {
			worst = d
		}
	}
	return worst, nil
}

// ICQError returns the maximum mislabel distance of an iceberg answer: for
// each predicate included in the answer whose true count is below the
// threshold c, the shortfall c - count; for each excluded predicate whose
// true count exceeds c, the excess count - c. Zero means a perfect
// labeling. truth holds the true counts per workload predicate; selected[i]
// reports whether predicate i was returned.
func ICQError(truth []float64, selected []bool, c float64) (float64, error) {
	if len(truth) != len(selected) {
		return 0, fmt.Errorf("accuracy: counts %d vs selections %d", len(truth), len(selected))
	}
	var worst float64
	for i, cnt := range truth {
		var d float64
		if selected[i] && cnt < c {
			d = c - cnt
		} else if !selected[i] && cnt > c {
			d = cnt - c
		}
		if d > worst {
			worst = d
		}
	}
	return worst, nil
}

// TCQError returns the maximum mislabel distance of a top-k answer: for
// each selected predicate whose true count is below the true k-th largest
// count ck, the shortfall ck - count; for each unselected predicate whose
// count exceeds ck, the excess. Zero means the answer is a valid top-k set.
func TCQError(truth []float64, selected []bool, k int) (float64, error) {
	if len(truth) != len(selected) {
		return 0, fmt.Errorf("accuracy: counts %d vs selections %d", len(truth), len(selected))
	}
	if k <= 0 || k > len(truth) {
		return 0, fmt.Errorf("accuracy: k=%d out of range for %d predicates", k, len(truth))
	}
	ck := KthLargest(truth, k)
	var worst float64
	for i, cnt := range truth {
		var d float64
		if selected[i] && cnt < ck {
			d = ck - cnt
		} else if !selected[i] && cnt > ck {
			d = cnt - ck
		}
		if d > worst {
			worst = d
		}
	}
	return worst, nil
}

// KthLargest returns the k-th largest value of xs (1-based).
func KthLargest(xs []float64, k int) float64 {
	cp := append([]float64(nil), xs...)
	sort.Sort(sort.Reverse(sort.Float64Slice(cp)))
	return cp[k-1]
}

// F1 returns the F1 score between the true answer set and the noisy answer
// set, both given as selection masks over the same workload. A pair of
// empty sets scores 1 (nothing to find, nothing found).
func F1(truthSel, noisySel []bool) (float64, error) {
	if len(truthSel) != len(noisySel) {
		return 0, fmt.Errorf("accuracy: masks %d vs %d", len(truthSel), len(noisySel))
	}
	var tp, fp, fn int
	for i := range truthSel {
		switch {
		case truthSel[i] && noisySel[i]:
			tp++
		case !truthSel[i] && noisySel[i]:
			fp++
		case truthSel[i] && !noisySel[i]:
			fn++
		}
	}
	if tp == 0 {
		if fp == 0 && fn == 0 {
			return 1, nil
		}
		return 0, nil
	}
	precision := float64(tp) / float64(tp+fp)
	recall := float64(tp) / float64(tp+fn)
	return 2 * precision * recall / (precision + recall), nil
}

// SelectTopK returns the mask of the k largest counts (ties broken by
// lower index, matching a stable descending sort).
func SelectTopK(counts []float64, k int) []bool {
	type pair struct {
		i int
		v float64
	}
	ps := make([]pair, len(counts))
	for i, v := range counts {
		ps[i] = pair{i, v}
	}
	sort.SliceStable(ps, func(a, b int) bool { return ps[a].v > ps[b].v })
	mask := make([]bool, len(counts))
	for j := 0; j < k && j < len(ps); j++ {
		mask[ps[j].i] = true
	}
	return mask
}

// SelectAbove returns the mask of counts strictly greater than c.
func SelectAbove(counts []float64, c float64) []bool {
	mask := make([]bool, len(counts))
	for i, v := range counts {
		mask[i] = v > c
	}
	return mask
}
