package accuracy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRequirementValidate(t *testing.T) {
	good := Requirement{Alpha: 10, Beta: 0.05}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Requirement{
		{Alpha: 0, Beta: 0.05},
		{Alpha: -1, Beta: 0.05},
		{Alpha: math.Inf(1), Beta: 0.05},
		{Alpha: math.NaN(), Beta: 0.05},
		{Alpha: 1, Beta: 0},
		{Alpha: 1, Beta: 1},
		{Alpha: 1, Beta: -0.1},
		{Alpha: 1, Beta: math.NaN()},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d (%+v): expected error", i, r)
		}
	}
}

func TestRequirementString(t *testing.T) {
	r := Requirement{Alpha: 10, Beta: 0.05}
	if got := r.String(); got != "ERROR 10 CONFIDENCE 0.95" {
		t.Fatalf("String = %q", got)
	}
}

func TestWCQError(t *testing.T) {
	got, err := WCQError([]float64{10, 20, 30}, []float64{12, 18, 30})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("WCQError = %v, want 2", got)
	}
	if _, err := WCQError([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch must error")
	}
}

func TestICQError(t *testing.T) {
	truth := []float64{100, 40, 60, 55}
	c := 50.0
	// Perfect labeling.
	sel := []bool{true, false, true, true}
	got, err := ICQError(truth, sel, c)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("perfect labeling error = %v", got)
	}
	// Include a 40-count bin (shortfall 10), exclude the 100 bin (excess 50).
	bad := []bool{false, true, true, true}
	got, err = ICQError(truth, bad, c)
	if err != nil {
		t.Fatal(err)
	}
	if got != 50 {
		t.Fatalf("mislabel distance = %v, want 50", got)
	}
	if _, err := ICQError(truth, []bool{true}, c); err == nil {
		t.Fatal("length mismatch must error")
	}
}

func TestTCQError(t *testing.T) {
	truth := []float64{90, 80, 70, 10, 5}
	// True top-3: indices 0,1,2 with ck=70.
	perfect := []bool{true, true, true, false, false}
	got, err := TCQError(truth, perfect, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("perfect top-k error = %v", got)
	}
	// Swap in the 10-count bin for the 90: both errors counted.
	bad := []bool{false, true, true, true, false}
	got, err = TCQError(truth, bad, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 60 { // max(70-10, 90-70) = 60
		t.Fatalf("error = %v, want 60", got)
	}
	if _, err := TCQError(truth, perfect, 0); err == nil {
		t.Fatal("k=0 must error")
	}
	if _, err := TCQError(truth, perfect, 6); err == nil {
		t.Fatal("k>L must error")
	}
	if _, err := TCQError(truth, []bool{true}, 1); err == nil {
		t.Fatal("length mismatch must error")
	}
}

func TestKthLargest(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if got := KthLargest(xs, 1); got != 5 {
		t.Fatalf("1st = %v", got)
	}
	if got := KthLargest(xs, 3); got != 3 {
		t.Fatalf("3rd = %v", got)
	}
	if got := KthLargest(xs, 5); got != 1 {
		t.Fatalf("5th = %v", got)
	}
	// Input must not be mutated.
	if xs[0] != 3 {
		t.Fatal("KthLargest must not mutate input")
	}
}

func TestF1(t *testing.T) {
	cases := []struct {
		truth, noisy []bool
		want         float64
	}{
		{[]bool{true, false}, []bool{true, false}, 1},
		{[]bool{false, false}, []bool{false, false}, 1},
		{[]bool{true, true}, []bool{false, false}, 0},
		{[]bool{false, false}, []bool{true, true}, 0},
		// tp=1 fp=1 fn=1: precision=recall=0.5, F1=0.5.
		{[]bool{true, true, false}, []bool{true, false, true}, 0.5},
	}
	for i, c := range cases {
		got, err := F1(c.truth, c.noisy)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: F1 = %v, want %v", i, got, c.want)
		}
	}
	if _, err := F1([]bool{true}, []bool{true, false}); err == nil {
		t.Fatal("length mismatch must error")
	}
}

func TestSelectTopK(t *testing.T) {
	mask := SelectTopK([]float64{5, 9, 1, 9}, 2)
	// Stable: first 9 (index 1) then second 9 (index 3).
	want := []bool{false, true, false, true}
	for i := range want {
		if mask[i] != want[i] {
			t.Fatalf("mask = %v, want %v", mask, want)
		}
	}
	all := SelectTopK([]float64{1, 2}, 5)
	if !all[0] || !all[1] {
		t.Fatal("k larger than L selects everything")
	}
}

func TestSelectAbove(t *testing.T) {
	mask := SelectAbove([]float64{10, 50, 51}, 50)
	want := []bool{false, false, true}
	for i := range want {
		if mask[i] != want[i] {
			t.Fatalf("mask = %v, want %v", mask, want)
		}
	}
}

// Property: WCQError is symmetric and zero iff vectors are equal.
func TestQuickWCQErrorMetric(t *testing.T) {
	f := func(a, b []float64) bool {
		if len(a) != len(b) {
			n := len(a)
			if len(b) < n {
				n = len(b)
			}
			a, b = a[:n], b[:n]
		}
		for _, v := range append(append([]float64{}, a...), b...) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		ab, err1 := WCQError(a, b)
		ba, err2 := WCQError(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return ab == ba && (ab > 0) == !equalSlices(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func equalSlices(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Property: the true top-k selection always has zero TCQ error and F1 = 1.
func TestQuickTopKSelfConsistency(t *testing.T) {
	f := func(raw []float64, kRaw uint8) bool {
		counts := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				counts = append(counts, v)
			}
		}
		if len(counts) == 0 {
			return true
		}
		k := int(kRaw)%len(counts) + 1
		sel := SelectTopK(counts, k)
		e, err := TCQError(counts, sel, k)
		if err != nil {
			return false
		}
		return e == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
