package server_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/sched"
	"repro/internal/server"
	"repro/internal/server/client"
)

const binQuery = "BIN D ON COUNT(*) WHERE W = { age BETWEEN 0 AND 50, age BETWEEN 50 AND 100 } ERROR 30 CONFIDENCE 0.95;"

// TestQueryBackpressure429: a tiny scheduler queue under concurrent load
// must reject with HTTP 429 + Retry-After + the queue_full code, and a
// client-side retry policy must ride the rejections out.
func TestQueryBackpressure429(t *testing.T) {
	// A table big enough that each distinct workload's scan is real work,
	// so requests actually pile up behind the single worker.
	reg := server.NewRegistry()
	table, err := dataset.ReadCSV(strings.NewReader(peopleCSV(100000, 1)), peopleSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Add("people", table); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(reg, server.Config{
		Sched: sched.Config{QueueDepth: 1, MaxPerSession: 1, Workers: 1, RetryAfter: time.Second},
	}).Handler())
	defer ts.Close()
	c := client.New(ts.URL)

	const analysts = 12
	sessions := make([]string, analysts)
	for i := range sessions {
		sess, err := c.CreateSession(server.CreateSessionRequest{Dataset: "people", Budget: 1000})
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = sess.ID
	}
	// Every request asks a fresh distinct 21-predicate workload, so
	// nothing is served from the evaluation memo for free and each scan
	// is multiple milliseconds — far above the per-request HTTP cost.
	next := new(atomic.Int64)
	distinctQuery := func() string {
		n := next.Add(1)
		var preds []string
		for b := 0; b < 100; b += 5 {
			preds = append(preds, fmt.Sprintf("age BETWEEN %d AND %d", b, b+5))
		}
		preds = append(preds, fmt.Sprintf("age BETWEEN %d.25 AND %d.75", n%50, n%50+10))
		return "BIN D ON COUNT(*) WHERE W = { " + strings.Join(preds, ", ") + " } ERROR 40 CONFIDENCE 0.95;"
	}

	var ok, pressured atomic.Int64
	var sawRetryAfter atomic.Bool
	// A burst of concurrent analysts against a depth-1 queue and a single
	// worker must shed load; a few bounded rounds absorb scheduling luck.
	for round := 0; round < 20 && pressured.Load() == 0; round++ {
		var wg sync.WaitGroup
		for i := 0; i < analysts; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for j := 0; j < 2; j++ {
					_, err := c.Query(sessions[i], distinctQuery())
					switch {
					case err == nil:
						ok.Add(1)
					case client.IsBackpressure(err):
						pressured.Add(1)
						var ae *client.APIError
						if asClientAPIError(err, &ae) && ae.RetryAfter > 0 {
							sawRetryAfter.Store(true)
						}
					default:
						t.Errorf("analyst %d: %v", i, err)
					}
				}
			}(i)
		}
		wg.Wait()
	}
	if ok.Load() == 0 {
		t.Fatal("no query succeeded")
	}
	if pressured.Load() == 0 {
		t.Fatal("queue depth 1 under 12 concurrent analysts never produced a 429")
	}
	if !sawRetryAfter.Load() {
		t.Fatal("429 replies carried no Retry-After hint")
	}

	// With the bounded-backoff retry enabled, the same pressure resolves.
	c.Retry = &client.RetryPolicy{MaxRetries: 500, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
	var wg2 sync.WaitGroup
	for i := 0; i < analysts; i++ {
		wg2.Add(1)
		go func(i int) {
			defer wg2.Done()
			if _, err := c.Query(sessions[i], distinctQuery()); err != nil {
				t.Errorf("analyst %d with retry: %v", i, err)
			}
		}(i)
	}
	wg2.Wait()
}

// TestMetricsEndpoint: /metrics must expose the scheduler and mechanism
// series in the Prometheus text format after traffic has flowed.
func TestMetricsEndpoint(t *testing.T) {
	c := newTestServer(t, server.Config{})
	sess, err := c.CreateSession(server.CreateSessionRequest{Dataset: "people", Budget: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Query(sess.ID, binQuery); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Get(c.BaseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE apex_mechanism_latency_seconds histogram",
		`apex_sched_queue_depth{dataset="people"}`,
		`apex_sched_batch_size_count{dataset="people"} 3`,
		`apex_budget_spend_epsilon_count{dataset="people"} 3`,
		`apex_sched_requests_total{dataset="people",outcome="answered"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, out)
		}
	}
}

// TestShutdownStopsScheduler: after Server.Shutdown the query path must
// answer 503 unavailable instead of hanging or dropping requests.
func TestShutdownStopsScheduler(t *testing.T) {
	reg := server.NewRegistry()
	table, err := dataset.ReadCSV(strings.NewReader(peopleCSV(100, 1)), peopleSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Add("people", table); err != nil {
		t.Fatal(err)
	}
	srv := server.New(reg, server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL)
	sess, err := c.CreateSession(server.CreateSessionRequest{Dataset: "people", Budget: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(sess.ID, binQuery); err != nil {
		t.Fatal(err)
	}
	if err := srv.Shutdown(); err != nil {
		t.Fatal(err)
	}
	_, err = c.Query(sess.ID, binQuery)
	var ae *client.APIError
	if !asClientAPIError(err, &ae) || ae.StatusCode != http.StatusServiceUnavailable || ae.Code != server.CodeUnavailable {
		t.Fatalf("post-shutdown query: got %v, want 503 %s", err, server.CodeUnavailable)
	}
}

func asClientAPIError(err error, target **client.APIError) bool {
	ae, ok := err.(*client.APIError)
	if ok {
		*target = ae
	}
	return ok
}
