package server_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/sched"
	"repro/internal/server"
	"repro/internal/server/client"
)

// newRawServer serves an already-built server, returning the raw
// httptest.Server so tests can assert on wire-level bodies and headers.
func newRawServer(t *testing.T, srv *server.Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// newRawTestServer is newRawServer over a default-config server.
func newRawTestServer(t *testing.T, reg *server.Registry) *httptest.Server {
	t.Helper()
	return newRawServer(t, server.New(reg, server.Config{}))
}

// TestTraceRoundTrip is the observability end-to-end: a caller-chosen
// X-Request-ID must round-trip client → query response → transcript entry
// → dataset audit view → /v1/debug/traces, and the recorded trace must
// contain the pipeline phases (queue, prepare, execute, commit, wal_flush)
// with durations that nest inside the root and a root that accounts for
// the observed wall latency. Runs against a durable server so the WAL
// flush wait is a real phase. Run with -race: span recording crosses the
// handler, scheduler-worker and WAL goroutine boundaries.
func TestTraceRoundTrip(t *testing.T) {
	c, _, _, _ := startDurableServer(t, t.TempDir())
	if _, err := c.AddDataset(server.AddDatasetRequest{
		Name:   "people",
		Schema: peopleSchema(t),
		CSV:    peopleCSV(500, 1),
	}); err != nil {
		t.Fatal(err)
	}
	sess, err := c.CreateSession(server.CreateSessionRequest{Dataset: "people", Budget: 10})
	if err != nil {
		t.Fatal(err)
	}

	const rid = "e2e-trace-roundtrip.001"
	start := time.Now()
	resp, err := c.QueryWithRequestID(sess.ID, binQuery, rid)
	wall := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Denied {
		t.Fatalf("query denied: %s", resp.Reason)
	}
	if resp.TraceID != rid {
		t.Fatalf("QueryResponse.TraceID = %q, want %q", resp.TraceID, rid)
	}

	// Transcript entry: same trace ID, plus a parseable commit timestamp.
	tr, err := c.Transcript(sess.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Entries) != 1 {
		t.Fatalf("transcript has %d entries, want 1", len(tr.Entries))
	}
	ent := tr.Entries[0]
	if ent.TraceID != rid {
		t.Fatalf("transcript entry trace_id = %q, want %q", ent.TraceID, rid)
	}
	if ent.At == "" {
		t.Fatal("transcript entry has no commit timestamp")
	}
	at, err := time.Parse(time.RFC3339Nano, ent.At)
	if err != nil {
		t.Fatalf("transcript at = %q: %v", ent.At, err)
	}
	if at.Before(start.Add(-time.Second)) || at.After(time.Now().Add(time.Second)) {
		t.Fatalf("commit time %v outside the request window", at)
	}

	// Audit view: the dataset spend timeline attributes the charge to the
	// same request.
	audit, err := c.Audit("people")
	if err != nil {
		t.Fatal(err)
	}
	if audit.Dataset != "people" || audit.Sessions != 1 || len(audit.Events) != 1 {
		t.Fatalf("audit = %+v, want 1 session / 1 event", audit)
	}
	ev := audit.Events[0]
	if ev.TraceID != rid || ev.Session != sess.ID {
		t.Fatalf("audit event = %+v, want trace %q session %q", ev, rid, sess.ID)
	}
	if ev.Epsilon <= 0 || ev.Cumulative != ev.Epsilon {
		t.Fatalf("audit event charge = %v cumulative %v, want positive and equal", ev.Epsilon, ev.Cumulative)
	}
	if audit.TotalSpent != ev.Cumulative {
		t.Fatalf("audit total %v != cumulative %v", audit.TotalSpent, ev.Cumulative)
	}

	// Debug trace ring. The trace finishes after the response body is
	// written, so poll briefly instead of racing the middleware.
	var view *server.TraceView
	deadline := time.Now().Add(2 * time.Second)
	for view == nil {
		views, err := c.Traces("people", sess.ID, 0, 10)
		if err != nil {
			t.Fatal(err)
		}
		for i := range views {
			if views[i].ID == rid {
				view = &views[i]
				break
			}
		}
		if view == nil {
			if time.Now().After(deadline) {
				t.Fatalf("trace %q never appeared in /v1/debug/traces", rid)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	if view.Tags["dataset"] != "people" || view.Tags["session"] != sess.ID {
		t.Fatalf("trace tags = %v", view.Tags)
	}
	if view.Tags["status"] != "200" {
		t.Fatalf("trace status tag = %q, want 200", view.Tags["status"])
	}
	if view.DurationUS <= 0 {
		t.Fatalf("root duration %dus, want > 0", view.DurationUS)
	}
	// The root is the server-side request span; it cannot exceed the
	// client-observed wall latency (which adds network and decode time).
	if got := time.Duration(view.DurationUS) * time.Microsecond; got > wall+50*time.Millisecond {
		t.Fatalf("root duration %v exceeds wall latency %v", got, wall)
	}

	// Every pipeline phase must be present, and every span (at any depth)
	// must nest inside the root interval; children inside their parents.
	phases := map[string]bool{}
	var check func(parent *server.SpanView, sp server.SpanView)
	check = func(parent *server.SpanView, sp server.SpanView) {
		phases[sp.Name] = true
		if sp.OffsetUS < 0 || sp.DurationUS < 0 {
			t.Errorf("span %q has negative offset/duration: %+v", sp.Name, sp)
		}
		if sp.OffsetUS+sp.DurationUS > view.DurationUS {
			t.Errorf("span %q [%d..%d]us escapes root [0..%d]us",
				sp.Name, sp.OffsetUS, sp.OffsetUS+sp.DurationUS, view.DurationUS)
		}
		if parent != nil {
			if sp.OffsetUS < parent.OffsetUS ||
				sp.OffsetUS+sp.DurationUS > parent.OffsetUS+parent.DurationUS {
				t.Errorf("span %q [%d..%d]us escapes parent %q [%d..%d]us",
					sp.Name, sp.OffsetUS, sp.OffsetUS+sp.DurationUS,
					parent.Name, parent.OffsetUS, parent.OffsetUS+parent.DurationUS)
			}
		}
		for _, ch := range sp.Spans {
			check(&sp, ch)
		}
	}
	for _, sp := range view.Spans {
		check(nil, sp)
	}
	for _, want := range []string{"queue", "prepare", "execute", "commit", "wal_flush"} {
		if !phases[want] {
			t.Errorf("trace has no %q span (saw %v)", want, phases)
		}
	}

	// The min_duration filter excludes the trace when set above its
	// duration and keeps it when set below.
	views, err := c.Traces("people", "", time.Duration(view.DurationUS)*time.Microsecond+time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 0 {
		t.Fatalf("min_duration filter returned %d traces, want 0", len(views))
	}
}

// TestJSONErrorBodies404And405: the mux's built-in text replies for
// unmatched routes are rewritten into the server's structured JSON error
// shape, carrying the request's trace ID.
func TestJSONErrorBodies404And405(t *testing.T) {
	reg := server.NewRegistry()
	ts := newRawTestServer(t, reg)

	for _, tc := range []struct {
		method, path string
		status       int
		code         string
	}{
		{http.MethodGet, "/no/such/endpoint", http.StatusNotFound, server.CodeNotFound},
		{http.MethodDelete, "/v1/datasets", http.StatusMethodNotAllowed, server.CodeMethodNotAllowed},
		{http.MethodPost, "/healthz", http.StatusMethodNotAllowed, server.CodeMethodNotAllowed},
	} {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Fatalf("%s %s: HTTP %d, want %d", tc.method, tc.path, resp.StatusCode, tc.status)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("%s %s: Content-Type %q, want application/json", tc.method, tc.path, ct)
		}
		var e server.ErrorResponse
		if err := json.Unmarshal(body, &e); err != nil {
			t.Fatalf("%s %s: body %q is not JSON: %v", tc.method, tc.path, body, err)
		}
		if e.Code != tc.code || e.Error == "" {
			t.Fatalf("%s %s: body %+v, want code %q", tc.method, tc.path, e, tc.code)
		}
		hdrID := resp.Header.Get("X-Request-Id")
		if hdrID == "" || e.TraceID != hdrID {
			t.Fatalf("%s %s: trace_id %q vs header %q, want matching non-empty",
				tc.method, tc.path, e.TraceID, hdrID)
		}
	}
}

// TestRequestIDSanitized: a hostile or malformed X-Request-ID is replaced
// with a server-minted one rather than echoed into headers and logs.
func TestRequestIDSanitized(t *testing.T) {
	reg := server.NewRegistry()
	ts := newRawTestServer(t, reg)

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	const bad = "evil id with spaces & <symbols> " + // and far over the 64-byte cap
		"xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"
	req.Header.Set("X-Request-ID", bad)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	got := resp.Header.Get("X-Request-Id")
	if got == "" || got == bad {
		t.Fatalf("X-Request-ID echoed %q for a malformed input", got)
	}
	if !regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`).MatchString(got) {
		t.Fatalf("server-minted request ID %q is not sanitized", got)
	}
}

// Test429BodyCarriesQueueDepth: a backpressure rejection's JSON body must
// carry, alongside the Retry-After header, the machine-readable backoff
// hint and the dataset's queue depth, plus the trace ID — so a client can
// judge congestion without parsing headers.
func Test429BodyCarriesQueueDepth(t *testing.T) {
	reg := server.NewRegistry()
	table, err := dataset.ReadCSV(strings.NewReader(peopleCSV(100000, 1)), peopleSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Add("people", table); err != nil {
		t.Fatal(err)
	}
	srv := server.New(reg, server.Config{
		Sched: sched.Config{QueueDepth: 1, MaxPerSession: 1, Workers: 1, RetryAfter: time.Second},
	})
	ts := newRawServer(t, srv)
	c := client.New(ts.URL)

	const analysts = 12
	sessions := make([]string, analysts)
	for i := range sessions {
		sess, err := c.CreateSession(server.CreateSessionRequest{Dataset: "people", Budget: 1000})
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = sess.ID
	}
	next := new(atomic.Int64)
	distinctQuery := func() string {
		n := next.Add(1)
		var preds []string
		for b := 0; b < 100; b += 5 {
			preds = append(preds, fmt.Sprintf("age BETWEEN %d AND %d", b, b+5))
		}
		preds = append(preds, fmt.Sprintf("age BETWEEN %d.25 AND %d.75", n%50, n%50+10))
		return "BIN D ON COUNT(*) WHERE W = { " + strings.Join(preds, ", ") + " } ERROR 40 CONFIDENCE 0.95;"
	}

	// Raw POSTs so the assertion runs on the wire body, not the client's
	// decoded view. A few bounded rounds absorb scheduling luck.
	var mu sync.Mutex
	var rejected []byte
	for round := 0; round < 20 && rejected == nil; round++ {
		var wg sync.WaitGroup
		for i := 0; i < analysts; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for j := 0; j < 2; j++ {
					body := fmt.Sprintf(`{"query":%q}`, distinctQuery())
					resp, err := http.Post(ts.URL+"/v1/sessions/"+sessions[i]+"/query",
						"application/json", strings.NewReader(body))
					if err != nil {
						t.Error(err)
						return
					}
					b, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode == http.StatusTooManyRequests {
						if resp.Header.Get("Retry-After") == "" {
							t.Error("429 without Retry-After header")
						}
						mu.Lock()
						if rejected == nil {
							rejected = b
						}
						mu.Unlock()
					}
				}
			}(i)
		}
		wg.Wait()
	}
	if rejected == nil {
		t.Fatal("queue depth 1 under 12 concurrent analysts never produced a 429")
	}

	// Field presence is checked on the raw JSON: queue_depth must be
	// reported even when the queue drained between rejection and reply.
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(rejected, &raw); err != nil {
		t.Fatalf("429 body %q is not JSON: %v", rejected, err)
	}
	for _, key := range []string{"error", "code", "trace_id", "queue_depth", "retry_after_seconds"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("429 body missing %q: %s", key, rejected)
		}
	}
	var e server.ErrorResponse
	if err := json.Unmarshal(rejected, &e); err != nil {
		t.Fatal(err)
	}
	if e.Code != server.CodeQueueFull || e.TraceID == "" {
		t.Fatalf("429 body = %s, want code %q with a trace ID", rejected, server.CodeQueueFull)
	}
	if e.QueueDepth == nil || *e.QueueDepth < 0 {
		t.Fatalf("429 body queue_depth = %v, want reported nonnegative depth", e.QueueDepth)
	}
	if e.RetryAfterSeconds < 1 {
		t.Fatalf("429 body retry_after_seconds = %d, want >= 1", e.RetryAfterSeconds)
	}
}

// TestTracesDisabled: with tracing off, the debug endpoint says so, but
// trace-ID assignment (and its echo) stays on.
func TestTracesDisabled(t *testing.T) {
	reg := server.NewRegistry()
	srv := server.New(reg, server.Config{Trace: server.TraceConfig{Disable: true}})
	ts := newRawServer(t, srv)

	resp, err := http.Get(ts.URL + "/v1/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("HTTP %d, want 404 when tracing is disabled", resp.StatusCode)
	}
	var e server.ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.TraceID == "" {
		t.Fatalf("disabled-tracing body %q: want JSON error with trace ID (err %v)", body, err)
	}
	if resp.Header.Get("X-Request-Id") == "" {
		t.Fatal("X-Request-ID assignment must survive -disable-tracing")
	}
}
