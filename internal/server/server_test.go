package server_test

import (
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/server"
	"repro/internal/server/client"
)

const epsTol = 1e-9

// peopleCSV builds a small CSV over (age continuous 0-100, state in {CA,NY,TX}).
func peopleCSV(n int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	states := []string{"CA", "NY", "TX"}
	var b strings.Builder
	b.WriteString("age,state\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%d,%s\n", rng.Intn(100), states[rng.Intn(len(states))])
	}
	return b.String()
}

func peopleSchema(t *testing.T) *dataset.Schema {
	t.Helper()
	s, err := dataset.NewSchema(
		dataset.Attribute{Name: "age", Kind: dataset.Continuous, Min: 0, Max: 100},
		dataset.Attribute{Name: "state", Kind: dataset.Categorical, Values: []string{"CA", "NY", "TX"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// newTestServer starts an httptest server hosting two datasets ("people"
// and "people2") and returns a client against it.
func newTestServer(t *testing.T, cfg server.Config) *client.Client {
	t.Helper()
	reg := server.NewRegistry()
	schema := peopleSchema(t)
	for i, name := range []string{"people", "people2"} {
		table, err := dataset.ReadCSV(strings.NewReader(peopleCSV(200, int64(i+1))), schema)
		if err != nil {
			t.Fatal(err)
		}
		if err := reg.Add(name, table); err != nil {
			t.Fatal(err)
		}
	}
	srv := server.New(reg, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = srv.Shutdown()
	})
	return client.New(ts.URL)
}

const (
	easyQuery = "BIN D ON COUNT(*) WHERE W = { age BETWEEN 0 AND 50, age BETWEEN 50 AND 100 } ERROR 100 CONFIDENCE 0.95;"
	// hardQuery has a tight error bound, so each answer costs a sizable
	// epsilon and a small budget exhausts in a handful of queries.
	hardQuery = "BIN D ON COUNT(*) WHERE W = { age BETWEEN 0 AND 50, age BETWEEN 50 AND 100 } ERROR 5 CONFIDENCE 0.95;"
)

func TestDatasetEndpoints(t *testing.T) {
	c := newTestServer(t, server.Config{})

	infos, err := c.Datasets()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 || infos[0].Name != "people" || infos[1].Name != "people2" {
		t.Fatalf("datasets = %+v", infos)
	}
	if infos[0].Rows != 200 {
		t.Fatalf("rows = %d", infos[0].Rows)
	}

	// Single dataset carries the public schema.
	info, err := c.Dataset("people")
	if err != nil {
		t.Fatal(err)
	}
	if info.Schema == nil || info.Schema.Arity() != 2 {
		t.Fatalf("schema = %+v", info.Schema)
	}
	if _, ok := info.Schema.AttrByName("state"); !ok {
		t.Fatal("schema lost the state attribute over the wire")
	}

	if _, err := c.Dataset("nope"); !isAPIError(err, 404, server.CodeNotFound) {
		t.Fatalf("unknown dataset: %v", err)
	}

	// Owner registration endpoint.
	added, err := c.AddDataset(server.AddDatasetRequest{
		Name:   "extra",
		Schema: peopleSchema(t),
		CSV:    peopleCSV(50, 99),
	})
	if err != nil {
		t.Fatal(err)
	}
	if added.Rows != 50 {
		t.Fatalf("added rows = %d", added.Rows)
	}
	// Duplicate names conflict.
	_, err = c.AddDataset(server.AddDatasetRequest{Name: "extra", Schema: peopleSchema(t), CSV: "age,state\n"})
	if !isAPIError(err, 409, server.CodeConflict) {
		t.Fatalf("duplicate dataset: %v", err)
	}
	// Names must be URL-path safe so the /v1/datasets/{name} route works.
	_, err = c.AddDataset(server.AddDatasetRequest{Name: "a/b", Schema: peopleSchema(t), CSV: "age,state\n"})
	if !isAPIError(err, 400, server.CodeBadRequest) {
		t.Fatalf("slash in dataset name: %v", err)
	}
	// Sessions can open against the freshly registered dataset.
	if _, err := c.CreateSession(server.CreateSessionRequest{Dataset: "extra", Budget: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestSessionLifecycle(t *testing.T) {
	c := newTestServer(t, server.Config{AllowSeeds: true})

	// Bad requests first.
	if _, err := c.CreateSession(server.CreateSessionRequest{Dataset: "nope", Budget: 1}); !isAPIError(err, 404, server.CodeNotFound) {
		t.Fatalf("unknown dataset: %v", err)
	}
	if _, err := c.CreateSession(server.CreateSessionRequest{Dataset: "people", Budget: 1, Mode: "wild"}); !isAPIError(err, 400, server.CodeBadRequest) {
		t.Fatalf("bad mode: %v", err)
	}
	if _, err := c.CreateSession(server.CreateSessionRequest{Dataset: "people", Budget: -1}); !isAPIError(err, 400, server.CodeBadRequest) {
		t.Fatalf("bad budget: %v", err)
	}

	sess, err := c.CreateSession(server.CreateSessionRequest{
		Dataset: "people", Budget: 1.0, Mode: "optimistic", Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sess.ID == "" || sess.Budget != 1.0 || sess.Remaining != 1.0 || sess.Mode != "optimistic" {
		t.Fatalf("session = %+v", sess)
	}

	// Parse errors surface as structured 4xx, not engine errors.
	if _, err := c.Query(sess.ID, "BIN D ON"); !isAPIError(err, 400, server.CodeParseError) {
		t.Fatalf("parse error: %v", err)
	}
	if _, err := c.Query(sess.ID, ""); !isAPIError(err, 400, server.CodeParseError) {
		t.Fatalf("empty query: %v", err)
	}
	// Unknown attributes are the analyst's fault too.
	if _, err := c.Query(sess.ID, "BIN D ON COUNT(*) WHERE W = { zzz BETWEEN 0 AND 1 } ERROR 100 CONFIDENCE 0.95;"); !isAPIError(err, 400, server.CodeBadRequest) {
		t.Fatalf("unknown attribute: %v", err)
	}

	// An answered query charges budget and echoes counts per predicate.
	ans, err := c.Query(sess.ID, easyQuery)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Denied {
		t.Fatalf("easy query denied: %+v", ans)
	}
	if len(ans.Counts) != 2 || len(ans.Predicates) != 2 {
		t.Fatalf("answer shape: %+v", ans)
	}
	if ans.Epsilon <= 0 || ans.Epsilon > ans.EpsilonUpper+epsTol {
		t.Fatalf("epsilon %v outside (0, %v]", ans.Epsilon, ans.EpsilonUpper)
	}
	if ans.Spent != ans.Epsilon || ans.Remaining != 1.0-ans.Epsilon {
		t.Fatalf("budget math: %+v", ans)
	}

	// Session state reflects the charge; failed parses never hit the engine.
	got, err := c.Session(sess.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Queries counts transcript entries; parse and validation failures
	// never reach the engine, so only the answered query is logged.
	if got.Spent != ans.Epsilon || got.Queries != 1 {
		t.Fatalf("session after query = %+v", got)
	}

	// Transcript: one answered entry, valid under Definition 6.1.
	tr, err := c.Transcript(sess.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Valid || tr.Invalid != "" {
		t.Fatalf("transcript invalid: %+v", tr)
	}
	if len(tr.Entries) != 1 || tr.Entries[0].Denied || tr.Entries[0].Mechanism == "" {
		t.Fatalf("entries = %+v", tr.Entries)
	}
	if !strings.Contains(tr.Entries[0].Query, "BIN D ON COUNT(*)") {
		t.Fatalf("query not rendered: %q", tr.Entries[0].Query)
	}
	checkDefinition61(t, tr)

	// Close and verify it is gone.
	if err := c.CloseSession(sess.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Session(sess.ID); !isAPIError(err, 404, server.CodeNotFound) {
		t.Fatalf("closed session: %v", err)
	}
	if err := c.CloseSession(sess.ID); !isAPIError(err, 404, server.CodeNotFound) {
		t.Fatalf("double close: %v", err)
	}
}

func TestBudgetCapAndSessionLimit(t *testing.T) {
	c := newTestServer(t, server.Config{MaxBudget: 0.5, MaxSessions: 2})

	if _, err := c.CreateSession(server.CreateSessionRequest{Dataset: "people", Budget: 1.0}); !isAPIError(err, 403, server.CodePolicyDenied) {
		t.Fatalf("over-cap budget: %v", err)
	}
	// Fixed seeds are an owner policy, off by default.
	if _, err := c.CreateSession(server.CreateSessionRequest{Dataset: "people", Budget: 0.5, Seed: 7}); !isAPIError(err, 403, server.CodePolicyDenied) {
		t.Fatalf("seed without AllowSeeds: %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, err := c.CreateSession(server.CreateSessionRequest{Dataset: "people", Budget: 0.5}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.CreateSession(server.CreateSessionRequest{Dataset: "people", Budget: 0.5}); !isAPIError(err, 403, server.CodePolicyDenied) {
		t.Fatalf("session limit: %v", err)
	}
	live, err := c.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(live) != 2 {
		t.Fatalf("live sessions = %d", len(live))
	}
}

func TestDenialReportsReasonAndChargesNothing(t *testing.T) {
	c := newTestServer(t, server.Config{})
	sess, err := c.CreateSession(server.CreateSessionRequest{Dataset: "people", Budget: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	ans, err := c.Query(sess.ID, hardQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Denied || ans.Reason == "" {
		t.Fatalf("want denial with reason, got %+v", ans)
	}
	if ans.Spent != 0 || ans.Remaining != 0.01 {
		t.Fatalf("denial charged budget: %+v", ans)
	}
	tr, err := c.Transcript(sess.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Entries) != 1 || !tr.Entries[0].Denied || tr.Entries[0].Epsilon != 0 {
		t.Fatalf("denied entry = %+v", tr.Entries)
	}
	if !tr.Valid {
		t.Fatalf("transcript invalid: %+v", tr)
	}
	checkDefinition61(t, tr)
}

// TestConcurrentSessionsBudgetIsolation is the acceptance test: many
// parallel sessions across two datasets each drive their own budget to
// exhaustion; every transcript must independently satisfy the Definition
// 6.1 invariant, and no session's spending can leak into another's.
func TestConcurrentSessionsBudgetIsolation(t *testing.T) {
	c := newTestServer(t, server.Config{AllowSeeds: true})

	type result struct {
		id       string
		answered int
		denied   int
		err      error
	}
	const perDataset = 3
	var wg sync.WaitGroup
	results := make([]result, 2*perDataset)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ds := "people"
			if i%2 == 1 {
				ds = "people2"
			}
			sess, err := c.CreateSession(server.CreateSessionRequest{
				Dataset: ds, Budget: 1.0, Seed: int64(i + 1),
			})
			if err != nil {
				results[i] = result{err: err}
				return
			}
			r := result{id: sess.ID}
			for q := 0; q < 50 && r.denied == 0; q++ {
				ans, err := c.Query(sess.ID, hardQuery)
				if err != nil {
					r.err = err
					break
				}
				if ans.Denied {
					r.denied++
				} else {
					r.answered++
				}
			}
			results[i] = r
		}(i)
	}
	wg.Wait()

	for i, r := range results {
		if r.err != nil {
			t.Fatalf("session %d: %v", i, r.err)
		}
		if r.answered == 0 {
			t.Errorf("session %d: no query answered before exhaustion", i)
		}
		if r.denied == 0 {
			t.Errorf("session %d: budget never exhausted (answered %d)", i, r.answered)
		}

		tr, err := c.Transcript(r.id)
		if err != nil {
			t.Fatalf("session %d transcript: %v", i, err)
		}
		if !tr.Valid {
			t.Errorf("session %d: server reports invalid transcript: %s", i, tr.Invalid)
		}
		// Independent re-check of Definition 6.1 from the wire data alone.
		checkDefinition61(t, tr)
		if tr.Budget != 1.0 {
			t.Errorf("session %d: budget %v leaked", i, tr.Budget)
		}
		if got := len(tr.Entries); got != r.answered+r.denied {
			t.Errorf("session %d: %d entries for %d interactions — cross-session leakage?", i, got, r.answered+r.denied)
		}
	}

	// Isolation also means each session spent from its own budget only:
	// every per-session spend is within [0, B], while the total across
	// sessions far exceeds any single B.
	var total float64
	for _, r := range results {
		tr, err := c.Transcript(r.id)
		if err != nil {
			t.Fatal(err)
		}
		total += tr.Spent
	}
	if total <= 1.0 {
		t.Errorf("total spend %v implies sessions shared one budget", total)
	}
}

// TestSharedEvaluationCacheAcrossSessions drives many concurrent sessions
// through the SAME workload over one dataset. The registry's per-dataset
// evaluation cache must collapse the work to a single transformation
// (observable via TransformCache.Len) while every session still gets its
// own independently noised answer — cached noise-free counts must never
// surface identically to two analysts.
func TestSharedEvaluationCacheAcrossSessions(t *testing.T) {
	reg := server.NewRegistry()
	table, err := dataset.ReadCSV(strings.NewReader(peopleCSV(500, 3)), peopleSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Add("people", table); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(reg, server.Config{}).Handler())
	t.Cleanup(ts.Close)
	c := client.New(ts.URL)

	const sessions = 8
	counts := make([][]float64, sessions)
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess, err := c.CreateSession(server.CreateSessionRequest{Dataset: "people", Budget: 5})
			if err != nil {
				errs[i] = err
				return
			}
			ans, err := c.Query(sess.ID, easyQuery)
			if err != nil {
				errs[i] = err
				return
			}
			if ans.Denied {
				errs[i] = fmt.Errorf("query denied: %s", ans.Reason)
				return
			}
			counts[i] = ans.Counts
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}

	ds, ok := reg.Dataset("people")
	if !ok {
		t.Fatal("dataset vanished")
	}
	if got := ds.Transforms.Len(); got != 1 {
		t.Fatalf("shared cache holds %d workloads, want 1 (sessions did not share)", got)
	}

	// Per-session noise: with crypto-random session seeds the odds of two
	// sessions drawing identical Laplace noise are negligible; identical
	// counts across all sessions would mean the cached noise-free values
	// leaked through.
	distinct := false
	for i := 1; i < sessions && !distinct; i++ {
		for j := range counts[i] {
			if counts[i][j] != counts[0][j] {
				distinct = true
				break
			}
		}
	}
	if !distinct {
		t.Fatalf("all %d sessions returned identical counts %v — noise is not per-session", sessions, counts[0])
	}

	// The answers still agree with the data up to the requested accuracy:
	// ERROR 100 at confidence 0.95 over 500 rows. The bound is 3x the
	// requested error so the 0.05 noise tail across 20 independent draws
	// (10 sessions x 2 counts) stays a <0.1% flake, not a ~5% one.
	trueCounts := []float64{
		float64(table.Count(dataset.Range{Attr: "age", Lo: 0, Hi: 50})),
		float64(table.Count(dataset.Range{Attr: "age", Lo: 50, Hi: 100})),
	}
	for i := range counts {
		for j := range counts[i] {
			if diff := counts[i][j] - trueCounts[j]; diff > 300 || diff < -300 {
				t.Errorf("session %d count %d: noisy %v vs true %v implausibly far", i, j, counts[i][j], trueCounts[j])
			}
		}
	}
}

// checkDefinition61 re-verifies the transcript validity invariant
// (Definition 6.1) from the JSON wire form, independently of the server's
// own Valid flag: actual losses are nonnegative and sum to at most B,
// denied entries charge nothing, and every answered entry's reserved
// worst case fit the budget remaining at the time it was asked.
func checkDefinition61(t *testing.T, tr *server.TranscriptResponse) {
	t.Helper()
	var spent float64
	for _, e := range tr.Entries {
		if e.Epsilon < 0 {
			t.Fatalf("entry %d: negative epsilon %v", e.Index, e.Epsilon)
		}
		if e.Denied {
			if e.Epsilon != 0 {
				t.Fatalf("entry %d: denied but charged %v", e.Index, e.Epsilon)
			}
			continue
		}
		if e.EpsilonUpper+epsTol < e.Epsilon {
			t.Fatalf("entry %d: actual %v above reserved worst case %v", e.Index, e.Epsilon, e.EpsilonUpper)
		}
		if spent+e.EpsilonUpper > tr.Budget+epsTol {
			t.Fatalf("entry %d: worst case %v did not fit remaining %v", e.Index, e.EpsilonUpper, tr.Budget-spent)
		}
		spent += e.Epsilon
	}
	if spent > tr.Budget+epsTol {
		t.Fatalf("cumulative loss %v exceeds budget %v", spent, tr.Budget)
	}
	if diff := spent - tr.Spent; diff > epsTol || diff < -epsTol {
		t.Fatalf("recomputed spend %v != reported %v", spent, tr.Spent)
	}
}

func isAPIError(err error, status int, code string) bool {
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		return false
	}
	return apiErr.StatusCode == status && apiErr.Code == code
}
