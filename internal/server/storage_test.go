package server_test

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/store"
)

func storageSchema(t *testing.T) *dataset.Schema {
	t.Helper()
	return dataset.MustSchema(
		dataset.Attribute{Name: "age", Kind: dataset.Continuous, Min: 0, Max: 100},
		dataset.Attribute{Name: "state", Kind: dataset.Categorical, Values: []string{"CA", "NY", "TX"}},
	)
}

func storageCSV(rows int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	var sb strings.Builder
	sb.WriteString("age,state\n")
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&sb, "%d,%s\n", rng.Intn(100), []string{"CA", "NY", "TX"}[rng.Intn(3)])
	}
	return []byte(sb.String())
}

func durableRegistry(t *testing.T, dir string, policy server.StoragePolicy) *server.Registry {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := server.NewRegistry()
	reg.AttachStore(st)
	reg.SetStorage(policy)
	return reg
}

func TestStoragePolicyThreshold(t *testing.T) {
	dir := t.TempDir()
	// Threshold of 2 KiB against v2 compressed payloads: "small"
	// (100 rows, a few hundred bytes packed) stays heap, "large"
	// (5000 rows ≈ 7 KiB packed) maps.
	reg := durableRegistry(t, dir, server.StoragePolicy{MmapThreshold: 2 << 10})
	if _, err := reg.AddCSV("small", storageSchema(t), storageCSV(100, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.AddCSV("large", storageSchema(t), storageCSV(5000, 2)); err != nil {
		t.Fatal(err)
	}
	small, _ := reg.Dataset("small")
	large, _ := reg.Dataset("large")
	if small.Mode != server.StorageHeap || small.Segment != nil {
		t.Fatalf("small: mode=%v segment=%v", small.Mode, small.Segment)
	}
	if large.Mode != server.StorageMmap || large.Segment == nil {
		t.Fatalf("large: mode=%v segment=%v", large.Mode, large.Segment)
	}
	// Both serve identical answers regardless of home.
	p := dataset.Range{Attr: "age", Lo: 0, Hi: 50}
	if small.Table.Count(p) < 0 || large.Table.Count(p) < 0 {
		t.Fatal("counts unavailable")
	}
	stats := reg.StorageStats()
	if len(stats) != 2 {
		t.Fatalf("stats: %+v", stats)
	}
	for _, s := range stats {
		if s.Name == "large" {
			if s.MappedBytes <= 0 {
				t.Fatalf("large not mapped: %+v", s)
			}
		} else if s.MappedBytes != 0 {
			t.Fatalf("small mapped: %+v", s)
		}
	}
}

func TestRecoveryUsesSegmentNotCSV(t *testing.T) {
	dir := t.TempDir()
	reg := durableRegistry(t, dir, server.StoragePolicy{MmapThreshold: 0}) // always mmap
	table, err := reg.AddCSV("people", storageSchema(t), storageCSV(2000, 3))
	if err != nil {
		t.Fatal(err)
	}
	wantRows := table.Size()

	// Second life: the catalog has a segment, so recovery must not read
	// the CSV at all — prove it by deleting the CSV first.
	csvPath := filepath.Join(dir, "catalog", "people", store.CSVFile)
	if err := os.Remove(csvPath); err != nil {
		t.Fatal(err)
	}
	reg2 := durableRegistry(t, dir, server.StoragePolicy{MmapThreshold: 0, ColdStart: true})
	recovered, skipped, err := reg2.RecoverDatasets()
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Fatalf("skipped: %v", skipped)
	}
	if len(recovered) != 1 || recovered[0].Source != "segment" || recovered[0].Mode != server.StorageMmap {
		t.Fatalf("recovered: %+v", recovered)
	}
	got, _ := reg2.Get("people")
	if got.Size() != wantRows {
		t.Fatalf("rows: want %d, got %d", wantRows, got.Size())
	}
	if c := reg2.Counters(); c.CSVFallbacks != 0 || c.SegmentOpens == 0 {
		t.Fatalf("counters: %+v", c)
	}
}

func TestCorruptSegmentQuarantineAndCSVFallback(t *testing.T) {
	dir := t.TempDir()
	reg := durableRegistry(t, dir, server.StoragePolicy{MmapThreshold: 0})
	if _, err := reg.AddCSV("people", storageSchema(t), storageCSV(1000, 4)); err != nil {
		t.Fatal(err)
	}
	segPath := filepath.Join(dir, "catalog", "people", store.SegmentFile)
	// Flip a byte in the middle of the file (a data page).
	f, err := os.OpenFile(segPath, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := f.Stat()
	var b [1]byte
	off := st.Size() / 2
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Recovery: quarantine + CSV fallback + heal.
	reg2 := durableRegistry(t, dir, server.StoragePolicy{MmapThreshold: 0})
	recovered, skipped, err := reg2.RecoverDatasets()
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Fatalf("skipped: %v", skipped)
	}
	if len(recovered) != 1 || !strings.HasPrefix(recovered[0].Source, "csv (") {
		t.Fatalf("recovered: %+v", recovered)
	}
	if !strings.Contains(recovered[0].Source, "segment rebuilt") {
		t.Fatalf("segment not healed: %+v", recovered)
	}
	if _, err := os.Stat(segPath + store.QuarantineSuffix); err != nil {
		t.Fatalf("corrupt segment not quarantined: %v", err)
	}
	if _, err := os.Stat(segPath); err != nil {
		t.Fatalf("rebuilt segment missing: %v", err)
	}
	c := reg2.Counters()
	if c.SegmentQuarantines != 1 || c.CSVFallbacks != 1 || c.SegmentOpenFails != 1 {
		t.Fatalf("counters: %+v", c)
	}
	// The healed dataset is served per policy (mmap) from the rebuilt
	// segment.
	ds, _ := reg2.Dataset("people")
	if ds.Mode != server.StorageMmap {
		t.Fatalf("mode after heal: %v", ds.Mode)
	}

	// Third life: the rebuilt segment recovers cleanly, segment-only.
	reg3 := durableRegistry(t, dir, server.StoragePolicy{MmapThreshold: 0, ColdStart: true})
	recovered, skipped, err = reg3.RecoverDatasets()
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 || len(recovered) != 1 || recovered[0].Source != "segment" {
		t.Fatalf("third life: recovered=%+v skipped=%v", recovered, skipped)
	}
}

func TestColdStartRefusesCSVOnlyEntry(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// An old-format catalog entry: schema + CSV, no segment.
	if err := st.SaveDataset("legacy", storageSchema(t), storageCSV(100, 5)); err != nil {
		t.Fatal(err)
	}

	cold := durableRegistry(t, dir, server.StoragePolicy{ColdStart: true})
	recovered, skipped, err := cold.RecoverDatasets()
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 0 || len(skipped) != 1 || !strings.Contains(skipped[0], "cold-start") {
		t.Fatalf("cold start served a CSV-only entry: recovered=%+v skipped=%v", recovered, skipped)
	}

	// A warm start takes the fallback and upgrades the entry in place...
	warm := durableRegistry(t, dir, server.StoragePolicy{})
	recovered, skipped, err = warm.RecoverDatasets()
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 || len(recovered) != 1 || !strings.Contains(recovered[0].Source, "segment rebuilt") {
		t.Fatalf("warm start did not upgrade: recovered=%+v skipped=%v", recovered, skipped)
	}
	// ...after which cold starts succeed.
	cold2 := durableRegistry(t, dir, server.StoragePolicy{ColdStart: true})
	recovered, skipped, err = cold2.RecoverDatasets()
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 || len(recovered) != 1 || recovered[0].Source != "segment" {
		t.Fatalf("cold start after upgrade: recovered=%+v skipped=%v", recovered, skipped)
	}
}

// TestMmapDatasetServesSessions drives the full HTTP path over an
// mmap-backed dataset — the same e2e surface the heap tests use.
func TestMmapDatasetServesSessions(t *testing.T) {
	dir := t.TempDir()
	reg := durableRegistry(t, dir, server.StoragePolicy{MmapThreshold: 0})
	if _, err := reg.AddCSV("people", storageSchema(t), storageCSV(5000, 6)); err != nil {
		t.Fatal(err)
	}
	ds, _ := reg.Dataset("people")
	if ds.Mode != server.StorageMmap {
		t.Fatalf("mode: %v", ds.Mode)
	}
	srv := server.New(reg, server.Config{AllowSeeds: true})
	defer srv.Shutdown()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL)
	sess, err := c.CreateSession(server.CreateSessionRequest{Dataset: "people", Budget: 1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	ans, err := c.Query(sess.ID,
		"BIN D ON COUNT(*) WHERE W = { age BETWEEN 0 AND 50, age BETWEEN 50 AND 100 } ERROR 100 CONFIDENCE 0.95;")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Denied || len(ans.Counts) != 2 {
		t.Fatalf("answer: %+v", ans)
	}
	tr, err := c.Transcript(sess.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Valid || len(tr.Entries) != 1 {
		t.Fatalf("transcript: %+v", tr)
	}
}
