package server

// The health plane: liveness (GET /v1/healthz), readiness with
// machine-readable degraded-state JSON (GET /v1/readyz), and the
// budget-observability layer — per-dataset/per-session ε-remaining
// gauges, windowed burn rate and time-to-exhaustion on /metrics and
// GET /v1/datasets/{name}/budget. Together with the background scrubber
// these turn the durability and accounting claims of the lower layers
// into continuously machine-checked ones.

import (
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Health check statuses.
const (
	HealthOK       = "ok"
	HealthDegraded = "degraded"
	HealthDisabled = "disabled" // the subsystem is not configured on this server
)

// LivenessResponse is the GET /v1/healthz body: is the process up and
// able to answer at all. It never degrades short of the process dying —
// orchestrators use it to decide restarts, readyz to decide routing.
type LivenessResponse struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Datasets      int     `json:"datasets"`
	Sessions      int     `json:"sessions"`
}

// HealthCheck is one readiness dimension.
type HealthCheck struct {
	Name   string `json:"name"`
	Status string `json:"status"` // ok | degraded | disabled
	Detail string `json:"detail,omitempty"`
}

// HealthResponse is the GET /v1/readyz body, returned with 200 when
// every check passes and 503 (same JSON shape) when any check degrades,
// so load balancers can act on the status code and operators on the
// structured detail.
type HealthResponse struct {
	Status string        `json:"status"` // ok | degraded
	Checks []HealthCheck `json:"checks"`
}

// BudgetSessionReport is one session's slice of a dataset budget report.
type BudgetSessionReport struct {
	ID        string  `json:"id"`
	Budget    float64 `json:"budget"`
	Spent     float64 `json:"spent"`
	Remaining float64 `json:"remaining"`
	Queries   int     `json:"queries"`
}

// BudgetResponse is the GET /v1/datasets/{name}/budget body: the
// dataset's aggregate ε position across its live sessions, the windowed
// burn rate, and the time-to-exhaustion estimate (absent when the burn
// rate is ~0 — an idle dataset never exhausts).
type BudgetResponse struct {
	Dataset            string                `json:"dataset"`
	Sessions           int                   `json:"sessions"`
	Budget             float64               `json:"budget"`
	Spent              float64               `json:"spent"`
	Remaining          float64               `json:"remaining"`
	BurnRatePerSecond  float64               `json:"burn_rate_epsilon_per_second"`
	WindowSeconds      float64               `json:"window_seconds"`
	ExhaustedInSeconds *float64              `json:"exhausted_in_seconds,omitempty"`
	PerSession         []BudgetSessionReport `json:"per_session"`
}

// budgetWindow is the burn-rate observation window.
const budgetWindow = 5 * time.Minute

// budgetSample is one (time, cumulative spent) observation for a dataset.
type budgetSample struct {
	at    time.Time
	spent float64
}

// budgetTracker keeps a pruned ring of spend samples per dataset and
// derives the windowed burn rate from the oldest and newest. Samples
// land whenever someone looks — a /metrics scrape, a budget report, a
// scrub cycle — so the window is as fine-grained as the observation
// pressure, which is exactly who cares about the answer.
type budgetTracker struct {
	mu     sync.Mutex
	window time.Duration
	series map[string][]budgetSample
}

func newBudgetTracker(window time.Duration) *budgetTracker {
	return &budgetTracker{window: window, series: make(map[string][]budgetSample)}
}

// observe records one cumulative-spend sample and returns the burn rate
// over the retained window plus the window actually covered. The rate is
// clamped at 0: total spend can step down when a session closes and its
// charge leaves the live sum, which is bookkeeping, not negative burn.
func (t *budgetTracker) observe(dataset string, spent float64, now time.Time) (rate, window float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := append(t.series[dataset], budgetSample{at: now, spent: spent})
	cut := 0
	for cut < len(s)-1 && now.Sub(s[cut].at) > t.window {
		cut++
	}
	s = s[cut:]
	t.series[dataset] = s
	first, last := s[0], s[len(s)-1]
	dt := last.at.Sub(first.at).Seconds()
	if dt <= 0 {
		return 0, 0
	}
	r := (last.spent - first.spent) / dt
	if r < 0 {
		r = 0
	}
	return r, dt
}

// MarkReady flips the server ready: recovery (catalog + session replay)
// has finished and readyz may pass. Non-durable servers are born ready.
func (s *Server) MarkReady() { s.ready.Store(true) }

// Ready reports whether startup recovery has completed.
func (s *Server) Ready() bool { return s.ready.Load() }

func (s *Server) handleLiveness(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, LivenessResponse{
		Status:        HealthOK,
		UptimeSeconds: time.Since(s.started).Seconds(),
		Datasets:      len(s.registry.Names()),
		Sessions:      len(s.sessions.List()),
	})
}

// queueSaturationFraction is the occupancy at which a dataset queue
// flips the readiness "queue" check: at 90% of capacity the next burst
// will be rejected with 429s, so routing new traffic here is a mistake.
const queueSaturationFraction = 0.9

// walProbePeriod bounds how often readyz actually fsyncs the data
// volume; within a period the cached verdict serves. walProbeSlow is the
// latency at which a responsive-but-slow volume degrades readiness.
const (
	walProbePeriod = time.Second
	walProbeSlow   = 2 * time.Second
)

// checkRecovery: has startup recovery finished.
func (s *Server) checkRecovery() HealthCheck {
	if !s.Ready() {
		return HealthCheck{Name: "recovery", Status: HealthDegraded, Detail: "startup recovery has not completed"}
	}
	return HealthCheck{Name: "recovery", Status: HealthOK}
}

// checkWALFlusher: is the data volume still accepting durable writes.
func (s *Server) checkWALFlusher() HealthCheck {
	if s.st == nil {
		return HealthCheck{Name: "wal_flusher", Status: HealthDisabled, Detail: "server runs without a store"}
	}
	s.probeMu.Lock()
	if time.Since(s.probeAt) >= walProbePeriod {
		s.probeDur, s.probeErr = s.st.ProbeSync()
		s.probeAt = time.Now()
	}
	dur, err := s.probeDur, s.probeErr
	s.probeMu.Unlock()
	switch {
	case err != nil:
		return HealthCheck{Name: "wal_flusher", Status: HealthDegraded, Detail: err.Error()}
	case dur > walProbeSlow:
		return HealthCheck{Name: "wal_flusher", Status: HealthDegraded,
			Detail: fmt.Sprintf("fsync probe took %s (threshold %s)", dur, walProbeSlow)}
	default:
		return HealthCheck{Name: "wal_flusher", Status: HealthOK,
			Detail: fmt.Sprintf("fsync probe %s", dur)}
	}
}

// checkQueues: is any dataset queue near its backpressure ceiling.
func (s *Server) checkQueues() HealthCheck {
	capacity := s.sched.Capacity()
	if capacity <= 0 {
		return HealthCheck{Name: "queue", Status: HealthOK}
	}
	for _, name := range s.registry.Names() {
		depth := s.sched.QueueDepth(name)
		if float64(depth) >= queueSaturationFraction*float64(capacity) {
			return HealthCheck{Name: "queue", Status: HealthDegraded,
				Detail: fmt.Sprintf("dataset %q queue at %d/%d", name, depth, capacity)}
		}
	}
	return HealthCheck{Name: "queue", Status: HealthOK}
}

// checkScrub: did the last verification cycle come back clean.
func (s *Server) checkScrub() HealthCheck {
	sc := s.scrubber
	if sc == nil {
		return HealthCheck{Name: "scrub", Status: HealthDisabled, Detail: "verification plane not constructed"}
	}
	last, ran := sc.LastCycle()
	if !ran {
		if !sc.Running() {
			return HealthCheck{Name: "scrub", Status: HealthDisabled, Detail: "background scrubbing off (-scrub-interval 0)"}
		}
		return HealthCheck{Name: "scrub", Status: HealthOK, Detail: "no cycle completed yet"}
	}
	if !last.Clean() {
		return HealthCheck{Name: "scrub", Status: HealthDegraded,
			Detail: fmt.Sprintf("last cycle found %d violation(s); see apex_invariant_violations_total and the incident log", len(last.Violations))}
	}
	return HealthCheck{Name: "scrub", Status: HealthOK,
		Detail: fmt.Sprintf("last cycle clean: %d checks, %d bytes verified", last.Checks, last.BytesRead)}
}

func (s *Server) healthChecks() HealthResponse {
	resp := HealthResponse{
		Status: HealthOK,
		Checks: []HealthCheck{s.checkRecovery(), s.checkWALFlusher(), s.checkQueues(), s.checkScrub()},
	}
	for _, c := range resp.Checks {
		if c.Status == HealthDegraded {
			resp.Status = HealthDegraded
			break
		}
	}
	return resp
}

func (s *Server) handleReadiness(w http.ResponseWriter, r *http.Request) {
	resp := s.healthChecks()
	status := http.StatusOK
	if resp.Status != HealthOK {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

// datasetBudget aggregates one dataset's live-session ε position.
func (s *Server) datasetBudget(name string, now time.Time) BudgetResponse {
	sessions := s.sessions.ForDataset(name)
	resp := BudgetResponse{Dataset: name, Sessions: len(sessions), PerSession: make([]BudgetSessionReport, 0, len(sessions))}
	for _, sess := range sessions {
		eng := sess.Engine()
		spent := eng.Spent()
		resp.Budget += eng.Budget()
		resp.Spent += spent
		resp.PerSession = append(resp.PerSession, BudgetSessionReport{
			ID:        sess.ID,
			Budget:    eng.Budget(),
			Spent:     spent,
			Remaining: eng.Budget() - spent,
			Queries:   eng.TranscriptLen(),
		})
	}
	resp.Remaining = resp.Budget - resp.Spent
	resp.BurnRatePerSecond, resp.WindowSeconds = s.budget.observe(name, resp.Spent, now)
	if resp.BurnRatePerSecond > 0 && resp.Remaining > 0 {
		tte := resp.Remaining / resp.BurnRatePerSecond
		resp.ExhaustedInSeconds = &tte
	}
	return resp
}

func (s *Server) handleBudget(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if _, ok := s.registry.Dataset(name); !ok {
		writeError(w, r, http.StatusNotFound, CodeNotFound, fmt.Sprintf("unknown dataset %q", name))
		return
	}
	writeJSON(w, http.StatusOK, s.datasetBudget(name, time.Now()))
}

// registerHealthMetrics wires the budget-observability and readiness
// series: collected at scrape time (the OnScrape idiom — the truth lives
// in the engines and checks, and is only worth computing when someone
// looks).
func (s *Server) registerHealthMetrics(m *metrics.Registry) {
	ready := m.Gauge("apex_ready", "1 when the server passes every readiness check, 0 when degraded.")
	ready.Set(0)
	m.OnScrape(func() {
		if s.healthChecks().Status == HealthOK {
			ready.Set(1)
		} else {
			ready.Set(0)
		}
		now := time.Now()
		for _, name := range s.registry.Names() {
			b := s.datasetBudget(name, now)
			m.Gauge("apex_dataset_budget_remaining_epsilon",
				"Total ε remaining across the dataset's live sessions.",
				metrics.L("dataset", name)).Set(b.Remaining)
			m.Gauge("apex_dataset_budget_burn_epsilon_per_second",
				"Windowed ε burn rate across the dataset's live sessions.",
				metrics.L("dataset", name)).Set(b.BurnRatePerSecond)
			tte := -1.0 // sentinel: idle dataset, no exhaustion in sight
			if b.ExhaustedInSeconds != nil {
				tte = *b.ExhaustedInSeconds
			}
			m.Gauge("apex_dataset_budget_exhausted_seconds",
				"Estimated seconds until the dataset's live sessions exhaust their budgets at the current burn rate (-1 when idle).",
				metrics.L("dataset", name)).Set(tte)
			for _, ps := range b.PerSession {
				m.Gauge("apex_session_budget_remaining_epsilon",
					"ε remaining for one live session.",
					metrics.L("dataset", name), metrics.L("session", ps.ID)).Set(ps.Remaining)
			}
		}
	})
}
