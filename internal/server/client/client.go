// Package client is a small Go client for the apex-server HTTP API, used
// by the server tests and examples. It mirrors the wire types in
// internal/server one-for-one.
package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"

	"repro/internal/server"
)

// Client talks to one apex-server instance.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

// New returns a client for the server at baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: baseURL}
}

// APIError is a non-2xx reply, decoded from the server's error body.
type APIError struct {
	StatusCode int
	Code       string
	Message    string
}

// Error implements the error interface.
func (e *APIError) Error() string {
	return fmt.Sprintf("server: %s (%s, HTTP %d)", e.Message, e.Code, e.StatusCode)
}

// Datasets lists the registered datasets.
func (c *Client) Datasets() ([]server.DatasetInfo, error) {
	var out []server.DatasetInfo
	return out, c.do(http.MethodGet, "/v1/datasets", nil, &out)
}

// Dataset returns one dataset's row count and public schema.
func (c *Client) Dataset(name string) (*server.DatasetInfo, error) {
	var out server.DatasetInfo
	return &out, c.do(http.MethodGet, "/v1/datasets/"+url.PathEscape(name), nil, &out)
}

// AddDataset registers a dataset through the owner endpoint.
func (c *Client) AddDataset(req server.AddDatasetRequest) (*server.DatasetInfo, error) {
	var out server.DatasetInfo
	return &out, c.do(http.MethodPost, "/v1/datasets", req, &out)
}

// CreateSession opens an analyst session and returns its state.
func (c *Client) CreateSession(req server.CreateSessionRequest) (*server.SessionInfo, error) {
	var out server.SessionInfo
	return &out, c.do(http.MethodPost, "/v1/sessions", req, &out)
}

// Session returns a session's budget state.
func (c *Client) Session(id string) (*server.SessionInfo, error) {
	var out server.SessionInfo
	return &out, c.do(http.MethodGet, "/v1/sessions/"+url.PathEscape(id), nil, &out)
}

// Sessions lists live sessions.
func (c *Client) Sessions() ([]server.SessionInfo, error) {
	var out []server.SessionInfo
	return out, c.do(http.MethodGet, "/v1/sessions", nil, &out)
}

// CloseSession forgets a session on the server.
func (c *Client) CloseSession(id string) error {
	return c.do(http.MethodDelete, "/v1/sessions/"+url.PathEscape(id), nil, nil)
}

// Query submits one query in the paper's text syntax. A denial is not an
// error: check QueryResponse.Denied.
func (c *Client) Query(sessionID, queryText string) (*server.QueryResponse, error) {
	var out server.QueryResponse
	err := c.do(http.MethodPost, "/v1/sessions/"+url.PathEscape(sessionID)+"/query",
		server.QueryRequest{Query: queryText}, &out)
	return &out, err
}

// Transcript fetches the session's full audit transcript.
func (c *Client) Transcript(sessionID string) (*server.TranscriptResponse, error) {
	return c.TranscriptSince(sessionID, 0)
}

// TranscriptSince fetches the transcript entries with index >= since —
// the incremental form audit tailers poll with, copying only the delta.
// The response's validity verdict still covers the full transcript.
func (c *Client) TranscriptSince(sessionID string, since int) (*server.TranscriptResponse, error) {
	path := "/v1/sessions/" + url.PathEscape(sessionID) + "/transcript"
	if since > 0 {
		path += "?since=" + strconv.Itoa(since)
	}
	var out server.TranscriptResponse
	return &out, c.do(http.MethodGet, path, nil, &out)
}

func (c *Client) do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, body)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("client: read response: %w", err)
	}
	if resp.StatusCode/100 != 2 {
		var e server.ErrorResponse
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return &APIError{StatusCode: resp.StatusCode, Code: e.Code, Message: e.Error}
		}
		return &APIError{StatusCode: resp.StatusCode, Code: "unknown", Message: string(data)}
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("client: decode response: %w", err)
		}
	}
	return nil
}
