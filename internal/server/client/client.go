// Package client is a small Go client for the apex-server HTTP API, used
// by the server tests and examples. It mirrors the wire types in
// internal/server one-for-one.
package client

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/server"
)

// Client talks to one apex-server instance.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Retry, when set, retries queue-full (429) rejections with bounded
	// exponential backoff. Nil — the default — surfaces the 429
	// immediately; only opt in for callers that prefer latency over an
	// explicit backpressure signal. Only 429s are retried: they mean the
	// request was never admitted, so retrying can never double-ask.
	Retry *RetryPolicy
}

// RetryPolicy bounds the client-side backoff for 429 rejections.
type RetryPolicy struct {
	// MaxRetries is the number of re-attempts after the first try.
	MaxRetries int
	// BaseDelay is the first backoff, doubled per retry; 0 means 100ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff; 0 means 5s. The server's Retry-After
	// hint is honored when it is longer than the computed backoff.
	MaxDelay time.Duration
	// sleep is stubbed in tests; nil means time.Sleep.
	sleep func(time.Duration)
}

// New returns a client for the server at baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: baseURL}
}

// APIError is a non-2xx reply, decoded from the server's error body.
type APIError struct {
	StatusCode int
	Code       string
	Message    string
	// RetryAfter is the server's backoff hint on 429 replies (zero when
	// absent).
	RetryAfter time.Duration
	// TraceID is the failed request's trace ID (from the error body or
	// the X-Request-ID response header) — the value to quote to an
	// operator, who can grep the slow-query log or fetch
	// /v1/debug/traces with it. Under a RetryPolicy it identifies the
	// final failed attempt.
	TraceID string
	// QueueDepth is the dataset's queue depth reported on 429 replies
	// (zero when absent).
	QueueDepth int
}

// Error implements the error interface.
func (e *APIError) Error() string {
	if e.TraceID != "" {
		return fmt.Sprintf("server: %s (%s, HTTP %d, trace %s)", e.Message, e.Code, e.StatusCode, e.TraceID)
	}
	return fmt.Sprintf("server: %s (%s, HTTP %d)", e.Message, e.Code, e.StatusCode)
}

// IsBackpressure reports whether err is a queue-full rejection (HTTP 429)
// — the dataset's scheduler queue was at capacity and the request was
// never admitted. Distinct from a budget denial, which is an in-band
// QueryResponse with Denied set: backpressure is transient and retryable,
// a denial is a permanent analyzer verdict that consumed the transcript
// slot it was recorded in.
func IsBackpressure(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && (ae.StatusCode == http.StatusTooManyRequests || ae.Code == server.CodeQueueFull)
}

// Datasets lists the registered datasets.
func (c *Client) Datasets() ([]server.DatasetInfo, error) {
	var out []server.DatasetInfo
	return out, c.do(http.MethodGet, "/v1/datasets", nil, &out)
}

// Dataset returns one dataset's row count and public schema.
func (c *Client) Dataset(name string) (*server.DatasetInfo, error) {
	var out server.DatasetInfo
	return &out, c.do(http.MethodGet, "/v1/datasets/"+url.PathEscape(name), nil, &out)
}

// AddDataset registers a dataset through the owner endpoint.
func (c *Client) AddDataset(req server.AddDatasetRequest) (*server.DatasetInfo, error) {
	var out server.DatasetInfo
	return &out, c.do(http.MethodPost, "/v1/datasets", req, &out)
}

// CreateSession opens an analyst session and returns its state.
func (c *Client) CreateSession(req server.CreateSessionRequest) (*server.SessionInfo, error) {
	var out server.SessionInfo
	return &out, c.do(http.MethodPost, "/v1/sessions", req, &out)
}

// Session returns a session's budget state.
func (c *Client) Session(id string) (*server.SessionInfo, error) {
	var out server.SessionInfo
	return &out, c.do(http.MethodGet, "/v1/sessions/"+url.PathEscape(id), nil, &out)
}

// Sessions lists live sessions.
func (c *Client) Sessions() ([]server.SessionInfo, error) {
	var out []server.SessionInfo
	return out, c.do(http.MethodGet, "/v1/sessions", nil, &out)
}

// CloseSession forgets a session on the server.
func (c *Client) CloseSession(id string) error {
	return c.do(http.MethodDelete, "/v1/sessions/"+url.PathEscape(id), nil, nil)
}

// Query submits one query in the paper's text syntax. A denial is not an
// error: check QueryResponse.Denied.
func (c *Client) Query(sessionID, queryText string) (*server.QueryResponse, error) {
	return c.QueryWithRequestID(sessionID, queryText, "")
}

// QueryWithRequestID is Query with a caller-chosen trace ID sent as
// X-Request-ID, so the caller's own logs and the server's traces,
// transcript entries and slow-query lines share one correlation key. An
// empty requestID lets the server mint one (returned in
// QueryResponse.TraceID either way). IDs are restricted to
// [A-Za-z0-9._-], max 64 bytes; the server replaces anything else.
func (c *Client) QueryWithRequestID(sessionID, queryText, requestID string) (*server.QueryResponse, error) {
	var hdr http.Header
	if requestID != "" {
		hdr = http.Header{"X-Request-Id": []string{requestID}}
	}
	var out server.QueryResponse
	err := c.doHeaders(http.MethodPost, "/v1/sessions/"+url.PathEscape(sessionID)+"/query",
		hdr, server.QueryRequest{Query: queryText}, &out)
	return &out, err
}

// Healthz fetches the liveness probe: the process is up and answering.
func (c *Client) Healthz() (*server.LivenessResponse, error) {
	var out server.LivenessResponse
	return &out, c.do(http.MethodGet, "/v1/healthz", nil, &out)
}

// Readyz fetches the readiness report. Unlike every other helper it
// decodes the body on both 200 and 503 — a degraded readyz is an answer,
// not a transport failure — so callers inspect Status and Checks either
// way. Any other status (or an undecodable body) is returned as an error.
func (c *Client) Readyz() (*server.HealthResponse, error) {
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Get(c.BaseURL + "/v1/readyz")
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("client: read response: %w", err)
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return nil, &APIError{
			StatusCode: resp.StatusCode,
			Code:       "unknown",
			Message:    string(data),
			TraceID:    resp.Header.Get("X-Request-Id"),
		}
	}
	var out server.HealthResponse
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("client: decode readyz body: %w", err)
	}
	return &out, nil
}

// Budget fetches the dataset's aggregate ε position: totals across its
// live sessions, the windowed burn rate and the time-to-exhaustion
// estimate.
func (c *Client) Budget(dataset string) (*server.BudgetResponse, error) {
	var out server.BudgetResponse
	return &out, c.do(http.MethodGet, "/v1/datasets/"+url.PathEscape(dataset)+"/budget", nil, &out)
}

// Audit fetches the dataset's budget spend timeline: every live session's
// transcript merged chronologically, each event carrying the trace ID of
// the request that committed it.
func (c *Client) Audit(dataset string) (*server.AuditResponse, error) {
	var out server.AuditResponse
	return &out, c.do(http.MethodGet, "/v1/datasets/"+url.PathEscape(dataset)+"/audit", nil, &out)
}

// Traces fetches recent request traces from the server's debug ring,
// newest first. Zero-valued filters are omitted.
func (c *Client) Traces(dataset, session string, minDuration time.Duration, limit int) ([]server.TraceView, error) {
	q := url.Values{}
	if dataset != "" {
		q.Set("dataset", dataset)
	}
	if session != "" {
		q.Set("session", session)
	}
	if minDuration > 0 {
		q.Set("min_duration", minDuration.String())
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	path := "/v1/debug/traces"
	if enc := q.Encode(); enc != "" {
		path += "?" + enc
	}
	var out server.TracesResponse
	if err := c.do(http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return out.Traces, nil
}

// Explain runs the dry-run EXPLAIN for one query: the server predicts
// the mechanism, cost interval, admission verdict and scan plan exactly
// as a real query would resolve them, but reserves and charges nothing —
// the session's spent budget, transcript and WAL are untouched.
func (c *Client) Explain(sessionID, queryText string) (*server.ExplainResponse, error) {
	var out server.ExplainResponse
	err := c.do(http.MethodPost, "/v1/sessions/"+url.PathEscape(sessionID)+"/explain",
		server.QueryRequest{Query: queryText}, &out)
	return &out, err
}

// Top fetches the cost heavy hitters ranked by attributed CPU seconds.
// by is "workload" (default when empty), "dataset" or "session"; k <= 0
// takes the server default.
func (c *Client) Top(by string, k int) (*server.TopResponse, error) {
	q := url.Values{}
	if by != "" {
		q.Set("by", by)
	}
	if k > 0 {
		q.Set("k", strconv.Itoa(k))
	}
	path := "/v1/debug/top"
	if enc := q.Encode(); enc != "" {
		path += "?" + enc
	}
	var out server.TopResponse
	return &out, c.do(http.MethodGet, path, nil, &out)
}

// Timeseries fetches the server's in-process history ring, oldest sample
// first; n <= 0 returns the whole window.
func (c *Client) Timeseries(n int) (*server.TimeseriesResponse, error) {
	path := "/v1/debug/timeseries"
	if n > 0 {
		path += "?n=" + strconv.Itoa(n)
	}
	var out server.TimeseriesResponse
	return &out, c.do(http.MethodGet, path, nil, &out)
}

// DebugConfig fetches the runtime-adjustable observability knobs.
func (c *Client) DebugConfig() (*server.DebugConfig, error) {
	var out server.DebugConfig
	return &out, c.do(http.MethodGet, "/v1/debug/config", nil, &out)
}

// SetDebugConfig adjusts the runtime observability knobs (slow-query
// threshold, flight-recorder triggers); zero-valued fields keep their
// current values. Returns the resulting config.
func (c *Client) SetDebugConfig(req server.DebugConfig) (*server.DebugConfig, error) {
	var out server.DebugConfig
	return &out, c.do(http.MethodPut, "/v1/debug/config", req, &out)
}

// Transcript fetches the session's full audit transcript.
func (c *Client) Transcript(sessionID string) (*server.TranscriptResponse, error) {
	return c.TranscriptSince(sessionID, 0)
}

// TranscriptSince fetches the transcript entries with index >= since —
// the incremental form audit tailers poll with, copying only the delta.
// The response's validity verdict still covers the full transcript.
func (c *Client) TranscriptSince(sessionID string, since int) (*server.TranscriptResponse, error) {
	path := "/v1/sessions/" + url.PathEscape(sessionID) + "/transcript"
	if since > 0 {
		path += "?since=" + strconv.Itoa(since)
	}
	var out server.TranscriptResponse
	return &out, c.do(http.MethodGet, path, nil, &out)
}

func (c *Client) do(method, path string, in, out any) error {
	return c.doHeaders(method, path, nil, in, out)
}

func (c *Client) doHeaders(method, path string, hdr http.Header, in, out any) error {
	var encoded []byte
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
		encoded = b
	}
	err := c.doOnce(method, path, hdr, encoded, out)
	if c.Retry == nil {
		return err
	}
	// Bounded exponential backoff, 429-only: a queue-full rejection means
	// the request was never admitted, so a retry can never double-charge.
	// On exhaustion the returned APIError is the final attempt's, carrying
	// that attempt's trace ID.
	delay := c.Retry.BaseDelay
	if delay <= 0 {
		delay = 100 * time.Millisecond
	}
	maxDelay := c.Retry.MaxDelay
	if maxDelay <= 0 {
		maxDelay = 5 * time.Second
	}
	sleep := c.Retry.sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	for attempt := 0; attempt < c.Retry.MaxRetries && IsBackpressure(err); attempt++ {
		wait := min(delay, maxDelay)
		var ae *APIError
		if errors.As(err, &ae) && ae.RetryAfter > wait {
			wait = ae.RetryAfter
		}
		sleep(wait)
		delay *= 2
		err = c.doOnce(method, path, hdr, encoded, out)
	}
	return err
}

func (c *Client) doOnce(method, path string, hdr http.Header, encoded []byte, out any) error {
	var body io.Reader
	if encoded != nil {
		body = bytes.NewReader(encoded)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, body)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	for k, vs := range hdr {
		req.Header[k] = vs
	}
	if encoded != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("client: read response: %w", err)
	}
	if resp.StatusCode/100 != 2 {
		ae := &APIError{
			StatusCode: resp.StatusCode,
			Code:       "unknown",
			Message:    string(data),
			TraceID:    resp.Header.Get("X-Request-Id"),
		}
		var e server.ErrorResponse
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			ae.Code, ae.Message = e.Code, e.Error
			if e.TraceID != "" {
				ae.TraceID = e.TraceID
			}
			if e.QueueDepth != nil {
				ae.QueueDepth = *e.QueueDepth
			}
		}
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			ae.RetryAfter = time.Duration(secs) * time.Second
		}
		return ae
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("client: decode response: %w", err)
		}
	}
	return nil
}
