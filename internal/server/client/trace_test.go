package client

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
)

// tracedRejector always replies 429, stamping a distinct per-attempt
// trace ID into both the X-Request-ID header and the JSON body, the way
// the real server does.
func tracedRejector(t *testing.T) (*httptest.Server, *atomic.Int32) {
	t.Helper()
	var calls atomic.Int32
	depth := 3
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		rid := fmt.Sprintf("attempt-%d", n)
		w.Header().Set("X-Request-Id", rid)
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		_ = json.NewEncoder(w).Encode(server.ErrorResponse{
			Error:             "dataset queue is full",
			Code:              server.CodeQueueFull,
			TraceID:           rid,
			QueueDepth:        &depth,
			RetryAfterSeconds: 1,
		})
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

// TestRetryExhaustionSurfacesFinalTraceID: when a RetryPolicy gives up,
// the returned APIError must identify the final failed attempt — its
// trace ID is the one an operator can actually find in the server's
// traces and logs — and print it in Error().
func TestRetryExhaustionSurfacesFinalTraceID(t *testing.T) {
	srv, calls := tracedRejector(t)
	c := New(srv.URL)
	c.Retry = &RetryPolicy{
		MaxRetries: 3,
		BaseDelay:  time.Millisecond,
		sleep:      func(time.Duration) {},
	}
	_, err := c.Query("sess", "whatever")
	if err == nil {
		t.Fatal("want error after retry exhaustion")
	}
	if got := calls.Load(); got != 4 {
		t.Fatalf("server called %d times, want 4 (1 try + 3 retries)", got)
	}
	var ae *APIError
	if !asAPIError(err, &ae) {
		t.Fatalf("error %T is not an APIError", err)
	}
	if ae.TraceID != "attempt-4" {
		t.Fatalf("APIError.TraceID = %q, want the final attempt's %q", ae.TraceID, "attempt-4")
	}
	if ae.QueueDepth != 3 {
		t.Fatalf("APIError.QueueDepth = %d, want 3 from the body", ae.QueueDepth)
	}
	if msg := ae.Error(); !strings.Contains(msg, "trace attempt-4") {
		t.Fatalf("Error() = %q does not quote the trace ID", msg)
	}
}

// TestTraceIDFromHeaderOnly: an error reply whose body omits the trace
// ID (or is not JSON at all) still yields the ID from the X-Request-ID
// response header.
func TestTraceIDFromHeaderOnly(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Request-Id", "hdr-only-1")
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	t.Cleanup(srv.Close)
	_, err := New(srv.URL).Query("sess", "whatever")
	var ae *APIError
	if !asAPIError(err, &ae) {
		t.Fatalf("error %T is not an APIError", err)
	}
	if ae.TraceID != "hdr-only-1" {
		t.Fatalf("APIError.TraceID = %q, want header fallback %q", ae.TraceID, "hdr-only-1")
	}
}
