package client

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
)

// flakyServer replies 429 (with Retry-After) n times, then succeeds.
func flakyServer(t *testing.T, rejections int32) (*httptest.Server, *atomic.Int32) {
	t.Helper()
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= rejections {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(w).Encode(server.ErrorResponse{
				Error: "dataset queue is full", Code: server.CodeQueueFull,
			})
			return
		}
		_ = json.NewEncoder(w).Encode(server.QueryResponse{Mechanism: "LM", Epsilon: 0.1})
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

// TestRetryOffByDefault: without a policy the 429 surfaces immediately,
// distinctly identifiable as backpressure.
func TestRetryOffByDefault(t *testing.T) {
	srv, calls := flakyServer(t, 1000)
	c := New(srv.URL)
	_, err := c.Query("sess", "whatever")
	if err == nil {
		t.Fatal("want error")
	}
	if !IsBackpressure(err) {
		t.Fatalf("IsBackpressure(%v) = false", err)
	}
	var ae *APIError
	if !asAPIError(err, &ae) || ae.StatusCode != http.StatusTooManyRequests || ae.Code != server.CodeQueueFull {
		t.Fatalf("unexpected error shape: %+v", err)
	}
	if ae.RetryAfter != time.Second {
		t.Fatalf("RetryAfter = %v, want 1s", ae.RetryAfter)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server called %d times, want 1 (no retries by default)", got)
	}
}

// TestRetryBacksOffAndSucceeds: with a policy, 429s are retried with
// exponential backoff (respecting Retry-After) until the bound.
func TestRetryBacksOffAndSucceeds(t *testing.T) {
	srv, calls := flakyServer(t, 2)
	var slept []time.Duration
	c := New(srv.URL)
	c.Retry = &RetryPolicy{
		MaxRetries: 3,
		BaseDelay:  50 * time.Millisecond,
		sleep:      func(d time.Duration) { slept = append(slept, d) },
	}
	resp, err := c.Query("sess", "whatever")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Mechanism != "LM" {
		t.Fatalf("unexpected response: %+v", resp)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server called %d times, want 3", got)
	}
	// Retry-After (1s) dominates the 50ms/100ms computed backoffs.
	if len(slept) != 2 || slept[0] != time.Second || slept[1] != time.Second {
		t.Fatalf("sleeps = %v, want [1s 1s]", slept)
	}
}

// TestRetryGivesUpAfterBound: the policy is bounded — a persistent 429
// eventually surfaces.
func TestRetryGivesUpAfterBound(t *testing.T) {
	srv, calls := flakyServer(t, 1000)
	c := New(srv.URL)
	c.Retry = &RetryPolicy{MaxRetries: 2, BaseDelay: time.Millisecond, sleep: func(time.Duration) {}}
	_, err := c.Query("sess", "whatever")
	if !IsBackpressure(err) {
		t.Fatalf("want backpressure error, got %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server called %d times, want 3 (1 + 2 retries)", got)
	}
}

// TestNoRetryOnOtherErrors: only 429s are retried.
func TestNoRetryOnOtherErrors(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusNotFound)
		_ = json.NewEncoder(w).Encode(server.ErrorResponse{Error: "unknown session", Code: server.CodeNotFound})
	}))
	defer srv.Close()
	c := New(srv.URL)
	c.Retry = &RetryPolicy{MaxRetries: 5, BaseDelay: time.Millisecond, sleep: func(time.Duration) {}}
	_, err := c.Query("sess", "whatever")
	if err == nil || IsBackpressure(err) {
		t.Fatalf("want a non-backpressure error, got %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server called %d times, want 1", got)
	}
}

func asAPIError(err error, target **APIError) bool {
	ae, ok := err.(*APIError)
	if ok {
		*target = ae
	}
	return ok
}
