//go:build linux

package server

import "syscall"

// pageFaults returns the process's minor and major fault counts from
// getrusage — the "did that scan hit the page cache or the disk" signal
// for mmap-backed datasets.
func pageFaults() (minor, major int64) {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0, 0
	}
	return ru.Minflt, ru.Majflt
}
