package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analytics"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/sched"
	"repro/internal/scrub"
	"repro/internal/store"
)

// Config holds the owner-side policy knobs for one server.
type Config struct {
	// MaxBudget caps any single session's budget B; 0 means uncapped.
	MaxBudget float64
	// MaxSessions bounds live sessions; 0 means unlimited.
	MaxSessions int
	// AllowSeeds lets analysts fix their session's RNG seed. Off by
	// default: an analyst who knows the seed can replay the noise and
	// recover exact counts, so only enable it for trusted analysts or
	// reproducible experiments.
	AllowSeeds bool
	// Store, when set, makes the server durable: dataset registrations
	// persist to the catalog and every session commit is fsynced into a
	// per-session write-ahead log before the answer is released. Attach
	// the same store to the registry and run RecoverSessions at startup.
	Store *store.Store
	// Sched tunes the per-dataset execution scheduler every query runs
	// through: queue depth (backpressure threshold), workers and batch
	// size per dataset, and the Retry-After hint for 429 rejections.
	// Zero values take the scheduler defaults. Sched.Metrics is
	// overwritten with the server's registry.
	Sched sched.Config
	// Metrics, when set, is the registry /metrics serves; nil builds a
	// private one.
	Metrics *metrics.Registry
	// Trace tunes request tracing (the /v1/debug/traces ring, per-phase
	// histograms and the slow-query log). The zero value traces with
	// defaults; set Trace.Disable to turn span recording off.
	Trace TraceConfig
	// Scrub tunes the background verification plane. The scrubber itself
	// is always constructed (its checks also run on demand and its metric
	// families must exist from the first scrape); the paced background
	// loop only starts when Scrub.Interval > 0.
	Scrub ScrubConfig
	// Analytics tunes the workload analytics plane: per-request cost
	// attribution and heavy hitters (/v1/debug/top), the in-process
	// time-series ring (/v1/debug/timeseries) and the anomaly flight
	// recorder. The zero value enables attribution with defaults; the
	// recorder stays off until Analytics.Recorder.Dir is set.
	Analytics AnalyticsConfig
}

// ScrubConfig tunes the continuous verification plane.
type ScrubConfig struct {
	// Interval is the pause between scrub cycles; 0 disables the
	// background loop (cycles can still be driven via Scrubber().RunCycle).
	Interval time.Duration
	// ReadBytesPerSec rate-limits verification reads so scrubbing never
	// competes with query service for disk bandwidth; 0 means unpaced.
	ReadBytesPerSec int64
	// IncidentLog receives one structured JSON line per integrity
	// violation; nil means os.Stderr.
	IncidentLog io.Writer
}

// Server wires the registry, session manager, per-dataset scheduler,
// metrics registry and request tracer to an HTTP API.
type Server struct {
	registry   *Registry
	sessions   *SessionManager
	sched      *sched.Scheduler
	metrics    *metrics.Registry
	tracer     *obs.Tracer
	allowSeeds bool

	// Health plane state.
	st       *store.Store // nil on non-durable servers
	scrubber *scrub.Scrubber
	budget   *budgetTracker
	started  time.Time
	ready    atomic.Bool

	// Workload analytics plane (all nil when Analytics.Disable or, for
	// the collector, when tracing is off — attribution reads finished
	// traces).
	analytics  *analytics.Collector
	timeseries *analytics.Timeseries
	recorder   *analytics.FlightRecorder

	// Cached WAL-flusher fsync probe (readyz would otherwise fsync the
	// data volume on every poll).
	probeMu  sync.Mutex
	probeAt  time.Time
	probeDur time.Duration
	probeErr error
}

// New builds a server over reg with the given policy.
func New(reg *Registry, cfg Config) *Server {
	sessions := NewSessionManager(cfg.MaxBudget, cfg.MaxSessions)
	if cfg.Store != nil {
		sessions.AttachStore(cfg.Store)
	}
	reg2 := cfg.Metrics
	if reg2 == nil {
		reg2 = metrics.NewRegistry()
	}
	schedCfg := cfg.Sched
	schedCfg.Metrics = reg2
	registerStorageMetrics(reg, reg2)
	registerTranslateMetrics(reg, reg2)
	// The cost collector attributes finished traces, so it exists exactly
	// when tracing does (and analytics is not disabled); it hooks the
	// tracer's OnFinish on the request goroutine.
	var collector *analytics.Collector
	if !cfg.Trace.Disable && !cfg.Analytics.Disable {
		collector = analytics.NewCollector(analytics.Config{TopK: cfg.Analytics.TopK})
	}
	var tracer *obs.Tracer
	if !cfg.Trace.Disable {
		tracer = obs.New(obs.Config{
			Capacity:      cfg.Trace.Capacity,
			Metrics:       reg2,
			SlowThreshold: cfg.Trace.SlowQuery,
			SlowWriter:    cfg.Trace.SlowWriter,
			OnFinish:      collector.Observe, // nil-safe on a nil collector
		})
	}
	s := &Server{
		registry:   reg,
		sessions:   sessions,
		sched:      sched.New(schedCfg),
		metrics:    reg2,
		tracer:     tracer,
		allowSeeds: cfg.AllowSeeds,
		st:         cfg.Store,
		budget:     newBudgetTracker(budgetWindow),
		started:    time.Now(),
		analytics:  collector,
	}
	if collector != nil {
		collector.Publish(reg2, reg.Names)
	}
	// A non-durable server has nothing to recover and is born ready;
	// a durable one becomes ready when RecoverSessions finishes.
	s.ready.Store(cfg.Store == nil)
	// Construct the scrubber unconditionally so every verification metric
	// family exists from the first scrape; the paced background loop only
	// starts when an interval is configured.
	s.scrubber = scrub.New(s.scrubConfig(cfg.Scrub))
	if cfg.Scrub.Interval > 0 {
		s.scrubber.Start()
	}
	s.registerHealthMetrics(reg2)

	if !cfg.Analytics.Disable {
		// Flight recorder: only live when an incident directory is
		// configured (NewFlightRecorder returns a nil no-op otherwise).
		rcfg := cfg.Analytics.Recorder
		rcfg.Metrics = reg2
		rcfg.P99 = func() (time.Duration, bool) {
			sec, ok := s.tracer.PhaseQuantile("total", 0.99)
			return time.Duration(sec * float64(time.Second)), ok
		}
		rcfg.QueueDepth = s.maxQueueDepth
		rcfg.Traces = func() any {
			if s.tracer == nil {
				return []obs.TraceView{}
			}
			return s.tracer.Traces(obs.Filter{Limit: defaultTraceLimit})
		}
		s.recorder = analytics.NewFlightRecorder(rcfg)

		// Time-series ring: a 1 Hz (by default) self-snapshot of the
		// gauges and quantiles an operator would otherwise need an
		// external scraper to keep history for. The flight recorder's
		// trigger checks ride the same tick.
		ts := analytics.NewTimeseries(cfg.Analytics.TimeseriesWindow, cfg.Analytics.TimeseriesInterval)
		ts.AddSource(func(put func(string, float64)) {
			if sec, ok := s.tracer.PhaseQuantile("total", 0.50); ok {
				put("latency_p50_ms", sec*1e3)
			}
			if sec, ok := s.tracer.PhaseQuantile("total", 0.99); ok {
				put("latency_p99_ms", sec*1e3)
			}
			if sec, ok := s.tracer.PhaseQuantile("queue", 0.99); ok {
				put("queue_wait_p99_ms", sec*1e3)
			}
			if sec, ok := s.tracer.PhaseQuantile("execute", 0.99); ok {
				put("execute_p99_ms", sec*1e3)
			}
		})
		ts.AddSource(func(put func(string, float64)) {
			put("queue_depth_max", float64(s.maxQueueDepth()))
			put("sessions", float64(len(s.sessions.List())))
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			put("goroutines", float64(runtime.NumGoroutine()))
			put("heap_bytes", float64(ms.HeapAlloc))
		})
		ts.AddSource(func(put func(string, float64)) {
			total := s.analytics.Total() // zero-valued on a nil collector
			put("requests_total", float64(total.Requests))
			put("cpu_seconds_total", float64(total.CPUNanos)/1e9)
			put("scan_bytes_total", float64(total.ScanBytes))
			put("epsilon_total", total.Epsilon)
			put("denied_total", float64(total.Denied))
		})
		ts.OnTick(s.recorder.Check) // nil-safe on a nil recorder
		ts.Start()
		s.timeseries = ts
	}
	return s
}

// RecoverSessions replays every live session log in st and re-admits the
// sessions: transcripts are decoded, re-validated against Definition 6.1,
// and the engines resume with exactly the budget left when the previous
// process stopped. Logs with a torn tail are repaired to their last valid
// frame first; logs that fail validation are quarantined rather than
// served; sessions whose dataset is not registered are left on disk and
// retried next start. skipped describes everything not restored.
func (s *Server) RecoverSessions(st *store.Store) (restored int, skipped []string, err error) {
	recs, skipped, err := st.RecoverSessions()
	if err != nil {
		return 0, skipped, err
	}
	for i := range recs {
		rec := &recs[i]
		if rec.TruncatedBytes > 0 {
			log.Printf("server: session %s: dropped %d corrupt trailing bytes, resuming at last valid frame",
				rec.Meta.ID, rec.TruncatedBytes)
		}
		ds, ok := s.registry.Dataset(rec.Meta.Dataset)
		if !ok {
			skipped = append(skipped, fmt.Sprintf("%s: dataset %q not registered", rec.Meta.ID, rec.Meta.Dataset))
			if cerr := rec.Log.Close(); cerr != nil {
				log.Printf("server: session %s: %v", rec.Meta.ID, cerr)
			}
			continue
		}
		if _, rerr := s.sessions.Restore(ds, rec); rerr != nil {
			// The frames are intact but the transcript does not hold up
			// (or the meta is inconsistent): refuse to serve it.
			skipped = append(skipped, fmt.Sprintf("%s: %v", rec.Meta.ID, rerr))
			if qerr := rec.Log.Quarantine(); qerr != nil {
				log.Printf("server: session %s: quarantine: %v", rec.Meta.ID, qerr)
			}
			continue
		}
		restored++
	}
	// Recovery is done: the readiness gate opens even when some sessions
	// were skipped — those are quarantined or deferred, not in limbo.
	s.MarkReady()
	return restored, skipped, nil
}

// Shutdown stops the scheduler — completing every queued-but-unstarted
// request with a rejection so nothing accepted is silently dropped — and
// then flushes every durable session log to disk. Call after the HTTP
// listener has drained in-flight requests: a clean drain leaves the
// queues empty (handlers block until their queries execute), so the
// scheduler close only rejects work when the drain timed out.
func (s *Server) Shutdown() error {
	if s.timeseries != nil {
		s.timeseries.Stop()
	}
	s.scrubber.Stop()
	s.sched.Close()
	return s.sessions.Shutdown()
}

// Registry returns the server's dataset registry (the startup loader in
// cmd/apex-server registers datasets through it).
func (s *Server) Registry() *Registry { return s.registry }

// Sessions returns the server's session manager.
func (s *Server) Sessions() *SessionManager { return s.sessions }

// Metrics returns the server's metrics registry (served at /metrics).
func (s *Server) Metrics() *metrics.Registry { return s.metrics }

// Scheduler returns the per-dataset execution scheduler.
func (s *Server) Scheduler() *sched.Scheduler { return s.sched }

// Tracer returns the server's request tracer, nil when tracing is
// disabled.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// Scrubber returns the background verification plane. Always non-nil;
// tests drive deterministic cycles through it with RunCycle.
func (s *Server) Scrubber() *scrub.Scrubber { return s.scrubber }

// Wire types. Every response is JSON; errors use ErrorResponse with a
// machine-readable code.

// ErrorResponse is the body of every non-2xx reply, including the mux's
// own 404/405 (the middleware rewrites those to this shape). TraceID is
// the request's trace ID — the same value echoed in the X-Request-ID
// response header — so an error can be correlated with its trace and
// slow-query log line. QueueDepth and RetryAfterSeconds are set on 429
// backpressure rejections: how congested the dataset's queue currently is
// and the server's backoff hint.
type ErrorResponse struct {
	Error             string `json:"error"`
	Code              string `json:"code"`
	TraceID           string `json:"trace_id,omitempty"`
	QueueDepth        *int   `json:"queue_depth,omitempty"`
	RetryAfterSeconds int    `json:"retry_after_seconds,omitempty"`
}

// Error codes.
const (
	CodeBadRequest       = "bad_request"        // malformed JSON or parameters
	CodeParseError       = "parse_error"        // query text failed to parse
	CodeNotFound         = "not_found"          // unknown dataset, session or endpoint
	CodeMethodNotAllowed = "method_not_allowed" // endpoint exists, method does not
	CodeConflict         = "conflict"           // duplicate dataset name
	CodePolicyDenied     = "policy_denied"      // owner policy (budget cap, session limit)
	CodeQueueFull        = "queue_full"         // dataset queue at capacity; retry after backoff
	CodeUnavailable      = "unavailable"        // server draining for shutdown
	CodeInternal         = "internal_error"     // unexpected engine failure
)

// DatasetInfo describes one registered dataset. Storage says where the
// serving table lives: "heap" or "mmap" (the column-store segment).
type DatasetInfo struct {
	Name    string          `json:"name"`
	Rows    int             `json:"rows"`
	Storage string          `json:"storage,omitempty"`
	Schema  *dataset.Schema `json:"schema,omitempty"`
}

// AddDatasetRequest registers a dataset through the owner endpoint: the
// public schema plus the sensitive rows as inline CSV (with header).
type AddDatasetRequest struct {
	Name   string          `json:"name"`
	Schema *dataset.Schema `json:"schema"`
	CSV    string          `json:"csv"`
}

// CreateSessionRequest opens an analyst session.
type CreateSessionRequest struct {
	Dataset string  `json:"dataset"`
	Budget  float64 `json:"budget"`
	// Mode is "optimistic" (default) or "pessimistic".
	Mode string `json:"mode,omitempty"`
	// Seed fixes the session's mechanism randomness for reproducible runs;
	// 0 (the default) draws an unpredictable seed. An analyst who knows
	// the seed can subtract the noise, so leave it 0 unless the analyst
	// is trusted.
	Seed int64 `json:"seed,omitempty"`
	// Reuse enables the §9 inferencer (free re-answers from cached counts).
	Reuse bool `json:"reuse,omitempty"`
}

// SessionInfo is the JSON view of one session's budget state.
type SessionInfo struct {
	ID        string  `json:"id"`
	Dataset   string  `json:"dataset"`
	Mode      string  `json:"mode"`
	Budget    float64 `json:"budget"`
	Spent     float64 `json:"spent"`
	Remaining float64 `json:"remaining"`
	Queries   int     `json:"queries"`
	Created   string  `json:"created"`
}

// QueryRequest carries one query in the paper's text syntax.
type QueryRequest struct {
	Query string `json:"query"`
}

// QueryResponse is the engine's reply: either a noisy answer or a denial,
// always with the session's updated budget state. TraceID identifies the
// request's trace (also echoed in the X-Request-ID header); the same ID
// is stamped on the transcript entry this interaction committed.
type QueryResponse struct {
	Denied  bool   `json:"denied"`
	Reason  string `json:"reason,omitempty"`
	TraceID string `json:"trace_id,omitempty"`

	Mechanism    string    `json:"mechanism,omitempty"`
	Epsilon      float64   `json:"epsilon"`
	EpsilonUpper float64   `json:"epsilon_upper"`
	Counts       []float64 `json:"counts,omitempty"`
	Selected     []bool    `json:"selected,omitempty"`
	Predicates   []string  `json:"predicates,omitempty"`

	Spent     float64 `json:"spent"`
	Remaining float64 `json:"remaining"`
}

// TranscriptEntry is one audit record (paper §6). Query is the rendered
// declarative text; external charges carry Label instead. TraceID and At
// are commit provenance: the request trace that committed the entry and
// when — present for entries committed through the server, absent for
// engine-direct history.
type TranscriptEntry struct {
	Index        int       `json:"index"`
	Query        string    `json:"query,omitempty"`
	Label        string    `json:"label,omitempty"`
	Denied       bool      `json:"denied"`
	Epsilon      float64   `json:"epsilon"`
	EpsilonUpper float64   `json:"epsilon_upper,omitempty"`
	Mechanism    string    `json:"mechanism,omitempty"`
	Counts       []float64 `json:"counts,omitempty"`
	Selected     []bool    `json:"selected,omitempty"`
	Predicates   []string  `json:"predicates,omitempty"`
	TraceID      string    `json:"trace_id,omitempty"`
	At           string    `json:"at,omitempty"` // RFC3339Nano commit time
}

// TranscriptResponse is the machine-readable session history, re-checked
// against the Definition 6.1 validity invariant at read time.
type TranscriptResponse struct {
	Session string            `json:"session"`
	Dataset string            `json:"dataset"`
	Budget  float64           `json:"budget"`
	Spent   float64           `json:"spent"`
	Valid   bool              `json:"valid"`
	Invalid string            `json:"invalid_reason,omitempty"`
	Entries []TranscriptEntry `json:"entries"`
}

// Handler returns the route table. Paths are versioned under /v1. The
// whole table sits behind the observability middleware: trace-ID
// assignment and echo, span recording, and JSON-shaped 404/405 bodies.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/healthz", s.handleLiveness)
	mux.HandleFunc("GET /v1/readyz", s.handleReadiness)
	mux.HandleFunc("GET /v1/datasets", s.handleListDatasets)
	mux.HandleFunc("POST /v1/datasets", s.handleAddDataset)
	mux.HandleFunc("GET /v1/datasets/{name}", s.handleGetDataset)
	mux.HandleFunc("GET /v1/datasets/{name}/audit", s.handleAudit)
	mux.HandleFunc("GET /v1/datasets/{name}/budget", s.handleBudget)
	mux.HandleFunc("POST /v1/sessions", s.handleCreateSession)
	mux.HandleFunc("GET /v1/sessions", s.handleListSessions)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleGetSession)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleCloseSession)
	mux.HandleFunc("POST /v1/sessions/{id}/query", s.handleQuery)
	mux.HandleFunc("POST /v1/sessions/{id}/explain", s.handleExplain)
	mux.HandleFunc("GET /v1/sessions/{id}/transcript", s.handleTranscript)
	mux.HandleFunc("GET /v1/debug/traces", s.handleTraces)
	mux.HandleFunc("GET /v1/debug/top", s.handleTop)
	mux.HandleFunc("GET /v1/debug/timeseries", s.handleTimeseries)
	mux.HandleFunc("GET /v1/debug/config", s.handleDebugConfig)
	mux.HandleFunc("PUT /v1/debug/config", s.handleDebugConfig)
	mux.Handle("GET /metrics", s.metrics.Handler())
	return s.withObs(mux)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	names := s.registry.Names()
	out := make([]DatasetInfo, 0, len(names))
	for _, name := range names {
		if d, ok := s.registry.Dataset(name); ok {
			out = append(out, DatasetInfo{Name: name, Rows: d.Table.Size(), Storage: d.Mode.String()})
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetDataset(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	d, ok := s.registry.Dataset(name)
	if !ok {
		writeError(w, r, http.StatusNotFound, CodeNotFound, fmt.Sprintf("unknown dataset %q", name))
		return
	}
	writeJSON(w, http.StatusOK, DatasetInfo{
		Name: name, Rows: d.Table.Size(), Storage: d.Mode.String(), Schema: d.Table.Schema(),
	})
}

func (s *Server) handleAddDataset(w http.ResponseWriter, r *http.Request) {
	var req AddDatasetRequest
	if !decodeJSONLimit(w, r, &req, maxDatasetBody) {
		return
	}
	if req.Schema == nil {
		writeError(w, r, http.StatusBadRequest, CodeBadRequest, "schema is required")
		return
	}
	table, err := s.registry.AddCSV(req.Name, req.Schema, []byte(req.CSV))
	if err != nil {
		status, code := http.StatusBadRequest, CodeBadRequest
		switch {
		case errors.Is(err, ErrDuplicateDataset):
			status, code = http.StatusConflict, CodeConflict
		case errors.Is(err, ErrStoreFailed):
			// The registration was rejected because it could not be made
			// durable; the detail stays in the server log.
			log.Printf("server: %v", err)
			writeError(w, r, http.StatusInternalServerError, CodeInternal, "dataset persistence failed")
			return
		}
		writeError(w, r, status, code, err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, DatasetInfo{Name: req.Name, Rows: table.Size(), Schema: req.Schema})
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req CreateSessionRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	ds, ok := s.registry.Dataset(req.Dataset)
	if !ok {
		writeError(w, r, http.StatusNotFound, CodeNotFound, fmt.Sprintf("unknown dataset %q", req.Dataset))
		return
	}
	mode := engine.Optimistic
	if req.Mode != "" {
		var err error
		if mode, err = engine.ParseMode(req.Mode); err != nil {
			writeError(w, r, http.StatusBadRequest, CodeBadRequest, err.Error())
			return
		}
	}
	if req.Seed != 0 && !s.allowSeeds {
		writeError(w, r, http.StatusForbidden, CodePolicyDenied,
			"fixed seeds are disabled on this server (a known seed lets the analyst strip the noise); omit seed or ask the owner to enable -allow-seeds")
		return
	}
	sess, err := s.sessions.Create(req.Dataset, ds, req.Budget, mode, req.Seed, req.Reuse)
	if err != nil {
		status, code := http.StatusBadRequest, CodeBadRequest
		if errors.Is(err, ErrPolicyDenied) {
			status, code = http.StatusForbidden, CodePolicyDenied
		}
		writeError(w, r, status, code, err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, sessionInfo(sess))
}

func (s *Server) handleListSessions(w http.ResponseWriter, r *http.Request) {
	live := s.sessions.List()
	out := make([]SessionInfo, 0, len(live))
	for _, sess := range live {
		out = append(out, sessionInfo(sess))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessions.Get(r.PathValue("id"))
	if !ok {
		writeError(w, r, http.StatusNotFound, CodeNotFound, "unknown session")
		return
	}
	writeJSON(w, http.StatusOK, sessionInfo(sess))
}

func (s *Server) handleCloseSession(w http.ResponseWriter, r *http.Request) {
	if !s.sessions.Close(r.PathValue("id")) {
		writeError(w, r, http.StatusNotFound, CodeNotFound, "unknown session")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "closed"})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessions.Get(r.PathValue("id"))
	if !ok {
		writeError(w, r, http.StatusNotFound, CodeNotFound, "unknown session")
		return
	}
	var req QueryRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	// Same entry point and error format as the apex CLI.
	q, err := query.ParseLine(req.Query)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, CodeParseError, err.Error())
		return
	}
	if q == nil {
		writeError(w, r, http.StatusBadRequest, CodeParseError, "empty query")
		return
	}
	eng := sess.Engine()
	// Tag the trace with what the debug endpoint filters on. The query
	// text is bounded: it identifies the workload without letting a huge
	// request body bloat the trace ring.
	if tr := obs.FromContext(r.Context()); tr != nil {
		tr.Tag("dataset", sess.Dataset)
		tr.Tag("session", sess.ID)
		tr.Tag("query", truncateQuery(req.Query))
		// The canonical-workload ID — grouping requests that are the same
		// workload under different text in /v1/debug/top?by=workload — is
		// stamped by engine.Prepare, which has the rendered key in hand.
	}
	// Every query runs through the per-dataset scheduler: admission with
	// backpressure, fair dispatch across sessions, and one batched
	// columnar pass for the noise-free scans of whatever else is pending
	// on this dataset. Engine semantics (and error surface) are exactly
	// those of a direct AskContext.
	ans, err := s.sched.Ask(r.Context(), sess.Dataset, sess.ID, eng, q)
	// Budget is immutable, so deriving remaining from one Spent() read
	// keeps spent+remaining == B even under concurrent queries.
	spent := eng.Spent()
	switch {
	case errors.Is(err, sched.ErrQueueFull):
		// Backpressure: the dataset's queue is at capacity. 429 with a
		// Retry-After hint and the current queue depth, so a backing-off
		// client can judge the congestion; nothing was admitted, charged
		// or logged.
		secs := int((s.sched.RetryAfter() + time.Second - 1) / time.Second)
		depth := s.sched.QueueDepth(sess.Dataset)
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeJSON(w, http.StatusTooManyRequests, ErrorResponse{
			Error:             "dataset queue is full; retry after backoff",
			Code:              CodeQueueFull,
			TraceID:           obs.RequestID(r.Context()),
			QueueDepth:        &depth,
			RetryAfterSeconds: secs,
		})
	case errors.Is(err, sched.ErrShutdown):
		writeError(w, r, http.StatusServiceUnavailable, CodeUnavailable,
			"server is draining; retry against the restarted instance")
	case errors.Is(err, engine.ErrDenied):
		writeJSON(w, http.StatusOK, QueryResponse{
			Denied:    true,
			Reason:    "insufficient privacy budget: no applicable mechanism's worst-case loss fits the remaining budget",
			TraceID:   obs.RequestID(r.Context()),
			Spent:     spent,
			Remaining: eng.Budget() - spent,
		})
	case errors.Is(err, engine.ErrPersist):
		// The entry could not be made durable; the budget charge stands
		// (never under-account across a crash) but the answer is withheld.
		// Checked before the canceled case: a disconnected client must
		// not reclassify a charge-bearing durability failure as
		// "nothing was charged", and the failure must reach the log.
		log.Printf("server: session %s: %v", sess.ID, err)
		writeError(w, r, http.StatusInternalServerError, CodeInternal, "transcript persistence failed")
	case errors.Is(err, engine.ErrSealed):
		// The session was closed while this query was in flight.
		writeError(w, r, http.StatusNotFound, CodeNotFound, "session closed")
	case err != nil && r.Context().Err() != nil:
		// Client went away. The scheduler abandons canceled work before
		// anything is charged (queued, admitted or even executed-but-
		// uncommitted plans are aborted); only a cancellation landing
		// inside the commit itself leaves a charge, and then the paid
		// answer is in the transcript.
		writeError(w, r, http.StatusRequestTimeout, CodeBadRequest,
			"request canceled; any committed charge is visible in the transcript")
	case errors.Is(err, engine.ErrMechanismFailure):
		// The raw error can carry data-dependent values (e.g. an actual
		// loss that overran its bound), so the analyst gets a generic
		// body and the detail stays in the server log.
		log.Printf("server: session %s: %v", sess.ID, err)
		writeError(w, r, http.StatusInternalServerError, CodeInternal, "internal mechanism failure")
	case err != nil:
		// Everything else is an analyst-input problem (unknown attribute,
		// invalid accuracy requirement, ...).
		writeError(w, r, http.StatusBadRequest, CodeBadRequest, err.Error())
	default:
		writeJSON(w, http.StatusOK, QueryResponse{
			TraceID:      obs.RequestID(r.Context()),
			Mechanism:    ans.Mechanism,
			Epsilon:      ans.Epsilon,
			EpsilonUpper: ans.EpsilonUpper,
			Counts:       ans.Counts,
			Selected:     ans.Selected,
			Predicates:   renderPredicates(ans.Predicates),
			Spent:        spent,
			Remaining:    eng.Budget() - spent,
		})
	}
}

// truncateQuery bounds the query text stored as a trace tag.
func truncateQuery(q string) string {
	const maxTag = 200
	if len(q) <= maxTag {
		return q
	}
	return q[:maxTag] + "..."
}

func (s *Server) handleTranscript(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessions.Get(r.PathValue("id"))
	if !ok {
		writeError(w, r, http.StatusNotFound, CodeNotFound, "unknown session")
		return
	}
	// ?since=N returns only entries with index >= N, so audit tailers
	// fetch the delta instead of the whole history on every poll. The
	// validity verdict always covers the full transcript.
	since := 0
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, r, http.StatusBadRequest, CodeBadRequest, "since must be a nonnegative integer")
			return
		}
		since = n
	}
	eng := sess.Engine()
	entries := eng.TranscriptSince(since)
	resp := TranscriptResponse{
		Session: sess.ID,
		Dataset: sess.Dataset,
		Budget:  eng.Budget(),
		Entries: make([]TranscriptEntry, 0, len(entries)),
	}
	for i, e := range entries {
		te := TranscriptEntry{Index: since + i, Label: e.Label, Denied: e.Denied, Epsilon: e.Epsilon, TraceID: e.TraceID}
		if !e.At.IsZero() {
			te.At = e.At.UTC().Format(time.RFC3339Nano)
		}
		if e.Query != nil {
			te.Query = e.Query.String()
		}
		if e.Answer != nil {
			te.EpsilonUpper = e.Answer.EpsilonUpper
			te.Mechanism = e.Answer.Mechanism
			te.Counts = e.Answer.Counts
			te.Selected = e.Answer.Selected
			te.Predicates = renderPredicates(e.Answer.Predicates)
		}
		resp.Entries = append(resp.Entries, te)
	}
	// Validate in place (no transcript copy) over the full history.
	spent, err := eng.Validate()
	resp.Spent = spent
	resp.Valid = err == nil
	if err != nil {
		resp.Invalid = err.Error()
	}
	writeJSON(w, http.StatusOK, resp)
}

func sessionInfo(sess *Session) SessionInfo {
	eng := sess.Engine()
	spent := eng.Spent()
	return SessionInfo{
		ID:        sess.ID,
		Dataset:   sess.Dataset,
		Mode:      eng.Mode().String(),
		Budget:    eng.Budget(),
		Spent:     spent,
		Remaining: eng.Budget() - spent,
		Queries:   eng.TranscriptLen(),
		Created:   sess.Created.UTC().Format(time.RFC3339),
	}
}

func renderPredicates(preds []dataset.Predicate) []string {
	out := make([]string, len(preds))
	for i, p := range preds {
		out[i] = p.String()
	}
	return out
}

// Request body caps: control-plane requests are tiny; dataset uploads
// carry inline CSV and get more headroom. Both bound memory per request.
const (
	maxControlBody = 1 << 20  // 1 MiB, matches the CLI's line cap
	maxDatasetBody = 64 << 20 // 64 MiB
)

// decodeJSON parses a control-plane request body into v, replying 400 and
// returning false on malformed or oversized input.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	return decodeJSONLimit(w, r, v, maxControlBody)
}

func decodeJSONLimit(w http.ResponseWriter, r *http.Request, v any, limit int64) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, r, http.StatusBadRequest, CodeBadRequest, "invalid JSON body: "+err.Error())
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes the uniform JSON error body. It takes the request so
// every error carries the trace ID the middleware assigned — the ID an
// analyst quotes to an operator, who greps the slow-query log or fetches
// /v1/debug/traces with it.
func writeError(w http.ResponseWriter, r *http.Request, status int, code, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg, Code: code, TraceID: obs.RequestID(r.Context())})
}
