package server_test

import (
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/colstore"
	"repro/internal/scrub"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/store"
)

// scrubServer starts a durable server over one dataset ("people") with
// the scrubber constructed but its background loop off — every test
// drives deterministic cycles through Scrubber().RunCycle().
func scrubServer(t *testing.T, rows int) (*server.Server, *client.Client, *store.Store) {
	t.Helper()
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := server.NewRegistry()
	reg.AttachStore(st)
	if _, err := reg.AddCSV("people", peopleSchema(t), []byte(peopleCSV(rows, 7))); err != nil {
		t.Fatal(err)
	}
	srv := server.New(reg, server.Config{Store: st, Scrub: server.ScrubConfig{IncidentLog: io.Discard}})
	if _, _, err := srv.RecoverSessions(st); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Shutdown()
	})
	return srv, client.New(ts.URL), st
}

// violationsOf filters a cycle report down to one kind.
func violationsOf(rep scrub.CycleReport, kind string) []scrub.Violation {
	var out []scrub.Violation
	for _, v := range rep.Violations {
		if v.Kind == kind {
			out = append(out, v)
		}
	}
	return out
}

// flipByte inverts one byte at off (negative = from the end).
func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if off < 0 {
		off += int64(len(data))
	}
	data[off] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestScrubDetectsSegmentBitFlip: a bit flip in a sealed column-store
// segment is detected within one scrub cycle while the server keeps
// serving, the corrupt file is quarantined, a fresh segment is rebuilt
// from the source CSV, and readiness degrades for exactly the dirty
// cycle.
func TestScrubDetectsSegmentBitFlip(t *testing.T) {
	srv, c, st := scrubServer(t, 300)
	sess, err := c.CreateSession(server.CreateSessionRequest{Dataset: "people", Budget: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(sess.ID, easyQuery); err != nil {
		t.Fatal(err)
	}

	if rep := srv.Scrubber().RunCycle(); !rep.Clean() {
		t.Fatalf("healthy server scrubs dirty: %+v", rep.Violations)
	}

	segPath := filepath.Join(st.DatasetDir("people"), store.SegmentFile)
	flipByte(t, segPath, -10) // deep in the column data, past header and directory

	rep := srv.Scrubber().RunCycle()
	vs := violationsOf(rep, scrub.KindSegment)
	if len(vs) != 1 {
		t.Fatalf("want 1 segment violation, got %d (all: %+v)", len(vs), rep.Violations)
	}
	if vs[0].Dataset != "people" || vs[0].Incident == "" {
		t.Fatalf("violation lacks attribution: %+v", vs[0])
	}

	// Readiness reflects the dirty cycle, with the scrub check degraded.
	rz, err := c.Readyz()
	if err != nil {
		t.Fatal(err)
	}
	if rz.Status != server.HealthDegraded {
		t.Fatalf("readyz after dirty cycle: %q", rz.Status)
	}

	// The corrupt artifact is aside, the rebuilt segment verifies clean.
	if _, err := os.Stat(segPath + store.QuarantineSuffix); err != nil {
		t.Fatalf("quarantined segment missing: %v", err)
	}
	if _, err := colstore.Verify(segPath); err != nil {
		t.Fatalf("rebuilt segment does not verify: %v", err)
	}

	// Service never stopped, and the next cycle is clean again.
	if _, err := c.Query(sess.ID, easyQuery); err != nil {
		t.Fatalf("query after heal: %v", err)
	}
	if rep := srv.Scrubber().RunCycle(); !rep.Clean() {
		t.Fatalf("cycle after heal still dirty: %+v", rep.Violations)
	}
	if rz, err = c.Readyz(); err != nil || rz.Status != server.HealthOK {
		t.Fatalf("readyz after heal: %v %v", rz, err)
	}
	if got := srv.Metrics().Render(); !strings.Contains(got, `apex_invariant_violations_total{kind="segment"} 1`) {
		t.Fatal("violation counter not exported")
	}
}

// TestScrubDetectsWALBitFlip: a flipped byte in a live session WAL trips
// a wal-kind violation within one cycle; the live log is never renamed
// out from under its engine.
func TestScrubDetectsWALBitFlip(t *testing.T) {
	srv, c, _ := scrubServer(t, 200)
	sess, err := c.CreateSession(server.CreateSessionRequest{Dataset: "people", Budget: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(sess.ID, easyQuery); err != nil {
		t.Fatal(err)
	}
	live, ok := srv.Sessions().Get(sess.ID)
	if !ok {
		t.Fatal("session vanished")
	}
	walPath := live.LogPath()
	if walPath == "" {
		t.Fatal("durable session has no WAL path")
	}
	flipByte(t, walPath, -2) // inside the last committed frame's payload

	rep := srv.Scrubber().RunCycle()
	if vs := violationsOf(rep, scrub.KindWAL); len(vs) != 1 || vs[0].Session != sess.ID {
		t.Fatalf("want 1 wal violation for %s, got %+v", sess.ID, rep.Violations)
	}
	if _, err := os.Stat(walPath); err != nil {
		t.Fatalf("live WAL was moved: %v", err)
	}
}

// TestScrubDetectsSidecarCorruption: a corrupted translation sidecar is
// detected within one cycle and healed through the cache's own
// quarantine-and-rebuild path.
func TestScrubDetectsSidecarCorruption(t *testing.T) {
	srv, _, st := scrubServer(t, 200)
	scPath := filepath.Join(st.DatasetDir("people"), store.TranslateSidecarFile)
	if err := os.WriteFile(scPath, []byte("this is not a translation sidecar"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep := srv.Scrubber().RunCycle()
	if vs := violationsOf(rep, scrub.KindSidecar); len(vs) != 1 || vs[0].Dataset != "people" {
		t.Fatalf("want 1 sidecar violation, got %+v", rep.Violations)
	}
	if _, err := os.Stat(scPath + ".quarantined"); err != nil {
		t.Fatalf("corrupt sidecar not quarantined: %v", err)
	}
}

// TestScrubTripsOnMisaccountedEngine: a spent counter that drifts from
// the transcript sum (injected through the test hook) increments
// apex_invariant_violations_total within one cycle.
func TestScrubTripsOnMisaccountedEngine(t *testing.T) {
	srv, c, _ := scrubServer(t, 200)
	sess, err := c.CreateSession(server.CreateSessionRequest{Dataset: "people", Budget: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(sess.ID, easyQuery); err != nil {
		t.Fatal(err)
	}
	live, _ := srv.Sessions().Get(sess.ID)
	live.Engine().TestingSkewSpent(0.25)

	rep := srv.Scrubber().RunCycle()
	if vs := violationsOf(rep, scrub.KindAccounting); len(vs) != 1 || vs[0].Session != sess.ID {
		t.Fatalf("want 1 accounting violation for %s, got %+v", sess.ID, rep.Violations)
	}
	if srv.Scrubber().Violations() == 0 {
		t.Fatal("violation total not incremented")
	}
}

// TestScrubCleanOnHealthy: on an uncorrupted server with live traffic,
// repeated cycles find nothing and the violation counter stays 0.
func TestScrubCleanOnHealthy(t *testing.T) {
	srv, c, _ := scrubServer(t, 200)
	sess, err := c.CreateSession(server.CreateSessionRequest{Dataset: "people", Budget: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Query(sess.ID, easyQuery); err != nil {
			t.Fatal(err)
		}
		if rep := srv.Scrubber().RunCycle(); !rep.Clean() {
			t.Fatalf("cycle %d dirty on healthy server: %+v", i, rep.Violations)
		}
	}
	if n := srv.Scrubber().Violations(); n != 0 {
		t.Fatalf("violations on healthy server: %d", n)
	}
	// The budget report agrees with the session's own accounting.
	b, err := c.Budget("people")
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.Session(sess.ID)
	if err != nil {
		t.Fatal(err)
	}
	if b.Sessions != 1 || abs(b.Spent-info.Spent) > epsTol {
		t.Fatalf("budget report %+v disagrees with session %+v", b, info)
	}
}

// TestHealthEndpoints: the liveness probe always answers ok; readiness
// carries the structured check list; the budget endpoint 404s on unknown
// datasets.
func TestHealthEndpoints(t *testing.T) {
	c := newTestServer(t, server.Config{})
	hz, err := c.Healthz()
	if err != nil {
		t.Fatal(err)
	}
	if hz.Status != server.HealthOK || hz.Datasets != 2 {
		t.Fatalf("healthz: %+v", hz)
	}
	rz, err := c.Readyz()
	if err != nil {
		t.Fatal(err)
	}
	if rz.Status != server.HealthOK || len(rz.Checks) != 4 {
		t.Fatalf("readyz: %+v", rz)
	}
	// A storeless server reports the WAL-flusher check disabled, not ok.
	for _, chk := range rz.Checks {
		if chk.Name == "wal_flusher" && chk.Status != server.HealthDisabled {
			t.Fatalf("wal_flusher on storeless server: %+v", chk)
		}
	}
	if _, err := c.Budget("no-such-dataset"); err == nil {
		t.Fatal("budget for unknown dataset succeeded")
	}
	if b, err := c.Budget("people"); err != nil || b.Dataset != "people" {
		t.Fatalf("budget: %+v %v", b, err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
