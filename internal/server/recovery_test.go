package server_test

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/engine"
	"repro/internal/query"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/store"
)

// startDurableServer builds a registry + server over the data dir,
// running the same recovery path as cmd/apex-server: catalog first, then
// session logs. It returns the client, the raw base URL (for byte-level
// transcript comparison) and the server (for Shutdown).
func startDurableServer(t *testing.T, dir string) (*client.Client, string, *server.Server, int) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := server.NewRegistry()
	reg.AttachStore(st)
	if _, skipped, err := reg.RecoverDatasets(); err != nil {
		t.Fatal(err)
	} else if len(skipped) != 0 {
		t.Fatalf("catalog recovery skipped: %v", skipped)
	}
	srv := server.New(reg, server.Config{AllowSeeds: true, Store: st})
	restored, skipped, err := srv.RecoverSessions(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Fatalf("recovery skipped sessions: %v", skipped)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return client.New(ts.URL), ts.URL, srv, restored
}

// rawTranscript fetches the transcript body bytes, uninterpreted, so the
// byte-identical acceptance criterion is checked on the wire form.
func rawTranscript(t *testing.T, baseURL, id string) []byte {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/sessions/" + id + "/transcript")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("transcript HTTP %d: %s", resp.StatusCode, b)
	}
	return b
}

func TestKillAndRestartRecovery(t *testing.T) {
	dir := t.TempDir()

	// ---- first life: register a dataset, run sessions to partial budget.
	c1, url1, _, restored := startDurableServer(t, dir)
	if restored != 0 {
		t.Fatalf("fresh dir restored %d sessions", restored)
	}
	if _, err := c1.AddDataset(server.AddDatasetRequest{
		Name:   "people",
		Schema: peopleSchema(t),
		CSV:    peopleCSV(200, 1),
	}); err != nil {
		t.Fatal(err)
	}

	sessA, err := c1.CreateSession(server.CreateSessionRequest{Dataset: "people", Budget: 2, Seed: 7, Reuse: true})
	if err != nil {
		t.Fatal(err)
	}
	sessB, err := c1.CreateSession(server.CreateSessionRequest{Dataset: "people", Budget: 0.4, Mode: "pessimistic", Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	// A: two distinct answers plus a free reuse hit.
	for _, q := range []string{easyQuery, hardQuery, easyQuery} {
		if _, err := c1.Query(sessA.ID, q); err != nil {
			t.Fatal(err)
		}
	}
	// B: drive to a denial so the recovered transcript includes one.
	denied := false
	for i := 0; i < 20 && !denied; i++ {
		r, err := c1.Query(sessB.ID, hardQuery)
		if err != nil {
			t.Fatal(err)
		}
		denied = r.Denied
	}
	if !denied {
		t.Fatal("session B never exhausted its budget")
	}
	// C: closed by the analyst before the crash; must NOT be restored.
	sessC, err := c1.CreateSession(server.CreateSessionRequest{Dataset: "people", Budget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.CloseSession(sessC.ID); err != nil {
		t.Fatal(err)
	}

	infoA, err := c1.Session(sessA.ID)
	if err != nil {
		t.Fatal(err)
	}
	infoB, err := c1.Session(sessB.ID)
	if err != nil {
		t.Fatal(err)
	}
	if infoA.Spent <= 0 || infoA.Remaining <= 0 {
		t.Fatalf("session A not at partial budget: %+v", infoA)
	}
	taA := rawTranscript(t, url1, sessA.ID)
	taB := rawTranscript(t, url1, sessB.ID)

	// ---- crash: the process dies here. No graceful shutdown, no WAL
	// close — every acknowledged answer is already fsynced, so dropping
	// the handles on the floor is exactly what kill -9 leaves behind.

	// ---- second life: same data dir.
	c2, url2, _, restored2 := startDurableServer(t, dir)
	if restored2 != 2 {
		t.Fatalf("restored %d sessions, want 2", restored2)
	}
	// Datasets came back from the catalog.
	info, err := c2.Dataset("people")
	if err != nil {
		t.Fatal(err)
	}
	if info.Rows != 200 || info.Schema == nil || info.Schema.Arity() != 2 {
		t.Fatalf("recovered dataset = %+v", info)
	}
	// Sessions came back with their exact budget state.
	gotA, err := c2.Session(sessA.ID)
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := c2.Session(sessB.ID)
	if err != nil {
		t.Fatal(err)
	}
	if *gotA != *infoA {
		t.Fatalf("session A state changed across restart:\n  before %+v\n  after  %+v", infoA, gotA)
	}
	if *gotB != *infoB {
		t.Fatalf("session B state changed across restart:\n  before %+v\n  after  %+v", infoB, gotB)
	}
	// The closed session stayed closed.
	if _, err := c2.Session(sessC.ID); !isAPIError(err, 404, server.CodeNotFound) {
		t.Fatalf("closed session resurrected: %v", err)
	}
	// Transcripts are byte-identical on the wire and still valid.
	if got := rawTranscript(t, url2, sessA.ID); !bytes.Equal(got, taA) {
		t.Fatalf("session A transcript changed across restart:\n  before %s\n  after  %s", taA, got)
	}
	if got := rawTranscript(t, url2, sessB.ID); !bytes.Equal(got, taB) {
		t.Fatalf("session B transcript changed across restart:\n  before %s\n  after  %s", taB, got)
	}
	trA, err := c2.Transcript(sessA.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !trA.Valid {
		t.Fatalf("recovered transcript invalid: %s", trA.Invalid)
	}
	if trA.Spent != infoA.Spent {
		t.Fatalf("validated spend %v != session spend %v", trA.Spent, infoA.Spent)
	}

	// The recovered session keeps serving: reuse survives (free answer),
	// and fresh spending accumulates on top of the recovered counter.
	r, err := c2.Query(sessA.ID, easyQuery)
	if err != nil {
		t.Fatal(err)
	}
	if r.Denied || r.Mechanism != "cache" || r.Epsilon != 0 {
		t.Fatalf("reuse lost across restart: %+v", r)
	}
	freshQuery := "BIN D ON COUNT(*) WHERE W = { age BETWEEN 0 AND 25, age BETWEEN 25 AND 100 } ERROR 50 CONFIDENCE 0.95;"
	r2, err := c2.Query(sessA.ID, freshQuery)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Denied || r2.Epsilon <= 0 {
		t.Fatalf("post-restart query did not spend: %+v", r2)
	}
	if want := infoA.Spent + r2.Epsilon; !approxEq(r2.Spent, want) {
		t.Fatalf("spent after restart = %v, want %v", r2.Spent, want)
	}

	// ---- third life: the post-restart activity itself survives a crash.
	c3, _, _, restored3 := startDurableServer(t, dir)
	if restored3 != 2 {
		t.Fatalf("third life restored %d sessions, want 2", restored3)
	}
	gotA3, err := c3.Session(sessA.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(gotA3.Spent, r2.Spent) || gotA3.Queries != infoA.Queries+2 {
		t.Fatalf("third life lost post-restart activity: %+v (want spent %v, queries %d)",
			gotA3, r2.Spent, infoA.Queries+2)
	}
	tr3, err := c3.Transcript(sessA.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !tr3.Valid {
		t.Fatalf("third-life transcript invalid: %s", tr3.Invalid)
	}
}

func TestGracefulShutdownRecovery(t *testing.T) {
	dir := t.TempDir()
	c1, _, srv1, _ := startDurableServer(t, dir)
	if _, err := c1.AddDataset(server.AddDatasetRequest{
		Name: "people", Schema: peopleSchema(t), CSV: peopleCSV(100, 3),
	}); err != nil {
		t.Fatal(err)
	}
	sess, err := c1.CreateSession(server.CreateSessionRequest{Dataset: "people", Budget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Query(sess.ID, easyQuery); err != nil {
		t.Fatal(err)
	}
	before, err := c1.Session(sess.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Drain + flush, as cmd/apex-server does on SIGTERM.
	if err := srv1.Shutdown(); err != nil {
		t.Fatal(err)
	}

	c2, _, _, restored := startDurableServer(t, dir)
	if restored != 1 {
		t.Fatalf("restored %d sessions", restored)
	}
	after, err := c2.Session(sess.ID)
	if err != nil {
		t.Fatal(err)
	}
	if *after != *before {
		t.Fatalf("graceful restart changed session state:\n  %+v\n  %+v", before, after)
	}
}

// TestCloseSealsEngine: a handler that grabbed the session just before
// DELETE must get a clean "session closed" refusal, not a WAL error
// after its budget was charged.
func TestCloseSealsEngine(t *testing.T) {
	dir := t.TempDir()
	c, _, srv, _ := startDurableServer(t, dir)
	if _, err := c.AddDataset(server.AddDatasetRequest{
		Name: "people", Schema: peopleSchema(t), CSV: peopleCSV(100, 3),
	}); err != nil {
		t.Fatal(err)
	}
	sessInfo, err := c.CreateSession(server.CreateSessionRequest{Dataset: "people", Budget: 1})
	if err != nil {
		t.Fatal(err)
	}
	sess, ok := srv.Sessions().Get(sessInfo.ID)
	if !ok {
		t.Fatal("session not found")
	}
	// Simulate the in-flight handler: hold the engine pointer across the
	// close, then ask.
	eng := sess.Engine()
	if err := c.CloseSession(sessInfo.ID); err != nil {
		t.Fatal(err)
	}
	q, err := query.Parse(easyQuery)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Ask(q); !errors.Is(err, engine.ErrSealed) {
		t.Fatalf("ask on closed session: %v", err)
	}
	if eng.Spent() != sessInfo.Spent {
		t.Fatalf("closed session charged: %v", eng.Spent())
	}
}

// TestRecoveryIncrementalTranscript covers the ?since= path end to end.
func TestIncrementalTranscript(t *testing.T) {
	c := newTestServer(t, server.Config{AllowSeeds: true})
	sess, err := c.CreateSession(server.CreateSessionRequest{Dataset: "people", Budget: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Query(sess.ID, easyQuery); err != nil {
			t.Fatal(err)
		}
	}
	full, err := c.Transcript(sess.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Entries) != 3 {
		t.Fatalf("full transcript has %d entries", len(full.Entries))
	}
	tail, err := c.TranscriptSince(sess.ID, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail.Entries) != 1 || tail.Entries[0].Index != 2 {
		t.Fatalf("since=2 returned %+v", tail.Entries)
	}
	if tail.Entries[0].Query != full.Entries[2].Query {
		t.Fatal("incremental entry differs from full fetch")
	}
	// Validity and spend still cover the whole history.
	if !tail.Valid || !approxEq(tail.Spent, full.Spent) {
		t.Fatalf("incremental verdict diverged: %+v vs %+v", tail, full)
	}
	empty, err := c.TranscriptSince(sess.ID, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.Entries) != 0 {
		t.Fatalf("since past end returned %d entries", len(empty.Entries))
	}
}

func approxEq(a, b float64) bool {
	d := a - b
	return d < epsTol && d > -epsTol
}
