package server

import (
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// TraceConfig tunes the server's request tracing (Config.Trace). The zero
// value traces every request into a default-capacity ring with no
// slow-query log.
type TraceConfig struct {
	// Disable turns request tracing off entirely. Requests still get (and
	// echo) X-Request-ID trace IDs — only span recording, the debug-trace
	// ring and the slow-query log are disabled.
	Disable bool
	// Capacity bounds the ring of recent traces served at
	// /v1/debug/traces; <= 0 means obs.DefaultCapacity.
	Capacity int
	// SlowQuery, when > 0, logs every request at least this slow as one
	// structured JSON line to SlowWriter.
	SlowQuery time.Duration
	// SlowWriter receives slow-query log lines; nil means os.Stderr.
	SlowWriter io.Writer
}

// withObs is the outermost middleware: every request gets a trace ID
// (client-supplied X-Request-ID when it passes sanitization, generated
// otherwise) echoed back in the X-Request-ID response header and carried
// in the context for error bodies and transcript provenance. Requests on
// observable paths additionally get a trace recorded into the debug ring.
// It also rewrites the mux's built-in text 404/405 replies into the same
// structured JSON error bodies every other path returns.
func (s *Server) withObs(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := obs.SanitizeRequestID(r.Header.Get("X-Request-ID"))
		if rid == "" {
			rid = obs.NewRequestID()
		}
		w.Header().Set("X-Request-ID", rid)
		ctx := obs.WithRequestID(r.Context(), rid)
		var trace *obs.Trace
		if s.tracer != nil && observedPath(r.URL.Path) {
			ctx, trace = s.tracer.Start(ctx, rid, r.Method+" "+r.URL.Path)
		}
		jw := &jsonErrorWriter{ResponseWriter: w, rid: rid}
		next.ServeHTTP(jw, r.WithContext(ctx))
		if trace != nil {
			trace.Tag("status", strconv.Itoa(jw.status()))
			trace.Finish()
		}
	})
}

// observedPath excludes the observability plane itself from the trace
// ring: metrics scrapes, health probes and trace fetches would otherwise
// evict the query traces an operator is there to read.
func observedPath(p string) bool {
	return p != "/metrics" && p != "/healthz" &&
		p != "/v1/healthz" && p != "/v1/readyz" &&
		!strings.HasPrefix(p, "/v1/debug/")
}

// jsonErrorWriter wraps a ResponseWriter to (a) record the final status
// for the trace and (b) intercept the text/plain 404 and 405 bodies
// net/http's mux writes for unmatched routes, replacing them with the
// server's JSON error shape. Handler-written JSON errors (Content-Type
// already application/json at WriteHeader time) pass through untouched.
type jsonErrorWriter struct {
	http.ResponseWriter
	rid         string
	st          int
	wroteHeader bool
	suppress    bool
}

func (w *jsonErrorWriter) status() int {
	if w.st == 0 {
		return http.StatusOK
	}
	return w.st
}

func (w *jsonErrorWriter) WriteHeader(status int) {
	if w.wroteHeader {
		return
	}
	w.wroteHeader = true
	w.st = status
	if (status == http.StatusNotFound || status == http.StatusMethodNotAllowed) &&
		!strings.HasPrefix(w.Header().Get("Content-Type"), "application/json") {
		code, msg := CodeNotFound, "no such endpoint"
		if status == http.StatusMethodNotAllowed {
			code, msg = CodeMethodNotAllowed, "method not allowed for this endpoint"
		}
		w.suppress = true
		w.Header().Set("Content-Type", "application/json")
		w.ResponseWriter.WriteHeader(status)
		b, _ := json.Marshal(ErrorResponse{Error: msg, Code: code, TraceID: w.rid})
		w.ResponseWriter.Write(append(b, '\n'))
		return
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *jsonErrorWriter) Write(b []byte) (int, error) {
	if !w.wroteHeader {
		w.WriteHeader(http.StatusOK)
	}
	if w.suppress {
		// The original text body is swallowed; the JSON replacement was
		// already written from WriteHeader.
		return len(b), nil
	}
	return w.ResponseWriter.Write(b)
}

// TraceView and SpanView alias the tracer's rendered trace so API
// consumers (the Go client mirrors the wire types here) need not import
// internal/obs.
type (
	TraceView = obs.TraceView
	SpanView  = obs.SpanView
)

// TracesResponse is the body of GET /v1/debug/traces.
type TracesResponse struct {
	Traces []TraceView `json:"traces"`
}

// defaultTraceLimit caps an unbounded trace fetch; ?limit= overrides up
// to the ring capacity.
const defaultTraceLimit = 50

// handleTraces serves the ring of recent request traces, newest first.
// Filters: ?dataset=, ?session=, ?min_duration= (Go duration syntax,
// e.g. 50ms), ?limit=. Unknown parameters are structured 400s (with the
// request's trace ID), never silently ignored: a misspelled filter must
// not quietly return the unfiltered ring.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		writeError(w, r, http.StatusNotFound, CodeNotFound, "tracing is disabled on this server")
		return
	}
	q := r.URL.Query()
	if !validParams(w, r, q, "dataset", "session", "min_duration", "limit") {
		return
	}
	f := obs.Filter{Dataset: q.Get("dataset"), Session: q.Get("session"), Limit: defaultTraceLimit}
	if v := q.Get("min_duration"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			writeError(w, r, http.StatusBadRequest, CodeBadRequest,
				"min_duration must be a nonnegative Go duration (e.g. 50ms)")
			return
		}
		f.MinDuration = d
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeError(w, r, http.StatusBadRequest, CodeBadRequest, "limit must be a positive integer")
			return
		}
		f.Limit = n
	}
	views := s.tracer.Traces(f)
	if views == nil {
		views = []obs.TraceView{}
	}
	writeJSON(w, http.StatusOK, TracesResponse{Traces: views})
}

// AuditEvent is one budget-relevant interaction on a dataset's spend
// timeline: which session and transcript slot, when and under which
// request trace it committed, and what it cost.
type AuditEvent struct {
	Session      string  `json:"session"`
	Index        int     `json:"index"`
	At           string  `json:"at,omitempty"`       // RFC3339Nano; absent for untraced entries
	TraceID      string  `json:"trace_id,omitempty"` // request that committed the entry
	Query        string  `json:"query,omitempty"`
	Label        string  `json:"label,omitempty"`
	Denied       bool    `json:"denied,omitempty"`
	Mechanism    string  `json:"mechanism,omitempty"`
	Epsilon      float64 `json:"epsilon"`
	EpsilonUpper float64 `json:"epsilon_upper,omitempty"`
	// Cumulative is the running total of actual loss across the whole
	// dataset timeline up to and including this event.
	Cumulative float64 `json:"cumulative_epsilon"`
}

// AuditResponse is the body of GET /v1/datasets/{name}/audit: every live
// session's transcript over the dataset merged into one chronological
// spend timeline, so an operator can attribute every unit of spent
// privacy budget to a concrete request.
type AuditResponse struct {
	Dataset    string       `json:"dataset"`
	Sessions   int          `json:"sessions"`
	TotalSpent float64      `json:"total_spent"`
	Events     []AuditEvent `json:"events"`
}

// handleAudit reconstructs the per-dataset budget spend timeline from the
// live sessions' transcripts. Entries committed by traced requests carry
// their commit time and trace ID and sort chronologically; entries
// without timing (engine-direct charges, transcripts from before tracing)
// keep their per-session order, ahead of the timed ones.
func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if _, ok := s.registry.Dataset(name); !ok {
		writeError(w, r, http.StatusNotFound, CodeNotFound, "unknown dataset "+strconv.Quote(name))
		return
	}
	sessions := s.sessions.ForDataset(name)
	resp := AuditResponse{Dataset: name, Sessions: len(sessions), Events: []AuditEvent{}}
	type keyed struct {
		ev AuditEvent
		at time.Time
	}
	var events []keyed
	for _, sess := range sessions {
		for i, e := range sess.Engine().Transcript() {
			ev := AuditEvent{
				Session: sess.ID,
				Index:   i,
				TraceID: e.TraceID,
				Label:   e.Label,
				Denied:  e.Denied,
				Epsilon: e.Epsilon,
			}
			if !e.At.IsZero() {
				ev.At = e.At.UTC().Format(time.RFC3339Nano)
			}
			if e.Query != nil {
				ev.Query = e.Query.String()
			}
			if e.Answer != nil {
				ev.Mechanism = e.Answer.Mechanism
				ev.EpsilonUpper = e.Answer.EpsilonUpper
			}
			events = append(events, keyed{ev: ev, at: e.At})
		}
	}
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i].at, events[j].at
		if a.IsZero() != b.IsZero() {
			return a.IsZero() // untraced history first, in session order
		}
		return a.Before(b)
	})
	var cum float64
	for _, k := range events {
		cum += k.ev.Epsilon
		k.ev.Cumulative = cum
		resp.Events = append(resp.Events, k.ev)
	}
	resp.TotalSpent = cum
	writeJSON(w, http.StatusOK, resp)
}
