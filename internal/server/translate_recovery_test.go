package server_test

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/store"
)

// End-to-end recovery for the translation plane: a restarted server must
// load persisted translation plans from the dataset sidecar and serve
// previously translated workloads without re-sampling, at the same ε.

// startTranslateServer is startDurableServer with the registry and store
// kept visible, so the test can inspect translate stats and the sidecar.
func startTranslateServer(t *testing.T, dir string) (*client.Client, *server.Registry, *store.Store, []server.DatasetRecovery) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := server.NewRegistry()
	reg.AttachStore(st)
	recovered, skipped, err := reg.RecoverDatasets()
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Fatalf("catalog recovery skipped: %v", skipped)
	}
	srv := server.New(reg, server.Config{AllowSeeds: true, Store: st})
	if _, skipped, err := srv.RecoverSessions(st); err != nil {
		t.Fatal(err)
	} else if len(skipped) != 0 {
		t.Fatalf("recovery skipped sessions: %v", skipped)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return client.New(ts.URL), reg, st, recovered
}

func TestRestartLoadsTranslationSidecar(t *testing.T) {
	dir := t.TempDir()

	// ---- first life: ingest, translate one workload, answer it.
	c1, reg1, st1, _ := startTranslateServer(t, dir)
	if _, err := c1.AddDataset(server.AddDatasetRequest{
		Name:   "people",
		Schema: peopleSchema(t),
		CSV:    peopleCSV(200, 1),
	}); err != nil {
		t.Fatal(err)
	}
	sess1, err := c1.CreateSession(server.CreateSessionRequest{Dataset: "people", Budget: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ans1, err := c1.Query(sess1.ID, easyQuery)
	if err != nil {
		t.Fatal(err)
	}
	if ans1.Denied {
		t.Fatalf("first query denied: %s", ans1.Reason)
	}

	stats1 := reg1.TranslateStats()
	if len(stats1) != 1 || stats1[0].Stats.Misses < 1 {
		t.Fatalf("first life translate stats: %+v, want at least one sampling miss", stats1)
	}
	sidecar := filepath.Join(st1.DatasetDir("people"), store.TranslateSidecarFile)
	if _, err := os.Stat(sidecar); err != nil {
		t.Fatalf("translation sidecar not persisted: %v", err)
	}

	// ---- crash (no shutdown), then second life over the same dir.
	c2, reg2, _, recovered := startTranslateServer(t, dir)
	if len(recovered) != 1 || recovered[0].Name != "people" {
		t.Fatalf("recovered datasets: %+v", recovered)
	}
	if recovered[0].TranslatePlans < 1 {
		t.Fatalf("recovery loaded %d translation plans, want ≥1", recovered[0].TranslatePlans)
	}
	if st := reg2.TranslateStats(); len(st) != 1 || st[0].Stats.Loads < 1 {
		t.Fatalf("second life translate stats after recovery: %+v, want sidecar loads", st)
	}

	// The same workload in a fresh session must be served from the loaded
	// plans — zero sampling misses — and, with the same session seed, the
	// whole answer (ε and noisy counts) is bit-identical to the first life.
	sess2, err := c2.CreateSession(server.CreateSessionRequest{Dataset: "people", Budget: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ans2, err := c2.Query(sess2.ID, easyQuery)
	if err != nil {
		t.Fatal(err)
	}
	if ans2.Denied {
		t.Fatalf("second-life query denied: %s", ans2.Reason)
	}
	if st := reg2.TranslateStats(); st[0].Stats.Misses != 0 {
		t.Fatalf("second life re-sampled despite the sidecar: %+v", st[0].Stats)
	}
	if ans2.Epsilon != ans1.Epsilon {
		t.Fatalf("ε changed across restart: %v vs %v", ans2.Epsilon, ans1.Epsilon)
	}
	if len(ans2.Counts) != len(ans1.Counts) {
		t.Fatalf("counts shape changed: %v vs %v", ans2.Counts, ans1.Counts)
	}
	for i := range ans1.Counts {
		if ans2.Counts[i] != ans1.Counts[i] {
			t.Fatalf("count[%d] changed across restart: %v vs %v", i, ans2.Counts[i], ans1.Counts[i])
		}
	}
}

func TestCorruptTranslationSidecarQuarantinedOnRecovery(t *testing.T) {
	dir := t.TempDir()

	c1, _, st1, _ := startTranslateServer(t, dir)
	if _, err := c1.AddDataset(server.AddDatasetRequest{
		Name:   "people",
		Schema: peopleSchema(t),
		CSV:    peopleCSV(100, 2),
	}); err != nil {
		t.Fatal(err)
	}
	sess, err := c1.CreateSession(server.CreateSessionRequest{Dataset: "people", Budget: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Query(sess.ID, easyQuery); err != nil {
		t.Fatal(err)
	}
	sidecar := filepath.Join(st1.DatasetDir("people"), store.TranslateSidecarFile)
	data, err := os.ReadFile(sidecar)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(sidecar, data, 0o644); err != nil {
		t.Fatal(err)
	}

	c2, reg2, _, _ := startTranslateServer(t, dir)
	if _, err := os.Stat(sidecar + ".quarantined"); err != nil {
		t.Fatalf("corrupt sidecar not quarantined: %v", err)
	}
	if st := reg2.TranslateStats(); len(st) != 1 || st[0].Stats.Rebuilds != 1 {
		t.Fatalf("translate stats after corrupt recovery: %+v, want one rebuild", st)
	}
	// Service continues: the workload is recomputed (canonical seeds make
	// it bit-identical), not refused.
	sess2, err := c2.CreateSession(server.CreateSessionRequest{Dataset: "people", Budget: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if ans, err := c2.Query(sess2.ID, easyQuery); err != nil || ans.Denied {
		t.Fatalf("query after quarantine: err=%v denied=%v", err, ans != nil && ans.Denied)
	}
}
