package server

import (
	"repro/internal/metrics"
)

// registerStorageMetrics wires the column-store residency gauges into the
// /metrics registry. They are computed on scrape (mincore + rusage are
// syscalls; no need to pay them on the query path): per-dataset raw
// column payload, mapped and resident bytes, the storage mode, the
// registry's segment lifecycle counters, and the process page-fault
// counts that show mmap-backed scans faulting pages in.
func registerStorageMetrics(reg *Registry, m *metrics.Registry) {
	m.OnScrape(func() {
		for _, st := range reg.StorageStats() {
			ds := metrics.L("dataset", st.Name)
			m.Gauge("apex_dataset_data_bytes",
				"raw column payload of the dataset (codes, values, bitmaps, dictionaries)", ds).Set(float64(st.DataBytes))
			m.Gauge("apex_dataset_mapped_bytes",
				"bytes of the dataset's column-store segment mapping (0 = heap-backed)", ds).Set(float64(st.MappedBytes))
			m.Gauge("apex_dataset_resident_bytes",
				"bytes of the dataset currently in physical memory (mincore for mmap, full payload for heap)", ds).Set(float64(st.ResidentBytes))
			m.Gauge("apex_dataset_storage_mode",
				"1 for the dataset's active storage mode", ds, metrics.L("mode", st.Mode.String())).Set(1)
			if st.SegmentVersion > 0 {
				m.Gauge("apex_dataset_segment_version",
					"on-disk column-store format version of the dataset's segment", ds).Set(float64(st.SegmentVersion))
				m.Gauge("apex_dataset_segment_file_bytes",
					"on-disk size of the dataset's segment file", ds).Set(float64(st.FileBytes))
				m.Gauge("apex_dataset_segment_v1_bytes",
					"column payload the same dataset would occupy in the full-width v1 segment layout", ds).Set(float64(st.V1Bytes))
			}
		}
		c := reg.Counters()
		m.Gauge("apex_colstore_segment_opens",
			"successful column-store segment opens since process start").Set(float64(c.SegmentOpens))
		m.Gauge("apex_colstore_segment_open_failures",
			"segment opens rejected by validation (structure or checksum)").Set(float64(c.SegmentOpenFails))
		m.Gauge("apex_colstore_segments_quarantined",
			"corrupt segments renamed aside during recovery").Set(float64(c.SegmentQuarantines))
		m.Gauge("apex_colstore_csv_fallbacks",
			"dataset recoveries that re-parsed the source CSV instead of opening a segment").Set(float64(c.CSVFallbacks))

		minor, major := pageFaults()
		m.Gauge("process_page_faults",
			"process page faults since start (rusage)", metrics.L("kind", "minor")).Set(float64(minor))
		m.Gauge("process_page_faults",
			"process page faults since start (rusage)", metrics.L("kind", "major")).Set(float64(major))
	})
}
