package server

import (
	"sync"

	"repro/internal/metrics"
	"repro/internal/translate"
)

// registerTranslateMetrics exports the per-dataset Monte-Carlo
// translation-plane counters on /metrics. The caches keep monotonic
// lifetime counts; the scrape hook feeds each registry Counter the delta
// since the previous scrape so the exposition keeps the true counter
// type (and with it rate() semantics) instead of gauge snapshots.
func registerTranslateMetrics(reg *Registry, m *metrics.Registry) {
	var mu sync.Mutex
	last := make(map[string]translate.Stats)
	m.OnScrape(func() {
		mu.Lock()
		defer mu.Unlock()
		for _, ts := range reg.TranslateStats() {
			ds := metrics.L("dataset", ts.Name)
			prev := last[ts.Name]
			m.Counter("apex_translate_cache_hits",
				"workload translations served from the shared plan cache (memory or sidecar)", ds).
				Add(float64(ts.Stats.Hits - prev.Hits))
			m.Counter("apex_translate_cache_misses",
				"workload translations that paid a fresh Monte-Carlo sampling pass", ds).
				Add(float64(ts.Stats.Misses - prev.Misses))
			m.Counter("apex_translate_cache_loads",
				"translation plans loaded from the dataset's sidecar at recovery", ds).
				Add(float64(ts.Stats.Loads - prev.Loads))
			m.Counter("apex_translate_cache_rebuilds",
				"corrupt translation sidecars quarantined and rebuilt from their valid prefix", ds).
				Add(float64(ts.Stats.Rebuilds - prev.Rebuilds))
			last[ts.Name] = ts.Stats
		}
	})
}
