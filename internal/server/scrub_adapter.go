package server

// Glue between the server's live state and the background verification
// plane (internal/scrub): the scrubber is deliberately ignorant of
// registries and session managers — it sees closures that enumerate
// artifacts and accounting units, plus heal/quarantine callbacks that
// route every repair through the same store/colstore/translate paths
// the rest of the server already uses.

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/scrub"
	"repro/internal/store"
)

// scrubConfig assembles the verification plane's wiring for this server.
// On a storeless server only the in-memory checks (transcript validity,
// spent-counter cross-check) are reachable; the file-backed closures
// stay nil and the scrubber skips those check kinds.
func (s *Server) scrubConfig(cfg ScrubConfig) scrub.Config {
	sc := scrub.Config{
		Interval:        cfg.Interval,
		ReadBytesPerSec: cfg.ReadBytesPerSec,
		Metrics:         s.metrics,
		IncidentLog:     cfg.IncidentLog,
		Sessions: func() []scrub.SessionAccounting {
			live := s.sessions.List()
			out := make([]scrub.SessionAccounting, 0, len(live))
			for _, sess := range live {
				out = append(out, scrub.SessionAccounting{
					ID:      sess.ID,
					Dataset: sess.Dataset,
					WALPath: sess.LogPath(),
					Engine:  sess.Engine(),
				})
			}
			return out
		},
	}
	st := s.st
	if st == nil {
		return sc
	}
	sc.Datasets = func() []scrub.DatasetArtifacts {
		names := s.registry.Names()
		out := make([]scrub.DatasetArtifacts, 0, len(names))
		for _, name := range names {
			a := scrub.DatasetArtifacts{Name: name}
			dir := st.DatasetDir(name)
			if p := filepath.Join(dir, store.SegmentFile); fileIsPresent(p) {
				a.SegmentPath = p
			}
			if p := filepath.Join(dir, store.TranslateSidecarFile); fileIsPresent(p) {
				a.SidecarPath = p
			}
			out = append(out, a)
		}
		return out
	}
	sc.SessionLogs = func() []store.SessionLogFile {
		files, err := st.SessionLogFiles()
		if err != nil {
			return nil
		}
		return files
	}
	sc.HealSegment = s.registry.HealCorruptSegment
	sc.HealSidecar = func(name string) error {
		ds, ok := s.registry.Dataset(name)
		if !ok || ds.Translations == nil {
			return fmt.Errorf("server: dataset %q has no translation cache to heal", name)
		}
		// LoadSidecar is the cache's own quarantine-and-rebuild path: it
		// keeps the valid prefix, moves the corrupt file aside and
		// persists a fresh sidecar from the in-memory plans.
		_, _, err := ds.Translations.LoadSidecar()
		return err
	}
	sc.QuarantineLog = st.QuarantineLogFile
	return sc
}

func fileIsPresent(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.Mode().IsRegular()
}
