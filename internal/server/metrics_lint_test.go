package server_test

import (
	"bufio"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/server"
)

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// TestMetricsExpositionLint scrapes a live /metrics endpoint — after
// enough traffic to populate every family, including the per-phase
// latency histograms — and lints the Prometheus exposition format line by
// line: well-formed metric and label names, exactly one HELP/TYPE pair
// per family, TYPE declared before its samples, properly escaped label
// values, parseable sample values. A malformed line here is invisible in
// unit tests but breaks real scrapers, so the whole surface is checked.
func TestMetricsExpositionLint(t *testing.T) {
	c := newTestServer(t, server.Config{})
	sess, err := c.CreateSession(server.CreateSessionRequest{Dataset: "people", Budget: 10})
	if err != nil {
		t.Fatal(err)
	}
	// One answered query and one parse error: both the success and the
	// error counters get samples.
	if _, err := c.Query(sess.ID, binQuery); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(sess.ID, "NOT A QUERY"); err == nil {
		t.Fatal("malformed query unexpectedly accepted")
	}

	resp, err := http.Get(c.BaseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics HTTP %d", resp.StatusCode)
	}
	lintExposition(t, resp.Body)
}

// lintExposition validates one exposition-format payload.
func lintExposition(t *testing.T, r io.Reader) {
	t.Helper()
	helpSeen := map[string]bool{}
	typeSeen := map[string]string{}
	sampleFamilies := map[string]bool{}
	var families, samples int

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || help == "" {
				t.Errorf("line %d: HELP without text: %q", lineno, line)
				continue
			}
			if !metricNameRe.MatchString(name) {
				t.Errorf("line %d: malformed metric name %q in HELP", lineno, name)
			}
			if helpSeen[name] {
				t.Errorf("line %d: duplicate HELP for %q", lineno, name)
			}
			helpSeen[name] = true
			families++
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Errorf("line %d: malformed TYPE line: %q", lineno, line)
				continue
			}
			name, typ := fields[0], fields[1]
			if !metricNameRe.MatchString(name) {
				t.Errorf("line %d: malformed metric name %q in TYPE", lineno, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Errorf("line %d: unknown metric type %q", lineno, typ)
			}
			if _, dup := typeSeen[name]; dup {
				t.Errorf("line %d: duplicate TYPE for %q", lineno, name)
			}
			if sampleFamilies[name] {
				t.Errorf("line %d: TYPE for %q appears after its samples", lineno, name)
			}
			typeSeen[name] = typ
		case strings.HasPrefix(line, "#"):
			t.Errorf("line %d: unknown comment form: %q", lineno, line)
		default:
			name := lintSampleLine(t, lineno, line)
			if name != "" {
				samples++
				sampleFamilies[familyOf(name, typeSeen)] = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	// Cross checks: every family declares both HELP and TYPE; every
	// sample belongs to a declared family.
	for name := range helpSeen {
		if _, ok := typeSeen[name]; !ok {
			t.Errorf("family %q has HELP but no TYPE", name)
		}
	}
	for name := range typeSeen {
		if !helpSeen[name] {
			t.Errorf("family %q has TYPE but no HELP", name)
		}
	}
	for fam := range sampleFamilies {
		if !helpSeen[fam] {
			t.Errorf("samples for %q have no HELP/TYPE declaration", fam)
		}
	}

	// The scrape must actually exercise the families this PR cares about.
	for _, want := range []string{
		"apex_phase_seconds", "apex_sched_requests_total", "apex_traces_recorded_total",
		"apex_translate_cache_hits", "apex_translate_cache_misses",
		"apex_translate_cache_loads", "apex_translate_cache_rebuilds",
		"apex_ready", "apex_invariant_violations_total",
		"apex_scrub_cycles_total", "apex_scrub_checks_total",
		"apex_scrub_last_cycle_clean", "apex_scrub_quarantines_total",
		"apex_dataset_budget_remaining_epsilon",
		"apex_dataset_budget_burn_epsilon_per_second",
		"apex_dataset_budget_exhausted_seconds",
		"apex_scan_bytes_total", "apex_scan_rows_total",
		"apex_analytics_requests_total", "apex_analytics_cpu_seconds_total",
		"apex_analytics_queue_seconds_total", "apex_analytics_translate_seconds_total",
		"apex_analytics_scan_bytes_total", "apex_analytics_epsilon_total",
		"apex_analytics_denied_total", "apex_analytics_cache_hits_total",
	} {
		if !helpSeen[want] {
			t.Errorf("/metrics is missing the %q family", want)
		}
	}
	if families == 0 || samples == 0 {
		t.Fatalf("lint saw %d families and %d samples — empty scrape", families, samples)
	}
}

// familyOf maps a sample's metric name back to its family, folding the
// _bucket/_sum/_count series of a histogram onto the declared base name.
func familyOf(name string, typeSeen map[string]string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name && typeSeen[base] == "histogram" {
			return base
		}
	}
	return name
}

// lintSampleLine checks one "name{labels} value" line, returning the
// metric name ("" when the line was too broken to parse further).
func lintSampleLine(t *testing.T, lineno int, line string) string {
	t.Helper()
	rest := line
	brace := strings.IndexByte(rest, '{')
	var name, labels string
	if brace >= 0 {
		name = rest[:brace]
		end := strings.LastIndexByte(rest, '}')
		if end < brace {
			t.Errorf("line %d: unterminated label set: %q", lineno, line)
			return ""
		}
		labels = rest[brace+1 : end]
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		var ok bool
		name, rest, ok = strings.Cut(rest, " ")
		if !ok {
			t.Errorf("line %d: sample without value: %q", lineno, line)
			return ""
		}
	}
	if !metricNameRe.MatchString(name) {
		t.Errorf("line %d: malformed metric name %q", lineno, name)
		return ""
	}
	if labels != "" {
		lintLabels(t, lineno, labels)
	}
	value := strings.Fields(rest)
	if len(value) < 1 || len(value) > 2 {
		t.Errorf("line %d: want 'value [timestamp]' after name, got %q", lineno, rest)
		return name
	}
	switch value[0] {
	case "+Inf", "-Inf", "NaN":
	default:
		if _, err := strconv.ParseFloat(value[0], 64); err != nil {
			t.Errorf("line %d: unparseable sample value %q", lineno, value[0])
		}
	}
	if len(value) == 2 {
		if _, err := strconv.ParseInt(value[1], 10, 64); err != nil {
			t.Errorf("line %d: unparseable timestamp %q", lineno, value[1])
		}
	}
	return name
}

// lintLabels parses a label set character by character, rejecting
// malformed names and unescaped quotes/newlines/backslashes in values —
// the failure mode that silently corrupts a scrape.
func lintLabels(t *testing.T, lineno int, s string) {
	t.Helper()
	i := 0
	for i < len(s) {
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			t.Errorf("line %d: label pair without '=': %q", lineno, s[i:])
			return
		}
		lname := s[i : i+eq]
		if !labelNameRe.MatchString(lname) {
			t.Errorf("line %d: malformed label name %q", lineno, lname)
			return
		}
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			t.Errorf("line %d: label %q value is not quoted", lineno, lname)
			return
		}
		i++ // opening quote
		closed := false
		for i < len(s) {
			switch s[i] {
			case '\\':
				if i+1 >= len(s) {
					t.Errorf("line %d: label %q value ends mid-escape", lineno, lname)
					return
				}
				switch s[i+1] {
				case '\\', '"', 'n':
				default:
					t.Errorf("line %d: label %q has invalid escape \\%c", lineno, lname, s[i+1])
				}
				i += 2
			case '"':
				closed = true
				i++
			case '\n':
				t.Errorf("line %d: label %q value has a raw newline", lineno, lname)
				return
			default:
				i++
			}
			if closed {
				break
			}
		}
		if !closed {
			t.Errorf("line %d: label %q value is unterminated", lineno, lname)
			return
		}
		if i < len(s) {
			if s[i] != ',' {
				t.Errorf("line %d: expected ',' between label pairs at %q", lineno, s[i:])
				return
			}
			i++
		}
	}
}
