package server_test

import (
	"bufio"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

// Observability for the translation plane: the prepare→translate span
// carries a translate_cache_hit attribute, batched requests record the
// Phase-0 translate_warm span, and the per-dataset cache counters reach
// /metrics.

// findSpan walks a trace depth-first for the first span with the name.
func findSpan(spans []server.SpanView, name string) *server.SpanView {
	for i := range spans {
		if spans[i].Name == name {
			return &spans[i]
		}
		if sp := findSpan(spans[i].Spans, name); sp != nil {
			return sp
		}
	}
	return nil
}

// traceByID polls the debug ring until the request's trace is recorded.
func traceByID(t *testing.T, c interface {
	Traces(dataset, session string, minDur time.Duration, limit int) ([]server.TraceView, error)
}, rid string) *server.TraceView {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		views, err := c.Traces("people", "", 0, 50)
		if err != nil {
			t.Fatal(err)
		}
		for i := range views {
			if views[i].ID == rid {
				return &views[i]
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %q never appeared in /v1/debug/traces", rid)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestTranslateSpanAttrAndMetrics(t *testing.T) {
	c := newTestServer(t, server.Config{})
	sess, err := c.CreateSession(server.CreateSessionRequest{Dataset: "people", Budget: 10})
	if err != nil {
		t.Fatal(err)
	}

	// Two asks of one workload: the scheduler's Phase-0 warm translates
	// before the first prepare (so its translate span already reads the
	// plan as cached); the second is a straight cache hit.
	const rid1, rid2 = "translate-obs.001", "translate-obs.002"
	if r, err := c.QueryWithRequestID(sess.ID, binQuery, rid1); err != nil || r.Denied {
		t.Fatalf("first query: err=%v denied=%v", err, r != nil && r.Denied)
	}
	if r, err := c.QueryWithRequestID(sess.ID, binQuery, rid2); err != nil || r.Denied {
		t.Fatalf("second query: err=%v denied=%v", err, r != nil && r.Denied)
	}

	// First request: the warm pass ran and computed the plan, and the
	// prepare-phase translate span saw it ready.
	tr1 := traceByID(t, c, rid1)
	warm := findSpan(tr1.Spans, "translate_warm")
	if warm == nil {
		t.Fatalf("first request has no translate_warm span (spans: %+v)", tr1.Spans)
	}
	if computed, ok := warm.Attrs["computed"].(float64); !ok || computed < 1 {
		t.Fatalf("translate_warm computed attr = %v, want ≥1", warm.Attrs["computed"])
	}
	for i, rid := range []string{rid1, rid2} {
		tr := traceByID(t, c, rid)
		tl := findSpan(tr.Spans, "translate")
		if tl == nil {
			t.Fatalf("request %d has no translate span", i+1)
		}
		hit, ok := tl.Attrs["translate_cache_hit"].(bool)
		if !ok {
			t.Fatalf("request %d: translate_cache_hit attr = %v (%T), want bool", i+1, tl.Attrs["translate_cache_hit"], tl.Attrs["translate_cache_hit"])
		}
		if !hit {
			t.Fatalf("request %d: translate_cache_hit = false, want true (plan was warmed/cached)", i+1)
		}
	}

	// /metrics: the four cache counter families with the dataset label,
	// with at least one miss (the warm computation) and one hit.
	resp, err := http.Get(c.BaseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics HTTP %d", resp.StatusCode)
	}
	found := map[string]bool{}
	var hitsSample, missesSample bool
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		for _, fam := range []string{
			"apex_translate_cache_hits", "apex_translate_cache_misses",
			"apex_translate_cache_loads", "apex_translate_cache_rebuilds",
		} {
			if strings.HasPrefix(line, "# TYPE "+fam+" counter") {
				found[fam] = true
			}
		}
		if strings.HasPrefix(line, `apex_translate_cache_hits{dataset="people"}`) && !strings.HasSuffix(line, " 0") {
			hitsSample = true
		}
		if strings.HasPrefix(line, `apex_translate_cache_misses{dataset="people"}`) && !strings.HasSuffix(line, " 0") {
			missesSample = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(found) != 4 {
		t.Fatalf("translate counter families on /metrics: %v, want all four", found)
	}
	if !missesSample {
		t.Fatal("apex_translate_cache_misses{dataset=people} has no nonzero sample")
	}
	if !hitsSample {
		t.Fatal("apex_translate_cache_hits{dataset=people} has no nonzero sample")
	}
}
