// Package server turns the APEx library into a multi-tenant HTTP/JSON
// service: a dataset registry holds the owner's named tables, a session
// manager runs one privacy engine per analyst session, and the HTTP layer
// exposes session creation, query answering in the paper's text syntax,
// and full per-session transcripts for audit.
//
// Each session owns an isolated engine (its own budget B, translator mode
// and random source), so concurrent analysts cannot observe or drain each
// other's budgets; the engine's own locking keeps individual sessions
// race-safe under concurrent requests. What sessions over the same
// dataset do share is the registry's per-dataset evaluation cache: one
// workload transformation and one noise-free Histogram/TrueAnswers scan
// per distinct workload, with noise still drawn per session by the
// mechanisms — cached noise-free values never leave the server.
package server

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"

	"repro/internal/dataset"
	"repro/internal/workload"
)

// ErrDuplicateDataset is returned when registering a name that is taken.
var ErrDuplicateDataset = errors.New("server: dataset already registered")

// Dataset is one registered table plus the evaluation cache every session
// over it shares.
type Dataset struct {
	Table *dataset.Table
	// Transforms caches workload transformations and their noise-free
	// evaluations across all of the dataset's sessions.
	Transforms *workload.TransformCache
}

// Registry is the thread-safe catalog of named sensitive tables the server
// hosts. Tables are immutable once registered; sessions hold direct
// references, so a table can never change under a live session.
type Registry struct {
	mu     sync.RWMutex
	tables map[string]*Dataset
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{tables: make(map[string]*Dataset)}
}

// Add registers a table under name. Names are unique: re-registering is an
// error so a dataset can't be swapped out from under running sessions.
func (r *Registry) Add(name string, t *dataset.Table) error {
	if err := validateDatasetName(name); err != nil {
		return err
	}
	if t == nil {
		return fmt.Errorf("server: nil table for dataset %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.tables[name]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateDataset, name)
	}
	r.tables[name] = &Dataset{
		Table:      t,
		Transforms: workload.NewTransformCache(workload.Options{}),
	}
	return nil
}

// validateDatasetName restricts names to URL-path-safe characters so they
// survive the /v1/datasets/{name} route without escaping.
func validateDatasetName(name string) error {
	if name == "" {
		return fmt.Errorf("server: dataset name must be non-empty")
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '_', c == '-', c == '.':
		default:
			return fmt.Errorf("server: dataset name %q: only letters, digits, '_', '-' and '.' are allowed", name)
		}
	}
	return nil
}

// LoadFiles reads a CSV + text-schema pair from disk and registers the
// table under name. This is the startup path used by cmd/apex-server.
func (r *Registry) LoadFiles(name, csvPath, schemaPath string) error {
	sf, err := os.Open(schemaPath)
	if err != nil {
		return fmt.Errorf("server: dataset %q: %w", name, err)
	}
	schema, err := dataset.ReadSchemaText(sf)
	sf.Close()
	if err != nil {
		return fmt.Errorf("server: dataset %q: %w", name, err)
	}
	cf, err := os.Open(csvPath)
	if err != nil {
		return fmt.Errorf("server: dataset %q: %w", name, err)
	}
	table, err := dataset.ReadCSV(cf, schema)
	cf.Close()
	if err != nil {
		return fmt.Errorf("server: dataset %q: %w", name, err)
	}
	return r.Add(name, table)
}

// Get returns the named table.
func (r *Registry) Get(name string) (*dataset.Table, bool) {
	d, ok := r.Dataset(name)
	if !ok {
		return nil, false
	}
	return d.Table, true
}

// Dataset returns the named table together with its shared evaluation
// cache.
func (r *Registry) Dataset(name string) (*Dataset, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.tables[name]
	return d, ok
}

// Names returns the registered dataset names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.tables))
	for name := range r.tables {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
