// Package server turns the APEx library into a multi-tenant HTTP/JSON
// service: a dataset registry holds the owner's named tables, a session
// manager runs one privacy engine per analyst session, and the HTTP layer
// exposes session creation, query answering in the paper's text syntax,
// and full per-session transcripts for audit.
//
// Each session owns an isolated engine (its own budget B, translator mode
// and random source), so concurrent analysts cannot observe or drain each
// other's budgets; the engine's own locking keeps individual sessions
// race-safe under concurrent requests. What sessions over the same
// dataset do share is the registry's per-dataset evaluation cache: one
// workload transformation and one noise-free Histogram/TrueAnswers scan
// per distinct workload, with noise still drawn per session by the
// mechanisms — cached noise-free values never leave the server.
package server

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"

	"repro/internal/dataset"
	"repro/internal/store"
	"repro/internal/workload"
)

// ErrDuplicateDataset is returned when registering a name that is taken.
var ErrDuplicateDataset = errors.New("server: dataset already registered")

// ErrStoreFailed marks a dataset-persistence failure: the registration
// was rejected because it could not be made durable. The server maps it
// to a 5xx, distinct from the analyst/owner input errors.
var ErrStoreFailed = errors.New("server: dataset persistence failed")

// Dataset is one registered table plus the evaluation cache every session
// over it shares.
type Dataset struct {
	Table *dataset.Table
	// Transforms caches workload transformations and their noise-free
	// evaluations across all of the dataset's sessions.
	Transforms *workload.TransformCache
}

// Registry is the thread-safe catalog of named sensitive tables the server
// hosts. Tables are immutable once registered; sessions hold direct
// references, so a table can never change under a live session.
type Registry struct {
	mu     sync.RWMutex
	tables map[string]*Dataset
	store  *store.Store // nil: registrations are memory-only

	// ingestMu serializes AddCSV end to end so the durable save (whole-
	// CSV writes plus fsyncs) runs outside r.mu — registrations are rare
	// and may be slow, and they must not stall concurrent reads.
	ingestMu sync.Mutex
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{tables: make(map[string]*Dataset)}
}

// AttachStore makes CSV registrations durable: every AddCSV/LoadFiles
// from here on persists the schema and rows into the store's catalog
// before the dataset becomes visible. Attach before serving traffic.
func (r *Registry) AttachStore(st *store.Store) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.store = st
}

// RecoverDatasets loads every dataset persisted in the attached store
// into the registry (without re-persisting). It returns the recovered
// names plus a description of every catalog entry that could not be
// served (unreadable files, CSV that no longer parses) — damaged
// entries are skipped, not fatal, and stay on disk for the operator.
// This is the first phase of the startup recovery path.
func (r *Registry) RecoverDatasets() (names, skipped []string, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.store == nil {
		return nil, nil, nil
	}
	recs, skipped, err := r.store.LoadDatasets()
	if err != nil {
		return nil, skipped, err
	}
	for _, rec := range recs {
		table, err := dataset.ReadCSV(bytes.NewReader(rec.CSV), rec.Schema)
		if err != nil {
			skipped = append(skipped, fmt.Sprintf("%s: %v", rec.Name, err))
			continue
		}
		if _, dup := r.tables[rec.Name]; dup {
			skipped = append(skipped, fmt.Sprintf("%s: already registered", rec.Name))
			continue
		}
		r.tables[rec.Name] = &Dataset{
			Table:      table,
			Transforms: workload.NewTransformCache(workload.Options{}),
		}
		names = append(names, rec.Name)
	}
	return names, skipped, nil
}

// AddCSV parses and registers a dataset from its source CSV, persisting
// both schema and rows to the attached store first — the registration is
// visible only once it is durable. This is the canonical ingest path for
// both the owner HTTP endpoint and the startup file loader.
func (r *Registry) AddCSV(name string, schema *dataset.Schema, csv []byte) (*dataset.Table, error) {
	if err := validateDatasetName(name); err != nil {
		return nil, err
	}
	if schema == nil {
		return nil, fmt.Errorf("server: dataset %q: nil schema", name)
	}
	table, err := dataset.ReadCSV(bytes.NewReader(csv), schema)
	if err != nil {
		return nil, err
	}
	// One ingest at a time; r.mu is only taken for the map touches, so
	// reads (listing, session creation) never wait on disk I/O here.
	r.ingestMu.Lock()
	defer r.ingestMu.Unlock()
	r.mu.RLock()
	_, dup := r.tables[name]
	r.mu.RUnlock()
	if dup {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateDataset, name)
	}
	if r.store != nil {
		if err := r.store.SaveDataset(name, schema, csv); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrStoreFailed, err)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tables[name] = &Dataset{
		Table:      table,
		Transforms: workload.NewTransformCache(workload.Options{}),
	}
	return table, nil
}

// Add registers a table under name. Names are unique: re-registering is an
// error so a dataset can't be swapped out from under running sessions.
func (r *Registry) Add(name string, t *dataset.Table) error {
	if err := validateDatasetName(name); err != nil {
		return err
	}
	if t == nil {
		return fmt.Errorf("server: nil table for dataset %q", name)
	}
	r.ingestMu.Lock()
	defer r.ingestMu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.tables[name]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateDataset, name)
	}
	r.tables[name] = &Dataset{
		Table:      t,
		Transforms: workload.NewTransformCache(workload.Options{}),
	}
	return nil
}

// validateDatasetName restricts names to URL-path-safe characters so they
// survive the /v1/datasets/{name} route without escaping.
func validateDatasetName(name string) error {
	if name == "" {
		return fmt.Errorf("server: dataset name must be non-empty")
	}
	if name[0] == '.' {
		// Also keeps catalog directory names ("..", dot-prefixed temp
		// dirs) unreachable from user input.
		return fmt.Errorf("server: dataset name %q must not start with '.'", name)
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '_', c == '-', c == '.':
		default:
			return fmt.Errorf("server: dataset name %q: only letters, digits, '_', '-' and '.' are allowed", name)
		}
	}
	return nil
}

// LoadFiles reads a CSV + text-schema pair from disk and registers the
// table under name, persisting it when a store is attached. This is the
// startup path used by cmd/apex-server.
func (r *Registry) LoadFiles(name, csvPath, schemaPath string) error {
	sf, err := os.Open(schemaPath)
	if err != nil {
		return fmt.Errorf("server: dataset %q: %w", name, err)
	}
	schema, err := dataset.ReadSchemaText(sf)
	sf.Close()
	if err != nil {
		return fmt.Errorf("server: dataset %q: %w", name, err)
	}
	csv, err := os.ReadFile(csvPath)
	if err != nil {
		return fmt.Errorf("server: dataset %q: %w", name, err)
	}
	if _, err := r.AddCSV(name, schema, csv); err != nil {
		return err
	}
	return nil
}

// Get returns the named table.
func (r *Registry) Get(name string) (*dataset.Table, bool) {
	d, ok := r.Dataset(name)
	if !ok {
		return nil, false
	}
	return d.Table, true
}

// Dataset returns the named table together with its shared evaluation
// cache.
func (r *Registry) Dataset(name string) (*Dataset, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.tables[name]
	return d, ok
}

// Names returns the registered dataset names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.tables))
	for name := range r.tables {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
