// Package server turns the APEx library into a multi-tenant HTTP/JSON
// service: a dataset registry holds the owner's named tables, a session
// manager runs one privacy engine per analyst session, and the HTTP layer
// exposes session creation, query answering in the paper's text syntax,
// and full per-session transcripts for audit.
//
// Each session owns an isolated engine (its own budget B, translator mode
// and random source), so concurrent analysts cannot observe or drain each
// other's budgets; the engine's own locking keeps individual sessions
// race-safe under concurrent requests. What sessions over the same
// dataset do share is the registry's per-dataset evaluation cache: one
// workload transformation and one noise-free Histogram/TrueAnswers scan
// per distinct workload, with noise still drawn per session by the
// mechanisms — cached noise-free values never leave the server.
//
// Durable datasets are additionally backed by the column store
// (internal/colstore): ingest streams the CSV into a checksummed segment
// file next to schema.json, and the storage policy decides per dataset
// whether the serving table lives on the heap (small tables) or is the
// segment mmap'd read-only (large ones) — queries run the same columnar
// kernels either way, and recovery opens the segment instead of
// re-parsing the source CSV.
package server

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/colstore"
	"repro/internal/dataset"
	"repro/internal/store"
	"repro/internal/translate"
	"repro/internal/workload"
)

// ErrDuplicateDataset is returned when registering a name that is taken.
var ErrDuplicateDataset = errors.New("server: dataset already registered")

// ErrStoreFailed marks a dataset-persistence failure: the registration
// was rejected because it could not be made durable. The server maps it
// to a 5xx, distinct from the analyst/owner input errors.
var ErrStoreFailed = errors.New("server: dataset persistence failed")

// StorageMode says where a registered dataset's serving table lives.
type StorageMode int

const (
	// StorageHeap: the columns are ordinary Go slices in process memory.
	StorageHeap StorageMode = iota
	// StorageMmap: the columns alias a read-only mapping of the dataset's
	// column-store segment; the page cache is the working set.
	StorageMmap
)

// String implements fmt.Stringer ("heap" / "mmap").
func (m StorageMode) String() string {
	if m == StorageMmap {
		return "mmap"
	}
	return "heap"
}

// DefaultMmapThreshold is the raw-column-bytes size at which a durable
// dataset switches from heap to mmap serving when the owner sets no
// explicit policy: 64 MiB keeps small exploratory tables in RAM and maps
// everything that would meaningfully compete with the OS page cache.
const DefaultMmapThreshold int64 = 64 << 20

// StoragePolicy is the owner's resident-memory policy for durable
// datasets.
type StoragePolicy struct {
	// MmapThreshold is the raw column payload size (bytes) at or above
	// which a dataset is served from its mmap'd segment. 0 maps every
	// durable dataset; a negative value disables mmap entirely (heap
	// always).
	MmapThreshold int64
	// ColdStart restricts recovery to column-store segments: a catalog
	// entry without a valid segment is skipped instead of re-parsed from
	// CSV. It proves (and enforces) that restart cost is independent of
	// dataset size — the recoverysmoke runs the server this way with the
	// source CSV deleted.
	ColdStart bool
}

// Dataset is one registered table plus the evaluation cache every session
// over it shares, and the storage bookkeeping behind /metrics.
type Dataset struct {
	Table *dataset.Table
	// Transforms caches workload transformations and their noise-free
	// evaluations across all of the dataset's sessions.
	Transforms *workload.TransformCache
	// Translations caches Monte-Carlo translation plans (sorted error
	// samples + reconstruction scalars) across all of the dataset's
	// sessions. For durable datasets it is backed by the translate.tc
	// sidecar in the catalog entry, so plans survive restarts.
	Translations *translate.Cache
	// Mode says whether Table's columns live on the heap or alias the
	// mmap'd segment.
	Mode StorageMode
	// Segment is the open column-store segment backing an mmap table
	// (nil for heap tables). It stays open for the process lifetime:
	// closing it would unmap the columns under live sessions.
	Segment *colstore.Segment
}

// DatasetRecovery describes how one catalog entry came back at startup —
// in particular whether the rows were served from the segment (cheap) or
// re-parsed from CSV (the legacy path), and how long that took.
type DatasetRecovery struct {
	Name    string
	Source  string // "segment" or "csv (...)" with the fallback reason
	Mode    StorageMode
	Rows    int
	Elapsed time.Duration
	// TranslatePlans is how many Monte-Carlo translation plans came back
	// from the dataset's sidecar — workloads a restarted server serves in
	// microseconds instead of re-sampling.
	TranslatePlans int
}

// Registry is the thread-safe catalog of named sensitive tables the server
// hosts. Tables are immutable once registered; sessions hold direct
// references, so a table can never change under a live session.
type Registry struct {
	mu     sync.RWMutex
	tables map[string]*Dataset
	store  *store.Store // nil: registrations are memory-only
	policy StoragePolicy

	// ingestMu serializes AddCSV end to end so the durable save (segment
	// build plus fsyncs) runs outside r.mu — registrations are rare and
	// may be slow, and they must not stall concurrent reads.
	ingestMu sync.Mutex

	// Storage counters for /metrics.
	segmentOpens       atomic.Int64 // successful segment opens
	segmentOpenFails   atomic.Int64 // opens that failed validation
	segmentQuarantines atomic.Int64 // corrupt segments renamed aside
	csvFallbacks       atomic.Int64 // recoveries that re-parsed CSV
}

// NewRegistry returns an empty registry with the default storage policy.
func NewRegistry() *Registry {
	return &Registry{
		tables: make(map[string]*Dataset),
		policy: StoragePolicy{MmapThreshold: DefaultMmapThreshold},
	}
}

// AttachStore makes CSV registrations durable: every AddCSV/LoadFiles
// from here on persists the schema, rows and column-store segment into
// the store's catalog before the dataset becomes visible. Attach before
// serving traffic.
func (r *Registry) AttachStore(st *store.Store) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.store = st
}

// SetStorage installs the owner's resident-memory policy. Call before
// recovery/ingest; it does not re-home already-registered datasets.
func (r *Registry) SetStorage(p StoragePolicy) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.policy = p
}

// mmapWanted applies the threshold to a segment's raw column payload.
func (p StoragePolicy) mmapWanted(dataBytes int64) bool {
	if p.MmapThreshold < 0 {
		return false
	}
	return dataBytes >= p.MmapThreshold
}

// RecoverDatasets loads every dataset persisted in the attached store
// into the registry (without re-persisting). Entries with a valid
// column-store segment reopen from it — no CSV re-parse, so restart cost
// does not scale with row count; a corrupt segment is quarantined
// (renamed aside, counted in the storage metrics) and the entry falls
// back to re-parsing the source CSV, after which the segment is rebuilt
// in place for the next restart. Catalogs predating the column store take
// the same fallback+rebuild path. With StoragePolicy.ColdStart set the
// CSV fallback is disabled: an entry without a valid segment is skipped.
//
// recovered describes every served entry (source, storage mode, timing);
// skipped describes every catalog entry that could not be served. Damaged
// entries are skipped, not fatal, and stay on disk for the operator. This
// is the first phase of the startup recovery path.
func (r *Registry) RecoverDatasets() (recovered []DatasetRecovery, skipped []string, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.store == nil {
		return nil, nil, nil
	}
	recs, skipped, err := r.store.LoadDatasets()
	if err != nil {
		return nil, skipped, err
	}
	for i := range recs {
		rec := &recs[i]
		if _, dup := r.tables[rec.Name]; dup {
			skipped = append(skipped, fmt.Sprintf("%s: already registered", rec.Name))
			continue
		}
		start := time.Now()
		ds, source, rerr := r.openRecord(rec)
		if rerr != nil {
			skipped = append(skipped, fmt.Sprintf("%s: %v", rec.Name, rerr))
			continue
		}
		plans := r.attachTranslationSidecar(rec.Name, ds)
		r.tables[rec.Name] = ds
		recovered = append(recovered, DatasetRecovery{
			Name:           rec.Name,
			Source:         source,
			Mode:           ds.Mode,
			Rows:           ds.Table.Size(),
			Elapsed:        time.Since(start),
			TranslatePlans: plans,
		})
	}
	return recovered, skipped, nil
}

// openRecord brings one catalog entry to a serving table: segment first,
// CSV fallback second (unless ColdStart), healing the segment when the
// fallback ran.
func (r *Registry) openRecord(rec *store.DatasetRecord) (*Dataset, string, error) {
	var segErr error
	if rec.SegmentPath != "" {
		ds, err := r.openSegment(rec.SegmentPath)
		if err == nil {
			return ds, "segment", nil
		}
		segErr = err
		r.segmentOpenFails.Add(1)
		if errors.Is(err, colstore.ErrCorrupt) {
			if q, qerr := r.store.QuarantineSegment(rec); qerr == nil {
				r.segmentQuarantines.Add(1)
				segErr = fmt.Errorf("%v (quarantined to %s)", err, filepath.Base(q))
			}
		}
		if r.policy.ColdStart {
			return nil, "", fmt.Errorf("cold-start: segment unusable and CSV fallback disabled: %w", segErr)
		}
	} else if r.policy.ColdStart {
		return nil, "", errors.New("cold-start: no column-store segment in catalog entry")
	}

	// CSV fallback: the legacy full-parse path.
	csv, err := rec.ReadCSVBytes()
	if err != nil {
		if segErr != nil {
			return nil, "", fmt.Errorf("segment: %v; csv: %v", segErr, err)
		}
		return nil, "", err
	}
	table, err := dataset.ReadCSV(bytes.NewReader(csv), rec.Schema)
	if err != nil {
		if segErr != nil {
			return nil, "", fmt.Errorf("segment: %v; csv: %v", segErr, err)
		}
		return nil, "", err
	}
	r.csvFallbacks.Add(1)
	source := "csv (no segment in catalog)"
	if segErr != nil {
		source = fmt.Sprintf("csv (%v)", segErr)
	}

	// Heal: rebuild the segment next to the entry so the next restart
	// recovers without this parse. Build under a temp name and adopt via
	// rename; a crash mid-rebuild leaves the entry exactly as it was.
	tmp := filepath.Join(r.store.DatasetDir(rec.Name), ".rebuild-"+store.SegmentFile)
	if _, werr := colstore.WriteTable(tmp, table); werr == nil {
		if aerr := r.store.AdoptSegment(rec, tmp); aerr == nil {
			source += ", segment rebuilt"
			// Serve per policy from the fresh segment — a large table
			// re-homed to mmap releases its heap copy.
			if ds, oerr := r.openSegment(rec.SegmentPath); oerr == nil {
				return ds, source, nil
			}
		} else {
			os.Remove(tmp)
		}
	}
	return newDataset(table, StorageHeap, nil), source, nil
}

// openSegment opens a segment and homes its table per the storage policy.
func (r *Registry) openSegment(path string) (*Dataset, error) {
	seg, err := colstore.Open(path)
	if err != nil {
		return nil, err
	}
	r.segmentOpens.Add(1)
	if r.policy.mmapWanted(seg.DataBytes()) {
		return newDataset(seg.Table(), StorageMmap, seg), nil
	}
	// Below threshold: copy onto the heap and release the mapping.
	heap, err := colstore.HeapCopy(seg.Table())
	seg.Close()
	if err != nil {
		return nil, err
	}
	return newDataset(heap, StorageHeap, nil), nil
}

func newDataset(t *dataset.Table, mode StorageMode, seg *colstore.Segment) *Dataset {
	return &Dataset{
		Table:        t,
		Transforms:   workload.NewTransformCache(workload.Options{}),
		Translations: translate.NewCache(""),
		Mode:         mode,
		Segment:      seg,
	}
}

// attachTranslationSidecar rebinds a durable dataset's translation cache
// to its catalog sidecar and loads whatever plans a previous process life
// persisted. Called before the dataset is registered (no session can hold
// the memory-only cache yet). Returns the number of plans loaded; a
// corrupt sidecar is quarantined and rebuilt from its valid prefix by the
// cache itself, counted in the registry's translate counters.
func (r *Registry) attachTranslationSidecar(name string, ds *Dataset) int {
	if r.store == nil {
		return 0
	}
	ds.Translations = translate.NewCache(filepath.Join(r.store.DatasetDir(name), store.TranslateSidecarFile))
	loaded, quarantined, err := ds.Translations.LoadSidecar()
	if quarantined != "" {
		fmt.Fprintf(os.Stderr, "apex-server: dataset %s: corrupt translation sidecar quarantined to %s (rebuilt with %d plans)\n",
			name, filepath.Base(quarantined), loaded)
	} else if err != nil {
		fmt.Fprintf(os.Stderr, "apex-server: dataset %s: translation sidecar: %v\n", name, err)
	}
	return loaded
}

// HealCorruptSegment is the scrubber's segment-violation response: the
// corrupt table.seg is quarantined (renamed aside, never deleted) and a
// fresh segment is rebuilt from the source CSV and adopted in its place,
// so the next open — and the next restart — reads verified bytes. The
// live serving table is deliberately left untouched: a heap table is
// independent of the file, and an mmap table's mapping pins the old
// inode, so in-flight queries keep their pre-rebuild view and the
// rebuilt segment takes over on restart. Serialized with ingest via
// ingestMu; if the segment verifies clean by the time we hold the lock
// (a concurrent heal won), this is a no-op.
func (r *Registry) HealCorruptSegment(name string) error {
	r.mu.RLock()
	st := r.store
	r.mu.RUnlock()
	if st == nil {
		return fmt.Errorf("server: dataset %q: no store attached, cannot heal", name)
	}
	r.ingestMu.Lock()
	defer r.ingestMu.Unlock()
	rec, err := st.LoadDataset(name)
	if err != nil {
		return err
	}
	if rec.SegmentPath != "" {
		if _, verr := colstore.Verify(rec.SegmentPath); verr == nil {
			return nil // already healed
		}
		if _, qerr := st.QuarantineSegment(rec); qerr != nil {
			return qerr
		}
		r.segmentQuarantines.Add(1)
	}
	csv, err := rec.ReadCSVBytes()
	if err != nil {
		return fmt.Errorf("server: dataset %q: rebuild needs the source CSV: %w", name, err)
	}
	table, err := dataset.ReadCSV(bytes.NewReader(csv), rec.Schema)
	if err != nil {
		return fmt.Errorf("server: dataset %q: rebuild: %w", name, err)
	}
	r.csvFallbacks.Add(1)
	tmp := filepath.Join(st.DatasetDir(name), ".rebuild-"+store.SegmentFile)
	if _, err := colstore.WriteTable(tmp, table); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("server: dataset %q: rebuild: %w", name, err)
	}
	if err := st.AdoptSegment(rec, tmp); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("server: dataset %q: adopt rebuilt segment: %w", name, err)
	}
	return nil
}

// AddCSV parses and registers a dataset from its source CSV. With a store
// attached the rows stream through the column-store builder into a
// durable segment (schema + CSV + segment land atomically in the catalog)
// and the serving table is homed by the storage policy; the registration
// is visible only once it is durable. This is the canonical ingest path
// for both the owner HTTP endpoint and the startup file loader.
func (r *Registry) AddCSV(name string, schema *dataset.Schema, csv []byte) (*dataset.Table, error) {
	return r.addCSV(name, schema,
		func() (io.ReadCloser, error) { return io.NopCloser(bytes.NewReader(csv)), nil })
}

// AddCSVFile is AddCSV reading the rows from a file, streaming them with
// bounded memory on the durable path (the CSV is never fully resident).
func (r *Registry) AddCSVFile(name string, schema *dataset.Schema, csvPath string) (*dataset.Table, error) {
	return r.addCSV(name, schema,
		func() (io.ReadCloser, error) { return os.Open(csvPath) })
}

// addCSV registers from a re-openable CSV source (the durable path reads
// it twice: once through the segment builder, once into the catalog).
func (r *Registry) addCSV(name string, schema *dataset.Schema, openCSV func() (io.ReadCloser, error)) (*dataset.Table, error) {
	if err := validateDatasetName(name); err != nil {
		return nil, err
	}
	if schema == nil {
		return nil, fmt.Errorf("server: dataset %q: nil schema", name)
	}
	// One ingest at a time; r.mu is only taken for the map touches, so
	// reads (listing, session creation) never wait on disk I/O here.
	r.ingestMu.Lock()
	defer r.ingestMu.Unlock()
	r.mu.RLock()
	_, dup := r.tables[name]
	st, policy := r.store, r.policy
	r.mu.RUnlock()
	if dup {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateDataset, name)
	}

	if st == nil {
		// Memory-only registration: parse straight onto the heap.
		src, err := openCSV()
		if err != nil {
			return nil, err
		}
		defer src.Close()
		table, err := dataset.ReadCSV(src, schema)
		if err != nil {
			return nil, err
		}
		r.register(name, newDataset(table, StorageHeap, nil))
		return table, nil
	}

	tx, err := st.CreateDataset(name)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrStoreFailed, err)
	}
	if err := tx.WriteSchema(schema); err != nil {
		tx.Abort()
		return nil, fmt.Errorf("%w: %v", ErrStoreFailed, err)
	}
	// Pass 1: stream the rows through the segment builder. A CSV parse
	// error surfaces here, before anything is persisted.
	src, err := openCSV()
	if err != nil {
		tx.Abort()
		return nil, err
	}
	res, err := colstore.BuildCSV(tx.SegmentPath(), schema, src)
	src.Close()
	if err != nil {
		tx.Abort()
		if errors.Is(err, colstore.ErrIO) {
			// Disk trouble, not the owner's CSV: surface as a
			// persistence failure (500), never a bad-request.
			return nil, fmt.Errorf("%w: %v", ErrStoreFailed, err)
		}
		return nil, err
	}
	// Pass 2: the source CSV, byte-exact, for audit and fallback.
	src, err = openCSV()
	if err != nil {
		tx.Abort()
		return nil, err
	}
	err = tx.StoreCSV(src)
	src.Close()
	if err != nil {
		tx.Abort()
		return nil, fmt.Errorf("%w: %v", ErrStoreFailed, err)
	}
	rec, err := tx.Commit()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrStoreFailed, err)
	}

	// Serve from the durable segment, homed by policy. (Failing to open
	// a segment written moments ago means disk trouble; surface it
	// rather than serving state that would not survive a restart.)
	var ds *Dataset
	if policy.mmapWanted(res.DataBytes) {
		seg, err := colstore.Open(rec.SegmentPath)
		if err != nil {
			r.segmentOpenFails.Add(1)
			return nil, fmt.Errorf("%w: reopen fresh segment: %v", ErrStoreFailed, err)
		}
		r.segmentOpens.Add(1)
		ds = newDataset(seg.Table(), StorageMmap, seg)
	} else {
		table, err := colstore.Load(rec.SegmentPath)
		if err != nil {
			r.segmentOpenFails.Add(1)
			return nil, fmt.Errorf("%w: reopen fresh segment: %v", ErrStoreFailed, err)
		}
		r.segmentOpens.Add(1)
		ds = newDataset(table, StorageHeap, nil)
	}
	// Bind the (empty) translation sidecar so plans computed for this
	// dataset persist for future restarts.
	r.attachTranslationSidecar(name, ds)
	r.register(name, ds)
	return ds.Table, nil
}

func (r *Registry) register(name string, ds *Dataset) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tables[name] = ds
}

// Add registers a table under name. Names are unique: re-registering is an
// error so a dataset can't be swapped out from under running sessions.
func (r *Registry) Add(name string, t *dataset.Table) error {
	if err := validateDatasetName(name); err != nil {
		return err
	}
	if t == nil {
		return fmt.Errorf("server: nil table for dataset %q", name)
	}
	r.ingestMu.Lock()
	defer r.ingestMu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.tables[name]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateDataset, name)
	}
	r.tables[name] = newDataset(t, StorageHeap, nil)
	return nil
}

// validateDatasetName restricts names to URL-path-safe characters so they
// survive the /v1/datasets/{name} route without escaping.
func validateDatasetName(name string) error {
	if name == "" {
		return fmt.Errorf("server: dataset name must be non-empty")
	}
	if name[0] == '.' {
		// Also keeps catalog directory names ("..", dot-prefixed temp
		// dirs) unreachable from user input.
		return fmt.Errorf("server: dataset name %q must not start with '.'", name)
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '_', c == '-', c == '.':
		default:
			return fmt.Errorf("server: dataset name %q: only letters, digits, '_', '-' and '.' are allowed", name)
		}
	}
	return nil
}

// LoadFiles reads a CSV + text-schema pair from disk and registers the
// table under name, persisting it (rows streamed, never fully resident)
// when a store is attached. This is the startup path used by
// cmd/apex-server.
func (r *Registry) LoadFiles(name, csvPath, schemaPath string) error {
	sf, err := os.Open(schemaPath)
	if err != nil {
		return fmt.Errorf("server: dataset %q: %w", name, err)
	}
	schema, err := dataset.ReadSchemaText(sf)
	sf.Close()
	if err != nil {
		return fmt.Errorf("server: dataset %q: %w", name, err)
	}
	if _, err := r.AddCSVFile(name, schema, csvPath); err != nil {
		return err
	}
	return nil
}

// Get returns the named table.
func (r *Registry) Get(name string) (*dataset.Table, bool) {
	d, ok := r.Dataset(name)
	if !ok {
		return nil, false
	}
	return d.Table, true
}

// Dataset returns the named table together with its shared evaluation
// cache.
func (r *Registry) Dataset(name string) (*Dataset, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.tables[name]
	return d, ok
}

// Names returns the registered dataset names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.tables))
	for name := range r.tables {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// StorageStat is the /metrics view of one dataset's residency.
type StorageStat struct {
	Name string
	Mode StorageMode
	Rows int
	// DataBytes is the raw column payload; for an mmap dataset,
	// MappedBytes is the segment mapping size and ResidentBytes how much
	// of it physical memory currently holds (mincore). Heap datasets
	// count their full payload as resident.
	DataBytes     int64
	MappedBytes   int64
	ResidentBytes int64
	// SegmentVersion is the on-disk format version (0 for heap datasets
	// without a segment); FileBytes the segment file size on disk; and
	// V1Bytes what the same columns would occupy in the full-width v1
	// layout — FileBytes/V1Bytes is the compression ratio the v2
	// encodings bought.
	SegmentVersion int
	FileBytes      int64
	V1Bytes        int64
}

// StorageCounters are the registry's lifetime segment counters.
type StorageCounters struct {
	SegmentOpens       int64
	SegmentOpenFails   int64
	SegmentQuarantines int64
	CSVFallbacks       int64
}

// StorageStats snapshots per-dataset residency for the metrics collector.
func (r *Registry) StorageStats() []StorageStat {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]StorageStat, 0, len(r.tables))
	for name, ds := range r.tables {
		stat := StorageStat{Name: name, Mode: ds.Mode, Rows: ds.Table.Size()}
		if ds.Segment != nil {
			stat.DataBytes = ds.Segment.DataBytes()
			stat.MappedBytes = ds.Segment.MappedBytes()
			stat.SegmentVersion = ds.Segment.Version()
			stat.FileBytes = ds.Segment.MappedBytes()
			stat.V1Bytes = ds.Segment.V1DataBytes()
			if res, err := ds.Segment.ResidentBytes(); err == nil {
				stat.ResidentBytes = res
			}
		} else {
			stat.DataBytes = heapColumnBytes(ds.Table)
			stat.ResidentBytes = stat.DataBytes
		}
		out = append(out, stat)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// TranslateStat is one dataset's translation-cache counters for /metrics.
type TranslateStat struct {
	Name  string
	Stats translate.Stats
}

// TranslateStats snapshots every dataset's translation-plane counters.
func (r *Registry) TranslateStats() []TranslateStat {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]TranslateStat, 0, len(r.tables))
	for name, ds := range r.tables {
		if ds.Translations == nil {
			continue
		}
		out = append(out, TranslateStat{Name: name, Stats: ds.Translations.Stats()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Counters snapshots the registry's segment counters.
func (r *Registry) Counters() StorageCounters {
	return StorageCounters{
		SegmentOpens:       r.segmentOpens.Load(),
		SegmentOpenFails:   r.segmentOpenFails.Load(),
		SegmentQuarantines: r.segmentQuarantines.Load(),
		CSVFallbacks:       r.csvFallbacks.Load(),
	}
}

// heapColumnBytes estimates a heap table's raw column payload with the
// same accounting the segment builder uses.
func heapColumnBytes(t *dataset.Table) int64 {
	var total int64
	for pos := 0; pos < t.Schema().Arity(); pos++ {
		cd := t.ColumnData(pos)
		total += int64(len(cd.Codes))*4 + int64(len(cd.Vals))*8 + int64(len(cd.MissingWords))*8
		if cd.PackedCodes != nil {
			total += int64(len(cd.PackedCodes.Words)) * 8
		}
		if cd.PackedVals != nil {
			total += int64(len(cd.PackedVals.Ints.Words)) * 8
		}
		for _, s := range cd.Dict {
			total += int64(len(s)) + 1
		}
	}
	return total
}
