package server_test

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

// TestExplainZeroEpsilonDifferential is the differential proof of the
// EXPLAIN zero-ε guarantee on a durable server: the session's spent
// counter, its transcript and its on-disk WAL must be byte-identical
// before and after any number of EXPLAIN calls — while the explains
// themselves return real predictions.
func TestExplainZeroEpsilonDifferential(t *testing.T) {
	srv, c, _ := scrubServer(t, 200)
	sess, err := c.CreateSession(server.CreateSessionRequest{Dataset: "people", Budget: 1})
	if err != nil {
		t.Fatal(err)
	}

	// First explain runs against cold caches; it must report the misses
	// and still predict a concrete plan.
	ex, err := c.Explain(sess.ID, easyQuery)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Denied || ex.Mechanism == "" || ex.EpsilonUpper <= 0 {
		t.Fatalf("cold explain = %+v", ex)
	}
	if ex.TransformCacheHit || ex.TranslateCacheHit {
		t.Fatalf("cold explain reports warm caches: %+v", ex)
	}
	if ex.Remaining != 1 || ex.Spent != 0 {
		t.Fatalf("cold explain budget view: spent %v remaining %v", ex.Spent, ex.Remaining)
	}
	if !ex.ScanPlanExact || ex.PredictedScanBytes <= 0 || len(ex.PlannedColumns) != 1 || ex.PlannedColumns[0] != "age" {
		t.Fatalf("scan plan = %+v", ex)
	}
	if len(ex.Choices) == 0 {
		t.Fatalf("explain lists no mechanism choices: %+v", ex)
	}

	// The explain warmed the workload transform cache and the shared
	// translation plane — exactly like a real Prepare would.
	ex2, err := c.Explain(sess.ID, easyQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !ex2.TransformCacheHit || !ex2.TranslateCacheHit {
		t.Fatalf("second explain still cold: %+v", ex2)
	}

	// Commit one real query so the differential runs against a non-empty
	// transcript and WAL.
	ans, err := c.Query(sess.ID, easyQuery)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Denied {
		t.Fatalf("query denied: %s", ans.Reason)
	}

	live, ok := srv.Sessions().Get(sess.ID)
	if !ok {
		t.Fatal("session vanished")
	}
	walBefore, err := os.ReadFile(live.LogPath())
	if err != nil {
		t.Fatal(err)
	}
	trBefore, err := c.Transcript(sess.ID)
	if err != nil {
		t.Fatal(err)
	}
	spentBefore := live.Engine().Spent()

	// A burst of explains: affordable, unaffordable and repeated ones.
	for i := 0; i < 5; i++ {
		for _, q := range []string{easyQuery, hardQuery} {
			if _, err := c.Explain(sess.ID, q); err != nil {
				t.Fatal(err)
			}
		}
	}

	walAfter, err := os.ReadFile(live.LogPath())
	if err != nil {
		t.Fatal(err)
	}
	if string(walBefore) != string(walAfter) {
		t.Fatalf("EXPLAIN mutated the WAL: %d bytes -> %d bytes", len(walBefore), len(walAfter))
	}
	trAfter, err := c.Transcript(sess.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(trBefore, trAfter) {
		t.Fatalf("EXPLAIN mutated the transcript:\nbefore %+v\nafter  %+v", trBefore, trAfter)
	}
	if spentAfter := live.Engine().Spent(); spentAfter != spentBefore {
		t.Fatalf("EXPLAIN spent budget: %v -> %v", spentBefore, spentAfter)
	}
}

// TestExplainPredictsDenialWithoutLoggingIt: a predicted denial is a
// report, not a transcript event — unlike a real Prepare denial, which
// consumes a transcript slot.
func TestExplainPredictsDenialWithoutLoggingIt(t *testing.T) {
	c := newTestServer(t, server.Config{})
	sess, err := c.CreateSession(server.CreateSessionRequest{Dataset: "people", Budget: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := c.Explain(sess.ID, hardQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Denied {
		t.Fatalf("tiny budget not predicted denied: %+v", ex)
	}
	if ex.Mechanism != "" || ex.EpsilonUpper != 0 {
		t.Fatalf("denied explain carries a chosen mechanism: %+v", ex)
	}
	// Every choice must be listed as unaffordable, so the analyst sees
	// what the cheapest option would have cost.
	if len(ex.Choices) == 0 {
		t.Fatal("denied explain lists no choices")
	}
	for _, ch := range ex.Choices {
		if ch.Affordable {
			t.Fatalf("denied explain has an affordable choice: %+v", ch)
		}
		if ch.EpsilonUpper <= ex.Remaining {
			t.Fatalf("choice %+v fits remaining %v but was predicted denied", ch, ex.Remaining)
		}
	}
	tr, err := c.Transcript(sess.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Entries) != 0 || tr.Spent != 0 {
		t.Fatalf("explain-predicted denial reached the transcript: %+v", tr)
	}

	// Parse and validation failures surface as structured 400s.
	if _, err := c.Explain(sess.ID, "NOT A QUERY"); !isAPIError(err, 400, server.CodeParseError) {
		t.Fatalf("malformed explain: %v", err)
	}
	if _, err := c.Explain("nope", easyQuery); !isAPIError(err, 404, server.CodeNotFound) {
		t.Fatalf("unknown session explain: %v", err)
	}
}

// metricValue extracts one sample value from a /metrics exposition body.
func metricValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("series %s: bad value %q", series, rest)
			}
			return v
		}
	}
	t.Fatalf("series %s not found in /metrics", series)
	return 0
}

// TestCostVectorScanBytesExact: the analytics plane's attributed scan
// bytes must equal the scheduler's BatchStats accounting exactly — the
// per-request shares are an attribution of the same traffic, not an
// estimate. Cross-checked via one /metrics scrape:
// apex_analytics_scan_bytes_total == apex_scan_bytes_total per dataset.
func TestCostVectorScanBytesExact(t *testing.T) {
	c := newTestServer(t, server.Config{})
	sess, err := c.CreateSession(server.CreateSessionRequest{Dataset: "people", Budget: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(sess.ID, easyQuery); err != nil {
		t.Fatal(err)
	}

	// Attribution happens when the trace finishes, which can land just
	// after the response: poll until the request is attributed.
	deadline := time.Now().Add(5 * time.Second)
	var body string
	for {
		resp, err := http.Get(c.BaseURL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		body = string(raw)
		if metricValue(t, body, `apex_analytics_requests_total{dataset="people"}`) >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("request never attributed by the analytics plane")
		}
		time.Sleep(10 * time.Millisecond)
	}

	scanned := metricValue(t, body, `apex_scan_bytes_total{dataset="people"}`)
	attributed := metricValue(t, body, `apex_analytics_scan_bytes_total{dataset="people"}`)
	if scanned <= 0 {
		t.Fatalf("no scan traffic recorded (scan=%v)", scanned)
	}
	if attributed != scanned {
		t.Fatalf("attributed scan bytes %v != BatchStats accounting %v", attributed, scanned)
	}

	// The same figure must appear in the workload heavy-hitter entry, and
	// match what EXPLAIN predicted for this workload.
	ex, err := c.Explain(sess.ID, easyQuery)
	if err != nil {
		t.Fatal(err)
	}
	top, err := c.Top("workload", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(top.Entries) == 0 {
		t.Fatal("no workload entries")
	}
	e := top.Entries[0]
	if e.Key != ex.Workload {
		t.Fatalf("top workload %q != explain workload %q", e.Key, ex.Workload)
	}
	if e.Cost.ScanBytes != int64(scanned) {
		t.Fatalf("workload entry scan bytes %d != scheduler accounting %v", e.Cost.ScanBytes, scanned)
	}
	if !ex.ScanPlanExact || ex.PredictedScanBytes != int64(scanned) {
		t.Fatalf("explain predicted %d scan bytes, scheduler read %v", ex.PredictedScanBytes, scanned)
	}
	if e.Cost.Epsilon <= 0 || e.Dataset != "people" || e.Query == "" {
		t.Fatalf("workload entry = %+v", e)
	}
}

// TestTopEndpointValidation: dimension and parameter validation on
// /v1/debug/top, including the strict unknown-parameter 400s.
func TestTopEndpointValidation(t *testing.T) {
	c := newTestServer(t, server.Config{})
	if _, err := c.Top("bogus", 5); !isAPIError(err, 400, server.CodeBadRequest) {
		t.Fatalf("bogus dimension: %v", err)
	}
	for _, path := range []string{
		"/v1/debug/top?k=0", "/v1/debug/top?k=x", "/v1/debug/top?by=workload&bogus=1",
		"/v1/debug/timeseries?n=-1", "/v1/debug/timeseries?window=5",
		"/v1/debug/traces?mindur=50ms", "/v1/debug/traces?dataset=people&foo=bar",
	} {
		resp, err := http.Get(c.BaseURL + path)
		if err != nil {
			t.Fatal(err)
		}
		var e server.ErrorResponse
		err = json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("%s: body not a JSON error: %v", path, err)
		}
		if resp.StatusCode != http.StatusBadRequest || e.Code != server.CodeBadRequest {
			t.Fatalf("%s: HTTP %d code %q, want 400 %q", path, resp.StatusCode, e.Code, server.CodeBadRequest)
		}
		if e.TraceID == "" {
			t.Fatalf("%s: error body lacks trace_id", path)
		}
	}
	// Valid filters still pass.
	if _, err := c.Traces("people", "", 0, 5); err != nil {
		t.Fatalf("valid trace filters rejected: %v", err)
	}
	if _, err := c.Top("", 0); err != nil {
		t.Fatalf("default top rejected: %v", err)
	}
}

// TestTimeseriesEndpoint: a fast-paced sampler fills the ring and the
// endpoint serves it oldest-first with the configured interval.
func TestTimeseriesEndpoint(t *testing.T) {
	c := newTestServer(t, server.Config{
		Analytics: server.AnalyticsConfig{TimeseriesWindow: 32, TimeseriesInterval: 5 * time.Millisecond},
	})
	sess, err := c.CreateSession(server.CreateSessionRequest{Dataset: "people", Budget: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(sess.ID, easyQuery); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		ts, err := c.Timeseries(0)
		if err != nil {
			t.Fatal(err)
		}
		if ts.IntervalMS != 5 {
			t.Fatalf("interval_ms = %d", ts.IntervalMS)
		}
		if len(ts.Samples) >= 3 {
			s := ts.Samples[len(ts.Samples)-1]
			if _, ok := s.Values["goroutines"]; !ok {
				t.Fatalf("sample lacks runtime gauges: %+v", s.Values)
			}
			if _, ok := s.Values["queue_depth_max"]; !ok {
				t.Fatalf("sample lacks queue depth: %+v", s.Values)
			}
			if s.Values["requests_total"] < 1 {
				// The sampler may not have seen the attributed request yet.
				if time.Now().After(deadline) {
					t.Fatalf("requests_total never reached 1: %+v", s.Values)
				}
				time.Sleep(10 * time.Millisecond)
				continue
			}
			if !ts.Samples[0].At.Before(s.At) {
				t.Fatal("samples not oldest-first")
			}
			limited, err := c.Timeseries(2)
			if err != nil {
				t.Fatal(err)
			}
			if len(limited.Samples) != 2 {
				t.Fatalf("Timeseries(2) = %d samples", len(limited.Samples))
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("timeseries ring never filled")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDebugConfigRoundTrip: the slow-query threshold is runtime-
// adjustable through /v1/debug/config, takes effect on the live tracer,
// and bad updates are rejected without partial application.
func TestDebugConfigRoundTrip(t *testing.T) {
	c := newTestServer(t, server.Config{})
	cfg, err := c.DebugConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.SlowQuery != "0s" {
		t.Fatalf("initial slow_query = %q", cfg.SlowQuery)
	}
	if cfg.RecorderDir != "" || cfg.RecorderP99 != "" {
		t.Fatalf("recorder fields on a recorder-less server: %+v", cfg)
	}

	updated, err := c.SetDebugConfig(server.DebugConfig{SlowQuery: "250ms"})
	if err != nil {
		t.Fatal(err)
	}
	if updated.SlowQuery != "250ms" {
		t.Fatalf("updated slow_query = %q", updated.SlowQuery)
	}
	if cfg, err = c.DebugConfig(); err != nil || cfg.SlowQuery != "250ms" {
		t.Fatalf("slow_query did not stick: %+v %v", cfg, err)
	}

	// Invalid values are structured 400s.
	if _, err := c.SetDebugConfig(server.DebugConfig{SlowQuery: "soon"}); !isAPIError(err, 400, server.CodeBadRequest) {
		t.Fatalf("bad duration: %v", err)
	}
	if _, err := c.SetDebugConfig(server.DebugConfig{SlowQuery: "-1s"}); !isAPIError(err, 400, server.CodeBadRequest) {
		t.Fatalf("negative duration: %v", err)
	}
	// Recorder knobs on a server without a recorder are rejected, and the
	// slow threshold is untouched by the failed update.
	qd := 5
	if _, err := c.SetDebugConfig(server.DebugConfig{RecorderQueueDepth: &qd}); !isAPIError(err, 400, server.CodeBadRequest) {
		t.Fatalf("recorder update without recorder: %v", err)
	}
	if cfg, err = c.DebugConfig(); err != nil || cfg.SlowQuery != "250ms" {
		t.Fatalf("failed update mutated config: %+v %v", cfg, err)
	}

	// Disabling via "0s" works too.
	if updated, err = c.SetDebugConfig(server.DebugConfig{SlowQuery: "0s"}); err != nil || updated.SlowQuery != "0s" {
		t.Fatalf("disable: %+v %v", updated, err)
	}
}

// TestAnalyticsDisabled: with the plane off, the endpoints answer 404 and
// nothing is collected — but tracing and the rest of the API still work.
func TestAnalyticsDisabled(t *testing.T) {
	c := newTestServer(t, server.Config{Analytics: server.AnalyticsConfig{Disable: true}})
	sess, err := c.CreateSession(server.CreateSessionRequest{Dataset: "people", Budget: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(sess.ID, easyQuery); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Top("workload", 5); !isAPIError(err, 404, server.CodeNotFound) {
		t.Fatalf("top on disabled plane: %v", err)
	}
	if _, err := c.Timeseries(0); !isAPIError(err, 404, server.CodeNotFound) {
		t.Fatalf("timeseries on disabled plane: %v", err)
	}
	// EXPLAIN is an engine feature, not an analytics one: still available.
	if ex, err := c.Explain(sess.ID, easyQuery); err != nil || ex.Mechanism == "" {
		t.Fatalf("explain with analytics off: %+v %v", ex, err)
	}
	if _, err := c.Traces("", "", 0, 5); err != nil {
		t.Fatalf("traces with analytics off: %v", err)
	}
}

// TestFlightRecorderEndToEnd: a server wired with a recorder and an
// aggressive latency trigger captures a bundle when the threshold is
// crossed, and the runtime threshold update round-trips through
// /v1/debug/config.
func TestFlightRecorderEndToEnd(t *testing.T) {
	dir := t.TempDir()
	c := newTestServer(t, server.Config{
		Analytics: server.AnalyticsConfig{
			TimeseriesWindow:   64,
			TimeseriesInterval: 5 * time.Millisecond,
			Recorder: server.RecorderConfig{
				Dir:                dir,
				CPUProfileDuration: 5 * time.Millisecond,
				Cooldown:           time.Millisecond,
				P99Threshold:       time.Nanosecond, // any request breaches
			},
		},
	})
	cfg, err := c.DebugConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.RecorderDir != dir || cfg.RecorderP99 != "1ns" {
		t.Fatalf("recorder config = %+v", cfg)
	}

	sess, err := c.CreateSession(server.CreateSessionRequest{Dataset: "people", Budget: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(sess.ID, easyQuery); err != nil {
		t.Fatal(err)
	}
	// The sampler tick drives the recorder check; wait for a bundle.
	deadline := time.Now().Add(10 * time.Second)
	for {
		ents, _ := os.ReadDir(dir)
		if len(ents) > 0 {
			if !strings.HasPrefix(ents[0].Name(), "incident-") {
				t.Fatalf("unexpected bundle name %q", ents[0].Name())
			}
			if _, err := os.Stat(dir + "/" + ents[0].Name() + "/meta.json"); err == nil {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("no incident bundle captured")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Raise the thresholds at runtime and verify the round trip.
	qd := 100
	updated, err := c.SetDebugConfig(server.DebugConfig{RecorderP99: "10s", RecorderQueueDepth: &qd})
	if err != nil {
		t.Fatal(err)
	}
	if updated.RecorderP99 != "10s" || updated.RecorderQueueDepth == nil || *updated.RecorderQueueDepth != 100 {
		t.Fatalf("updated recorder config = %+v", updated)
	}
}
