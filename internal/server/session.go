package server

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/noise"
	"repro/internal/store"
)

// ErrPolicyDenied marks owner-policy refusals (budget cap, session limit),
// as opposed to malformed requests.
var ErrPolicyDenied = errors.New("server: owner policy denied")

// Session is one analyst's live interaction with one dataset. The engine
// inside is private to the session — budget isolation between analysts is
// structural, not policed.
type Session struct {
	ID      string
	Dataset string
	Created time.Time
	eng     *engine.Engine
	wal     *store.SessionLog // nil when the server runs without a store
}

// Engine exposes the session's privacy engine.
func (s *Session) Engine() *engine.Engine { return s.eng }

// LogPath returns the session's on-disk WAL path ("" for memory-only
// sessions) — the artifact the background scrubber cross-checks against
// the live transcript.
func (s *Session) LogPath() string {
	if s.wal == nil {
		return ""
	}
	return s.wal.Path()
}

// SessionManager creates, finds and closes sessions. Closing a session
// only forgets it; its transcript lives in the engine, so callers that
// need a final audit should fetch the transcript first.
type SessionManager struct {
	mu          sync.RWMutex
	sessions    map[string]*Session
	maxBudget   float64 // 0 means uncapped
	maxSessions int     // 0 means unlimited
	now         func() time.Time
	store       *store.Store // nil: sessions are memory-only
}

// NewSessionManager returns a manager enforcing the owner's per-session
// budget cap (0 = uncapped) and concurrent session limit (0 = unlimited).
func NewSessionManager(maxBudget float64, maxSessions int) *SessionManager {
	return &SessionManager{
		sessions:    make(map[string]*Session),
		maxBudget:   maxBudget,
		maxSessions: maxSessions,
		now:         time.Now,
	}
}

// AttachStore makes sessions durable: every new session gets a
// write-ahead log, and each engine commit is fsynced into it before the
// answer is released. Attach before serving traffic.
func (m *SessionManager) AttachStore(st *store.Store) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.store = st
}

// Create starts a session over ds with its own engine but the dataset's
// shared evaluation cache (one workload transformation and one noise-free
// scan per distinct workload across all of the dataset's sessions). seed
// drives the session's mechanism randomness — 0 draws an unpredictable
// seed, which is the only privacy-safe choice when the analyst is
// untrusted (an analyst who knows the seed can replay the noise and
// recover exact counts); fixed seeds exist for reproducible tests and
// experiments. reuse enables the §9 inferencer.
func (m *SessionManager) Create(datasetName string, ds *Dataset, budget float64, mode engine.Mode, seed int64, reuse bool) (*Session, error) {
	if m.maxBudget > 0 && budget > m.maxBudget {
		return nil, fmt.Errorf("%w: budget %g exceeds the owner's per-session cap %g", ErrPolicyDenied, budget, m.maxBudget)
	}
	if budget <= 0 {
		// engine.New enforces this too; checking up front keeps the
		// durable path from creating a WAL for a session that cannot be.
		return nil, fmt.Errorf("server: privacy budget must be positive, got %v", budget)
	}
	if seed == 0 {
		var err error
		if seed, err = randomSeed(); err != nil {
			return nil, err
		}
	}
	// Fail fast when saturated, before paying for engine construction;
	// the authoritative re-check below runs under the write lock.
	if m.maxSessions > 0 {
		m.mu.RLock()
		full := len(m.sessions) >= m.maxSessions
		m.mu.RUnlock()
		if full {
			return nil, fmt.Errorf("%w: session limit %d reached", ErrPolicyDenied, m.maxSessions)
		}
	}
	id, err := newSessionID()
	if err != nil {
		return nil, err
	}
	created := m.now()

	// Make the session durable before it exists: the WAL header is
	// fsynced first, so any session an analyst ever saw is recoverable.
	var wal *store.SessionLog
	var onCommit engine.CommitHook
	if m.store != nil {
		wal, err = m.store.CreateSessionLog(store.SessionMeta{
			ID:      id,
			Dataset: datasetName,
			Budget:  budget,
			Mode:    mode.String(),
			Reuse:   reuse,
			Created: created,
		})
		if err != nil {
			return nil, fmt.Errorf("server: session log: %w", err)
		}
		slog := wal
		onCommit = func(ctx context.Context, _ int, e engine.Entry) error { return slog.AppendEntry(ctx, e) }
	}
	abort := func() {
		if wal != nil {
			if derr := wal.Discard(); derr != nil {
				log.Printf("server: discard session log %s: %v", id, derr)
			}
		}
	}

	eng, err := engine.New(ds.Table, engine.Config{
		Budget:       budget,
		Mode:         mode,
		Rng:          noise.NewRand(seed),
		Reuse:        reuse,
		Transforms:   ds.Transforms,
		Translations: ds.Translations,
		OnCommit:     onCommit,
	})
	if err != nil {
		abort()
		return nil, err
	}
	s := &Session{ID: id, Dataset: datasetName, Created: created, eng: eng, wal: wal}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.maxSessions > 0 && len(m.sessions) >= m.maxSessions {
		abort()
		return nil, fmt.Errorf("%w: session limit %d reached", ErrPolicyDenied, m.maxSessions)
	}
	m.sessions[id] = s
	return s, nil
}

// Restore re-admits one recovered session: the transcript is replayed
// into a fresh engine (re-validating the Definition 6.1 invariant and
// re-deriving the spent budget), the session keeps its original id and
// creation time, and further commits append to the same log. The
// engine's randomness is freshly seeded — replaying the original seed
// would reuse noise the analyst has already observed. Recovered sessions
// bypass the owner's current budget/session caps: they were admitted
// under the policy in force when they were created.
func (m *SessionManager) Restore(ds *Dataset, rec *store.RecoveredSession) (*Session, error) {
	mode, err := engine.ParseMode(rec.Meta.Mode)
	if err != nil {
		return nil, fmt.Errorf("server: restore session %s: %w", rec.Meta.ID, err)
	}
	seed, err := randomSeed()
	if err != nil {
		return nil, err
	}
	eng, err := engine.Replay(ds.Table, engine.Config{
		Budget:       rec.Meta.Budget,
		Mode:         mode,
		Rng:          noise.NewRand(seed),
		Reuse:        rec.Meta.Reuse,
		Transforms:   ds.Transforms,
		Translations: ds.Translations,
		OnCommit:     func(ctx context.Context, _ int, e engine.Entry) error { return rec.Log.AppendEntry(ctx, e) },
	}, rec.Entries)
	if err != nil {
		return nil, fmt.Errorf("server: restore session %s: %w", rec.Meta.ID, err)
	}
	s := &Session{
		ID:      rec.Meta.ID,
		Dataset: rec.Meta.Dataset,
		Created: rec.Meta.Created,
		eng:     eng,
		wal:     rec.Log,
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.sessions[s.ID]; dup {
		return nil, fmt.Errorf("server: restore session %s: id already live", s.ID)
	}
	m.sessions[s.ID] = s
	return s, nil
}

// Get returns the session with the given id.
func (m *SessionManager) Get(id string) (*Session, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	s, ok := m.sessions[id]
	return s, ok
}

// Close forgets the session; it reports whether the id existed. A
// durable session's log is flushed and retired (kept on disk for audit
// but no longer restored at startup).
func (m *SessionManager) Close(id string) bool {
	m.mu.Lock()
	s, ok := m.sessions[id]
	delete(m.sessions, id)
	m.mu.Unlock()
	if !ok {
		return false
	}
	// Seal drains any in-flight ask (it waits on the engine lock) and
	// fails every later one with ErrSealed, so no commit can race the
	// log's retirement and the retired audit file misses nothing that
	// was charged.
	s.eng.Seal()
	if s.wal != nil {
		if err := s.wal.Finish(); err != nil {
			log.Printf("server: close session %s: %v", id, err)
		}
	}
	return true
}

// Shutdown flushes and closes every durable session's log, leaving the
// files in place for recovery on the next start. The graceful-shutdown
// path in cmd/apex-server calls it after the HTTP listener has drained,
// so no engine commits race the close.
func (m *SessionManager) Shutdown() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	var firstErr error
	for id, s := range m.sessions {
		if s.wal == nil {
			continue
		}
		if err := s.wal.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("server: flush session %s: %w", id, err)
		}
	}
	return firstErr
}

// ForDataset returns the live sessions over one dataset, ordered by
// creation time then id — the set the per-dataset budget audit view
// reconstructs its spend timeline from.
func (m *SessionManager) ForDataset(name string) []*Session {
	all := m.List()
	out := all[:0]
	for _, s := range all {
		if s.Dataset == name {
			out = append(out, s)
		}
	}
	return out
}

// List returns all live sessions ordered by creation time, then id.
func (m *SessionManager) List() []*Session {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Created.Equal(out[j].Created) {
			return out[i].Created.Before(out[j].Created)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// newSessionID returns a 16-hex-char random id.
func newSessionID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("server: session id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// randomSeed returns a nonzero cryptographically random seed.
func randomSeed() (int64, error) {
	for {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			return 0, fmt.Errorf("server: session seed: %w", err)
		}
		if s := int64(binary.LittleEndian.Uint64(b[:])); s != 0 {
			return s, nil
		}
	}
}
