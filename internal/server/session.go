package server

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/noise"
)

// ErrPolicyDenied marks owner-policy refusals (budget cap, session limit),
// as opposed to malformed requests.
var ErrPolicyDenied = errors.New("server: owner policy denied")

// Session is one analyst's live interaction with one dataset. The engine
// inside is private to the session — budget isolation between analysts is
// structural, not policed.
type Session struct {
	ID      string
	Dataset string
	Created time.Time
	eng     *engine.Engine
}

// Engine exposes the session's privacy engine.
func (s *Session) Engine() *engine.Engine { return s.eng }

// SessionManager creates, finds and closes sessions. Closing a session
// only forgets it; its transcript lives in the engine, so callers that
// need a final audit should fetch the transcript first.
type SessionManager struct {
	mu          sync.RWMutex
	sessions    map[string]*Session
	maxBudget   float64 // 0 means uncapped
	maxSessions int     // 0 means unlimited
	now         func() time.Time
}

// NewSessionManager returns a manager enforcing the owner's per-session
// budget cap (0 = uncapped) and concurrent session limit (0 = unlimited).
func NewSessionManager(maxBudget float64, maxSessions int) *SessionManager {
	return &SessionManager{
		sessions:    make(map[string]*Session),
		maxBudget:   maxBudget,
		maxSessions: maxSessions,
		now:         time.Now,
	}
}

// Create starts a session over ds with its own engine but the dataset's
// shared evaluation cache (one workload transformation and one noise-free
// scan per distinct workload across all of the dataset's sessions). seed
// drives the session's mechanism randomness — 0 draws an unpredictable
// seed, which is the only privacy-safe choice when the analyst is
// untrusted (an analyst who knows the seed can replay the noise and
// recover exact counts); fixed seeds exist for reproducible tests and
// experiments. reuse enables the §9 inferencer.
func (m *SessionManager) Create(datasetName string, ds *Dataset, budget float64, mode engine.Mode, seed int64, reuse bool) (*Session, error) {
	if m.maxBudget > 0 && budget > m.maxBudget {
		return nil, fmt.Errorf("%w: budget %g exceeds the owner's per-session cap %g", ErrPolicyDenied, budget, m.maxBudget)
	}
	if seed == 0 {
		var err error
		if seed, err = randomSeed(); err != nil {
			return nil, err
		}
	}
	// Fail fast when saturated, before paying for engine construction;
	// the authoritative re-check below runs under the write lock.
	if m.maxSessions > 0 {
		m.mu.RLock()
		full := len(m.sessions) >= m.maxSessions
		m.mu.RUnlock()
		if full {
			return nil, fmt.Errorf("%w: session limit %d reached", ErrPolicyDenied, m.maxSessions)
		}
	}
	eng, err := engine.New(ds.Table, engine.Config{
		Budget:     budget,
		Mode:       mode,
		Rng:        noise.NewRand(seed),
		Reuse:      reuse,
		Transforms: ds.Transforms,
	})
	if err != nil {
		return nil, err
	}
	id, err := newSessionID()
	if err != nil {
		return nil, err
	}
	s := &Session{ID: id, Dataset: datasetName, Created: m.now(), eng: eng}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.maxSessions > 0 && len(m.sessions) >= m.maxSessions {
		return nil, fmt.Errorf("%w: session limit %d reached", ErrPolicyDenied, m.maxSessions)
	}
	m.sessions[id] = s
	return s, nil
}

// Get returns the session with the given id.
func (m *SessionManager) Get(id string) (*Session, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	s, ok := m.sessions[id]
	return s, ok
}

// Close forgets the session; it reports whether the id existed.
func (m *SessionManager) Close(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.sessions[id]
	delete(m.sessions, id)
	return ok
}

// List returns all live sessions ordered by creation time, then id.
func (m *SessionManager) List() []*Session {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Created.Equal(out[j].Created) {
			return out[i].Created.Before(out[j].Created)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// newSessionID returns a 16-hex-char random id.
func newSessionID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("server: session id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// randomSeed returns a nonzero cryptographically random seed.
func randomSeed() (int64, error) {
	for {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			return 0, fmt.Errorf("server: session seed: %w", err)
		}
		if s := int64(binary.LittleEndian.Uint64(b[:])); s != 0 {
			return s, nil
		}
	}
}
