//go:build !linux

package server

// pageFaults is unavailable off Linux; the gauges read zero.
func pageFaults() (minor, major int64) { return 0, 0 }
