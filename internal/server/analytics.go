package server

import (
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/analytics"
	"repro/internal/obs"
	"repro/internal/query"
)

// AnalyticsConfig tunes the workload analytics plane (Config.Analytics):
// per-request cost attribution with top-K heavy hitters, the in-process
// time-series ring, and the anomaly flight recorder. The zero value
// enables attribution and the time series with defaults and leaves the
// flight recorder off (it needs a directory).
type AnalyticsConfig struct {
	// Disable turns the analytics plane off entirely (no collector, no
	// time series, no recorder). Attribution also requires tracing: with
	// Trace.Disable set there are no finished traces to attribute.
	Disable bool
	// TopK bounds the per-session and per-workload heavy-hitter
	// sketches; <= 0 means analytics.DefaultTopK.
	TopK int
	// TimeseriesWindow is the sample-ring size; <= 0 means
	// analytics.DefaultWindow (600 samples).
	TimeseriesWindow int
	// TimeseriesInterval is the sampler pace; <= 0 means 1s.
	TimeseriesInterval time.Duration
	// Recorder configures the anomaly flight recorder. Recorder.Dir
	// empty leaves the recorder disabled. The P99/QueueDepth/Traces
	// sources and Metrics are wired by the server.
	Recorder analytics.RecorderConfig
}

// RecorderConfig aliases the flight recorder's configuration so callers
// wiring Config.Analytics.Recorder need not import internal/analytics.
type RecorderConfig = analytics.RecorderConfig

// ExplainChoiceView is one applicable mechanism's translated cost in an
// EXPLAIN response.
type ExplainChoiceView struct {
	Mechanism    string  `json:"mechanism"`
	EpsilonLower float64 `json:"epsilon_lower"`
	EpsilonUpper float64 `json:"epsilon_upper"`
	Affordable   bool    `json:"affordable"`
}

// ExplainResponse is the body of POST /v1/sessions/{id}/explain: the
// engine's dry-run prediction for the query, with zero budget spend —
// no reservation, no charge, no transcript entry, no WAL frame.
type ExplainResponse struct {
	TraceID string `json:"trace_id,omitempty"`
	Dataset string `json:"dataset"`
	Session string `json:"session"`
	// Workload is the canonical workload's analytics ID — the key GET
	// /v1/debug/top?by=workload ranks by.
	Workload string `json:"workload"`
	// Storage is where the dataset's serving table lives: heap or mmap.
	Storage string `json:"storage"`

	// Denied predicts a budget denial; Mechanism/EpsilonLower/
	// EpsilonUpper describe the chosen strategy otherwise ("cache" with
	// zero ε on a predicted reuse hit).
	Denied       bool    `json:"denied"`
	Mechanism    string  `json:"mechanism,omitempty"`
	EpsilonLower float64 `json:"epsilon_lower"`
	EpsilonUpper float64 `json:"epsilon_upper"`
	ReuseHit     bool    `json:"reuse_hit"`

	// Cache status: whether the workload-transform cache and the shared
	// Monte-Carlo translation plane held this workload before the
	// explain ran (the explain itself warms both, like a real Prepare).
	TransformCacheHit bool `json:"transform_cache_hit"`
	TranslateCacheHit bool `json:"translate_cache_hit"`

	// Budget state the admission prediction was made against.
	Spent     float64 `json:"spent"`
	Remaining float64 `json:"remaining"`

	// Workload shape and predicted scan.
	Sensitivity        float64  `json:"sensitivity"`
	Partitions         int      `json:"partitions"`
	PlannedColumns     []string `json:"planned_columns,omitempty"`
	PredictedScanBytes int64    `json:"predicted_scan_bytes"`
	// ScanPlanExact is true when the prediction uses the columnar
	// accounting BatchStats uses (false for row-path workloads).
	ScanPlanExact bool `json:"scan_plan_exact"`

	Choices []ExplainChoiceView `json:"choices,omitempty"`
}

// handleExplain serves the dry-run EXPLAIN: it runs the engine's
// Prepare/translate path — hitting (and warming) the transform cache and
// the shared translation plane — but never reserves, executes, charges
// or logs anything.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessions.Get(r.PathValue("id"))
	if !ok {
		writeError(w, r, http.StatusNotFound, CodeNotFound, "unknown session")
		return
	}
	var req QueryRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	q, err := query.ParseLine(req.Query)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, CodeParseError, err.Error())
		return
	}
	if q == nil {
		writeError(w, r, http.StatusBadRequest, CodeParseError, "empty query")
		return
	}
	eng := sess.Engine()
	ex, err := eng.Explain(q)
	if err != nil {
		// Explain failures are analyst-input problems: validation,
		// unknown attributes, untransformable workloads.
		writeError(w, r, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	if tr := obs.FromContext(r.Context()); tr != nil {
		tr.Tag("dataset", sess.Dataset)
		tr.Tag("session", sess.ID)
		tr.Tag("query", truncateQuery(req.Query))
		tr.Tag("explain", "true")
	}
	storage := ""
	if ds, ok := s.registry.Dataset(sess.Dataset); ok {
		storage = ds.Mode.String()
	}
	cols := make([]string, 0, len(ex.PlannedColumns))
	schema := eng.Table().Schema()
	for _, pos := range ex.PlannedColumns {
		cols = append(cols, schema.Attr(pos).Name)
	}
	spent := eng.Spent()
	resp := ExplainResponse{
		TraceID:            obs.RequestID(r.Context()),
		Dataset:            sess.Dataset,
		Session:            sess.ID,
		Workload:           analytics.WorkloadID(ex.Key),
		Storage:            storage,
		Denied:             ex.Denied,
		Mechanism:          ex.Mechanism,
		EpsilonLower:       ex.EpsilonLower,
		EpsilonUpper:       ex.EpsilonUpper,
		ReuseHit:           ex.ReuseHit,
		TransformCacheHit:  ex.TransformCacheHit,
		TranslateCacheHit:  ex.TranslateCacheHit,
		Spent:              spent,
		Remaining:          ex.Remaining,
		Sensitivity:        ex.Sensitivity,
		Partitions:         ex.Partitions,
		PlannedColumns:     cols,
		PredictedScanBytes: ex.PredictedScanBytes,
		ScanPlanExact:      ex.ScanPlanExact,
	}
	for _, c := range ex.Choices {
		resp.Choices = append(resp.Choices, ExplainChoiceView{
			Mechanism:    c.Mechanism,
			EpsilonLower: c.EpsilonLower,
			EpsilonUpper: c.EpsilonUpper,
			Affordable:   c.Affordable,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// TopResponse is the body of GET /v1/debug/top.
type TopResponse struct {
	// By echoes the ranked dimension: dataset, session or workload.
	By      string               `json:"by"`
	Entries []analytics.TopEntry `json:"entries"`
}

// handleTop serves the cost heavy hitters. Params: ?by=workload (default;
// also dataset, session), ?k=10. Unknown or malformed parameters are
// structured 400s, never silently ignored.
func (s *Server) handleTop(w http.ResponseWriter, r *http.Request) {
	if s.analytics == nil {
		writeError(w, r, http.StatusNotFound, CodeNotFound, "analytics is disabled on this server")
		return
	}
	q := r.URL.Query()
	if !validParams(w, r, q, "by", "k") {
		return
	}
	by := q.Get("by")
	if by == "" {
		by = "workload"
	}
	k := 10
	if v := q.Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeError(w, r, http.StatusBadRequest, CodeBadRequest, "k must be a positive integer")
			return
		}
		k = n
	}
	entries, err := s.analytics.Top(by, k)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	if entries == nil {
		entries = []analytics.TopEntry{}
	}
	writeJSON(w, http.StatusOK, TopResponse{By: by, Entries: entries})
}

// TimeseriesResponse is the body of GET /v1/debug/timeseries.
type TimeseriesResponse struct {
	IntervalMS int64              `json:"interval_ms"`
	Samples    []analytics.Sample `json:"samples"`
}

// handleTimeseries serves the in-process history ring, oldest sample
// first. Params: ?n= caps the sample count (default: the whole window).
func (s *Server) handleTimeseries(w http.ResponseWriter, r *http.Request) {
	if s.timeseries == nil {
		writeError(w, r, http.StatusNotFound, CodeNotFound, "analytics is disabled on this server")
		return
	}
	q := r.URL.Query()
	if !validParams(w, r, q, "n") {
		return
	}
	n := 0
	if v := q.Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed <= 0 {
			writeError(w, r, http.StatusBadRequest, CodeBadRequest, "n must be a positive integer")
			return
		}
		n = parsed
	}
	writeJSON(w, http.StatusOK, TimeseriesResponse{
		IntervalMS: s.timeseries.Interval().Milliseconds(),
		Samples:    s.timeseries.Snapshot(n),
	})
}

// DebugConfig is the runtime-adjustable observability policy served (GET)
// and updated (PUT) at /v1/debug/config. Durations use Go syntax
// ("250ms"); PUT bodies may set any subset — absent fields keep their
// value. A zero duration/threshold disables the corresponding trigger.
type DebugConfig struct {
	// SlowQuery is the slow-query log threshold ("0s" = log disabled).
	SlowQuery string `json:"slow_query"`
	// RecorderP99 is the flight recorder's p99 total-latency trigger.
	RecorderP99 string `json:"recorder_p99,omitempty"`
	// RecorderQueueDepth is the flight recorder's queue-depth trigger.
	RecorderQueueDepth *int `json:"recorder_queue_depth,omitempty"`
	// RecorderDir reports the bundle directory (GET only; "" = recorder
	// disabled).
	RecorderDir string `json:"recorder_dir,omitempty"`
}

func (s *Server) debugConfig() DebugConfig {
	cfg := DebugConfig{SlowQuery: s.tracer.SlowThreshold().String()}
	if s.recorder != nil {
		p99, qd := s.recorder.Thresholds()
		cfg.RecorderP99 = p99.String()
		cfg.RecorderQueueDepth = &qd
		cfg.RecorderDir = s.recorder.Dir()
	}
	return cfg
}

// handleDebugConfig serves and adjusts the runtime observability knobs:
// the slow-query threshold and the flight-recorder triggers, so an
// operator chasing an incident never needs a restart.
func (s *Server) handleDebugConfig(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet {
		writeJSON(w, http.StatusOK, s.debugConfig())
		return
	}
	var req DebugConfig
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.SlowQuery != "" {
		d, err := time.ParseDuration(req.SlowQuery)
		if err != nil || d < 0 {
			writeError(w, r, http.StatusBadRequest, CodeBadRequest,
				"slow_query must be a nonnegative Go duration (e.g. 250ms; 0s disables)")
			return
		}
		if s.tracer == nil {
			writeError(w, r, http.StatusBadRequest, CodeBadRequest, "tracing is disabled on this server")
			return
		}
		s.tracer.SetSlowThreshold(d)
	}
	if req.RecorderP99 != "" || req.RecorderQueueDepth != nil {
		if s.recorder == nil {
			writeError(w, r, http.StatusBadRequest, CodeBadRequest,
				"flight recorder is disabled on this server (no incident directory configured)")
			return
		}
		p99, qd := s.recorder.Thresholds()
		if req.RecorderP99 != "" {
			d, err := time.ParseDuration(req.RecorderP99)
			if err != nil || d < 0 {
				writeError(w, r, http.StatusBadRequest, CodeBadRequest,
					"recorder_p99 must be a nonnegative Go duration (0s disables the trigger)")
				return
			}
			p99 = d
		}
		if req.RecorderQueueDepth != nil {
			if *req.RecorderQueueDepth < 0 {
				writeError(w, r, http.StatusBadRequest, CodeBadRequest,
					"recorder_queue_depth must be nonnegative (0 disables the trigger)")
				return
			}
			qd = *req.RecorderQueueDepth
		}
		s.recorder.SetThresholds(p99, qd)
	}
	writeJSON(w, http.StatusOK, s.debugConfig())
}

// validParams rejects query parameters outside the allowed set with a
// structured 400 carrying the trace ID — a typo like ?mindur= must fail
// loudly, not silently return unfiltered data.
func validParams(w http.ResponseWriter, r *http.Request, q url.Values, allowed ...string) bool {
	for name := range q {
		known := false
		for _, a := range allowed {
			if name == a {
				known = true
				break
			}
		}
		if !known {
			writeError(w, r, http.StatusBadRequest, CodeBadRequest,
				fmt.Sprintf("unknown query parameter %q (supported: %v)", name, allowed))
			return false
		}
	}
	return true
}

// maxQueueDepth reports the deepest per-dataset queue — the flight
// recorder's congestion signal.
func (s *Server) maxQueueDepth() int {
	max := 0
	for _, name := range s.registry.Names() {
		if d := s.sched.QueueDepth(name); d > max {
			max = d
		}
	}
	return max
}
