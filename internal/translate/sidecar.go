package translate

// The translation sidecar is the durable half of the plane: every
// computed plan — key, strategy shape, canonical seed and the sorted
// normalized samples — is framed into one file beside the dataset's
// catalog entry, so a restarted server re-reads ~80 KB per workload
// instead of re-sampling for ~9 ms.
//
// Format (all little-endian):
//
//	header  : magic "APEXTRAN" | u32 version (=1)
//	frame   : u32 payloadLen | u32 crc32c(payload) | payload
//	payload : u32 keyLen | key
//	          u8  stratLen | strat
//	          u32 samples | u64 seed
//	          u32 L (workload length) | u32 rows (strategy-matrix rows)
//	          f64 SensA | f64 FrobR
//	          u32 nzs | nzs × f64 zs (sorted)
//
// Floats are raw IEEE-754 bits, so a loaded plan is bit-identical to
// the computed one — the differential tests depend on that. The CRC is
// crc32.Castagnoli, the same polynomial the WAL frames use. Writes are
// temp-file-then-rename with directory fsync, so a crash mid-write
// leaves the previous sidecar intact; a sidecar that fails validation
// on load keeps its valid frame prefix, is renamed aside with the
// store's quarantine suffix for the operator, and is immediately
// rewritten from the surviving plans.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
)

const (
	sidecarMagic   = "APEXTRAN"
	sidecarVersion = 1
	// sidecarQuarantineSuffix matches store.QuarantineSuffix: corrupt
	// artifacts are renamed aside, never deleted.
	sidecarQuarantineSuffix = ".quarantined"
	// maxSidecarFrame bounds one frame at decode time so a corrupt
	// length field cannot ask for gigabytes.
	maxSidecarFrame = 64 << 20
)

// crcTable is the Castagnoli table, matching the WAL's framing.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// storedPlan is a plan as persisted: everything but the in-memory
// workload/strategy handles, which are re-attached on promotion.
type storedPlan struct {
	key     string
	strat   string
	samples int
	seed    int64
	l       int // workload length L
	rows    int // strategy-matrix rows l
	sensA   float64
	frobR   float64
	zs      []float64
}

// encodeStoredPlan appends one framed plan to buf.
func encodeStoredPlan(buf []byte, s *storedPlan) []byte {
	payload := make([]byte, 0, 4+len(s.key)+1+len(s.strat)+4+8+4+4+8+8+4+8*len(s.zs))
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(s.key)))
	payload = append(payload, s.key...)
	payload = append(payload, byte(len(s.strat)))
	payload = append(payload, s.strat...)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(s.samples))
	payload = binary.LittleEndian.AppendUint64(payload, uint64(s.seed))
	payload = binary.LittleEndian.AppendUint32(payload, uint32(s.l))
	payload = binary.LittleEndian.AppendUint32(payload, uint32(s.rows))
	payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(s.sensA))
	payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(s.frobR))
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(s.zs)))
	for _, z := range s.zs {
		payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(z))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, crcTable))
	return append(buf, payload...)
}

// decodeStoredPlan parses one payload; it validates internal lengths so
// a CRC-valid frame from a future incompatible version fails cleanly.
func decodeStoredPlan(p []byte) (*storedPlan, error) {
	u32 := func() (uint32, error) {
		if len(p) < 4 {
			return 0, fmt.Errorf("translate: truncated payload")
		}
		v := binary.LittleEndian.Uint32(p)
		p = p[4:]
		return v, nil
	}
	u64 := func() (uint64, error) {
		if len(p) < 8 {
			return 0, fmt.Errorf("translate: truncated payload")
		}
		v := binary.LittleEndian.Uint64(p)
		p = p[8:]
		return v, nil
	}
	keyLen, err := u32()
	if err != nil {
		return nil, err
	}
	if int(keyLen) > len(p) {
		return nil, fmt.Errorf("translate: key overruns payload")
	}
	s := &storedPlan{key: string(p[:keyLen])}
	p = p[keyLen:]
	if len(p) < 1 {
		return nil, fmt.Errorf("translate: truncated payload")
	}
	stratLen := int(p[0])
	p = p[1:]
	if stratLen > len(p) {
		return nil, fmt.Errorf("translate: strategy name overruns payload")
	}
	s.strat = string(p[:stratLen])
	p = p[stratLen:]
	samples, err := u32()
	if err != nil {
		return nil, err
	}
	s.samples = int(samples)
	seed, err := u64()
	if err != nil {
		return nil, err
	}
	s.seed = int64(seed)
	l, err := u32()
	if err != nil {
		return nil, err
	}
	s.l = int(l)
	rows, err := u32()
	if err != nil {
		return nil, err
	}
	s.rows = int(rows)
	sa, err := u64()
	if err != nil {
		return nil, err
	}
	s.sensA = math.Float64frombits(sa)
	fr, err := u64()
	if err != nil {
		return nil, err
	}
	s.frobR = math.Float64frombits(fr)
	nzs, err := u32()
	if err != nil {
		return nil, err
	}
	if int(nzs) != s.samples {
		return nil, fmt.Errorf("translate: %d samples framed, header says %d", nzs, s.samples)
	}
	if len(p) != 8*int(nzs) {
		return nil, fmt.Errorf("translate: sample block is %d bytes, want %d", len(p), 8*int(nzs))
	}
	s.zs = make([]float64, nzs)
	for i := range s.zs {
		s.zs[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[8*i:]))
	}
	return s, nil
}

// decodeSidecar parses a whole sidecar. It returns every plan from the
// valid frame prefix plus corrupt=true if anything after that prefix is
// damaged (bad magic, bad CRC, truncation, undecodable payload).
func decodeSidecar(data []byte) (plans []*storedPlan, corrupt bool) {
	if len(data) < len(sidecarMagic)+4 ||
		string(data[:len(sidecarMagic)]) != sidecarMagic ||
		binary.LittleEndian.Uint32(data[len(sidecarMagic):]) != sidecarVersion {
		return nil, true
	}
	p := data[len(sidecarMagic)+4:]
	for len(p) > 0 {
		if len(p) < 8 {
			return plans, true
		}
		n := binary.LittleEndian.Uint32(p)
		crc := binary.LittleEndian.Uint32(p[4:])
		p = p[8:]
		if n > maxSidecarFrame || int(n) > len(p) {
			return plans, true
		}
		payload := p[:n]
		p = p[n:]
		if crc32.Checksum(payload, crcTable) != crc {
			return plans, true
		}
		s, err := decodeStoredPlan(payload)
		if err != nil {
			return plans, true
		}
		plans = append(plans, s)
	}
	return plans, false
}

// VerifySidecar checks the framing and every CRC of the sidecar at path
// without touching any cache state — the background scrubber's sidecar
// check. A missing file is healthy (datasets translate lazily); a file
// whose suffix is damaged reports plans as the surviving valid-prefix
// count and corrupt=true. Healing is the cache's job: LoadSidecar
// quarantines and rewrites from the valid prefix.
func VerifySidecar(path string) (plans int, corrupt bool, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, fmt.Errorf("translate: read sidecar: %w", err)
	}
	decoded, corrupt := decodeSidecar(data)
	return len(decoded), corrupt, nil
}

// persist rewrites the sidecar from the cache's current content. It is
// best-effort: a failed write costs only restart cheapness (counted in
// PersistFailures), never a translation.
func (c *Cache) persist() {
	if c.path == "" {
		return
	}
	c.persistMu.Lock()
	defer c.persistMu.Unlock()

	c.mu.Lock()
	plans := make([]*storedPlan, 0, len(c.entries)+len(c.stored))
	for _, e := range c.entries {
		select {
		case <-e.done:
			if e.err == nil && e.plan != nil {
				plans = append(plans, planToStored(e.plan))
			}
		default: // in flight; its own completion will persist again
		}
	}
	for _, s := range c.stored {
		plans = append(plans, s)
	}
	c.mu.Unlock()

	// Deterministic order: byte-identical cache content yields a
	// byte-identical sidecar.
	sort.Slice(plans, func(i, j int) bool {
		a, b := plans[i], plans[j]
		if a.key != b.key {
			return a.key < b.key
		}
		if a.strat != b.strat {
			return a.strat < b.strat
		}
		return a.samples < b.samples
	})

	buf := make([]byte, 0, 1024)
	buf = append(buf, sidecarMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, sidecarVersion)
	for _, s := range plans {
		buf = encodeStoredPlan(buf, s)
	}
	if err := atomicWriteFile(c.path, buf); err != nil {
		c.persistFails.Add(1)
	}
}

// LoadSidecar reads the persisted plans back into the cache (the
// recovery path). Plans land in the stored set and are promoted to live
// entries on first ask, so loading never pays a pseudoinverse. A corrupt
// sidecar is quarantined — renamed aside with the catalog's quarantine
// suffix — and immediately rewritten from its valid frame prefix; the
// quarantined path is returned for logging.
func (c *Cache) LoadSidecar() (loaded int, quarantined string, err error) {
	if c.path == "" {
		return 0, "", nil
	}
	data, err := os.ReadFile(c.path)
	if os.IsNotExist(err) {
		return 0, "", nil
	}
	if err != nil {
		return 0, "", fmt.Errorf("translate: read sidecar: %w", err)
	}
	plans, corrupt := decodeSidecar(data)
	c.mu.Lock()
	for _, s := range plans {
		c.stored[planKey{workload: s.key, strat: s.strat, samples: s.samples}] = s
	}
	c.mu.Unlock()
	c.loads.Add(int64(len(plans)))
	if !corrupt {
		return len(plans), "", nil
	}
	quarantined = c.path + sidecarQuarantineSuffix
	// A leftover quarantine from an earlier life is replaced, matching
	// the segment quarantine policy: newest corrupt artifact wins.
	if rerr := os.Rename(c.path, quarantined); rerr != nil {
		return len(plans), "", fmt.Errorf("translate: quarantine sidecar: %w", rerr)
	}
	_ = syncDir(filepath.Dir(c.path))
	c.rebuilds.Add(1)
	c.persist() // rebuild immediately from the valid prefix
	return len(plans), quarantined, nil
}

// planToStored strips a live plan to its persistable fields.
func planToStored(p *Plan) *storedPlan {
	return &storedPlan{
		key:     p.Key,
		strat:   p.Strategy,
		samples: p.Samples,
		seed:    p.Seed,
		l:       p.l,
		rows:    p.rows,
		sensA:   p.SensA,
		frobR:   p.FrobR,
		zs:      p.Zs,
	}
}

// atomicWriteFile writes data to path via a same-directory temp file,
// fsync, rename, directory fsync — the catalog's durability discipline.
func atomicWriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+"-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed file survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}
