// Package translate is the shared, persistent, batch-vectorized
// Monte-Carlo translation plane behind the strategy mechanism (the
// paper's Algorithm 3 / estimateBeta).
//
// Translating a workload counting query to a privacy cost requires the
// distribution of the reconstruction error ‖W·A⁺·Lap(1)^l‖∞, which has
// no closed form; APEx estimates it from N sorted Monte-Carlo samples
// ("zs"). The key observation this package exploits: those samples
// depend only on (workload, strategy, N) — not on the accuracy knobs
// (α, β) and not on the asking session — so they are a per-dataset
// asset, not a per-session one:
//
//   - Cache: plans are kept in a TranslationCache keyed by the canonical
//     workload key (workload.Key) × strategy × sample count, shared by
//     every session of a dataset. Concurrent fresh askers singleflight:
//     one pays the sampling, the rest wait on the same entry.
//   - Vectorize: sampling draws the Laplace matrix block by block, each
//     block from its own canonically-derived stream (noise.SplitSeed),
//     and fans the blocks across GOMAXPROCS. Every workload in a
//     TranslateBatch group with the same strategy shape shares the drawn
//     sample blocks — one sample matrix, many workloads — and the
//     per-sample dot products keep the exact accumulation order of the
//     sequential path, so results are bit-identical no matter how the
//     blocks were scheduled.
//   - Persist: computed plans are framed into a CRC-checksummed sidecar
//     file next to the dataset's catalog entry, written atomically and
//     reloaded on recovery, so a restart re-reads ~80 KB per workload
//     instead of re-sampling for ~9 ms. A corrupt sidecar is quarantined
//     (renamed aside for the operator) and rebuilt from its valid
//     prefix.
//
// Seeds are canonical: the sampler's seed is a hash of (strategy, N,
// strategy-matrix rows), never of session state or cache arrival order.
// The same workload therefore translates to the bit-identical ε in any
// session, any process life, any translation order — the property the
// regression and differential tests pin down. The workload key is
// deliberately NOT part of the seed: the normalized samples are
// workload-independent by construction (only the reconstruction matrix
// R differs), and a key-dependent seed would preclude sharing one
// sample matrix across the fresh workloads of a batch.
//
// Sharing plans is privacy-neutral: translation reads only the public
// schema and the workload, never the data.
package translate

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/linalg"
	"repro/internal/noise"
	"repro/internal/strategy"
	"repro/internal/workload"
)

// DefaultSamples mirrors the paper's N = 10000 (the strategy mechanism's
// default Monte-Carlo sample count).
const DefaultSamples = 10000

// sampleBlock is the sampling granularity: each block of samples is
// drawn from its own SplitSeed stream, making the full sample matrix a
// pure function of the canonical seed regardless of worker scheduling.
const sampleBlock = 256

// maxEntries bounds the distinct plans one cache retains (an analyst can
// mint fresh workload keys by varying predicate constants; each plan
// holds N float64 samples). Reaching the bound drops the cache wholesale
// — plans held by in-flight queries stay valid, repeats recompute once —
// and the sidecar is rewritten to the surviving content on the next
// persist.
const maxEntries = 256

// Plan is one workload's translation state: the sorted normalized error
// samples plus the scalars the ε binary search reads. The reconstruction
// matrices themselves are rebuilt lazily (Reconstruction) so a
// sidecar-loaded plan can serve translations in microseconds without
// paying the pseudoinverse until a mechanism actually runs.
type Plan struct {
	// Key is the canonical workload key (workload.Key).
	Key string
	// Strategy is the strategy family name (strategy.Strategy.Name).
	Strategy string
	// Samples is the Monte-Carlo sample count N.
	Samples int
	// Seed is the canonical sampler seed (SampleSeed).
	Seed int64
	// SensA is ‖A‖₁, the strategy sensitivity.
	SensA float64
	// FrobR is ‖R‖_F, the Frobenius norm of the reconstruction matrix —
	// the Theorem A.1 upper bound for the ε search starts from it.
	FrobR float64
	// Zs are the N draws of ‖R·Lap(1)^l‖∞, sorted ascending.
	Zs []float64

	l    int // workload length L (number of predicates)
	rows int // strategy-matrix rows (the Laplace vector length)

	tr      *workload.Transformed
	strat   strategy.Strategy
	recOnce sync.Once
	rec     *strategy.Reconstruction
	recErr  error
}

// Reconstruction returns the plan's strategy reconstruction (A, R),
// building it on first use for plans that came back from a sidecar. A
// rebuilt reconstruction is fingerprint-checked against the persisted
// scalars; a mismatch (a stale sidecar from an incompatible code
// version) fails loudly rather than running a mechanism against samples
// it does not match.
func (p *Plan) Reconstruction() (*strategy.Reconstruction, error) {
	p.recOnce.Do(func() {
		if p.rec != nil {
			return
		}
		rec, err := strategy.NewReconstruction(p.tr.Matrix(), p.strat)
		if err != nil {
			p.recErr = fmt.Errorf("translate: rebuild reconstruction: %w", err)
			return
		}
		if rec.SensA != p.SensA || rec.A.Rows() != p.rows || rec.R.FrobeniusNorm() != p.FrobR {
			p.recErr = fmt.Errorf("translate: persisted plan for workload does not match the reconstruction (stale sidecar?)")
			return
		}
		p.rec = rec
	})
	return p.rec, p.recErr
}

// Item names one translation to warm: the workload's transformation plus
// the strategy shape it will be translated under.
type Item struct {
	Tr       *workload.Transformed
	Strategy strategy.Strategy
	Samples  int
}

// Source supplies translation plans. The strategy mechanism reads
// through one; Cache is the shared, persistent implementation.
type Source interface {
	// Plan returns (computing at most once per key across concurrent
	// callers) the translation plan for the workload.
	Plan(tr *workload.Transformed, strat strategy.Strategy, samples int) (*Plan, error)
	// Ready reports whether any plan for the canonical workload key is
	// already available without sampling. Advisory, for observability.
	Ready(key string) bool
	// TranslateBatch warms the plans for a batch of workloads in one
	// fanned-out sampling pass, sharing drawn sample blocks across
	// same-shape workloads. It returns the number of freshly computed
	// plans; already-cached items cost nothing.
	TranslateBatch(items []Item) int
}

// planKey identifies one plan within a cache.
type planKey struct {
	workload string
	strat    string
	samples  int
}

// entry is one singleflight slot: done closes when plan/err are final.
type entry struct {
	done chan struct{}
	plan *Plan
	err  error
}

// Stats snapshots a cache's lifetime counters.
type Stats struct {
	// Hits counts translations served from the cache (including callers
	// that waited on another asker's in-flight computation and plans
	// promoted from the persisted sidecar).
	Hits int64
	// Misses counts fresh Monte-Carlo computations.
	Misses int64
	// Loads counts plans loaded from the sidecar at recovery.
	Loads int64
	// Rebuilds counts corrupt sidecars quarantined and rebuilt.
	Rebuilds int64
	// PersistFailures counts sidecar writes that failed (the plan is
	// still served from memory; only restart cheapness is lost).
	PersistFailures int64
}

// Cache is the shared, persistent TranslationCache: one per dataset on
// the server (every session reads through it), or one private to a
// mechanism in library use. The zero path means memory-only.
type Cache struct {
	mu      sync.Mutex
	schema  *dataset.Schema
	entries map[planKey]*entry
	stored  map[planKey]*storedPlan

	path      string
	persistMu sync.Mutex

	hits, misses, loads, rebuilds, persistFails atomic.Int64
}

// NewCache returns an empty cache. A non-empty sidecarPath makes it
// persistent: computed plans are framed into that file (atomically,
// temp-and-rename) and LoadSidecar reads them back on recovery.
func NewCache(sidecarPath string) *Cache {
	return &Cache{
		entries: make(map[planKey]*entry),
		stored:  make(map[planKey]*storedPlan),
		path:    sidecarPath,
	}
}

// Stats returns the cache's lifetime counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:            c.hits.Load(),
		Misses:          c.misses.Load(),
		Loads:           c.loads.Load(),
		Rebuilds:        c.rebuilds.Load(),
		PersistFailures: c.persistFails.Load(),
	}
}

// Len returns the number of resident plans (computed or in flight),
// excluding sidecar entries not yet asked for.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Ready implements Source.
func (c *Cache) Ready(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k := range c.stored {
		if k.workload == key {
			return true
		}
	}
	for k, e := range c.entries {
		if k.workload != key {
			continue
		}
		select {
		case <-e.done:
			return true
		default:
		}
	}
	return false
}

// bindSchema enforces one cache per dataset: plans bake in the domain
// partitioning, so sharing a cache across schemas would serve plans for
// the wrong table layout. Caller holds c.mu.
func (c *Cache) bindSchema(s *dataset.Schema) error {
	if c.schema == nil {
		c.schema = s
		return nil
	}
	if c.schema != s {
		return fmt.Errorf("translate: cache is bound to another schema (one translation cache per dataset)")
	}
	return nil
}

// Plan implements Source: the singleflight lookup-or-compute path.
func (c *Cache) Plan(tr *workload.Transformed, strat strategy.Strategy, samples int) (*Plan, error) {
	if !tr.Materialized() {
		return nil, fmt.Errorf("translate: workload transformation is implicit (no query matrix)")
	}
	k := planKey{workload: tr.CanonicalKey(), strat: strat.Name(), samples: samples}
	c.mu.Lock()
	if err := c.bindSchema(tr.Schema()); err != nil {
		c.mu.Unlock()
		return nil, err
	}
	if e, ok := c.entries[k]; ok {
		c.mu.Unlock()
		<-e.done
		c.hits.Add(1)
		return e.plan, e.err
	}
	if s, ok := c.stored[k]; ok && s.l == tr.L() {
		delete(c.stored, k)
		e := &entry{done: closedChan, plan: s.promote(tr, strat)}
		c.entries[k] = e
		c.mu.Unlock()
		c.hits.Add(1)
		return e.plan, nil
	}
	e := c.claimLocked(k)
	c.mu.Unlock()
	c.misses.Add(1)
	e.plan, e.err = computePlan(tr, strat, samples)
	close(e.done)
	if e.err == nil {
		c.persist()
	}
	return e.plan, e.err
}

// claimLocked inserts a fresh in-flight entry, resetting the cache
// wholesale at the retention bound. Caller holds c.mu.
func (c *Cache) claimLocked(k planKey) *entry {
	if len(c.entries) >= maxEntries {
		c.entries = make(map[planKey]*entry)
		c.stored = make(map[planKey]*storedPlan)
	}
	e := &entry{done: make(chan struct{})}
	c.entries[k] = e
	return e
}

// TranslateBatch implements Source: every fresh workload in the batch is
// sampled in one fanned-out pass, with same-shape workloads (same
// strategy, N and strategy-matrix rows) sharing the drawn sample blocks.
func (c *Cache) TranslateBatch(items []Item) int {
	// Claim pass: dedupe, skip cached, promote stored, claim the rest.
	type claim struct {
		k    planKey
		it   Item
		e    *entry
		rec  *strategy.Reconstruction
		seed int64
	}
	var claims []claim
	c.mu.Lock()
	seen := make(map[planKey]bool, len(items))
	for _, it := range items {
		if it.Tr == nil || !it.Tr.Materialized() {
			continue
		}
		if err := c.bindSchema(it.Tr.Schema()); err != nil {
			continue // wrong wiring; the solo path will fail loudly
		}
		k := planKey{workload: it.Tr.CanonicalKey(), strat: it.Strategy.Name(), samples: it.Samples}
		if seen[k] {
			continue
		}
		seen[k] = true
		if _, ok := c.entries[k]; ok {
			continue
		}
		if s, ok := c.stored[k]; ok && s.l == it.Tr.L() {
			delete(c.stored, k)
			c.entries[k] = &entry{done: closedChan, plan: s.promote(it.Tr, it.Strategy)}
			continue
		}
		claims = append(claims, claim{k: k, it: it, e: c.claimLocked(k)})
	}
	c.mu.Unlock()
	if len(claims) == 0 {
		return 0
	}
	c.misses.Add(int64(len(claims)))

	// Reconstruction pass: the pseudoinverses, fanned across CPUs.
	var wg sync.WaitGroup
	sem := make(chan struct{}, max(1, runtime.GOMAXPROCS(0)))
	errs := make([]error, len(claims))
	for i := range claims {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			cl := &claims[i]
			rec, err := strategy.NewReconstruction(cl.it.Tr.Matrix(), cl.it.Strategy)
			if err != nil {
				errs[i] = fmt.Errorf("translate: %w", err)
				return
			}
			cl.rec = rec
			cl.seed = SampleSeed(cl.k.strat, cl.k.samples, rec.A.Rows())
		}(i)
	}
	wg.Wait()

	// Sampling pass: group by shape so one sample matrix serves every
	// workload in the group, then finish each claimed entry.
	type shape struct {
		strat   string
		samples int
		rows    int
	}
	groups := make(map[shape][]*claim)
	for i := range claims {
		cl := &claims[i]
		if errs[i] != nil {
			cl.e.err = errs[i]
			close(cl.e.done)
			continue
		}
		sh := shape{strat: cl.k.strat, samples: cl.k.samples, rows: cl.rec.A.Rows()}
		groups[sh] = append(groups[sh], cl)
	}
	computed := 0
	for sh, g := range groups {
		rs := make([]*linalg.Matrix, len(g))
		for i, cl := range g {
			rs[i] = cl.rec.R
		}
		zss := sampleNorms(rs, sh.rows, sh.samples, g[0].seed)
		for i, cl := range g {
			zs := zss[i]
			sort.Float64s(zs)
			cl.e.plan = &Plan{
				Key:      cl.k.workload,
				Strategy: cl.k.strat,
				Samples:  cl.k.samples,
				Seed:     cl.seed,
				SensA:    cl.rec.SensA,
				FrobR:    cl.rec.R.FrobeniusNorm(),
				Zs:       zs,
				l:        cl.it.Tr.L(),
				rows:     sh.rows,
				tr:       cl.it.Tr,
				strat:    cl.it.Strategy,
				rec:      cl.rec,
			}
			close(cl.e.done)
			computed++
		}
	}
	if computed > 0 {
		c.persist()
	}
	return computed
}

// computePlan builds one plan from scratch: reconstruction, canonical
// seed, one (blocked, parallel) sampling pass, sort.
func computePlan(tr *workload.Transformed, strat strategy.Strategy, samples int) (*Plan, error) {
	rec, err := strategy.NewReconstruction(tr.Matrix(), strat)
	if err != nil {
		return nil, fmt.Errorf("translate: %w", err)
	}
	seed := SampleSeed(strat.Name(), samples, rec.A.Rows())
	zs := sampleNorms([]*linalg.Matrix{rec.R}, rec.A.Rows(), samples, seed)[0]
	sort.Float64s(zs)
	return &Plan{
		Key:      tr.CanonicalKey(),
		Strategy: strat.Name(),
		Samples:  samples,
		Seed:     seed,
		SensA:    rec.SensA,
		FrobR:    rec.R.FrobeniusNorm(),
		Zs:       zs,
		l:        tr.L(),
		rows:     rec.A.Rows(),
		tr:       tr,
		strat:    strat,
		rec:      rec,
	}, nil
}

// SampleSeed derives the canonical Monte-Carlo seed for a strategy shape:
// a hash of (strategy name, sample count, strategy-matrix rows). It is
// deliberately independent of the asking session, of translation arrival
// order, and of the workload key (see the package comment), so the same
// workload always sees the same samples and same-shape workloads can
// share one sample matrix.
func SampleSeed(strat string, samples, rows int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "apex/translate/v1\x00%s\x00%d\x00%d", strat, samples, rows)
	return int64(h.Sum64())
}

// sampleNorms draws n normalized error samples for every reconstruction
// matrix in rs (all with rows columns = the Laplace vector length l):
// zs[w][i] = ‖rs[w]·Lap(1)^l‖∞. Samples are drawn in blocks, each block
// from its own SplitSeed(seed, block) stream, and the blocks are fanned
// across GOMAXPROCS — so the result is a pure function of (rs, n, seed),
// bit-identical to a sequential evaluation, while every matrix in the
// group reuses each drawn Laplace vector (one sample matrix, many
// workloads).
func sampleNorms(rs []*linalg.Matrix, rows, n int, seed int64) [][]float64 {
	out := make([][]float64, len(rs))
	for i := range out {
		out[i] = make([]float64, n)
	}
	if n == 0 || len(rs) == 0 {
		return out
	}
	blocks := (n + sampleBlock - 1) / sampleBlock
	run := func(b int) {
		rng := noise.NewRand(noise.SplitSeed(seed, int64(b)))
		eta := make([]float64, rows)
		lo := b * sampleBlock
		hi := min(lo+sampleBlock, n)
		for i := lo; i < hi; i++ {
			noise.LaplaceVecInto(rng, 1, eta)
			for w, r := range rs {
				z, err := r.MulVecLInf(eta)
				if err != nil {
					// Shapes are fixed by the caller's grouping; a
					// mismatch is a programming error.
					panic(fmt.Sprintf("translate: sample norm: %v", err))
				}
				out[w][i] = z
			}
		}
	}
	if nw := min(runtime.GOMAXPROCS(0), blocks); nw > 1 {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					b := int(next.Add(1)) - 1
					if b >= blocks {
						return
					}
					run(b)
				}
			}()
		}
		wg.Wait()
	} else {
		for b := 0; b < blocks; b++ {
			run(b)
		}
	}
	return out
}

// promote turns a stored plan into a servable one by attaching the
// asking workload's handles; the reconstruction stays lazy, so a
// sidecar-loaded plan serves translations without a pseudoinverse.
func (s *storedPlan) promote(tr *workload.Transformed, strat strategy.Strategy) *Plan {
	return &Plan{
		Key:      s.key,
		Strategy: s.strat,
		Samples:  s.samples,
		Seed:     s.seed,
		SensA:    s.sensA,
		FrobR:    s.frobR,
		Zs:       s.zs,
		l:        s.l,
		rows:     s.rows,
		tr:       tr,
		strat:    strat,
	}
}

// closedChan is a pre-closed done channel for entries that are born
// final (sidecar promotions).
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()
