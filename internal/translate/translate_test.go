package translate

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/strategy"
	"repro/internal/workload"
)

// fixture holds one schema and a helper to transform histogram workloads
// over it. All workloads from one fixture share the schema pointer, as
// the server's per-dataset wiring guarantees.
type fixture struct {
	schema *dataset.Schema
}

func newFixture(t *testing.T, domain float64) *fixture {
	t.Helper()
	s := dataset.MustSchema(
		dataset.Attribute{Name: "v", Kind: dataset.Continuous, Min: 0, Max: domain},
	)
	return &fixture{schema: s}
}

// histogram transforms a bins-bucket histogram workload over [0, bins·width).
func (f *fixture) histogram(t *testing.T, bins int, width float64) *workload.Transformed {
	t.Helper()
	preds, err := workload.Histogram1D("v", 0, width*float64(bins), width)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.Transform(f.schema, preds, workload.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// prefix transforms a prefix-sums workload (sensitivity L under identity).
func (f *fixture) prefix(t *testing.T, bins int, width float64) *workload.Transformed {
	t.Helper()
	preds, err := workload.Prefix1D("v", 0, width*float64(bins), width)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.Transform(f.schema, preds, workload.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func sameFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] { // bit-identical, not approximately equal
			return false
		}
	}
	return true
}

// TestPlanDeterministicAcrossCaches: two independent caches (two "process
// lives") must compute bit-identical samples for the same workload.
func TestPlanDeterministicAcrossCaches(t *testing.T) {
	f := newFixture(t, 80)
	p1, err := NewCache("").Plan(f.histogram(t, 8, 10), strategy.H2, 500)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewCache("").Plan(f.histogram(t, 8, 10), strategy.H2, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !sameFloats(p1.Zs, p2.Zs) {
		t.Fatal("same workload, fresh caches: samples must be bit-identical")
	}
	if p1.Seed != p2.Seed || p1.SensA != p2.SensA || p1.FrobR != p2.FrobR {
		t.Fatalf("plan scalars diverged: %+v vs %+v", p1, p2)
	}
}

// TestPlanOrderIndependent: the samples a workload sees must not depend
// on how many plans the cache computed before it (the old sampler seeded
// with len(cache)+1 and broke exactly this).
func TestPlanOrderIndependent(t *testing.T) {
	f := newFixture(t, 80)
	mk := func() (*workload.Transformed, *workload.Transformed) {
		return f.histogram(t, 8, 10), f.prefix(t, 8, 10)
	}

	cAB := NewCache("")
	h1, p1 := mk()
	planA1, err := cAB.Plan(h1, strategy.H2, 400)
	if err != nil {
		t.Fatal(err)
	}
	planB1, err := cAB.Plan(p1, strategy.H2, 400)
	if err != nil {
		t.Fatal(err)
	}

	cBA := NewCache("")
	h2, p2 := mk()
	planB2, err := cBA.Plan(p2, strategy.H2, 400)
	if err != nil {
		t.Fatal(err)
	}
	planA2, err := cBA.Plan(h2, strategy.H2, 400)
	if err != nil {
		t.Fatal(err)
	}

	if !sameFloats(planA1.Zs, planA2.Zs) {
		t.Fatal("histogram samples depend on translation order")
	}
	if !sameFloats(planB1.Zs, planB2.Zs) {
		t.Fatal("prefix samples depend on translation order")
	}
}

// TestBatchMatchesSolo: a batch-vectorized translation (one shared sample
// matrix for the group) must be bit-identical to translating each
// workload alone in a fresh cache.
func TestBatchMatchesSolo(t *testing.T) {
	f := newFixture(t, 80)
	hist := f.histogram(t, 8, 10)
	pref := f.prefix(t, 8, 10)

	batch := NewCache("")
	// Same strategy shape (H2 over 8 partitions): one sample matrix for both.
	n := batch.TranslateBatch([]Item{
		{Tr: hist, Strategy: strategy.H2, Samples: 300},
		{Tr: pref, Strategy: strategy.H2, Samples: 300},
	})
	if n != 2 {
		t.Fatalf("TranslateBatch computed %d plans, want 2", n)
	}
	bh, err := batch.Plan(hist, strategy.H2, 300)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := batch.Plan(pref, strategy.H2, 300)
	if err != nil {
		t.Fatal(err)
	}
	if got := batch.Stats(); got.Misses != 2 || got.Hits != 2 {
		t.Fatalf("stats after batch+2 asks: %+v, want 2 misses 2 hits", got)
	}

	sh, err := NewCache("").Plan(f.histogram(t, 8, 10), strategy.H2, 300)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewCache("").Plan(f.prefix(t, 8, 10), strategy.H2, 300)
	if err != nil {
		t.Fatal(err)
	}
	if !sameFloats(bh.Zs, sh.Zs) {
		t.Fatal("batched histogram samples differ from the solo path")
	}
	if !sameFloats(bp.Zs, sp.Zs) {
		t.Fatal("batched prefix samples differ from the solo path")
	}

	// Re-batching is free: everything is cached.
	if n := batch.TranslateBatch([]Item{
		{Tr: hist, Strategy: strategy.H2, Samples: 300},
		{Tr: pref, Strategy: strategy.H2, Samples: 300},
	}); n != 0 {
		t.Fatalf("second TranslateBatch computed %d plans, want 0", n)
	}
}

// TestSingleflight: concurrent askers of one fresh workload must share a
// single Monte-Carlo computation.
func TestSingleflight(t *testing.T) {
	f := newFixture(t, 80)
	tr := f.histogram(t, 8, 10)
	c := NewCache("")

	const askers = 16
	plans := make([]*Plan, askers)
	var wg sync.WaitGroup
	for i := 0; i < askers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := c.Plan(tr, strategy.H2, 1000)
			if err != nil {
				t.Error(err)
				return
			}
			plans[i] = p
		}(i)
	}
	wg.Wait()

	st := c.Stats()
	if st.Misses != 1 {
		t.Fatalf("%d askers paid %d computations, want 1", askers, st.Misses)
	}
	if st.Hits != askers-1 {
		t.Fatalf("hits = %d, want %d", st.Hits, askers-1)
	}
	for i := 1; i < askers; i++ {
		if plans[i] != plans[0] {
			t.Fatal("askers must share one plan instance")
		}
	}
}

// TestSidecarRoundtrip: persist, reload in a fresh cache, serve the plan
// bit-identically — and the lazily rebuilt reconstruction must pass its
// fingerprint check.
func TestSidecarRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "translate.tc")
	f := newFixture(t, 80)

	c1 := NewCache(path)
	orig, err := c1.Plan(f.histogram(t, 8, 10), strategy.H2, 600)
	if err != nil {
		t.Fatal(err)
	}

	c2 := NewCache(path)
	loaded, quarantined, err := c2.LoadSidecar()
	if err != nil {
		t.Fatal(err)
	}
	if quarantined != "" {
		t.Fatalf("healthy sidecar quarantined: %s", quarantined)
	}
	if loaded != 1 {
		t.Fatalf("loaded %d plans, want 1", loaded)
	}
	tr := f.histogram(t, 8, 10)
	got, err := c2.Plan(tr, strategy.H2, 600)
	if err != nil {
		t.Fatal(err)
	}
	if !sameFloats(got.Zs, orig.Zs) {
		t.Fatal("sidecar-loaded samples differ from the computed ones")
	}
	if got.Seed != orig.Seed || got.SensA != orig.SensA || got.FrobR != orig.FrobR {
		t.Fatal("sidecar-loaded scalars differ from the computed ones")
	}
	st := c2.Stats()
	if st.Misses != 0 || st.Hits != 1 || st.Loads != 1 {
		t.Fatalf("stats after sidecar serve: %+v, want 0 misses 1 hit 1 load", st)
	}
	if _, err := got.Reconstruction(); err != nil {
		t.Fatalf("rebuilt reconstruction failed its fingerprint check: %v", err)
	}
}

// TestSidecarCorruptionQuarantinesAndRebuilds: a bit flip in the last
// frame must keep the valid prefix, rename the damaged file aside, and
// rewrite a clean sidecar.
func TestSidecarCorruptionQuarantinesAndRebuilds(t *testing.T) {
	path := filepath.Join(t.TempDir(), "translate.tc")
	f := newFixture(t, 80)

	hist := f.histogram(t, 4, 10)
	pref := f.prefix(t, 4, 10)
	c1 := NewCache(path)
	origHist, err := c1.Plan(hist, strategy.H2, 200)
	if err != nil {
		t.Fatal(err)
	}
	origPref, err := c1.Plan(pref, strategy.H2, 200)
	if err != nil {
		t.Fatal(err)
	}

	// Flip one bit inside the last frame's sample block; the first frame
	// (whichever plan sorts first in the file) stays valid.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-9] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	c2 := NewCache(path)
	loaded, quarantined, err := c2.LoadSidecar()
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 1 {
		t.Fatalf("loaded %d plans from the valid prefix, want 1", loaded)
	}
	if quarantined == "" {
		t.Fatal("corrupt sidecar was not quarantined")
	}
	if _, err := os.Stat(quarantined); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	if st := c2.Stats(); st.Rebuilds != 1 {
		t.Fatalf("rebuilds = %d, want 1", st.Rebuilds)
	}

	// The rebuilt sidecar is clean and holds exactly the valid prefix.
	c3 := NewCache(path)
	loaded, quarantined, err = c3.LoadSidecar()
	if err != nil {
		t.Fatal(err)
	}
	if quarantined != "" || loaded != 1 {
		t.Fatalf("rebuilt sidecar: loaded=%d quarantined=%q, want 1 clean plan", loaded, quarantined)
	}

	// The surviving plan serves without resampling; the damaged one is
	// recomputed to bit-identical samples (canonical seeds).
	survivor, origSurvivor := hist, origHist
	if !c2.Ready(hist.CanonicalKey()) {
		survivor, origSurvivor = pref, origPref
	}
	got, err := c2.Plan(survivor, strategy.H2, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !sameFloats(got.Zs, origSurvivor.Zs) {
		t.Fatal("surviving plan's samples changed across quarantine")
	}
	if st := c2.Stats(); st.Misses != 0 {
		t.Fatalf("surviving plan was recomputed (misses=%d)", st.Misses)
	}
	victim, origVictim := pref, origPref
	if survivor == pref {
		victim, origVictim = hist, origHist
	}
	regot, err := c2.Plan(victim, strategy.H2, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !sameFloats(regot.Zs, origVictim.Zs) {
		t.Fatal("recomputed plan's samples differ from the pre-corruption ones")
	}
}

// TestReady tracks the advisory availability probe through the plan
// lifecycle: absent → computed → sidecar-loaded.
func TestReady(t *testing.T) {
	path := filepath.Join(t.TempDir(), "translate.tc")
	f := newFixture(t, 80)
	tr := f.histogram(t, 8, 10)

	c := NewCache(path)
	if c.Ready(tr.CanonicalKey()) {
		t.Fatal("empty cache reports ready")
	}
	if _, err := c.Plan(tr, strategy.H2, 100); err != nil {
		t.Fatal(err)
	}
	if !c.Ready(tr.CanonicalKey()) {
		t.Fatal("computed plan not reported ready")
	}

	c2 := NewCache(path)
	if _, _, err := c2.LoadSidecar(); err != nil {
		t.Fatal(err)
	}
	if !c2.Ready(tr.CanonicalKey()) {
		t.Fatal("sidecar-loaded plan not reported ready")
	}
}

// TestCacheCapResets: crossing maxEntries drops the cache wholesale
// rather than growing without bound.
func TestCacheCapResets(t *testing.T) {
	f := newFixture(t, 1e6)
	c := NewCache("")
	for i := 0; i < maxEntries+1; i++ {
		// Distinct predicate constants mint distinct workload keys.
		tr := f.histogram(t, 2, float64(i+1))
		if _, err := c.Plan(tr, strategy.Identity{}, 8); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.Len(); n > maxEntries {
		t.Fatalf("cache grew to %d entries, cap is %d", n, maxEntries)
	}
	if n := c.Len(); n != 1 {
		t.Fatalf("cache holds %d entries after wholesale reset, want 1", n)
	}
}

// TestSchemaBinding: one cache serves one dataset; a workload from a
// different schema is refused.
func TestSchemaBinding(t *testing.T) {
	f1 := newFixture(t, 80)
	f2 := newFixture(t, 80)
	c := NewCache("")
	if _, err := c.Plan(f1.histogram(t, 4, 10), strategy.H2, 50); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Plan(f2.histogram(t, 4, 10), strategy.H2, 50); err == nil {
		t.Fatal("cache accepted a workload from a foreign schema")
	}
}

// TestImplicitWorkloadRefused: plans need the materialized query matrix.
func TestImplicitWorkloadRefused(t *testing.T) {
	attrs := make([]dataset.Attribute, 30)
	preds := make([]dataset.Predicate, 30)
	for i := range attrs {
		name := fmt.Sprintf("a%02d", i)
		attrs[i] = dataset.Attribute{Name: name, Kind: dataset.Continuous, Min: 0, Max: 1}
		preds[i] = dataset.NumCmp{Attr: name, Op: dataset.Gt, C: 0.5}
	}
	s := dataset.MustSchema(attrs...)
	tr, err := workload.Transform(s, preds, workload.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Materialized() {
		t.Fatal("fixture should be implicit")
	}
	if _, err := NewCache("").Plan(tr, strategy.H2, 50); err == nil {
		t.Fatal("implicit workload must be refused")
	}
}

// TestSampleSeedCanonical pins the seed derivation: shape-dependent,
// workload- and order-independent.
func TestSampleSeedCanonical(t *testing.T) {
	a := SampleSeed("h2", 1000, 15)
	if b := SampleSeed("h2", 1000, 15); a != b {
		t.Fatal("seed is not a pure function of its inputs")
	}
	if b := SampleSeed("identity", 1000, 15); a == b {
		t.Fatal("seed ignores the strategy")
	}
	if b := SampleSeed("h2", 2000, 15); a == b {
		t.Fatal("seed ignores the sample count")
	}
	if b := SampleSeed("h2", 1000, 31); a == b {
		t.Fatal("seed ignores the matrix rows")
	}
}
