package engine

import (
	"errors"
	"math"
	"testing"

	"repro/internal/accuracy"
	"repro/internal/dataset"
	"repro/internal/mechanism"
	"repro/internal/noise"
	"repro/internal/query"
	"repro/internal/strategy"
	"repro/internal/workload"
)

func testTable(t *testing.T, counts []int) *dataset.Table {
	t.Helper()
	s := dataset.MustSchema(
		dataset.Attribute{Name: "v", Kind: dataset.Continuous, Min: 0, Max: 10 * float64(len(counts))},
	)
	tab := dataset.NewTable(s)
	for bin, n := range counts {
		for i := 0; i < n; i++ {
			tab.MustAppend(dataset.Tuple{dataset.Num(10*float64(bin) + 5)})
		}
	}
	return tab
}

func histQuery(t *testing.T, bins int, req accuracy.Requirement) *query.Query {
	t.Helper()
	preds, err := workload.Histogram1D("v", 0, 10*float64(bins), 10)
	if err != nil {
		t.Fatal(err)
	}
	q, err := query.NewWCQ(preds, req)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func newEngine(t *testing.T, d *dataset.Table, budget float64, mode Mode) *Engine {
	t.Helper()
	e, err := New(d, Config{
		Budget: budget,
		Mode:   mode,
		Rng:    noise.NewRand(11),
		Mechanisms: []mechanism.Mechanism{
			mechanism.LM{},
			mechanism.NewSM(strategy.H2, 500, 1),
			mechanism.MPM{},
			mechanism.LTM{},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Config{Budget: 1}); err == nil {
		t.Fatal("nil table must error")
	}
	if _, err := New(testTable(t, []int{1}), Config{Budget: 0}); err == nil {
		t.Fatal("zero budget must error")
	}
	if _, err := New(testTable(t, []int{1}), Config{Budget: -1}); err == nil {
		t.Fatal("negative budget must error")
	}
}

func TestAskAnswersWCQ(t *testing.T) {
	d := testTable(t, []int{100, 200, 300, 400})
	e := newEngine(t, d, 10, Optimistic)
	q := histQuery(t, 4, accuracy.Requirement{Alpha: 40, Beta: 0.05})
	ans, err := e.Ask(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Counts) != 4 {
		t.Fatalf("counts = %v", ans.Counts)
	}
	if ans.Epsilon <= 0 {
		t.Fatal("epsilon must be positive")
	}
	if e.Spent() != ans.Epsilon {
		t.Fatalf("spent %v != answer eps %v", e.Spent(), ans.Epsilon)
	}
	if ans.Mechanism == "" {
		t.Fatal("mechanism name missing")
	}
}

func TestBudgetAccountingAcrossQueries(t *testing.T) {
	d := testTable(t, []int{100, 200})
	e := newEngine(t, d, 5, Optimistic)
	q := histQuery(t, 2, accuracy.Requirement{Alpha: 30, Beta: 0.05})
	var total float64
	for i := 0; i < 3; i++ {
		ans, err := e.Ask(q)
		if err != nil {
			t.Fatal(err)
		}
		total += ans.Epsilon
	}
	if math.Abs(e.Spent()-total) > 1e-12 {
		t.Fatalf("spent %v, sum of answers %v", e.Spent(), total)
	}
	if math.Abs(e.Remaining()-(5-total)) > 1e-12 {
		t.Fatalf("remaining %v", e.Remaining())
	}
}

func TestQueryDenied(t *testing.T) {
	d := testTable(t, []int{100, 200})
	e := newEngine(t, d, 0.0001, Optimistic) // tiny budget
	q := histQuery(t, 2, accuracy.Requirement{Alpha: 5, Beta: 0.001})
	_, err := e.Ask(q)
	if !errors.Is(err, ErrDenied) {
		t.Fatalf("want ErrDenied, got %v", err)
	}
	if e.Spent() != 0 {
		t.Fatal("denial must not consume budget")
	}
	tr := e.Transcript()
	if len(tr) != 1 || !tr[0].Denied {
		t.Fatalf("transcript = %+v", tr)
	}
}

// TestBudgetNeverExceeded is the §6 validity invariant: issue queries until
// denial; the cumulative actual loss must never exceed B, and every
// answered query's worst case must have fit at the time.
func TestBudgetNeverExceeded(t *testing.T) {
	d := testTable(t, []int{100, 200, 300})
	budget := 2.0
	e := newEngine(t, d, budget, Optimistic)
	q := histQuery(t, 3, accuracy.Requirement{Alpha: 20, Beta: 0.01})
	for i := 0; i < 100; i++ {
		_, err := e.Ask(q)
		if errors.Is(err, ErrDenied) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if e.Spent() > budget+1e-9 {
			t.Fatalf("budget exceeded: %v > %v", e.Spent(), budget)
		}
	}
	// After denial, asking again still denies and still spends nothing extra.
	before := e.Spent()
	if _, err := e.Ask(q); !errors.Is(err, ErrDenied) {
		t.Fatal("expected continued denial")
	}
	if e.Spent() != before {
		t.Fatal("denied query consumed budget")
	}
}

func TestEngineChoosesCheapestMechanism(t *testing.T) {
	// Prefix workload: SM-h2 must beat LM, and the engine must pick it.
	d := testTable(t, make([]int, 32))
	e := newEngine(t, d, 100, Pessimistic)
	preds, err := workload.Prefix1D("v", 0, 320, 10)
	if err != nil {
		t.Fatal(err)
	}
	q, err := query.NewWCQ(preds, accuracy.Requirement{Alpha: 30, Beta: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	ans, err := e.Ask(q)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Mechanism != "SM-h2" {
		t.Fatalf("engine picked %s for a prefix workload, want SM-h2", ans.Mechanism)
	}
}

func TestEngineChoosesLMForFlatHistogram(t *testing.T) {
	// Disjoint histogram with sensitivity 1: LM is cheaper than SM-h2.
	d := testTable(t, make([]int, 32))
	e := newEngine(t, d, 100, Pessimistic)
	q := histQuery(t, 32, accuracy.Requirement{Alpha: 30, Beta: 0.05})
	ans, err := e.Ask(q)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Mechanism != "LM" {
		t.Fatalf("engine picked %s for a flat histogram, want LM", ans.Mechanism)
	}
}

func TestOptimisticPrefersMPMWorstCaseAllowing(t *testing.T) {
	// For ICQ, MPM's lower bound (εmax/m) undercuts LM's fixed cost, so
	// optimistic mode picks MPM while pessimistic mode picks LM.
	d := testTable(t, []int{1000, 0})
	reqr := accuracy.Requirement{Alpha: 10, Beta: 0.05}
	preds, err := workload.Histogram1D("v", 0, 20, 10)
	if err != nil {
		t.Fatal(err)
	}
	q, err := query.NewICQ(preds, 100, reqr)
	if err != nil {
		t.Fatal(err)
	}

	eOpt := newEngine(t, d, 100, Optimistic)
	ansOpt, err := eOpt.Ask(q)
	if err != nil {
		t.Fatal(err)
	}
	if ansOpt.Mechanism != "MPM" {
		t.Fatalf("optimistic picked %s, want MPM", ansOpt.Mechanism)
	}

	ePes := newEngine(t, d, 100, Pessimistic)
	ansPes, err := ePes.Ask(q)
	if err != nil {
		t.Fatal(err)
	}
	if ansPes.Mechanism == "MPM" {
		t.Fatalf("pessimistic picked MPM whose upper bound is largest")
	}
}

func TestActualLossBelowUpperSavesBudget(t *testing.T) {
	// MPM with counts far from the threshold stops early: the charge must
	// be below the reserved upper bound.
	d := testTable(t, []int{1000, 0})
	e := newEngine(t, d, 100, Optimistic)
	preds, err := workload.Histogram1D("v", 0, 20, 10)
	if err != nil {
		t.Fatal(err)
	}
	q, err := query.NewICQ(preds, 100, accuracy.Requirement{Alpha: 10, Beta: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	ans, err := e.Ask(q)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Epsilon >= ans.EpsilonUpper {
		t.Fatalf("expected early stop: actual %v, upper %v", ans.Epsilon, ans.EpsilonUpper)
	}
	if math.Abs(e.Spent()-ans.Epsilon) > 1e-12 {
		t.Fatal("engine must charge the actual loss, not the upper bound")
	}
}

func TestTCQUsesChepestOfLMAndLTM(t *testing.T) {
	d := testTable(t, []int{500, 400, 300, 200, 100, 50, 40, 30, 20, 10})
	e := newEngine(t, d, 1000, Pessimistic)
	preds, err := workload.Histogram1D("v", 0, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	q, err := query.NewTCQ(preds, 3, accuracy.Requirement{Alpha: 50, Beta: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	ans, err := e.Ask(q)
	if err != nil {
		t.Fatal(err)
	}
	// Sensitivity 1, k=3: LM pays ln-union ~ ln(L/β)/α, LTM pays 2k·ln(L/2β)/α.
	// For these parameters LM is cheaper; verify the engine agrees with the
	// direct translation comparison.
	choices, err := e.Translations(q)
	if err != nil {
		t.Fatal(err)
	}
	bestName, bestEps := "", math.Inf(1)
	for _, c := range choices {
		if c.Cost.Upper < bestEps {
			bestEps, bestName = c.Cost.Upper, c.Mechanism.Name()
		}
	}
	if ans.Mechanism != bestName {
		t.Fatalf("engine picked %s, cheapest is %s", ans.Mechanism, bestName)
	}
}

func TestTranscriptRecordsEverything(t *testing.T) {
	d := testTable(t, []int{100, 200})
	e := newEngine(t, d, 10, Optimistic)
	q := histQuery(t, 2, accuracy.Requirement{Alpha: 30, Beta: 0.05})
	if _, err := e.Ask(q); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ask(q); err != nil {
		t.Fatal(err)
	}
	log := e.Transcript()
	if len(log) != 2 {
		t.Fatalf("transcript length %d", len(log))
	}
	var sum float64
	for _, entry := range log {
		if entry.Denied || entry.Answer == nil {
			t.Fatalf("unexpected denial in %+v", entry)
		}
		sum += entry.Epsilon
	}
	if math.Abs(sum-e.Spent()) > 1e-12 {
		t.Fatal("transcript epsilons must sum to spent budget")
	}
}

func TestAnswerSelectedPredicates(t *testing.T) {
	d := testTable(t, []int{500, 0})
	e := newEngine(t, d, 100, Pessimistic)
	preds, err := workload.Histogram1D("v", 0, 20, 10)
	if err != nil {
		t.Fatal(err)
	}
	q, err := query.NewICQ(preds, 100, accuracy.Requirement{Alpha: 20, Beta: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	ans, err := e.Ask(q)
	if err != nil {
		t.Fatal(err)
	}
	sel := ans.SelectedPredicates()
	if len(sel) != 1 || sel[0].String() != "v∈[0,10)" {
		t.Fatalf("selected = %v", sel)
	}
}

func TestInvalidQueryRejectedWithoutCharge(t *testing.T) {
	d := testTable(t, []int{1})
	e := newEngine(t, d, 10, Optimistic)
	q := &query.Query{Kind: query.WCQ, Req: accuracy.Requirement{Alpha: 1, Beta: 0.5}}
	if _, err := e.Ask(q); err == nil {
		t.Fatal("empty workload must error")
	}
	if e.Spent() != 0 {
		t.Fatal("invalid query must not charge")
	}
}

func TestModeString(t *testing.T) {
	if Optimistic.String() != "optimistic" || Pessimistic.String() != "pessimistic" {
		t.Fatal("mode strings")
	}
}

func TestTranslationsListsAllApplicable(t *testing.T) {
	d := testTable(t, []int{100, 200})
	e := newEngine(t, d, 10, Optimistic)
	preds, err := workload.Histogram1D("v", 0, 20, 10)
	if err != nil {
		t.Fatal(err)
	}
	q, err := query.NewICQ(preds, 100, accuracy.Requirement{Alpha: 20, Beta: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	choices, err := e.Translations(q)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, c := range choices {
		names[c.Mechanism.Name()] = true
	}
	for _, want := range []string{"LM", "SM-h2", "MPM"} {
		if !names[want] {
			t.Errorf("missing %s in ICQ translations: %v", want, names)
		}
	}
	if names["LTM"] {
		t.Error("LTM must not apply to ICQ")
	}
}

func TestValidateTranscript(t *testing.T) {
	d := testTable(t, []int{100, 200})
	e := newEngine(t, d, 1.0, Optimistic)
	q := histQuery(t, 2, accuracy.Requirement{Alpha: 30, Beta: 0.05})
	for i := 0; i < 50; i++ {
		if _, err := e.Ask(q); err != nil {
			break
		}
	}
	spent, err := ValidateTranscript(e.Transcript(), e.Budget())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(spent-e.Spent()) > 1e-12 {
		t.Fatalf("validated spent %v != engine spent %v", spent, e.Spent())
	}
	// Corrupted transcripts are rejected.
	bad := e.Transcript()
	if len(bad) > 0 {
		bad[0].Epsilon = -1
		if _, err := ValidateTranscript(bad, e.Budget()); err == nil {
			t.Fatal("negative epsilon must fail validation")
		}
	}
	forged := []Entry{{Denied: true, Epsilon: 0.5}}
	if _, err := ValidateTranscript(forged, 1); err == nil {
		t.Fatal("charging a denial must fail validation")
	}
	over := []Entry{{Epsilon: 2, Answer: &Answer{Epsilon: 2, EpsilonUpper: 2}}}
	if _, err := ValidateTranscript(over, 1); err == nil {
		t.Fatal("over-budget transcript must fail validation")
	}
}
