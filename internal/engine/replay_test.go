package engine_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/accuracy"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/query"
)

// replayTable builds a small deterministic table over (age, state).
func replayTable(t *testing.T, n int) *dataset.Table {
	t.Helper()
	s := dataset.MustSchema(
		dataset.Attribute{Name: "age", Kind: dataset.Continuous, Min: 0, Max: 100},
		dataset.Attribute{Name: "state", Kind: dataset.Categorical, Values: []string{"CA", "NY", "TX"}},
	)
	tb := dataset.NewTable(s)
	states := []string{"CA", "NY", "TX"}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		tb.Append(dataset.Tuple{dataset.Num(float64(rng.Intn(100))), dataset.Str(states[rng.Intn(3)])})
	}
	return tb
}

func replayWCQ(t *testing.T, alpha float64) *query.Query {
	t.Helper()
	q, err := query.NewWCQ(
		[]dataset.Predicate{
			dataset.Range{Attr: "age", Lo: 0, Hi: 50},
			dataset.Range{Attr: "age", Lo: 50, Hi: 100},
		},
		accuracy.Requirement{Alpha: alpha, Beta: 0.05},
	)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestEntryCodecRoundTrip(t *testing.T) {
	tb := replayTable(t, 300)
	eng, err := engine.New(tb, engine.Config{Budget: 5, Mode: engine.Optimistic, Rng: rand.New(rand.NewSource(3))})
	if err != nil {
		t.Fatal(err)
	}
	// Produce a varied transcript: answers, an ICQ, a TCQ, an external
	// charge, an external denial, and a budget denial.
	if _, err := eng.Ask(replayWCQ(t, 50)); err != nil {
		t.Fatal(err)
	}
	icq, err := query.NewICQ([]dataset.Predicate{
		dataset.StrEq{Attr: "state", Val: "CA"},
		dataset.StrEq{Attr: "state", Val: "NY"},
		dataset.StrEq{Attr: "state", Val: "TX"},
	}, 50, accuracy.Requirement{Alpha: 40, Beta: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Ask(icq); err != nil {
		t.Fatal(err)
	}
	tcq, err := query.NewTCQ([]dataset.Predicate{
		dataset.And{dataset.Range{Attr: "age", Lo: 0, Hi: 30}, dataset.StrEq{Attr: "state", Val: "CA"}},
		dataset.Not{P: dataset.IsNull{Attr: "age"}},
	}, 1, accuracy.Requirement{Alpha: 60, Beta: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Ask(tcq); err != nil {
		t.Fatal(err)
	}
	if err := eng.ChargeExternal(0.2, 0.15, "SUM(age)"); err != nil {
		t.Fatal(err)
	}
	if err := eng.ChargeExternal(1000, 0, "SUM(huge)"); !errors.Is(err, engine.ErrDenied) {
		t.Fatalf("external denial: %v", err)
	}
	if _, err := eng.Ask(replayWCQ(t, 0.001)); !errors.Is(err, engine.ErrDenied) {
		t.Fatalf("budget denial: %v", err)
	}

	entries := eng.Transcript()
	for i, e := range entries {
		b, err := engine.EncodeEntry(e)
		if err != nil {
			t.Fatalf("encode entry %d: %v", i, err)
		}
		got, err := engine.DecodeEntry(b)
		if err != nil {
			t.Fatalf("decode entry %d: %v", i, err)
		}
		// The wire transcript renders from these fields; compare the
		// rendered forms plus the raw numeric payloads.
		if (got.Query == nil) != (e.Query == nil) {
			t.Fatalf("entry %d: query presence changed", i)
		}
		if e.Query != nil && got.Query.String() != e.Query.String() {
			t.Fatalf("entry %d: query rendering changed:\n  %s\n  %s", i, e.Query, got.Query)
		}
		if got.Label != e.Label || got.Denied != e.Denied || got.Epsilon != e.Epsilon {
			t.Fatalf("entry %d: scalar fields changed: %+v vs %+v", i, got, e)
		}
		if (got.Answer == nil) != (e.Answer == nil) {
			t.Fatalf("entry %d: answer presence changed", i)
		}
		if e.Answer != nil {
			if !reflect.DeepEqual(got.Answer.Counts, e.Answer.Counts) ||
				!reflect.DeepEqual(got.Answer.Selected, e.Answer.Selected) ||
				got.Answer.Epsilon != e.Answer.Epsilon ||
				got.Answer.EpsilonUpper != e.Answer.EpsilonUpper ||
				got.Answer.Mechanism != e.Answer.Mechanism {
				t.Fatalf("entry %d: answer changed:\n  %+v\n  %+v", i, got.Answer, e.Answer)
			}
			if len(got.Answer.Predicates) != len(e.Answer.Predicates) {
				t.Fatalf("entry %d: answer predicates lost", i)
			}
		}
	}
}

func TestEntryCodecRejectsFuncPredicates(t *testing.T) {
	q, err := query.NewWCQ(
		[]dataset.Predicate{dataset.Func{Name: "f", Fn: func(*dataset.Schema, dataset.Tuple) bool { return true }}},
		accuracy.Requirement{Alpha: 10, Beta: 0.1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.EncodeEntry(engine.Entry{Query: q}); err == nil {
		t.Fatal("encoded a Func predicate; want error")
	}
}

func TestCommitHookOrderingAndPersistFailure(t *testing.T) {
	tb := replayTable(t, 300)
	var seen []int
	fail := false
	eng, err := engine.New(tb, engine.Config{
		Budget: 5,
		Rng:    rand.New(rand.NewSource(3)),
		OnCommit: func(_ context.Context, n int, e engine.Entry) error {
			if fail {
				return fmt.Errorf("disk on fire")
			}
			seen = append(seen, n)
			if _, err := engine.EncodeEntry(e); err != nil {
				return err
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Ask(replayWCQ(t, 50)); err != nil {
		t.Fatal(err)
	}
	if err := eng.ChargeExternal(0.1, 0.1, "SUM(age)"); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seen, []int{0, 1}) {
		t.Fatalf("commit sequence = %v", seen)
	}

	// A failing hook withholds the answer but keeps the charge: spending
	// must never be under-accounted relative to what reached the analyst.
	fail = true
	before := eng.Spent()
	_, err = eng.Ask(replayWCQ(t, 40))
	if !errors.Is(err, engine.ErrPersist) {
		t.Fatalf("persist failure: %v", err)
	}
	if eng.Spent() <= before {
		t.Fatalf("spent did not increase after withheld answer: %v -> %v", before, eng.Spent())
	}
	if eng.TranscriptLen() != 3 {
		t.Fatalf("transcript len = %d, want 3 (entry kept)", eng.TranscriptLen())
	}
}

func TestSealStopsInteractions(t *testing.T) {
	tb := replayTable(t, 300)
	var commits int
	eng, err := engine.New(tb, engine.Config{
		Budget:   5,
		Rng:      rand.New(rand.NewSource(3)),
		OnCommit: func(context.Context, int, engine.Entry) error { commits++; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Ask(replayWCQ(t, 50)); err != nil {
		t.Fatal(err)
	}
	spent, n := eng.Spent(), eng.TranscriptLen()
	eng.Seal()
	if _, err := eng.Ask(replayWCQ(t, 40)); !errors.Is(err, engine.ErrSealed) {
		t.Fatalf("Ask after Seal: %v", err)
	}
	if err := eng.ChargeExternal(0.1, 0.1, "SUM(age)"); !errors.Is(err, engine.ErrSealed) {
		t.Fatalf("ChargeExternal after Seal: %v", err)
	}
	// Sealed interactions charge nothing, log nothing, commit nothing.
	if eng.Spent() != spent || eng.TranscriptLen() != n || commits != 1 {
		t.Fatalf("sealed engine mutated: spent %v->%v, len %d->%d, commits %d",
			spent, eng.Spent(), n, eng.TranscriptLen(), commits)
	}
}

func TestTranscriptSince(t *testing.T) {
	tb := replayTable(t, 300)
	eng, err := engine.New(tb, engine.Config{Budget: 5, Rng: rand.New(rand.NewSource(3))})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := eng.Ask(replayWCQ(t, 50+float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	full := eng.Transcript()
	if len(full) != 3 {
		t.Fatalf("len = %d", len(full))
	}
	tail := eng.TranscriptSince(2)
	if len(tail) != 1 || tail[0].Query.String() != full[2].Query.String() {
		t.Fatalf("TranscriptSince(2) = %+v", tail)
	}
	if got := eng.TranscriptSince(3); got != nil {
		t.Fatalf("TranscriptSince(len) = %+v, want nil", got)
	}
	if got := eng.TranscriptSince(99); got != nil {
		t.Fatalf("TranscriptSince(past end) = %+v, want nil", got)
	}
	if got := eng.TranscriptSince(-5); len(got) != 3 {
		t.Fatalf("TranscriptSince(-5) len = %d, want 3", len(got))
	}
	spent, err := eng.Validate()
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if spent != eng.Spent() {
		t.Fatalf("Validate spent %v != Spent %v", spent, eng.Spent())
	}
}

func TestReplayRestoresBudgetAndReuse(t *testing.T) {
	tb := replayTable(t, 300)
	eng, err := engine.New(tb, engine.Config{Budget: 5, Rng: rand.New(rand.NewSource(3)), Reuse: true})
	if err != nil {
		t.Fatal(err)
	}
	q := replayWCQ(t, 50)
	first, err := eng.Ask(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.ChargeExternal(0.2, 0.15, "SUM(age)"); err != nil {
		t.Fatal(err)
	}

	// Round-trip every entry through the WAL encoding, as recovery does.
	var recovered []engine.Entry
	for _, e := range eng.Transcript() {
		b, err := engine.EncodeEntry(e)
		if err != nil {
			t.Fatal(err)
		}
		d, err := engine.DecodeEntry(b)
		if err != nil {
			t.Fatal(err)
		}
		recovered = append(recovered, d)
	}

	re, err := engine.Replay(tb, engine.Config{Budget: 5, Rng: rand.New(rand.NewSource(99)), Reuse: true}, recovered)
	if err != nil {
		t.Fatal(err)
	}
	if re.Spent() != eng.Spent() {
		t.Fatalf("replayed spent %v != original %v", re.Spent(), eng.Spent())
	}
	if re.TranscriptLen() != eng.TranscriptLen() {
		t.Fatalf("replayed len %d != original %d", re.TranscriptLen(), eng.TranscriptLen())
	}
	if _, err := re.Validate(); err != nil {
		t.Fatalf("replayed transcript invalid: %v", err)
	}

	// The inferencer cache must survive: the same workload with a looser
	// requirement is free post-processing after recovery.
	loose := replayWCQ(t, 80)
	spentBefore := re.Spent()
	ans, err := re.Ask(loose)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Mechanism != "cache" || ans.Epsilon != 0 {
		t.Fatalf("reuse lost across replay: mechanism=%s epsilon=%v", ans.Mechanism, ans.Epsilon)
	}
	if re.Spent() != spentBefore {
		t.Fatalf("free reuse charged budget: %v -> %v", spentBefore, re.Spent())
	}
	if !reflect.DeepEqual(ans.Counts, first.Counts) {
		t.Fatalf("reused counts differ from original answer")
	}

	// A transcript that violates the invariant must refuse to replay.
	bad := append([]engine.Entry(nil), recovered...)
	bad = append(bad, engine.Entry{Label: "forged", Epsilon: 100})
	if _, err := engine.Replay(tb, engine.Config{Budget: 5, Rng: rand.New(rand.NewSource(1))}, bad); err == nil {
		t.Fatal("replayed an invalid transcript; want error")
	}
}
