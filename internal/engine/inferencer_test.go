package engine

import (
	"math"
	"testing"

	"repro/internal/accuracy"
	"repro/internal/mechanism"
	"repro/internal/noise"
	"repro/internal/query"
	"repro/internal/strategy"
	"repro/internal/workload"
)

func reuseEngine(t *testing.T, counts []int, budget float64) *Engine {
	t.Helper()
	d := testTable(t, counts)
	e, err := New(d, Config{
		Budget: budget,
		Mode:   Optimistic,
		Rng:    noise.NewRand(17),
		Reuse:  true,
		Mechanisms: []mechanism.Mechanism{
			mechanism.LM{},
			mechanism.NewSM(strategy.H2, 300, 1),
			mechanism.MPM{},
			mechanism.LTM{},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestReuseIdenticalWCQIsFree(t *testing.T) {
	e := reuseEngine(t, []int{100, 200, 300}, 10)
	q := histQuery(t, 3, accuracy.Requirement{Alpha: 30, Beta: 0.05})
	first, err := e.Ask(q)
	if err != nil {
		t.Fatal(err)
	}
	spent := e.Spent()
	second, err := e.Ask(q)
	if err != nil {
		t.Fatal(err)
	}
	if second.Mechanism != "cache" || second.Epsilon != 0 {
		t.Fatalf("second ask: mech=%s eps=%v, want free cache hit", second.Mechanism, second.Epsilon)
	}
	if e.Spent() != spent {
		t.Fatal("cache hit must not charge")
	}
	for i := range first.Counts {
		if first.Counts[i] != second.Counts[i] {
			t.Fatal("cached counts must be identical")
		}
	}
}

func TestReuseLooserRequirementIsFree(t *testing.T) {
	e := reuseEngine(t, []int{100, 200, 300}, 10)
	strict := histQuery(t, 3, accuracy.Requirement{Alpha: 20, Beta: 0.01})
	if _, err := e.Ask(strict); err != nil {
		t.Fatal(err)
	}
	spent := e.Spent()
	loose := histQuery(t, 3, accuracy.Requirement{Alpha: 50, Beta: 0.05})
	ans, err := e.Ask(loose)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Mechanism != "cache" {
		t.Fatalf("looser query should reuse, got %s", ans.Mechanism)
	}
	if e.Spent() != spent {
		t.Fatal("reuse must be free")
	}
}

func TestNoReuseForStricterRequirement(t *testing.T) {
	e := reuseEngine(t, []int{100, 200, 300}, 10)
	loose := histQuery(t, 3, accuracy.Requirement{Alpha: 50, Beta: 0.05})
	if _, err := e.Ask(loose); err != nil {
		t.Fatal(err)
	}
	strict := histQuery(t, 3, accuracy.Requirement{Alpha: 20, Beta: 0.01})
	ans, err := e.Ask(strict)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Mechanism == "cache" {
		t.Fatal("stricter requirement must not reuse a looser answer")
	}
	if ans.Epsilon == 0 {
		t.Fatal("fresh answer must charge")
	}
}

func TestReuseAnswersICQFromWCQCache(t *testing.T) {
	e := reuseEngine(t, []int{500, 5, 400}, 10)
	wq := histQuery(t, 3, accuracy.Requirement{Alpha: 30, Beta: 0.01})
	if _, err := e.Ask(wq); err != nil {
		t.Fatal(err)
	}
	spent := e.Spent()
	preds, err := workload.Histogram1D("v", 0, 30, 10)
	if err != nil {
		t.Fatal(err)
	}
	iq, err := query.NewICQ(preds, 250, accuracy.Requirement{Alpha: 30, Beta: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	ans, err := e.Ask(iq)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Mechanism != "cache" {
		t.Fatalf("ICQ over cached workload should reuse, got %s", ans.Mechanism)
	}
	if e.Spent() != spent {
		t.Fatal("ICQ reuse must be free")
	}
	want := []bool{true, false, true}
	for i := range want {
		if ans.Selected[i] != want[i] {
			t.Fatalf("selection %v, want %v", ans.Selected, want)
		}
	}
}

func TestReuseTCQNeedsDoubleAccuracy(t *testing.T) {
	e := reuseEngine(t, []int{500, 5, 400}, 100)
	wq := histQuery(t, 3, accuracy.Requirement{Alpha: 30, Beta: 0.01})
	if _, err := e.Ask(wq); err != nil {
		t.Fatal(err)
	}
	preds, err := workload.Histogram1D("v", 0, 30, 10)
	if err != nil {
		t.Fatal(err)
	}
	// α = 30 cached: a TCQ at α = 50 < 2·30 must NOT reuse...
	tq1, err := query.NewTCQ(preds, 1, accuracy.Requirement{Alpha: 50, Beta: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	ans, err := e.Ask(tq1)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Mechanism == "cache" {
		t.Fatal("TCQ at alpha < 2*cached must not reuse")
	}
	// ...but a TCQ at α = 60 ≥ 2·30 may.
	tq2, err := query.NewTCQ(preds, 1, accuracy.Requirement{Alpha: 60, Beta: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	ans, err = e.Ask(tq2)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Mechanism != "cache" {
		t.Fatalf("TCQ at alpha >= 2*cached should reuse, got %s", ans.Mechanism)
	}
}

func TestReuseDisabledByDefault(t *testing.T) {
	d := testTable(t, []int{100, 200})
	e, err := New(d, Config{Budget: 10, Rng: noise.NewRand(1)})
	if err != nil {
		t.Fatal(err)
	}
	q := histQuery(t, 2, accuracy.Requirement{Alpha: 30, Beta: 0.05})
	if _, err := e.Ask(q); err != nil {
		t.Fatal(err)
	}
	ans, err := e.Ask(q)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Mechanism == "cache" {
		t.Fatal("reuse must be opt-in")
	}
}

func TestReuseStretchesBudget(t *testing.T) {
	// With reuse, an analyst repeating the same query answers many more
	// queries under the same budget.
	q := histQuery(t, 2, accuracy.Requirement{Alpha: 30, Beta: 0.05})
	count := func(reuse bool) int {
		d := testTable(t, []int{100, 200})
		e, err := New(d, Config{Budget: 0.5, Rng: noise.NewRand(2), Reuse: reuse})
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for i := 0; i < 100; i++ {
			if _, err := e.Ask(q); err != nil {
				break
			}
			n++
		}
		return n
	}
	with, without := count(true), count(false)
	if with != 100 {
		t.Fatalf("with reuse all 100 repeats should answer, got %d", with)
	}
	if without >= with {
		t.Fatalf("reuse must stretch the budget: %d vs %d", with, without)
	}
}

func TestAdvise(t *testing.T) {
	e := reuseEngine(t, []int{100, 200, 300}, 10)
	q := histQuery(t, 3, accuracy.Requirement{Alpha: 30, Beta: 0.05})
	best, affordable, err := e.Advise(q)
	if err != nil {
		t.Fatal(err)
	}
	if best == nil || !affordable {
		t.Fatalf("advise: %+v affordable=%v", best, affordable)
	}
	if e.Spent() != 0 {
		t.Fatal("advice must be free")
	}
	// The engine's actual choice must agree with the advice.
	ans, err := e.Ask(q)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Mechanism != best.Mechanism.Name() {
		t.Fatalf("advice %s, engine chose %s", best.Mechanism.Name(), ans.Mechanism)
	}
	if math.Abs(ans.EpsilonUpper-best.Cost.Upper) > 1e-12 {
		t.Fatalf("advice cost %v, engine reserved %v", best.Cost.Upper, ans.EpsilonUpper)
	}
}

func TestAdviseUnaffordable(t *testing.T) {
	d := testTable(t, []int{100, 200})
	e, err := New(d, Config{Budget: 1e-6, Rng: noise.NewRand(1)})
	if err != nil {
		t.Fatal(err)
	}
	q := histQuery(t, 2, accuracy.Requirement{Alpha: 5, Beta: 0.001})
	best, affordable, err := e.Advise(q)
	if err != nil {
		t.Fatal(err)
	}
	if best == nil {
		t.Fatal("advice should still name the cheapest mechanism")
	}
	if affordable {
		t.Fatal("tiny budget must be unaffordable")
	}
}
