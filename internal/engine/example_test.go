package engine_test

import (
	"fmt"

	"repro/internal/accuracy"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/noise"
	"repro/internal/query"
	"repro/internal/workload"
)

// Example shows the full owner/analyst flow: the owner stands up an engine
// with a budget over the sensitive table; the analyst asks a histogram with
// an accuracy bound and receives noisy counts plus the charged privacy loss.
func Example() {
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "age", Kind: dataset.Continuous, Min: 0, Max: 100},
	)
	table := dataset.NewTable(schema)
	for i := 0; i < 1000; i++ {
		table.MustAppend(dataset.Tuple{dataset.Num(float64(20 + i%60))})
	}

	eng, err := engine.New(table, engine.Config{
		Budget: 1.0,
		Mode:   engine.Optimistic,
		Rng:    noise.NewRand(7),
	})
	if err != nil {
		fmt.Println(err)
		return
	}

	bins, err := workload.Histogram1D("age", 0, 100, 50)
	if err != nil {
		fmt.Println(err)
		return
	}
	q, err := query.NewWCQ(bins, accuracy.Requirement{Alpha: 50, Beta: 0.05})
	if err != nil {
		fmt.Println(err)
		return
	}

	ans, err := eng.Ask(q)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("mechanism: %s\n", ans.Mechanism)
	fmt.Printf("bins answered: %d\n", len(ans.Counts))
	fmt.Printf("budget remaining positive: %v\n", eng.Remaining() > 0)
	// Output:
	// mechanism: LM
	// bins answered: 2
	// budget remaining positive: true
}

// ExampleEngine_Advise shows the recommender primitive: cost advice without
// spending any budget.
func ExampleEngine_Advise() {
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "v", Kind: dataset.Continuous, Min: 0, Max: 10},
	)
	table := dataset.NewTable(schema)
	table.MustAppend(dataset.Tuple{dataset.Num(5)})
	eng, _ := engine.New(table, engine.Config{Budget: 1, Rng: noise.NewRand(1)})

	q, _ := query.Parse(`BIN D ON COUNT(*) WHERE W = { v > 5 } ERROR 10 CONFIDENCE 0.95;`)
	best, affordable, _ := eng.Advise(q)
	fmt.Printf("%s affordable=%v spent=%v\n", best.Mechanism.Name(), affordable, eng.Spent())
	// Output:
	// LM affordable=true spent=0
}
