package engine

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/accuracy"
	"repro/internal/dataset"
	"repro/internal/mechanism"
	"repro/internal/noise"
	"repro/internal/query"
	"repro/internal/workload"
)

// faultyMechanism misbehaves on demand: it can lie about its translation
// (reporting a cheaper bound than the loss it actually charges) or fail in
// Run. The analyzer must contain both failure modes.
type faultyMechanism struct {
	overcharge bool
	failRun    bool
}

func (faultyMechanism) Name() string { return "faulty" }

func (faultyMechanism) Applicable(q *query.Query, tr *workload.Transformed) bool {
	return q.Kind == query.WCQ
}

func (m faultyMechanism) Translate(q *query.Query, tr *workload.Transformed) (mechanism.Cost, error) {
	return mechanism.Cost{Lower: 0.001, Upper: 0.001}, nil
}

func (m faultyMechanism) Run(q *query.Query, tr *workload.Transformed, d *dataset.Table, rng *rand.Rand) (*mechanism.Result, error) {
	if m.failRun {
		return nil, errRunFailed
	}
	eps := 0.001
	if m.overcharge {
		eps = 10 // way beyond the declared upper bound
	}
	return &mechanism.Result{Counts: make([]float64, q.L()), Epsilon: eps}, nil
}

var errRunFailed = &runError{}

type runError struct{}

func (*runError) Error() string { return "injected run failure" }

func faultEngine(t *testing.T, m mechanism.Mechanism) *Engine {
	t.Helper()
	d := testTable(t, []int{10, 20})
	e, err := New(d, Config{
		Budget:     1,
		Rng:        noise.NewRand(1),
		Mechanisms: []mechanism.Mechanism{m},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEngineRejectsOverchargingMechanism(t *testing.T) {
	e := faultEngine(t, faultyMechanism{overcharge: true})
	q := histQuery(t, 2, accuracy.Requirement{Alpha: 10, Beta: 0.05})
	_, err := e.Ask(q)
	if err == nil {
		t.Fatal("engine must reject a mechanism whose actual loss exceeds its declared bound")
	}
	if !strings.Contains(err.Error(), "exceeds declared upper bound") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestEngineSurfacesRunFailures(t *testing.T) {
	e := faultEngine(t, faultyMechanism{failRun: true})
	q := histQuery(t, 2, accuracy.Requirement{Alpha: 10, Beta: 0.05})
	if _, err := e.Ask(q); err == nil {
		t.Fatal("run failure must propagate")
	}
	if e.Spent() != 0 {
		t.Fatal("failed run must not charge")
	}
}

func TestChargeExternalValidation(t *testing.T) {
	d := testTable(t, []int{10})
	e, err := New(d, Config{Budget: 1, Rng: noise.NewRand(1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ChargeExternal(0.5, 0.6, "bad"); err == nil {
		t.Fatal("actual above upper must be rejected")
	}
	if err := e.ChargeExternal(-1, -1, "bad"); err == nil {
		t.Fatal("negative charge must be rejected")
	}
	if err := e.ChargeExternal(0.5, 0.3, "ok"); err != nil {
		t.Fatal(err)
	}
	if e.Spent() != 0.3 {
		t.Fatalf("spent %v", e.Spent())
	}
	log := e.Transcript()
	if len(log) != 1 || log[0].Label != "ok" {
		t.Fatalf("transcript %+v", log)
	}
}
