package engine

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/accuracy"
	"repro/internal/dataset"
	"repro/internal/query"
)

// Replayable transcript entry encoding. The durable store (internal/store)
// frames each committed Entry as one WAL record; this file defines the
// payload: a JSON form that round-trips an Entry exactly, so a recovered
// transcript renders byte-identically over the wire and re-validates under
// ValidateTranscript with the same arithmetic.
//
// Queries are carried structurally (kind, predicates via the dataset
// predicate codec, threshold/k, accuracy requirement) rather than as
// rendered text: the text form is lossy (Range renders in math notation
// the parser does not accept). Counts and epsilons are float64s, which
// encoding/json round-trips exactly.

// entryWire is the on-disk form of one Entry. Float fields are never
// omitempty: omitempty drops -0.0 (it compares equal to zero), and the
// decoded +0.0 would render differently, breaking the byte-identical
// transcript guarantee. The provenance pair (trace_id, at_ns) is only
// present when the entry was committed by a traced request — engine-
// direct transcripts encode without it, byte-identically to before the
// fields existed. at_ns is unix nanoseconds: a time.Time struct can never
// be omitempty, an int64 can, and UnixNano round-trips exactly.
type entryWire struct {
	Query   *queryWire  `json:"query,omitempty"`
	Label   string      `json:"label,omitempty"`
	Denied  bool        `json:"denied,omitempty"`
	Epsilon float64     `json:"epsilon"`
	Answer  *answerWire `json:"answer,omitempty"`
	TraceID string      `json:"trace_id,omitempty"`
	At      int64       `json:"at_ns,omitempty"`
}

type queryWire struct {
	Kind       string            `json:"kind"`
	Predicates []json.RawMessage `json:"predicates"`
	Threshold  float64           `json:"threshold"`
	K          int               `json:"k,omitempty"`
	Alpha      float64           `json:"alpha"`
	Beta       float64           `json:"beta"`
}

type answerWire struct {
	Counts       []float64 `json:"counts,omitempty"`
	Selected     []bool    `json:"selected,omitempty"`
	Epsilon      float64   `json:"epsilon"`
	EpsilonUpper float64   `json:"epsilon_upper"`
	Mechanism    string    `json:"mechanism,omitempty"`
}

// EncodeEntry serializes one transcript entry for the WAL. Entries whose
// query uses a non-serializable predicate (dataset.Func) cannot be
// encoded; such queries only arise through the programmatic API, never
// from the parser the server and CLI feed.
func EncodeEntry(e Entry) ([]byte, error) {
	w := entryWire{Label: e.Label, Denied: e.Denied, Epsilon: e.Epsilon, TraceID: e.TraceID}
	if !e.At.IsZero() {
		w.At = e.At.UnixNano()
	}
	if e.Query != nil {
		qw, err := encodeQuery(e.Query)
		if err != nil {
			return nil, err
		}
		w.Query = qw
	}
	if e.Answer != nil {
		w.Answer = &answerWire{
			Counts:       e.Answer.Counts,
			Selected:     e.Answer.Selected,
			Epsilon:      e.Answer.Epsilon,
			EpsilonUpper: e.Answer.EpsilonUpper,
			Mechanism:    e.Answer.Mechanism,
		}
	}
	return json.Marshal(w)
}

// DecodeEntry parses the EncodeEntry form. A decoded answer shares the
// query's predicate slice, matching how Ask builds answers.
func DecodeEntry(b []byte) (Entry, error) {
	var w entryWire
	if err := json.Unmarshal(b, &w); err != nil {
		return Entry{}, fmt.Errorf("engine: entry JSON: %w", err)
	}
	e := Entry{Label: w.Label, Denied: w.Denied, Epsilon: w.Epsilon, TraceID: w.TraceID}
	if w.At != 0 {
		e.At = time.Unix(0, w.At).UTC()
	}
	if w.Query != nil {
		q, err := decodeQuery(w.Query)
		if err != nil {
			return Entry{}, err
		}
		e.Query = q
	}
	if w.Answer != nil {
		e.Answer = &Answer{
			Counts:       w.Answer.Counts,
			Selected:     w.Answer.Selected,
			Epsilon:      w.Answer.Epsilon,
			EpsilonUpper: w.Answer.EpsilonUpper,
			Mechanism:    w.Answer.Mechanism,
		}
		if e.Query != nil {
			e.Answer.Predicates = e.Query.Predicates
		}
	}
	return e, nil
}

func encodeQuery(q *query.Query) (*queryWire, error) {
	w := &queryWire{
		Kind:      q.Kind.String(),
		Threshold: q.Threshold,
		K:         q.K,
		Alpha:     q.Req.Alpha,
		Beta:      q.Req.Beta,
	}
	w.Predicates = make([]json.RawMessage, len(q.Predicates))
	for i, p := range q.Predicates {
		b, err := dataset.MarshalPredicate(p)
		if err != nil {
			return nil, fmt.Errorf("engine: entry query: %w", err)
		}
		w.Predicates[i] = b
	}
	return w, nil
}

func decodeQuery(w *queryWire) (*query.Query, error) {
	q := &query.Query{
		Threshold: w.Threshold,
		K:         w.K,
		Req:       accuracy.Requirement{Alpha: w.Alpha, Beta: w.Beta},
	}
	switch w.Kind {
	case "WCQ":
		q.Kind = query.WCQ
	case "ICQ":
		q.Kind = query.ICQ
	case "TCQ":
		q.Kind = query.TCQ
	default:
		return nil, fmt.Errorf("engine: entry query: unknown kind %q", w.Kind)
	}
	q.Predicates = make([]dataset.Predicate, len(w.Predicates))
	for i, raw := range w.Predicates {
		p, err := dataset.UnmarshalPredicate(raw)
		if err != nil {
			return nil, fmt.Errorf("engine: entry query: %w", err)
		}
		q.Predicates[i] = p
	}
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("engine: entry query: %w", err)
	}
	return q, nil
}
