package engine

import (
	"context"
	"errors"
	"testing"

	"repro/internal/accuracy"
	"repro/internal/dataset"
	"repro/internal/query"
)

func TestAskContextCanceled(t *testing.T) {
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "age", Kind: dataset.Continuous, Min: 0, Max: 100},
	)
	table := dataset.NewTable(schema)
	for i := 0; i < 10; i++ {
		table.MustAppend(dataset.Tuple{dataset.Num(float64(i * 10))})
	}
	e, err := New(table, Config{Budget: 1})
	if err != nil {
		t.Fatal(err)
	}
	q, err := query.NewWCQ(
		[]dataset.Predicate{dataset.Range{Attr: "age", Lo: 0, Hi: 50}},
		accuracy.Requirement{Alpha: 100, Beta: 0.05},
	)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.AskContext(ctx, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// A canceled ask charges nothing and leaves no transcript entry.
	if e.Spent() != 0 || len(e.Transcript()) != 0 {
		t.Fatalf("canceled ask mutated state: spent=%v entries=%d", e.Spent(), len(e.Transcript()))
	}

	// The same query still answers normally afterwards.
	if _, err := e.AskContext(context.Background(), q); err != nil {
		t.Fatal(err)
	}
}
