// Package engine implements the APEx privacy engine (paper Algorithm 1 and
// §6): given a sensitive table and an owner-specified privacy budget B, it
// answers an adaptively chosen sequence of exploration queries, each with an
// accuracy requirement, by
//
//  1. translating the query to the applicable mechanism with the least
//     privacy loss (the accuracy translator, in optimistic or pessimistic
//     mode), and
//  2. refusing any query whose worst-case loss would overrun the remaining
//     budget, while charging only the *actual* loss of data-dependent
//     mechanisms (the privacy analyzer).
//
// Every interaction is recorded in a transcript whose validity invariants
// (Definition 6.1) are maintained: the cumulative actual loss never exceeds
// B, and any answered query also fit under B at its worst case.
package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/mechanism"
	"repro/internal/noise"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/strategy"
	"repro/internal/translate"
	"repro/internal/workload"
)

// Mode selects how the translator ranks mechanisms whose privacy loss is an
// interval (paper Algorithm 1, lines 8 and 10).
type Mode int

const (
	// Pessimistic picks the mechanism with the least worst-case loss εu.
	Pessimistic Mode = iota
	// Optimistic picks the mechanism with the least best-case loss εl
	// (ties broken by εu). The paper's experiments run optimistic mode.
	Optimistic
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Pessimistic:
		return "pessimistic"
	case Optimistic:
		return "optimistic"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode parses a mode name ("optimistic" or "pessimistic",
// case-insensitive). Both the CLI and the server accept modes through it so
// the two front ends agree on spelling and errors.
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(s) {
	case "optimistic":
		return Optimistic, nil
	case "pessimistic":
		return Pessimistic, nil
	default:
		return 0, fmt.Errorf("engine: unknown mode %q (want optimistic or pessimistic)", s)
	}
}

// ErrDenied is returned when no applicable mechanism fits in the remaining
// privacy budget ("Query Denied", Algorithm 1 line 16).
var ErrDenied = errors.New("engine: query denied: insufficient privacy budget")

// ErrMechanismFailure marks an internal failure while running a chosen
// mechanism, as opposed to a problem with the analyst's input; callers
// (such as the server) use it to distinguish 5xx from 4xx conditions.
var ErrMechanismFailure = errors.New("mechanism failure")

// ErrPersist marks a commit-hook failure: the transcript entry could not
// be made durable. The in-memory charge stands (the noise was already
// drawn, so conservatively the budget is burned) but the answer is
// withheld from the caller.
var ErrPersist = errors.New("engine: transcript persistence failed")

// ErrSealed is returned by Ask/ChargeExternal after Seal: the engine no
// longer accepts interactions. Nothing is charged or logged.
var ErrSealed = errors.New("engine: session closed")

// epsTol absorbs floating-point drift in budget comparisons.
const epsTol = 1e-9

// Answer is the engine's reply to one query.
type Answer struct {
	// Counts holds noisy counts for WCQ.
	Counts []float64
	// Selected marks returned bins for ICQ/TCQ.
	Selected []bool
	// Predicates echoes the query workload, aligned with Selected.
	Predicates []dataset.Predicate
	// Epsilon is the actual privacy loss charged.
	Epsilon float64
	// EpsilonUpper is the worst-case loss the analyzer reserved.
	EpsilonUpper float64
	// Mechanism names the mechanism that answered.
	Mechanism string
}

// SelectedPredicates returns the predicates marked Selected.
func (a *Answer) SelectedPredicates() []dataset.Predicate {
	var out []dataset.Predicate
	for i, sel := range a.Selected {
		if sel {
			out = append(out, a.Predicates[i])
		}
	}
	return out
}

// Entry is one transcript record: the query with its accuracy requirement
// and either the answer or the denial. External charges (extensions such as
// SUM aggregates) carry a Label instead of a Query.
//
// TraceID and At are provenance: the request trace that committed the
// entry and when it committed. They are stamped only when the committing
// context carries a request ID (the server path) — engine-direct callers
// produce entries without them, which keeps transcripts byte-identical
// across storage backends and sequential runs.
type Entry struct {
	Query   *query.Query
	Label   string  // set for external charges
	Answer  *Answer // nil when denied
	Denied  bool
	Epsilon float64 // actual loss (0 when denied)

	TraceID string    // request trace that committed this entry, if any
	At      time.Time // commit time; zero when TraceID is empty
}

// Config customizes engine construction.
type Config struct {
	// Budget is the owner's total privacy budget B. Required.
	Budget float64
	// Mode is the translator mode; default Pessimistic (zero value).
	Mode Mode
	// Mechanisms overrides the default mechanism suite.
	Mechanisms []mechanism.Mechanism
	// Rng drives all mechanism randomness; nil means a fixed-seed source.
	Rng *rand.Rand
	// TransformOptions tunes workload transformation limits.
	TransformOptions workload.Options
	// Transforms, when set, is the workload transformation cache the
	// engine evaluates through — typically one shared cache per dataset
	// (the server wires one up per registered table) so concurrent
	// sessions asking the same workload share one transformation and one
	// noise-free Histogram/TrueAnswers scan. Nil means a private cache
	// built from TransformOptions; when Transforms is set it wins and
	// TransformOptions is ignored.
	Transforms *workload.TransformCache
	// Translations, when set, is the Monte-Carlo translation plan source
	// the strategy mechanism reads through — the per-dataset shared,
	// sidecar-persisted translate.Cache on the server, so all sessions
	// pay each workload's ~9 ms sampling once and restarts reload plans
	// instead of re-sampling. It is injected into every suite SM that
	// doesn't already carry its own source; nil leaves each SM with a
	// private in-memory cache.
	Translations translate.Source
	// Reuse enables the inferencer (§9 extension): answered WCQ counts are
	// cached and later queries over the same workload with an equal-or-
	// looser accuracy requirement are answered as free post-processing.
	Reuse bool
	// OnCommit, when set, is called synchronously (under the engine lock,
	// so invocations are ordered exactly like the transcript) after entry
	// n is appended to the transcript — one call per answered, denied or
	// externally charged interaction. The durable store uses it to frame
	// the entry into the session's write-ahead log before the answer is
	// released. If the hook returns an error the entry and any budget
	// charge stand (the noise has already been drawn) but the caller gets
	// an error wrapping ErrPersist instead of the answer: budget is never
	// under-accounted across a crash. ctx is the committing request's
	// context, carrying its trace so the hook's own waits (WAL flush)
	// appear as spans in the request's trace.
	OnCommit CommitHook
}

// CommitHook observes transcript appends; see Config.OnCommit.
type CommitHook func(ctx context.Context, n int, e Entry) error

// Engine is the APEx privacy engine for one sensitive table.
type Engine struct {
	mu     sync.Mutex
	data   *dataset.Table
	budget float64
	spent  float64
	mode   Mode
	mechs  []mechanism.Mechanism
	rng    *rand.Rand
	log    []Entry

	// Two-phase bookkeeping: reserved is the summed worst-case loss of
	// every prepared-but-unfinished plan (admission checks against
	// budget - spent - reserved, so concurrent plans can never jointly
	// overrun B), inflight counts those plans, and idle signals when
	// inflight returns to zero so Seal can wait out in-flight work.
	reserved float64
	inflight int
	idle     sync.Cond

	// execMu serializes mechanism runs — and with them every draw from
	// rng, which is not safe for concurrent use — without holding the
	// engine lock across the scan.
	execMu sync.Mutex

	transforms   *workload.TransformCache
	translations translate.Source
	reuse        bool
	answers      map[string]*cachedAnswer
	onCommit     CommitHook
	sealed       bool
}

// DefaultMechanisms returns the full suite the paper's APEx supports: the
// Laplace baseline, the H2 strategy mechanism, the multi-poking mechanism
// and the Laplace top-k mechanism.
func DefaultMechanisms() []mechanism.Mechanism {
	return []mechanism.Mechanism{
		mechanism.LM{},
		mechanism.NewSM(strategy.H2, 0, 1),
		mechanism.MPM{},
		mechanism.LTM{},
	}
}

// New builds an engine over the sensitive table d.
func New(d *dataset.Table, cfg Config) (*Engine, error) {
	if d == nil {
		return nil, fmt.Errorf("engine: nil table")
	}
	if cfg.Budget <= 0 {
		return nil, fmt.Errorf("engine: privacy budget must be positive, got %v", cfg.Budget)
	}
	mechs := cfg.Mechanisms
	if mechs == nil {
		mechs = DefaultMechanisms()
	}
	if cfg.Translations != nil {
		// Wire the shared plan source into every suite SM that doesn't
		// already carry one, so per-session engines translate through the
		// dataset's cache instead of private ones.
		for _, m := range mechs {
			if sm, ok := m.(*mechanism.SM); ok && sm.Source == nil {
				sm.Source = cfg.Translations
			}
		}
	}
	rng := cfg.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	transforms := cfg.Transforms
	if transforms == nil {
		transforms = workload.NewTransformCache(cfg.TransformOptions)
	}
	e := &Engine{
		data:         d,
		budget:       cfg.Budget,
		mode:         cfg.Mode,
		mechs:        mechs,
		rng:          rng,
		transforms:   transforms,
		translations: cfg.Translations,
		reuse:        cfg.Reuse,
		answers:      make(map[string]*cachedAnswer),
		onCommit:     cfg.OnCommit,
	}
	e.idle.L = &e.mu
	return e, nil
}

// Replay rebuilds an engine from a recovered transcript: the entries are
// validated against cfg.Budget (Definition 6.1), the cumulative actual
// loss becomes the engine's spent counter, and when cfg.Reuse is set the
// inferencer cache is rebuilt from the answered WCQ entries so recovered
// sessions keep their free-reuse behavior. cfg.OnCommit is NOT invoked
// for the replayed entries — they are already durable; it fires only for
// entries appended after recovery.
//
// cfg.Rng should be a fresh source: re-seeding a recovered session with
// the seed it was created with would replay noise the analyst has already
// seen, voiding the privacy guarantee for post-recovery answers.
func Replay(d *dataset.Table, cfg Config, entries []Entry) (*Engine, error) {
	e, err := New(d, cfg)
	if err != nil {
		return nil, err
	}
	spent, err := ValidateTranscript(entries, cfg.Budget)
	if err != nil {
		return nil, fmt.Errorf("engine: replay: %w", err)
	}
	e.log = append([]Entry(nil), entries...)
	e.spent = spent
	if e.reuse {
		for _, en := range e.log {
			if en.Query != nil && en.Answer != nil && en.Answer.Counts != nil {
				e.remember(en.Query, workload.Key(en.Query.Predicates), en.Answer.Counts)
			}
		}
	}
	return e, nil
}

// Budget returns the owner's total budget B.
func (e *Engine) Budget() float64 { return e.budget }

// Table returns the sensitive table the engine answers over.
func (e *Engine) Table() *dataset.Table { return e.data }

// Transforms returns the transformation cache the engine evaluates
// through — the per-dataset shared cache when the server wired one up.
// Batch schedulers use it to warm noise-free evaluations for many plans
// in one grouped columnar pass.
func (e *Engine) Transforms() *workload.TransformCache { return e.transforms }

// Mode returns the translator mode the engine was built with.
func (e *Engine) Mode() Mode { return e.mode }

// Spent returns the cumulative actual privacy loss so far.
func (e *Engine) Spent() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.spent
}

// Remaining returns B minus the cumulative actual loss.
func (e *Engine) Remaining() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.budget - e.spent
}

// Transcript returns a copy of the interaction log.
func (e *Engine) Transcript() []Entry {
	return e.TranscriptSince(0)
}

// TranscriptSince returns a copy of the transcript entries from index n
// on, so incremental consumers (the server's ?since= transcript fetches,
// audit tailers) copy only the delta instead of O(entries) per call. A
// negative n is treated as 0; n past the end returns nil.
func (e *Engine) TranscriptSince(n int) []Entry {
	if n < 0 {
		n = 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if n >= len(e.log) {
		return nil
	}
	return append([]Entry(nil), e.log[n:]...)
}

// Validate re-checks the Definition 6.1 invariant on the live transcript
// without copying it, returning the cumulative actual loss. This is what
// the server's transcript endpoint runs on every audit read.
func (e *Engine) Validate() (float64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return ValidateTranscript(e.log, e.budget)
}

// TranscriptLen returns the number of transcript entries without copying
// the log.
func (e *Engine) TranscriptLen() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.log)
}

// VerifyAccounting is the background scrubber's live invariant check,
// one atomic look at both halves of the accounting: the transcript must
// pass Definition 6.1 against the budget, and the spent counter — the
// number admission control actually gates on — must equal the
// transcript-derived cumulative loss. Both are read under one lock hold,
// so no commit can slip between the two reads and fake a divergence. It
// returns the transcript-derived loss and, on failure, an error that
// starts with "transcript:" (invalid history) or "spent counter:"
// (counter drifted from the history it is supposed to summarize).
func (e *Engine) VerifyAccounting() (float64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	logSpent, err := ValidateTranscript(e.log, e.budget)
	if err != nil {
		return logSpent, fmt.Errorf("transcript: %w", err)
	}
	diff := e.spent - logSpent
	if diff < 0 {
		diff = -diff
	}
	if diff > epsTol {
		return logSpent, fmt.Errorf("spent counter: engine charges %v, transcript sums to %v (drift %v)",
			e.spent, logSpent, diff)
	}
	return logSpent, nil
}

// TestingSkewSpent adjusts the spent counter without touching the
// transcript — a deliberate accounting bug, injectable only from tests,
// so the scrubber's divergence detection can be exercised against a
// mis-accounted engine.
func (e *Engine) TestingSkewSpent(delta float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.spent += delta
}

// Choice describes one mechanism's translation for a query; used by
// Translations for inspection and by the experiment harness.
type Choice struct {
	Mechanism mechanism.Mechanism
	Cost      mechanism.Cost
}

// Translations returns every applicable mechanism's privacy-cost interval
// for q, without running anything or consuming budget.
func (e *Engine) Translations(q *query.Query) ([]Choice, error) {
	tr, err := e.transform(q)
	if err != nil {
		return nil, err
	}
	var out []Choice
	for _, m := range e.mechs {
		if !m.Applicable(q, tr) {
			continue
		}
		cost, err := m.Translate(q, tr)
		if err != nil {
			return nil, fmt.Errorf("engine: %s translate: %w", m.Name(), err)
		}
		out = append(out, Choice{Mechanism: m, Cost: cost})
	}
	return out, nil
}

// Ask answers one exploration query (Algorithm 1's loop body). On denial it
// returns ErrDenied and charges nothing.
func (e *Engine) Ask(q *query.Query) (*Answer, error) {
	return e.AskContext(context.Background(), q)
}

// AskContext is Ask with cancellation: if ctx is done before the mechanism
// runs, the query is abandoned and nothing is charged or logged. A query
// whose mechanism has already started runs to completion — charging actual
// loss for a half-delivered answer would break the transcript invariant.
//
// AskContext is the single-caller composition of the two-phase API:
// Prepare (translate, admit, reserve — under the engine lock), Execute
// (the mechanism's scan and noise draw — outside it), Commit (settle the
// actual loss and append the transcript entry). Batch schedulers drive
// the phases directly to interleave many sessions' scans.
func (e *Engine) AskContext(ctx context.Context, q *query.Query) (*Answer, error) {
	plan, ans, err := e.Prepare(ctx, q)
	if err != nil || ans != nil {
		return ans, err
	}
	if err := ctx.Err(); err != nil {
		// Canceled after admission but before the mechanism ran: abandon
		// the plan, releasing its reservation; nothing is charged or logged.
		e.Abort(plan)
		return nil, err
	}
	return e.Commit(ctx, plan, e.Execute(ctx, plan))
}

// Prepare runs the first phase of a query under the engine lock: validate,
// translate every applicable mechanism, pick the best by the engine mode,
// and reserve its worst-case loss against the budget. Exactly one of the
// three results is meaningful:
//
//   - (plan, nil, nil): the query was admitted. The caller owns the plan
//     and must finish it with Commit or Abort — an abandoned plan leaks
//     its reservation and blocks Seal.
//   - (nil, answer, nil): the query was answered immediately from the
//     reuse cache (§9 inferencer) and is already committed.
//   - (nil, nil, err): the query was denied (ErrDenied, logged) or failed
//     validation/translation (nothing logged).
//
// Admission checks against budget - spent - reserved: reservations held by
// concurrent in-flight plans count as spent until they settle, so parallel
// plans can never jointly overrun B (their commits stay valid under
// Definition 6.1 in any completion order).
func (e *Engine) Prepare(ctx context.Context, q *query.Query) (*exec.Plan, *Answer, error) {
	ctx, prepSpan := obs.StartSpan(ctx, "prepare")
	defer prepSpan.End()
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, nil, err
	}
	key := workload.Key(q.Predicates)
	// Stamp the canonical workload identity on the request trace while the
	// rendered key is in hand — the analytics plane attributes cost per
	// workload from this tag without re-rendering the predicates.
	obs.FromContext(ctx).Tag("workload", workload.ID(key))
	prepSpan.Set("transform_cache_hit", e.transforms.Has(key))
	tr, err := e.transform(q)
	if err != nil {
		return nil, nil, err
	}

	e.mu.Lock()
	defer e.mu.Unlock()

	// Re-check after potentially waiting on the lock behind other sessions'
	// commits.
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if e.sealed {
		return nil, nil, ErrSealed
	}

	if ans := e.tryReuse(q, key); ans != nil {
		prepSpan.Set("reuse_hit", true)
		if err := e.append(ctx, Entry{Query: q, Answer: ans}); err != nil {
			return nil, nil, err
		}
		return nil, ans, nil
	}

	// The translation loop is the Monte-Carlo-bearing part of Prepare
	// (pessimistic translators simulate the noise distribution), so it gets
	// its own span under "prepare".
	_, tlSpan := obs.StartSpan(ctx, "translate")
	if e.translations != nil {
		// Whether the shared translation plane already holds a plan for
		// this workload — i.e. whether the Monte-Carlo sampling below is
		// a lookup or a fresh ~9 ms computation.
		tlSpan.Set("translate_cache_hit", e.translations.Ready(key))
	}
	remaining := e.budget - e.spent - e.reserved
	var best *Choice
	for _, m := range e.mechs {
		if !m.Applicable(q, tr) {
			continue
		}
		cost, err := m.Translate(q, tr)
		if err != nil {
			tlSpan.End()
			return nil, nil, fmt.Errorf("engine: %s translate: %w", m.Name(), err)
		}
		// Only mechanisms whose worst case fits may run (privacy analyzer).
		if cost.Upper > remaining+epsTol {
			continue
		}
		c := Choice{Mechanism: m, Cost: cost}
		if best == nil || e.better(c, *best) {
			best = &c
		}
	}
	if best != nil {
		tlSpan.Set("mechanism", best.Mechanism.Name())
		tlSpan.Set("eps_lower", best.Cost.Lower)
		tlSpan.Set("eps_upper", best.Cost.Upper)
	}
	tlSpan.End()
	if best == nil {
		prepSpan.Set("denied", true)
		if err := e.append(ctx, Entry{Query: q, Denied: true}); err != nil {
			return nil, nil, err
		}
		return nil, nil, ErrDenied
	}

	prepSpan.Set("reserved_eps", best.Cost.Upper)
	e.reserved += best.Cost.Upper
	e.inflight++
	return &exec.Plan{
		Query:       q,
		Transformed: tr,
		Mechanism:   best.Mechanism,
		Cost:        best.Cost,
		Key:         key,
		Needs:       planNeeds(best.Mechanism, q, tr),
		Owner:       e,
	}, nil, nil
}

// Execute runs the plan's mechanism — the second phase, outside the engine
// lock. Runs on one engine are serialized (the engine's random source is
// single-stream), but independent engines execute concurrently, and the
// noise-free scan inside typically hits the shared per-dataset evaluation
// cache a batching scheduler warmed beforehand.
//
// The "execute" span opens before the run lock is taken, so it covers the
// wait for the engine's serialized random stream as well as the
// mechanism's scan and noise draw; run_us isolates the run itself.
func (e *Engine) Execute(ctx context.Context, p *exec.Plan) *exec.Outcome {
	_, span := obs.StartSpan(ctx, "execute")
	e.execMu.Lock()
	defer e.execMu.Unlock()
	start := time.Now()
	var res *mechanism.Result
	var err error
	if pr, ok := p.Mechanism.(mechanism.PreparedRunner); ok {
		// The plan carries the cost Prepare translated at admission, so
		// prepared-aware mechanisms skip the redundant execute-time
		// re-translation (for SM, a second full binary search).
		res, err = pr.RunPrepared(p.Query, p.Transformed, e.data, e.rng, p.Cost)
	} else {
		res, err = p.Mechanism.Run(p.Query, p.Transformed, e.data, e.rng)
	}
	elapsed := time.Since(start)
	span.Set("mechanism", p.Mechanism.Name())
	span.Set("run_us", elapsed.Microseconds())
	span.End()
	return &exec.Outcome{Result: res, Err: err, Elapsed: elapsed}
}

// Commit settles a plan under the engine lock: the reservation is
// released, the actual loss is charged (Algorithm 1 line 12), the
// transcript entry is appended and the commit hook runs — ordered exactly
// like the transcript, as in the single-phase path. A mechanism failure
// in the outcome charges and logs nothing (matching Ask), and an actual
// loss above the reserved upper bound is rejected as a mechanism failure.
func (e *Engine) Commit(ctx context.Context, p *exec.Plan, o *exec.Outcome) (*Answer, error) {
	ctx, span := obs.StartSpan(ctx, "commit")
	defer span.End()
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.finish(p); err != nil {
		return nil, err
	}
	if o.Err != nil {
		return nil, fmt.Errorf("engine: %s run: %v: %w", p.Mechanism.Name(), o.Err, ErrMechanismFailure)
	}
	res := o.Result
	if res.Epsilon > p.Cost.Upper+epsTol {
		return nil, fmt.Errorf("engine: %s actual loss %v exceeds declared upper bound %v: %w",
			p.Mechanism.Name(), res.Epsilon, p.Cost.Upper, ErrMechanismFailure)
	}
	ans := &Answer{
		Counts:       res.Counts,
		Selected:     res.Selected,
		Predicates:   p.Query.Predicates,
		Epsilon:      res.Epsilon,
		EpsilonUpper: p.Cost.Upper,
		Mechanism:    p.Mechanism.Name(),
	}
	span.Set("epsilon", res.Epsilon)
	e.spent += res.Epsilon
	if err := e.append(ctx, Entry{Query: p.Query, Answer: ans, Epsilon: res.Epsilon}); err != nil {
		// The charge stands — the noisy answer exists even if the analyst
		// never sees it — so a crash can only over-, never under-account.
		return nil, err
	}
	e.remember(p.Query, p.Key, ans.Counts)
	return ans, nil
}

// Abort abandons a prepared plan without running (or after a run whose
// result is discarded before any noise reached the caller): the
// reservation is released and nothing is charged or logged.
func (e *Engine) Abort(p *exec.Plan) {
	e.mu.Lock()
	defer e.mu.Unlock()
	_ = e.finish(p)
}

// finish retires a plan's reservation. Caller holds e.mu.
func (e *Engine) finish(p *exec.Plan) error {
	if p.Owner != e {
		return fmt.Errorf("engine: plan was prepared by a different engine")
	}
	if p.Finished {
		return fmt.Errorf("engine: plan already finished")
	}
	p.Finished = true
	e.reserved -= p.Cost.Upper
	if e.reserved < 0 {
		e.reserved = 0 // absorb float drift; reservations are short-lived
	}
	e.inflight--
	if e.inflight == 0 {
		e.idle.Broadcast()
	}
	return nil
}

// TranslationNeed pairs a translation warm item with the source to warm
// it in, so a scheduler batching across engines can group items by
// source (engines of one dataset share one) and pay one fanned-out
// sampling pass per source.
type TranslationNeed struct {
	Source translate.Source
	Item   translate.Item
}

// TranslationNeeds returns the Monte-Carlo translation plans q's
// applicable mechanisms would compute inside Prepare, without computing
// them. A batching scheduler calls it for every request of a batch
// before admission and warms the union via TranslateBatch; errors (a
// malformed query, an untransformable workload) return nil and are left
// for Prepare to surface.
func (e *Engine) TranslationNeeds(q *query.Query) []TranslationNeed {
	if q.Validate() != nil {
		return nil
	}
	tr, err := e.transform(q)
	if err != nil {
		return nil
	}
	var out []TranslationNeed
	for _, m := range e.mechs {
		tw, ok := m.(mechanism.TranslationWarmer)
		if !ok {
			continue
		}
		if src, item, ok := tw.TranslationNeed(q, tr); ok {
			out = append(out, TranslationNeed{Source: src, Item: item})
		}
	}
	return out
}

// planNeeds asks the mechanism which noise-free evaluations its Run will
// read (mechanism.Prefetcher); mechanisms that don't say get no warmup
// and simply evaluate through the cache themselves.
func planNeeds(m mechanism.Mechanism, q *query.Query, tr *workload.Transformed) mechanism.Prefetch {
	if pf, ok := m.(mechanism.Prefetcher); ok {
		return pf.Prefetch(q, tr)
	}
	return mechanism.Prefetch{}
}

// append records one transcript entry and runs the commit hook. Caller
// holds e.mu. On hook failure the entry stays in the in-memory log (and
// any charge the caller applied stands) and an ErrPersist-wrapped error
// is returned for the caller to surface instead of the answer.
//
// Provenance (TraceID, At) is stamped only when ctx carries a request ID:
// engine-direct callers keep byte-identical transcripts across runs and
// storage backends, while served requests get attributable entries.
func (e *Engine) append(ctx context.Context, en Entry) error {
	if id := obs.RequestID(ctx); id != "" {
		en.TraceID = id
		en.At = time.Now()
	}
	n := len(e.log)
	e.log = append(e.log, en)
	if e.onCommit == nil {
		return nil
	}
	if err := e.onCommit(ctx, n, en); err != nil {
		return fmt.Errorf("engine: commit entry %d: %v: %w", n, err, ErrPersist)
	}
	return nil
}

// ChargeExternal reserves and charges privacy loss for a mechanism that
// runs outside the engine's own suite (the Appendix E aggregate
// extensions). It enforces the same analyzer invariants as Ask: the upper
// bound must fit the remaining budget (otherwise ErrDenied and nothing is
// charged), and the actual loss must not exceed the declared upper bound.
func (e *Engine) ChargeExternal(upper, actual float64, label string) error {
	if upper < 0 || actual < 0 || actual > upper+epsTol {
		return fmt.Errorf("engine: invalid external charge actual=%v upper=%v", actual, upper)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.sealed {
		return ErrSealed
	}
	// Reservations held by in-flight plans count as spent here too:
	// otherwise an external charge racing a prepared plan could jointly
	// overrun B even though each passed its own admission check.
	if upper > e.budget-e.spent-e.reserved+epsTol {
		if err := e.append(context.Background(), Entry{Label: label, Denied: true}); err != nil {
			return err
		}
		return ErrDenied
	}
	e.spent += actual
	return e.append(context.Background(), Entry{Label: label, Epsilon: actual})
}

// Seal closes the engine to new interactions: once it returns, any
// in-flight interaction has fully committed — Seal waits for every
// prepared plan to finish (Commit or Abort) as well as on the engine lock
// behind any single-phase caller — and every later one fails with
// ErrSealed, charging and logging nothing. Callers retiring a session's
// durable log seal first, so no commit can race the log's close.
func (e *Engine) Seal() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sealed = true
	for e.inflight > 0 {
		e.idle.Wait()
	}
}

// LaplaceNoise draws n independent Laplace(0, b) samples from the
// engine's own random source — the source the owner's seed policy
// governs. Mechanisms that run outside the engine's suite (the Appendix E
// aggregate extensions) must draw their noise here rather than from a
// caller-supplied generator, so a server's crypto-random-by-default rule
// covers them too.
func (e *Engine) LaplaceNoise(b float64, n int) []float64 {
	// rng draws are serialized by execMu (not the engine lock) so they
	// never race a mechanism run executing outside the lock.
	e.execMu.Lock()
	defer e.execMu.Unlock()
	return noise.LaplaceVec(e.rng, b, n)
}

// better reports whether a should be preferred over b under the engine mode.
func (e *Engine) better(a, b Choice) bool {
	if e.mode == Optimistic {
		if a.Cost.Lower != b.Cost.Lower {
			return a.Cost.Lower < b.Cost.Lower
		}
		return a.Cost.Upper < b.Cost.Upper
	}
	if a.Cost.Upper != b.Cost.Upper {
		return a.Cost.Upper < b.Cost.Upper
	}
	return a.Cost.Lower < b.Cost.Lower
}

// transform computes (and caches) T(W) for the query's workload through
// the engine's transformation cache; repeated workloads (common in the
// entity-resolution case study) skip re-partitioning, and with a shared
// cache (Config.Transforms) concurrent sessions share one transformation
// and one noise-free evaluation per workload.
func (e *Engine) transform(q *query.Query) (*workload.Transformed, error) {
	return e.transforms.Transform(e.data.Schema(), q.Predicates)
}

// ValidateTranscript checks the §6 validity invariants (Definition 6.1) on
// a transcript against a budget B: actual losses are nonnegative and sum to
// at most B, denied entries charge nothing, and no single answered entry's
// reserved worst case could have exceeded the budget remaining when it was
// asked. It returns the total actual loss.
func ValidateTranscript(entries []Entry, budget float64) (float64, error) {
	var spent float64
	for i, e := range entries {
		if e.Epsilon < 0 {
			return spent, fmt.Errorf("engine: entry %d has negative epsilon %v", i, e.Epsilon)
		}
		if e.Denied {
			if e.Epsilon != 0 {
				return spent, fmt.Errorf("engine: denied entry %d charged %v", i, e.Epsilon)
			}
			continue
		}
		if e.Answer != nil {
			if e.Answer.Epsilon != e.Epsilon {
				return spent, fmt.Errorf("engine: entry %d epsilon mismatch: %v vs %v", i, e.Answer.Epsilon, e.Epsilon)
			}
			if e.Answer.EpsilonUpper+epsTol < e.Epsilon {
				return spent, fmt.Errorf("engine: entry %d actual %v above reserved %v", i, e.Epsilon, e.Answer.EpsilonUpper)
			}
			if spent+e.Answer.EpsilonUpper > budget+epsTol {
				return spent, fmt.Errorf("engine: entry %d reserved %v beyond remaining %v", i, e.Answer.EpsilonUpper, budget-spent)
			}
		}
		spent += e.Epsilon
		if spent > budget+epsTol {
			return spent, fmt.Errorf("engine: cumulative loss %v exceeds budget %v at entry %d", spent, budget, i)
		}
	}
	return spent, nil
}
