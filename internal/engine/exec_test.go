package engine

import (
	"context"
	"errors"
	"math"
	"reflect"
	"sync"
	"testing"

	"repro/internal/accuracy"
	"repro/internal/noise"
)

// TestTwoPhaseMatchesAsk: driving Prepare/Execute/Commit by hand must be
// indistinguishable from Ask with the same seed.
func TestTwoPhaseMatchesAsk(t *testing.T) {
	d := testTable(t, []int{100, 200, 300, 400})
	q := histQuery(t, 4, accuracy.Requirement{Alpha: 40, Beta: 0.05})

	direct := newEngine(t, d, 10, Optimistic)
	ansA, err := direct.Ask(q)
	if err != nil {
		t.Fatal(err)
	}

	phased := newEngine(t, d, 10, Optimistic)
	plan, immediate, err := phased.Prepare(context.Background(), q)
	if err != nil || immediate != nil {
		t.Fatalf("Prepare: plan=%v immediate=%v err=%v", plan, immediate, err)
	}
	if plan.Cost.Upper <= 0 || plan.Mechanism == nil {
		t.Fatalf("plan incomplete: %+v", plan)
	}
	ansB, err := phased.Commit(context.Background(), plan, phased.Execute(context.Background(), plan))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ansA, ansB) {
		t.Fatalf("answers differ:\nAsk:      %+v\ntwo-phase: %+v", ansA, ansB)
	}
	if !reflect.DeepEqual(direct.Transcript(), phased.Transcript()) {
		t.Fatal("transcripts differ")
	}
}

// TestAbortReleasesReservation: an aborted plan must charge nothing, log
// nothing, and free its reserved budget for the next query.
func TestAbortReleasesReservation(t *testing.T) {
	d := testTable(t, []int{100, 200})
	e := newEngine(t, d, 0.25, Optimistic)
	q := histQuery(t, 2, accuracy.Requirement{Alpha: 20, Beta: 0.05})

	plan, _, err := e.Prepare(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Cost.Upper <= e.Budget()/2 {
		t.Fatalf("plan upper %v too cheap to make the reservation observable under budget %v", plan.Cost.Upper, e.Budget())
	}
	// While the plan is in flight its reservation blocks a second query
	// of the same cost.
	if _, _, err := e.Prepare(context.Background(), q); !errors.Is(err, ErrDenied) {
		t.Fatalf("concurrent Prepare: got %v, want ErrDenied", err)
	}
	e.Abort(plan)
	if got := e.Spent(); got != 0 {
		t.Fatalf("abort charged %v", got)
	}
	// ErrDenied above logged a denial entry; nothing else may be there.
	if n := e.TranscriptLen(); n != 1 {
		t.Fatalf("transcript has %d entries, want only the denial", n)
	}
	if _, err := e.Ask(q); err != nil {
		t.Fatalf("Ask after Abort: %v", err)
	}
}

// TestChargeExternalSeesReservations: an external charge racing a
// prepared plan must count the plan's reservation, or the two could
// jointly overrun B.
func TestChargeExternalSeesReservations(t *testing.T) {
	d := testTable(t, []int{100, 200})
	e := newEngine(t, d, 0.25, Optimistic)
	q := histQuery(t, 2, accuracy.Requirement{Alpha: 20, Beta: 0.05})
	plan, _, err := e.Prepare(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	// The plan reserved most of B; an external charge of the same size
	// no longer fits and must be denied, not admitted against B-spent.
	if err := e.ChargeExternal(plan.Cost.Upper, plan.Cost.Upper, "sum"); !errors.Is(err, ErrDenied) {
		t.Fatalf("external charge during in-flight plan: got %v, want ErrDenied", err)
	}
	if _, err := e.Commit(context.Background(), plan, e.Execute(context.Background(), plan)); err != nil {
		t.Fatal(err)
	}
	if spent, err := e.Validate(); err != nil || spent > e.Budget()+1e-9 {
		t.Fatalf("invariant broken: spent=%v err=%v", spent, err)
	}
	// With the plan settled the reservation is gone; a small external
	// charge fits again.
	if err := e.ChargeExternal(0.01, 0.01, "sum"); err != nil {
		t.Fatalf("external charge after commit: %v", err)
	}
}

// TestDoubleCommitRejected: a plan finishes exactly once.
func TestDoubleCommitRejected(t *testing.T) {
	d := testTable(t, []int{50})
	e := newEngine(t, d, 10, Optimistic)
	q := histQuery(t, 1, accuracy.Requirement{Alpha: 20, Beta: 0.05})
	plan, _, err := e.Prepare(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	out := e.Execute(context.Background(), plan)
	if _, err := e.Commit(context.Background(), plan, out); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Commit(context.Background(), plan, out); err == nil {
		t.Fatal("second Commit must fail")
	}
	if spent, err := e.Validate(); err != nil || spent > e.Budget() {
		t.Fatalf("transcript broken after double commit attempt: spent=%v err=%v", spent, err)
	}
}

// TestCommitRejectsForeignPlan: plans are bound to their issuing engine.
func TestCommitRejectsForeignPlan(t *testing.T) {
	d := testTable(t, []int{50})
	e1 := newEngine(t, d, 10, Optimistic)
	e2 := newEngine(t, d, 10, Optimistic)
	q := histQuery(t, 1, accuracy.Requirement{Alpha: 20, Beta: 0.05})
	plan, _, err := e1.Prepare(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Commit(context.Background(), plan, e1.Execute(context.Background(), plan)); err == nil {
		t.Fatal("foreign Commit must fail")
	}
	if _, err := e1.Commit(context.Background(), plan, e1.Execute(context.Background(), plan)); err != nil {
		t.Fatalf("rightful Commit: %v", err)
	}
}

// TestSealWaitsForInflightPlans: Seal must not return while a prepared
// plan is unfinished, so a session close can never race a commit.
func TestSealWaitsForInflightPlans(t *testing.T) {
	d := testTable(t, []int{100})
	e := newEngine(t, d, 10, Optimistic)
	q := histQuery(t, 1, accuracy.Requirement{Alpha: 20, Beta: 0.05})
	plan, _, err := e.Prepare(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	sealed := make(chan struct{})
	go func() {
		e.Seal()
		close(sealed)
	}()
	select {
	case <-sealed:
		t.Fatal("Seal returned while a plan was in flight")
	default:
	}
	if _, err := e.Commit(context.Background(), plan, e.Execute(context.Background(), plan)); err != nil {
		t.Fatal(err)
	}
	<-sealed
	// After Seal, the committed entry is in the transcript and new
	// interactions fail.
	if n := e.TranscriptLen(); n != 1 {
		t.Fatalf("transcript has %d entries, want 1", n)
	}
	if _, _, err := e.Prepare(context.Background(), q); !errors.Is(err, ErrSealed) {
		t.Fatalf("Prepare after Seal: got %v, want ErrSealed", err)
	}
}

// TestConcurrentTwoPhaseKeepsInvariant: many goroutines driving the
// phased API on one engine (run under -race) must leave a transcript
// that validates and never overruns the budget, in any interleaving.
func TestConcurrentTwoPhaseKeepsInvariant(t *testing.T) {
	d := testTable(t, []int{100, 200, 300})
	e, err := New(d, Config{Budget: 5, Mode: Optimistic, Rng: noise.NewRand(3)})
	if err != nil {
		t.Fatal(err)
	}
	q := histQuery(t, 3, accuracy.Requirement{Alpha: 60, Beta: 0.1})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			plan, ans, err := e.Prepare(context.Background(), q)
			if plan == nil {
				if err != nil && !errors.Is(err, ErrDenied) {
					t.Errorf("Prepare: %v", err)
				}
				_ = ans
				return
			}
			if _, err := e.Commit(context.Background(), plan, e.Execute(context.Background(), plan)); err != nil {
				t.Errorf("Commit: %v", err)
			}
		}()
	}
	wg.Wait()
	spent, err := e.Validate()
	if err != nil {
		t.Fatalf("transcript invalid: %v", err)
	}
	if spent > e.Budget()+1e-9 || math.IsNaN(spent) {
		t.Fatalf("spent %v beyond budget %v", spent, e.Budget())
	}
}
