package engine

import (
	"fmt"

	"repro/internal/query"
	"repro/internal/workload"
)

// ExplainChoice is one applicable mechanism's translated privacy-cost
// interval, as reported by Explain.
type ExplainChoice struct {
	Mechanism    string
	EpsilonLower float64
	EpsilonUpper float64
	Affordable   bool
}

// Explain is the engine's dry-run report for one query: exactly what
// Prepare would decide — translation, mechanism choice, admission — plus
// the predicted scan, with the one difference that nothing is reserved,
// charged, executed or logged. See Engine.Explain.
type Explain struct {
	// Key is the canonical workload key; WorkloadID identifies it in the
	// analytics plane.
	Key string
	// Mechanism is what Prepare would run ("cache" on a reuse hit, ""
	// when the query would be denied).
	Mechanism string
	// EpsilonLower/EpsilonUpper is the chosen mechanism's translated
	// privacy-cost interval; the commit would charge an actual loss
	// within it. Both zero on reuse hits and denials.
	EpsilonLower float64
	EpsilonUpper float64
	// Denied predicts Algorithm 1's "Query Denied": no applicable
	// mechanism's worst case fits the remaining budget.
	Denied bool
	// ReuseHit predicts a free answer from the §9 inferencer cache.
	ReuseHit bool
	// TransformCacheHit / TranslateCacheHit report whether the workload
	// transformation cache and the shared Monte-Carlo translation plane
	// already held this workload when Explain ran. (Explain itself warms
	// both, exactly like Prepare — that is cache state, not budget.)
	TransformCacheHit bool
	TranslateCacheHit bool
	// Remaining is budget - spent - reserved at peek time: the figure
	// admission would check EpsilonUpper against.
	Remaining float64
	// Sensitivity and Partitions describe the transformed workload
	// (‖W‖₁ and |domW(R)|, -1 when implicit).
	Sensitivity float64
	Partitions  int
	// PlannedColumns is the deduplicated sorted set of schema positions
	// the noise-free scan would read; PredictedScanBytes is its byte
	// traffic, matching BatchStats accounting exactly (ScanPlanExact is
	// false when the workload would take the row path instead, making
	// the column prediction inapplicable).
	PlannedColumns     []int
	PredictedScanBytes int64
	ScanPlanExact      bool
	// Choices lists every applicable mechanism's cost interval.
	Choices []ExplainChoice
}

// Explain runs the Prepare path — validation, workload transformation
// (through the shared per-dataset cache), Monte-Carlo translation of
// every applicable mechanism (through the shared translation plane) and
// the admission decision — without reserving budget, executing anything,
// charging any loss or appending to the transcript. The zero-ε guarantee
// is structural: Explain never touches e.spent, e.reserved or e.log, so
// transcripts and WALs are byte-identical before and after any number of
// Explain calls. A predicted denial is a report (Denied=true), not an
// error, and is NOT logged — unlike Prepare, which records real denials.
func (e *Engine) Explain(q *query.Query) (*Explain, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	key := workload.Key(q.Predicates)
	ex := &Explain{Key: key, TransformCacheHit: e.transforms.Has(key)}
	tr, err := e.transform(q)
	if err != nil {
		return nil, err
	}
	ex.Sensitivity = tr.Sensitivity()
	ex.Partitions = tr.NumPartitions()
	ex.PlannedColumns, ex.PredictedScanBytes, ex.ScanPlanExact = tr.ScanPlan(e.data)
	if e.translations != nil {
		ex.TranslateCacheHit = e.translations.Ready(key)
	}

	// Reuse peek and budget snapshot under the engine lock, read-only —
	// the one place Prepare and Explain must agree on the numbers.
	e.mu.Lock()
	ex.Remaining = e.budget - e.spent - e.reserved
	if e.reuse {
		if c, ok := e.answers[key]; ok && c.reusable(q) {
			ex.ReuseHit = true
		}
	}
	e.mu.Unlock()
	if ex.ReuseHit {
		ex.Mechanism = "cache"
		return ex, nil
	}

	// Translation outside the lock (like Translations): mechanisms and
	// the transformed workload are immutable, and the shared translation
	// plane serializes itself.
	var best *Choice
	for _, m := range e.mechs {
		if !m.Applicable(q, tr) {
			continue
		}
		cost, err := m.Translate(q, tr)
		if err != nil {
			return nil, fmt.Errorf("engine: %s translate: %w", m.Name(), err)
		}
		affordable := cost.Upper <= ex.Remaining+epsTol
		ex.Choices = append(ex.Choices, ExplainChoice{
			Mechanism:    m.Name(),
			EpsilonLower: cost.Lower,
			EpsilonUpper: cost.Upper,
			Affordable:   affordable,
		})
		if !affordable {
			continue
		}
		c := Choice{Mechanism: m, Cost: cost}
		if best == nil || e.better(c, *best) {
			best = &c
		}
	}
	if best == nil {
		ex.Denied = true
		return ex, nil
	}
	ex.Mechanism = best.Mechanism.Name()
	ex.EpsilonLower = best.Cost.Lower
	ex.EpsilonUpper = best.Cost.Upper
	return ex, nil
}
