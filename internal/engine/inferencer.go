package engine

import (
	"repro/internal/accuracy"
	"repro/internal/query"
)

// The inferencer implements the paper's §9 future-work item (b): reusing
// historical answers to cut the privacy cost of new queries. When enabled
// (Config.Reuse), the engine caches the noisy counts of every answered WCQ
// together with the accuracy it was answered at. A later query over the
// same workload whose requirement is no stricter (α ≥ α_cached and
// β ≥ β_cached) is answered from the cache as pure post-processing — zero
// additional privacy loss:
//
//   - WCQ: the cached counts already satisfy (α_cached, β_cached) ⊆ (α, β).
//   - ICQ: thresholding counts with two-sided error ≤ α_cached (w.p.
//     1-β_cached) mislabels only predicates within ±α_cached ≤ ±α of c.
//   - TCQ: ranking by counts with error ≤ α_cached mislabels only bins
//     within ±2·α_cached of the k-th largest; reuse therefore requires
//     2·α_cached ≤ α for top-k queries.
type cachedAnswer struct {
	counts []float64
	req    accuracy.Requirement
}

// reusable reports whether the cached answer satisfies the new requirement
// for the given query kind.
func (c *cachedAnswer) reusable(q *query.Query) bool {
	if q.Req.Beta < c.req.Beta {
		return false
	}
	switch q.Kind {
	case query.TCQ:
		return 2*c.req.Alpha <= q.Req.Alpha
	default:
		return c.req.Alpha <= q.Req.Alpha
	}
}

// tryReuse answers q from the cache if possible. Caller holds e.mu.
func (e *Engine) tryReuse(q *query.Query, key string) *Answer {
	if !e.reuse {
		return nil
	}
	c, ok := e.answers[key]
	if !ok || !c.reusable(q) {
		return nil
	}
	ans := &Answer{
		Predicates: q.Predicates,
		Epsilon:    0,
		Mechanism:  "cache",
	}
	switch q.Kind {
	case query.WCQ:
		ans.Counts = append([]float64(nil), c.counts...)
	case query.ICQ:
		ans.Selected = accuracy.SelectAbove(c.counts, q.Threshold)
	case query.TCQ:
		ans.Selected = accuracy.SelectTopK(c.counts, q.K)
	}
	return ans
}

// remember stores a WCQ answer for future reuse, keeping the most accurate
// answer per workload. Caller holds e.mu.
func (e *Engine) remember(q *query.Query, key string, counts []float64) {
	if !e.reuse || q.Kind != query.WCQ || counts == nil {
		return
	}
	prev, ok := e.answers[key]
	if ok && !better2D(q.Req, prev.req) {
		return
	}
	e.answers[key] = &cachedAnswer{
		counts: append([]float64(nil), counts...),
		req:    q.Req,
	}
}

// better2D reports whether requirement a dominates b (at least as accurate
// on both axes, strictly better on one).
func better2D(a, b accuracy.Requirement) bool {
	if a.Alpha > b.Alpha || a.Beta > b.Beta {
		return false
	}
	return a.Alpha < b.Alpha || a.Beta < b.Beta
}

// Advise implements the paper's §9 future-work item (a), the query
// recommender's core primitive: it reports the choice the engine would make
// for q (by its mode) and whether the remaining budget covers its worst
// case — without running anything or spending budget.
func (e *Engine) Advise(q *query.Query) (best *Choice, affordable bool, err error) {
	choices, err := e.Translations(q)
	if err != nil {
		return nil, false, err
	}
	for i := range choices {
		if best == nil || e.better(choices[i], *best) {
			best = &choices[i]
		}
	}
	if best == nil {
		return nil, false, nil
	}
	return best, best.Cost.Upper <= e.Remaining()+epsTol, nil
}
