package engine

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/accuracy"
	"repro/internal/dataset"
	"repro/internal/mechanism"
	"repro/internal/noise"
	"repro/internal/query"
	"repro/internal/strategy"
	"repro/internal/translate"
	"repro/internal/workload"
)

// Differential test for the translation plane: the shared-cache,
// persisted-sidecar and batch-vectorized paths must all be
// indistinguishable from a plain engine with a private per-mechanism
// cache — bit-identical ε per answer and byte-identical Definition 6.1
// transcripts.

func prefixQuery(t *testing.T, bins int, req accuracy.Requirement) *query.Query {
	t.Helper()
	preds, err := workload.Prefix1D("v", 0, 10*float64(bins), 10)
	if err != nil {
		t.Fatal(err)
	}
	q, err := query.NewWCQ(preds, req)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// smEngine builds an engine whose only mechanism is the strategy
// mechanism, reading translations through src (nil = private cache).
func smEngine(t *testing.T, d *dataset.Table, src translate.Source) *Engine {
	t.Helper()
	e, err := New(d, Config{
		Budget:       100,
		Mode:         Optimistic,
		Rng:          noise.NewRand(7),
		Mechanisms:   []mechanism.Mechanism{mechanism.NewSM(strategy.H2, 400, 1)},
		Translations: src,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// askAll runs the fixed query sequence and returns the transcript bytes.
func askAll(t *testing.T, e *Engine, qs []*query.Query) ([]float64, [][]byte) {
	t.Helper()
	var epss []float64
	for _, q := range qs {
		ans, err := e.Ask(q)
		if err != nil {
			t.Fatal(err)
		}
		epss = append(epss, ans.Epsilon)
	}
	var enc [][]byte
	for _, en := range e.Transcript() {
		b, err := EncodeEntry(en)
		if err != nil {
			t.Fatal(err)
		}
		enc = append(enc, b)
	}
	return epss, enc
}

func TestTranslationPlaneDifferential(t *testing.T) {
	d := testTable(t, []int{100, 200, 300, 400, 100, 200, 300, 400})
	req := accuracy.Requirement{Alpha: 25, Beta: 0.05}
	qs := []*query.Query{
		histQuery(t, 8, req),
		prefixQuery(t, 8, req),
		histQuery(t, 8, req), // repeat: must hit, not resample
	}

	// Baseline: private in-mechanism cache, the pre-plane behavior.
	baseEps, baseTx := askAll(t, smEngine(t, d, nil), qs)

	// Shared cache: two engines ("sessions") read through one cache.
	shared := translate.NewCache("")
	sharedEps, sharedTx := askAll(t, smEngine(t, d, shared), qs)
	shared2Eps, _ := askAll(t, smEngine(t, d, shared), qs)
	if st := shared.Stats(); st.Misses != 2 {
		t.Fatalf("two sessions over one cache paid %d samplings, want 2", st.Misses)
	}

	// Sidecar: a first process life computes and persists; a second life
	// loads the sidecar and must serve without sampling.
	scPath := filepath.Join(t.TempDir(), "translate.tc")
	life1 := translate.NewCache(scPath)
	if _, _ = askAll(t, smEngine(t, d, life1), qs); life1.Stats().Misses != 2 {
		t.Fatalf("first life paid %d samplings, want 2", life1.Stats().Misses)
	}
	life2 := translate.NewCache(scPath)
	if n, _, err := life2.LoadSidecar(); err != nil || n != 2 {
		t.Fatalf("sidecar load: n=%d err=%v, want 2 plans", n, err)
	}
	sidecarEps, sidecarTx := askAll(t, smEngine(t, d, life2), qs)
	if st := life2.Stats(); st.Misses != 0 {
		t.Fatalf("second life resampled %d times despite the sidecar", st.Misses)
	}

	// Batch: the scheduler's Phase-0 warm pass (TranslationNeeds →
	// TranslateBatch) computes every fresh plan up front.
	warm := translate.NewCache("")
	be := smEngine(t, d, warm)
	var items []translate.Item
	for _, q := range qs {
		for _, n := range be.TranslationNeeds(q) {
			items = append(items, n.Item)
		}
	}
	if n := warm.TranslateBatch(items); n != 2 {
		t.Fatalf("batch warm computed %d plans, want 2", n)
	}
	batchEps, batchTx := askAll(t, be, qs)
	if st := warm.Stats(); st.Misses != 2 {
		t.Fatalf("asks after batch warm resampled (misses=%d, want the batch's 2)", st.Misses)
	}

	// Every path: bit-identical ε, byte-identical transcript.
	for name, eps := range map[string][]float64{
		"shared": sharedEps, "shared-2nd-session": shared2Eps,
		"sidecar": sidecarEps, "batch": batchEps,
	} {
		for i := range baseEps {
			if eps[i] != baseEps[i] {
				t.Fatalf("%s: ε[%d] = %v, baseline %v", name, i, eps[i], baseEps[i])
			}
		}
	}
	for name, tx := range map[string][][]byte{
		"shared": sharedTx, "sidecar": sidecarTx, "batch": batchTx,
	} {
		if len(tx) != len(baseTx) {
			t.Fatalf("%s: %d transcript entries, baseline %d", name, len(tx), len(baseTx))
		}
		for i := range tx {
			if !bytes.Equal(tx[i], baseTx[i]) {
				t.Fatalf("%s: transcript entry %d differs:\n%s\nvs baseline\n%s", name, i, tx[i], baseTx[i])
			}
		}
	}
}
