// Package query defines APEx's exploration queries (§3.1) — workload
// counting queries (WCQ), iceberg counting queries (ICQ) and top-k counting
// queries (TCQ) — together with a parser for the paper's declarative
// SQL-like syntax:
//
//	BIN D ON COUNT(*) WHERE W = { pred, pred, ... }
//	  [HAVING COUNT(*) > c]
//	  [ORDER BY COUNT(*) LIMIT k]
//	  ERROR alpha CONFIDENCE 1-beta ;
//
// Queries can also be constructed programmatically with NewWCQ/NewICQ/NewTCQ.
package query

import (
	"fmt"

	"repro/internal/accuracy"
	"repro/internal/dataset"
)

// Kind enumerates the three exploration query types.
type Kind int

// Query kinds.
const (
	// WCQ is a workload counting query: one count per predicate.
	WCQ Kind = iota
	// ICQ is an iceberg counting query: predicates whose count exceeds a
	// threshold.
	ICQ
	// TCQ is a top-k counting query: the k predicates with largest counts.
	TCQ
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case WCQ:
		return "WCQ"
	case ICQ:
		return "ICQ"
	case TCQ:
		return "TCQ"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Query is one exploration query with its accuracy requirement.
type Query struct {
	Kind       Kind
	Predicates []dataset.Predicate
	// Threshold is the HAVING threshold c (ICQ only).
	Threshold float64
	// K is the LIMIT of a top-k query (TCQ only).
	K int
	// Req is the (α, β) accuracy requirement.
	Req accuracy.Requirement
}

// NewWCQ builds a workload counting query.
func NewWCQ(preds []dataset.Predicate, req accuracy.Requirement) (*Query, error) {
	q := &Query{Kind: WCQ, Predicates: preds, Req: req}
	return q, q.Validate()
}

// NewICQ builds an iceberg counting query with threshold c.
func NewICQ(preds []dataset.Predicate, c float64, req accuracy.Requirement) (*Query, error) {
	q := &Query{Kind: ICQ, Predicates: preds, Threshold: c, Req: req}
	return q, q.Validate()
}

// NewTCQ builds a top-k counting query.
func NewTCQ(preds []dataset.Predicate, k int, req accuracy.Requirement) (*Query, error) {
	q := &Query{Kind: TCQ, Predicates: preds, K: k, Req: req}
	return q, q.Validate()
}

// L returns the workload size.
func (q *Query) L() int { return len(q.Predicates) }

// Validate checks structural invariants.
func (q *Query) Validate() error {
	if len(q.Predicates) == 0 {
		return fmt.Errorf("query: empty workload")
	}
	if err := q.Req.Validate(); err != nil {
		return err
	}
	switch q.Kind {
	case WCQ:
	case ICQ:
		if q.Threshold < 0 {
			return fmt.Errorf("query: negative ICQ threshold %g", q.Threshold)
		}
	case TCQ:
		if q.K <= 0 || q.K > len(q.Predicates) {
			return fmt.Errorf("query: TCQ k=%d out of range 1..%d", q.K, len(q.Predicates))
		}
	default:
		return fmt.Errorf("query: unknown kind %v", q.Kind)
	}
	return nil
}

// String renders the query in the declarative syntax.
func (q *Query) String() string {
	s := "BIN D ON COUNT(*) WHERE W = {"
	for i, p := range q.Predicates {
		if i > 0 {
			s += ", "
		}
		s += p.String()
	}
	s += "}"
	switch q.Kind {
	case ICQ:
		s += fmt.Sprintf(" HAVING COUNT(*) > %g", q.Threshold)
	case TCQ:
		s += fmt.Sprintf(" ORDER BY COUNT(*) LIMIT %d", q.K)
	}
	s += fmt.Sprintf(" ERROR %g CONFIDENCE %g;", q.Req.Alpha, 1-q.Req.Beta)
	return s
}
