package query

import (
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	q, err := ParseLine("  BIN D ON COUNT(*) WHERE W = { age BETWEEN 0 AND 50 } ERROR 100 CONFIDENCE 0.95;  ")
	if err != nil {
		t.Fatal(err)
	}
	if q == nil || q.Kind != WCQ || len(q.Predicates) != 1 {
		t.Fatalf("q = %+v", q)
	}

	for _, blank := range []string{"", "   ", "\t", "# a comment", "  # indented comment"} {
		q, err := ParseLine(blank)
		if err != nil || q != nil {
			t.Errorf("ParseLine(%q) = %v, %v; want nil, nil", blank, q, err)
		}
	}

	if _, err := ParseLine("BIN D ON"); err == nil {
		t.Error("malformed line must error")
	}
}

func TestNewLineScannerLongLine(t *testing.T) {
	// A line beyond bufio's 64 KiB default must still scan.
	long := "# " + strings.Repeat("x", 100_000)
	sc := NewLineScanner(strings.NewReader(long + "\n"))
	if !sc.Scan() {
		t.Fatalf("scan failed: %v", sc.Err())
	}
	if sc.Text() != long {
		t.Fatalf("long line truncated to %d bytes", len(sc.Text()))
	}
}
