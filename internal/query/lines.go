package query

import (
	"bufio"
	"io"
	"strings"
)

// maxLineBytes bounds one query line (and the scanner buffer) at 1 MiB —
// generously above any realistic workload rendering, but finite so a
// malformed stream can't balloon memory.
const maxLineBytes = 1 << 20

// NewLineScanner returns a scanner configured for the one-query-per-line
// protocol shared by the apex CLI and the apex-server query endpoint.
func NewLineScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, maxLineBytes), maxLineBytes)
	return sc
}

// ParseLine parses one line of query text as both front ends accept it:
// surrounding whitespace is trimmed, and blank lines and #-comments parse
// to (nil, nil). Everything else goes through Parse, so the CLI and the
// server share one parser entry point and one error format.
func ParseLine(line string) (*Query, error) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return nil, nil
	}
	return Parse(line)
}
