package query

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString // single-quoted literal
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("'%s'", t.text)
	default:
		return t.text
	}
}

// lexer tokenizes the query language. Attribute names may be bare
// identifiers or double-quoted (for names with spaces, e.g. "capital gain");
// string literals are single-quoted; operators are =, !=, <, <=, >, >=.
type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case c == '"':
			if err := l.lexQuoted('"'); err != nil {
				return nil, err
			}
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
			l.lexNumber()
		case isIdentStart(c):
			l.lexIdent()
		default:
			if err := l.lexSymbol(); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) emit(t token) { l.toks = append(l.toks, t) }

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
}

// lexQuoted reads a double-quoted attribute name into an identifier token.
func (l *lexer) lexQuoted(q byte) error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) && l.src[l.pos] != q {
		sb.WriteByte(l.src[l.pos])
		l.pos++
	}
	if l.pos >= len(l.src) {
		return fmt.Errorf("query: unterminated quoted name at offset %d", start)
	}
	l.pos++ // closing quote
	l.emit(token{kind: tokIdent, text: sb.String(), pos: start})
	return nil
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++
	var sb strings.Builder
	for l.pos < len(l.src) && l.src[l.pos] != '\'' {
		sb.WriteByte(l.src[l.pos])
		l.pos++
	}
	if l.pos >= len(l.src) {
		return fmt.Errorf("query: unterminated string at offset %d", start)
	}
	l.pos++
	l.emit(token{kind: tokString, text: sb.String(), pos: start})
	return nil
}

func (l *lexer) lexNumber() {
	start := l.pos
	for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.' ||
		l.src[l.pos] == 'e' || l.src[l.pos] == 'E' ||
		((l.src[l.pos] == '+' || l.src[l.pos] == '-') && l.pos > start &&
			(l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E'))) {
		l.pos++
	}
	l.emit(token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && (isIdentStart(l.src[l.pos]) || isDigit(l.src[l.pos])) {
		l.pos++
	}
	l.emit(token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexSymbol() error {
	start := l.pos
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "!=", "<>":
		l.pos += 2
		if two == "<>" {
			two = "!="
		}
		l.emit(token{kind: tokSymbol, text: two, pos: start})
		return nil
	}
	switch c := l.src[l.pos]; c {
	case '=', '<', '>', '{', '}', '(', ')', ',', ';', '*':
		l.pos++
		l.emit(token{kind: tokSymbol, text: string(c), pos: start})
		return nil
	default:
		return fmt.Errorf("query: unexpected character %q at offset %d", string(c), start)
	}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
