package query

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/accuracy"
	"repro/internal/dataset"
)

// Parse parses one declarative exploration query:
//
//	BIN D ON COUNT(*) WHERE W = { <pred> [, <pred>]* }
//	  [HAVING COUNT(*) > <number>]
//	  [ORDER BY COUNT(*) LIMIT <int>]
//	  ERROR <number> CONFIDENCE <number> ;
//
// Predicate grammar (case-insensitive keywords):
//
//	pred   := term (OR term)*
//	term   := factor (AND factor)*
//	factor := NOT factor | '(' pred ')' | atom
//	atom   := attr op number | attr '=' 'string' | attr IS [NOT] NULL
//	        | attr BETWEEN number AND number
//	attr   := identifier | "double quoted name"
//	op     := = | != | < | <= | > | >=
//
// BETWEEN is half-open ([lo, hi)), matching the paper's bin convention.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

// acceptKeyword consumes an identifier equal (case-insensitively) to kw.
func (p *parser) acceptKeyword(kw string) bool {
	if p.cur().kind == tokIdent && strings.EqualFold(p.cur().text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("query: expected %s, got %s", kw, p.cur())
	}
	return nil
}

func (p *parser) acceptSymbol(sym string) bool {
	if p.cur().kind == tokSymbol && p.cur().text == sym {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return fmt.Errorf("query: expected %q, got %s", sym, p.cur())
	}
	return nil
}

func (p *parser) expectNumber() (float64, error) {
	neg := false
	if p.cur().kind == tokSymbol && p.cur().text == "-" {
		neg = true
		p.pos++
	}
	if p.cur().kind != tokNumber {
		return 0, fmt.Errorf("query: expected number, got %s", p.cur())
	}
	v, err := strconv.ParseFloat(p.next().text, 64)
	if err != nil {
		return 0, fmt.Errorf("query: bad number: %w", err)
	}
	if neg {
		v = -v
	}
	return v, nil
}

func (p *parser) parseCountStar() error {
	if err := p.expectKeyword("COUNT"); err != nil {
		return err
	}
	if err := p.expectSymbol("("); err != nil {
		return err
	}
	if err := p.expectSymbol("*"); err != nil {
		return err
	}
	return p.expectSymbol(")")
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("BIN"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("D"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	if err := p.parseCountStar(); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("WHERE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("W"); err != nil {
		return nil, err
	}
	if err := p.expectSymbol("="); err != nil {
		return nil, err
	}
	if err := p.expectSymbol("{"); err != nil {
		return nil, err
	}
	var preds []dataset.Predicate
	for {
		pr, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		preds = append(preds, pr)
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if err := p.expectSymbol("}"); err != nil {
		return nil, err
	}

	q := &Query{Kind: WCQ, Predicates: preds}
	if p.acceptKeyword("HAVING") {
		if err := p.parseCountStar(); err != nil {
			return nil, err
		}
		if err := p.expectSymbol(">"); err != nil {
			return nil, err
		}
		c, err := p.expectNumber()
		if err != nil {
			return nil, err
		}
		q.Kind, q.Threshold = ICQ, c
	} else if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		if err := p.parseCountStar(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("LIMIT"); err != nil {
			return nil, err
		}
		k, err := p.expectNumber()
		if err != nil {
			return nil, err
		}
		if k != float64(int(k)) {
			return nil, fmt.Errorf("query: LIMIT must be an integer, got %g", k)
		}
		q.Kind, q.K = TCQ, int(k)
	}

	if err := p.expectKeyword("ERROR"); err != nil {
		return nil, err
	}
	alpha, err := p.expectNumber()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("CONFIDENCE"); err != nil {
		return nil, err
	}
	conf, err := p.expectNumber()
	if err != nil {
		return nil, err
	}
	q.Req = accuracy.Requirement{Alpha: alpha, Beta: 1 - conf}
	p.acceptSymbol(";")
	if p.cur().kind != tokEOF {
		return nil, fmt.Errorf("query: trailing input at %s", p.cur())
	}
	return q, q.Validate()
}

func (p *parser) parsePredicate() (dataset.Predicate, error) {
	return p.parseOr()
}

func (p *parser) parseOr() (dataset.Predicate, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	terms := []dataset.Predicate{left}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		terms = append(terms, right)
	}
	if len(terms) == 1 {
		return terms[0], nil
	}
	return dataset.Or(terms), nil
}

func (p *parser) parseAnd() (dataset.Predicate, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	factors := []dataset.Predicate{left}
	for p.acceptKeyword("AND") {
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		factors = append(factors, right)
	}
	if len(factors) == 1 {
		return factors[0], nil
	}
	return dataset.And(factors), nil
}

func (p *parser) parseFactor() (dataset.Predicate, error) {
	if p.acceptKeyword("NOT") {
		inner, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return dataset.Not{P: inner}, nil
	}
	if p.acceptSymbol("(") {
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return p.parseAtom()
}

func (p *parser) parseAtom() (dataset.Predicate, error) {
	if p.cur().kind != tokIdent {
		return nil, fmt.Errorf("query: expected attribute, got %s", p.cur())
	}
	attr := p.next().text

	// IS [NOT] NULL
	if p.acceptKeyword("IS") {
		neg := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		var pr dataset.Predicate = dataset.IsNull{Attr: attr}
		if neg {
			pr = dataset.Not{P: pr}
		}
		return pr, nil
	}

	// BETWEEN lo AND hi (half-open).
	if p.acceptKeyword("BETWEEN") {
		lo, err := p.expectNumber()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.expectNumber()
		if err != nil {
			return nil, err
		}
		return dataset.Range{Attr: attr, Lo: lo, Hi: hi}, nil
	}

	if p.cur().kind != tokSymbol {
		return nil, fmt.Errorf("query: expected operator after %q, got %s", attr, p.cur())
	}
	opText := p.next().text
	var op dataset.CmpOp
	switch opText {
	case "=":
		op = dataset.Eq
	case "!=":
		op = dataset.Ne
	case "<":
		op = dataset.Lt
	case "<=":
		op = dataset.Le
	case ">":
		op = dataset.Gt
	case ">=":
		op = dataset.Ge
	default:
		return nil, fmt.Errorf("query: unknown operator %q", opText)
	}

	switch p.cur().kind {
	case tokString:
		val := p.next().text
		switch op {
		case dataset.Eq:
			return dataset.StrEq{Attr: attr, Val: val}, nil
		case dataset.Ne:
			return dataset.Not{P: dataset.StrEq{Attr: attr, Val: val}}, nil
		default:
			return nil, fmt.Errorf("query: operator %s not supported for string values", opText)
		}
	case tokNumber:
		v, err := p.expectNumber()
		if err != nil {
			return nil, err
		}
		return dataset.NumCmp{Attr: attr, Op: op, C: v}, nil
	default:
		return nil, fmt.Errorf("query: expected value after %q %s, got %s", attr, opText, p.cur())
	}
}
