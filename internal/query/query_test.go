package query

import (
	"strings"
	"testing"

	"repro/internal/accuracy"
	"repro/internal/dataset"
)

func req() accuracy.Requirement { return accuracy.Requirement{Alpha: 10, Beta: 0.05} }

func somePreds() []dataset.Predicate {
	return []dataset.Predicate{
		dataset.NumCmp{Attr: "age", Op: dataset.Gt, C: 50},
		dataset.NumCmp{Attr: "age", Op: dataset.Le, C: 50},
	}
}

func TestConstructors(t *testing.T) {
	w, err := NewWCQ(somePreds(), req())
	if err != nil {
		t.Fatal(err)
	}
	if w.Kind != WCQ || w.L() != 2 {
		t.Fatalf("bad WCQ %+v", w)
	}
	i, err := NewICQ(somePreds(), 100, req())
	if err != nil {
		t.Fatal(err)
	}
	if i.Kind != ICQ || i.Threshold != 100 {
		t.Fatalf("bad ICQ %+v", i)
	}
	k, err := NewTCQ(somePreds(), 1, req())
	if err != nil {
		t.Fatal(err)
	}
	if k.Kind != TCQ || k.K != 1 {
		t.Fatalf("bad TCQ %+v", k)
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewWCQ(nil, req()); err == nil {
		t.Fatal("empty workload must error")
	}
	if _, err := NewWCQ(somePreds(), accuracy.Requirement{Alpha: -1, Beta: 0.1}); err == nil {
		t.Fatal("bad requirement must error")
	}
	if _, err := NewICQ(somePreds(), -5, req()); err == nil {
		t.Fatal("negative threshold must error")
	}
	if _, err := NewTCQ(somePreds(), 0, req()); err == nil {
		t.Fatal("k=0 must error")
	}
	if _, err := NewTCQ(somePreds(), 3, req()); err == nil {
		t.Fatal("k>L must error")
	}
}

func TestKindString(t *testing.T) {
	if WCQ.String() != "WCQ" || ICQ.String() != "ICQ" || TCQ.String() != "TCQ" {
		t.Fatal("kind strings")
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Fatal("unknown kind should render its number")
	}
}

func TestParseWCQ(t *testing.T) {
	q, err := Parse(`BIN D ON COUNT(*) WHERE W = { age > 50 AND state = 'AL', age <= 50 } ERROR 32 CONFIDENCE 0.9995;`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Kind != WCQ {
		t.Fatalf("kind %v", q.Kind)
	}
	if q.L() != 2 {
		t.Fatalf("L = %d", q.L())
	}
	if q.Req.Alpha != 32 {
		t.Fatalf("alpha = %v", q.Req.Alpha)
	}
	if beta := q.Req.Beta; beta < 0.00049 || beta > 0.00051 {
		t.Fatalf("beta = %v", beta)
	}
	and, ok := q.Predicates[0].(dataset.And)
	if !ok || len(and) != 2 {
		t.Fatalf("first predicate = %#v", q.Predicates[0])
	}
}

func TestParseICQ(t *testing.T) {
	q, err := Parse(`BIN D ON COUNT(*) WHERE W = { state = 'AL', state = 'WY' } HAVING COUNT(*) > 5000000 ERROR 1000 CONFIDENCE 0.95;`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Kind != ICQ || q.Threshold != 5000000 {
		t.Fatalf("got %+v", q)
	}
}

func TestParseTCQ(t *testing.T) {
	q, err := Parse(`BIN D ON COUNT(*) WHERE W = { age = 1, age = 2, age = 3 } ORDER BY COUNT(*) LIMIT 2 ERROR 10 CONFIDENCE 0.9;`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Kind != TCQ || q.K != 2 {
		t.Fatalf("got %+v", q)
	}
}

func TestParseQuotedAttrAndBetween(t *testing.T) {
	q, err := Parse(`BIN D ON COUNT(*) WHERE W = { "capital gain" BETWEEN 0 AND 50, "capital gain" BETWEEN 50 AND 100 } ERROR 10 CONFIDENCE 0.99;`)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := q.Predicates[0].(dataset.Range)
	if !ok || r.Attr != "capital gain" || r.Lo != 0 || r.Hi != 50 {
		t.Fatalf("predicate = %#v", q.Predicates[0])
	}
}

func TestParseIsNullAndNot(t *testing.T) {
	q, err := Parse(`BIN D ON COUNT(*) WHERE W = { title IS NULL OR authors IS NULL, venue IS NOT NULL, NOT (year > 2000) } ERROR 5 CONFIDENCE 0.9;`)
	if err != nil {
		t.Fatal(err)
	}
	if q.L() != 3 {
		t.Fatalf("L = %d", q.L())
	}
	if _, ok := q.Predicates[0].(dataset.Or); !ok {
		t.Fatalf("first = %#v", q.Predicates[0])
	}
	if _, ok := q.Predicates[1].(dataset.Not); !ok {
		t.Fatalf("second = %#v", q.Predicates[1])
	}
}

func TestParsePrecedence(t *testing.T) {
	// AND binds tighter than OR: a OR b AND c == a OR (b AND c).
	q, err := Parse(`BIN D ON COUNT(*) WHERE W = { age > 1 OR age > 2 AND age > 3 } ERROR 1 CONFIDENCE 0.9;`)
	if err != nil {
		t.Fatal(err)
	}
	or, ok := q.Predicates[0].(dataset.Or)
	if !ok || len(or) != 2 {
		t.Fatalf("top = %#v", q.Predicates[0])
	}
	if _, ok := or[1].(dataset.And); !ok {
		t.Fatalf("right arm = %#v", or[1])
	}
}

func TestParseStringInequality(t *testing.T) {
	q, err := Parse(`BIN D ON COUNT(*) WHERE W = { sex != 'M' } ERROR 1 CONFIDENCE 0.9;`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := q.Predicates[0].(dataset.Not); !ok {
		t.Fatalf("got %#v", q.Predicates[0])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT * FROM D;`,
		`BIN D ON COUNT(*) WHERE W = { } ERROR 1 CONFIDENCE 0.9;`,
		`BIN D ON COUNT(*) WHERE W = { age > } ERROR 1 CONFIDENCE 0.9;`,
		`BIN D ON COUNT(*) WHERE W = { age > 5 } ERROR 1;`,
		`BIN D ON COUNT(*) WHERE W = { age > 5 } ERROR 1 CONFIDENCE 0.9 extra;`,
		`BIN D ON COUNT(*) WHERE W = { age > 5 } ORDER BY COUNT(*) LIMIT 1.5 ERROR 1 CONFIDENCE 0.9;`,
		`BIN D ON COUNT(*) WHERE W = { age > 5 } HAVING COUNT(*) > ERROR 1 CONFIDENCE 0.9;`,
		`BIN D ON COUNT(*) WHERE W = { sex < 'M' } ERROR 1 CONFIDENCE 0.9;`,
		`BIN D ON COUNT(*) WHERE W = { "unterminated } ERROR 1 CONFIDENCE 0.9;`,
		`BIN D ON COUNT(*) WHERE W = { age > 5 } ERROR 1 CONFIDENCE 0.9 ; ;`,
		`BIN D ON COUNT(*) WHERE W = { (age > 5 } ERROR 1 CONFIDENCE 0.9;`,
	}
	for i, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d: expected parse error for %q", i, src)
		}
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	q, err := NewICQ(somePreds(), 100, req())
	if err != nil {
		t.Fatal(err)
	}
	s := q.String()
	for _, want := range []string{"BIN D ON COUNT(*)", "HAVING COUNT(*) > 100", "ERROR 10", "CONFIDENCE 0.95"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestParsedQueryEvaluates(t *testing.T) {
	s := dataset.MustSchema(
		dataset.Attribute{Name: "age", Kind: dataset.Continuous, Min: 0, Max: 100},
		dataset.Attribute{Name: "state", Kind: dataset.Categorical, Values: []string{"AL", "WY"}},
	)
	q, err := Parse(`BIN D ON COUNT(*) WHERE W = { age > 50 AND state = 'AL' } ERROR 1 CONFIDENCE 0.9;`)
	if err != nil {
		t.Fatal(err)
	}
	row := dataset.Tuple{dataset.Num(60), dataset.Str("AL")}
	if !q.Predicates[0].Eval(s, row) {
		t.Fatal("predicate should match row")
	}
	row2 := dataset.Tuple{dataset.Num(40), dataset.Str("AL")}
	if q.Predicates[0].Eval(s, row2) {
		t.Fatal("predicate should not match row2")
	}
}
