package dataset

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestSchemaJSONRoundTrip(t *testing.T) {
	s := MustSchema(
		Attribute{Name: "age", Kind: Continuous, Min: 0, Max: 100},
		Attribute{Name: "state", Kind: Categorical, Values: []string{"AL", "AK", "WY"}},
	)
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Schema
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Arity() != 2 {
		t.Fatalf("arity %d after round trip", back.Arity())
	}
	age, ok := back.AttrByName("age")
	if !ok || age.Kind != Continuous || age.Min != 0 || age.Max != 100 {
		t.Fatalf("age = %+v", age)
	}
	state, ok := back.AttrByName("state")
	if !ok || state.Kind != Categorical || len(state.Values) != 3 {
		t.Fatalf("state = %+v", state)
	}
}

func TestSchemaJSONErrors(t *testing.T) {
	cases := map[string]string{
		"bad kind":       `{"attributes":[{"name":"a","kind":"weird"}]}`,
		"missing bounds": `{"attributes":[{"name":"a","kind":"continuous"}]}`,
		"empty domain":   `{"attributes":[{"name":"a","kind":"categorical"}]}`,
		"dup name":       `{"attributes":[{"name":"a","kind":"categorical","values":["x"]},{"name":"a","kind":"categorical","values":["y"]}]}`,
		"not json":       `{"attributes":`,
	}
	for name, in := range cases {
		var s Schema
		if err := json.Unmarshal([]byte(in), &s); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadSchemaText(t *testing.T) {
	s, err := ReadSchemaText(strings.NewReader(`
# comment
age     continuous  0 100
state   categorical AL,AK,WY
`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Arity() != 2 {
		t.Fatalf("arity %d", s.Arity())
	}
	a, _ := s.AttrByName("age")
	if a.Kind != Continuous || a.Max != 100 {
		t.Fatalf("age = %+v", a)
	}
}

func TestReadSchemaTextErrors(t *testing.T) {
	cases := map[string]string{
		"short line":        "age\n",
		"bad kind":          "age weird 0 1\n",
		"continuous fields": "age continuous 0\n",
		"bad float":         "age continuous x 1\n",
		"categorical":       "state categorical\n",
	}
	for name, in := range cases {
		if _, err := ReadSchemaText(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}
