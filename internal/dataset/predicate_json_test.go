package dataset

import (
	"math"
	"strings"
	"testing"
)

// roundTripPreds covers every serializable predicate shape, including the
// nested combinators the query parser can produce.
func roundTripPreds() []Predicate {
	return []Predicate{
		NumCmp{Attr: "age", Op: Le, C: 50},
		NumCmp{Attr: "age", Op: Ne, C: -3.25},
		NumCmp{Attr: "fare", Op: Gt, C: 12.300000000000001}, // needs full float precision
		StrEq{Attr: "state", Val: "CA"},
		StrEq{Attr: "state", Val: `quote"and,comma`},
		Range{Attr: "age", Lo: 0, Hi: 50},
		IsNull{Attr: "age"},
		Not{P: StrEq{Attr: "state", Val: "NY"}},
		And{Range{Attr: "age", Lo: 0, Hi: 50}, StrEq{Attr: "state", Val: "CA"}},
		Or{NumCmp{Attr: "age", Op: Lt, C: 10}, Not{P: IsNull{Attr: "age"}}},
		And{Or{True{}, IsNull{Attr: "x"}}, Not{P: And{True{}, Range{Attr: "y", Lo: 1, Hi: 2}}}},
		True{},
	}
}

func TestPredicateJSONRoundTrip(t *testing.T) {
	s := MustSchema(
		Attribute{Name: "age", Kind: Continuous, Min: 0, Max: 100},
		Attribute{Name: "fare", Kind: Continuous, Min: 0, Max: 1000},
		Attribute{Name: "y", Kind: Continuous, Min: 0, Max: 10},
		Attribute{Name: "x", Kind: Categorical, Values: []string{"a"}},
		Attribute{Name: "state", Kind: Categorical, Values: []string{"CA", "NY", "TX"}},
	)
	tuples := []Tuple{
		{Num(25), Num(12.3), Num(1.5), Str("a"), Str("CA")},
		{Num(75), Num(12.300000000000001), Null, Null, Str("NY")},
		{Null, Null, Num(9), Str("a"), Null},
	}
	for _, p := range roundTripPreds() {
		b, err := MarshalPredicate(p)
		if err != nil {
			t.Fatalf("marshal %s: %v", p, err)
		}
		got, err := UnmarshalPredicate(b)
		if err != nil {
			t.Fatalf("unmarshal %s (%s): %v", p, b, err)
		}
		// The rendered form is what transcripts expose; it must survive
		// the round trip byte-for-byte.
		if got.String() != p.String() {
			t.Errorf("round trip changed rendering: %q -> %q", p.String(), got.String())
		}
		// And the semantics must match on concrete tuples.
		for i, tu := range tuples {
			if got.Eval(s, tu) != p.Eval(s, tu) {
				t.Errorf("%s: eval mismatch on tuple %d after round trip", p, i)
			}
		}
	}
}

func TestPredicateJSONRejectsFunc(t *testing.T) {
	f := Func{Name: "custom", Fn: func(*Schema, Tuple) bool { return true }}
	if _, err := MarshalPredicate(f); err == nil {
		t.Fatal("Func predicate marshaled; want error")
	}
	// Func nested under a combinator must fail too.
	if _, err := MarshalPredicate(And{True{}, f}); err == nil {
		t.Fatal("nested Func predicate marshaled; want error")
	}
	if _, err := MarshalPredicate(Not{P: f}); err == nil {
		t.Fatal("negated Func predicate marshaled; want error")
	}
}

func TestPredicateJSONRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		``,
		`{`,
		`{"t":"mystery"}`,
		`{"t":"num","op":"~","attr":"a"}`,
		`{"t":"not"}`,
		`{"t":"and","ps":[{"t":"bogus"}]}`,
	} {
		if _, err := UnmarshalPredicate([]byte(bad)); err == nil {
			t.Errorf("UnmarshalPredicate(%q) succeeded; want error", bad)
		}
	}
	if _, err := MarshalPredicate(nil); err == nil {
		t.Error("MarshalPredicate(nil) succeeded; want error")
	}
}

func TestPredicateJSONStable(t *testing.T) {
	// The wire form is part of the on-disk WAL format; changing it breaks
	// recovery of existing logs, so pin the exact encoding.
	b, err := MarshalPredicate(Range{Attr: "age", Lo: 0, Hi: 50})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := string(b), `{"t":"range","attr":"age","lo":0,"hi":50}`; got != want {
		t.Fatalf("encoding drifted:\n  got  %s\n  want %s", got, want)
	}
}

func TestPredicateJSONNegativeZero(t *testing.T) {
	// The parser accepts negative constants, so -0.0 is reachable
	// ("age < -0"); it must survive the round trip — %g renders -0 and
	// +0 differently, and transcripts must recover byte-identically.
	for _, p := range []Predicate{
		NumCmp{Attr: "age", Op: Lt, C: math.Copysign(0, -1)},
		Range{Attr: "age", Lo: math.Copysign(0, -1), Hi: 10},
	} {
		b, err := MarshalPredicate(p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalPredicate(b)
		if err != nil {
			t.Fatal(err)
		}
		if got.String() != p.String() {
			t.Fatalf("-0.0 lost: %q -> %q (wire %s)", p.String(), got.String(), b)
		}
		if !strings.Contains(p.String(), "-0") {
			t.Fatalf("test premise broken: %q does not render -0", p.String())
		}
	}
}
