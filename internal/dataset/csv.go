package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the table with a header row of attribute names. NULL
// cells are written as the empty string.
func WriteCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Schema().Names()); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	rec := make([]string, t.Schema().Arity())
	for i := 0; i < t.Size(); i++ {
		row := t.Row(i)
		for j, v := range row {
			switch {
			case v.IsNull():
				rec[j] = ""
			default:
				rec[j] = v.String()
			}
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a table conforming to the schema from CSV with a header
// row. Columns are matched to attributes by header name; empty cells load
// as NULL; cells of continuous attributes must parse as floats. Records
// stream straight into the table's columnar storage through one reused
// row buffer, so import allocates no per-row tuples.
func ReadCSV(r io.Reader, schema *Schema) (*Table, error) {
	tab := NewTable(schema)
	if err := StreamCSV(r, schema, tab.Append); err != nil {
		return nil, err
	}
	return tab, nil
}

// StreamCSV parses CSV with exactly ReadCSV's semantics (header mapping,
// empty cells as NULL, float parsing for continuous attributes) but hands
// each row to fn instead of materializing a table — the ingest path for
// sinks with bounded memory, like the column-store segment builder. The
// tuple passed to fn is reused between calls; fn must copy what it keeps.
func StreamCSV(r io.Reader, schema *Schema, fn func(Tuple) error) error {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return fmt.Errorf("dataset: read header: %w", err)
	}
	colToAttr := make([]int, len(header))
	for c, name := range header {
		idx, ok := schema.Lookup(name)
		if !ok {
			return fmt.Errorf("dataset: CSV column %q not in schema", name)
		}
		colToAttr[c] = idx
	}
	row := make(Tuple, schema.Arity())
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("dataset: read line %d: %w", line, err)
		}
		for i := range row {
			row[i] = Null
		}
		for c, cell := range rec {
			attrIdx := colToAttr[c]
			attr := schema.Attr(attrIdx)
			switch {
			case cell == "":
				row[attrIdx] = Null
			case attr.Kind == Continuous:
				f, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					return fmt.Errorf("dataset: line %d, column %q: %w", line, attr.Name, err)
				}
				row[attrIdx] = Num(f)
			default:
				row[attrIdx] = Str(cell)
			}
		}
		if err := fn(row); err != nil {
			return err
		}
	}
	return nil
}
