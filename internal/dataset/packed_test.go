package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// TestPackedCodeWidth pins the width function at the bit-width
// boundaries the biased sentinel domain creates.
func TestPackedCodeWidth(t *testing.T) {
	cases := []struct{ dict, want int }{
		{0, 1}, {1, 2}, {2, 2}, {3, 3}, {6, 3}, {7, 4}, {14, 4},
		{254, 8}, {255, 9}, {65534, 16}, {65535, 17},
	}
	for _, c := range cases {
		if got := PackedCodeWidth(c.dict); got != c.want {
			t.Errorf("PackedCodeWidth(%d) = %d, want %d", c.dict, got, c.want)
		}
	}
}

// TestPackedIntsRoundTrip packs random lanes at every width and checks
// At, the canonical-form validator, and the no-straddle layout.
func TestPackedIntsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for width := 1; width <= 32; width++ {
		for _, n := range []int{0, 1, 63, 64, 65, 1000} {
			limit := uint64(1) << uint(width)
			lanes := make([]uint64, n)
			p := &PackedInts{Width: width, N: n, Words: make([]uint64, PackedWordCount(n, width))}
			lpw := 64 / width
			for i := range lanes {
				lanes[i] = rng.Uint64() % limit
				p.Words[i/lpw] |= lanes[i] << (uint(i%lpw) * uint(width))
			}
			for i, want := range lanes {
				if got := p.At(i); got != want {
					t.Fatalf("width %d n %d: At(%d) = %d, want %d", width, n, i, got, want)
				}
			}
			if err := p.validate(n, limit); err != nil {
				t.Fatalf("width %d n %d: validate: %v", width, n, err)
			}
			// Slack or tail corruption must be rejected.
			if uint(lpw*width) < 64 && len(p.Words) > 0 {
				p.Words[0] |= 1 << uint(lpw*width)
				if err := p.validate(n, limit); err == nil {
					t.Fatalf("width %d n %d: validate accepted nonzero slack", width, n)
				}
				p.Words[0] &^= 1 << uint(lpw*width)
			}
			if n > 0 && n%lpw != 0 {
				p.Words[len(p.Words)-1] |= 1 << (uint(n%lpw) * uint(width))
				if err := p.validate(n, limit); err == nil {
					t.Fatalf("width %d n %d: validate accepted nonzero tail lane", width, n)
				}
			}
		}
	}
}

// TestPackedScanEq compares the SWAR equality kernel against a naive
// lane loop, including targets at 0 (the biased misfit sentinel, which
// zero tail lanes must not leak), the lane maximum, and out of width.
func TestPackedScanEq(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, width := range []int{1, 2, 3, 5, 7, 8, 9, 13, 16, 17, 21, 31, 32} {
		for _, n := range []int{1, 64, 127, 1000} {
			limit := uint64(1) << uint(width)
			domain := limit
			if domain > 8 {
				domain = 8 // dense hits
			}
			lanes := make([]uint64, n)
			p := &PackedInts{Width: width, N: n, Words: make([]uint64, PackedWordCount(n, width))}
			lpw := 64 / width
			for i := range lanes {
				lanes[i] = rng.Uint64() % domain
				if rng.Intn(10) == 0 {
					lanes[i] = rng.Uint64() % limit
				}
				p.Words[i/lpw] |= lanes[i] << (uint(i%lpw) * uint(width))
			}
			targets := []uint64{0, 1, domain - 1, limit - 1, limit, limit + 3}
			for _, target := range targets {
				got := NewBitmap(n)
				p.scanEqInto(target, got)
				for i := 0; i < n; i++ {
					want := target < limit && lanes[i] == target
					if got.Get(i) != want {
						t.Fatalf("width %d n %d target %d row %d: got %v want %v", width, n, target, i, got.Get(i), want)
					}
				}
			}
		}
	}
}

// TestPackedFloatsScan compares the frame-of-reference compare/range
// kernels against the unpacked loops for fractional, negative, NaN and
// infinite constants.
func TestPackedFloatsScan(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, span := range []uint64{0, 1, 100, 1 << 16, 1 << 31} {
		n := 777
		base := float64(-50)
		vals := make([]float64, n)
		missing := make([]uint64, (n+63)>>6)
		for i := range vals {
			if rng.Intn(17) == 0 {
				missing[i>>6] |= 1 << (uint(i) & 63)
				continue
			}
			vals[i] = base + float64(rng.Uint64()%(span+1))
		}
		p, ok := PackVals(vals, missing)
		if !ok {
			t.Fatalf("span %d: PackVals rejected eligible column", span)
		}
		if w := p.Ints.Width; w > 32 {
			t.Fatalf("span %d: width %d", span, w)
		}
		consts := []float64{base, base + 1, base + 0.5, base + float64(span), -1e9, 1e9,
			math.NaN(), math.Inf(1), math.Inf(-1), 0, 40.25}
		ops := []CmpOp{Eq, Ne, Lt, Le, Gt, Ge}
		for _, c := range consts {
			for _, op := range ops {
				got := NewBitmap(n)
				p.scanCmpInto(op, c, got)
				for i, v := range vals {
					// The kernel sees lane 0 (= base) at missing rows; the
					// caller masks those. Mirror that here.
					if missing[i>>6]&(1<<(uint(i)&63)) != 0 {
						v = p.Min
					}
					var want bool
					switch op {
					case Eq:
						want = v == c
					case Ne:
						want = v != c
					case Lt:
						want = v < c
					case Le:
						want = v <= c
					case Gt:
						want = v > c
					case Ge:
						want = v >= c
					}
					if got.Get(i) != want {
						t.Fatalf("span %d op %v c %v row %d (v=%v): got %v want %v", span, op, c, i, v, got.Get(i), want)
					}
				}
			}
			lo, hi := c, c+float64(span)/3+1
			got := NewBitmap(n)
			p.scanRangeInto(lo, hi, got)
			for i, v := range vals {
				if missing[i>>6]&(1<<(uint(i)&63)) != 0 {
					v = p.Min
				}
				if want := v >= lo && v < hi; got.Get(i) != want {
					t.Fatalf("span %d range [%v,%v) row %d: got %v want %v", span, lo, hi, i, got.Get(i), want)
				}
			}
		}
	}
}

// TestPackValsRejectsIneligible pins the fall-back-to-unpacked cases.
func TestPackValsRejectsIneligible(t *testing.T) {
	none := []uint64{0}
	for _, vals := range [][]float64{
		{1, 2.5, 3},                   // fractional
		{0, math.NaN()},               // NaN
		{0, math.Inf(1)},              // infinite
		{0, 1 << 53},                  // too large for exact deltas
		{-(1 << 31), 1 << 31}, // span over 32 bits
		{0, 1 << 32},          // span exactly 2^32
	} {
		if p, ok := PackVals(vals, make([]uint64, 1)); ok {
			t.Errorf("PackVals(%v) accepted, width %d", vals, p.Ints.Width)
		}
	}
	// Boundary acceptance: span 2^32−1 is the widest packable column.
	if _, ok := PackVals([]float64{0, float64(1<<32) - 1}, none); !ok {
		t.Errorf("PackVals rejected span 2^32-1")
	}
	// All-missing columns pack trivially.
	if p, ok := PackVals([]float64{0, 0}, []uint64{3}); !ok || p.Ints.Width != 1 {
		t.Errorf("all-missing column: ok=%v", ok)
	}
}

// buildMixedTable appends rows with NULLs, out-of-domain strings and
// kind-mismatched misfit cells across dictionary sizes that straddle
// packed bit-width boundaries.
func buildMixedTable(t *testing.T, n int, seed int64) *Table {
	t.Helper()
	schema, err := NewSchema(
		Attribute{Name: "flag", Kind: Categorical, Values: []string{"y"}},                        // width 2 after sentinels
		Attribute{Name: "grade", Kind: Categorical, Values: []string{"a", "b", "c", "d", "e", "f"}}, // width 3
		Attribute{Name: "code7", Kind: Categorical, Values: domainN(7)},                          // width 4 boundary
		Attribute{Name: "code254", Kind: Categorical, Values: domainN(254)},                      // width 8 boundary
		Attribute{Name: "age", Kind: Continuous},
		Attribute{Name: "gain", Kind: Continuous},
		Attribute{Name: "frac", Kind: Continuous}, // fractional: stays unpacked
	)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	tab := NewTable(schema)
	g254 := domainN(254)
	for i := 0; i < n; i++ {
		row := Tuple{
			Str([]string{"y", "n?", "y", "y"}[rng.Intn(4)]), // n? is out of domain
			Str(string(rune('a' + rng.Intn(8)))),            // g,h out of domain
			Str(fmt.Sprintf("v%d", rng.Intn(9))),
			Str(g254[rng.Intn(254)]),
			Num(float64(17 + rng.Intn(74))),
			Num(float64(rng.Intn(100000))),
			Num(rng.Float64() * 100),
		}
		for pos := range row {
			if rng.Intn(23) == 0 {
				row[pos] = Null
			}
		}
		if rng.Intn(41) == 0 { // kind-mismatched cells exercise the misfit patch path
			row[rng.Intn(4)] = Num(float64(rng.Intn(5)))
		}
		if rng.Intn(41) == 0 {
			row[4+rng.Intn(3)] = Str("oops")
		}
		tab.MustAppend(row)
	}
	return tab
}

func domainN(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("v%d", i)
	}
	return out
}

// packTable rebuilds t with every eligible column packed, via the same
// exported surface the column store uses.
func packTable(t *testing.T, tab *Table) *Table {
	t.Helper()
	schema := tab.Schema()
	cols := make([]ColumnData, schema.Arity())
	for pos := 0; pos < schema.Arity(); pos++ {
		cd := tab.ColumnData(pos)
		if cd.Kind == Categorical {
			cols[pos] = ColumnData{Kind: Categorical, Dict: cd.Dict, PackedCodes: PackCodes(cd.Codes, len(cd.Dict))}
			continue
		}
		cols[pos] = cd
		if p, ok := PackVals(cd.Vals, cd.MissingWords); ok {
			cols[pos].Vals = nil
			cols[pos].PackedVals = p
		}
	}
	packed, err := TableFromColumns(schema, tab.Size(), cols, tab.MisfitCells())
	if err != nil {
		t.Fatalf("TableFromColumns(packed): %v", err)
	}
	return packed
}

// TestPackedTableDifferential evaluates a predicate battery over the
// unpacked table and its packed twin and requires bit-identical
// selection vectors, plus identical row reconstruction and Floats.
func TestPackedTableDifferential(t *testing.T) {
	tab := buildMixedTable(t, 4097, 7)
	packed := packTable(t, tab)

	if fp := packed.ColumnData(6); fp.PackedVals != nil {
		t.Fatalf("fractional column unexpectedly packed")
	}
	if cp := packed.ColumnData(0); cp.PackedCodes == nil {
		t.Fatalf("categorical column not packed")
	}

	preds := []Predicate{
		StrEq{Attr: "flag", Val: "y"},
		StrEq{Attr: "flag", Val: "n?"},      // out-of-domain value, interned at append time
		StrEq{Attr: "grade", Val: "h"},      // out-of-domain
		StrEq{Attr: "grade", Val: "zzz"},    // never interned
		StrEq{Attr: "code254", Val: "v253"},
		IsNull{Attr: "grade"},
		IsNull{Attr: "age"},
		NumCmp{Attr: "age", Op: Lt, C: 40},
		NumCmp{Attr: "age", Op: Ge, C: 40.5},
		NumCmp{Attr: "gain", Op: Eq, C: 0},
		NumCmp{Attr: "gain", Op: Ne, C: math.NaN()},
		NumCmp{Attr: "frac", Op: Le, C: 50},
		Range{Attr: "age", Lo: 20, Hi: 65},
		Range{Attr: "gain", Lo: 100, Hi: 10000},
		And{StrEq{Attr: "flag", Val: "y"}, Range{Attr: "age", Lo: 30, Hi: 50}},
		Or{IsNull{Attr: "gain"}, NumCmp{Attr: "gain", Op: Gt, C: 90000}},
		Not{StrEq{Attr: "grade", Val: "a"}},
	}
	for _, p := range preds {
		cu, err := Compile(tab.Schema(), p)
		if err != nil {
			t.Fatalf("compile %v: %v", p, err)
		}
		bu, bp := cu.Eval(tab), cu.Eval(packed)
		for i := 0; i < tab.Size(); i++ {
			if bu.Get(i) != bp.Get(i) {
				t.Fatalf("predicate %v row %d: unpacked %v packed %v", p, i, bu.Get(i), bp.Get(i))
			}
		}
	}

	for _, i := range []int{0, 1, 63, 64, 4095, 4096} {
		ru, rp := tab.Row(i), packed.Row(i)
		for pos := range ru {
			if ru[pos] != rp[pos] {
				t.Fatalf("row %d pos %d: unpacked %v packed %v", i, pos, ru[pos], rp[pos])
			}
		}
	}

	for pos := 4; pos <= 6; pos++ {
		vu, _, _ := tab.Floats(pos)
		vp, _, _ := packed.Floats(pos)
		for i := range vu {
			if vu[i] != vp[i] {
				t.Fatalf("Floats pos %d row %d: unpacked %v packed %v", pos, i, vu[i], vp[i])
			}
		}
	}

	du, _ := tab.DistinctValues("grade")
	dp, _ := packed.DistinctValues("grade")
	if fmt.Sprint(du) != fmt.Sprint(dp) {
		t.Fatalf("DistinctValues: %v vs %v", du, dp)
	}

	// Packed categorical scans read ~width/32 of the unpacked bytes.
	if up, pk := tab.ColumnScanBytes(3), packed.ColumnScanBytes(3); pk*3 > up {
		t.Fatalf("code254 packed scan bytes %d not < 1/3 of unpacked %d", pk, up)
	}
}

// TestCompiledColumns pins the planned-column derivation.
func TestCompiledColumns(t *testing.T) {
	tab := buildMixedTable(t, 8, 1)
	p := And{StrEq{Attr: "grade", Val: "a"}, Range{Attr: "age", Lo: 0, Hi: 10}, StrEq{Attr: "grade", Val: "b"}}
	cp, err := Compile(tab.Schema(), p)
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(cp.Columns()); got != "[1 4]" {
		t.Fatalf("Columns() = %v, want [1 4]", got)
	}
}
