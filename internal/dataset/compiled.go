package dataset

import (
	"fmt"
	"sort"
)

// CompiledPredicate is a predicate bound to a schema with every per-row
// lookup hoisted out of the scan: attribute names are resolved to column
// positions and categorical constants to dictionary codes once, and
// evaluation runs over column slices into a selection Bitmap.
//
// Compiled evaluation matches Predicate.Eval exactly, including NULL
// semantics, out-of-domain values and kind-mismatched cells (the rare
// misfit rows are patched with a row-at-a-time pass). A CompiledPredicate
// is immutable after Compile and safe for concurrent use.
type CompiledPredicate struct {
	schema *Schema
	src    Predicate
	prog   prog
	cols   []int
}

// Compile builds the vectorized evaluator for p over schema s. It returns
// an error for predicates it cannot introspect (dataset.Func and other
// custom implementations); callers are expected to fall back to the
// row-at-a-time path then.
func Compile(s *Schema, p Predicate) (*CompiledPredicate, error) {
	pr, err := compileNode(s, p)
	if err != nil {
		return nil, err
	}
	cols := make([]int, 0, 2)
	for _, attr := range p.Attrs() {
		if pos, ok := s.Lookup(attr); ok {
			cols = append(cols, pos)
		}
	}
	sort.Ints(cols)
	cols = cols[:uniqInts(cols)]
	return &CompiledPredicate{schema: s, src: p, prog: pr, cols: cols}, nil
}

// Predicate returns the source predicate.
func (cp *CompiledPredicate) Predicate() Predicate { return cp.src }

// Columns returns the sorted schema positions the predicate reads — the
// planned column set a batching scheduler prefetches before the scan.
// Callers must treat the slice as read-only.
func (cp *CompiledPredicate) Columns() []int { return cp.cols }

// uniqInts compacts a sorted slice in place, returning the new length.
func uniqInts(xs []int) int {
	k := 0
	for i, x := range xs {
		if i == 0 || x != xs[k-1] {
			xs[k] = x
			k++
		}
	}
	return k
}

// String implements fmt.Stringer.
func (cp *CompiledPredicate) String() string { return cp.src.String() }

// Eval evaluates the predicate over every row of t into a fresh bitmap.
// The table must conform to the schema the predicate was compiled for.
func (cp *CompiledPredicate) Eval(t *Table) *Bitmap {
	dst := NewBitmap(t.Size())
	cp.EvalInto(t, dst)
	return dst
}

// EvalInto is Eval into a caller-owned bitmap (resized and overwritten),
// letting hot loops reuse one selection vector across predicates.
func (cp *CompiledPredicate) EvalInto(t *Table, dst *Bitmap) {
	dst.Reset(t.Size())
	var sc scratch
	cp.prog.run(t, dst, &sc)
	// Misfit rows (kind-mismatched cells) carry per-row semantics the
	// typed kernels cannot see; re-evaluate those rows exactly. The list
	// is empty for every table built from CSV or well-kinded tuples.
	for _, r := range t.misfitRows {
		if cp.src.Eval(t.schema, t.Row(r)) {
			dst.Set(r)
		} else {
			dst.Clear(r)
		}
	}
}

// prog is one node of the compiled program. run may assume dst is zeroed
// and sized to the table, and must leave exactly the matching rows set
// (misfit rows excepted; EvalInto patches those). sc lends temporary
// bitmaps to boolean nodes so one evaluation reuses a handful of
// buffers instead of allocating per node.
type prog interface {
	run(t *Table, dst *Bitmap, sc *scratch)
}

// scratch is a tiny free list of temporary bitmaps for one evaluation.
// The zero value is ready to use.
type scratch struct {
	free []*Bitmap
}

func (s *scratch) get(n int) *Bitmap {
	if k := len(s.free); k > 0 {
		b := s.free[k-1]
		s.free = s.free[:k-1]
		b.Reset(n)
		return b
	}
	return NewBitmap(n)
}

func (s *scratch) put(b *Bitmap) { s.free = append(s.free, b) }

func compileNode(s *Schema, p Predicate) (prog, error) {
	switch q := p.(type) {
	case NumCmp:
		pos, ok := s.Lookup(q.Attr)
		if !ok || s.Attr(pos).Kind != Continuous {
			// Unknown attribute never matches; a numeric comparison on a
			// categorical column can only match misfit cells, which the
			// fixup pass handles.
			return falseProg{}, nil
		}
		return numCmpProg{pos: pos, op: q.Op, c: q.C}, nil
	case Range:
		pos, ok := s.Lookup(q.Attr)
		if !ok || s.Attr(pos).Kind != Continuous {
			return falseProg{}, nil
		}
		return rangeProg{pos: pos, lo: q.Lo, hi: q.Hi}, nil
	case StrEq:
		pos, ok := s.Lookup(q.Attr)
		if !ok || s.Attr(pos).Kind != Categorical {
			return falseProg{}, nil
		}
		return strEqProg{pos: pos, val: q.Val}, nil
	case IsNull:
		pos, ok := s.Lookup(q.Attr)
		if !ok {
			return falseProg{}, nil
		}
		return isNullProg{pos: pos, cat: s.Attr(pos).Kind == Categorical}, nil
	case And:
		children, err := compileChildren(s, q)
		if err != nil {
			return nil, err
		}
		return andProg{children}, nil
	case Or:
		children, err := compileChildren(s, q)
		if err != nil {
			return nil, err
		}
		return orProg{children}, nil
	case Not:
		child, err := compileNode(s, q.P)
		if err != nil {
			return nil, err
		}
		return notProg{child}, nil
	case True:
		return trueProg{}, nil
	default:
		return nil, fmt.Errorf("dataset: cannot compile predicate type %T (opaque evaluation function)", p)
	}
}

func compileChildren(s *Schema, ps []Predicate) ([]prog, error) {
	out := make([]prog, len(ps))
	for i, p := range ps {
		c, err := compileNode(s, p)
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

type falseProg struct{}

func (falseProg) run(*Table, *Bitmap, *scratch) {}

type trueProg struct{}

func (trueProg) run(t *Table, dst *Bitmap, _ *scratch) { dst.SetAll() }

type numCmpProg struct {
	pos int
	op  CmpOp
	c   float64
}

func (p numCmpProg) run(t *Table, dst *Bitmap, _ *scratch) {
	col := t.nums[p.pos]
	if col.packed != nil {
		// Frame-of-reference column: compare the exactly reconstructed
		// value word-at-a-time over the packed lanes.
		col.packed.scanCmpInto(p.op, p.c, dst)
		andNotWords(dst.words, col.missing.words)
		return
	}
	vals := col.vals
	c := p.c
	// One tight loop per operator; the missing mask is applied wholesale
	// afterwards (NULL never satisfies a comparison).
	switch p.op {
	case Eq:
		for i, v := range vals {
			if v == c {
				dst.Set(i)
			}
		}
	case Ne:
		for i, v := range vals {
			if v != c {
				dst.Set(i)
			}
		}
	case Lt:
		for i, v := range vals {
			if v < c {
				dst.Set(i)
			}
		}
	case Le:
		for i, v := range vals {
			if v <= c {
				dst.Set(i)
			}
		}
	case Gt:
		for i, v := range vals {
			if v > c {
				dst.Set(i)
			}
		}
	case Ge:
		for i, v := range vals {
			if v >= c {
				dst.Set(i)
			}
		}
	default:
		return
	}
	andNotWords(dst.words, col.missing.words)
}

type rangeProg struct {
	pos    int
	lo, hi float64
}

func (p rangeProg) run(t *Table, dst *Bitmap, _ *scratch) {
	col := t.nums[p.pos]
	lo, hi := p.lo, p.hi
	if col.packed != nil {
		col.packed.scanRangeInto(lo, hi, dst)
		andNotWords(dst.words, col.missing.words)
		return
	}
	for i, v := range col.vals {
		if v >= lo && v < hi {
			dst.Set(i)
		}
	}
	andNotWords(dst.words, col.missing.words)
}

type strEqProg struct {
	pos int
	val string
}

func (p strEqProg) run(t *Table, dst *Bitmap, _ *scratch) {
	col := t.cats[p.pos]
	code, ok := col.index[p.val]
	if !ok {
		return // the constant never entered this table's dictionary
	}
	if col.packed != nil {
		// Bitpacked codes: SWAR equality over the packed words, ~64/width
		// rows per iteration instead of one code load per row.
		col.packed.scanEqInto(uint64(code)+PackedCodeBias, dst)
		return
	}
	for i, c := range col.codes {
		if c == code {
			dst.Set(i)
		}
	}
}

type isNullProg struct {
	pos int
	cat bool
}

func (p isNullProg) run(t *Table, dst *Bitmap, _ *scratch) {
	if p.cat {
		col := t.cats[p.pos]
		if col.packed != nil {
			col.packed.scanEqInto(uint64(nullCode+PackedCodeBias), dst)
			return
		}
		for i, c := range col.codes {
			if c == nullCode {
				dst.Set(i)
			}
		}
		return
	}
	// The missing bitmap covers NULLs plus misfits; fixup separates them.
	copy(dst.words, t.nums[p.pos].missing.words)
	dst.maskTail()
}

type andProg struct{ children []prog }

func (p andProg) run(t *Table, dst *Bitmap, sc *scratch) {
	if len(p.children) == 0 {
		dst.SetAll() // the empty conjunction is TRUE
		return
	}
	p.children[0].run(t, dst, sc)
	if len(p.children) == 1 {
		return
	}
	tmp := sc.get(t.Size())
	for _, c := range p.children[1:] {
		tmp.Reset(t.Size())
		c.run(t, tmp, sc)
		dst.And(tmp)
	}
	sc.put(tmp)
}

type orProg struct{ children []prog }

func (p orProg) run(t *Table, dst *Bitmap, sc *scratch) {
	if len(p.children) == 0 {
		return // the empty disjunction is FALSE
	}
	p.children[0].run(t, dst, sc)
	if len(p.children) == 1 {
		return
	}
	tmp := sc.get(t.Size())
	for _, c := range p.children[1:] {
		tmp.Reset(t.Size())
		c.run(t, tmp, sc)
		dst.Or(tmp)
	}
	sc.put(tmp)
}

type notProg struct{ child prog }

func (p notProg) run(t *Table, dst *Bitmap, sc *scratch) {
	p.child.run(t, dst, sc)
	dst.Not()
}

// andNotWords clears in a the bits set in b (a &^= b), tolerating a
// shorter b (missing bitmaps and selection vectors always share length).
func andNotWords(a, b []uint64) {
	for i := range b {
		a[i] &^= b[i]
	}
}
